/// \file qadd_serve.cpp
/// The simulation-as-a-service daemon (docs/SERVE.md): accepts circuit jobs
/// over line-delimited JSON on TCP, one DD package per session, with
/// admission control and idle-session QCKP persistence.
///
///   ./qadd_serve [--port N] [--bind A] [--workers N] [--max-queue N]
///                [--max-sessions N] [--watermark-nodes N] [--idle-timeout S]
///                [--write-stall S] [--max-frame-bytes N] [--cache N]
///                [--kernel-parallel] [--help]
///
/// Prints "qadd_serve listening on port <port>" once ready (with --port 0
/// the kernel picks the port; harnesses parse this line).  SIGINT/SIGTERM or
/// the protocol's "shutdown" op stop it gracefully: new work is refused with
/// 503, admitted jobs drain, buffered responses flush.
#include "serve/server.hpp"

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

namespace {

int usage(int code) {
  std::cerr
      << "usage: qadd_serve [options]\n"
         "  --port N             TCP port (default 7421; 0 = ephemeral, printed on stdout)\n"
         "  --bind A             bind address (default 127.0.0.1)\n"
         "  --workers N          job-execution threads (default 4)\n"
         "  --max-queue N        admission cap on pending+running jobs, 0=unlimited (default 64)\n"
         "  --max-sessions N     session limit (default 64)\n"
         "  --watermark-nodes N  persist idle sessions past this many live DD nodes, 0=off\n"
         "  --idle-timeout S     close idle connections after S seconds, 0=never (default 300)\n"
         "  --write-stall S      drop connections that stop reading after S seconds (default 30)\n"
         "  --max-frame-bytes N  413-reject frames beyond N bytes (default 8388608)\n"
         "  --cache N            identical-job result cache entries, 0=off (default 128)\n"
         "  --kernel-parallel    also fork DD kernels onto the worker pool (experimental)\n";
  return code;
}

} // namespace

int main(int argc, char** argv) {
  qadd::serve::ServerConfig config;
  config.port = 7421;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto number = [&](double fallback) {
      return i + 1 < argc ? std::atof(argv[++i]) : fallback;
    };
    if (arg == "--help" || arg == "-h") {
      return usage(0);
    }
    if (arg == "--port") {
      config.port = static_cast<std::uint16_t>(number(config.port));
    } else if (arg == "--bind") {
      config.bindAddress = i + 1 < argc ? argv[++i] : config.bindAddress;
    } else if (arg == "--workers") {
      config.workers = static_cast<std::size_t>(number(config.workers));
    } else if (arg == "--max-queue") {
      config.maxQueueDepth = static_cast<std::size_t>(number(config.maxQueueDepth));
    } else if (arg == "--max-sessions") {
      config.maxSessions = static_cast<std::size_t>(number(config.maxSessions));
    } else if (arg == "--watermark-nodes") {
      config.memoryWatermarkNodes = static_cast<std::size_t>(number(0));
    } else if (arg == "--idle-timeout") {
      config.idleTimeoutSeconds = number(config.idleTimeoutSeconds);
    } else if (arg == "--write-stall") {
      config.writeStallSeconds = number(config.writeStallSeconds);
    } else if (arg == "--max-frame-bytes") {
      config.maxFrameBytes = static_cast<std::size_t>(number(config.maxFrameBytes));
    } else if (arg == "--cache") {
      config.resultCacheEntries = static_cast<std::size_t>(number(config.resultCacheEntries));
    } else if (arg == "--kernel-parallel") {
      config.kernelParallel = true;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return usage(2);
    }
  }

  // Route SIGINT/SIGTERM through a dedicated sigwait thread — a plain signal
  // handler could not safely touch the server's condition variable.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  qadd::serve::Server server(config);
  try {
    server.start();
  } catch (const std::exception& error) {
    std::cerr << "qadd_serve: " << error.what() << "\n";
    return 1;
  }
  std::thread signalThread([&signals, &server] {
    int signal = 0;
    sigwait(&signals, &signal);
    server.requestShutdown();
  });
  signalThread.detach(); // still in sigwait at exit unless a signal arrived

  std::cout << "qadd_serve listening on port " << server.port() << std::endl;
  server.waitShutdown();
  server.stop();
  const auto& counters = server.counters();
  std::cout << "qadd_serve: " << server.jobQueue().completed() << " jobs completed, "
            << server.jobQueue().rejected() << " rejected, "
            << counters.droppedConnections.load() << " connections dropped\n";
  return 0;
}
