/// \file bench_check.cpp
/// Benchmark regression gate: compare a freshly produced BENCH_*.json against
/// a checked-in baseline (benchmarks/baselines/<machine-class>/) and print a
/// delta table.
///
///   bench_check <baseline.json> <fresh.json> [--tol R] [--time-tol R]
///
/// Both files are flattened to dotted-path -> number maps (arrays indexed,
/// booleans as 1/0, strings skipped).  Keys are classified by their last path
/// segment:
///
///   * hard keys — deterministic structural quantities (node counts, byte
///     sizes, table fills, allocation rates, qubit/gate counts).  A relative
///     delta beyond --tol (default 0.01) or a key missing from the fresh run
///     FAILs the gate (exit 1).
///   * soft keys — wall-clock and address-layout-sensitive quantities
///     (seconds, speedups, MB/s, cache hits/misses/evictions, peak counts).
///     Deltas beyond --time-tol (default 0.5) only WARN; machine noise must
///     not gate CI.
///
/// Exit codes: 0 pass (warnings allowed), 1 regression, 2 usage, 3 bad file.
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

namespace {

/// Minimal recursive-descent JSON reader over the subset the bench writers
/// emit (objects, arrays, numbers, strings, booleans, null).  Flattens
/// directly into `out` instead of building a tree.
class JsonFlattener {
public:
  JsonFlattener(const std::string& text, std::map<std::string, double>& out)
      : text_(text), out_(out) {}

  void run() {
    skipSpace();
    value("");
    skipSpace();
    if (pos_ != text_.size()) {
      fail("trailing content");
    }
  }

private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at byte " + std::to_string(pos_) + ": " + what);
  }

  void skipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) {
      throw std::runtime_error("JSON parse error: unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consumeLiteral(const char* literal) {
    const std::size_t n = std::strlen(literal);
    if (text_.compare(pos_, n, literal) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  std::string string() {
    expect('"');
    std::string result;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return result;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          fail("unterminated escape");
        }
        const char esc = text_[pos_++];
        switch (esc) {
        case 'n': result += '\n'; break;
        case 't': result += '\t'; break;
        case 'r': result += '\r'; break;
        case 'b': result += '\b'; break;
        case 'f': result += '\f'; break;
        case 'u':
          // The bench writers never emit \u escapes; skip the 4 hex digits.
          pos_ = std::min(pos_ + 4, text_.size());
          result += '?';
          break;
        default: result += esc; break;
        }
      } else {
        result += c;
      }
    }
  }

  void value(const std::string& path) {
    skipSpace();
    const char c = peek();
    if (c == '{') {
      ++pos_;
      skipSpace();
      if (peek() == '}') {
        ++pos_;
        return;
      }
      while (true) {
        skipSpace();
        const std::string key = string();
        skipSpace();
        expect(':');
        value(path.empty() ? key : path + "." + key);
        skipSpace();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return;
      }
    }
    if (c == '[') {
      ++pos_;
      skipSpace();
      if (peek() == ']') {
        ++pos_;
        return;
      }
      std::size_t index = 0;
      while (true) {
        value(path + "." + std::to_string(index++));
        skipSpace();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return;
      }
    }
    if (c == '"') {
      (void)string(); // string leaves are labels, not comparable quantities
      return;
    }
    if (consumeLiteral("true")) {
      out_[path] = 1.0;
      return;
    }
    if (consumeLiteral("false")) {
      out_[path] = 0.0;
      return;
    }
    if (consumeLiteral("null")) {
      return;
    }
    // Number.
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected a value");
    }
    try {
      out_[path] = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number '" + text_.substr(start, pos_ - start) + "'");
    }
  }

  const std::string& text_;
  std::map<std::string, double>& out_;
  std::size_t pos_ = 0;
};

std::map<std::string, double> flattenFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  std::map<std::string, double> flat;
  JsonFlattener(text, flat).run();
  return flat;
}

/// Deterministic structural quantities: a delta here means the code changed
/// behaviour, not that the machine was busy.
bool isHardKey(const std::string& path) {
  static const std::set<std::string> kHard = {
      "finalNodes",      "nodes",          "bytes",
      "qubits",          "gates",          "entries",
      "buckets",         "live",           "workers",
      "epsilonRuns",     "identicalValueSeries",
      "obsEnabled",      "ssoEnabled",     "enabled",
      "samples",         "hit",            "allocsPerOp",
      "baselineAllocsPerOp",               "spillAllocsPerOp",
      "nodesWritten",    "nodesRead",      "weightsWritten",
      "weightsRead",     "snapshotsSaved", "snapshotsLoaded",
      // serve_load structural gates (BENCH_serve.json).
      "clients",         "perClient",      "completed",
      "errors",          "droppedConnections",
      "identicalResults", "workloads",
      // gate_apply structural gates (BENCH_skip.json).
      "gateQubits",      "skipMatrixNodes", "materializedMatrixNodes",
      "speedupGatePassed", "nodeGatePassed",
      // approx_tradeoff structural gates (BENCH_approx.json).
      "exactNodes",      "exactFinalNodes", "approxNodes",
      "approxFinalNodes", "nodeReduction",  "prunedNodes",
      "achievedFidelity", "fidelityTarget", "fidelityGatePassed",
  };
  const std::size_t dot = path.rfind('.');
  std::string leaf = dot == std::string::npos ? path : path.substr(dot + 1);
  // Array leaves compare under their enclosing field name (histograms are
  // value series: "bitWidthHistogram.3" classifies as "bitWidthHistogram").
  if (!leaf.empty() && std::isdigit(static_cast<unsigned char>(leaf[0])) != 0 &&
      dot != std::string::npos) {
    const std::size_t prev = path.rfind('.', dot - 1);
    leaf = prev == std::string::npos ? path.substr(0, dot) : path.substr(prev + 1, dot - prev - 1);
  }
  return kHard.count(leaf) != 0;
}

double relativeDelta(double base, double fresh) {
  const double denominator = std::max(std::abs(base), 1e-12);
  return std::abs(fresh - base) / denominator;
}

int usage() {
  std::cerr << "usage: bench_check <baseline.json> <fresh.json> [--tol R] [--time-tol R]\n";
  return 2;
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return usage();
  }
  double tol = 0.01;
  double timeTol = 0.5;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tol") == 0 && i + 1 < argc) {
      tol = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--time-tol") == 0 && i + 1 < argc) {
      timeTol = std::strtod(argv[++i], nullptr);
    } else {
      return usage();
    }
  }

  std::map<std::string, double> baseline;
  std::map<std::string, double> fresh;
  try {
    baseline = flattenFile(argv[1]);
    fresh = flattenFile(argv[2]);
  } catch (const std::exception& error) {
    std::cerr << "bench_check: " << error.what() << "\n";
    return 3;
  }

  std::cout << "bench_check: " << argv[2] << " vs baseline " << argv[1] << " (tol "
            << tol * 100.0 << "%, time-tol " << timeTol * 100.0 << "%)\n";
  std::cout << std::left << std::setw(6) << "state" << std::setw(52) << "key" << std::right
            << std::setw(14) << "baseline" << std::setw(14) << "fresh" << std::setw(10)
            << "delta" << "\n";

  std::size_t failures = 0;
  std::size_t warnings = 0;
  std::size_t compared = 0;
  const auto row = [](const char* state, const std::string& key, const std::string& base,
                      const std::string& current, const std::string& delta) {
    std::cout << std::left << std::setw(6) << state << std::setw(52) << key << std::right
              << std::setw(14) << base << std::setw(14) << current << std::setw(10) << delta
              << "\n";
  };
  const auto number = [](double v) {
    std::ostringstream os;
    os << std::setprecision(6) << v;
    return os.str();
  };

  for (const auto& [key, base] : baseline) {
    const bool hard = isHardKey(key);
    const auto it = fresh.find(key);
    if (it == fresh.end()) {
      // A key the baseline has but the fresh run lost is a regression in the
      // bench writer itself, regardless of classification.
      row("FAIL", key, number(base), "(missing)", "-");
      ++failures;
      continue;
    }
    ++compared;
    const double delta = relativeDelta(base, it->second);
    const double limit = hard ? tol : timeTol;
    if (delta <= limit) {
      continue; // quiet on in-tolerance keys: the table shows deviations only
    }
    std::ostringstream deltaText;
    deltaText << std::setprecision(3) << delta * 100.0 << "%";
    if (hard) {
      row("FAIL", key, number(base), number(it->second), deltaText.str());
      ++failures;
    } else {
      row("warn", key, number(base), number(it->second), deltaText.str());
      ++warnings;
    }
  }
  for (const auto& [key, value] : fresh) {
    if (baseline.find(key) == baseline.end()) {
      row("new", key, "-", number(value), "-");
    }
  }

  std::cout << compared << " keys compared, " << failures << " failures, " << warnings
            << " warnings\n";
  if (failures != 0) {
    std::cout << "RESULT: FAIL\n";
    return 1;
  }
  std::cout << "RESULT: " << (warnings != 0 ? "PASS (with warnings)\n" : "PASS\n");
  return 0;
}
