/// \file qadd_snapshot.cpp
/// Command-line inspector for QDDS snapshots and QCKP checkpoints:
///
///   qadd_snapshot info <file>                  header + meta (works on .qckp too)
///   qadd_snapshot verify <file>                full CRC + rebuild check
///   qadd_snapshot diff <a> <b>                 exact root comparison (exit 1 if different)
///   qadd_snapshot convert <in> <out> [eps]     algebraic -> numeric(double, eps) snapshot
///   qadd_snapshot write-sample <out> [qubits]  GHZ sample snapshot (CI artifact)
///
/// Exit codes: 0 success/identical, 1 diff found, 2 usage error, 3 bad file.
#include "io/checkpoint.hpp"
#include "io/snapshot.hpp"
#include "qc/circuit.hpp"
#include "qc/simulator.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>

namespace {

using namespace qadd;

/// True iff the blob is a QCKP checkpoint (vs a bare QDDS snapshot).
bool isCheckpoint(std::span<const std::uint8_t> bytes) {
  return bytes.size() >= io::kQckpMagic.size() &&
         std::equal(io::kQckpMagic.begin(), io::kQckpMagic.end(), bytes.begin());
}

/// Extract the QDDS blob: checkpoints are unwrapped, snapshots pass through.
std::vector<std::uint8_t> snapshotBytes(const std::string& path) {
  std::vector<std::uint8_t> bytes = io::readBytesFile(path);
  if (isCheckpoint(bytes)) {
    return io::readCheckpoint(bytes).snapshot;
  }
  return bytes;
}

/// Run `action(package, info)` with a package matching the snapshot's system
/// meta (algebraic, numeric double, or numeric long double).
template <class Action> int withMatchingPackage(const std::vector<std::uint8_t>& bytes, Action&& action) {
  const io::SnapshotInfo info = io::readInfo(bytes);
  if (info.system == io::SystemTag::Algebraic) {
    dd::AlgebraicSystem::Config config;
    config.normalization = static_cast<dd::AlgebraicSystem::Normalization>(info.normalization);
    dd::Package<dd::AlgebraicSystem> package(info.qubits, config);
    return action(package, info);
  }
  if (info.floatDigits == std::numeric_limits<double>::digits) {
    dd::NumericSystem::Config config;
    config.epsilon = info.epsilon;
    config.normalization = static_cast<dd::NumericSystem::Normalization>(info.normalization);
    dd::Package<dd::NumericSystem> package(info.qubits, config);
    return action(package, info);
  }
  if (info.floatDigits == std::numeric_limits<long double>::digits) {
    dd::ExtendedNumericSystem::Config config;
    config.epsilon = info.epsilon;
    config.normalization =
        static_cast<dd::ExtendedNumericSystem::Normalization>(info.normalization);
    dd::Package<dd::ExtendedNumericSystem> package(info.qubits, config);
    return action(package, info);
  }
  std::cerr << "qadd_snapshot: unsupported float precision (" << static_cast<int>(info.floatDigits)
            << " mantissa bits) on this platform\n";
  return 3;
}

/// Load the snapshot's DD (either kind) into `package`; returns the node
/// count of the rebuilt diagram.
template <class System>
std::size_t loadAndCount(dd::Package<System>& package, const std::vector<std::uint8_t>& bytes,
                         io::DdKind kind) {
  if (kind == io::DdKind::Vector) {
    const auto root = io::loadVector(package, bytes);
    return package.countNodes(root);
  }
  const auto root = io::loadMatrix(package, bytes);
  return package.countNodes(root);
}

int cmdInfo(const std::string& path) {
  std::vector<std::uint8_t> bytes = io::readBytesFile(path);
  std::cout << path << ": ";
  if (isCheckpoint(bytes)) {
    const io::CheckpointData checkpoint = io::readCheckpoint(bytes);
    const std::string& text = checkpoint.circuitText;
    std::cout << "QCKP checkpoint at gate " << checkpoint.gateIndex << " of circuit \""
              << text.substr(0, text.find('\n')) << "\" (" << bytes.size() << " bytes)\n";
    std::cout << "  embedded state: " << io::readInfo(checkpoint.snapshot).describe() << "\n";
    return 0;
  }
  std::cout << io::readInfo(bytes).describe() << "\n";
  return 0;
}

int cmdVerify(const std::string& path) {
  const std::vector<std::uint8_t> bytes = snapshotBytes(path);
  return withMatchingPackage(bytes, [&](auto& package, const io::SnapshotInfo& info) {
    const std::size_t rebuilt = loadAndCount(package, bytes, info.kind);
    std::cout << path << ": OK — " << info.describe() << "\n";
    std::cout << "  rebuilt canonical DD has " << rebuilt << " nodes ("
              << package.counters().io.loadDedupNodes.value() << " deduped on load)\n";
    if (rebuilt != info.nodeCount) {
      // A fresh package must reproduce the stored node count exactly; a
      // difference means the snapshot was not canonical for this system.
      std::cout << "  WARNING: stored node count is " << info.nodeCount
                << " (snapshot not canonical under this configuration)\n";
      return 1;
    }
    return 0;
  });
}

int cmdDiff(const std::string& pathA, const std::string& pathB) {
  const std::vector<std::uint8_t> bytesA = snapshotBytes(pathA);
  const std::vector<std::uint8_t> bytesB = snapshotBytes(pathB);
  const io::SnapshotInfo infoA = io::readInfo(bytesA);
  const io::SnapshotInfo infoB = io::readInfo(bytesB);
  if (infoA.kind != infoB.kind || infoA.system != infoB.system ||
      infoA.qubits != infoB.qubits || infoA.epsilon != infoB.epsilon ||
      infoA.floatDigits != infoB.floatDigits) {
    std::cout << "different (incomparable meta):\n  " << infoA.describe() << "\n  "
              << infoB.describe() << "\n";
    return 1;
  }
  // Load both into ONE package: canonicity makes equality a root comparison.
  return withMatchingPackage(bytesA, [&](auto& package, const io::SnapshotInfo& info) {
    if (info.kind == io::DdKind::Vector) {
      const auto rootA = io::loadVector(package, bytesA);
      package.incRef(rootA);
      const auto rootB = io::loadVector(package, bytesB);
      if (rootA == rootB) {
        std::cout << "identical (" << package.countNodes(rootA) << " shared nodes)\n";
        return 0;
      }
      const double fidelity = package.fidelity(rootA, rootB);
      std::cout << "different: |<a|b>|^2 = " << fidelity << ", " << package.countNodes(rootA)
                << " vs " << package.countNodes(rootB) << " nodes\n";
      return 1;
    }
    const auto rootA = io::loadMatrix(package, bytesA);
    package.incRef(rootA);
    const auto rootB = io::loadMatrix(package, bytesB);
    if (rootA == rootB) {
      std::cout << "identical (" << package.countNodes(rootA) << " shared nodes)\n";
      return 0;
    }
    std::cout << "different: " << package.countNodes(rootA) << " vs " << package.countNodes(rootB)
              << " nodes\n";
    return 1;
  });
}

int cmdConvert(const std::string& inPath, const std::string& outPath, double epsilon) {
  const std::vector<std::uint8_t> bytes = snapshotBytes(inPath);
  const io::SnapshotInfo info = io::readInfo(bytes);
  if (info.system != io::SystemTag::Algebraic) {
    std::cerr << "qadd_snapshot: convert expects an algebraic snapshot (numeric -> algebraic "
                 "would fabricate exactness)\n";
    return 2;
  }
  dd::AlgebraicSystem::Config algConfig;
  algConfig.normalization = static_cast<dd::AlgebraicSystem::Normalization>(info.normalization);
  dd::Package<dd::AlgebraicSystem> algebraic(info.qubits, algConfig);
  dd::NumericSystem::Config numConfig;
  numConfig.epsilon = epsilon;
  dd::Package<dd::NumericSystem> numeric(info.qubits, numConfig);
  std::vector<std::uint8_t> converted;
  if (info.kind == io::DdKind::Vector) {
    const auto algRoot = io::loadVector(algebraic, bytes);
    const auto numRoot = io::convertVector(algebraic, algRoot, numeric);
    converted = io::saveVector(numeric, numRoot);
  } else {
    const auto algRoot = io::loadMatrix(algebraic, bytes);
    const auto numRoot = io::convertMatrix(algebraic, algRoot, numeric);
    converted = io::saveMatrix(numeric, numRoot);
  }
  io::writeBytesFile(outPath, converted);
  std::cout << outPath << ": " << io::readInfo(converted).describe() << "\n";
  return 0;
}

int cmdWriteSample(const std::string& outPath, qc::Qubit nqubits) {
  // GHZ state: exactly representable, nontrivial weights (1/sqrt2^?), shares
  // structure — a good wire-format probe.
  qc::Circuit circuit(nqubits, "ghz");
  circuit.h(0);
  for (qc::Qubit q = 1; q < nqubits; ++q) {
    circuit.cx(q - 1, q);
  }
  qc::Simulator<dd::AlgebraicSystem> simulator(circuit);
  simulator.run();
  const std::vector<std::uint8_t> bytes =
      io::saveVector(simulator.package(), simulator.state());
  io::writeBytesFile(outPath, bytes);
  std::cout << outPath << ": " << io::readInfo(bytes).describe() << "\n";
  return 0;
}

int usage() {
  std::cerr << "usage: qadd_snapshot info <file>\n"
               "       qadd_snapshot verify <file>\n"
               "       qadd_snapshot diff <a> <b>\n"
               "       qadd_snapshot convert <in.qdds> <out.qdds> [eps]\n"
               "       qadd_snapshot write-sample <out.qdds> [qubits]\n";
  return 2;
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  const std::string command = argv[1];
  try {
    if (command == "info" && argc == 3) {
      return cmdInfo(argv[2]);
    }
    if (command == "verify" && argc == 3) {
      return cmdVerify(argv[2]);
    }
    if (command == "diff" && argc == 4) {
      return cmdDiff(argv[2], argv[3]);
    }
    if (command == "convert" && (argc == 4 || argc == 5)) {
      return cmdConvert(argv[2], argv[3], argc == 5 ? std::atof(argv[4]) : 0.0);
    }
    if (command == "write-sample" && (argc == 3 || argc == 4)) {
      return cmdWriteSample(argv[2],
                            argc == 4 ? static_cast<qc::Qubit>(std::atoi(argv[3])) : 8);
    }
  } catch (const io::SnapshotError& error) {
    std::cerr << "qadd_snapshot: " << error.what() << "\n";
    return 3;
  }
  return usage();
}
