/// \file qadd_prof.cpp
/// Command-line structural profiler for QDDS snapshots and QCKP checkpoints
/// (the CLI face of obs::profileDd and obs::renderPrometheus):
///
///   qadd_prof profile <file> [--json]      per-level node/edge/sharing table
///                                          (or the JSON object with --json)
///   qadd_prof dot <file> [--max-nodes N]   Graphviz DOT on stdout (refuses
///                                          diagrams above N nodes, default
///                                          256 — DOT is for small DDs)
///   qadd_prof metrics <file>               load the snapshot into a matching
///                                          package and render the resulting
///                                          telemetry in Prometheus text
///                                          format
///
/// Checkpoints are unwrapped to their embedded state snapshot, like
/// qadd_snapshot.  Exit codes: 0 success, 2 usage error, 3 bad file.
#include "io/checkpoint.hpp"
#include "io/snapshot.hpp"
#include "obs/exposition.hpp"
#include "obs/profiler.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

namespace {

using namespace qadd;

/// True iff the blob is a QCKP checkpoint (vs a bare QDDS snapshot).
bool isCheckpoint(std::span<const std::uint8_t> bytes) {
  return bytes.size() >= io::kQckpMagic.size() &&
         std::equal(io::kQckpMagic.begin(), io::kQckpMagic.end(), bytes.begin());
}

/// Extract the QDDS blob: checkpoints are unwrapped, snapshots pass through.
std::vector<std::uint8_t> snapshotBytes(const std::string& path) {
  std::vector<std::uint8_t> bytes = io::readBytesFile(path);
  if (isCheckpoint(bytes)) {
    return io::readCheckpoint(bytes).snapshot;
  }
  return bytes;
}

int cmdProfile(const std::string& path, bool json) {
  const std::vector<std::uint8_t> bytes = snapshotBytes(path);
  const obs::DdProfile profile = obs::profileSnapshot(bytes);
  if (json) {
    obs::writeProfileJson(std::cout, profile);
  } else {
    std::cout << path << ": " << io::readInfo(bytes).describe() << "\n";
    obs::printProfileTable(std::cout, profile);
  }
  return 0;
}

int cmdDot(const std::string& path, std::size_t maxNodes) {
  const std::vector<std::uint8_t> bytes = snapshotBytes(path);
  const io::SnapshotInfo info = io::readInfo(bytes);
  if (info.nodeCount > maxNodes) {
    std::cerr << "qadd_prof: " << path << " has " << info.nodeCount
              << " nodes; refusing to render DOT above " << maxNodes
              << " (raise with --max-nodes)\n";
    return 2;
  }
  std::cout << obs::snapshotToDot(bytes);
  return 0;
}

/// Load the snapshot into a fresh matching package and render that package's
/// telemetry snapshot (io counters, live nodes, weight-table view) in
/// Prometheus text format.
int cmdMetrics(const std::string& path) {
  const std::vector<std::uint8_t> bytes = snapshotBytes(path);
  const io::SnapshotInfo info = io::readInfo(bytes);
  const auto render = [&](auto& package) {
    if (info.kind == io::DdKind::Vector) {
      (void)io::loadVector(package, bytes);
    } else {
      (void)io::loadMatrix(package, bytes);
    }
    obs::renderPrometheus(std::cout, package.stats());
    return 0;
  };
  if (info.system == io::SystemTag::Algebraic) {
    dd::AlgebraicSystem::Config config;
    config.normalization = static_cast<dd::AlgebraicSystem::Normalization>(info.normalization);
    dd::Package<dd::AlgebraicSystem> package(info.qubits, config);
    return render(package);
  }
  if (info.floatDigits == std::numeric_limits<double>::digits) {
    dd::NumericSystem::Config config;
    config.epsilon = info.epsilon;
    config.normalization = static_cast<dd::NumericSystem::Normalization>(info.normalization);
    dd::Package<dd::NumericSystem> package(info.qubits, config);
    return render(package);
  }
  if (info.floatDigits == std::numeric_limits<long double>::digits) {
    dd::ExtendedNumericSystem::Config config;
    config.epsilon = info.epsilon;
    config.normalization =
        static_cast<dd::ExtendedNumericSystem::Normalization>(info.normalization);
    dd::Package<dd::ExtendedNumericSystem> package(info.qubits, config);
    return render(package);
  }
  std::cerr << "qadd_prof: unsupported float precision (" << static_cast<int>(info.floatDigits)
            << " mantissa bits) on this platform\n";
  return 3;
}

int usage() {
  std::cerr << "usage: qadd_prof profile <file> [--json]\n"
               "       qadd_prof dot <file> [--max-nodes N]\n"
               "       qadd_prof metrics <file>\n"
               "<file> is a QDDS snapshot or a QCKP checkpoint (embedded state\n"
               "is profiled).\n";
  return 2;
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return usage();
  }
  const std::string command = argv[1];
  const std::string path = argv[2];
  try {
    if (command == "profile") {
      bool json = false;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
          json = true;
        } else {
          return usage();
        }
      }
      return cmdProfile(path, json);
    }
    if (command == "dot") {
      std::size_t maxNodes = 256;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--max-nodes") == 0 && i + 1 < argc) {
          maxNodes = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
        } else {
          return usage();
        }
      }
      return cmdDot(path, maxNodes);
    }
    if (command == "metrics") {
      return cmdMetrics(path);
    }
  } catch (const std::exception& error) {
    std::cerr << "qadd_prof: " << error.what() << "\n";
    return 3;
  }
  return usage();
}
