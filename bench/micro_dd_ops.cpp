/// \file micro_dd_ops.cpp
/// Micro-benchmarks of QMDD primitives under both weight systems: gate DD
/// construction, matrix-vector multiplication, addition and node creation —
/// quantifying the per-operation overhead of exact arithmetic that the paper
/// discusses in Section V-B.
#include "algorithms/common.hpp"
#include "core/algebraic_system.hpp"
#include "core/numeric_system.hpp"
#include "core/package.hpp"
#include "qc/simulator.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace qadd;

template <class System> typename System::Config defaultConfig();
template <> dd::NumericSystem::Config defaultConfig<dd::NumericSystem>() {
  return {1e-12, dd::NumericSystem::Normalization::LeftmostNonzero};
}
template <> dd::AlgebraicSystem::Config defaultConfig<dd::AlgebraicSystem>() { return {}; }

template <class System> void BM_MakeGateDD(benchmark::State& state) {
  dd::Package<System> package(static_cast<dd::Qubit>(state.range(0)),
                              defaultConfig<System>());
  const qc::Operation h{qc::GateKind::H, 0.0, static_cast<qc::Qubit>(state.range(0) / 2), {}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(qc::makeOperationDD(package, h));
  }
}
BENCHMARK_TEMPLATE(BM_MakeGateDD, dd::NumericSystem)->Arg(8)->Arg(16);
BENCHMARK_TEMPLATE(BM_MakeGateDD, dd::AlgebraicSystem)->Arg(8)->Arg(16);

template <class System> void BM_GhzSimulation(benchmark::State& state) {
  const qc::Circuit circuit = algos::ghz(static_cast<qc::Qubit>(state.range(0)));
  for (auto _ : state) {
    qc::Simulator<System> simulator(circuit, defaultConfig<System>());
    simulator.run();
    benchmark::DoNotOptimize(simulator.state());
  }
}
BENCHMARK_TEMPLATE(BM_GhzSimulation, dd::NumericSystem)->Arg(10)->Arg(20);
BENCHMARK_TEMPLATE(BM_GhzSimulation, dd::AlgebraicSystem)->Arg(10)->Arg(20);

template <class System> void BM_HtLayerMultiply(benchmark::State& state) {
  // One H+T layer applied to an evolving state: a dense-ish workload.
  const auto n = static_cast<dd::Qubit>(state.range(0));
  qc::Circuit circuit(n);
  for (dd::Qubit q = 0; q < n; ++q) {
    circuit.h(q);
    circuit.t(q);
  }
  for (dd::Qubit q = 0; q + 1 < n; ++q) {
    circuit.cx(q, q + 1);
  }
  for (auto _ : state) {
    qc::Simulator<System> simulator(circuit, defaultConfig<System>());
    simulator.run();
    benchmark::DoNotOptimize(simulator.state());
  }
}
BENCHMARK_TEMPLATE(BM_HtLayerMultiply, dd::NumericSystem)->Arg(6)->Arg(10);
BENCHMARK_TEMPLATE(BM_HtLayerMultiply, dd::AlgebraicSystem)->Arg(6)->Arg(10);

template <class System> void BM_InnerProduct(benchmark::State& state) {
  const qc::Circuit circuit = algos::ghz(static_cast<qc::Qubit>(state.range(0)));
  qc::Simulator<System> simulator(circuit, defaultConfig<System>());
  simulator.run();
  auto& package = simulator.package();
  for (auto _ : state) {
    benchmark::DoNotOptimize(package.innerProduct(simulator.state(), simulator.state()));
    package.clearCaches(); // measure the computation, not the cache hit
  }
}
BENCHMARK_TEMPLATE(BM_InnerProduct, dd::NumericSystem)->Arg(12);
BENCHMARK_TEMPLATE(BM_InnerProduct, dd::AlgebraicSystem)->Arg(12);

} // namespace
