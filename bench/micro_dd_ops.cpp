/// \file micro_dd_ops.cpp
/// Micro-benchmarks of QMDD primitives under both weight systems: gate DD
/// construction, matrix-vector multiplication, addition and node creation —
/// quantifying the per-operation overhead of exact arithmetic that the paper
/// discusses in Section V-B.
///
/// Each benchmark also reports the operation-cache hit rate of the measured
/// workload (qadd::obs counters) alongside ops/sec, and the binary writes a
/// BENCH_obs.json telemetry snapshot (counters + timings of a fixed
/// reference workload) so future performance PRs have a baseline to diff
/// against, and a BENCH_io.json snapshot-layer report (QDDS save/load
/// throughput plus the fig3-style reference-cache speedup).
#include "algorithms/common.hpp"
#include "algorithms/grover.hpp"
#include "core/algebraic_system.hpp"
#include "core/numeric_system.hpp"
#include "core/package.hpp"
#include "eval/reference_cache.hpp"
#include "eval/report.hpp"
#include "io/snapshot.hpp"
#include "obs/timeline.hpp"
#include "qc/simulator.hpp"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>

namespace {

using namespace qadd;

template <class System> typename System::Config defaultConfig();
template <> dd::NumericSystem::Config defaultConfig<dd::NumericSystem>() {
  return {1e-12, dd::NumericSystem::Normalization::LeftmostNonzero};
}
template <> dd::AlgebraicSystem::Config defaultConfig<dd::AlgebraicSystem>() { return {}; }

/// Expose the telemetry of a finished workload as per-benchmark counters.
template <class System>
void reportObsCounters(benchmark::State& state, const dd::Package<System>& package) {
  const obs::PackageStats& stats = package.counters();
  state.counters["cache_hit_rate"] = stats.combinedCacheHitRate();
  state.counters["utable_hit_rate"] =
      (stats.vUnique.hitRate() + stats.mUnique.hitRate()) / 2.0;
}

template <class System> void BM_MakeGateDD(benchmark::State& state) {
  dd::Package<System> package(static_cast<dd::Qubit>(state.range(0)),
                              defaultConfig<System>());
  const qc::Operation h{qc::GateKind::H, 0.0, static_cast<qc::Qubit>(state.range(0) / 2), {}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(qc::makeOperationDD(package, h));
  }
  reportObsCounters(state, package);
}
BENCHMARK_TEMPLATE(BM_MakeGateDD, dd::NumericSystem)->Arg(8)->Arg(16);
BENCHMARK_TEMPLATE(BM_MakeGateDD, dd::AlgebraicSystem)->Arg(8)->Arg(16);

template <class System> void BM_GhzSimulation(benchmark::State& state) {
  const qc::Circuit circuit = algos::ghz(static_cast<qc::Qubit>(state.range(0)));
  for (auto _ : state) {
    qc::Simulator<System> simulator(circuit, defaultConfig<System>());
    simulator.run();
    benchmark::DoNotOptimize(simulator.state());
    state.PauseTiming();
    reportObsCounters(state, simulator.package());
    state.ResumeTiming();
  }
}
BENCHMARK_TEMPLATE(BM_GhzSimulation, dd::NumericSystem)->Arg(10)->Arg(20);
BENCHMARK_TEMPLATE(BM_GhzSimulation, dd::AlgebraicSystem)->Arg(10)->Arg(20);

template <class System> void BM_GroverSimulation(benchmark::State& state) {
  algos::GroverOptions options;
  options.nqubits = static_cast<qc::Qubit>(state.range(0));
  options.marked = (std::uint64_t{1} << options.nqubits) - 2;
  const qc::Circuit circuit = algos::grover(options);
  for (auto _ : state) {
    qc::Simulator<System> simulator(circuit, defaultConfig<System>());
    simulator.run();
    benchmark::DoNotOptimize(simulator.state());
    state.PauseTiming();
    reportObsCounters(state, simulator.package());
    state.ResumeTiming();
  }
}
BENCHMARK_TEMPLATE(BM_GroverSimulation, dd::NumericSystem)->Arg(8);
BENCHMARK_TEMPLATE(BM_GroverSimulation, dd::AlgebraicSystem)->Arg(8);

template <class System> void BM_HtLayerMultiply(benchmark::State& state) {
  // One H+T layer applied to an evolving state: a dense-ish workload.
  const auto n = static_cast<dd::Qubit>(state.range(0));
  qc::Circuit circuit(n);
  for (dd::Qubit q = 0; q < n; ++q) {
    circuit.h(q);
    circuit.t(q);
  }
  for (dd::Qubit q = 0; q + 1 < n; ++q) {
    circuit.cx(q, q + 1);
  }
  for (auto _ : state) {
    qc::Simulator<System> simulator(circuit, defaultConfig<System>());
    simulator.run();
    benchmark::DoNotOptimize(simulator.state());
    state.PauseTiming();
    reportObsCounters(state, simulator.package());
    state.ResumeTiming();
  }
}
BENCHMARK_TEMPLATE(BM_HtLayerMultiply, dd::NumericSystem)->Arg(6)->Arg(10);
BENCHMARK_TEMPLATE(BM_HtLayerMultiply, dd::AlgebraicSystem)->Arg(6)->Arg(10);

template <class System> void BM_InnerProduct(benchmark::State& state) {
  const qc::Circuit circuit = algos::ghz(static_cast<qc::Qubit>(state.range(0)));
  qc::Simulator<System> simulator(circuit, defaultConfig<System>());
  simulator.run();
  auto& package = simulator.package();
  for (auto _ : state) {
    benchmark::DoNotOptimize(package.innerProduct(simulator.state(), simulator.state()));
    package.clearCaches(dd::CacheKind::Inner); // measure the computation, not the cache hit
  }
  reportObsCounters(state, package);
}
BENCHMARK_TEMPLATE(BM_InnerProduct, dd::NumericSystem)->Arg(12);
BENCHMARK_TEMPLATE(BM_InnerProduct, dd::AlgebraicSystem)->Arg(12);

/// A nontrivial Grover final state to serialize (rich weight set, deep DD).
qc::Circuit snapshotWorkload(qc::Qubit nqubits) {
  algos::GroverOptions options;
  options.nqubits = nqubits;
  options.marked = (std::uint64_t{1} << nqubits) - 2;
  return algos::grover(options);
}

template <class System> void BM_SnapshotSave(benchmark::State& state) {
  qc::Simulator<System> simulator(snapshotWorkload(static_cast<qc::Qubit>(state.range(0))),
                                  defaultConfig<System>());
  simulator.run();
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto blob = io::saveVector(simulator.package(), simulator.state());
    benchmark::DoNotOptimize(blob.data());
    bytes = blob.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["snapshot_bytes"] = static_cast<double>(bytes);
}
BENCHMARK_TEMPLATE(BM_SnapshotSave, dd::NumericSystem)->Arg(10);
BENCHMARK_TEMPLATE(BM_SnapshotSave, dd::AlgebraicSystem)->Arg(10);

template <class System> void BM_SnapshotLoad(benchmark::State& state) {
  qc::Simulator<System> simulator(snapshotWorkload(static_cast<qc::Qubit>(state.range(0))),
                                  defaultConfig<System>());
  simulator.run();
  const auto blob = io::saveVector(simulator.package(), simulator.state());
  for (auto _ : state) {
    // Fresh package per iteration: measure a cold re-intern, not table hits.
    state.PauseTiming();
    dd::Package<System> package(simulator.package().qubits(), defaultConfig<System>());
    state.ResumeTiming();
    benchmark::DoNotOptimize(io::loadVector(package, blob));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(blob.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK_TEMPLATE(BM_SnapshotLoad, dd::NumericSystem)->Arg(10);
BENCHMARK_TEMPLATE(BM_SnapshotLoad, dd::AlgebraicSystem)->Arg(10);

/// Fixed reference workload whose telemetry snapshot becomes the
/// BENCH_obs.json baseline: a 14-qubit GHZ simulation per weight system.
template <class System>
void writeSnapshotEntry(std::ostream& os, const char* key) {
  const qc::Circuit circuit = algos::ghz(14);
  const auto start = std::chrono::steady_clock::now();
  qc::Simulator<System> simulator(circuit, defaultConfig<System>());
  simulator.run();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  os << "\"" << key << "\":{\"workload\":\"ghz14\",\"seconds\":" << seconds
     << ",\"finalNodes\":" << simulator.stateNodes() << ",\"telemetry\":";
  eval::writeStatsJson(os, simulator.package().stats());
  os << "}";
}

/// Telemetry extract for the BENCH_core.json series: combined operation-cache
/// hit rate plus the total number of direct-mapped evictions across the DD
/// caches and the weight-op caches.
struct SeriesTelemetry {
  double cacheHitRate = 0.0;
  std::uint64_t evictions = 0;
};

template <class System> void accumulateTelemetry(const dd::Package<System>& package, SeriesTelemetry& out) {
  const obs::PackageStats stats = package.stats();
  out.cacheHitRate = stats.combinedCacheHitRate(); // of the last package in the series
  for (const auto& [name, cache] : stats.caches()) {
    (void)name;
    out.evictions += cache->evictions.value();
  }
  out.evictions += stats.weights.opCache.evictions.value();
}

/// The storage-refactor before/after series: the same GHZ and Grover
/// workloads timed at the pre-refactor seed (std::deque pools +
/// std::unordered_map tables/caches; Release -O3, best of 3) are embedded as
/// the `baselineSeconds` constants, so the JSON carries its own speedup
/// verdict on any machine of comparable class.
template <class System> double timeGhzSeries(SeriesTelemetry& telemetry) {
  const auto start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < 30; ++rep) {
    for (qc::Qubit n = 8; n <= 20; n += 4) {
      qc::Simulator<System> simulator(algos::ghz(n), defaultConfig<System>());
      simulator.run();
      if (rep == 29 && n == 20) {
        accumulateTelemetry(simulator.package(), telemetry);
      }
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

template <class System> double timeGroverSeries(SeriesTelemetry& telemetry) {
  const auto start = std::chrono::steady_clock::now();
  for (qc::Qubit n = 8; n <= 12; n += 2) {
    algos::GroverOptions options;
    options.nqubits = n;
    options.marked = (std::uint64_t{1} << n) - 2;
    qc::Simulator<System> simulator(algos::grover(options), defaultConfig<System>());
    simulator.run();
    if (n == 12) {
      accumulateTelemetry(simulator.package(), telemetry);
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

void writeSeriesJson(std::ostream& os, const char* key, double seconds, double baselineSeconds,
                     const SeriesTelemetry& telemetry) {
  os << "\"" << key << "\":{\"seconds\":" << seconds << ",\"baselineSeconds\":" << baselineSeconds
     << ",\"speedup\":" << (seconds > 0.0 ? baselineSeconds / seconds : 0.0)
     << ",\"cacheHitRate\":" << telemetry.cacheHitRate
     << ",\"evictions\":" << telemetry.evictions << "}";
}

void writeBenchCore(const char* path) {
  // Pre-refactor seed timings of exactly these series (see workloads above).
  constexpr double kBaselineGhzNumeric = 0.0141;
  constexpr double kBaselineGhzAlgebraic = 0.0461;
  constexpr double kBaselineGroverNumeric = 0.0449;
  constexpr double kBaselineGroverAlgebraic = 1.9193;

  std::ofstream os(path);
  if (!os) {
    std::cerr << "could not write " << path << "\n";
    return;
  }
  // Per-series best over three interleaved rounds — the methodology the
  // baseline constants were measured with.  Interleaving matters: round 0
  // additionally pays the process's heap-growth page faults (glibc's dynamic
  // mmap threshold only stops mmap/munmap-ing the large cache arrays after
  // the Grover series has freed blocks of that size), which is one-time
  // warm-up, not the steady-state cost the before/after comparison targets.
  constexpr int kRounds = 3;
  double best[4] = {};
  SeriesTelemetry telemetry[4];
  for (int round = 0; round < kRounds; ++round) {
    SeriesTelemetry roundTelemetry[4];
    const double seconds[4] = {
        timeGhzSeries<dd::NumericSystem>(roundTelemetry[0]),
        timeGhzSeries<dd::AlgebraicSystem>(roundTelemetry[1]),
        timeGroverSeries<dd::NumericSystem>(roundTelemetry[2]),
        timeGroverSeries<dd::AlgebraicSystem>(roundTelemetry[3]),
    };
    for (int i = 0; i < 4; ++i) {
      if (round == 0 || seconds[i] < best[i]) {
        best[i] = seconds[i];
        telemetry[i] = roundTelemetry[i];
      }
    }
  }

  os << std::setprecision(6);
  os << "{\"obsEnabled\":" << (obs::kEnabled ? "true" : "false")
     << ",\"workloads\":{\"ghz\":\"30 reps x n in {8,12,16,20}\","
     << "\"grover\":\"n in {8,10,12}, marked = 2^n - 2\"},"
     << "\"methodology\":\"per-series best of " << kRounds << " interleaved rounds\",\"series\":{";
  writeSeriesJson(os, "ghz_numeric", best[0], kBaselineGhzNumeric, telemetry[0]);
  os << ",";
  writeSeriesJson(os, "ghz_algebraic", best[1], kBaselineGhzAlgebraic, telemetry[1]);
  os << ",";
  writeSeriesJson(os, "grover_numeric", best[2], kBaselineGroverNumeric, telemetry[2]);
  os << ",";
  writeSeriesJson(os, "grover_algebraic", best[3], kBaselineGroverAlgebraic, telemetry[3]);
  const double totalSeconds = best[0] + best[1] + best[2] + best[3];
  const double totalBaseline = kBaselineGhzNumeric + kBaselineGhzAlgebraic +
                               kBaselineGroverNumeric + kBaselineGroverAlgebraic;
  os << "},\"aggregate\":{\"seconds\":" << totalSeconds
     << ",\"baselineSeconds\":" << totalBaseline
     << ",\"speedup\":" << (totalSeconds > 0.0 ? totalBaseline / totalSeconds : 0.0) << "}}\n";
  std::cout << "storage-layer series written to " << path << "\n";
}

/// Snapshot-layer timings for BENCH_io.json: save/load throughput (MB/s)
/// over a Grover final state under both weight systems, plus the
/// reference-cache speedup of a fig3-style run (algebraic trace recomputed
/// vs reloaded from a QREF file).
template <class System>
void writeIoThroughputEntry(std::ostream& os, const char* key, qc::Qubit nqubits) {
  qc::Simulator<System> simulator(snapshotWorkload(nqubits), defaultConfig<System>());
  simulator.run();
  constexpr int kReps = 50;

  std::vector<std::uint8_t> blob;
  const auto saveStart = std::chrono::steady_clock::now();
  for (int rep = 0; rep < kReps; ++rep) {
    blob = io::saveVector(simulator.package(), simulator.state());
  }
  const double saveSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - saveStart).count() / kReps;

  double loadSeconds = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    dd::Package<System> fresh(simulator.package().qubits(), defaultConfig<System>());
    const auto loadStart = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(io::loadVector(fresh, blob));
    loadSeconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - loadStart).count();
  }
  loadSeconds /= kReps;

  const double megabytes = static_cast<double>(blob.size()) / (1024.0 * 1024.0);
  os << "\"" << key << "\":{\"workload\":\"grover" << static_cast<unsigned>(nqubits)
     << " final state\",\"bytes\":" << blob.size()
     << ",\"nodes\":" << simulator.package().countNodes(simulator.state())
     << ",\"saveSeconds\":" << saveSeconds << ",\"loadSeconds\":" << loadSeconds
     << ",\"saveMBps\":" << (saveSeconds > 0.0 ? megabytes / saveSeconds : 0.0)
     << ",\"loadMBps\":" << (loadSeconds > 0.0 ? megabytes / loadSeconds : 0.0) << "}";
}

void writeBenchIo(const char* path) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "could not write " << path << "\n";
    return;
  }
  os << std::setprecision(6);
  os << "{\"obsEnabled\":" << (obs::kEnabled ? "true" : "false") << ",\"throughput\":{";
  writeIoThroughputEntry<dd::NumericSystem>(os, "numeric", 10);
  os << ",";
  writeIoThroughputEntry<dd::AlgebraicSystem>(os, "algebraic", 10);
  os << "},";

  // fig3-style reference-cache speedup: cold compute+save vs warm load.
  const qc::Circuit circuit = snapshotWorkload(9);
  eval::TraceOptions options;
  options.sampleEvery = std::max<std::size_t>(1, circuit.size() / 60);
  const char* cachePath = "BENCH_io_reference.qref";
  std::remove(cachePath);
  const auto cold = eval::traceAlgebraicCached(circuit, options, cachePath);
  const auto warm = eval::traceAlgebraicCached(circuit, options, cachePath);
  const double coldSeconds = cold.trace.totalSeconds + cold.cacheSeconds;
  os << "\"referenceCache\":{\"workload\":\"fig3-style grover9 algebraic reference\","
     << "\"computeSeconds\":" << cold.trace.totalSeconds
     << ",\"saveSeconds\":" << cold.cacheSeconds << ",\"loadSeconds\":" << warm.cacheSeconds
     << ",\"hit\":" << (warm.fromCache ? "true" : "false")
     << ",\"speedup\":" << (warm.cacheSeconds > 0.0 ? coldSeconds / warm.cacheSeconds : 0.0)
     << "}}\n";
  std::remove(cachePath);
  std::cout << "snapshot timings written to " << path << "\n";
}

/// Per-gate timeline-sampling overhead: the ratio of the sampler's direct
/// per-sample cost (building a Kind::Gate sample, reading every package
/// gauge, and recording it into the global ring — the exact per-gate path
/// the simulator runs) to the workload's per-gate simulation cost.  Both
/// sides are min-of-five of long timed loops, so the ratio is stable on
/// noisy shared machines where differencing two nearly-equal whole-run wall
/// times (sampler off vs on) swings by several percent between invocations.
/// The reported `overhead` ratio is the number the <= 3% sampler-cost budget
/// is checked against; `samples` is the (deterministic) gate count of one
/// instrumented run.
void writeTimelineOverheadEntry(std::ostream& os) {
  algos::GroverOptions options;
  options.nqubits = 10;
  options.marked = (std::uint64_t{1} << 10) - 2;
  const qc::Circuit circuit = algos::grover(options);
  const std::size_t gates = circuit.size();
  constexpr int kRounds = 5;

  // Per-gate simulation cost with the sampler off.
  auto& timeline = obs::Timeline::global();
  timeline.setEnabled(false);
  double gateSeconds = std::numeric_limits<double>::infinity();
  for (int round = 0; round < kRounds; ++round) {
    const auto start = std::chrono::steady_clock::now();
    qc::Simulator<dd::NumericSystem> simulator(circuit, defaultConfig<dd::NumericSystem>());
    simulator.run();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    gateSeconds = std::min(gateSeconds, seconds / static_cast<double>(gates));
  }

  // Per-sample cost against the finished run's package (live gauges, full
  // ring including wrap-around drops).
  qc::Simulator<dd::NumericSystem> simulator(circuit, defaultConfig<dd::NumericSystem>());
  simulator.run();
  const auto& package = simulator.package();
  timeline.setEnabled(true);
  constexpr int kSamplesPerRound = 200000;
  double sampleSeconds = std::numeric_limits<double>::infinity();
  for (int round = 0; round < kRounds; ++round) {
    timeline.clear();
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kSamplesPerRound; ++i) {
      obs::Timeline::Sample sample;
      sample.kind = obs::Timeline::Kind::Gate;
      sample.gateIndex = static_cast<std::size_t>(i);
      obs::Timeline::fillSeriesContext(sample);
      package.sampleTimeline(sample);
      timeline.record(std::move(sample));
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    sampleSeconds = std::min(sampleSeconds, seconds / kSamplesPerRound);
  }
  timeline.setEnabled(false);
  timeline.clear();

  os << "\"timelineOverhead\":{\"workload\":\"grover10 numeric\",\"perSampleSeconds\":"
     << sampleSeconds << ",\"perGateSeconds\":" << gateSeconds
     << ",\"overhead\":" << (gateSeconds > 0.0 ? sampleSeconds / gateSeconds : 0.0)
     << ",\"samples\":" << gates << "}";
}

void writeBenchObsSnapshot(const char* path) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "could not write " << path << "\n";
    return;
  }
  os << std::setprecision(6);
  os << "{\"obsEnabled\":" << (obs::kEnabled ? "true" : "false") << ",";
  writeSnapshotEntry<dd::NumericSystem>(os, "numeric");
  os << ",";
  writeSnapshotEntry<dd::AlgebraicSystem>(os, "algebraic");
  os << ",";
  writeTimelineOverheadEntry(os);
  os << "}\n";
  std::cout << "telemetry baseline written to " << path << "\n";
}

} // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  writeBenchObsSnapshot("BENCH_obs.json");
  writeBenchCore("BENCH_core.json");
  writeBenchIo("BENCH_io.json");
  return 0;
}
