/// \file micro_dd_ops.cpp
/// Micro-benchmarks of QMDD primitives under both weight systems: gate DD
/// construction, matrix-vector multiplication, addition and node creation —
/// quantifying the per-operation overhead of exact arithmetic that the paper
/// discusses in Section V-B.
///
/// Each benchmark also reports the operation-cache hit rate of the measured
/// workload (qadd::obs counters) alongside ops/sec, and the binary writes a
/// BENCH_obs.json telemetry snapshot (counters + timings of a fixed
/// reference workload) so future performance PRs have a baseline to diff
/// against.
#include "algorithms/common.hpp"
#include "core/algebraic_system.hpp"
#include "core/numeric_system.hpp"
#include "core/package.hpp"
#include "eval/report.hpp"
#include "qc/simulator.hpp"

#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>

namespace {

using namespace qadd;

template <class System> typename System::Config defaultConfig();
template <> dd::NumericSystem::Config defaultConfig<dd::NumericSystem>() {
  return {1e-12, dd::NumericSystem::Normalization::LeftmostNonzero};
}
template <> dd::AlgebraicSystem::Config defaultConfig<dd::AlgebraicSystem>() { return {}; }

/// Expose the telemetry of a finished workload as per-benchmark counters.
template <class System>
void reportObsCounters(benchmark::State& state, const dd::Package<System>& package) {
  const obs::PackageStats& stats = package.counters();
  state.counters["cache_hit_rate"] = stats.combinedCacheHitRate();
  state.counters["utable_hit_rate"] =
      (stats.vUnique.hitRate() + stats.mUnique.hitRate()) / 2.0;
}

template <class System> void BM_MakeGateDD(benchmark::State& state) {
  dd::Package<System> package(static_cast<dd::Qubit>(state.range(0)),
                              defaultConfig<System>());
  const qc::Operation h{qc::GateKind::H, 0.0, static_cast<qc::Qubit>(state.range(0) / 2), {}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(qc::makeOperationDD(package, h));
  }
  reportObsCounters(state, package);
}
BENCHMARK_TEMPLATE(BM_MakeGateDD, dd::NumericSystem)->Arg(8)->Arg(16);
BENCHMARK_TEMPLATE(BM_MakeGateDD, dd::AlgebraicSystem)->Arg(8)->Arg(16);

template <class System> void BM_GhzSimulation(benchmark::State& state) {
  const qc::Circuit circuit = algos::ghz(static_cast<qc::Qubit>(state.range(0)));
  for (auto _ : state) {
    qc::Simulator<System> simulator(circuit, defaultConfig<System>());
    simulator.run();
    benchmark::DoNotOptimize(simulator.state());
    state.PauseTiming();
    reportObsCounters(state, simulator.package());
    state.ResumeTiming();
  }
}
BENCHMARK_TEMPLATE(BM_GhzSimulation, dd::NumericSystem)->Arg(10)->Arg(20);
BENCHMARK_TEMPLATE(BM_GhzSimulation, dd::AlgebraicSystem)->Arg(10)->Arg(20);

template <class System> void BM_HtLayerMultiply(benchmark::State& state) {
  // One H+T layer applied to an evolving state: a dense-ish workload.
  const auto n = static_cast<dd::Qubit>(state.range(0));
  qc::Circuit circuit(n);
  for (dd::Qubit q = 0; q < n; ++q) {
    circuit.h(q);
    circuit.t(q);
  }
  for (dd::Qubit q = 0; q + 1 < n; ++q) {
    circuit.cx(q, q + 1);
  }
  for (auto _ : state) {
    qc::Simulator<System> simulator(circuit, defaultConfig<System>());
    simulator.run();
    benchmark::DoNotOptimize(simulator.state());
    state.PauseTiming();
    reportObsCounters(state, simulator.package());
    state.ResumeTiming();
  }
}
BENCHMARK_TEMPLATE(BM_HtLayerMultiply, dd::NumericSystem)->Arg(6)->Arg(10);
BENCHMARK_TEMPLATE(BM_HtLayerMultiply, dd::AlgebraicSystem)->Arg(6)->Arg(10);

template <class System> void BM_InnerProduct(benchmark::State& state) {
  const qc::Circuit circuit = algos::ghz(static_cast<qc::Qubit>(state.range(0)));
  qc::Simulator<System> simulator(circuit, defaultConfig<System>());
  simulator.run();
  auto& package = simulator.package();
  for (auto _ : state) {
    benchmark::DoNotOptimize(package.innerProduct(simulator.state(), simulator.state()));
    package.clearCaches(dd::CacheKind::Inner); // measure the computation, not the cache hit
  }
  reportObsCounters(state, package);
}
BENCHMARK_TEMPLATE(BM_InnerProduct, dd::NumericSystem)->Arg(12);
BENCHMARK_TEMPLATE(BM_InnerProduct, dd::AlgebraicSystem)->Arg(12);

/// Fixed reference workload whose telemetry snapshot becomes the
/// BENCH_obs.json baseline: a 14-qubit GHZ simulation per weight system.
template <class System>
void writeSnapshotEntry(std::ostream& os, const char* key) {
  const qc::Circuit circuit = algos::ghz(14);
  const auto start = std::chrono::steady_clock::now();
  qc::Simulator<System> simulator(circuit, defaultConfig<System>());
  simulator.run();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  os << "\"" << key << "\":{\"workload\":\"ghz14\",\"seconds\":" << seconds
     << ",\"finalNodes\":" << simulator.stateNodes() << ",\"telemetry\":";
  eval::writeStatsJson(os, simulator.package().stats());
  os << "}";
}

void writeBenchObsSnapshot(const char* path) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "could not write " << path << "\n";
    return;
  }
  os << "{\"obsEnabled\":" << (obs::kEnabled ? "true" : "false") << ",";
  writeSnapshotEntry<dd::NumericSystem>(os, "numeric");
  os << ",";
  writeSnapshotEntry<dd::AlgebraicSystem>(os, "algebraic");
  os << "}\n";
  std::cout << "telemetry baseline written to " << path << "\n";
}

} // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  writeBenchObsSnapshot("BENCH_obs.json");
  return 0;
}
