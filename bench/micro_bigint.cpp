/// \file micro_bigint.cpp
/// Micro-benchmarks of the BigInt substrate (the GMP replacement): the
/// primitive operations whose cost drives the algebraic QMDD's overhead.
#include "bigint/bigint.hpp"

#include <benchmark/benchmark.h>

#include <random>

namespace {

using qadd::BigInt;

BigInt randomBigInt(std::mt19937_64& rng, int limbs) {
  BigInt value{static_cast<std::int64_t>(rng() | 1)};
  for (int i = 1; i < limbs; ++i) {
    value = value * BigInt{static_cast<std::int64_t>(rng() | 1)} +
            BigInt{static_cast<std::int64_t>(rng() % 1000)};
  }
  return value;
}

void BM_BigIntAdd(benchmark::State& state) {
  std::mt19937_64 rng(3);
  const BigInt a = randomBigInt(rng, static_cast<int>(state.range(0)));
  const BigInt b = randomBigInt(rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a + b);
  }
}
BENCHMARK(BM_BigIntAdd)->Arg(1)->Arg(8)->Arg(64);

void BM_BigIntMul(benchmark::State& state) {
  std::mt19937_64 rng(5);
  const BigInt a = randomBigInt(rng, static_cast<int>(state.range(0)));
  const BigInt b = randomBigInt(rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigIntMul)->Arg(1)->Arg(8)->Arg(32)->Arg(128); // crosses Karatsuba threshold

void BM_BigIntDivMod(benchmark::State& state) {
  std::mt19937_64 rng(7);
  const BigInt a = randomBigInt(rng, static_cast<int>(state.range(0)));
  const BigInt b = randomBigInt(rng, static_cast<int>(state.range(0)) / 2 + 1);
  BigInt q;
  BigInt r;
  for (auto _ : state) {
    BigInt::divMod(a, b, q, r);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_BigIntDivMod)->Arg(2)->Arg(16)->Arg(64);

void BM_BigIntGcd(benchmark::State& state) {
  std::mt19937_64 rng(9);
  const BigInt g = randomBigInt(rng, 2);
  const BigInt a = g * randomBigInt(rng, static_cast<int>(state.range(0)));
  const BigInt b = g * randomBigInt(rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::gcd(a, b));
  }
}
BENCHMARK(BM_BigIntGcd)->Arg(2)->Arg(8)->Arg(24);

void BM_BigIntToString(benchmark::State& state) {
  std::mt19937_64 rng(11);
  const BigInt a = randomBigInt(rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.toString());
  }
}
BENCHMARK(BM_BigIntToString)->Arg(4)->Arg(32);

} // namespace
