/// \file micro_bigint.cpp
/// Micro-benchmarks of the BigInt substrate (the GMP replacement): the
/// primitive operations whose cost drives the algebraic QMDD's overhead.
///
/// The binary provides its own main: after the google-benchmark run it
/// measures a fixed small-operand series (BigInt word ops plus the Z[omega] /
/// Q[omega] hot operations the int64 kernels accelerate) with the
/// operator-new probe attached and writes BENCH_bigint.json — ns/op and
/// allocs/op, against the pre-SSO seed baselines embedded below, plus a
/// forced-spill column (runtime fast paths disabled) showing the cost of the
/// general path on the same operands.
#include "alloc_probe.hpp"

#include "algebraic/euclidean.hpp"
#include "algebraic/qomega.hpp"
#include "bigint/bigint.hpp"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <random>
#include <vector>

namespace {

using qadd::BigInt;
using qadd::alg::QOmega;
using qadd::alg::ZOmega;

BigInt randomBigInt(std::mt19937_64& rng, int limbs) {
  BigInt value{static_cast<std::int64_t>(rng() | 1)};
  for (int i = 1; i < limbs; ++i) {
    value = value * BigInt{static_cast<std::int64_t>(rng() | 1)} +
            BigInt{static_cast<std::int64_t>(rng() % 1000)};
  }
  return value;
}

/// allocs/op of the timed loop, attached as a benchmark counter.
struct AllocScope {
  explicit AllocScope(benchmark::State& state)
      : state_(state), start_(qadd::benchprobe::allocationCount()) {}
  ~AllocScope() {
    const auto total = qadd::benchprobe::allocationCount() - start_;
    state_.counters["allocs_per_op"] =
        state_.iterations() == 0
            ? 0.0
            : static_cast<double>(total) / static_cast<double>(state_.iterations());
  }
  benchmark::State& state_;
  std::uint64_t start_;
};

void BM_BigIntAdd(benchmark::State& state) {
  std::mt19937_64 rng(3);
  const BigInt a = randomBigInt(rng, static_cast<int>(state.range(0)));
  const BigInt b = randomBigInt(rng, static_cast<int>(state.range(0)));
  AllocScope allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a + b);
  }
}
BENCHMARK(BM_BigIntAdd)->Arg(1)->Arg(8)->Arg(64);

void BM_BigIntMul(benchmark::State& state) {
  std::mt19937_64 rng(5);
  const BigInt a = randomBigInt(rng, static_cast<int>(state.range(0)));
  const BigInt b = randomBigInt(rng, static_cast<int>(state.range(0)));
  AllocScope allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigIntMul)->Arg(1)->Arg(8)->Arg(32)->Arg(128); // crosses Karatsuba threshold

void BM_BigIntDivMod(benchmark::State& state) {
  std::mt19937_64 rng(7);
  const BigInt a = randomBigInt(rng, static_cast<int>(state.range(0)));
  const BigInt b = randomBigInt(rng, static_cast<int>(state.range(0)) / 2 + 1);
  BigInt q;
  BigInt r;
  AllocScope allocs(state);
  for (auto _ : state) {
    BigInt::divMod(a, b, q, r);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_BigIntDivMod)->Arg(2)->Arg(16)->Arg(64);

void BM_BigIntGcd(benchmark::State& state) {
  std::mt19937_64 rng(9);
  const BigInt g = randomBigInt(rng, 2);
  const BigInt a = g * randomBigInt(rng, static_cast<int>(state.range(0)));
  const BigInt b = g * randomBigInt(rng, static_cast<int>(state.range(0)));
  AllocScope allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::gcd(a, b));
  }
}
BENCHMARK(BM_BigIntGcd)->Arg(2)->Arg(8)->Arg(24);

void BM_BigIntToString(benchmark::State& state) {
  std::mt19937_64 rng(11);
  const BigInt a = randomBigInt(rng, static_cast<int>(state.range(0)));
  AllocScope allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.toString());
  }
}
BENCHMARK(BM_BigIntToString)->Arg(4)->Arg(32);

// ---------------------------------------------------------------------------
// BENCH_bigint.json: the small-operand before/after series.
// ---------------------------------------------------------------------------

/// One measured operation of the series harness.
struct SeriesResult {
  double nsPerOp = 0.0;
  double allocsPerOp = 0.0;
};

/// Time `op` over `iters` iterations (after a 10% warmup) with the
/// allocation probe attached.
template <class Op> SeriesResult measure(std::size_t iters, Op op) {
  for (std::size_t i = 0; i < iters / 10 + 1; ++i) {
    op(i);
  }
  const std::uint64_t allocs0 = qadd::benchprobe::allocationCount();
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    op(i);
  }
  const auto stop = std::chrono::steady_clock::now();
  const std::uint64_t allocs1 = qadd::benchprobe::allocationCount();
  SeriesResult result;
  result.nsPerOp = std::chrono::duration<double, std::nano>(stop - start).count() /
                   static_cast<double>(iters);
  result.allocsPerOp =
      static_cast<double>(allocs1 - allocs0) / static_cast<double>(iters);
  return result;
}

/// Operand pools shared by the series: |BigInt| < 2^62 (the word-kernel
/// domain), odd < 2^31 divisors, and Z[omega]/Q[omega] values with |coeff|
/// <= 10^6 — representative of Clifford+T coefficient magnitudes.
struct Pools {
  static constexpr std::size_t kCount = 256;
  std::vector<BigInt> wide;   // |v| < 2^62
  std::vector<BigInt> narrow; // odd, |v| < 2^31
  std::vector<ZOmega> rings;
  std::vector<QOmega> fields;

  Pools() {
    std::mt19937_64 rng(42);
    std::uniform_int_distribution<std::int64_t> d62(-(std::int64_t{1} << 61),
                                                    std::int64_t{1} << 61);
    std::uniform_int_distribution<std::int64_t> d31(-(std::int64_t{1} << 30),
                                                    std::int64_t{1} << 30);
    std::uniform_int_distribution<std::int64_t> dz(-1000000, 1000000);
    for (std::size_t i = 0; i < kCount; ++i) {
      wide.push_back(BigInt{d62(rng)});
      narrow.push_back(BigInt{d31(rng) | 1});
      rings.push_back(
          ZOmega{BigInt{dz(rng)}, BigInt{dz(rng)}, BigInt{dz(rng)}, BigInt{dz(rng)}});
      fields.push_back(QOmega{
          ZOmega{BigInt{dz(rng)}, BigInt{dz(rng)}, BigInt{dz(rng)}, BigInt{dz(rng)}},
          static_cast<long>(i % 7) - 3, BigInt{(i % 2 == 0) ? 9 : 15}});
    }
  }
};

struct SeriesSpec {
  const char* name;
  std::size_t iters;
  double baselineNs;     // pre-SSO seed, same harness/host class
  double baselineAllocs; // pre-SSO seed allocs/op
};

/// Pre-change (PR-3 seed) measurements of exactly this harness: -O2, glibc
/// malloc, 256-operand pools, best of 3 interleaved rounds.
constexpr SeriesSpec kSeries[] = {
    {"bigint_add", 2000000, 117.3, 3.0},
    {"bigint_mul", 2000000, 127.1, 3.0},
    {"bigint_divmod", 1000000, 129.9, 2.0},
    {"bigint_gcd", 200000, 658.9, 6.0},
    {"zomega_mul", 500000, 3569.0, 80.0},
    {"zomega_norm", 500000, 1787.0, 36.0},
    {"qomega_mul_canon", 200000, 6013.6, 106.668},
    {"qomega_add", 200000, 5041.5, 106.782},
    {"euclidean_quotient", 100000, 10902.6, 217.68},
};
constexpr std::size_t kSeriesCount = sizeof(kSeries) / sizeof(kSeries[0]);

/// Run the whole series once in declaration order.
void runSeriesRound(const Pools& pools, SeriesResult (&out)[kSeriesCount]) {
  constexpr std::size_t N = Pools::kCount;
  volatile std::int64_t sink = 0;
  std::size_t index = 0;
  const auto record = [&](SeriesResult r) { out[index++] = r; };
  record(measure(kSeries[0].iters, [&](std::size_t i) {
    BigInt r = pools.wide[i % N] + pools.wide[(i + 1) % N];
    sink = sink + static_cast<std::int64_t>(r.isNegative());
  }));
  record(measure(kSeries[1].iters, [&](std::size_t i) {
    BigInt r = pools.narrow[i % N] * pools.narrow[(i + 1) % N];
    sink = sink + static_cast<std::int64_t>(r.isNegative());
  }));
  record(measure(kSeries[2].iters, [&](std::size_t i) {
    BigInt q;
    BigInt r;
    BigInt::divMod(pools.wide[i % N], pools.narrow[(i + 1) % N], q, r);
    sink = sink + static_cast<std::int64_t>(q.isNegative());
  }));
  record(measure(kSeries[3].iters, [&](std::size_t i) {
    sink = sink + static_cast<std::int64_t>(
                      BigInt::gcd(pools.wide[i % N], pools.wide[(i + 1) % N]).isOne());
  }));
  record(measure(kSeries[4].iters, [&](std::size_t i) {
    ZOmega r = pools.rings[i % N] * pools.rings[(i + 1) % N];
    sink = sink + static_cast<std::int64_t>(r.isZero());
  }));
  record(measure(kSeries[5].iters, [&](std::size_t i) {
    BigInt u;
    BigInt v;
    pools.rings[i % N].norm(u, v);
    sink = sink + static_cast<std::int64_t>(u.isNegative());
  }));
  record(measure(kSeries[6].iters, [&](std::size_t i) {
    QOmega r = pools.fields[i % N] * pools.fields[(i + 1) % N];
    sink = sink + static_cast<std::int64_t>(r.isZero());
  }));
  record(measure(kSeries[7].iters, [&](std::size_t i) {
    QOmega r = pools.fields[i % N] + pools.fields[(i + 1) % N];
    sink = sink + static_cast<std::int64_t>(r.isZero());
  }));
  record(measure(kSeries[8].iters, [&](std::size_t i) {
    ZOmega r = qadd::alg::euclideanQuotient(pools.rings[i % N], pools.rings[(i + 1) % N]);
    sink = sink + static_cast<std::int64_t>(r.isZero());
  }));
}

/// Best ns/op of `rounds` interleaved rounds (allocs/op is deterministic, so
/// the last round's value stands).
void runSeries(const Pools& pools, int rounds, SeriesResult (&best)[kSeriesCount]) {
  for (int round = 0; round < rounds; ++round) {
    SeriesResult current[kSeriesCount];
    runSeriesRound(pools, current);
    for (std::size_t i = 0; i < kSeriesCount; ++i) {
      if (round == 0 || current[i].nsPerOp < best[i].nsPerOp) {
        best[i].nsPerOp = current[i].nsPerOp;
      }
      best[i].allocsPerOp = current[i].allocsPerOp;
    }
  }
}

void writeBenchBigint(const char* path) {
  constexpr int kRounds = 3;
  Pools pools;

  SeriesResult fast[kSeriesCount];
  runSeries(pools, kRounds, fast);

  // Forced-spill column: same operands through the general BigInt/limb-vector
  // path (storage stays SSO; only the word kernels are bypassed).  A no-op
  // toggle in QADD_BIGINT_SSO=0 builds, where this equals the primary series.
  const bool hadFastPaths = qadd::detail::setSmallFastPaths(false);
  SeriesResult spill[kSeriesCount];
  runSeries(pools, kRounds, spill);
  qadd::detail::setSmallFastPaths(hadFastPaths);

  std::ofstream os(path);
  if (!os) {
    std::cerr << "could not write " << path << "\n";
    return;
  }
  os << std::setprecision(6);
  os << "{\"ssoEnabled\":" << (QADD_BIGINT_SSO != 0 ? "true" : "false")
     << ",\"allocProbe\":" << (qadd::benchprobe::kProbeActive ? "true" : "false")
     << ",\"methodology\":\"best ns/op of " << kRounds
     << " interleaved rounds, 256-operand pools, <= 62-bit operands\""
     << ",\"series\":{";
  for (std::size_t i = 0; i < kSeriesCount; ++i) {
    if (i != 0) {
      os << ",";
    }
    const SeriesSpec& spec = kSeries[i];
    os << "\"" << spec.name << "\":{\"nsPerOp\":" << fast[i].nsPerOp
       << ",\"allocsPerOp\":" << fast[i].allocsPerOp
       << ",\"baselineNsPerOp\":" << spec.baselineNs
       << ",\"baselineAllocsPerOp\":" << spec.baselineAllocs << ",\"speedup\":"
       << (fast[i].nsPerOp > 0.0 ? spec.baselineNs / fast[i].nsPerOp : 0.0)
       << ",\"spillNsPerOp\":" << spill[i].nsPerOp
       << ",\"spillAllocsPerOp\":" << spill[i].allocsPerOp << "}";
  }
  os << "}}\n";
  std::cout << "bigint small-path series written to " << path << "\n";
}

} // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  writeBenchBigint("BENCH_bigint.json");
  return 0;
}
