/// \file alloc_probe.hpp
/// Heap-allocation counter for the micro-benchmarks: replaces the global
/// operator new/delete with counting versions so benchmarks can report
/// allocs/op next to ns/op — the metric the BigInt small-size optimization
/// targets (0 allocs/op for <= 64-bit operands).
///
/// Include this header from exactly ONE translation unit per benchmark
/// binary: replacement operator new definitions have external linkage, so a
/// second including TU in the same binary would be a duplicate definition.
///
/// Behind QADD_OBS like the rest of the telemetry: with QADD_OBS=0 the
/// operators are not replaced and the counter reads 0 (benchmarks then report
/// allocs_per_op = 0, flagged by kProbeActive = false).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#ifndef QADD_OBS
#define QADD_OBS 1
#endif

namespace qadd::benchprobe {

#if QADD_OBS

inline constexpr bool kProbeActive = true;

/// Number of operator-new calls since process start (relaxed: the benchmarks
/// are single-threaded; the atomic only guards against torn reads if a
/// library thread allocates).
inline std::atomic<std::uint64_t> gAllocations{0};

[[nodiscard]] inline std::uint64_t allocationCount() noexcept {
  return gAllocations.load(std::memory_order_relaxed);
}

#else

inline constexpr bool kProbeActive = false;

[[nodiscard]] inline std::uint64_t allocationCount() noexcept { return 0; }

#endif

} // namespace qadd::benchprobe

#if QADD_OBS

void* operator new(std::size_t size) {
  qadd::benchprobe::gAllocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  qadd::benchprobe::gAllocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif // QADD_OBS
