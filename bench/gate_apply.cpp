/// \file gate_apply.cpp
/// Before/after series for identity-skipping matrix DDs: applies H, T and CX
/// gate towers to an n-qubit register for n in {8, 16, 32, 64, 96}, once
/// with skip-level edges (the default) and once with fully materialized
/// identity towers (Config::skipIdentities = false), and writes
/// BENCH_skip.json with per-gate apply time and the matrix nodes each
/// representation allocates.
///
/// Enforced gates at n = 64 (exit 1 on failure): single-qubit gate apply at
/// least 2x faster with skipping, and at least 4x fewer matrix nodes across
/// all three families.
///
///   ./gate_apply [reps] [--help]   (default: 5 timing repetitions)
#include "core/package.hpp"
#include "eval/driver_cli.hpp"
#include "qc/circuit.hpp"
#include "qc/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

namespace {

using namespace qadd;
using Clock = std::chrono::steady_clock;
using Pkg = dd::Package<dd::NumericSystem>;

constexpr qc::Qubit kWidths[] = {8, 16, 32, 64, 96};
constexpr qc::Qubit kGateWidth = 64; ///< the width the CI gates check
const char* const kFamilies[] = {"H", "T", "CX"};

std::vector<qc::Operation> towerOps(const std::string& family, qc::Qubit n) {
  std::vector<qc::Operation> ops;
  if (family == "CX") {
    for (qc::Qubit q = 0; q + 1 < n; ++q) {
      ops.push_back({qc::GateKind::X, 0.0, static_cast<qc::Qubit>(q + 1), {{q, true}}});
    }
  } else {
    const qc::GateKind kind = family == "H" ? qc::GateKind::H : qc::GateKind::T;
    for (qc::Qubit q = 0; q < n; ++q) {
      ops.push_back({kind, 0.0, q, {}});
    }
  }
  return ops;
}

struct Sample {
  double microsPerGate = std::numeric_limits<double>::infinity();
  std::size_t matrixNodes = 0; ///< distinct matrix nodes the tower interned
  std::size_t gates = 0;
};

/// One (family, width, representation) point: fresh package per repetition
/// (cold unique/computed tables — the end-to-end circuit-simulation pattern,
/// where every gate is built and applied once), min-of-reps timing.
Sample runTower(const std::string& family, qc::Qubit n, bool skip, std::size_t reps) {
  Sample sample;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    dd::NumericSystem::Config config{0.0, dd::NumericSystem::Normalization::LeftmostNonzero};
    config.skipIdentities = skip;
    Pkg package(n, config);
    auto state = package.makeZeroState();
    if (family != "H") {
      // T and CX act trivially on |0..0>; prepare the uniform superposition
      // first (untimed) so the timed applies do real work.
      for (const qc::Operation& op : towerOps("H", n)) {
        state = package.multiply(qc::makeOperationDD(package, op), state);
      }
    }
    const std::size_t nodesBefore = package.stats().mUnique.entries;
    const std::vector<qc::Operation> ops = towerOps(family, n);
    const auto start = Clock::now();
    for (const qc::Operation& op : ops) {
      state = package.multiply(qc::makeOperationDD(package, op), state);
    }
    const double seconds = std::chrono::duration<double>(Clock::now() - start).count();
    sample.microsPerGate =
        std::min(sample.microsPerGate, seconds * 1e6 / static_cast<double>(ops.size()));
    sample.matrixNodes = package.stats().mUnique.entries - nodesBefore;
    sample.gates = ops.size();
  }
  return sample;
}

struct Point {
  qc::Qubit qubits = 0;
  Sample skip;
  Sample materialized;
  [[nodiscard]] double speedup() const {
    return skip.microsPerGate > 0.0 ? materialized.microsPerGate / skip.microsPerGate : 0.0;
  }
  [[nodiscard]] double nodeRatio() const {
    return skip.matrixNodes > 0
               ? static_cast<double>(materialized.matrixNodes) /
                     static_cast<double>(skip.matrixNodes)
               : 0.0;
  }
};

void emitPoint(std::ofstream& os, const Point& point, bool last) {
  os << "      \"n" << point.qubits << "\": {\n"
     << "        \"qubits\": " << point.qubits << ",\n"
     << "        \"gates\": " << point.skip.gates << ",\n"
     << "        \"skipMicrosPerGate\": " << point.skip.microsPerGate << ",\n"
     << "        \"materializedMicrosPerGate\": " << point.materialized.microsPerGate << ",\n"
     << "        \"speedup\": " << point.speedup() << ",\n"
     << "        \"skipMatrixNodes\": " << point.skip.matrixNodes << ",\n"
     << "        \"materializedMatrixNodes\": " << point.materialized.matrixNodes << ",\n"
     << "        \"nodeRatio\": " << point.nodeRatio() << "\n"
     << "      }" << (last ? "\n" : ",\n");
}

} // namespace

int main(int argc, char** argv) {
  const eval::DriverSpec spec{
      "gate_apply",
      "BENCH_skip.json: skip-level vs materialized-identity gate application.",
      {{"reps", 5, "timing repetitions per point"}},
      false};
  const eval::DriverCli cli = eval::parseDriverCli(argc, argv, spec);
  const auto reps = static_cast<std::size_t>(cli.positionals[0]);

  std::cout << "== gate_apply: H/T/CX towers, exact numeric, skip vs materialized ==\n";
  (void)runTower("H", 8, true, 1); // warm-up: page cache, lazy allocations
  std::vector<std::vector<Point>> all; // [family][width]
  for (const char* family : kFamilies) {
    std::vector<Point> points;
    for (const qc::Qubit n : kWidths) {
      Point point;
      point.qubits = n;
      point.skip = runTower(family, n, true, reps);
      point.materialized = runTower(family, n, false, reps);
      std::cout << std::fixed << std::setprecision(2) << family << " n=" << n << ": "
                << point.skip.microsPerGate << " us/gate vs " << point.materialized.microsPerGate
                << " us/gate (" << point.speedup() << "x), " << point.skip.matrixNodes << " vs "
                << point.materialized.matrixNodes << " matrix nodes (" << point.nodeRatio()
                << "x)\n";
      points.push_back(point);
    }
    all.push_back(std::move(points));
  }

  // Speedup gate: the best single-qubit family at n = 64 must clear 2x
  // (min-of-reps already filters scheduler noise; best-of-families filters
  // the rest, the same pattern as the parallel_kernels gate).  Node gate:
  // every family must allocate at least 4x fewer matrix nodes — that ratio
  // is structural and machine-independent.
  double bestSingleQubitSpeedup = 0.0;
  bool nodeGatePassed = true;
  for (std::size_t f = 0; f < std::size(kFamilies); ++f) {
    for (const Point& point : all[f]) {
      if (point.qubits != kGateWidth) {
        continue;
      }
      if (std::string(kFamilies[f]) != "CX") {
        bestSingleQubitSpeedup = std::max(bestSingleQubitSpeedup, point.speedup());
      }
      if (point.nodeRatio() < 4.0) {
        nodeGatePassed = false;
        std::cerr << "FAIL: " << kFamilies[f] << " at n=" << kGateWidth << " allocates only "
                  << std::setprecision(2) << point.nodeRatio()
                  << "x fewer matrix nodes (gate: >= 4x)\n";
      }
    }
  }
  const bool speedupGatePassed = bestSingleQubitSpeedup >= 2.0;
  if (!speedupGatePassed) {
    std::cerr << "FAIL: best single-qubit apply speedup at n=" << kGateWidth << " is only "
              << std::setprecision(2) << bestSingleQubitSpeedup << "x (gate: >= 2x)\n";
  }

  std::ofstream os("BENCH_skip.json");
  os << std::setprecision(6) << std::fixed;
  os << "{\n  \"bench\": \"gate_apply\",\n"
     << "  \"workload\": \"H/T/CX gate towers, exact numeric (eps=0)\",\n"
     << "  \"gateQubits\": " << kGateWidth << ",\n"
     << "  \"speedupGatePassed\": " << (speedupGatePassed ? "true" : "false") << ",\n"
     << "  \"nodeGatePassed\": " << (nodeGatePassed ? "true" : "false") << ",\n"
     << "  \"series\": {\n";
  for (std::size_t f = 0; f < std::size(kFamilies); ++f) {
    os << "    \"" << kFamilies[f] << "\": {\n";
    for (std::size_t i = 0; i < all[f].size(); ++i) {
      emitPoint(os, all[f][i], i + 1 == all[f].size());
    }
    os << "    }" << (f + 1 == std::size(kFamilies) ? "\n" : ",\n");
  }
  os << "  }\n}\n";
  std::cout << "report written to BENCH_skip.json\n";

  if (!speedupGatePassed || !nodeGatePassed) {
    return 1;
  }
  std::cout << "skip gates passed at n=" << kGateWidth << "\n";
  return 0;
}
