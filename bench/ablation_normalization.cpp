/// \file ablation_normalization.cpp
/// Reproduces the Section V-B normalization-scheme comparison: simulating the
/// three benchmarks under both algebraic normalization schemes —
/// Q[omega]-inverse (Algorithm 2) and D[omega]-GCD (Algorithm 3) — and
/// reporting run-time plus the fraction of trivial (0/1) edge weights each
/// scheme produces.  Expected shape (paper): the inverse scheme always wins;
/// it keeps at least half the weights trivial, while GCD normalization mostly
/// factors out trivial GCDs and leaves large coefficients behind.
///
///   ./ablation_normalization
#include "algorithms/bwt.hpp"
#include "algorithms/grover.hpp"
#include "algorithms/gse.hpp"
#include "eval/trace.hpp"
#include "qc/simulator.hpp"

#include <chrono>
#include <iomanip>
#include <iostream>

namespace {

using namespace qadd;

struct Row {
  std::string benchmark;
  std::string scheme;
  double seconds;
  std::size_t nodes;
  double trivialFraction;
  std::size_t maxBits;
};

Row runOne(const std::string& name, const qc::Circuit& circuit,
           dd::AlgebraicSystem::Normalization normalization) {
  qc::Simulator<dd::AlgebraicSystem> simulator(circuit, {normalization});
  const auto start = std::chrono::steady_clock::now();
  simulator.run();
  const double seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return {name,
          simulator.package().system().describe(),
          seconds,
          simulator.stateNodes(),
          simulator.package().system().trivialWeightFraction(),
          simulator.package().system().maxBits()};
}

} // namespace

int main() {
  std::vector<Row> rows;
  const auto runBoth = [&rows](const std::string& name, const qc::Circuit& circuit) {
    rows.push_back(runOne(name, circuit, dd::AlgebraicSystem::Normalization::QOmegaInverse));
    rows.push_back(runOne(name, circuit, dd::AlgebraicSystem::Normalization::GcdDOmega));
    // Experimental future-work scheme (see algebraic_system.hpp): cheap unit
    // extraction, not canonical across non-unit scalars -> watch the nodes.
    rows.push_back(runOne(name, circuit, dd::AlgebraicSystem::Normalization::UnitPart));
  };

  runBoth("grover-8", algos::grover({8, 100, 0}));
  runBoth("bwt-d3", algos::bwt({3, 4}));
  runBoth("gse-2x3", algos::gse({2, 3, 1.0, 0}, {4, 1}));

  std::cout << "== Section V-B ablation: algebraic normalization schemes ==\n";
  std::cout << std::left << std::setw(12) << "benchmark" << std::setw(26) << "scheme"
            << std::right << std::setw(12) << "time [s]" << std::setw(10) << "nodes"
            << std::setw(16) << "trivial w" << std::setw(10) << "maxbits" << "\n";
  for (const Row& row : rows) {
    std::cout << std::left << std::setw(12) << row.benchmark << std::setw(26) << row.scheme
              << std::right << std::setw(12) << std::fixed << std::setprecision(3) << row.seconds
              << std::setw(10) << row.nodes << std::setw(15) << std::setprecision(1)
              << row.trivialFraction * 100.0 << "%" << std::setw(10) << row.maxBits << "\n";
  }
  std::cout << "\nExpected: Q[w]-inverse outperforms the GCD scheme on every benchmark\n"
               "and keeps >= 50% of the produced edge weights trivial (paper, Sec. V-B).\n";
  return 0;
}
