/// \file precision_scaling.cpp
/// Makes Section V-A's closing observation runnable: "even when scaling up
/// the precision/bitwidth of the floating-point numbers … the limited
/// precision of the floating-point arithmetic will never allow for perfect
/// accuracy".  The same Grover simulation is run at eps = 0 with
///  - IEEE-754 double (53-bit mantissa, the paper's setup),
///  - x87 long double (64-bit mantissa),
///  - the exact algebraic representation.
/// Expected shape: the wider mantissa lowers the error floor by roughly the
/// mantissa-width ratio and costs extra run-time, but the error never
/// reaches zero — only the algebraic representation does.
///
///   ./precision_scaling [nqubits]     (default 8)
#include "algorithms/grover.hpp"
#include "eval/accuracy.hpp"
#include "qc/simulator.hpp"

#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>

namespace {

using namespace qadd;
using Clock = std::chrono::steady_clock;

template <class System>
std::pair<std::vector<std::complex<double>>, double>
simulate(const qc::Circuit& circuit, typename System::Config config) {
  const auto start = Clock::now();
  qc::Simulator<System> simulator(circuit, config);
  simulator.run();
  const double seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return {simulator.package().amplitudes(simulator.state()), seconds};
}

} // namespace

int main(int argc, char** argv) {
  const auto nqubits = static_cast<qc::Qubit>(argc > 1 ? std::atoi(argv[1]) : 8);
  const qc::Circuit circuit = algos::grover({nqubits, (1ULL << nqubits) - 5, 0});
  std::cout << "== Precision scaling (Sec. V-A): Grover, " << nqubits << " qubits, "
            << circuit.size() << " gates, eps = 0 ==\n";

  const auto [exact, exactSeconds] = simulate<dd::AlgebraicSystem>(circuit, {});
  const auto [dbl, dblSeconds] = simulate<dd::NumericSystem>(
      circuit, {0.0, dd::NumericSystem::Normalization::LeftmostNonzero});
  const auto [ext, extSeconds] = simulate<dd::ExtendedNumericSystem>(
      circuit, {0.0, dd::ExtendedNumericSystem::Normalization::LeftmostNonzero});

  const double dblError = eval::accuracyError(dbl, exact);
  const double extError = eval::accuracyError(ext, exact);

  std::cout << std::left << std::setw(28) << "representation" << std::right << std::setw(14)
            << "mantissa" << std::setw(16) << "error" << std::setw(12) << "time [s]" << "\n";
  std::cout << std::left << std::setw(28) << "numeric double" << std::right << std::setw(14)
            << "53 bits" << std::setw(16) << std::scientific << std::setprecision(2) << dblError
            << std::setw(12) << std::fixed << std::setprecision(3) << dblSeconds << "\n";
  std::cout << std::left << std::setw(28) << "numeric long double" << std::right << std::setw(14)
            << (sizeof(long double) > 8 ? "64 bits" : "53 bits") << std::setw(16)
            << std::scientific << std::setprecision(2) << extError << std::setw(12) << std::fixed
            << std::setprecision(3) << extSeconds << "\n";
  std::cout << std::left << std::setw(28) << "algebraic (exact)" << std::right << std::setw(14)
            << "unbounded" << std::setw(16) << std::scientific << std::setprecision(2) << 0.0
            << std::setw(12) << std::fixed << std::setprecision(3) << exactSeconds << "\n";

  std::cout << "\nExpected: the 64-bit mantissa lowers the error floor but does not\n"
               "eliminate it; only the algebraic representation reaches zero.  (The\n"
               "measured improvement is conservative: amplitudes are read out as\n"
               "doubles, which re-introduces a 2^-53 floor at the measurement step.)\n";
  if (extError > 0.0 && extError < dblError) {
    std::cout << "observed floor improvement: " << std::setprecision(1) << std::scientific
              << dblError / extError << "x, error still non-zero -> claim reproduced\n";
  }
  return 0;
}
