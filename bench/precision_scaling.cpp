/// \file precision_scaling.cpp
/// Makes Section V-A's closing observation runnable: "even when scaling up
/// the precision/bitwidth of the floating-point numbers … the limited
/// precision of the floating-point arithmetic will never allow for perfect
/// accuracy".  The same Grover simulation is run at eps = 0 with
///  - IEEE-754 double (53-bit mantissa, the paper's setup),
///  - x87 long double (64-bit mantissa),
///  - the exact algebraic representation.
/// Expected shape: the wider mantissa lowers the error floor by roughly the
/// mantissa-width ratio and costs extra run-time, but the error never
/// reaches zero — only the algebraic representation does.
///
///   ./precision_scaling [nqubits] [--jobs N] [--stats] [--trace-json <path>]
///                       [--help]
/// The two numeric runs are sweep points of eval::runSweep and fan out
/// across --jobs workers once the algebraic reference is computed.
#include "algorithms/grover.hpp"
#include "eval/driver_cli.hpp"
#include "eval/sweep.hpp"

#include <iomanip>
#include <iostream>

int main(int argc, char** argv) {
  using namespace qadd;

  const eval::DriverSpec spec{
      "precision_scaling",
      "Sec. V-A: double vs long-double vs exact algebraic Grover at eps = 0.",
      {{"nqubits", 8, "circuit width"}},
      false};
  const eval::DriverCli cli = eval::parseDriverCli(argc, argv, spec);
  const auto nqubits = static_cast<qc::Qubit>(cli.positionals[0]);
  const qc::Circuit circuit = algos::grover({nqubits, (1ULL << nqubits) - 5, 0});
  std::cout << "== Precision scaling (Sec. V-A): Grover, " << nqubits << " qubits, "
            << circuit.size() << " gates, eps = 0 ==\n";

  eval::SweepSpec sweep(circuit);
  // Only the final amplitudes matter here: sample once, at the last gate.
  sweep.options.sampleEvery = std::max<std::size_t>(1, circuit.size());
  cli.obs.applyTo(sweep.options);
  sweep.reference = eval::ReferencePolicy::Inline;
  sweep.addRun({.epsilon = 0.0, .extendedPrecision = false}); // IEEE-754 double
  sweep.addRun({.epsilon = 0.0, .extendedPrecision = true});  // x87 long double
  sweep.applyApprox(cli.approx);

  const auto pool = cli.makePool();
  const eval::SweepResult result = eval::runSweep(sweep, pool.get());
  const eval::SimulationTrace& exact = result.traces[0];
  const eval::SimulationTrace& dbl = result.traces[1];
  const eval::SimulationTrace& ext = result.traces[2];
  const double dblError = dbl.finalError;
  const double extError = ext.finalError;

  std::cout << std::left << std::setw(28) << "representation" << std::right << std::setw(14)
            << "mantissa" << std::setw(16) << "error" << std::setw(12) << "time [s]" << "\n";
  std::cout << std::left << std::setw(28) << "numeric double" << std::right << std::setw(14)
            << "53 bits" << std::setw(16) << std::scientific << std::setprecision(2) << dblError
            << std::setw(12) << std::fixed << std::setprecision(3) << dbl.totalSeconds << "\n";
  std::cout << std::left << std::setw(28) << "numeric long double" << std::right << std::setw(14)
            << (sizeof(long double) > 8 ? "64 bits" : "53 bits") << std::setw(16)
            << std::scientific << std::setprecision(2) << extError << std::setw(12) << std::fixed
            << std::setprecision(3) << ext.totalSeconds << "\n";
  std::cout << std::left << std::setw(28) << "algebraic (exact)" << std::right << std::setw(14)
            << "unbounded" << std::setw(16) << std::scientific << std::setprecision(2) << 0.0
            << std::setw(12) << std::fixed << std::setprecision(3) << exact.totalSeconds << "\n";

  std::cout << "\nExpected: the 64-bit mantissa lowers the error floor but does not\n"
               "eliminate it; only the algebraic representation reaches zero.  (The\n"
               "measured improvement is conservative: amplitudes are read out as\n"
               "doubles, which re-introduces a 2^-53 floor at the measurement step.)\n";
  if (extError > 0.0 && extError < dblError) {
    std::cout << "observed floor improvement: " << std::setprecision(1) << std::scientific
              << dblError / extError << "x, error still non-zero -> claim reproduced\n";
  }
  eval::finishDriverCli(cli, std::cout, result);
  return 0;
}
