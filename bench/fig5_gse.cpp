/// \file fig5_gse.cpp
/// Regenerates Fig. 5 of the paper: the GSE benchmark under the epsilon sweep
/// and the algebraic representation; size / accuracy / run-time, plus the
/// coefficient-bit-width series that explains the algebraic run-time blow-up
/// (Section V-B: GSE's Clifford+T approximation produces "generic" values
/// whose exact representation grows, while the numeric QMDD is insensitive
/// to the particular complex numbers involved).
/// Expected shape: the algebraic DD size tracks the tight-eps numeric sizes
/// (little redundancy to find), but its run-time grows disproportionally.
///
///   ./fig5_gse [systemQubits] [precisionQubits] [--jobs N] [--stats]
///              [--trace-json <path>] [--checkpoint-every K]
///              [--refresh-reference] [--help]
/// Writes fig5_gse.csv.  The exact algebraic reference is cached in
/// fig5_reference.qref and reused on subsequent runs of the same
/// configuration — for GSE the algebraic run dominates the sweep (Section
/// V-B's bit-width blow-up), so the cache saves the most here.  The six
/// numeric runs fan out across --jobs workers.
#include "algorithms/gse.hpp"
#include "eval/driver_cli.hpp"
#include "eval/report.hpp"
#include "eval/sweep.hpp"

#include <fstream>
#include <iostream>

int main(int argc, char** argv) {
  using namespace qadd;

  const eval::DriverSpec spec{
      "fig5_gse",
      "Fig. 5: GSE under the numeric ε sweep vs the exact algebraic QMDD (+ bit widths).",
      {{"systemQubits", 3, "Ising system register width"},
       {"precisionQubits", 4, "phase-estimation ancilla width"}},
      true};
  const eval::DriverCli cli = eval::parseDriverCli(argc, argv, spec);
  algos::GseOptions options;
  options.systemQubits = static_cast<unsigned>(cli.positionals[0]);
  options.precisionQubits = static_cast<unsigned>(cli.positionals[1]);
  const qc::Circuit circuit = algos::gse(options, {4, 1});
  std::cout << "== Fig. 5: GSE (Clifford+T approximated), "
            << options.systemQubits + options.precisionQubits << " qubits, " << circuit.size()
            << " gates, T-count " << circuit.tCount() << " ==\n";

  eval::SweepSpec sweep(circuit);
  sweep.options.sampleEvery = std::max<std::size_t>(1, circuit.size() / 60);
  cli.obs.applyTo(sweep.options);
  sweep.reference = eval::ReferencePolicy::Cached;
  sweep.referenceCachePath = "fig5_reference.qref";
  sweep.refreshReference = cli.obs.refreshReference;
  sweep.addEpsilons({0.0, 1e-20, 1e-15, 1e-10, 1e-5, 1e-3});
  sweep.applyApprox(cli.approx);

  const auto pool = cli.makePool();
  const eval::SweepResult result = eval::runSweep(sweep, pool.get());
  std::cout << (result.referenceFromCache
                    ? "algebraic reference loaded from fig5_reference.qref in "
                    : "algebraic reference computed and cached in ")
            << result.referenceCacheSeconds << " s\n";
  std::cout << "numeric sweep: " << sweep.points.size() << " runs on " << result.jobs
            << (result.jobs == 1 ? " worker in " : " workers in ") << result.numericSweepSeconds
            << " s\n";

  eval::printSummaryTable(std::cout, result.traces);
  eval::printAsciiChart(std::cout, "Fig. 5a: QMDD size (nodes)", result.traces,
                        eval::Series::Nodes, false);
  eval::printAsciiChart(std::cout, "Fig. 5b: accuracy error", result.traces, eval::Series::Error,
                        true);
  eval::printAsciiChart(std::cout, "Fig. 5c: run-time [s]", result.traces, eval::Series::Seconds,
                        false);
  eval::printAsciiChart(std::cout, "coefficient bit width (the algebraic cost driver)",
                        {result.traces.front()}, eval::Series::MaxBits, false);

  std::ofstream csv("fig5_gse.csv");
  eval::writeCsv(csv, result.traces);
  std::cout << "\nseries written to fig5_gse.csv\n";
  eval::finishDriverCli(cli, std::cout, result);
  return 0;
}
