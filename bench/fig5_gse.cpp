/// \file fig5_gse.cpp
/// Regenerates Fig. 5 of the paper: the GSE benchmark under the epsilon sweep
/// and the algebraic representation; size / accuracy / run-time, plus the
/// coefficient-bit-width series that explains the algebraic run-time blow-up
/// (Section V-B: GSE's Clifford+T approximation produces "generic" values
/// whose exact representation grows, while the numeric QMDD is insensitive
/// to the particular complex numbers involved).
/// Expected shape: the algebraic DD size tracks the tight-eps numeric sizes
/// (little redundancy to find), but its run-time grows disproportionally.
///
///   ./fig5_gse [systemQubits] [precisionQubits] [--stats] [--trace-json <path>]
///              [--checkpoint-every K] [--refresh-reference]
///                                                  (default 3 / 4)
/// Writes fig5_gse.csv.  The exact algebraic reference is cached in
/// fig5_reference.qref and reused on subsequent runs of the same
/// configuration — for GSE the algebraic run dominates the sweep (Section
/// V-B's bit-width blow-up), so the cache saves the most here.
#include "algorithms/gse.hpp"
#include "eval/reference_cache.hpp"
#include "eval/report.hpp"
#include "eval/trace.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>

int main(int argc, char** argv) {
  using namespace qadd;

  const eval::ObsCliOptions obsOptions = eval::parseObsCli(argc, argv);
  algos::GseOptions options;
  options.systemQubits = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 3;
  options.precisionQubits = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;
  const qc::Circuit circuit = algos::gse(options, {4, 1});
  std::cout << "== Fig. 5: GSE (Clifford+T approximated), "
            << options.systemQubits + options.precisionQubits << " qubits, " << circuit.size()
            << " gates, T-count " << circuit.tCount() << " ==\n";

  eval::TraceOptions traceOptions;
  traceOptions.sampleEvery = std::max<std::size_t>(1, circuit.size() / 60);
  obsOptions.applyTo(traceOptions);

  std::vector<eval::SimulationTrace> traces;
  eval::CachedAlgebraicReference reference = eval::traceAlgebraicCached(
      circuit, traceOptions, "fig5_reference.qref", obsOptions.refreshReference);
  std::cout << (reference.fromCache ? "algebraic reference loaded from fig5_reference.qref in "
                                    : "algebraic reference computed and cached in ")
            << reference.cacheSeconds << " s\n";
  traces.push_back(reference.trace);
  for (const double epsilon : {0.0, 1e-20, 1e-15, 1e-10, 1e-5, 1e-3}) {
    traces.push_back(eval::traceNumeric(circuit, epsilon, &reference.trajectory, traceOptions));
  }

  eval::printSummaryTable(std::cout, traces);
  eval::printAsciiChart(std::cout, "Fig. 5a: QMDD size (nodes)", traces, eval::Series::Nodes,
                        false);
  eval::printAsciiChart(std::cout, "Fig. 5b: accuracy error", traces, eval::Series::Error, true);
  eval::printAsciiChart(std::cout, "Fig. 5c: run-time [s]", traces, eval::Series::Seconds,
                        false);
  eval::printAsciiChart(std::cout, "coefficient bit width (the algebraic cost driver)",
                        {traces.front()}, eval::Series::MaxBits, false);

  std::ofstream csv("fig5_gse.csv");
  eval::writeCsv(csv, traces);
  std::cout << "\nseries written to fig5_gse.csv\n";
  eval::finishObsCli(obsOptions, std::cout, traces);
  return 0;
}
