/// \file fig4_bwt.cpp
/// Regenerates Fig. 4 of the paper: the Binary-Welded-Tree quantum walk
/// (graph exploration, all gates exactly representable) under the epsilon
/// sweep and the algebraic representation; size / accuracy / run-time.
/// Expected shape: as for Grover — the walk state has genuine structure that
/// tight-eps numerics shatters, mid eps preserves, large eps destroys.
///
///   ./fig4_bwt [depth] [steps] [--jobs N] [--stats] [--trace-json <path>]
///              [--help]
/// Writes fig4_bwt.csv.  The six numeric runs fan out across --jobs workers.
#include "algorithms/bwt.hpp"
#include "eval/driver_cli.hpp"
#include "eval/report.hpp"
#include "eval/sweep.hpp"

#include <fstream>
#include <iostream>

int main(int argc, char** argv) {
  using namespace qadd;

  const eval::DriverSpec spec{
      "fig4_bwt",
      "Fig. 4: Binary-Welded-Tree walk under the numeric ε sweep vs the algebraic QMDD.",
      {{"depth", 4, "welded-tree depth"}, {"steps", 8, "walk steps"}},
      false};
  const eval::DriverCli cli = eval::parseDriverCli(argc, argv, spec);
  algos::BwtOptions options;
  options.depth = static_cast<unsigned>(cli.positionals[0]);
  options.steps = static_cast<unsigned>(cli.positionals[1]);
  const qc::Circuit circuit = algos::bwt(options);
  std::cout << "== Fig. 4: BWT walk, depth " << options.depth << " (" << circuit.qubits()
            << " qubits), " << options.steps << " steps, " << circuit.size() << " gates ==\n";

  eval::SweepSpec sweep(circuit);
  sweep.options.sampleEvery = std::max<std::size_t>(1, circuit.size() / 60);
  cli.obs.applyTo(sweep.options);
  sweep.reference = eval::ReferencePolicy::Inline;
  sweep.addEpsilons({0.0, 1e-20, 1e-15, 1e-10, 1e-5, 1e-3});
  sweep.applyApprox(cli.approx);

  const auto pool = cli.makePool();
  const eval::SweepResult result = eval::runSweep(sweep, pool.get());
  std::cout << "numeric sweep: " << sweep.points.size() << " runs on " << result.jobs
            << (result.jobs == 1 ? " worker in " : " workers in ") << result.numericSweepSeconds
            << " s\n";

  eval::printSummaryTable(std::cout, result.traces);
  eval::printAsciiChart(std::cout, "Fig. 4a: QMDD size (nodes)", result.traces,
                        eval::Series::Nodes, false);
  eval::printAsciiChart(std::cout, "Fig. 4b: accuracy error", result.traces, eval::Series::Error,
                        true);
  eval::printAsciiChart(std::cout, "Fig. 4c: run-time [s]", result.traces, eval::Series::Seconds,
                        false);

  std::ofstream csv("fig4_bwt.csv");
  eval::writeCsv(csv, result.traces);
  std::cout << "\nseries written to fig4_bwt.csv\n";
  eval::finishDriverCli(cli, std::cout, result);
  return 0;
}
