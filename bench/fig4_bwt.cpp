/// \file fig4_bwt.cpp
/// Regenerates Fig. 4 of the paper: the Binary-Welded-Tree quantum walk
/// (graph exploration, all gates exactly representable) under the epsilon
/// sweep and the algebraic representation; size / accuracy / run-time.
/// Expected shape: as for Grover — the walk state has genuine structure that
/// tight-eps numerics shatters, mid eps preserves, large eps destroys.
///
///   ./fig4_bwt [depth] [steps] [--stats] [--trace-json <path>]
///                                  (default depth 4, 8 steps)
/// Writes fig4_bwt.csv.
#include "algorithms/bwt.hpp"
#include "eval/report.hpp"
#include "eval/trace.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>

int main(int argc, char** argv) {
  using namespace qadd;

  const eval::ObsCliOptions obsOptions = eval::parseObsCli(argc, argv);
  algos::BwtOptions options;
  options.depth = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  options.steps = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 8;
  const qc::Circuit circuit = algos::bwt(options);
  std::cout << "== Fig. 4: BWT walk, depth " << options.depth << " (" << circuit.qubits()
            << " qubits), " << options.steps << " steps, " << circuit.size() << " gates ==\n";

  eval::TraceOptions traceOptions;
  traceOptions.sampleEvery = std::max<std::size_t>(1, circuit.size() / 60);

  std::vector<eval::SimulationTrace> traces;
  eval::ReferenceTrajectory reference;
  traces.push_back(eval::traceAlgebraic(circuit, traceOptions, {}, &reference));
  for (const double epsilon : {0.0, 1e-20, 1e-15, 1e-10, 1e-5, 1e-3}) {
    traces.push_back(eval::traceNumeric(circuit, epsilon, &reference, traceOptions));
  }

  eval::printSummaryTable(std::cout, traces);
  eval::printAsciiChart(std::cout, "Fig. 4a: QMDD size (nodes)", traces, eval::Series::Nodes,
                        false);
  eval::printAsciiChart(std::cout, "Fig. 4b: accuracy error", traces, eval::Series::Error, true);
  eval::printAsciiChart(std::cout, "Fig. 4c: run-time [s]", traces, eval::Series::Seconds,
                        false);

  std::ofstream csv("fig4_bwt.csv");
  eval::writeCsv(csv, traces);
  std::cout << "\nseries written to fig4_bwt.csv\n";
  eval::finishObsCli(obsOptions, std::cout, traces);
  return 0;
}
