/// \file parallel_kernels.cpp
/// Before/after series for the fork-join DD kernels (intra-operation
/// parallelism): runs the exact algebraic Grover simulation (matrix-vector
/// kernels) and the full-circuit unitary accumulation (matrix-matrix
/// kernels) serially and on 2- and 4-worker pools, checks the results are
/// byte-identical across worker counts, and writes BENCH_parallel.json.
///
/// The speedup gate (>= 1.5x at four workers) is only enforced when the
/// machine actually has four hardware threads — on smaller runners the
/// numbers are recorded but the gate is skipped, since a 4-worker pool on
/// one core measures oversubscription, not the kernels.
///
///   ./parallel_kernels [nqubits] [--help]   (default: 11 qubits)
#include "algorithms/grover.hpp"
#include "eval/driver_cli.hpp"
#include "exec/thread_pool.hpp"
#include "io/snapshot.hpp"
#include "qc/simulator.hpp"

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace qadd;
using Clock = std::chrono::steady_clock;

struct RunResult {
  double seconds = 0.0;
  std::size_t finalNodes = 0;
  std::vector<std::uint8_t> snapshot;
};

/// One timed algebraic Grover simulation (the mv kernel workload).
RunResult runGroverMv(const qc::Circuit& circuit, exec::ThreadPool* pool) {
  qc::Simulator<dd::AlgebraicSystem> simulator(circuit);
  if (pool != nullptr) {
    simulator.setExecutor(pool);
  }
  const auto start = Clock::now();
  while (simulator.step()) {
  }
  RunResult result;
  result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  result.finalNodes = simulator.stateNodes();
  result.snapshot = io::saveVector(simulator.package(), simulator.state());
  return result;
}

/// One timed full-circuit unitary accumulation (the mm kernel workload).
RunResult runUnitaryMm(const qc::Circuit& circuit, exec::ThreadPool* pool) {
  dd::Package<dd::AlgebraicSystem> package(circuit.qubits());
  if (pool != nullptr) {
    package.setExecutor(pool);
  }
  const auto start = Clock::now();
  const auto unitary = qc::buildUnitary(package, circuit);
  RunResult result;
  result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  result.finalNodes = package.countNodes(unitary);
  result.snapshot = io::saveMatrix(package, unitary);
  return result;
}

struct Series {
  std::string name;
  RunResult jobs1;
  RunResult jobs2;
  RunResult jobs4;
  [[nodiscard]] bool identical() const {
    return jobs1.snapshot == jobs2.snapshot && jobs1.snapshot == jobs4.snapshot &&
           jobs1.finalNodes == jobs2.finalNodes && jobs1.finalNodes == jobs4.finalNodes;
  }
  [[nodiscard]] double speedup2() const {
    return jobs2.seconds > 0.0 ? jobs1.seconds / jobs2.seconds : 0.0;
  }
  [[nodiscard]] double speedup4() const {
    return jobs4.seconds > 0.0 ? jobs1.seconds / jobs4.seconds : 0.0;
  }
};

template <class Workload>
Series measure(const std::string& name, const qc::Circuit& circuit, Workload&& workload) {
  Series series;
  series.name = name;
  (void)workload(circuit, nullptr); // warm-up: page cache, lazy allocations
  series.jobs1 = workload(circuit, nullptr);
  {
    exec::ThreadPool pool(2);
    series.jobs2 = workload(circuit, &pool);
  }
  {
    exec::ThreadPool pool(4);
    series.jobs4 = workload(circuit, &pool);
  }
  std::cout << std::fixed << std::setprecision(3) << name << ": jobs1 " << series.jobs1.seconds
            << " s, jobs2 " << series.jobs2.seconds << " s (" << std::setprecision(2)
            << series.speedup2() << "x), jobs4 " << std::setprecision(3)
            << series.jobs4.seconds << " s (" << std::setprecision(2) << series.speedup4()
            << "x), " << series.jobs1.finalNodes << " final nodes\n";
  return series;
}

void emitSeries(std::ofstream& os, const Series& series, bool last) {
  os << "    \"" << series.name << "\": {\n"
     << "      \"jobs1Seconds\": " << series.jobs1.seconds << ",\n"
     << "      \"jobs2Seconds\": " << series.jobs2.seconds << ",\n"
     << "      \"jobs4Seconds\": " << series.jobs4.seconds << ",\n"
     << "      \"speedup2\": " << series.speedup2() << ",\n"
     << "      \"speedup4\": " << series.speedup4() << ",\n"
     << "      \"finalNodes\": " << series.jobs1.finalNodes << ",\n"
     << "      \"identicalValueSeries\": " << (series.identical() ? "true" : "false") << "\n"
     << "    }" << (last ? "\n" : ",\n");
}

} // namespace

int main(int argc, char** argv) {
  const eval::DriverSpec spec{
      "parallel_kernels",
      "BENCH_parallel.json: serial vs 2/4-worker fork-join DD kernel wall-clock.",
      {{"nqubits", 11, "Grover circuit width"}},
      false};
  const eval::DriverCli cli = eval::parseDriverCli(argc, argv, spec);
  const auto nqubits = static_cast<qc::Qubit>(cli.positionals[0]);
  const qc::Circuit mvCircuit = algos::grover({nqubits, (1ULL << nqubits) / 3, 0});
  // The unitary workload squares the DD sizes; keep it two qubits narrower.
  const auto mmQubits = static_cast<qc::Qubit>(nqubits > 2 ? nqubits - 2 : 1);
  const qc::Circuit mmCircuit = algos::grover({mmQubits, (1ULL << mmQubits) / 3, 0});

  std::cout << "== parallel_kernels: algebraic Grover, mv " << nqubits << "q/"
            << mvCircuit.size() << "g, mm " << mmQubits << "q/" << mmCircuit.size() << "g ==\n";

  const Series mv = measure("groverMv", mvCircuit, runGroverMv);
  const Series mm = measure("unitaryMm", mmCircuit, runUnitaryMm);

  for (const Series* series : {&mv, &mm}) {
    if (!series->identical()) {
      std::cerr << "FAIL: " << series->name
                << " results differ across worker counts (determinism contract broken)\n";
      return 1;
    }
  }

  const unsigned hardware = std::thread::hardware_concurrency();
  const bool enforceGate = hardware >= 4;
  std::ofstream os("BENCH_parallel.json");
  os << std::setprecision(6) << std::fixed;
  os << "{\n  \"bench\": \"parallel_kernels\",\n"
     << "  \"workload\": \"fork-join DD kernels, exact algebraic grover\",\n"
     << "  \"qubits\": " << nqubits << ",\n  \"gates\": " << mvCircuit.size() << ",\n"
     << "  \"workers\": 4,\n"
     << "  \"series\": {\n";
  emitSeries(os, mv, false);
  emitSeries(os, mm, true);
  os << "  }\n}\n";
  std::cout << "report written to BENCH_parallel.json\n";

  if (enforceGate) {
    const double best = std::max(mv.speedup4(), mm.speedup4());
    if (best < 1.5) {
      std::cerr << "FAIL: best 4-worker speedup " << std::setprecision(2) << best
                << "x is below the 1.5x gate (" << hardware << " hardware threads)\n";
      return 1;
    }
    std::cout << "speedup gate passed (best " << std::setprecision(2) << best << "x)\n";
  } else {
    std::cout << "speedup gate skipped: only " << hardware << " hardware thread(s)\n";
  }
  return 0;
}
