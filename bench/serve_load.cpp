/// \file serve_load.cpp
/// Latency-SLO load bench for the qadd_serve daemon: boots a server
/// in-process (port 0), drives it with N concurrent TCP clients running a
/// mixed workload (exact algebraic + ε-tolerance numeric sessions, snapshot
/// and plain jobs, the occasional metrics scrape), and writes
/// BENCH_serve.json with p50/p95/p99 request latency, throughput, and the
/// correctness gates:
///
///   - zero transport errors and zero dropped connections (admission control
///     bounds load with 429s, which clients retry — overload must never
///     surface as broken connections),
///   - every distinct workload's final state byte-identical to an offline
///     qc::Simulator run of the same circuit/ε (fresh verification sessions,
///     so ε-tolerance results are compared on equal weight-table history —
///     see docs/SERVE.md).
///
///   ./serve_load [clients] [perClient] [qubits] [--help]
#include "core/algebraic_system.hpp"
#include "core/numeric_system.hpp"
#include "algorithms/grover.hpp"
#include "eval/driver_cli.hpp"
#include "io/snapshot.hpp"
#include "qc/simulator.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace qadd;
using Clock = std::chrono::steady_clock;

/// One distinct job shape of the mixed workload.
struct Workload {
  std::string name;
  std::string system; ///< "alg" or "num"
  double epsilon = 0.0;
  qc::Circuit circuit{0};
};

/// Offline reference: simulate the workload's circuit with its own package
/// (exactly what docs/SERVE.md promises a fresh session matches) and return
/// the QDDS state snapshot.
template <class System>
std::vector<std::uint8_t> offlineSnapshot(const Workload& workload,
                                          typename System::Config config) {
  qc::Simulator<System> simulator(workload.circuit, config);
  simulator.run();
  return io::saveVector(simulator.package(), simulator.state());
}

struct ClientStats {
  std::vector<double> latenciesMs;
  std::uint64_t completed = 0;
  std::uint64_t retries429 = 0;
  std::uint64_t errors = 0;
  std::string firstError;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

} // namespace

int main(int argc, char** argv) {
  const eval::DriverSpec spec{
      "serve_load",
      "BENCH_serve.json: qadd_serve latency percentiles + throughput under concurrent load.",
      {{"clients", 8, "concurrent TCP clients"},
       {"perClient", 24, "requests per client"},
       {"qubits", 8, "workload circuit width"}},
      false};
  const eval::DriverCli cli = eval::parseDriverCli(argc, argv, spec);
  const auto clients = static_cast<std::size_t>(cli.positionals[0]);
  const auto perClient = static_cast<std::size_t>(cli.positionals[1]);
  const auto qubits = static_cast<qc::Qubit>(cli.positionals[2]);

  // Mixed workload: two widths of exact algebraic Grover plus an ε-tolerance
  // numeric run of the wider one.  All deterministic.
  const auto narrow = static_cast<qc::Qubit>(qubits > 2 ? qubits - 2 : 1);
  std::vector<Workload> workloads;
  workloads.push_back({"algWide", "alg", 0.0, algos::grover({qubits, (1ULL << qubits) / 3, 0})});
  workloads.push_back(
      {"algNarrow", "alg", 0.0, algos::grover({narrow, (1ULL << narrow) / 3, 0})});
  workloads.push_back(
      {"numEps", "num", 1e-4, algos::grover({qubits, (1ULL << qubits) / 3, 0})});

  serve::ServerConfig serverConfig;
  serverConfig.port = 0;
  serverConfig.workers = 4;
  serverConfig.maxQueueDepth = 2 * clients; // small enough that 429s actually fire under burst
  serverConfig.maxSessions = clients + workloads.size() + 4;
  serverConfig.idleTimeoutSeconds = 120.0;
  serve::Server server(serverConfig);
  server.start();
  const std::uint16_t port = server.port();
  std::cout << "== serve_load: " << clients << " clients x " << perClient << " requests, "
            << qubits << "q workloads, port " << port << " ==\n";

  const auto runClient = [&](std::size_t clientIndex, ClientStats& stats) {
    try {
      serve::Client client;
      client.connect("127.0.0.1", port, 60.0);
      // Each client owns one session; system alternates across clients so
      // both weight systems are under load concurrently.
      const Workload& workload = workloads[clientIndex % workloads.size()];
      const std::string sessionName = "load-" + std::to_string(clientIndex);
      {
        serve::json::Value open = serve::json::Value::object();
        open.set("id", std::string("open"));
        open.set("op", "open");
        open.set("session", sessionName);
        open.set("system", workload.system);
        open.set("eps", workload.epsilon);
        open.set("qubits", static_cast<std::size_t>(workload.circuit.qubits()));
        const serve::json::Value reply = client.call(open);
        if (!reply.getBool("ok")) {
          throw std::runtime_error("open failed: " + serve::json::dump(reply));
        }
      }
      const std::string circuitText = workload.circuit.toText();
      for (std::size_t r = 0; r < perClient; ++r) {
        serve::json::Value request = serve::json::Value::object();
        request.set("id", std::to_string(clientIndex) + ":" + std::to_string(r));
        if (r % 13 == 12) { // the occasional metrics scrape rides along
          request.set("op", "metrics");
        } else {
          request.set("op", "run");
          request.set("session", sessionName);
          request.set("circuit", circuitText);
          if (r % 5 == 4) {
            request.set("snapshot", true); // exercise the QDDS payload path
          }
        }
        while (true) {
          const auto start = Clock::now();
          const serve::json::Value reply = client.call(request);
          const double ms =
              std::chrono::duration<double, std::milli>(Clock::now() - start).count();
          if (reply.getBool("ok")) {
            stats.latenciesMs.push_back(ms);
            ++stats.completed;
            break;
          }
          const auto* error = reply.find("error");
          const int code =
              error != nullptr ? static_cast<int>(error->getNumber("code")) : 0;
          if (code == 429) { // admission control: back off and retry
            ++stats.retries429;
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            continue;
          }
          throw std::runtime_error("request failed: " + serve::json::dump(reply));
        }
      }
    } catch (const std::exception& error) {
      ++stats.errors;
      if (stats.firstError.empty()) {
        stats.firstError = error.what();
      }
    }
  };

  std::vector<ClientStats> stats(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto loadStart = Clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back(runClient, c, std::ref(stats[c]));
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const double loadSeconds = std::chrono::duration<double>(Clock::now() - loadStart).count();

  std::vector<double> latencies;
  std::uint64_t completed = 0;
  std::uint64_t retries429 = 0;
  std::uint64_t errors = 0;
  for (const ClientStats& s : stats) {
    latencies.insert(latencies.end(), s.latenciesMs.begin(), s.latenciesMs.end());
    completed += s.completed;
    retries429 += s.retries429;
    errors += s.errors;
    if (!s.firstError.empty()) {
      std::cerr << "client error: " << s.firstError << "\n";
    }
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50 = percentile(latencies, 0.50);
  const double p95 = percentile(latencies, 0.95);
  const double p99 = percentile(latencies, 0.99);
  const double throughput = loadSeconds > 0 ? static_cast<double>(completed) / loadSeconds : 0.0;

  // Byte-identity verification: for each workload, a FRESH session's state
  // snapshot must equal the offline simulator's (fresh, so ε-tolerance
  // results are compared on equal weight-table history).
  std::size_t identicalResults = 0;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const Workload& workload = workloads[w];
    std::vector<std::uint8_t> offline;
    if (workload.system == "alg") {
      offline = offlineSnapshot<dd::AlgebraicSystem>(workload, {});
    } else {
      dd::NumericSystem::Config config;
      config.epsilon = workload.epsilon;
      offline = offlineSnapshot<dd::NumericSystem>(workload, config);
    }
    serve::Client client;
    client.connect("127.0.0.1", port, 60.0);
    serve::json::Value open = serve::json::Value::object();
    open.set("op", "open");
    open.set("session", "verify-" + workload.name);
    open.set("system", workload.system);
    open.set("eps", workload.epsilon);
    open.set("qubits", static_cast<std::size_t>(workload.circuit.qubits()));
    if (!client.call(open).getBool("ok")) {
      std::cerr << "FAIL: verify session open failed for " << workload.name << "\n";
      continue;
    }
    serve::json::Value run = serve::json::Value::object();
    run.set("op", "run");
    run.set("session", "verify-" + workload.name);
    run.set("circuit", workload.circuit.toText());
    run.set("snapshot", true);
    const serve::json::Value reply = client.call(run);
    const auto served = serve::decodeBase64(reply.getString("snapshot_b64"));
    if (reply.getBool("ok") && served == offline) {
      ++identicalResults;
    } else {
      std::cerr << "FAIL: " << workload.name << " served snapshot differs from offline ("
                << served.size() << " vs " << offline.size() << " bytes)\n";
    }
  }

  const auto& counters = server.counters();
  const std::uint64_t dropped = counters.droppedConnections.load();
  const std::uint64_t cacheHits = counters.resultCacheHits.load();
  const std::uint64_t coalesced = counters.resultCacheCoalesced.load();
  const std::uint64_t rejected = server.jobQueue().rejected();
  server.stop();

  std::cout << std::fixed << std::setprecision(3) << "completed " << completed << " requests in "
            << loadSeconds << " s (" << std::setprecision(1) << throughput << " req/s), p50 "
            << std::setprecision(3) << p50 << " ms, p95 " << p95 << " ms, p99 " << p99
            << " ms\n"
            << "429 retries " << retries429 << " (server rejected " << rejected
            << "), result cache " << cacheHits << " hits / " << coalesced << " coalesced, "
            << identicalResults << "/" << workloads.size() << " workloads byte-identical\n";

  std::ofstream os("BENCH_serve.json");
  os << std::setprecision(6) << std::fixed;
  os << "{\n  \"bench\": \"serve_load\",\n"
     << "  \"workload\": \"mixed alg/num grover over TCP, admission-controlled\",\n"
     << "  \"clients\": " << clients << ",\n"
     << "  \"perClient\": " << perClient << ",\n"
     << "  \"qubits\": " << static_cast<std::size_t>(qubits) << ",\n"
     << "  \"completed\": " << completed << ",\n"
     << "  \"errors\": " << errors << ",\n"
     << "  \"droppedConnections\": " << dropped << ",\n"
     << "  \"identicalResults\": " << identicalResults << ",\n"
     << "  \"workloads\": " << workloads.size() << ",\n"
     << "  \"retries429\": " << retries429 << ",\n"
     << "  \"latency\": {\n"
     << "    \"p50Ms\": " << p50 << ",\n"
     << "    \"p95Ms\": " << p95 << ",\n"
     << "    \"p99Ms\": " << p99 << "\n"
     << "  },\n"
     << "  \"throughputRps\": " << throughput << ",\n"
     << "  \"loadSeconds\": " << loadSeconds << ",\n"
     << "  \"resultCacheHits\": " << cacheHits << ",\n"
     << "  \"resultCacheCoalesced\": " << coalesced << "\n"
     << "}\n";
  std::cout << "report written to BENCH_serve.json\n";

  if (errors != 0) {
    std::cerr << "FAIL: " << errors << " client(s) hit transport/protocol errors\n";
    return 1;
  }
  if (dropped != 0) {
    std::cerr << "FAIL: server dropped " << dropped << " connection(s) under load\n";
    return 1;
  }
  if (identicalResults != workloads.size()) {
    std::cerr << "FAIL: only " << identicalResults << "/" << workloads.size()
              << " workloads byte-identical to the offline simulator\n";
    return 1;
  }
  std::cout << "serve_load gates passed (0 errors, 0 dropped, " << identicalResults
            << "/" << workloads.size() << " identical)\n";
  return 0;
}
