/// \file exec_sweep.cpp
/// Before/after series for the parallel ε-sweep executor (qadd::exec): runs
/// the Fig. 3 numeric tolerance portion — the six ε simulations, each in its
/// own thread-confined package — once serially (`--jobs 1`, the pre-exec
/// code path) and once on a worker pool, and writes BENCH_exec.json with the
/// wall-clock of both plus the speedup.  The per-trace value series are
/// checked identical between the two runs before the report is written, so
/// the speedup is never bought with a divergent result.
///
///   ./exec_sweep [nqubits] [--jobs N] [--help]
///                             (default: 9 qubits, QADD_JOBS/hardware jobs)
#include "algorithms/grover.hpp"
#include "eval/driver_cli.hpp"
#include "eval/sweep.hpp"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <vector>

namespace {

using namespace qadd;

/// The value columns of one trace (everything writeCsv emits except the
/// wall-clock `seconds` and the address-sensitive `cachehitrate`).
std::vector<std::size_t> valueSeries(const eval::SimulationTrace& trace) {
  std::vector<std::size_t> values;
  values.reserve(trace.points.size() * 4);
  for (const eval::TracePoint& point : trace.points) {
    values.push_back(point.gateIndex);
    values.push_back(point.nodes);
    values.push_back(point.maxBits);
    values.push_back(point.tableFill);
  }
  return values;
}

} // namespace

int main(int argc, char** argv) {
  const eval::DriverSpec spec{
      "exec_sweep",
      "BENCH_exec.json: serial vs parallel wall-clock of the Fig. 3 numeric ε sweep.",
      {{"nqubits", 9, "Grover circuit width"}},
      false};
  const eval::DriverCli cli = eval::parseDriverCli(argc, argv, spec);
  const auto nqubits = static_cast<qc::Qubit>(cli.positionals[0]);
  const qc::Circuit circuit = algos::grover({nqubits, (1ULL << nqubits) / 3, 0});

  eval::SweepSpec sweep(circuit);
  sweep.options.sampleEvery = std::max<std::size_t>(1, circuit.size() / 60);
  sweep.reference = eval::ReferencePolicy::None; // time the numeric portion only
  sweep.addEpsilons({0.0, 1e-20, 1e-15, 1e-10, 1e-5, 1e-3});
  sweep.applyApprox(cli.approx);

  std::cout << "== exec_sweep: Fig. 3 numeric portion, " << nqubits << " qubits, "
            << circuit.size() << " gates, " << sweep.points.size() << " tolerance runs ==\n";

  // Warm-up run (page cache, lazy allocations), then the measured pair.
  (void)eval::runSweep(sweep, nullptr);
  const eval::SweepResult serial = eval::runSweep(sweep, nullptr);
  exec::ThreadPool pool(cli.jobs);
  const eval::SweepResult parallel = eval::runSweep(sweep, &pool);

  for (std::size_t i = 0; i < serial.traces.size(); ++i) {
    if (valueSeries(serial.traces[i]) != valueSeries(parallel.traces[i])) {
      std::cerr << "FAIL: value series of " << serial.traces[i].label
                << " differ between --jobs 1 and --jobs " << cli.jobs << "\n";
      return 1;
    }
  }

  const double speedup = parallel.numericSweepSeconds > 0.0
                             ? serial.numericSweepSeconds / parallel.numericSweepSeconds
                             : 0.0;
  std::cout << std::fixed << std::setprecision(3) << "jobs=1: " << serial.numericSweepSeconds
            << " s\njobs=" << cli.jobs << ": " << parallel.numericSweepSeconds << " s\nspeedup: "
            << std::setprecision(2) << speedup << "x (value series identical)\n";

  std::ofstream os("BENCH_exec.json");
  os << std::setprecision(6) << std::fixed;
  os << "{\n  \"bench\": \"exec_sweep\",\n  \"workload\": \"fig3 numeric epsilon sweep\",\n"
     << "  \"qubits\": " << nqubits << ",\n  \"gates\": " << circuit.size()
     << ",\n  \"epsilonRuns\": " << sweep.points.size() << ",\n  \"workers\": " << cli.jobs
     << ",\n  \"series\": {\n    \"numericSweep\": {\n      \"jobs1Seconds\": "
     << serial.numericSweepSeconds << ",\n      \"jobsNSeconds\": " << parallel.numericSweepSeconds
     << ",\n      \"speedup\": " << speedup << ",\n      \"identicalValueSeries\": true\n    }\n"
     << "  }\n}\n";
  std::cout << "report written to BENCH_exec.json\n";
  return 0;
}
