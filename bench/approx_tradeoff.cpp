/// \file approx_tradeoff.cpp
/// Accuracy-vs-compactness trade-off of the fidelity-bounded approximation
/// engine (docs/APPROXIMATION.md): simulates Grover (24 qubits), GSE and BWT
/// once exactly under the eps = 0 numeric system and once with the PerGate
/// policy at a cumulative fidelity target of 0.9, and writes
/// BENCH_approx.json with the peak/final diagram sizes, the achieved
/// fidelity and the pruned-node counts of each run.
///
/// Enforced gates (exit 1 on failure): on the Grover workload the
/// approximated run must peak at least 5x fewer state nodes than the exact
/// run, and every approximated run must keep its cumulative fidelity at or
/// above the 0.9 target (the prune ledger guarantees this by construction —
/// the gate catches accounting regressions, not tuning).  Grover is the
/// workload where pruning shines: at eps = 0 floating-point round-off splits
/// the two-amplitude Grover state into hundreds of thousands of
/// near-duplicate nodes, all of which carry next to no contribution mass.
/// BWT is the honest counter-case — its walk genuinely spreads mass, so a
/// 0.1 budget buys only a modest reduction.
///
///   ./approx_tradeoff [--help]
#include "algorithms/bwt.hpp"
#include "algorithms/grover.hpp"
#include "algorithms/gse.hpp"
#include "core/package.hpp"
#include "eval/driver_cli.hpp"
#include "qc/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

namespace {

using namespace qadd;
using Clock = std::chrono::steady_clock;

constexpr double kFidelityTarget = 0.9; ///< cumulative fidelity floor
constexpr double kNodeGate = 5.0;       ///< Grover peak-node reduction floor
const char* const kGateWorkload = "grover";

struct Run {
  std::size_t peakNodes = 0;  ///< max state nodes over all gate applications
  std::size_t finalNodes = 0; ///< state nodes after the last gate
  double fidelity = 1.0;      ///< cumulative achieved fidelity
  std::size_t prunedNodes = 0;
  double seconds = 0.0;
};

Run simulate(const qc::Circuit& circuit, const dd::ApproxSpec& approx) {
  qc::Simulator<dd::NumericSystem> simulator(
      circuit, {0.0, dd::NumericSystem::Normalization::LeftmostNonzero});
  if (approx.active()) {
    simulator.setApproximation(approx);
  }
  Run run;
  const auto start = Clock::now();
  simulator.run([&](auto& sim) { run.peakNodes = std::max(run.peakNodes, sim.stateNodes()); });
  run.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  run.finalNodes = simulator.stateNodes();
  run.fidelity = simulator.approxFidelity();
  run.prunedNodes = simulator.approxPrunedNodes();
  return run;
}

struct Workload {
  std::string name;
  qc::Circuit circuit;
  Run exact;
  Run approx;

  [[nodiscard]] double nodeReduction() const {
    return approx.peakNodes > 0 ? static_cast<double>(exact.peakNodes) /
                                      static_cast<double>(approx.peakNodes)
                                : 0.0;
  }
  [[nodiscard]] bool fidelityGatePassed() const {
    return approx.fidelity >= kFidelityTarget - 1e-9;
  }
  [[nodiscard]] bool nodeGatePassed() const { return nodeReduction() >= kNodeGate; }
};

void emitWorkload(std::ofstream& os, const Workload& w, bool last) {
  os << "    \"" << w.name << "\": {\n"
     << "      \"qubits\": " << w.circuit.qubits() << ",\n"
     << "      \"gates\": " << w.circuit.size() << ",\n"
     << "      \"exactNodes\": " << w.exact.peakNodes << ",\n"
     << "      \"exactFinalNodes\": " << w.exact.finalNodes << ",\n"
     << "      \"approxNodes\": " << w.approx.peakNodes << ",\n"
     << "      \"approxFinalNodes\": " << w.approx.finalNodes << ",\n"
     << "      \"nodeReduction\": " << w.nodeReduction() << ",\n"
     << "      \"achievedFidelity\": " << w.approx.fidelity << ",\n"
     << "      \"prunedNodes\": " << w.approx.prunedNodes << ",\n"
     << "      \"exactSeconds\": " << w.exact.seconds << ",\n"
     << "      \"approxSeconds\": " << w.approx.seconds << ",\n"
     << "      \"nodeGatePassed\": " << (w.nodeGatePassed() ? "true" : "false") << ",\n"
     << "      \"fidelityGatePassed\": " << (w.fidelityGatePassed() ? "true" : "false") << "\n"
     << "    }" << (last ? "\n" : ",\n");
}

} // namespace

int main(int argc, char** argv) {
  const eval::DriverSpec spec{
      "approx_tradeoff",
      "BENCH_approx.json: exact eps=0 numeric vs fidelity-bounded PerGate pruning.",
      {},
      false};
  (void)eval::parseDriverCli(argc, argv, spec);

  // Two Grover iterations keep the exact run's node blow-up (and hence the
  // bench run-time) bounded while still crossing the GC watermark; the
  // optimal iteration count at 24 qubits (~3200) is far out of reach for the
  // exact eps = 0 run — which is the point of the approximation engine.
  const dd::ApproxSpec approx{1.0 - kFidelityTarget, dd::ApproxPolicy::PerGate};
  std::vector<Workload> workloads;
  workloads.push_back({"grover", algos::grover({24, (1ULL << 24) / 3, 2}), {}, {}});
  workloads.push_back({"gse", algos::gseRotationCircuit({6, 8, 1.0, 0}), {}, {}});
  workloads.push_back({"bwt", algos::bwt({4, 10}), {}, {}});

  std::cout << "== approx_tradeoff: exact eps=0 vs PerGate pruning at fidelity "
            << kFidelityTarget << " ==\n";
  bool nodeGatePassed = true;
  bool fidelityGatePassed = true;
  for (Workload& w : workloads) {
    w.exact = simulate(w.circuit, {});
    w.approx = simulate(w.circuit, approx);
    std::cout << std::fixed << std::setprecision(2) << w.name << " (n=" << w.circuit.qubits()
              << ", " << w.circuit.size() << " gates): peak " << w.exact.peakNodes << " vs "
              << w.approx.peakNodes << " nodes (" << w.nodeReduction() << "x), fidelity "
              << std::setprecision(6) << w.approx.fidelity << ", " << w.approx.prunedNodes
              << " nodes pruned, " << std::setprecision(2) << w.exact.seconds << " s vs "
              << w.approx.seconds << " s\n";
    if (!w.fidelityGatePassed()) {
      fidelityGatePassed = false;
      std::cerr << "FAIL: " << w.name << " achieved fidelity " << std::setprecision(6)
                << w.approx.fidelity << " below the " << kFidelityTarget << " target\n";
    }
    if (w.name == kGateWorkload && !w.nodeGatePassed()) {
      nodeGatePassed = false;
      std::cerr << "FAIL: " << w.name << " peak-node reduction " << std::setprecision(2)
                << w.nodeReduction() << "x below the " << kNodeGate << "x gate\n";
    }
  }

  std::ofstream os("BENCH_approx.json");
  os << std::setprecision(6) << std::fixed;
  os << "{\n  \"bench\": \"approx_tradeoff\",\n"
     << "  \"workload\": \"Grover/GSE/BWT, exact eps=0 vs PerGate pruning\",\n"
     << "  \"fidelityTarget\": " << kFidelityTarget << ",\n"
     << "  \"nodeGatePassed\": " << (nodeGatePassed ? "true" : "false") << ",\n"
     << "  \"fidelityGatePassed\": " << (fidelityGatePassed ? "true" : "false") << ",\n"
     << "  \"workloads\": " << workloads.size() << ",\n"
     << "  \"series\": {\n";
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    emitWorkload(os, workloads[i], i + 1 == workloads.size());
  }
  os << "  }\n}\n";
  std::cout << "report written to BENCH_approx.json\n";

  if (!nodeGatePassed || !fidelityGatePassed) {
    return 1;
  }
  std::cout << "approximation gates passed (grover >= " << kNodeGate << "x, fidelity >= "
            << kFidelityTarget << ")\n";
  return 0;
}
