/// \file ablation_mv_vs_mm.cpp
/// Design-choice ablation referenced by the paper's context ([25]:
/// "Matrix-Vector vs. Matrix-Matrix Multiplication in DD-based simulation"):
/// simulate each benchmark either by evolving the state vector gate by gate
/// (matrix-vector) or by first accumulating the full circuit unitary
/// (matrix-matrix) and applying it once.  Expected shape: MxV wins whenever
/// the state stays compact; MxM pays for large intermediate matrix DDs but
/// amortizes when the same circuit is applied to many states.
///
///   ./ablation_mv_vs_mm
#include "algorithms/common.hpp"
#include "algorithms/grover.hpp"
#include "algorithms/oracles.hpp"
#include "qc/simulator.hpp"

#include <chrono>
#include <iomanip>
#include <iostream>

namespace {

using namespace qadd;
using Clock = std::chrono::steady_clock;

template <class System> struct Result {
  double mvSeconds;
  double mmSeconds;
  std::size_t unitaryNodes;
};

template <class System>
Result<System> compare(const qc::Circuit& circuit, typename System::Config config) {
  Result<System> result{};
  {
    const auto start = Clock::now();
    qc::Simulator<System> simulator(circuit, config);
    simulator.run();
    result.mvSeconds = std::chrono::duration<double>(Clock::now() - start).count();
  }
  {
    const auto start = Clock::now();
    dd::Package<System> package(circuit.qubits(), config);
    const auto unitary = qc::buildUnitary(package, circuit);
    const auto state = package.multiply(unitary, package.makeZeroState());
    (void)state;
    result.mmSeconds = std::chrono::duration<double>(Clock::now() - start).count();
    result.unitaryNodes = package.countNodes(unitary);
  }
  return result;
}

} // namespace

int main() {
  std::cout << "== Ablation: matrix-vector vs matrix-matrix simulation ==\n";
  std::cout << std::left << std::setw(16) << "benchmark" << std::setw(12) << "system"
            << std::right << std::setw(12) << "MxV [s]" << std::setw(12) << "MxM [s]"
            << std::setw(16) << "unitary nodes" << "\n";

  const auto row = [](const std::string& name, const std::string& system, double mv, double mm,
                      std::size_t nodes) {
    std::cout << std::left << std::setw(16) << name << std::setw(12) << system << std::right
              << std::setw(12) << std::fixed << std::setprecision(4) << mv << std::setw(12) << mm
              << std::setw(16) << nodes << "\n";
  };

  const struct {
    const char* name;
    qc::Circuit circuit;
  } benchmarks[] = {
      {"ghz-12", algos::ghz(12)},
      {"grover-8", algos::grover({8, 77, 0})},
      {"bv-12", algos::bernsteinVazirani(12, 0xA5A)},
      {"qft-8", [] {
         qc::Circuit c = algos::prepareBasisState(8, 0x2C);
         c.append(algos::qft(8));
         return c;
       }()},
  };

  for (const auto& benchmark : benchmarks) {
    if (benchmark.circuit.isCliffordTOnly()) {
      const auto algebraic = compare<dd::AlgebraicSystem>(benchmark.circuit, {});
      row(benchmark.name, "algebraic", algebraic.mvSeconds, algebraic.mmSeconds,
          algebraic.unitaryNodes);
    }
    const auto numeric = compare<dd::NumericSystem>(
        benchmark.circuit, {1e-12, dd::NumericSystem::Normalization::LeftmostNonzero});
    row(benchmark.name, "numeric", numeric.mvSeconds, numeric.mmSeconds, numeric.unitaryNodes);
  }
  std::cout << "\nExpected: MxV dominates when states stay compact (all cases here);\n"
               "the full-unitary route pays the cost of the (often much larger)\n"
               "matrix diagram — cf. [25] in the paper.\n";
  return 0;
}
