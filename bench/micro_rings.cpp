/// \file micro_rings.cpp
/// Micro-benchmarks of the algebraic number tower: Z[omega] / Q[omega]
/// arithmetic, canonicalization (Algorithm 1), inversion (Algorithm 2's
/// workhorse) and GCD computation (Algorithm 3's workhorse) — against the
/// interned numeric complex table for context.  Each benchmark also reports
/// allocs_per_op via the operator-new probe (zero on the small-coefficient
/// configurations is the SSO acceptance criterion).
#include "alloc_probe.hpp"

#include "algebraic/euclidean.hpp"
#include "algebraic/qomega.hpp"
#include "numeric/complex_table.hpp"

#include <benchmark/benchmark.h>

#include <random>

namespace {

using namespace qadd;
using alg::QOmega;
using alg::ZOmega;

/// Attach allocs/op of the timed loop as a benchmark counter.
struct AllocScope {
  explicit AllocScope(benchmark::State& state)
      : state_(state), start_(benchprobe::allocationCount()) {}
  ~AllocScope() {
    const auto total = benchprobe::allocationCount() - start_;
    state_.counters["allocs_per_op"] =
        state_.iterations() == 0
            ? 0.0
            : static_cast<double>(total) / static_cast<double>(state_.iterations());
  }
  benchmark::State& state_;
  std::uint64_t start_;
};

ZOmega randomZOmega(std::mt19937_64& rng, int bound) {
  std::uniform_int_distribution<std::int64_t> d(-bound, bound);
  return {BigInt{d(rng)}, BigInt{d(rng)}, BigInt{d(rng)}, BigInt{d(rng)}};
}

void BM_ZOmegaMul(benchmark::State& state) {
  std::mt19937_64 rng(3);
  const ZOmega a = randomZOmega(rng, static_cast<int>(state.range(0)));
  const ZOmega b = randomZOmega(rng, static_cast<int>(state.range(0)));
  AllocScope allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_ZOmegaMul)->Arg(100)->Arg(1000000);

void BM_QOmegaMulCanonicalize(benchmark::State& state) {
  std::mt19937_64 rng(5);
  const QOmega a{randomZOmega(rng, 1000), 3, BigInt{9}};
  const QOmega b{randomZOmega(rng, 1000), -2, BigInt{15}};
  AllocScope allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_QOmegaMulCanonicalize);

void BM_QOmegaAdd(benchmark::State& state) {
  std::mt19937_64 rng(7);
  const QOmega a{randomZOmega(rng, 1000), 3, BigInt{9}};
  const QOmega b{randomZOmega(rng, 1000), -2, BigInt{15}};
  AllocScope allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a + b);
  }
}
BENCHMARK(BM_QOmegaAdd);

void BM_QOmegaInverse(benchmark::State& state) {
  std::mt19937_64 rng(9);
  const QOmega a{randomZOmega(rng, static_cast<int>(state.range(0))), 2, BigInt{7}};
  AllocScope allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.inverse());
  }
}
BENCHMARK(BM_QOmegaInverse)->Arg(100)->Arg(100000);

void BM_ZOmegaGcd(benchmark::State& state) {
  std::mt19937_64 rng(11);
  const ZOmega common = randomZOmega(rng, 50);
  const ZOmega a = common * randomZOmega(rng, static_cast<int>(state.range(0)));
  const ZOmega b = common * randomZOmega(rng, static_cast<int>(state.range(0)));
  AllocScope allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg::gcdZOmega(a, b));
  }
}
BENCHMARK(BM_ZOmegaGcd)->Arg(10)->Arg(1000);

void BM_CanonicalAssociate(benchmark::State& state) {
  std::mt19937_64 rng(13);
  const QOmega a{randomZOmega(rng, 1000), 1};
  AllocScope allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg::canonicalAssociate(a));
  }
}
BENCHMARK(BM_CanonicalAssociate);

void BM_QOmegaToComplex(benchmark::State& state) {
  std::mt19937_64 rng(15);
  const QOmega a{randomZOmega(rng, 1000000), 11, BigInt{12345}};
  AllocScope allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.toComplex());
  }
}
BENCHMARK(BM_QOmegaToComplex);

void BM_ComplexTableLookup(benchmark::State& state) {
  num::ComplexTable table(1e-10);
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<num::ComplexValue> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back({d(rng), d(rng)});
  }
  std::size_t i = 0;
  AllocScope allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(values[i++ % values.size()]));
  }
}
BENCHMARK(BM_ComplexTableLookup);

} // namespace
