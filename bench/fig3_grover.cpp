/// \file fig3_grover.cpp
/// Regenerates Fig. 3 of the paper: simulating Grover's algorithm under the
/// numerical QMDD for eps in {0, 1e-20, 1e-15, 1e-10, 1e-5, 1e-3} and under
/// the exact algebraic QMDD, reporting
///   (a) the per-gate size of the state diagram,
///   (b) the accuracy relative to the exact result,
///   (c) the accumulated simulation run-time.
/// Expected shape (who wins): tight eps (0 / 1e-20) is accurate but blows the
/// diagram up; mid eps is compact and accurate; large eps is compact but
/// wrong; the algebraic diagram is compact AND exact at a modest constant
/// run-time overhead versus the best-tuned numeric run.
///
///   ./fig3_grover [nqubits] [--stats] [--trace-json <path>]
///                 [--checkpoint-every K] [--refresh-reference]
///                               (default 10; the paper uses 15)
/// Writes fig3_grover.csv next to the binary.  The exact algebraic reference
/// (the expensive part of the sweep) is cached in fig3_reference.qref and
/// reused on subsequent runs of the same configuration.
#include "algorithms/grover.hpp"
#include "eval/reference_cache.hpp"
#include "eval/report.hpp"
#include "eval/trace.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>

int main(int argc, char** argv) {
  using namespace qadd;

  const eval::ObsCliOptions obsOptions = eval::parseObsCli(argc, argv);
  const auto nqubits = static_cast<qc::Qubit>(argc > 1 ? std::atoi(argv[1]) : 10);
  const qc::Circuit circuit = algos::grover({nqubits, (1ULL << nqubits) / 3, 0});
  std::cout << "== Fig. 3: Grover's algorithm, " << nqubits << " qubits, " << circuit.size()
            << " gates ==\n";

  eval::TraceOptions options;
  options.sampleEvery = std::max<std::size_t>(1, circuit.size() / 60);
  obsOptions.applyTo(options);

  std::vector<eval::SimulationTrace> traces;
  eval::CachedAlgebraicReference reference = eval::traceAlgebraicCached(
      circuit, options, "fig3_reference.qref", obsOptions.refreshReference);
  std::cout << (reference.fromCache ? "algebraic reference loaded from fig3_reference.qref in "
                                    : "algebraic reference computed and cached in ")
            << reference.cacheSeconds << " s\n";
  traces.push_back(reference.trace);
  for (const double epsilon : {0.0, 1e-20, 1e-15, 1e-10, 1e-5, 1e-3}) {
    traces.push_back(eval::traceNumeric(circuit, epsilon, &reference.trajectory, options));
  }

  eval::printSummaryTable(std::cout, traces);
  eval::printAsciiChart(std::cout, "Fig. 3a: QMDD size (nodes)", traces, eval::Series::Nodes,
                        false);
  eval::printAsciiChart(std::cout, "Fig. 3b: accuracy error", traces, eval::Series::Error, true);
  eval::printAsciiChart(std::cout, "Fig. 3c: run-time [s]", traces, eval::Series::Seconds,
                        false);

  std::ofstream csv("fig3_grover.csv");
  eval::writeCsv(csv, traces);
  std::cout << "\nseries written to fig3_grover.csv\n";
  eval::finishObsCli(obsOptions, std::cout, traces);
  return 0;
}
