/// \file fig3_grover.cpp
/// Regenerates Fig. 3 of the paper: simulating Grover's algorithm under the
/// numerical QMDD for eps in {0, 1e-20, 1e-15, 1e-10, 1e-5, 1e-3} and under
/// the exact algebraic QMDD, reporting
///   (a) the per-gate size of the state diagram,
///   (b) the accuracy relative to the exact result,
///   (c) the accumulated simulation run-time.
/// Expected shape (who wins): tight eps (0 / 1e-20) is accurate but blows the
/// diagram up; mid eps is compact and accurate; large eps is compact but
/// wrong; the algebraic diagram is compact AND exact at a modest constant
/// run-time overhead versus the best-tuned numeric run.
///
///   ./fig3_grover [nqubits] [--jobs N] [--stats] [--trace-json <path>]
///                 [--checkpoint-every K] [--refresh-reference] [--help]
/// Writes fig3_grover.csv next to the binary.  The exact algebraic reference
/// (the expensive part of the sweep) is cached in fig3_reference.qref and
/// reused on subsequent runs; the six numeric runs fan out across --jobs
/// workers (value columns of the CSV are identical for any worker count).
#include "algorithms/grover.hpp"
#include "eval/driver_cli.hpp"
#include "eval/report.hpp"
#include "eval/sweep.hpp"

#include <fstream>
#include <iostream>

int main(int argc, char** argv) {
  using namespace qadd;

  const eval::DriverSpec spec{
      "fig3_grover",
      "Fig. 3: Grover's algorithm under the numeric ε sweep vs the exact algebraic QMDD.",
      {{"nqubits", 10, "circuit width (the paper uses 15)"}},
      true};
  const eval::DriverCli cli = eval::parseDriverCli(argc, argv, spec);
  const auto nqubits = static_cast<qc::Qubit>(cli.positionals[0]);
  const qc::Circuit circuit = algos::grover({nqubits, (1ULL << nqubits) / 3, 0});
  std::cout << "== Fig. 3: Grover's algorithm, " << nqubits << " qubits, " << circuit.size()
            << " gates ==\n";

  eval::SweepSpec sweep(circuit);
  sweep.options.sampleEvery = std::max<std::size_t>(1, circuit.size() / 60);
  cli.obs.applyTo(sweep.options);
  sweep.reference = eval::ReferencePolicy::Cached;
  sweep.referenceCachePath = "fig3_reference.qref";
  sweep.refreshReference = cli.obs.refreshReference;
  sweep.addEpsilons({0.0, 1e-20, 1e-15, 1e-10, 1e-5, 1e-3});
  sweep.applyApprox(cli.approx); // --approx-fidelity adds the third axis per point

  const auto pool = cli.makePool();
  const eval::SweepResult result = eval::runSweep(sweep, pool.get());
  std::cout << (result.referenceFromCache
                    ? "algebraic reference loaded from fig3_reference.qref in "
                    : "algebraic reference computed and cached in ")
            << result.referenceCacheSeconds << " s\n";
  std::cout << "numeric sweep: " << sweep.points.size() << " runs on " << result.jobs
            << (result.jobs == 1 ? " worker in " : " workers in ") << result.numericSweepSeconds
            << " s\n";

  eval::printSummaryTable(std::cout, result.traces);
  eval::printAsciiChart(std::cout, "Fig. 3a: QMDD size (nodes)", result.traces,
                        eval::Series::Nodes, false);
  eval::printAsciiChart(std::cout, "Fig. 3b: accuracy error", result.traces, eval::Series::Error,
                        true);
  eval::printAsciiChart(std::cout, "Fig. 3c: run-time [s]", result.traces, eval::Series::Seconds,
                        false);

  std::ofstream csv("fig3_grover.csv");
  eval::writeCsv(csv, result.traces);
  std::cout << "\nseries written to fig3_grover.csv\n";
  eval::finishDriverCli(cli, std::cout, result);
  return 0;
}
