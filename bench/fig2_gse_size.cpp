/// \file fig2_gse_size.cpp
/// Regenerates Fig. 2 of the paper: the size of the numeric QMDD while
/// simulating the GSE algorithm for different tolerance values, including the
/// two extremes the paper highlights in bold — eps = 0 (largest, most
/// precise) and eps = 1e-3 (collapses to an all-zero vector: perfectly
/// compact, completely wrong).
///
///   ./fig2_gse_size [systemQubits] [precisionQubits] [--stats] [--trace-json <path>]
///                                                     (default 3 / 6)
/// Writes fig2_gse_size.csv.
#include "algorithms/gse.hpp"
#include "eval/report.hpp"
#include "eval/trace.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>

int main(int argc, char** argv) {
  using namespace qadd;

  const eval::ObsCliOptions obsOptions = eval::parseObsCli(argc, argv);
  algos::GseOptions options;
  options.systemQubits = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 3;
  options.precisionQubits = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 6;
  // Place the eigenphase a hair (3e-5) off a grid point of the ancilla
  // register: the exact post-QFT state then carries small-but-real leakage
  // tails.  Tight eps must represent them (dense diagram); eps >= the tail
  // magnitude merges them away — compact, information lost, and at 1e-3 the
  // cascade zeroes the entire vector (the paper's bold worst case).
  const algos::IsingHamiltonian hamiltonian = algos::makeMolecularInstance(options.systemQubits);
  const double energy = hamiltonian.eigenvalue(options.eigenstate);
  const double targetPhase = 5.0 / std::ldexp(1.0, static_cast<int>(options.precisionQubits)) + 3e-5;
  options.evolutionTime = -2.0 * M_PI * targetPhase / energy;
  const qc::Circuit circuit = algos::gse(options, {4, 1});
  std::cout << "== Fig. 2: GSE (Clifford+T approximated), "
            << options.systemQubits + options.precisionQubits << " qubits, " << circuit.size()
            << " gates, T-count " << circuit.tCount() << " ==\n";

  eval::TraceOptions traceOptions;
  traceOptions.sampleEvery = std::max<std::size_t>(1, circuit.size() / 60);

  std::vector<eval::SimulationTrace> traces;
  for (const double epsilon : {0.0, 1e-10, 1e-6, 1e-4, 1e-3}) {
    traces.push_back(eval::traceNumeric(circuit, epsilon, nullptr, traceOptions));
  }

  eval::printSummaryTable(std::cout, traces);
  eval::printAsciiChart(std::cout, "Fig. 2: QMDD size while simulating GSE", traces,
                        eval::Series::Nodes, false);
  for (const auto& trace : traces) {
    if (trace.collapsedToZero) {
      std::cout << "NOTE: " << trace.label
                << " collapsed to the all-zero vector (the paper's bold worst case).\n";
    }
  }

  std::ofstream csv("fig2_gse_size.csv");
  eval::writeCsv(csv, traces);
  std::cout << "\nseries written to fig2_gse_size.csv\n";
  eval::finishObsCli(obsOptions, std::cout, traces);
  return 0;
}
