/// \file fig2_gse_size.cpp
/// Regenerates Fig. 2 of the paper: the size of the numeric QMDD while
/// simulating the GSE algorithm for different tolerance values, including the
/// two extremes the paper highlights in bold — eps = 0 (largest, most
/// precise) and eps = 1e-3 (collapses to an all-zero vector: perfectly
/// compact, completely wrong).
///
///   ./fig2_gse_size [systemQubits] [precisionQubits] [--jobs N] [--stats]
///                   [--trace-json <path>] [--help]
/// Writes fig2_gse_size.csv.  The five tolerance runs fan out across --jobs
/// workers; Fig. 2 studies sizes only, so no algebraic reference is run.
#include "algorithms/gse.hpp"
#include "eval/driver_cli.hpp"
#include "eval/report.hpp"
#include "eval/sweep.hpp"

#include <cmath>
#include <fstream>
#include <iostream>

int main(int argc, char** argv) {
  using namespace qadd;

  const eval::DriverSpec spec{
      "fig2_gse_size",
      "Fig. 2: numeric QMDD size while simulating GSE across tolerance values.",
      {{"systemQubits", 3, "Ising system register width"},
       {"precisionQubits", 6, "phase-estimation ancilla width"}},
      false};
  const eval::DriverCli cli = eval::parseDriverCli(argc, argv, spec);
  algos::GseOptions options;
  options.systemQubits = static_cast<unsigned>(cli.positionals[0]);
  options.precisionQubits = static_cast<unsigned>(cli.positionals[1]);
  // Place the eigenphase a hair (3e-5) off a grid point of the ancilla
  // register: the exact post-QFT state then carries small-but-real leakage
  // tails.  Tight eps must represent them (dense diagram); eps >= the tail
  // magnitude merges them away — compact, information lost, and at 1e-3 the
  // cascade zeroes the entire vector (the paper's bold worst case).
  const algos::IsingHamiltonian hamiltonian = algos::makeMolecularInstance(options.systemQubits);
  const double energy = hamiltonian.eigenvalue(options.eigenstate);
  const double targetPhase = 5.0 / std::ldexp(1.0, static_cast<int>(options.precisionQubits)) + 3e-5;
  options.evolutionTime = -2.0 * M_PI * targetPhase / energy;
  const qc::Circuit circuit = algos::gse(options, {4, 1});
  std::cout << "== Fig. 2: GSE (Clifford+T approximated), "
            << options.systemQubits + options.precisionQubits << " qubits, " << circuit.size()
            << " gates, T-count " << circuit.tCount() << " ==\n";

  eval::SweepSpec sweep(circuit);
  sweep.options.sampleEvery = std::max<std::size_t>(1, circuit.size() / 60);
  cli.obs.applyTo(sweep.options);
  sweep.reference = eval::ReferencePolicy::None;
  sweep.addEpsilons({0.0, 1e-10, 1e-6, 1e-4, 1e-3});
  sweep.applyApprox(cli.approx);

  const auto pool = cli.makePool();
  const eval::SweepResult result = eval::runSweep(sweep, pool.get());
  std::cout << "numeric sweep: " << sweep.points.size() << " runs on " << result.jobs
            << (result.jobs == 1 ? " worker in " : " workers in ") << result.numericSweepSeconds
            << " s\n";

  eval::printSummaryTable(std::cout, result.traces);
  eval::printAsciiChart(std::cout, "Fig. 2: QMDD size while simulating GSE", result.traces,
                        eval::Series::Nodes, false);
  for (const auto& trace : result.traces) {
    if (trace.collapsedToZero) {
      std::cout << "NOTE: " << trace.label
                << " collapsed to the all-zero vector (the paper's bold worst case).\n";
    }
  }

  std::ofstream csv("fig2_gse_size.csv");
  eval::writeCsv(csv, result.traces);
  std::cout << "\nseries written to fig2_gse_size.csv\n";
  eval::finishDriverCli(cli, std::cout, result);
  return 0;
}
