/// \file micro_synth.cpp
/// Micro-benchmarks of the synthesis substrates: Solovay-Kitaev net
/// construction, approximation at various depths, and reversible
/// permutation synthesis (the Quipper-replacement layer).
#include "synth/reversible.hpp"
#include "synth/solovay_kitaev.hpp"

#include <benchmark/benchmark.h>

#include <random>

namespace {

using namespace qadd;
using synth::SolovayKitaev;
using synth::SU2;

void BM_SkNetConstruction(benchmark::State& state) {
  for (auto _ : state) {
    SolovayKitaev sk({static_cast<int>(state.range(0)), 0});
    benchmark::DoNotOptimize(sk.netSize());
  }
}
BENCHMARK(BM_SkNetConstruction)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_SkApproximate(benchmark::State& state) {
  static const SolovayKitaev sk({4, 3});
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> angle(-3.0, 3.0);
  for (auto _ : state) {
    const SU2 target = SU2::fromAxisAngle(0, 0, 1, angle(rng));
    benchmark::DoNotOptimize(sk.approximate(target, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_SkApproximate)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_SimplifySequence(benchmark::State& state) {
  static const SolovayKitaev sk({4, 2});
  const auto approx = sk.approximateRz(1.2345);
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::simplifySequence(approx.gates));
  }
}
BENCHMARK(BM_SimplifySequence);

void BM_TranspositionSynthesis(benchmark::State& state) {
  const auto width = static_cast<qc::Qubit>(state.range(0));
  std::mt19937_64 rng(7);
  for (auto _ : state) {
    qc::Circuit circuit(width);
    const std::uint64_t a = rng() % (1ULL << width);
    std::uint64_t b = rng() % (1ULL << width);
    if (a == b) {
      b = a ^ 1ULL;
    }
    synth::appendTransposition(circuit, 0, width, {a, b});
    benchmark::DoNotOptimize(circuit.size());
  }
}
BENCHMARK(BM_TranspositionSynthesis)->Arg(4)->Arg(8);

void BM_PermutationSynthesis(benchmark::State& state) {
  const auto width = static_cast<qc::Qubit>(state.range(0));
  const std::uint64_t size = 1ULL << width;
  std::mt19937_64 rng(11);
  std::vector<std::uint64_t> image(size);
  for (std::uint64_t i = 0; i < size; ++i) {
    image[i] = i;
  }
  std::shuffle(image.begin(), image.end(), rng);
  for (auto _ : state) {
    qc::Circuit circuit(width);
    synth::appendPermutation(circuit, 0, width, image);
    benchmark::DoNotOptimize(circuit.size());
  }
}
BENCHMARK(BM_PermutationSynthesis)->Arg(4)->Arg(6);

} // namespace
