/// Cross-checks the BWT walk circuit against an independent classical
/// simulation of the same discrete-time coined walk on the welded-tree
/// graph: a dense unitary on the (coin x label) space built directly from
/// the phased-Grover coin matrix and the color shift permutations.  This
/// validates the whole pipeline (graph construction, coloring, reversible
/// shift synthesis, coin gates) against first principles.
#include "algorithms/bwt.hpp"

#include "linalg/dense.hpp"
#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qadd::algos {
namespace {

using la::Complex;

/// The 4x4 phased Grover coin implemented by bwt.cpp:
/// H2 T(x)S X2 CZ X2 H(x)(Tdg H) applied to the coin lines — easiest to get
/// right by multiplying the same gate sequence densely.
la::Matrix coinMatrix() {
  const double s = 1.0 / std::sqrt(2.0);
  const la::Matrix h{2, {s, s, s, -s}};
  const la::Matrix x{2, {0, 1, 1, 0}};
  const la::Matrix id = la::Matrix::identity(2);
  const la::Matrix t{2, {1, 0, 0, std::polar(1.0, M_PI / 4)}};
  const la::Matrix tdg{2, {1, 0, 0, std::polar(1.0, -M_PI / 4)}};
  const la::Matrix sGate{2, {1, 0, 0, Complex{0, 1}}};
  la::Matrix cz = la::Matrix::identity(4);
  cz.at(3, 3) = -1.0;
  // Circuit order (first applied first):
  // h(0) h(1) t(0) s(1) x(0) x(1) cz x(0) x(1) h(0) tdg(1) h(1)
  const auto on0 = [&](const la::Matrix& g) { return g.kron(id); };
  const auto on1 = [&](const la::Matrix& g) { return id.kron(g); };
  la::Matrix u = la::Matrix::identity(4);
  for (const la::Matrix& gate :
       {on0(h), on1(h), on0(t), on1(sGate), on0(x), on1(x), cz, on0(x), on1(x), on0(h),
        on1(tdg), on1(h)}) {
    u = gate * u;
  }
  return u;
}

TEST(BwtClassical, CircuitMatchesDenseWalk) {
  const unsigned depth = 2;
  const unsigned steps = 3;
  const WeldedTree tree = makeWeldedTree(depth);
  const std::size_t labels = 1ULL << tree.labelBits;
  const std::size_t dimension = 4 * labels; // coin (x) label

  // Dense reference: psi over (coin, label); coin value c = 2*c1 + c0 with
  // the circuit's bit convention (coin qubit 0 = MSB of the coin value per
  // bwt.cpp's control polarity: {0, color&2}, {1, color&1}).
  la::Vector psi(dimension);
  {
    // entrance label, uniform coin (H on both coin qubits of |00>).
    for (std::size_t c = 0; c < 4; ++c) {
      psi[c * labels + tree.entrance] = 0.5;
    }
  }
  const la::Matrix coin = coinMatrix();
  for (unsigned step = 0; step < steps; ++step) {
    // Coin on the coin space.
    la::Vector next(dimension);
    for (std::size_t c = 0; c < 4; ++c) {
      for (std::size_t cc = 0; cc < 4; ++cc) {
        if (coin.at(c, cc) == Complex{}) {
          continue;
        }
        for (std::size_t l = 0; l < labels; ++l) {
          next[c * labels + l] += coin.at(c, cc) * psi[cc * labels + l];
        }
      }
    }
    psi = next;
    // Shift: label -> neighbor along the coin's color.
    la::Vector shifted(dimension);
    for (std::size_t c = 0; c < 4; ++c) {
      for (std::size_t l = 0; l < labels; ++l) {
        shifted[c * labels + tree.neighbor(static_cast<unsigned>(c), l)] +=
            psi[c * labels + l];
      }
    }
    psi = shifted;
  }

  // Circuit simulation.
  qc::Simulator<dd::AlgebraicSystem> simulator(bwt({depth, steps}));
  simulator.run();
  const auto amplitudes = simulator.package().amplitudes(simulator.state());
  const unsigned totalQubits = 2 + tree.labelBits;

  // Compare: circuit index packs qubit 0 (coin MSB) first, label bits b at
  // qubit 2+b (bit b of the label value).
  for (std::size_t index = 0; index < amplitudes.size(); ++index) {
    const std::size_t coinValue = index >> tree.labelBits;
    std::uint64_t label = 0;
    for (unsigned bit = 0; bit < tree.labelBits; ++bit) {
      const unsigned qubit = 2 + bit;
      if ((index >> (totalQubits - 1 - qubit)) & 1ULL) {
        label |= 1ULL << bit;
      }
    }
    EXPECT_NEAR(std::abs(amplitudes[index] - psi[coinValue * labels + label]), 0.0, 1e-9)
        << "coin " << coinValue << " label " << label;
  }
}

} // namespace
} // namespace qadd::algos
