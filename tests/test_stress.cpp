/// Stress and failure-injection tests: garbage-collection churn, canonicity
/// across collections, cache-clear correctness, deep circuits, and
/// wide-dynamic-range arithmetic — the conditions under which subtle DD
/// package bugs (dangling unique-table entries, stale caches, refcount
/// drift) typically surface.
#include "algorithms/common.hpp"
#include "algorithms/grover.hpp"
#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace qadd {
namespace {

using dd::AlgebraicSystem;
using dd::NumericSystem;

TEST(Stress, CanonicitysSurvivesGarbageCollection) {
  dd::Package<AlgebraicSystem> p(4);
  const auto gate = [&](qc::GateKind kind, dd::Qubit target) {
    const auto m = qc::algebraicMatrix(kind);
    const typename dd::Package<AlgebraicSystem>::GateMatrix weights{
        p.system().intern(m[0]), p.system().intern(m[1]), p.system().intern(m[2]),
        p.system().intern(m[3])};
    return p.makeGate(weights, target);
  };
  // Build a state, protect it, GC, rebuild the same state: the unique table
  // must produce the identical edge.
  auto h0 = gate(qc::GateKind::H, 0);
  auto state = p.multiply(h0, p.makeZeroState());
  p.incRef(state);
  p.garbageCollect();
  const auto rebuilt = p.multiply(gate(qc::GateKind::H, 0), p.makeZeroState());
  EXPECT_EQ(state, rebuilt) << "canonical node must be found again after GC";
  // Drop the reference; now everything may go.
  p.decRef(state);
  p.garbageCollect();
  EXPECT_EQ(p.allocatedNodes(), 0U);
}

TEST(Stress, RepeatedGcDuringLongSimulationIsSound) {
  // Aggressive GC thresholds on a 10-qubit Grover run: final amplitudes must
  // match a run without GC pressure.
  const qc::Circuit circuit = algos::grover({6, 21, 3});
  qc::Simulator<AlgebraicSystem>::Options aggressive;
  aggressive.gcNodeThreshold = 16;
  qc::Simulator<AlgebraicSystem> stressed(circuit, {}, aggressive);
  qc::Simulator<AlgebraicSystem> relaxed(circuit);
  stressed.run();
  relaxed.run();
  EXPECT_EQ(stressed.state().w, stressed.state().w);
  const auto a = stressed.package().amplitudes(stressed.state());
  const auto b = relaxed.package().amplitudes(relaxed.state());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-12);
  }
}

TEST(Stress, CacheClearMidOperationSequence) {
  dd::Package<NumericSystem> p(5, {1e-12, NumericSystem::Normalization::LeftmostNonzero});
  const auto gate = [&](qc::GateKind kind, dd::Qubit target) {
    const auto m = qc::complexMatrix(kind);
    const typename dd::Package<NumericSystem>::GateMatrix weights{
        p.system().fromComplex(m[0]), p.system().fromComplex(m[1]),
        p.system().fromComplex(m[2]), p.system().fromComplex(m[3])};
    return p.makeGate(weights, target);
  };
  auto state = p.makeZeroState();
  std::mt19937_64 rng(5);
  const qc::GateKind kinds[] = {qc::GateKind::H, qc::GateKind::T, qc::GateKind::X,
                                qc::GateKind::V};
  for (int i = 0; i < 60; ++i) {
    state = p.multiply(gate(kinds[rng() % 4], static_cast<dd::Qubit>(rng() % 5)), state);
    if (i % 7 == 0) {
      p.clearCaches(); // must never change results, only speed
    }
  }
  const auto norm = p.system().toComplex(p.innerProduct(state, state));
  EXPECT_NEAR(norm.real(), 1.0, 1e-9);
}

TEST(Stress, DeepCliffordTCircuitBothSystemsAgree) {
  std::mt19937_64 rng(11);
  qc::Circuit circuit(6, "deep");
  const qc::GateKind kinds[] = {qc::GateKind::H,   qc::GateKind::T, qc::GateKind::Tdg,
                                qc::GateKind::S,   qc::GateKind::V, qc::GateKind::X,
                                qc::GateKind::Z};
  for (int i = 0; i < 1200; ++i) {
    const auto target = static_cast<qc::Qubit>(rng() % 6);
    if (rng() % 4 == 0) {
      auto control = static_cast<qc::Qubit>(rng() % 6);
      if (control == target) {
        control = (control + 1) % 6;
      }
      circuit.cx(control, target);
    } else {
      circuit.gate(kinds[rng() % std::size(kinds)], target);
    }
  }
  qc::Simulator<AlgebraicSystem> exact(circuit);
  qc::Simulator<NumericSystem> numeric(circuit,
                                       {1e-13, NumericSystem::Normalization::LeftmostNonzero});
  exact.run();
  numeric.run();
  const auto a = exact.package().amplitudes(exact.state());
  const auto b = numeric.package().amplitudes(numeric.state());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  EXPECT_LT(worst, 1e-8) << "1200 gates must stay numerically tame at eps = 1e-13";
  // The exact norm stays exactly 1 even after 1200 gates.
  EXPECT_TRUE(exact.package().system().isOne(
      exact.package().innerProduct(exact.state(), exact.state())));
}

TEST(Stress, ExtendedPrecisionBeatsDoubleOnTHeavyCircuit) {
  // An (H T)^k torture word: extended precision must track the exact result
  // at least as well as double.
  qc::Circuit circuit(3, "ht");
  std::mt19937_64 rng(13);
  for (int i = 0; i < 400; ++i) {
    const auto q = static_cast<qc::Qubit>(rng() % 3);
    circuit.h(q).t(q);
    if (i % 5 == 0) {
      circuit.cx(q, (q + 1) % 3);
    }
  }
  qc::Simulator<AlgebraicSystem> exact(circuit);
  qc::Simulator<NumericSystem> dbl(circuit,
                                   {0.0, NumericSystem::Normalization::LeftmostNonzero});
  qc::Simulator<dd::ExtendedNumericSystem> ext(
      circuit, {0.0, dd::ExtendedNumericSystem::Normalization::LeftmostNonzero});
  exact.run();
  dbl.run();
  ext.run();
  const auto reference = exact.package().amplitudes(exact.state());
  const auto viaDouble = dbl.package().amplitudes(dbl.state());
  const auto viaExtended = ext.package().amplitudes(ext.state());
  double errDouble = 0.0;
  double errExtended = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    errDouble = std::max(errDouble, std::abs(viaDouble[i] - reference[i]));
    errExtended = std::max(errExtended, std::abs(viaExtended[i] - reference[i]));
  }
  EXPECT_GT(errDouble, 0.0) << "floating point cannot be exact (paper, Sec. V-A)";
  EXPECT_LE(errExtended, errDouble * 1.5)
      << "the wider mantissa must not be worse (usually it is strictly better)";
}

TEST(Stress, NumericStateRemainsNormalizedWithinDrift) {
  // eps = 1e-10 over 2000 gates: norm drift stays ~linear in gate count.
  const qc::Circuit circuit = algos::grover({8, 200, 0});
  qc::Simulator<NumericSystem> simulator(circuit,
                                         {1e-10, NumericSystem::Normalization::LeftmostNonzero});
  simulator.run();
  const auto norm = simulator.package().innerProduct(simulator.state(), simulator.state());
  EXPECT_NEAR(simulator.package().system().toComplex(norm).real(), 1.0, 1e-5);
}

} // namespace
} // namespace qadd
