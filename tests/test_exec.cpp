/// \file test_exec.cpp
/// The parallel ε-sweep executor: exec::ThreadPool lifecycle, exception
/// propagation, parallelFor semantics (ordering, deadlock guard), the
/// obs::PackageStats merge used for cross-worker aggregation, the
/// thread-safe span tracer, and the determinism contract of eval::runSweep —
/// a parallel sweep must produce byte-identical value columns and final
/// state snapshots to the serial path.
#include "algorithms/grover.hpp"
#include "eval/report.hpp"
#include "eval/sweep.hpp"
#include "exec/thread_pool.hpp"
#include "obs/deterministic.hpp"
#include "obs/stats.hpp"
#include "obs/tracer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <numeric>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace qadd;

TEST(ThreadPool, StartsStopsAndRunsTasks) {
  exec::ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4U);
  auto future = pool.submit([]() { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
} // destructor joins: reaching the next test is the stop assertion

TEST(ThreadPool, ZeroWorkerRequestClampsToOne) {
  exec::ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 1U);
  EXPECT_EQ(pool.submit([]() { return 1; }).get(), 1);
}

TEST(ThreadPool, DrainsQueuedTasksOnDestruction) {
  std::atomic<int> executed{0};
  {
    exec::ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      (void)pool.submit([&executed]() { ++executed; });
    }
  } // ~ThreadPool waits for the queue, not just for idle workers
  EXPECT_EQ(executed.load(), 64);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  exec::ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(
      {
        try {
          (void)future.get();
        } catch (const std::runtime_error& error) {
          EXPECT_STREQ(error.what(), "task failed");
          throw;
        }
      },
      std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  exec::ThreadPool pool(4);
  constexpr std::size_t kN = 200;
  std::vector<int> hits(kN, 0);
  exec::parallelFor(&pool, kN, [&hits](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), static_cast<int>(kN));
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForSerialFallbacksMatch) {
  // nullptr pool == the --jobs 1 path: plain loop on the calling thread.
  std::vector<std::size_t> order;
  exec::parallelFor(nullptr, 5, [&order](std::size_t i) {
    EXPECT_FALSE(exec::onWorkerThread());
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ParallelForRethrowsLowestFailingIndex) {
  exec::ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    exec::parallelFor(&pool, 16, [&completed](std::size_t i) {
      if (i == 3 || i == 11) {
        throw std::runtime_error("failed at " + std::to_string(i));
      }
      ++completed;
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "failed at 3"); // lowest index, not first finisher
  }
  EXPECT_EQ(completed.load(), 14); // every non-throwing index still ran
}

TEST(ThreadPool, NestedParallelForRunsInlineInsteadOfDeadlocking) {
  // A fork-join issued from inside a worker must not wait on tasks that can
  // never be scheduled (every worker might be blocked in the same wait).
  // The guard runs nested loops inline on the worker itself.
  exec::ThreadPool pool(2);
  std::atomic<int> innerRuns{0};
  exec::parallelFor(&pool, 4, [&pool, &innerRuns](std::size_t) {
    EXPECT_TRUE(exec::onWorkerThread());
    exec::parallelFor(&pool, 8, [&innerRuns](std::size_t) { ++innerRuns; });
  });
  EXPECT_EQ(innerRuns.load(), 32);
}

TEST(ThreadPool, DefaultJobsHonoursEnvironment) {
  const char* saved = std::getenv("QADD_JOBS");
  const std::string savedValue = saved == nullptr ? "" : saved;
  ::setenv("QADD_JOBS", "3", 1);
  EXPECT_EQ(exec::defaultJobs(), 3U);
  ::setenv("QADD_JOBS", "not-a-number", 1);
  EXPECT_GE(exec::defaultJobs(), 1U); // malformed -> hardware fallback
  if (saved == nullptr) {
    ::unsetenv("QADD_JOBS");
  } else {
    ::setenv("QADD_JOBS", savedValue.c_str(), 1);
  }
}

// -- forkJoin -------------------------------------------------------------------

TEST(ForkJoin, SerialFallbackRunsBothBranchesInOrder) {
  std::vector<int> trace;
  exec::forkJoin(nullptr, [&]() { trace.push_back(1); }, [&]() { trace.push_back(2); });
  EXPECT_EQ(trace, (std::vector<int>{1, 2})) << "nullptr pool must be the plain a(); b();";
}

TEST(ForkJoin, RunsBothBranchesOnPool) {
  exec::ThreadPool pool(2);
  std::atomic<int> ran{0};
  exec::forkJoin(&pool, [&]() { ran += 1; }, [&]() { ran += 2; });
  EXPECT_EQ(ran.load(), 3);
}

TEST(ForkJoin, StealsQueuedTaskBackWhenWorkersAreBusy) {
  exec::ThreadPool pool(1);
  // Occupy the only worker so the forked branch can never be picked up.
  std::promise<void> release;
  auto gate = release.get_future().share();
  auto busy = pool.submit([gate]() { gate.wait(); });
  const auto caller = std::this_thread::get_id();
  std::thread::id ranOn;
  exec::forkJoin(&pool, [&]() { ranOn = std::this_thread::get_id(); }, []() {});
  EXPECT_EQ(ranOn, caller) << "a queued fork must be stolen back, not waited on";
  release.set_value();
  busy.get();
}

TEST(ForkJoin, NestedForksJoinWithoutDeadlock) {
  exec::ThreadPool pool(2);
  // Binary recursion four levels deep: 2^4 leaves, every inner node a
  // forkJoin — some branches run on workers, some are stolen back.
  std::atomic<int> leaves{0};
  auto recurse = [&](auto&& self, int depth) -> void {
    if (depth == 0) {
      ++leaves;
      return;
    }
    exec::forkJoin(&pool, [&]() { self(self, depth - 1); }, [&]() { self(self, depth - 1); });
  };
  recurse(recurse, 4);
  EXPECT_EQ(leaves.load(), 16);
}

TEST(ForkJoin, PropagatesExceptionFromForkedBranch) {
  exec::ThreadPool pool(2);
  EXPECT_THROW(exec::forkJoin(
                   &pool, []() { throw std::runtime_error("a failed"); }, []() {}),
               std::runtime_error);
}

TEST(ForkJoin, PropagatesExceptionFromInlineBranch) {
  exec::ThreadPool pool(2);
  EXPECT_THROW(exec::forkJoin(
                   &pool, []() {}, []() { throw std::runtime_error("b failed"); }),
               std::runtime_error);
}

TEST(ForkJoin, ForkedExceptionWinsWhenBothThrow) {
  exec::ThreadPool pool(2);
  try {
    exec::forkJoin(
        &pool, []() { throw std::runtime_error("a failed"); },
        []() { throw std::logic_error("b failed"); });
    FAIL() << "forkJoin swallowed both exceptions";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "a failed") << "a's exception is the deterministic winner";
  }
}

// -- PackageStats aggregation ---------------------------------------------------

TEST(StatsMerge, CountersSumGaugesMax) {
  obs::PackageStats a;
  a.mv.hits.inc(10);
  a.mv.misses.inc(5);
  a.vUnique.lookups.inc(100);
  a.vUnique.entries = 40;
  a.liveNodes = 7;
  a.peakNodes = 70;
  a.gc.runs.inc(2);
  a.gc.seconds = 0.5;
  a.weights.entries = 12;
  a.weights.nearMissUnifications = 3;
  a.weights.bitWidthHistogram = {0, 2, 1};

  obs::PackageStats b;
  b.mv.hits.inc(1);
  b.mv.misses.inc(2);
  b.vUnique.lookups.inc(50);
  b.vUnique.entries = 90;
  b.liveNodes = 30;
  b.peakNodes = 31;
  b.gc.runs.inc(1);
  b.gc.seconds = 0.25;
  b.weights.entries = 9;
  b.weights.nearMissUnifications = 4;
  b.weights.bitWidthHistogram = {1, 1, 1, 1};

  a += b;
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(a.mv.hits.value(), 11U);
    EXPECT_EQ(a.mv.misses.value(), 7U);
    EXPECT_EQ(a.vUnique.lookups.value(), 150U);
    EXPECT_EQ(a.gc.runs.value(), 3U);
  }
  EXPECT_EQ(a.vUnique.entries, 90U);   // gauge: max
  EXPECT_EQ(a.liveNodes, 30U);         // gauge: max
  EXPECT_EQ(a.peakNodes, 70U);         // gauge: max
  EXPECT_DOUBLE_EQ(a.gc.seconds, 0.75);
  EXPECT_EQ(a.weights.entries, 12U);   // gauge: max
  EXPECT_EQ(a.weights.nearMissUnifications, 7U);
  EXPECT_EQ(a.weights.bitWidthHistogram, (std::vector<std::uint64_t>{1, 3, 2, 1}));
  EXPECT_EQ(a.threads, 1U);
}

TEST(StatsMerge, SmallPathSnapshotsTakeMaxNotSum) {
  // The small-path tallies are snapshots of one process-wide counter; a sum
  // across per-worker snapshots would double-count it.
  obs::PackageStats a;
  obs::PackageStats b;
  a.weights.smallPathHits = 100;
  b.weights.smallPathHits = 250;
  a += b;
  EXPECT_EQ(a.weights.smallPathHits, 250U);
}

TEST(StatsMerge, MismatchedHistogramSizesResizeEitherDirection) {
  // Shorter += longer grows the destination; longer += shorter leaves the
  // tail untouched.  Both directions must add element-wise, never truncate.
  obs::PackageStats shorter;
  shorter.weights.bitWidthHistogram = {5, 5};
  obs::PackageStats longer;
  longer.weights.bitWidthHistogram = {1, 1, 1, 1, 1};
  shorter += longer;
  EXPECT_EQ(shorter.weights.bitWidthHistogram, (std::vector<std::uint64_t>{6, 6, 1, 1, 1}));

  obs::PackageStats wide;
  wide.weights.bucketOccupancy = {2, 2, 2, 2};
  obs::PackageStats narrow;
  narrow.weights.bucketOccupancy = {3};
  wide += narrow;
  EXPECT_EQ(wide.weights.bucketOccupancy, (std::vector<std::uint64_t>{5, 2, 2, 2}));

  // Empty rhs histogram: nothing changes.
  obs::PackageStats untouched;
  untouched.weights.bitWidthHistogram = {9};
  untouched += obs::PackageStats{};
  EXPECT_EQ(untouched.weights.bitWidthHistogram, (std::vector<std::uint64_t>{9}));
}

TEST(StatsMerge, GaugeMaxAgainstEmptyRhsKeepsValues) {
  // Merging a default-constructed (all-zero) snapshot must be an identity on
  // the gauges — max semantics, not overwrite-with-last.
  obs::PackageStats stats;
  stats.liveNodes = 12;
  stats.peakNodes = 34;
  stats.arenaBytes = 4096;
  stats.vUnique.entries = 5;
  stats.vUnique.buckets = 64;
  stats.weights.entries = 8;
  stats.weights.smallPathHits = 77;
  stats.threads = 3;
  stats += obs::PackageStats{};
  EXPECT_EQ(stats.liveNodes, 12U);
  EXPECT_EQ(stats.peakNodes, 34U);
  EXPECT_EQ(stats.arenaBytes, 4096U);
  EXPECT_EQ(stats.vUnique.entries, 5U);
  EXPECT_EQ(stats.vUnique.buckets, 64U);
  EXPECT_EQ(stats.weights.entries, 8U);
  EXPECT_EQ(stats.weights.smallPathHits, 77U);
  EXPECT_EQ(stats.threads, 3U);
}

TEST(StatsMerge, SystemNamePromotesToMixed) {
  // "" adopts the other side's name; equal names stay; different names
  // promote to "mixed" (and "mixed" is then sticky).
  obs::PackageStats unset;
  obs::PackageStats numeric;
  numeric.weights.system = "numeric(eps=1e-12)";
  unset += numeric;
  EXPECT_EQ(unset.weights.system, "numeric(eps=1e-12)");

  obs::PackageStats same = unset;
  same += numeric;
  EXPECT_EQ(same.weights.system, "numeric(eps=1e-12)");

  obs::PackageStats algebraic;
  algebraic.weights.system = "algebraic";
  unset += algebraic;
  EXPECT_EQ(unset.weights.system, "mixed");
  unset += numeric;
  EXPECT_EQ(unset.weights.system, "mixed");

  // Merging an empty-name rhs never erases an established name.
  obs::PackageStats blank;
  numeric += blank;
  EXPECT_EQ(numeric.weights.system, "numeric(eps=1e-12)");
}

TEST(StatsMerge, EmittersRenderThreadsRow) {
  obs::PackageStats stats;
  stats.threads = 4;
  std::ostringstream table;
  eval::printStatsTable(table, stats);
  EXPECT_NE(table.str().find("threads     4"), std::string::npos);
  std::ostringstream json;
  eval::writeStatsJson(json, stats);
  EXPECT_NE(json.str().find("\"threads\":4"), std::string::npos);
  std::ostringstream csv;
  eval::writeStatsCsv(csv, stats);
  EXPECT_NE(csv.str().find("threads,4"), std::string::npos);
}

// -- tracer thread safety -------------------------------------------------------

TEST(TracerThreads, ConcurrentSpansRecordDistinctTids) {
  obs::Tracer tracer;
  tracer.setEnabled(true);
  if (!tracer.enabled()) {
    GTEST_SKIP() << "QADD_OBS=0";
  }
  constexpr int kThreads = 4;
  constexpr int kSpansEach = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer]() {
      for (int i = 0; i < kSpansEach; ++i) {
        const auto outer = tracer.span("outer", "test");
        const auto inner = tracer.span("inner", "test");
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const auto events = tracer.eventsSnapshot();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads * kSpansEach * 2));
  std::set<std::uint32_t> tids;
  for (const auto& event : events) {
    EXPECT_GT(event.tid, 0U);
    tids.insert(event.tid);
  }
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  std::ostringstream os;
  tracer.writeJson(os);
  EXPECT_NE(os.str().find("\"tid\":"), std::string::npos);
}

// -- runSweep determinism -------------------------------------------------------

namespace {

/// writeCsv output in obs deterministic-output mode: the emitter itself
/// zeroes the wall-clock (`seconds`) and address-sensitive (`cachehitrate`)
/// columns — the same switch --obs-deterministic / QADD_OBS_DETERMINISTIC
/// flips — so the remaining bytes must be identical between serial and
/// parallel sweeps.
std::string deterministicCsv(const std::vector<eval::SimulationTrace>& traces) {
  obs::setDeterministic(true);
  std::ostringstream os;
  eval::writeCsv(os, traces);
  obs::setDeterministic(false);
  return os.str();
}

eval::SweepSpec groverSweep() {
  eval::SweepSpec sweep(algos::grover({5, (1ULL << 5) - 2, 0}));
  sweep.options.sampleEvery = 7;
  sweep.options.captureFinalState = true;
  sweep.reference = eval::ReferencePolicy::Inline;
  sweep.addEpsilons({0.0, 1e-10, 1e-5, 1e-3});
  return sweep;
}

} // namespace

TEST(RunSweep, TracesComeBackInSpecOrder) {
  const eval::SweepSpec sweep = groverSweep();
  exec::ThreadPool pool(4);
  const eval::SweepResult result = eval::runSweep(sweep, &pool);
  ASSERT_EQ(result.traces.size(), 1U + sweep.points.size());
  EXPECT_NE(result.traces[0].label.find("algebraic"), std::string::npos);
  EXPECT_EQ(result.traces[1].label, "numeric eps=0");
  EXPECT_EQ(result.traces[2].label, "numeric eps=1e-10");
  EXPECT_EQ(result.traces[3].label, "numeric eps=1e-05");
  EXPECT_EQ(result.traces[4].label, "numeric eps=0.001");
  EXPECT_EQ(result.jobs, 4U);
  EXPECT_EQ(result.aggregated.threads, 4U);
}

TEST(RunSweep, ParallelMatchesSerialByteForByte) {
  const eval::SweepSpec sweep = groverSweep();
  const eval::SweepResult serial = eval::runSweep(sweep, nullptr);
  exec::ThreadPool pool(4);
  const eval::SweepResult parallel = eval::runSweep(sweep, &pool);

  EXPECT_EQ(serial.jobs, 1U);
  EXPECT_EQ(parallel.jobs, 4U);
  ASSERT_EQ(serial.traces.size(), parallel.traces.size());
  EXPECT_EQ(deterministicCsv(serial.traces), deterministicCsv(parallel.traces));
  for (std::size_t i = 0; i < serial.traces.size(); ++i) {
    EXPECT_EQ(serial.traces[i].finalStateSnapshot, parallel.traces[i].finalStateSnapshot)
        << "final state of " << serial.traces[i].label;
    EXPECT_EQ(serial.traces[i].finalNodes, parallel.traces[i].finalNodes);
    EXPECT_EQ(serial.traces[i].collapsedToZero, parallel.traces[i].collapsedToZero);
  }
}

TEST(RunSweep, ReferencePolicyNoneSkipsAlgebraicAndErrors) {
  eval::SweepSpec sweep = groverSweep();
  sweep.reference = eval::ReferencePolicy::None;
  const eval::SweepResult result = eval::runSweep(sweep, nullptr);
  ASSERT_EQ(result.traces.size(), sweep.points.size());
  EXPECT_TRUE(result.trajectory.samples.empty());
  for (const auto& trace : result.traces) {
    for (const auto& point : trace.points) {
      EXPECT_TRUE(std::isnan(point.error));
    }
  }
}

TEST(RunSweep, ExtendedPrecisionPointUsesLongDoubleSystem) {
  eval::SweepSpec sweep = groverSweep();
  sweep.points.clear();
  sweep.points.push_back({0.0, true});
  const eval::SweepResult result = eval::runSweep(sweep, nullptr);
  ASSERT_EQ(result.traces.size(), 2U);
  EXPECT_EQ(result.traces[1].label, "numeric-ext eps=0");
  if (sizeof(long double) > sizeof(double)) {
    // The wider mantissa must not be worse than double at eps = 0.
    EXPECT_GE(result.traces[1].finalError, 0.0);
  }
}

TEST(RunSweep, CachedPolicyRoundTripsThroughQref) {
  eval::SweepSpec sweep = groverSweep();
  sweep.reference = eval::ReferencePolicy::Cached;
  sweep.referenceCachePath = "test_exec_reference.qref";
  sweep.refreshReference = true;
  const eval::SweepResult first = eval::runSweep(sweep, nullptr);
  EXPECT_FALSE(first.referenceFromCache);
  sweep.refreshReference = false;
  exec::ThreadPool pool(2);
  const eval::SweepResult second = eval::runSweep(sweep, &pool);
  EXPECT_TRUE(second.referenceFromCache);
  // The algebraic label gains a " [cached]" suffix on a hit; the numeric
  // traces must match byte for byte.
  const std::vector<eval::SimulationTrace> firstNumeric(first.traces.begin() + 1,
                                                        first.traces.end());
  const std::vector<eval::SimulationTrace> secondNumeric(second.traces.begin() + 1,
                                                         second.traces.end());
  EXPECT_EQ(deterministicCsv(firstNumeric), deterministicCsv(secondNumeric));
  std::remove("test_exec_reference.qref");
}

} // namespace
