#include "core/computed_table.hpp"
#include "core/dd_node.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace qadd::dd {
namespace {

/// Key whose hash is the key itself — lets tests place entries in chosen
/// slots (and force index collisions deliberately).
struct RawKey {
  std::uint64_t value;
  friend bool operator==(const RawKey&, const RawKey&) = default;
  [[nodiscard]] std::uint64_t hash() const { return value; }
};

using SmallTable = ComputedTable<RawKey, std::uint64_t, 64>;

TEST(ComputedTable, MissesBeforeAnyInsert) {
  SmallTable table;
  std::uint64_t out = 0;
  EXPECT_FALSE(table.lookup(RawKey{1}, out));
}

TEST(ComputedTable, InsertThenLookupRoundTrips) {
  SmallTable table;
  EXPECT_FALSE(table.insert(RawKey{7}, 70));
  std::uint64_t out = 0;
  ASSERT_TRUE(table.lookup(RawKey{7}, out));
  EXPECT_EQ(out, 70U);
  EXPECT_FALSE(table.lookup(RawKey{8}, out));
}

TEST(ComputedTable, IndexCollisionEvictsPriorEntry) {
  SmallTable table;
  // Keys 3 and 3 + 64 map to the same direct-mapped slot.
  EXPECT_FALSE(table.insert(RawKey{3}, 30));
  EXPECT_EQ(SmallTable::slotOf(RawKey{3}), SmallTable::slotOf(RawKey{3 + 64}));
  EXPECT_TRUE(table.insert(RawKey{3 + 64}, 670)) << "displacing a live entry is an eviction";
  std::uint64_t out = 0;
  EXPECT_FALSE(table.lookup(RawKey{3}, out)) << "lossy mode drops the displaced entry";
  ASSERT_TRUE(table.lookup(RawKey{3 + 64}, out));
  EXPECT_EQ(out, 670U);
}

TEST(ComputedTable, OverwritingSameKeyIsNotAnEviction) {
  SmallTable table;
  EXPECT_FALSE(table.insert(RawKey{5}, 1));
  EXPECT_FALSE(table.insert(RawKey{5}, 2)) << "same key refresh is not an eviction";
  std::uint64_t out = 0;
  ASSERT_TRUE(table.lookup(RawKey{5}, out));
  EXPECT_EQ(out, 2U);
}

TEST(ComputedTable, ClearInvalidatesInConstantTimeViaEpoch) {
  SmallTable table;
  for (std::uint64_t k = 0; k < 64; ++k) {
    table.insert(RawKey{k}, k * 10);
  }
  const std::uint32_t epochBefore = table.epoch();
  table.clear();
  EXPECT_EQ(table.epoch(), epochBefore + 1) << "clear is an epoch bump, not a wipe";
  std::uint64_t out = 0;
  for (std::uint64_t k = 0; k < 64; ++k) {
    EXPECT_FALSE(table.lookup(RawKey{k}, out)) << "stale epoch entry served after clear";
  }
  // The table is fully usable after the bump.
  table.insert(RawKey{9}, 99);
  ASSERT_TRUE(table.lookup(RawKey{9}, out));
  EXPECT_EQ(out, 99U);
}

TEST(ComputedTable, StaleEntryIsOverwrittenWithoutEvictionAfterClear) {
  SmallTable table;
  table.insert(RawKey{3}, 30);
  table.clear();
  // The slot still physically holds the old entry, but it is dead — writing
  // over it must not count as evicting live work.
  EXPECT_FALSE(table.insert(RawKey{3 + 64}, 670));
}

TEST(ComputedTable, LosslessModeSpillsDisplacedEntries) {
  SmallTable table;
  table.setLossless(true);
  table.insert(RawKey{3}, 30);
  EXPECT_TRUE(table.insert(RawKey{3 + 64}, 670)) << "displacement still counts as spilled";
  // Both the displaced and the displacing entry remain retrievable.
  std::uint64_t out = 0;
  ASSERT_TRUE(table.lookup(RawKey{3}, out));
  EXPECT_EQ(out, 30U);
  ASSERT_TRUE(table.lookup(RawKey{3 + 64}, out));
  EXPECT_EQ(out, 670U);
}

TEST(ComputedTable, ClearAlsoDropsSpilledEntries) {
  SmallTable table;
  table.setLossless(true);
  table.insert(RawKey{3}, 30);
  table.insert(RawKey{3 + 64}, 670);
  table.clear();
  std::uint64_t out = 0;
  EXPECT_FALSE(table.lookup(RawKey{3}, out));
  EXPECT_FALSE(table.lookup(RawKey{3 + 64}, out));
}

TEST(ComputedTable, WorksWithWeightPairKeys) {
  // The production instantiation: weight-op memoization over interned
  // handles.
  ComputedTable<WeightPairKey, std::uint32_t, 1024> table;
  table.insert(WeightPairKey{2, 3}, 6);
  std::uint32_t out = 0;
  ASSERT_TRUE(table.lookup(WeightPairKey{2, 3}, out));
  EXPECT_EQ(out, 6U);
  EXPECT_FALSE(table.lookup(WeightPairKey{3, 2}, out))
      << "the table itself is not commutative; callers order the operands";
}

TEST(ComputedTable, ConcurrentModeRoundTripsThroughSeqlock) {
  SmallTable table;
  table.setConcurrent(true);
  EXPECT_TRUE(table.concurrent());
  std::uint64_t out = 0;
  EXPECT_FALSE(table.lookup(RawKey{1}, out));
  EXPECT_FALSE(table.insert(RawKey{7}, 70));
  ASSERT_TRUE(table.lookup(RawKey{7}, out));
  EXPECT_EQ(out, 70U);
  // Same-slot displacement still works (and still reports the eviction).
  EXPECT_TRUE(table.insert(RawKey{7 + 64}, 99));
  EXPECT_FALSE(table.lookup(RawKey{7}, out));
  ASSERT_TRUE(table.lookup(RawKey{7 + 64}, out));
  EXPECT_EQ(out, 99U);
  // Epoch clears behave identically in concurrent mode.
  table.clear();
  EXPECT_FALSE(table.lookup(RawKey{7 + 64}, out));
}

TEST(ComputedTable, SetConcurrentDropsExistingEntries) {
  SmallTable table;
  table.insert(RawKey{3}, 30);
  table.setConcurrent(true);
  // Entries written before the switch carry no sequence word, so the switch
  // clears the table rather than serve unpublished slots.
  std::uint64_t out = 0;
  EXPECT_FALSE(table.lookup(RawKey{3}, out));
  // Switching back to serial keeps working.
  table.setConcurrent(false);
  table.insert(RawKey{4}, 40);
  ASSERT_TRUE(table.lookup(RawKey{4}, out));
  EXPECT_EQ(out, 40U);
}

} // namespace
} // namespace qadd::dd
