#include "core/computed_table.hpp"
#include "core/dd_node.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace qadd::dd {
namespace {

/// Key whose hash is the key itself — lets tests place entries in chosen
/// slots (and force index collisions deliberately).
struct RawKey {
  std::uint64_t value;
  friend bool operator==(const RawKey&, const RawKey&) = default;
  [[nodiscard]] std::uint64_t hash() const { return value; }
};

using SmallTable = ComputedTable<RawKey, std::uint64_t, 64>;

TEST(ComputedTable, MissesBeforeAnyInsert) {
  SmallTable table;
  EXPECT_EQ(table.lookup(RawKey{1}), nullptr);
}

TEST(ComputedTable, InsertThenLookupRoundTrips) {
  SmallTable table;
  EXPECT_FALSE(table.insert(RawKey{7}, 70));
  const std::uint64_t* hit = table.lookup(RawKey{7});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 70U);
  EXPECT_EQ(table.lookup(RawKey{8}), nullptr);
}

TEST(ComputedTable, IndexCollisionEvictsPriorEntry) {
  SmallTable table;
  // Keys 3 and 3 + 64 map to the same direct-mapped slot.
  EXPECT_FALSE(table.insert(RawKey{3}, 30));
  EXPECT_EQ(SmallTable::slotOf(RawKey{3}), SmallTable::slotOf(RawKey{3 + 64}));
  EXPECT_TRUE(table.insert(RawKey{3 + 64}, 670)) << "displacing a live entry is an eviction";
  EXPECT_EQ(table.lookup(RawKey{3}), nullptr) << "lossy mode drops the displaced entry";
  const std::uint64_t* hit = table.lookup(RawKey{3 + 64});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 670U);
}

TEST(ComputedTable, OverwritingSameKeyIsNotAnEviction) {
  SmallTable table;
  EXPECT_FALSE(table.insert(RawKey{5}, 1));
  EXPECT_FALSE(table.insert(RawKey{5}, 2)) << "same key refresh is not an eviction";
  const std::uint64_t* hit = table.lookup(RawKey{5});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 2U);
}

TEST(ComputedTable, ClearInvalidatesInConstantTimeViaEpoch) {
  SmallTable table;
  for (std::uint64_t k = 0; k < 64; ++k) {
    table.insert(RawKey{k}, k * 10);
  }
  const std::uint32_t epochBefore = table.epoch();
  table.clear();
  EXPECT_EQ(table.epoch(), epochBefore + 1) << "clear is an epoch bump, not a wipe";
  for (std::uint64_t k = 0; k < 64; ++k) {
    EXPECT_EQ(table.lookup(RawKey{k}), nullptr) << "stale epoch entry served after clear";
  }
  // The table is fully usable after the bump.
  table.insert(RawKey{9}, 99);
  const std::uint64_t* hit = table.lookup(RawKey{9});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 99U);
}

TEST(ComputedTable, StaleEntryIsOverwrittenWithoutEvictionAfterClear) {
  SmallTable table;
  table.insert(RawKey{3}, 30);
  table.clear();
  // The slot still physically holds the old entry, but it is dead — writing
  // over it must not count as evicting live work.
  EXPECT_FALSE(table.insert(RawKey{3 + 64}, 670));
}

TEST(ComputedTable, LosslessModeSpillsDisplacedEntries) {
  SmallTable table;
  table.setLossless(true);
  table.insert(RawKey{3}, 30);
  EXPECT_TRUE(table.insert(RawKey{3 + 64}, 670)) << "displacement still counts as spilled";
  // Both the displaced and the displacing entry remain retrievable.
  const std::uint64_t* displaced = table.lookup(RawKey{3});
  ASSERT_NE(displaced, nullptr);
  EXPECT_EQ(*displaced, 30U);
  const std::uint64_t* current = table.lookup(RawKey{3 + 64});
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(*current, 670U);
}

TEST(ComputedTable, ClearAlsoDropsSpilledEntries) {
  SmallTable table;
  table.setLossless(true);
  table.insert(RawKey{3}, 30);
  table.insert(RawKey{3 + 64}, 670);
  table.clear();
  EXPECT_EQ(table.lookup(RawKey{3}), nullptr);
  EXPECT_EQ(table.lookup(RawKey{3 + 64}), nullptr);
}

TEST(ComputedTable, WorksWithWeightPairKeys) {
  // The production instantiation: weight-op memoization over interned
  // handles.
  ComputedTable<WeightPairKey, std::uint32_t, 1024> table;
  table.insert(WeightPairKey{2, 3}, 6);
  const std::uint32_t* hit = table.lookup(WeightPairKey{2, 3});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 6U);
  EXPECT_EQ(table.lookup(WeightPairKey{3, 2}), nullptr)
      << "the table itself is not commutative; callers order the operands";
}

} // namespace
} // namespace qadd::dd
