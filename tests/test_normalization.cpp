/// Tests of the three normalization schemes of Section II-B / IV-B:
/// numeric leftmost / max-magnitude, algebraic Q[omega]-inverse (Algorithm 2)
/// and algebraic D[omega]-GCD (Algorithm 3), including the canonicity
/// property that makes QMDD equivalence checking O(1).
#include "core/algebraic_system.hpp"
#include "core/export.hpp"
#include "core/numeric_system.hpp"
#include "core/package.hpp"
#include "qc/gates.hpp"
#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace qadd::dd {
namespace {

using alg::QOmega;
using qadd::BigInt;
using alg::ZOmega;

TEST(NumericNormalization, LeftmostPivotBecomesOne) {
  NumericSystem system({0.0, NumericSystem::Normalization::LeftmostNonzero});
  std::array<NumericSystem::Weight, 4> weights{
      system.zero(), system.fromComplex({0.5, 0.5}), system.fromComplex({0.25, 0.0}),
      system.fromComplex({-0.5, 0.5})};
  const auto factor = system.normalize(weights);
  EXPECT_EQ(system.toComplex(factor), std::complex<double>(0.5, 0.5));
  EXPECT_TRUE(system.isZero(weights[0]));
  EXPECT_TRUE(system.isOne(weights[1]));
  // 0.25 / (0.5 + 0.5i) = 0.25 - 0.25i.
  EXPECT_NEAR(system.toComplex(weights[2]).real(), 0.25, 1e-12);
  EXPECT_NEAR(system.toComplex(weights[2]).imag(), -0.25, 1e-12);
}

TEST(NumericNormalization, MaxMagnitudeKeepsWeightsBounded) {
  NumericSystem system({0.0, NumericSystem::Normalization::MaxMagnitude});
  std::array<NumericSystem::Weight, 4> weights{
      system.fromComplex({0.1, 0.0}), system.fromComplex({0.9, 0.0}),
      system.fromComplex({-0.9, 0.0}), system.fromComplex({0.3, 0.3})};
  const auto factor = system.normalize(weights);
  // Pivot = leftmost of maximal magnitude = index 1 (0.9).
  EXPECT_EQ(system.toComplex(factor), std::complex<double>(0.9, 0.0));
  EXPECT_TRUE(system.isOne(weights[1]));
  for (const auto w : weights) {
    EXPECT_LE(std::abs(system.toComplex(w)), 1.0 + 1e-12);
  }
}

TEST(NumericNormalization, BothSchemesYieldSameCanonicalDiagrams) {
  // Different normalization, same represented matrix; node counts agree for
  // these benchmarks.
  for (const auto normalization : {NumericSystem::Normalization::LeftmostNonzero,
                                   NumericSystem::Normalization::MaxMagnitude}) {
    Package<NumericSystem> p(2, {0.0, normalization});
    const auto m = qc::complexMatrix(qc::GateKind::H);
    const typename Package<NumericSystem>::GateMatrix h{
        p.system().fromComplex(m[0]), p.system().fromComplex(m[1]),
        p.system().fromComplex(m[2]), p.system().fromComplex(m[3])};
    const auto u = p.makeGate(h, 0);
    // One H node; the identity on the untouched qubit is a skip edge.
    EXPECT_EQ(p.countNodes(u), 1U);
    const auto dense = toDenseMatrix(p, u);
    EXPECT_NEAR(dense.at(0, 0).real(), 1.0 / std::sqrt(2.0), 1e-14);
  }
}

TEST(AlgebraicNormalization, QOmegaInverseMakesPivotOne) {
  AlgebraicSystem system({AlgebraicSystem::Normalization::QOmegaInverse});
  std::array<AlgebraicSystem::Weight, 4> weights{
      system.zero(), system.intern(QOmega::invSqrt2()),
      system.intern(QOmega::omega() * QOmega::invSqrt2()), system.intern(QOmega{3})};
  const auto factor = system.normalize(weights);
  EXPECT_EQ(system.value(factor), QOmega::invSqrt2());
  EXPECT_TRUE(system.isZero(weights[0]));
  EXPECT_TRUE(system.isOne(weights[1]));
  EXPECT_EQ(system.value(weights[2]), QOmega::omega());
  // 3 / (1/sqrt2) = 3 sqrt2 — exact, even though 3 has no inverse in D[omega].
  EXPECT_EQ(system.value(weights[3]), QOmega{3} * QOmega::sqrt2());
}

TEST(AlgebraicNormalization, GcdSchemeStaysDyadic) {
  AlgebraicSystem system({AlgebraicSystem::Normalization::GcdDOmega});
  std::array<AlgebraicSystem::Weight, 4> weights{
      system.intern(QOmega{6}), system.intern(QOmega{10} * QOmega::invSqrt2()),
      system.zero(), system.intern(QOmega{4} * QOmega::omega())};
  const auto factor = system.normalize(weights);
  // All results must remain in D[omega] (Algorithm 3's design constraint).
  for (const auto w : weights) {
    EXPECT_TRUE(system.value(w).isDyadic());
  }
  EXPECT_TRUE(system.value(factor).isDyadic() || !system.value(factor).isZero());
  // Dividing by the factor reproduces the originals:
  EXPECT_EQ(system.value(weights[0]) * system.value(factor), QOmega{6});
}

TEST(AlgebraicNormalization, GcdSchemeIsCanonicalUnderCommonUnits) {
  // Scaling all weights by a common unit must produce identical normalized
  // weights (only the factor changes) — this is what makes nodes canonical.
  AlgebraicSystem system({AlgebraicSystem::Normalization::GcdDOmega});
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<std::int64_t> c(-5, 5);
  for (int trial = 0; trial < 50; ++trial) {
    std::array<QOmega, 4> values;
    bool allZero = true;
    for (auto& v : values) {
      v = QOmega{ZOmega{BigInt{c(rng)}, BigInt{c(rng)}, BigInt{c(rng)}, BigInt{c(rng)}},
                 static_cast<long>(rng() % 3)};
      allZero = allZero && v.isZero();
    }
    if (allZero) {
      continue;
    }
    // Unit u = omega^j * sqrt2^m * (omega+1)^p.
    QOmega unit = QOmega::omegaPower(static_cast<long>(rng() % 8));
    unit = unit * QOmega{ZOmega::one(), static_cast<long>(rng() % 5) - 2};
    for (unsigned p = 0; p < rng() % 3; ++p) {
      unit = unit * QOmega{ZOmega::omega() + ZOmega::one()};
    }

    std::array<AlgebraicSystem::Weight, 4> plain;
    std::array<AlgebraicSystem::Weight, 4> scaled;
    for (std::size_t i = 0; i < 4; ++i) {
      plain[i] = system.intern(values[i]);
      scaled[i] = system.intern(values[i] * unit);
    }
    (void)system.normalize(plain);
    (void)system.normalize(scaled);
    EXPECT_EQ(plain, scaled) << "normalized weights must not depend on a common unit";
  }
}

TEST(AlgebraicNormalization, QOmegaInverseIsCanonicalUnderCommonScalars) {
  AlgebraicSystem system({AlgebraicSystem::Normalization::QOmegaInverse});
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<std::int64_t> c(-5, 5);
  for (int trial = 0; trial < 50; ++trial) {
    std::array<QOmega, 4> values;
    bool allZero = true;
    for (auto& v : values) {
      v = QOmega{ZOmega{BigInt{c(rng)}, BigInt{c(rng)}, BigInt{c(rng)}, BigInt{c(rng)}},
                 static_cast<long>(rng() % 3), BigInt{2 * (c(rng) % 3) + 7}};
      allZero = allZero && v.isZero();
    }
    if (allZero) {
      continue;
    }
    // Any common non-zero scalar (not just units!) must cancel out.
    const QOmega scalar =
        QOmega{ZOmega{BigInt{1}, BigInt{0}, BigInt{2}, BigInt{3}}, -1, BigInt{5}};
    std::array<AlgebraicSystem::Weight, 4> plain;
    std::array<AlgebraicSystem::Weight, 4> scaled;
    for (std::size_t i = 0; i < 4; ++i) {
      plain[i] = system.intern(values[i]);
      scaled[i] = system.intern(values[i] * scalar);
    }
    (void)system.normalize(plain);
    (void)system.normalize(scaled);
    EXPECT_EQ(plain, scaled);
  }
}

TEST(Normalization, BothAlgebraicSchemesRepresentTheSameStates) {
  // Simulate the same circuit under both schemes; amplitudes must agree
  // exactly (they are different normal forms of the same exact object).
  qc::Circuit circuit(3, "mix");
  circuit.h(0).t(0).cx(0, 1).h(2).v(1).cx(1, 2).tdg(2).h(1);
  qc::Simulator<AlgebraicSystem> inverseSim(circuit,
                                            {AlgebraicSystem::Normalization::QOmegaInverse});
  qc::Simulator<AlgebraicSystem> gcdSim(circuit, {AlgebraicSystem::Normalization::GcdDOmega});
  inverseSim.run();
  gcdSim.run();
  const auto a = inverseSim.package().amplitudes(inverseSim.state());
  const auto b = gcdSim.package().amplitudes(gcdSim.state());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-14) << "index " << i;
  }
  // And node counts agree: both are maximally-reduced forms of one object.
  EXPECT_EQ(inverseSim.stateNodes(), gcdSim.stateNodes());
}

TEST(AlgebraicNormalization, UnitPartSchemeStaysDyadicAndExact) {
  // The experimental future-work scheme: values simulated under it must be
  // exactly those of the canonical schemes (same field elements), even
  // though the diagrams may be less compact.
  qc::Circuit circuit(3, "mix");
  circuit.h(0).t(0).cx(0, 1).h(2).v(1).cx(1, 2).tdg(2).h(1).cz(0, 2);
  qc::Simulator<AlgebraicSystem> canonical(circuit,
                                           {AlgebraicSystem::Normalization::QOmegaInverse});
  qc::Simulator<AlgebraicSystem> experimental(circuit,
                                              {AlgebraicSystem::Normalization::UnitPart});
  canonical.run();
  experimental.run();
  const auto a = canonical.package().amplitudes(canonical.state());
  const auto b = experimental.package().amplitudes(experimental.state());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-14) << i;
  }
  // Node count may only be >= the canonical one (less merging, never more).
  EXPECT_GE(experimental.stateNodes(), canonical.stateNodes());
}

TEST(AlgebraicNormalization, UnitPartIsCanonicalUnderUnitScalars) {
  AlgebraicSystem system({AlgebraicSystem::Normalization::UnitPart});
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::int64_t> c(-5, 5);
  for (int trial = 0; trial < 40; ++trial) {
    std::array<QOmega, 4> values;
    bool allZero = true;
    for (auto& v : values) {
      v = QOmega{ZOmega{BigInt{c(rng)}, BigInt{c(rng)}, BigInt{c(rng)}, BigInt{c(rng)}},
                 static_cast<long>(rng() % 3)};
      allZero = allZero && v.isZero();
    }
    if (allZero) {
      continue;
    }
    QOmega unit = QOmega::omegaPower(static_cast<long>(rng() % 8));
    unit = unit * QOmega{ZOmega::one(), static_cast<long>(rng() % 5) - 2};
    std::array<AlgebraicSystem::Weight, 4> plain;
    std::array<AlgebraicSystem::Weight, 4> scaled;
    for (std::size_t i = 0; i < 4; ++i) {
      plain[i] = system.intern(values[i]);
      scaled[i] = system.intern(values[i] * unit);
    }
    (void)system.normalize(plain);
    (void)system.normalize(scaled);
    EXPECT_EQ(plain, scaled) << "unit-part normalization must cancel common units";
  }
}

TEST(Normalization, GcdSchemeCanonicityGivesO1Equivalence) {
  // Two syntactically different but equal circuits: HH vs identity; TSSdgTdg
  // vs identity — equal diagrams under the GCD scheme, too.
  qc::Circuit c1(2, "a");
  c1.h(0).h(0).t(1).s(1).sdg(1).tdg(1);
  qc::Simulator<AlgebraicSystem> sim(c1, {AlgebraicSystem::Normalization::GcdDOmega});
  sim.run();
  auto& p = sim.package();
  EXPECT_EQ(sim.state(), p.makeZeroState());
}

} // namespace
} // namespace qadd::dd
