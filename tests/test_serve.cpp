/// \file test_serve.cpp
/// The qadd_serve subsystem: wire-format units (JSON, base64), the job
/// queue's priorities and admission control, session lifecycle with idle
/// persistence, and live-server protocol robustness — a malformed/truncated/
/// oversized frame fuzzer, kill-mid-job checkpoint restore proving QCKP
/// byte-identity across a server restart, result-cache coalescing, and
/// Prometheus label escaping of hostile session names.
#include "algorithms/grover.hpp"
#include "core/algebraic_system.hpp"
#include "exec/thread_pool.hpp"
#include "io/snapshot.hpp"
#include "qc/simulator.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace qadd;

// -- helpers ----------------------------------------------------------------------

serve::ServerConfig testConfig() {
  serve::ServerConfig config;
  config.port = 0;
  config.workers = 2;
  config.idleTimeoutSeconds = 0; // tests poke connections at their own pace
  return config;
}

serve::Client connectTo(const serve::Server& server) {
  serve::Client client;
  client.connect("127.0.0.1", server.port(), 30.0);
  return client;
}

serve::json::Value makeRequest(const std::string& op) {
  serve::json::Value request = serve::json::Value::object();
  request.set("op", op);
  return request;
}

serve::json::Value openSession(serve::Client& client, const std::string& name,
                               const std::string& system, qc::Qubit qubits,
                               double epsilon = 0.0) {
  serve::json::Value open = makeRequest("open");
  open.set("session", name);
  open.set("system", system);
  open.set("qubits", static_cast<std::size_t>(qubits));
  open.set("eps", epsilon);
  return client.call(open);
}

int errorCode(const serve::json::Value& reply) {
  const serve::json::Value* error = reply.find("error");
  return error == nullptr ? 0 : static_cast<int>(error->getNumber("code"));
}

// -- json -------------------------------------------------------------------------

TEST(ServeJson, RoundTripsDocuments) {
  const std::string text =
      R"({"id":7,"op":"run","ok":true,"eps":0.5,"names":["a","b"],"nested":{"x":null}})";
  const serve::json::Value value = serve::json::parse(text);
  EXPECT_EQ(value.getNumber("id"), 7.0);
  EXPECT_EQ(value.getString("op"), "run");
  EXPECT_TRUE(value.getBool("ok"));
  EXPECT_EQ(serve::json::dump(value), text);
}

TEST(ServeJson, EscapesAndControlCharacters) {
  serve::json::Value value = serve::json::Value::object();
  value.set("s", std::string("a\"b\\c\nd\te\x01"));
  const std::string dumped = serve::json::dump(value);
  EXPECT_EQ(dumped.find('\n'), std::string::npos) << "frames must stay single-line";
  const serve::json::Value back = serve::json::parse(dumped);
  EXPECT_EQ(back.getString("s"), "a\"b\\c\nd\te\x01");
}

TEST(ServeJson, RejectsMalformedAndDeepDocuments) {
  for (const char* bad : {"", "{", "[1,", "{\"a\":}", "tru", "01x", "\"\\q\"", "{\"a\":1}x",
                          "\"unterminated", "nan"}) {
    EXPECT_THROW((void)serve::json::parse(bad), serve::json::Error) << bad;
  }
  const std::string deep(100, '[');
  EXPECT_THROW((void)serve::json::parse(deep + std::string(100, ']')), serve::json::Error);
}

TEST(ServeJson, ParsesUnicodeEscapes) {
  const serve::json::Value value = serve::json::parse(R"({"s":"\u0041\u00e9\u20ac"})");
  EXPECT_EQ(value.getString("s"), "A\xC3\xA9\xE2\x82\xAC");
}

// -- base64 -----------------------------------------------------------------------

TEST(ServeBase64, RoundTripsAllLengths) {
  std::mt19937 rng(7);
  for (std::size_t length = 0; length < 70; ++length) {
    std::vector<std::uint8_t> bytes(length);
    for (auto& b : bytes) {
      b = static_cast<std::uint8_t>(rng());
    }
    EXPECT_EQ(serve::decodeBase64(serve::encodeBase64(bytes)), bytes) << length;
  }
}

TEST(ServeBase64, RejectsInvalidInput) {
  for (const char* bad : {"abc", "ab=c", "====", "a===", "ab=cdefg", "ab!d", "AAAA\n"}) {
    EXPECT_THROW((void)serve::decodeBase64(bad), serve::ServeError) << bad;
  }
}

// -- job queue --------------------------------------------------------------------

TEST(ServeJobQueue, DispatchesByPriorityAndRejectsPastDepth) {
  exec::ThreadPool pool(1);
  serve::JobQueue queue(pool, 4);
  std::mutex gate;
  gate.lock(); // hold the single worker on the first job
  std::vector<int> order;
  std::mutex orderMutex;
  ASSERT_TRUE(queue.tryEnqueue(0, [&] {
    const std::lock_guard<std::mutex> hold(gate); // blocks until released
  }));
  // Wait until the blocker is actually in flight so the later jobs are all
  // pending together and dispatch strictly by priority.
  while (queue.accepted() != 1 || queue.depth() != 1) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto record = [&](int tag) {
    return [&order, &orderMutex, tag] {
      const std::lock_guard<std::mutex> lock(orderMutex);
      order.push_back(tag);
    };
  };
  ASSERT_TRUE(queue.tryEnqueue(5, record(5)));
  ASSERT_TRUE(queue.tryEnqueue(1, record(1)));
  ASSERT_TRUE(queue.tryEnqueue(3, record(3)));
  EXPECT_FALSE(queue.tryEnqueue(0, record(0))) << "5th job must exceed depth 4";
  EXPECT_EQ(queue.rejected(), 1U);
  gate.unlock();
  queue.drain();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5})) << "pending jobs run in priority order";
  EXPECT_EQ(queue.completed(), 4U);
}

// -- sessions: idle persistence ---------------------------------------------------

TEST(ServeSession, PersistsIdleSessionsAndRestoresByteIdentically) {
  serve::SessionManager::Limits limits;
  limits.memoryWatermarkNodes = 1; // everything idle gets persisted
  serve::SessionManager manager(limits, nullptr);

  serve::SessionConfig config;
  config.system = "alg";
  config.qubits = 5;
  config.name = "a";
  const auto a = manager.open(config);
  config.name = "b";
  const auto b = manager.open(config);

  const qc::Circuit circuit = algos::grover({5, 11, 0});
  serve::JobRequest job;
  job.circuit = circuit;
  std::vector<std::uint8_t> before;
  manager.withBackend(*a, [&](serve::SessionBackend& backend) {
    (void)backend.run(job, {});
    before = backend.stateSnapshot();
  });
  // Running on b makes a the LRU victim once the watermark sweep runs.
  manager.withBackend(*b, [&](serve::SessionBackend& backend) { (void)backend.run(job, {}); });
  EXPECT_GE(manager.counters().persisted.load(), 1U);
  EXPECT_TRUE(a->persisted());

  std::vector<std::uint8_t> after;
  manager.withBackend(*a, [&](serve::SessionBackend& backend) {
    after = backend.stateSnapshot();
  });
  EXPECT_EQ(manager.counters().restored.load(), 1U);
  EXPECT_EQ(after, before) << "QCKP persist/restore must be byte-identical";
}

TEST(ServeSession, OpenValidatesAndEnforcesLimits) {
  serve::SessionManager::Limits limits;
  limits.maxSessions = 1;
  serve::SessionManager manager(limits, nullptr);
  serve::SessionConfig config;
  config.name = "s";
  config.qubits = 2;
  (void)manager.open(config);
  try {
    (void)manager.open(config);
    FAIL() << "duplicate open must throw";
  } catch (const serve::ServeError& error) {
    EXPECT_EQ(error.code(), serve::kConflict);
  }
  config.name = "t";
  try {
    (void)manager.open(config);
    FAIL() << "session limit must throw";
  } catch (const serve::ServeError& error) {
    EXPECT_EQ(error.code(), serve::kTooManyRequests);
  }
  manager.close("s");
  EXPECT_THROW(manager.close("s"), serve::ServeError);
  config.name = "u";
  config.system = "alg";
  config.epsilon = 0.5; // exact system refuses a tolerance
  EXPECT_THROW((void)manager.open(config), serve::ServeError);
  config.epsilon = 0.0;
  config.qubits = 0;
  EXPECT_THROW((void)manager.open(config), serve::ServeError);
}

// -- live server: protocol robustness ---------------------------------------------

TEST(ServeServer, SurvivesMalformedFrameFuzzing) {
  auto config = testConfig();
  config.maxFrameBytes = 4096;
  serve::Server server(config);
  server.start();

  serve::Client client = connectTo(server);
  // Deterministic garbage: every frame must be answered with ok=false and
  // the connection must survive everything that fits the frame limit.
  std::vector<std::string> frames = {
      "{",
      "}",
      "null",
      "[1,2,3]",
      "\"just a string\"",
      "{\"op\":42}",
      "{\"op\":\"no-such-op\"}",
      "{\"op\":\"run\"}",
      "{\"op\":\"run\",\"session\":\"ghost\"}",
      "{\"op\":\"open\",\"session\":\"\",\"qubits\":3}",
      "{\"op\":\"open\",\"session\":\"x\",\"system\":\"quaternion\",\"qubits\":3}",
      "{\"op\":\"open\",\"session\":\"x\",\"system\":\"num\",\"qubits\":3,\"eps\":-1}",
      std::string("{\"op\":\"") + std::string(200, 'z') + "\"}",
      "{\"op\":\"loadstate\",\"session\":\"ghost\",\"qdds_b64\":\"!!!\"}",
      // Hostile numbers must be rejected with 400 before any integer cast
      // (a static_cast from 1e30 or a negative into an unsigned is UB).
      "{\"op\":\"open\",\"session\":\"n1\",\"qubits\":1e30}",
      "{\"op\":\"open\",\"session\":\"n2\",\"qubits\":-3}",
      "{\"op\":\"open\",\"session\":\"n3\",\"qubits\":2.5}",
      "{\"op\":\"open\",\"session\":\"n4\",\"qubits\":3,\"gc_watermark\":-1}",
      "{\"op\":\"open\",\"session\":\"n5\",\"qubits\":\"three\"}",
  };
  std::mt19937 rng(1234);
  for (int i = 0; i < 40; ++i) {
    std::string junk;
    const std::size_t length = 1 + rng() % 60;
    for (std::size_t j = 0; j < length; ++j) {
      junk += static_cast<char>(' ' + rng() % 95); // printable, non-newline
    }
    frames.push_back(junk);
  }
  for (const std::string& frame : frames) {
    client.sendRaw(frame + "\n");
    const serve::json::Value reply = serve::json::parse(client.readLine());
    EXPECT_FALSE(reply.getBool("ok")) << frame;
    EXPECT_GE(errorCode(reply), 400) << frame;
  }
  // The connection is still healthy after all of it.
  EXPECT_TRUE(client.call(makeRequest("ping")).getBool("ok"));

  // A truncated frame (no newline, then close) must be ignored quietly.
  {
    serve::Client truncated = connectTo(server);
    truncated.sendRaw("{\"op\":\"ping\",\"id\":\"never-finis");
    truncated.close();
  }
  // A frame split into byte-sized writes must reassemble.
  {
    serve::Client slow = connectTo(server);
    const std::string frame = "{\"op\":\"ping\",\"id\":\"slow\"}\n";
    for (const char byte : frame) {
      slow.sendRaw(std::string(1, byte));
    }
    EXPECT_TRUE(serve::json::parse(slow.readLine()).getBool("ok"));
  }
  // An oversized frame draws 413 and a close; the server itself lives on.
  {
    serve::Client big = connectTo(server);
    big.sendRaw(std::string(config.maxFrameBytes + 1024, 'x'));
    const serve::json::Value reply = serve::json::parse(big.readLine());
    EXPECT_EQ(errorCode(reply), serve::kPayloadTooLarge);
    EXPECT_THROW((void)big.readLine(), std::runtime_error); // server closed it
  }
  EXPECT_TRUE(client.call(makeRequest("ping")).getBool("ok"));
  EXPECT_GE(server.counters().malformedFrames.load(), 40U);
  EXPECT_EQ(server.counters().oversizedFrames.load(), 1U);
  server.stop();
}

TEST(ServeServer, KillMidJobAndCheckpointRestoreAcrossRestart) {
  const qc::Circuit circuit = algos::grover({6, 23, 0});
  // Offline references: the full run, and a mid-circuit QCKP checkpoint.
  qc::Simulator<dd::AlgebraicSystem> offline(circuit);
  offline.run();
  const std::vector<std::uint8_t> reference = io::saveVector(offline.package(), offline.state());
  qc::Simulator<dd::AlgebraicSystem> partial(circuit);
  const std::size_t half = circuit.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    partial.step();
  }
  const std::vector<std::uint8_t> checkpoint = partial.saveCheckpoint();

  std::uint16_t firstPort = 0;
  {
    auto config = testConfig();
    serve::Server server(config);
    server.start();
    firstPort = server.port();
    serve::Client client = connectTo(server);
    ASSERT_TRUE(openSession(client, "s", "alg", circuit.qubits()).getBool("ok"));
    // Fire a job and vanish mid-flight: the client dies, then the server is
    // torn down.  Neither side may crash or leak the in-flight work.
    serve::json::Value run = makeRequest("run");
    run.set("session", "s");
    run.set("circuit", circuit.toText());
    client.sendRaw(serve::json::dump(run) + "\n");
    client.close();
    server.stop();
  }

  // A fresh server (think: restarted daemon) resumes the QCKP mid-circuit
  // and must land on the byte-identical final state.
  auto config = testConfig();
  serve::Server server(config);
  server.start();
  EXPECT_NE(server.port(), 0);
  (void)firstPort;
  serve::Client client = connectTo(server);
  ASSERT_TRUE(openSession(client, "s", "alg", circuit.qubits()).getBool("ok"));
  serve::json::Value resume = makeRequest("run");
  resume.set("session", "s");
  resume.set("circuit", circuit.toText());
  resume.set("resume", serve::encodeBase64(checkpoint));
  resume.set("snapshot", true);
  const serve::json::Value reply = client.call(resume);
  ASSERT_TRUE(reply.getBool("ok")) << serve::json::dump(reply);
  EXPECT_EQ(static_cast<std::size_t>(reply.getNumber("gates")), circuit.size() - half)
      << "resume must only apply the remaining gates";
  EXPECT_EQ(serve::decodeBase64(reply.getString("snapshot_b64")), reference)
      << "restored run must be byte-identical to the offline simulation";

  // The "checkpoint" op round-trips through loadstate-free restore too.
  const serve::json::Value ckptReply = [&] {
    serve::json::Value request = makeRequest("checkpoint");
    request.set("session", "s");
    return client.call(request);
  }();
  ASSERT_TRUE(ckptReply.getBool("ok"));
  const auto serverCkpt = serve::decodeBase64(ckptReply.getString("checkpoint_b64"));
  // Restoring that checkpoint on yet another session reproduces the state.
  ASSERT_TRUE(openSession(client, "t", "alg", circuit.qubits()).getBool("ok"));
  serve::json::Value replay = makeRequest("run");
  replay.set("session", "t");
  replay.set("circuit", circuit.toText());
  replay.set("resume", serve::encodeBase64(serverCkpt));
  replay.set("snapshot", true);
  const serve::json::Value replayed = client.call(replay);
  ASSERT_TRUE(replayed.getBool("ok"));
  EXPECT_EQ(serve::decodeBase64(replayed.getString("snapshot_b64")), reference);
  server.stop();
}

TEST(ServeServer, AdmissionControlAnswers429) {
  auto config = testConfig();
  config.workers = 1;
  config.maxQueueDepth = 1;
  serve::Server server(config);
  server.start();
  serve::Client client = connectTo(server);
  const qc::Circuit circuit = algos::grover({11, 3, 0}); // slow enough to pile behind
  ASSERT_TRUE(openSession(client, "s", "alg", circuit.qubits()).getBool("ok"));
  serve::json::Value run = makeRequest("run");
  run.set("session", "s");
  run.set("circuit", circuit.toText());
  // Pipeline several jobs in one burst: with one worker and depth 1, the
  // later ones must be refused with 429 while the first still runs.
  const int burst = 5;
  std::string frames;
  for (int i = 0; i < burst; ++i) {
    frames += serve::json::dump(run) + "\n";
  }
  client.sendRaw(frames);
  int ok = 0;
  int rejected = 0;
  for (int i = 0; i < burst; ++i) {
    const serve::json::Value reply = serve::json::parse(client.readLine());
    if (reply.getBool("ok")) {
      ++ok;
    } else {
      EXPECT_EQ(errorCode(reply), serve::kTooManyRequests);
      ++rejected;
    }
  }
  EXPECT_GE(ok, 1);
  EXPECT_GE(rejected, 1) << "burst past the depth limit must draw 429s";
  EXPECT_EQ(server.jobQueue().rejected(), static_cast<std::uint64_t>(rejected));
  server.stop();
}

TEST(ServeServer, CoalescesIdenticalAlgebraicJobs) {
  serve::Server server(testConfig());
  server.start();
  serve::Client client = connectTo(server);
  const qc::Circuit circuit = algos::grover({6, 9, 0});
  ASSERT_TRUE(openSession(client, "a", "alg", circuit.qubits()).getBool("ok"));
  ASSERT_TRUE(openSession(client, "b", "alg", circuit.qubits()).getBool("ok"));
  serve::json::Value run = makeRequest("run");
  run.set("session", "a");
  run.set("circuit", circuit.toText());
  run.set("snapshot", true);
  const serve::json::Value first = client.call(run);
  ASSERT_TRUE(first.getBool("ok"));
  EXPECT_FALSE(first.getBool("cached"));
  // Same circuit on a DIFFERENT session: exactness makes the cached result
  // valid regardless of which session computed it.
  serve::json::Value again = makeRequest("run");
  again.set("session", "b");
  again.set("circuit", circuit.toText());
  again.set("snapshot", true);
  const serve::json::Value second = client.call(again);
  ASSERT_TRUE(second.getBool("ok"));
  EXPECT_TRUE(second.getBool("cached"));
  EXPECT_EQ(second.getString("snapshot_b64"), first.getString("snapshot_b64"))
      << "cached snapshot must be byte-identical";
  EXPECT_EQ(server.counters().resultCacheHits.load(), 1U);
  // A cached run restores the final state into the serving session, so a
  // follow-up "state" behaves exactly as after an uncached run.
  serve::json::Value state = makeRequest("state");
  state.set("session", "b");
  const serve::json::Value stateReply = client.call(state);
  ASSERT_TRUE(stateReply.getBool("ok"));
  EXPECT_EQ(stateReply.getString("snapshot_b64"), first.getString("snapshot_b64"))
      << "cached run must leave the session in the run's final state";
  // Even when the client did not ask for a snapshot payload.
  ASSERT_TRUE(openSession(client, "c", "alg", circuit.qubits()).getBool("ok"));
  serve::json::Value bare = makeRequest("run");
  bare.set("session", "c");
  bare.set("circuit", circuit.toText());
  const serve::json::Value third = client.call(bare);
  ASSERT_TRUE(third.getBool("ok"));
  EXPECT_TRUE(third.getString("snapshot_b64").empty()) << "snapshot payload stays opt-in";
  serve::json::Value stateC = makeRequest("state");
  stateC.set("session", "c");
  EXPECT_EQ(client.call(stateC).getString("snapshot_b64"), first.getString("snapshot_b64"));
  // Job-level numeric fields draw 400, not UB, on hostile values.
  serve::json::Value hostile = makeRequest("run");
  hostile.set("session", "a");
  hostile.set("circuit", circuit.toText());
  hostile.set("priority", 1e300);
  EXPECT_EQ(errorCode(client.call(hostile)), serve::kBadRequest);
  serve::json::Value negativeTrace = makeRequest("run");
  negativeTrace.set("session", "a");
  negativeTrace.set("circuit", circuit.toText());
  negativeTrace.set("trace_every", -1.0);
  EXPECT_EQ(errorCode(client.call(negativeTrace)), serve::kBadRequest);
  server.stop();
}

TEST(ServeServer, MetricsEscapeHostileSessionNames) {
  serve::Server server(testConfig());
  server.start();
  serve::Client client = connectTo(server);
  const std::string hostile = "we\"ird\nname\\x";
  ASSERT_TRUE(openSession(client, hostile, "alg", 3).getBool("ok"));
  const serve::json::Value reply = client.call(makeRequest("metrics"));
  ASSERT_TRUE(reply.getBool("ok"));
  const std::string metrics = reply.getString("metrics");
  EXPECT_NE(metrics.find("qadd_serve_session_nodes{session=\"we\\\"ird\\nname\\\\x\"}"),
            std::string::npos)
      << metrics;
  EXPECT_EQ(metrics.find("we\"ird"), std::string::npos) << "raw quote must not appear";
  // And the whole exposition parses line by line (no label value breaks it).
  for (std::size_t pos = 0; pos < metrics.size();) {
    const std::size_t end = metrics.find('\n', pos);
    ASSERT_NE(end, std::string::npos) << "exposition must end in a newline";
    pos = end + 1;
  }
  server.stop();
}

TEST(ServeServer, StateAndLoadStateRoundTrip) {
  serve::Server server(testConfig());
  server.start();
  serve::Client client = connectTo(server);
  const qc::Circuit circuit = algos::grover({5, 7, 0});
  ASSERT_TRUE(openSession(client, "src", "alg", circuit.qubits()).getBool("ok"));
  // "state" before any job is a 409.
  {
    serve::json::Value request = makeRequest("state");
    request.set("session", "src");
    EXPECT_EQ(errorCode(client.call(request)), serve::kConflict);
  }
  serve::json::Value run = makeRequest("run");
  run.set("session", "src");
  run.set("circuit", circuit.toText());
  ASSERT_TRUE(client.call(run).getBool("ok"));
  serve::json::Value state = makeRequest("state");
  state.set("session", "src");
  const serve::json::Value stateReply = client.call(state);
  ASSERT_TRUE(stateReply.getBool("ok"));
  const std::string blob = stateReply.getString("snapshot_b64");
  ASSERT_FALSE(blob.empty());
  // Upload into a fresh session; its state snapshot must match byte for byte.
  ASSERT_TRUE(openSession(client, "dst", "alg", circuit.qubits()).getBool("ok"));
  serve::json::Value load = makeRequest("loadstate");
  load.set("session", "dst");
  load.set("qdds_b64", blob);
  ASSERT_TRUE(client.call(load).getBool("ok"));
  serve::json::Value state2 = makeRequest("state");
  state2.set("session", "dst");
  EXPECT_EQ(client.call(state2).getString("snapshot_b64"), blob);
  server.stop();
}

TEST(ServeServer, ShutdownRefusesNewWorkWith503) {
  serve::Server server(testConfig());
  server.start();
  serve::Client client = connectTo(server);
  EXPECT_TRUE(client.call(makeRequest("ping")).getBool("ok"));
  std::thread stopper([&server] { server.stop(); });
  server.waitShutdown(); // stop() flips the shutdown flag before draining
  stopper.join();
  // The old connection is gone and new ones are refused.
  EXPECT_THROW((void)client.call(makeRequest("ping")), std::runtime_error);
  serve::Client late;
  EXPECT_THROW(late.connect("127.0.0.1", server.port(), 2.0), std::runtime_error);
}

} // namespace
