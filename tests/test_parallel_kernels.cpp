/// \file test_parallel_kernels.cpp
/// The intra-operation parallelism contract: attaching an exec::ThreadPool
/// to a package forks add/multiply/kronecker across workers for
/// order-independent weight systems, and the result — final states, node
/// counts, snapshot bytes — is byte-identical to the serial path.  Plus the
/// stress suites the TSan CI job runs against the striped unique table, the
/// seqlock computed table, and the per-worker arenas.
#include "algorithms/grover.hpp"
#include "core/computed_table.hpp"
#include "core/package.hpp"
#include "exec/thread_pool.hpp"
#include "io/snapshot.hpp"
#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace {

using namespace qadd;

using AlgSimulator = qc::Simulator<dd::AlgebraicSystem>;
using NumSimulator = qc::Simulator<dd::NumericSystem>;

qc::Circuit groverCircuit() { return algos::grover({5, (1ULL << 5) - 2, 0}); }

// -- engagement rules -----------------------------------------------------------

TEST(ParallelKernels, EngagesOnlyForOrderIndependentSystems) {
  exec::ThreadPool pool(4);

  dd::Package<dd::AlgebraicSystem> algebraic(3);
  algebraic.setExecutor(&pool);
  EXPECT_TRUE(algebraic.concurrentKernels()) << "exact algebra is order-independent";

  dd::Package<dd::NumericSystem> exact(3, {0.0});
  exact.setExecutor(&pool);
  EXPECT_TRUE(exact.concurrentKernels()) << "eps=0 numeric interning is exact";

  dd::Package<dd::NumericSystem> tolerant(3, {1e-4});
  tolerant.setExecutor(&pool);
  EXPECT_FALSE(tolerant.concurrentKernels())
      << "tolerance-mode unification is order-dependent; kernels must stay serial";
  EXPECT_EQ(tolerant.parallelDepth(), 0U);
}

TEST(ParallelKernels, SingleWorkerPoolStaysSerial) {
  exec::ThreadPool pool(1);
  dd::Package<dd::AlgebraicSystem> package(3);
  package.setExecutor(&pool);
  EXPECT_FALSE(package.concurrentKernels()) << "--jobs 1 keeps the exact serial path";
}

TEST(ParallelKernels, ParallelDepthDerivesFromWorkerCount) {
  dd::Package<dd::AlgebraicSystem> package(3);
  exec::ThreadPool four(4);
  package.setExecutor(&four);
  // ceil(log2(workers)) + 2 levels of binary forking.
  EXPECT_EQ(package.parallelDepth(), 4U);
  package.setExecutor(nullptr);
  EXPECT_FALSE(package.concurrentKernels());
  EXPECT_EQ(package.parallelDepth(), 0U);
}

TEST(ParallelKernels, ConfigParallelDepthOverridesDerivation) {
  dd::AlgebraicSystem::Config config;
  config.parallelDepth = 7;
  dd::Package<dd::AlgebraicSystem> package(3, config);
  exec::ThreadPool pool(2);
  package.setExecutor(&pool);
  EXPECT_EQ(package.parallelDepth(), 7U);
}

// -- determinism contract -------------------------------------------------------

/// Simulate `circuit`, return {snapshot bytes, per-gate node counts}.
template <class System>
std::pair<std::vector<std::uint8_t>, std::vector<std::size_t>>
simulate(const qc::Circuit& circuit, typename System::Config config, exec::ThreadPool* pool) {
  qc::Simulator<System> simulator(circuit, config);
  if (pool != nullptr) {
    simulator.setExecutor(pool);
  }
  std::vector<std::size_t> nodes;
  while (simulator.step()) {
    nodes.push_back(simulator.stateNodes());
  }
  return {io::saveVector(simulator.package(), simulator.state()), std::move(nodes)};
}

TEST(ParallelKernels, AlgebraicGroverIsByteIdenticalAcrossJobs) {
  const qc::Circuit circuit = groverCircuit();
  const auto serial = simulate<dd::AlgebraicSystem>(circuit, {}, nullptr);
  exec::ThreadPool pool(4);
  const auto parallel = simulate<dd::AlgebraicSystem>(circuit, {}, &pool);
  EXPECT_EQ(serial.second, parallel.second) << "per-gate DD sizes must not move with jobs";
  EXPECT_EQ(serial.first, parallel.first) << "final state snapshots must be byte-identical";
}

TEST(ParallelKernels, ExactNumericGroverIsByteIdenticalAcrossJobs) {
  const qc::Circuit circuit = groverCircuit();
  const auto serial = simulate<dd::NumericSystem>(circuit, {0.0}, nullptr);
  exec::ThreadPool pool(4);
  const auto parallel = simulate<dd::NumericSystem>(circuit, {0.0}, &pool);
  EXPECT_EQ(serial.second, parallel.second);
  EXPECT_EQ(serial.first, parallel.first);
}

TEST(ParallelKernels, ToleranceNumericIsUntouchedByThePool) {
  const qc::Circuit circuit = groverCircuit();
  const auto serial = simulate<dd::NumericSystem>(circuit, {1e-10}, nullptr);
  exec::ThreadPool pool(4);
  const auto parallel = simulate<dd::NumericSystem>(circuit, {1e-10}, &pool);
  EXPECT_EQ(serial.second, parallel.second);
  EXPECT_EQ(serial.first, parallel.first) << "tolerance mode never engages the fork path";
}

TEST(ParallelKernels, PeakNodesGaugeMatchesSerial) {
  const qc::Circuit circuit = groverCircuit();
  AlgSimulator serial(circuit);
  while (serial.step()) {
  }
  exec::ThreadPool pool(4);
  AlgSimulator parallel(circuit);
  parallel.setExecutor(&pool);
  while (parallel.step()) {
  }
  // inUse() subtracts per-slot reserves, so the arena gauge is exact and the
  // once-per-kernel peak sample reproduces the serial per-insert maximum.
  EXPECT_EQ(serial.package().peakNodes(), parallel.package().peakNodes());
}

TEST(ParallelKernels, KroneckerMatchesSerial) {
  // A four-level top DD kron a four-level bottom DD: deep enough that the
  // fork path engages (parallelDepth = 4 at four workers), and the serial
  // and parallel products must serialize identically.
  auto build = [](exec::ThreadPool* pool) {
    using Pkg = dd::Package<dd::AlgebraicSystem>;
    Pkg package(8);
    if (pool != nullptr) {
      package.setExecutor(pool);
    }
    auto& system = package.system();
    const auto h = qc::algebraicMatrix(qc::GateKind::H);
    const auto a = system.intern(h[0]); // 1/sqrt(2)
    const auto b = system.intern(h[3]); // -1/sqrt(2)
    const auto chain = [&](dd::Qubit firstVar) {
      typename Pkg::VEdge edge{nullptr, system.one()};
      for (dd::Qubit var = firstVar + 4; var-- > firstVar;) {
        edge = package.makeVNode(var, {typename Pkg::VEdge{edge.node, a},
                                       typename Pkg::VEdge{edge.node, system.mul(a, b)}});
      }
      return edge;
    };
    const auto product = package.kronecker(chain(0), chain(4));
    return io::saveVector(package, product);
  };
  const auto serial = build(nullptr);
  exec::ThreadPool pool(4);
  const auto parallel = build(&pool);
  EXPECT_EQ(serial, parallel);
}

// -- stress (the TSan CI targets) -----------------------------------------------

/// Key whose hash is the key itself, so the test controls slot placement.
struct RawKey {
  std::uint64_t value;
  friend bool operator==(const RawKey&, const RawKey&) = default;
  [[nodiscard]] std::uint64_t hash() const { return value; }
};

/// Value derived from the key: a torn seqlock read would surface as a
/// mismatched pair.
constexpr std::uint64_t valueFor(std::uint64_t key) { return key * 0x9E3779B97F4A7C15ULL + 1; }

TEST(ParallelKernels, StressSeqlockComputedTableNeverTearsReads) {
  dd::ComputedTable<RawKey, std::uint64_t, 256> table;
  table.setConcurrent(true);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kOpsPerThread = 20'000;
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, &torn, t]() {
      std::uint64_t state = 0x243F6A8885A308D3ULL + static_cast<std::uint64_t>(t);
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        const std::uint64_t key = state >> 32;
        if ((state & 1) == 0) {
          table.insert(RawKey{key}, valueFor(key));
        } else {
          std::uint64_t out = 0;
          if (table.lookup(RawKey{key}, out) && out != valueFor(key)) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(torn.load(), 0U) << "seqlock published a half-written entry";
}

TEST(ParallelKernels, StressStripedUniqueTableUnderKernelLoad) {
  // Drive the real makeNode path — striped unique table, per-worker arenas,
  // concurrent weight interning — from genuinely parallel kernels, five
  // times over.  Run under TSan in CI; here it is a smoke + determinism run.
  const qc::Circuit circuit = groverCircuit();
  exec::ThreadPool pool(4);
  std::vector<std::uint8_t> first;
  for (int round = 0; round < 5; ++round) {
    AlgSimulator simulator(circuit);
    simulator.setExecutor(&pool);
    while (simulator.step()) {
    }
    auto bytes = io::saveVector(simulator.package(), simulator.state());
    if (round == 0) {
      first = std::move(bytes);
    } else {
      ASSERT_EQ(bytes, first) << "round " << round << " diverged";
    }
  }
}

TEST(ParallelKernels, StressForkJoinComposedWithParallelFor) {
  // The sweep shape: an outer parallelFor fan-out whose bodies each run
  // fork-join kernels on the same pool.  The steal-back protocol must keep
  // this deadlock-free even with more outer tasks than workers.
  const qc::Circuit circuit = groverCircuit();
  exec::ThreadPool pool(4);
  std::vector<std::vector<std::uint8_t>> results(8);
  exec::parallelFor(&pool, results.size(), [&](std::size_t i) {
    NumSimulator simulator(circuit, {0.0});
    simulator.setExecutor(&pool);
    while (simulator.step()) {
    }
    results[i] = io::saveVector(simulator.package(), simulator.state());
  });
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]) << "outer task " << i << " diverged";
  }
}

} // namespace
