#include "core/export.hpp"

#include "algorithms/common.hpp"
#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qadd::dd {
namespace {

using AlgPkg = Package<AlgebraicSystem>;
using NumPkg = Package<NumericSystem>;

TEST(Export, MatrixDotContainsAllLevels) {
  AlgPkg p(3);
  qc::Circuit c(3);
  c.h(0).cx(0, 1).t(2);
  const auto u = qc::buildUnitary(p, c);
  const std::string dot = toDot(p, u);
  EXPECT_NE(dot.find("q0"), std::string::npos);
  EXPECT_NE(dot.find("q1"), std::string::npos);
  EXPECT_NE(dot.find("q2"), std::string::npos);
  EXPECT_NE(dot.find("shape=point"), std::string::npos); // zero stubs exist
}

TEST(Export, VectorDotOfZeroState) {
  AlgPkg p(2);
  const std::string dot = toDot(p, p.makeZeroState());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("root"), std::string::npos);
}

TEST(Export, TerminalOnlyEdge) {
  // A bare terminal edge (0 qubits worth of structure) renders without
  // crashing.
  AlgPkg p(1);
  const typename AlgPkg::VEdge terminal{nullptr, p.system().one()};
  const std::string dot = toDot(p, terminal);
  EXPECT_NE(dot.find("root -> t"), std::string::npos);
}

TEST(Export, DenseMatrixRoundTripThroughStateVectors) {
  // toDenseMatrix equals applying the unitary to all basis states.
  NumPkg p(3, {0.0, NumericSystem::Normalization::LeftmostNonzero});
  qc::Circuit c(3);
  c.h(0).cx(0, 2).t(1).v(2);
  const auto u = qc::buildUnitary(p, c);
  const la::Matrix dense = toDenseMatrix(p, u);
  for (std::size_t basis = 0; basis < 8; ++basis) {
    bool bits[3];
    for (unsigned q = 0; q < 3; ++q) {
      bits[q] = ((basis >> (2 - q)) & 1ULL) != 0;
    }
    const auto column = p.multiply(u, p.makeBasisState(bits));
    const auto amplitudes = p.amplitudes(column);
    for (std::size_t row = 0; row < 8; ++row) {
      EXPECT_NEAR(std::abs(amplitudes[row] - dense.at(row, basis)), 0.0, 1e-12)
          << row << "," << basis;
    }
  }
}

TEST(Export, DenseVectorOfEntangledState) {
  AlgPkg p(4);
  qc::Simulator<AlgebraicSystem> simulator(algos::ghz(4));
  simulator.run();
  const la::Vector dense = toDenseVector(simulator.package(), simulator.state());
  EXPECT_EQ(dense.dimension(), 16U);
  EXPECT_NEAR(dense.norm(), 1.0, 1e-12);
}

} // namespace
} // namespace qadd::dd
