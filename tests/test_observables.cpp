#include "qc/observables.hpp"

#include "algorithms/common.hpp"
#include "algorithms/gse.hpp"
#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qadd::qc {
namespace {

using dd::AlgebraicSystem;

TEST(PauliString, TextRoundTrip) {
  const PauliString pauli = PauliString::fromText("IXZY");
  ASSERT_EQ(pauli.factors.size(), 4U);
  EXPECT_EQ(pauli.factors[0], Pauli::I);
  EXPECT_EQ(pauli.factors[1], Pauli::X);
  EXPECT_EQ(pauli.factors[2], Pauli::Z);
  EXPECT_EQ(pauli.factors[3], Pauli::Y);
  EXPECT_EQ(pauli.toText(), "IXZY");
  EXPECT_THROW((void)PauliString::fromText("AB"), std::invalid_argument);
}

TEST(PauliString, MatrixStructure) {
  dd::Package<AlgebraicSystem> p(2);
  // ZZ is diagonal with entries +1,-1,-1,+1.
  const auto zz = makePauliString(p, PauliString::fromText("ZZ"));
  // (ZZ)^2 = I.
  EXPECT_EQ(p.multiply(zz, zz), p.makeIdentity());
  // tr(ZZ) = 0 exactly.
  EXPECT_TRUE(p.system().isZero(p.trace(zz)));
}

TEST(PauliString, ExpectationsOnBasisAndBellStates) {
  dd::Package<AlgebraicSystem> p(2);
  const auto zero = p.makeZeroState();
  // <00|ZI|00> = +1 exactly.
  EXPECT_TRUE(p.system().isOne(pauliExpectation(p, zero, PauliString::fromText("ZI"))));
  // Bell state: <phi+|ZZ|phi+> = 1, <phi+|ZI|phi+> = 0, <phi+|XX|phi+> = 1.
  Circuit bell(2);
  bell.h(0).cx(0, 1);
  const auto state = p.multiply(buildUnitary(p, bell), zero);
  EXPECT_TRUE(p.system().isOne(pauliExpectation(p, state, PauliString::fromText("ZZ"))));
  EXPECT_TRUE(p.system().isZero(pauliExpectation(p, state, PauliString::fromText("ZI"))));
  EXPECT_TRUE(p.system().isOne(pauliExpectation(p, state, PauliString::fromText("XX"))));
  EXPECT_TRUE(p.system().isZero(pauliExpectation(p, state, PauliString::fromText("XI"))));
}

TEST(PauliObservable, IsingEnergyOfEigenstatesIsExact) {
  // Build the GSE Hamiltonian as a Pauli observable and check that basis
  // eigenstates report exactly their classical eigenvalue.
  const algos::IsingHamiltonian hamiltonian = algos::makeMolecularInstance(3);
  PauliObservable observable;
  for (unsigned j = 0; j < 3; ++j) {
    std::string text = "III";
    text[j] = 'Z';
    observable.terms.push_back({hamiltonian.fields[j], PauliString::fromText(text)});
  }
  for (const auto& [j, k, strength] : hamiltonian.couplings) {
    std::string text = "III";
    text[static_cast<std::size_t>(j)] = 'Z';
    text[static_cast<std::size_t>(k)] = 'Z';
    observable.terms.push_back({strength, PauliString::fromText(text)});
  }
  dd::Package<AlgebraicSystem> p(3);
  for (const std::uint64_t eigenstate : {0ULL, 0b011ULL, 0b101ULL, 0b111ULL}) {
    // Prepare |eigenstate> (bit j of the value on qubit j).
    Circuit prep(3);
    for (Qubit q = 0; q < 3; ++q) {
      if ((eigenstate >> q) & 1ULL) {
        prep.x(q);
      }
    }
    const auto state = p.multiply(buildUnitary(p, prep), p.makeZeroState());
    EXPECT_NEAR(observable.expectation(p, state), hamiltonian.eigenvalue(eigenstate), 1e-14)
        << "eigenstate " << eigenstate;
  }
}

TEST(PauliObservable, SuperpositionAverages) {
  // On |+> the Z expectation is 0 and the X expectation is 1.
  dd::Package<AlgebraicSystem> p(1);
  Circuit plus(1);
  plus.h(0);
  const auto state = p.multiply(buildUnitary(p, plus), p.makeZeroState());
  PauliObservable z{{{1.0, PauliString::fromText("Z")}}};
  PauliObservable x{{{1.0, PauliString::fromText("X")}}};
  EXPECT_NEAR(z.expectation(p, state), 0.0, 1e-15);
  EXPECT_NEAR(x.expectation(p, state), 1.0, 1e-15);
}

TEST(PauliString, WidthMismatchThrows) {
  dd::Package<AlgebraicSystem> p(2);
  EXPECT_THROW((void)makePauliString(p, PauliString::fromText("Z")), std::invalid_argument);
}

} // namespace
} // namespace qadd::qc
