#include "algorithms/simon.hpp"

#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <set>

namespace qadd::algos {
namespace {

TEST(Simon, OracleIsTwoToOneWithPeriod) {
  for (const std::uint64_t secret : {0b101ULL, 0b010ULL, 0b111ULL, 0b100ULL}) {
    for (std::uint64_t x = 0; x < 8; ++x) {
      EXPECT_EQ(simonOracle(secret, x), simonOracle(secret, x ^ secret))
          << "f must be s-periodic";
    }
    // And 2-to-1: image size is 4 for 3 bits.
    std::set<std::uint64_t> image;
    for (std::uint64_t x = 0; x < 8; ++x) {
      image.insert(simonOracle(secret, x));
    }
    EXPECT_EQ(image.size(), 4U);
  }
}

TEST(Simon, CircuitIsClifford) {
  const qc::Circuit circuit = simon(4, 0b1010);
  EXPECT_TRUE(circuit.isCliffordTOnly());
  EXPECT_EQ(circuit.tCount(), 0U);
  EXPECT_EQ(circuit.qubits(), 8U);
}

TEST(Simon, OutputsAreOrthogonalToTheSecret) {
  for (const std::uint64_t secret : {0b011ULL, 0b110ULL, 0b100ULL}) {
    const qc::Qubit n = 3;
    qc::Simulator<dd::AlgebraicSystem> simulator(simon(n, secret));
    simulator.run();
    const auto amplitudes = simulator.package().amplitudes(simulator.state());
    // Input register = top n qubits of the index.
    for (std::size_t index = 0; index < amplitudes.size(); ++index) {
      if (std::abs(amplitudes[index]) < 1e-12) {
        continue;
      }
      const std::uint64_t yTopBits = index >> n;
      // Input qubit q carries bit q of y; the index packs qubit 0 as MSB, so
      // reverse to get y.
      std::uint64_t y = 0;
      for (qc::Qubit q = 0; q < n; ++q) {
        if ((yTopBits >> (n - 1 - q)) & 1ULL) {
          y |= 1ULL << q;
        }
      }
      EXPECT_EQ(std::popcount(y & secret) % 2, 0)
          << "y = " << y << " must satisfy y.s = 0 (secret " << secret << ")";
    }
  }
}

TEST(Simon, AllOrthogonalOutcomesAreEquallyLikely) {
  const std::uint64_t secret = 0b11;
  qc::Simulator<dd::AlgebraicSystem> simulator(simon(2, secret));
  simulator.run();
  const auto amplitudes = simulator.package().amplitudes(simulator.state());
  // y in {00, 11}: each with total probability 1/2 over the outputs.
  double p[4] = {0, 0, 0, 0};
  for (std::size_t index = 0; index < amplitudes.size(); ++index) {
    p[index >> 2] += std::norm(amplitudes[index]);
  }
  EXPECT_NEAR(p[0b00], 0.5, 1e-12);
  EXPECT_NEAR(p[0b11], 0.5, 1e-12); // index bits are qubit-0-first; y=11 symmetric
  EXPECT_NEAR(p[0b01], 0.0, 1e-12);
  EXPECT_NEAR(p[0b10], 0.0, 1e-12);
}

TEST(Simon, RejectsBadSecrets) {
  EXPECT_THROW((void)simon(3, 0), std::invalid_argument);
  EXPECT_THROW((void)simon(3, 0b1000), std::invalid_argument);
}

} // namespace
} // namespace qadd::algos
