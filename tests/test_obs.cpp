/// \file test_obs.cpp
/// Tests of the qadd::obs telemetry layer: operation-cache counters,
/// near-miss unification tracking in the ε-table, node gauges, the GC
/// report, per-kind cache clearing, the bit-width histogram of the
/// algebraic intern pool, and the Chrome-trace span tracer.
#include "algorithms/common.hpp"
#include "core/algebraic_system.hpp"
#include "core/numeric_system.hpp"
#include "core/package.hpp"
#include "eval/report.hpp"
#include "eval/trace.hpp"
#include "obs/deterministic.hpp"
#include "obs/exposition.hpp"
#include "obs/stats.hpp"
#include "obs/timeline.hpp"
#include "obs/tracer.hpp"
#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include <sys/wait.h>
#include <unistd.h>

namespace {

using namespace qadd;

using NumericPackage = dd::Package<dd::NumericSystem>;

dd::NumericSystem::Config tightConfig() {
  return {1e-12, dd::NumericSystem::Normalization::LeftmostNonzero};
}

TEST(ObsCounters, RepeatedMultiplyHitsTheCache) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "built with QADD_OBS=0";
  }
  NumericPackage package(4, tightConfig());
  const auto state = package.makeZeroState();
  const qc::Operation h{qc::GateKind::H, 0.0, 1, {}};
  const auto gate = qc::makeOperationDD(package, h);

  const auto first = package.multiply(gate, state);
  const obs::PackageStats before = package.counters();
  EXPECT_GT(before.mv.misses.value(), 0U);

  const auto second = package.multiply(gate, state);
  const obs::PackageStats after = package.counters();
  EXPECT_EQ(first, second);
  // The repeated top-level product is answered entirely from the mv cache:
  // hits increase, misses do not.
  EXPECT_GT(after.mv.hits.value(), before.mv.hits.value());
  EXPECT_EQ(after.mv.misses.value(), before.mv.misses.value());
}

TEST(ObsCounters, AddCacheAndUniqueTableCount) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "built with QADD_OBS=0";
  }
  // GHZ followed by Hadamards on the entangled state: the H products add two
  // non-terminal sub-vectors, exercising the vAdd cache (a bare GHZ ladder
  // never does — one partial product is always the zero vector, which
  // short-circuits add() before the cache).
  qc::Circuit circuit = algos::ghz(6);
  for (qc::Qubit q = 0; q < 6; ++q) {
    circuit.h(q);
  }
  qc::Simulator<dd::NumericSystem> simulator(circuit, tightConfig());
  simulator.run();
  const obs::PackageStats stats = simulator.package().stats();
  EXPECT_GT(stats.vAdd.lookups(), 0U);
  EXPECT_GT(stats.vUnique.lookups.value(), 0U);
  EXPECT_GT(stats.vUnique.hits.value(), 0U);
  EXPECT_GT(stats.mUnique.lookups.value(), 0U);
  EXPECT_GT(stats.nodeAllocations.value(), 0U);
  EXPECT_EQ(stats.weights.entries, simulator.package().system().distinctValues());
  EXPECT_FALSE(stats.weights.system.empty());
}

TEST(ObsCounters, NearMissUnificationFires) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "built with QADD_OBS=0";
  }
  num::ComplexTable table(1e-6);
  const auto a = table.lookup({0.5, 0.25});
  EXPECT_EQ(table.nearMissUnifications(), 0U);
  // Within ε but not bit-equal: unified onto the first entry and counted as
  // a near miss (the paper's silent accuracy-loss event).
  const auto b = table.lookup({0.5 + 1e-8, 0.25});
  EXPECT_EQ(a, b);
  EXPECT_EQ(table.nearMissUnifications(), 1U);
  // Bit-exact repeat: a hit, but not a near miss.
  const auto c = table.lookup({0.5, 0.25});
  EXPECT_EQ(a, c);
  EXPECT_EQ(table.nearMissUnifications(), 1U);
  // Far away: a fresh entry, no near miss.
  const auto d = table.lookup({0.75, 0.0});
  EXPECT_NE(a, d);
  EXPECT_EQ(table.nearMissUnifications(), 1U);
}

TEST(ObsCounters, NearMissCountsInExactModeSnaps) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "built with QADD_OBS=0";
  }
  // ε below the bit-exact threshold still snaps to the canonical 0/1 entries.
  num::ComplexTable table(1e-13);
  const auto one = table.lookup({1.0 + 1e-14, 0.0});
  EXPECT_EQ(one, table.oneRef());
  EXPECT_EQ(table.nearMissUnifications(), 1U);
}

TEST(ObsGauges, PeakNodesIsMonotoneAndBoundsFinal) {
  qc::Simulator<dd::NumericSystem> simulator(algos::ghz(6), tightConfig());
  std::size_t lastPeak = 0;
  while (simulator.step()) {
    const std::size_t peak = simulator.package().peakNodes();
    EXPECT_GE(peak, lastPeak); // monotone over the run
    lastPeak = peak;
  }
  EXPECT_GE(lastPeak, simulator.package().allocatedNodes());
  EXPECT_GE(lastPeak, simulator.stateNodes());
  const obs::PackageStats stats = simulator.package().stats();
  EXPECT_EQ(stats.peakNodes, lastPeak);
  EXPECT_EQ(stats.liveNodes, simulator.package().allocatedNodes());
}

TEST(ObsGauges, BucketOccupancyCoversAllEntries) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "built with QADD_OBS=0";
  }
  qc::Simulator<dd::NumericSystem> simulator(algos::ghz(5), tightConfig());
  simulator.run();
  const obs::PackageStats stats = simulator.package().stats();
  ASSERT_FALSE(stats.weights.bucketOccupancy.empty());
  std::uint64_t covered = 0;
  for (std::size_t k = 0; k < stats.weights.bucketOccupancy.size(); ++k) {
    covered += static_cast<std::uint64_t>(k) * stats.weights.bucketOccupancy[k];
  }
  // Every interned entry lives in exactly one bucket (the last bin is
  // clamped, so covered can only undercount if a bucket exceeds the clamp).
  EXPECT_GE(covered, 2U); // at least 0 and 1
  EXPECT_LE(covered, stats.weights.entries);
}

TEST(ObsGauges, AlgebraicBitWidthHistogram) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "built with QADD_OBS=0";
  }
  qc::Simulator<dd::AlgebraicSystem> simulator(algos::ghz(4));
  simulator.run();
  const obs::PackageStats stats = simulator.package().stats();
  ASSERT_FALSE(stats.weights.bitWidthHistogram.empty());
  std::uint64_t total = 0;
  for (const std::uint64_t count : stats.weights.bitWidthHistogram) {
    total += count;
  }
  EXPECT_EQ(total, stats.weights.entries);
  EXPECT_TRUE(stats.weights.bucketOccupancy.empty());
  EXPECT_EQ(stats.weights.nearMissUnifications, 0U);
}

TEST(GcReport, ReportsSweptNodesAndResetStatsClears) {
  NumericPackage package(5, tightConfig());
  auto state = package.makeZeroState();
  package.incRef(state);
  const qc::Operation h{qc::GateKind::H, 0.0, 2, {}};
  const auto gate = qc::makeOperationDD(package, h);
  const auto next = package.multiply(gate, state);
  package.incRef(next);
  package.decRef(state); // old state becomes garbage
  const std::size_t liveBefore = package.allocatedNodes();
  const dd::GcReport report = package.garbageCollect();
  EXPECT_EQ(report.liveBefore, liveBefore);
  EXPECT_EQ(report.liveAfter, package.allocatedNodes());
  EXPECT_EQ(report.swept, report.liveBefore - report.liveAfter);
  EXPECT_GE(report.seconds, 0.0);
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(package.counters().gc.runs.value(), 1U);
    EXPECT_EQ(package.counters().gc.nodesSwept.value(), report.swept);
    package.resetStats();
    EXPECT_EQ(package.counters().gc.runs.value(), 0U);
  }
}

TEST(CacheKind, PerKindClearOnlyDropsSelectedCache) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "built with QADD_OBS=0";
  }
  NumericPackage package(4, tightConfig());
  const auto state = package.makeZeroState();
  const qc::Operation h{qc::GateKind::H, 0.0, 1, {}};
  const auto gate = qc::makeOperationDD(package, h);
  const auto product = package.multiply(gate, state);
  (void)package.innerProduct(product, product);

  // Clearing only the inner cache leaves the mv cache warm: the repeated
  // product is a pure hit, no recomputation.
  package.clearCaches(dd::CacheKind::Inner);
  const auto mvHitsBefore = package.counters().mv.hits.value();
  const auto mvMissesBefore = package.counters().mv.misses.value();
  (void)package.multiply(gate, state);
  EXPECT_GT(package.counters().mv.hits.value(), mvHitsBefore);
  EXPECT_EQ(package.counters().mv.misses.value(), mvMissesBefore);

  // Clearing MV forces a recomputation — misses must increase.  (Hits may
  // too: the cache is keyed on node pairs, and a gate DD with shared
  // children can re-meet the same sub-product within the one recomputation.)
  package.clearCaches(dd::CacheKind::MV);
  const auto missesAfterClear = package.counters().mv.misses.value();
  (void)package.multiply(gate, state);
  EXPECT_GT(package.counters().mv.misses.value(), missesAfterClear);

  // Epoch semantics: a clear is an O(1) epoch bump, so cleared entries still
  // physically sit in their slots — but an outdated epoch must never serve a
  // hit, including across back-to-back clears.
  package.clearCaches(dd::CacheKind::MV);
  package.clearCaches(dd::CacheKind::MV);
  const auto missesAfterDoubleClear = package.counters().mv.misses.value();
  (void)package.multiply(gate, state);
  EXPECT_GT(package.counters().mv.misses.value(), missesAfterDoubleClear)
      << "stale-epoch entry served as a hit after clearing";
}

TEST(Tracer, SpansNestAndJsonIsWellFormed) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "built with QADD_OBS=0";
  }
  obs::Tracer tracer;
  tracer.setEnabled(true);
  {
    const auto outer = tracer.span("outer", "test");
    {
      const auto inner = tracer.span("inner", "test");
    }
    const auto sibling = tracer.span("sibling", "test");
  }
  ASSERT_EQ(tracer.events().size(), 3U);
  // Events are recorded at close time: inner, sibling, outer.
  const auto& inner = tracer.events()[0];
  const auto& sibling = tracer.events()[1];
  const auto& outer = tracer.events()[2];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.depth, 0U);
  EXPECT_EQ(inner.depth, 1U);
  EXPECT_EQ(sibling.depth, 1U);
  // Nesting: both children lie inside the parent's interval.
  for (const auto* child : {&inner, &sibling}) {
    EXPECT_GE(child->startUs, outer.startUs);
    EXPECT_LE(child->startUs + child->durationUs, outer.startUs + outer.durationUs + 1e-6);
  }
  // Siblings do not overlap.
  EXPECT_GE(sibling.startUs, inner.startUs + inner.durationUs - 1e-6);

  std::ostringstream os;
  tracer.writeJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  // Balanced braces/brackets => parses as JSON for our emitter's grammar
  // (no strings containing braces are emitted here).
  long braces = 0;
  long brackets = 0;
  for (const char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  obs::Tracer tracer;
  {
    const auto span = tracer.span("ignored", "test");
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(tracer.events().empty());
}

TEST(Tracer, SimulatorEmitsGateSpans) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "built with QADD_OBS=0";
  }
  auto& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.setEnabled(true);
  qc::Simulator<dd::NumericSystem> simulator(algos::ghz(3), tightConfig());
  simulator.run();
  tracer.setEnabled(false);
  bool sawGate = false;
  bool sawMv = false;
  for (const auto& event : tracer.events()) {
    sawGate = sawGate || event.name.starts_with("gate:");
    sawMv = sawMv || event.name == "mv";
  }
  EXPECT_TRUE(sawGate);
  EXPECT_TRUE(sawMv);
  tracer.clear();
}

TEST(TraceIntegration, TracePointsCarryTelemetryColumns) {
  const qc::Circuit circuit = algos::ghz(5);
  eval::TraceOptions options;
  options.sampleEvery = 2;
  const eval::SimulationTrace trace = eval::traceNumeric(circuit, 1e-12, nullptr, options);
  ASSERT_FALSE(trace.points.empty());
  std::size_t lastPeak = 0;
  for (const auto& point : trace.points) {
    EXPECT_GE(point.peakNodes, point.nodes);
    EXPECT_GE(point.peakNodes, lastPeak);
    lastPeak = point.peakNodes;
    EXPECT_GT(point.tableFill, 0U);
    if constexpr (obs::kEnabled) {
      EXPECT_GE(point.cacheHitRate, 0.0);
      EXPECT_LE(point.cacheHitRate, 1.0);
    }
  }
  EXPECT_EQ(trace.peakNodes, lastPeak);
  if constexpr (obs::kEnabled) {
    EXPECT_GT(trace.finalStats.mv.lookups(), 0U);
  }
}

TEST(TraceIntegration, GcEventsAreRecorded) {
  // Force frequent GC with a tiny threshold.
  qc::Simulator<dd::NumericSystem>::Options simOptions;
  simOptions.gcNodeThreshold = 1;
  qc::Simulator<dd::NumericSystem> simulator(algos::ghz(4), tightConfig(), simOptions);
  simulator.run();
  ASSERT_FALSE(simulator.gcEvents().empty());
  for (const auto& event : simulator.gcEvents()) {
    EXPECT_GT(event.gateIndex, 0U);
    EXPECT_LE(event.gateIndex, simulator.circuit().size());
    EXPECT_EQ(event.report.swept, event.report.liveBefore - event.report.liveAfter);
  }
}

TEST(Emitters, StatsTableJsonAndCsv) {
  qc::Simulator<dd::NumericSystem> simulator(algos::ghz(4), tightConfig());
  simulator.run();
  const obs::PackageStats stats = simulator.package().stats();

  std::ostringstream table;
  eval::printStatsTable(table, stats);
  EXPECT_NE(table.str().find("cache"), std::string::npos);
  EXPECT_NE(table.str().find("mv"), std::string::npos);
  EXPECT_NE(table.str().find("gc"), std::string::npos);

  std::ostringstream json;
  eval::writeStatsJson(json, stats);
  const std::string jsonStr = json.str();
  EXPECT_NE(jsonStr.find("\"caches\""), std::string::npos);
  EXPECT_NE(jsonStr.find("\"uniqueTables\""), std::string::npos);
  EXPECT_NE(jsonStr.find("\"weights\""), std::string::npos);
  long braces = 0;
  for (const char c : jsonStr) {
    braces += (c == '{') - (c == '}');
  }
  EXPECT_EQ(braces, 0);

  std::ostringstream csv;
  eval::writeStatsCsv(csv, stats);
  EXPECT_NE(csv.str().find("counter,value"), std::string::npos);
  EXPECT_NE(csv.str().find("cache.mv.hits,"), std::string::npos);
  EXPECT_NE(csv.str().find("unique.vector.lookups,"), std::string::npos);
}

TEST(Emitters, TraceCsvHasTelemetryColumns) {
  const qc::Circuit circuit = algos::ghz(3);
  eval::TraceOptions options;
  options.sampleEvery = 1;
  const eval::SimulationTrace trace = eval::traceNumeric(circuit, 1e-12, nullptr, options);
  std::ostringstream os;
  eval::writeCsv(os, {trace});
  EXPECT_NE(os.str().find("peaknodes,cachehitrate,tablefill"), std::string::npos);
}

/// Restores the deterministic-output switch on scope exit.
struct DeterministicGuard {
  explicit DeterministicGuard(bool value) { obs::setDeterministic(value); }
  ~DeterministicGuard() { obs::setDeterministic(false); }
};

TEST(Timeline, FinalPointSampleMatchesEndOfRunStats) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "built with QADD_OBS=0";
  }
  auto& timeline = obs::Timeline::global();
  timeline.clear();
  timeline.setEnabled(true);
  const qc::Circuit circuit = algos::ghz(5);
  eval::TraceOptions options;
  options.sampleEvery = 2;
  const eval::SimulationTrace trace = eval::traceNumeric(circuit, 1e-12, nullptr, options);
  timeline.setEnabled(false);

  const auto samples = timeline.samplesSnapshot();
  timeline.clear();
  std::size_t gateSamples = 0;
  const obs::Timeline::Sample* point = nullptr;
  for (const auto& sample : samples) {
    if (sample.kind == obs::Timeline::Kind::Gate) {
      ++gateSamples;
      EXPECT_EQ(sample.series, trace.label); // ScopedSeries context reached the simulator
      EXPECT_EQ(sample.epsilon, 1e-12);
    } else {
      point = &sample;
    }
  }
  EXPECT_EQ(gateSamples, circuit.size()); // one Gate sample per applied gate
  ASSERT_NE(point, nullptr);

  // The Point sample is taken right next to the finalStats snapshot, so its
  // gauges must agree with the --stats end-of-run counters exactly.
  const obs::PackageStats& stats = trace.finalStats;
  EXPECT_EQ(point->series, trace.label);
  EXPECT_EQ(point->liveNodes, stats.liveNodes);
  EXPECT_EQ(point->peakNodes, stats.peakNodes);
  EXPECT_EQ(point->arenaBytes, stats.arenaBytes);
  EXPECT_EQ(point->uniqueEntries, stats.vUnique.entries + stats.mUnique.entries);
  EXPECT_EQ(point->uniqueBuckets, stats.vUnique.buckets + stats.mUnique.buckets);
  EXPECT_EQ(point->uniqueCollisions,
            stats.vUnique.collisions.value() + stats.mUnique.collisions.value());
  EXPECT_EQ(point->cacheHitRate, stats.combinedCacheHitRate());
  EXPECT_EQ(point->gcRuns, stats.gc.runs.value());
  EXPECT_EQ(point->weightEntries, stats.weights.entries);
  EXPECT_EQ(point->gateIndex, circuit.size());
}

TEST(Timeline, RingDropsOldestAndCountsThem) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "built with QADD_OBS=0";
  }
  obs::Timeline timeline;
  timeline.setEnabled(true);
  timeline.setCapacity(4);
  for (std::size_t i = 0; i < 10; ++i) {
    obs::Timeline::Sample sample;
    sample.gateIndex = i;
    timeline.record(std::move(sample));
  }
  EXPECT_EQ(timeline.size(), 4U);
  EXPECT_EQ(timeline.dropped(), 6U);
  const auto samples = timeline.samplesSnapshot();
  ASSERT_EQ(samples.size(), 4U);
  // Chronological order with the oldest six gone: 6, 7, 8, 9.
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].gateIndex, 6 + i);
    EXPECT_GE(samples[i].tid, 1U); // record() stamps the dense thread id
  }
}

TEST(Timeline, DeterministicModeZeroesWallClockColumns) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "built with QADD_OBS=0";
  }
  obs::Timeline timeline;
  timeline.setEnabled(true);
  obs::Timeline::Sample sample;
  sample.series = "s";
  sample.kind = obs::Timeline::Kind::Point;
  sample.liveNodes = 7;
  sample.cacheHitRate = 0.5;
  timeline.record(std::move(sample));
  ASSERT_EQ(timeline.size(), 1U);

  const DeterministicGuard guard(true);
  ASSERT_TRUE(obs::deterministic());
  std::ostringstream csv;
  timeline.writeCsv(csv);
  // Last two columns (seconds) and cachehitrate are zeroed; structural
  // gauges survive.
  EXPECT_NE(csv.str().find("s,point"), std::string::npos);
  EXPECT_NE(csv.str().find(",7,"), std::string::npos);
  EXPECT_EQ(csv.str().find("0.5"), std::string::npos);
  std::ostringstream json;
  timeline.writeJson(json);
  EXPECT_NE(json.str().find("\"deterministic\":true"), std::string::npos);
  EXPECT_NE(json.str().find("\"cacheHitRate\":0,"), std::string::npos);
  EXPECT_NE(json.str().find("\"seconds\":0"), std::string::npos);
}

TEST(Timeline, CsvAndJsonAreWellFormed) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "built with QADD_OBS=0";
  }
  obs::Timeline timeline;
  timeline.setEnabled(true);
  obs::Timeline::Sample sample;
  sample.series = "numeric eps=0.001";
  sample.kind = obs::Timeline::Kind::Gate;
  sample.gateIndex = 3;
  timeline.record(std::move(sample));

  std::ostringstream csv;
  timeline.writeCsv(csv);
  EXPECT_NE(csv.str().find("series,kind,tid,gate,epsilon"), std::string::npos);
  EXPECT_NE(csv.str().find("numeric eps=0.001,gate,"), std::string::npos);

  std::ostringstream json;
  timeline.writeJson(json);
  const std::string text = json.str();
  EXPECT_NE(text.find("\"samples\":["), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"gate\""), std::string::npos);
  long braces = 0;
  long brackets = 0;
  for (const char c : text) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Exposition, PrometheusTextHasTypedFamilies) {
  qc::Simulator<dd::NumericSystem> simulator(algos::ghz(4), tightConfig());
  simulator.run();
  std::ostringstream os;
  obs::renderPrometheus(os, simulator.package().stats());
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE qadd_cache_hits_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE qadd_nodes_live gauge"), std::string::npos);
  EXPECT_NE(text.find("qadd_cache_hits_total{cache=\"mv\"}"), std::string::npos);
  EXPECT_NE(text.find("qadd_unique_entries{table=\"vector\"}"), std::string::npos);
  EXPECT_NE(text.find("qadd_arena_bytes"), std::string::npos);
  // Every exposed line is either a comment or "name[{labels}] value".
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_TRUE(line[0] == '#' || line.find(' ') != std::string::npos) << line;
  }
}

TEST(Exposition, LabelValuesEscapePerSpec) {
  // Backslash, double-quote and newline are the three characters the
  // exposition spec requires escaping inside label values — exactly what an
  // untrusted qadd_serve session name can smuggle in.
  EXPECT_EQ(obs::promEscapeLabel("plain-name_42"), "plain-name_42");
  EXPECT_EQ(obs::promEscapeLabel("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::promEscapeLabel("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(obs::promEscapeLabel("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(obs::promEscapeLabel("evil\"} 1\nqadd_fake_metric{x=\""),
            "evil\\\"} 1\\nqadd_fake_metric{x=\\\"");
  // An escaped value never contains a raw newline or an unescaped quote, so
  // one label value can never terminate its own line or sample.
  const std::string escaped = obs::promEscapeLabel("inject\"} 9\nbogus 1");
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '"') {
      ASSERT_GT(i, 0U);
      EXPECT_EQ(escaped[i - 1], '\\');
    }
  }
}

TEST(Exposition, TimelineOverloadAddsSamplerFamilies) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "built with QADD_OBS=0";
  }
  obs::Timeline timeline;
  timeline.setEnabled(true);
  obs::Timeline::Sample sample;
  sample.liveNodes = 11;
  timeline.record(std::move(sample));
  std::ostringstream os;
  obs::renderPrometheus(os, obs::PackageStats{}, timeline);
  EXPECT_NE(os.str().find("qadd_timeline_samples 1"), std::string::npos);
  EXPECT_NE(os.str().find("qadd_timeline_dropped_total 0"), std::string::npos);
  EXPECT_NE(os.str().find("qadd_timeline_last_live_nodes 11"), std::string::npos);
}

TEST(Tracer, AutoFlushSurvivesAbruptExit) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "built with QADD_OBS=0";
  }
  const std::string path = "trace_crash_test.json";
  std::remove(path.c_str());
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: flush after every finished span, then die mid-span without
    // running atexit handlers (_exit) — like a crash would.
    auto& tracer = obs::Tracer::global();
    tracer.clear();
    tracer.setEnabled(true);
    tracer.setAutoFlush(path, 1);
    {
      const auto finished = tracer.span("finished-span", "test");
    }
    const auto unfinished = tracer.span("unfinished-span", "test");
    _exit(42);
  }
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 42);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << "periodic flush did not write a partial trace";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(buffer.str().find("finished-span"), std::string::npos);
  // The span still open at _exit time was never recorded — a partial trace,
  // not a corrupted one.
  EXPECT_EQ(buffer.str().find("unfinished-span"), std::string::npos);
  std::remove(path.c_str());
}

} // namespace
