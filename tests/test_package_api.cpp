/// Tests of the higher-level Package API: state construction from amplitude
/// tables, fidelity, expectation values, and algebraic identities of the DD
/// operators (adjoint involution, multiplication associativity, Kronecker
/// structure).
#include "core/algebraic_system.hpp"
#include "core/export.hpp"
#include "core/numeric_system.hpp"
#include "core/package.hpp"
#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace qadd::dd {
namespace {

using NumPkg = Package<NumericSystem>;
using AlgPkg = Package<AlgebraicSystem>;

NumericSystem::Config exactConfig() {
  return {0.0, NumericSystem::Normalization::LeftmostNonzero};
}

TEST(PackageApi, MakeStateFromWeightsRoundTrips) {
  NumPkg p(3, exactConfig());
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<NumericSystem::Weight> weights;
  std::vector<std::complex<double>> reference;
  for (int i = 0; i < 8; ++i) {
    const std::complex<double> amplitude{d(rng), d(rng)};
    reference.push_back(amplitude);
    weights.push_back(p.system().fromComplex(amplitude));
  }
  const auto state = p.makeStateFromWeights(weights);
  const auto amplitudes = p.amplitudes(state);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(std::abs(amplitudes[i] - reference[i]), 0.0, 1e-12) << i;
  }
}

TEST(PackageApi, MakeStateFromWeightsCompressesUniformVectors) {
  NumPkg p(6, exactConfig());
  const std::vector<NumericSystem::Weight> uniform(64, p.system().one());
  const auto state = p.makeStateFromWeights(uniform);
  EXPECT_EQ(p.countNodes(state), 6U) << "a uniform vector is a product state";
}

TEST(PackageApi, MakeStateFromWeightsExactUniform) {
  AlgPkg p(4);
  std::vector<AlgebraicSystem::Weight> weights(16);
  // |++++> with exact 1/4 amplitudes.
  const auto quarter = p.system().intern(
      alg::QOmega{alg::ZOmega::one(), 4}); // 1/sqrt2^4 = 1/4
  for (auto& w : weights) {
    w = quarter;
  }
  const auto state = p.makeStateFromWeights(weights);
  // Must equal H^(x)4 |0000>.
  qc::Circuit c(4);
  c.h(0).h(1).h(2).h(3);
  const auto unitary = qc::buildUnitary(p, c);
  const auto viaGates = p.multiply(unitary, p.makeZeroState());
  EXPECT_EQ(state, viaGates);
}

TEST(PackageApi, ZeroAmplitudeBlocksBecomeStubs) {
  NumPkg p(2, exactConfig());
  const std::vector<NumericSystem::Weight> weights{p.system().one(), p.system().zero(),
                                                   p.system().zero(), p.system().zero()};
  const auto state = p.makeStateFromWeights(weights);
  EXPECT_EQ(state, p.makeZeroState());
}

TEST(PackageApi, FidelityBoundsAndValues) {
  AlgPkg p(2);
  const auto zero = p.makeZeroState();
  qc::Circuit bell(2);
  bell.h(0).cx(0, 1);
  const auto u = qc::buildUnitary(p, bell);
  const auto bellState = p.multiply(u, zero);
  EXPECT_NEAR(p.fidelity(zero, zero), 1.0, 1e-12);
  EXPECT_NEAR(p.fidelity(bellState, bellState), 1.0, 1e-12);
  EXPECT_NEAR(p.fidelity(zero, bellState), 0.5, 1e-12);
}

TEST(PackageApi, ExpectationValueOfPauliZ) {
  AlgPkg p(1);
  const auto z = [&] {
    const auto m = qc::algebraicMatrix(qc::GateKind::Z);
    const typename AlgPkg::GateMatrix weights{
        p.system().intern(m[0]), p.system().intern(m[1]), p.system().intern(m[2]),
        p.system().intern(m[3])};
    return p.makeGate(weights, 0);
  }();
  // <0|Z|0> = 1.
  EXPECT_NEAR(p.system().toComplex(p.expectationValue(z, p.makeZeroState())).real(), 1.0, 1e-12);
  // <+|Z|+> = 0.
  qc::Circuit c(1);
  c.h(0);
  const auto plus = p.multiply(qc::buildUnitary(p, c), p.makeZeroState());
  const auto expectation = p.system().toComplex(p.expectationValue(z, plus));
  EXPECT_NEAR(expectation.real(), 0.0, 1e-12);
  // Exactness: the algebraic expectation of Z on |+> is the exact value 0.
  EXPECT_TRUE(p.system().isZero(p.expectationValue(z, plus)));
}

TEST(PackageApi, TraceOfKnownMatrices) {
  AlgPkg p(3);
  // tr(I) = 8.
  EXPECT_EQ(p.system().value(p.trace(p.makeIdentity())), alg::QOmega{8});
  // tr(Z (x) I (x) I) = 0.
  const auto z = [&] {
    const auto m = qc::algebraicMatrix(qc::GateKind::Z);
    const typename AlgPkg::GateMatrix weights{
        p.system().intern(m[0]), p.system().intern(m[1]), p.system().intern(m[2]),
        p.system().intern(m[3])};
    return p.makeGate(weights, 0);
  }();
  EXPECT_TRUE(p.system().isZero(p.trace(z)));
  // tr(T on one qubit, identity elsewhere) = 4 * (1 + omega).
  const auto t = [&] {
    const auto m = qc::algebraicMatrix(qc::GateKind::T);
    const typename AlgPkg::GateMatrix weights{
        p.system().intern(m[0]), p.system().intern(m[1]), p.system().intern(m[2]),
        p.system().intern(m[3])};
    return p.makeGate(weights, 2);
  }();
  const alg::QOmega expected = (alg::QOmega::one() + alg::QOmega::omega()) * alg::QOmega{4};
  EXPECT_EQ(p.system().value(p.trace(t)), expected);
}

TEST(PackageApi, ProcessFidelityDetectsEquivalenceUpToPhase) {
  AlgPkg p(2);
  qc::Circuit xy(2);
  xy.y(0).x(0); // X*Y = i Z
  qc::Circuit z(2);
  z.z(0);
  qc::Circuit different(2);
  different.h(0);
  const auto uXy = qc::buildUnitary(p, xy);
  const auto uZ = qc::buildUnitary(p, z);
  const auto uH = qc::buildUnitary(p, different);
  EXPECT_NEAR(p.processFidelity(uXy, uZ), 1.0, 1e-12); // equal up to phase i
  EXPECT_LT(p.processFidelity(uZ, uH), 0.9);
  EXPECT_NEAR(p.processFidelity(uZ, uZ), 1.0, 1e-12);
}

TEST(PackageApi, EqualUpToGlobalPhase) {
  AlgPkg p(1);
  const auto gate = [&](qc::GateKind kind) {
    const auto m = qc::algebraicMatrix(kind);
    const typename AlgPkg::GateMatrix weights{
        p.system().intern(m[0]), p.system().intern(m[1]), p.system().intern(m[2]),
        p.system().intern(m[3])};
    return p.makeGate(weights, 0);
  };
  const auto z = gate(qc::GateKind::Z);
  // omega * Z differs from Z by a global phase only.
  const auto phased =
      typename AlgPkg::MEdge{z.node, p.system().mul(z.w, p.system().intern(alg::QOmega::omega()))};
  EXPECT_NE(z, phased);
  EXPECT_TRUE(p.equalUpToGlobalPhase(z, phased));
  // 2 * Z is NOT a phase multiple.
  const auto doubled =
      typename AlgPkg::MEdge{z.node, p.system().mul(z.w, p.system().intern(alg::QOmega{2}))};
  EXPECT_FALSE(p.equalUpToGlobalPhase(z, doubled));
  // Structurally different gates never match.
  EXPECT_FALSE(p.equalUpToGlobalPhase(z, gate(qc::GateKind::H)));
  EXPECT_TRUE(p.equalUpToGlobalPhase(z, z));
}

TEST(PackageApi, AdjointIsInvolution) {
  AlgPkg p(3);
  qc::Circuit c(3);
  c.h(0).t(1).cx(0, 2).v(2).cz(1, 2);
  const auto u = qc::buildUnitary(p, c);
  EXPECT_EQ(p.conjugateTranspose(p.conjugateTranspose(u)), u);
}

TEST(PackageApi, MultiplicationAssociativity) {
  AlgPkg p(2);
  const auto gate = [&](qc::GateKind kind, Qubit target) {
    const auto m = qc::algebraicMatrix(kind);
    const typename AlgPkg::GateMatrix weights{
        p.system().intern(m[0]), p.system().intern(m[1]), p.system().intern(m[2]),
        p.system().intern(m[3])};
    return p.makeGate(weights, target);
  };
  const auto a = gate(qc::GateKind::H, 0);
  const auto b = gate(qc::GateKind::T, 1);
  const auto c = gate(qc::GateKind::V, 0);
  EXPECT_EQ(p.multiply(p.multiply(a, b), c), p.multiply(a, p.multiply(b, c)));
}

TEST(PackageApi, KroneckerOfStatesMatchesDense) {
  NumPkg p(4, exactConfig());
  // Build |psi> on the top two qubits and |phi> on the bottom two, kron them.
  NumPkg top(4, exactConfig());
  // Top part: nodes at vars 0,1 ending in terminals; bottom: vars 2,3.
  const auto mkPair = [&p](Qubit firstVar, NumericSystem::Weight w0,
                           NumericSystem::Weight w1) {
    auto inner = p.makeVNode(firstVar + 1, {typename NumPkg::VEdge{nullptr, w0},
                                            typename NumPkg::VEdge{nullptr, w1}});
    return p.makeVNode(firstVar, {inner, inner});
  };
  const auto psi = mkPair(0, p.system().fromComplex({0.6, 0.0}),
                          p.system().fromComplex({0.8, 0.0}));
  const auto phi = mkPair(2, p.system().fromComplex({0.0, 1.0}),
                          p.system().fromComplex({1.0, 0.0}));
  const auto product = p.kronecker(psi, phi);
  const auto amplitudes = p.amplitudes(product);
  // amplitude(|a b c d>) = psi(ab) * phi(cd) with psi(ab) = (0.6, 0.8)[b] etc.
  for (std::size_t i = 0; i < 16; ++i) {
    const double top1 = ((i >> 2) & 1) != 0 ? 0.8 : 0.6;
    const std::complex<double> bottom1 =
        (i & 1) != 0 ? std::complex<double>{1.0, 0.0} : std::complex<double>{0.0, 1.0};
    EXPECT_NEAR(std::abs(amplitudes[i] - top1 * bottom1), 0.0, 1e-12) << i;
  }
}

TEST(PackageApi, DenseVectorExport) {
  AlgPkg p(2);
  qc::Circuit c(2);
  c.h(0).cx(0, 1);
  const auto state = p.multiply(qc::buildUnitary(p, c), p.makeZeroState());
  const la::Vector dense = toDenseVector(p, state);
  EXPECT_NEAR(dense[0].real(), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(dense[3].real(), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(dense.norm(), 1.0, 1e-12);
}

TEST(PackageApi, CountNodesVisitsSharedSubgraphsOnce) {
  // countNodes is an allocation-free visit-epoch traversal; a node reachable
  // along many paths must be counted once.  A uniform superposition is the
  // extreme case: every level shares one node, so 2^n paths reach the bottom
  // node of an n-qubit chain.
  NumPkg p(10, exactConfig());
  const std::vector<NumericSystem::Weight> uniform(1U << 10U, p.system().one());
  const auto state = p.makeStateFromWeights(uniform);
  EXPECT_EQ(p.countNodes(state), 10U);
  // Back-to-back traversals must agree: each gets a fresh visit epoch, so a
  // prior traversal's marks cannot leak into the next count.
  EXPECT_EQ(p.countNodes(state), 10U);
  // Sharing across two roots: counting one diagram then another that reuses
  // its nodes still counts the second one fully.  (The identity itself is
  // node-free under skip-level edges; a single-qubit gate makes a one-node
  // matrix diagram to interleave with the vector counts.)
  const auto identity = p.makeIdentity();
  EXPECT_EQ(p.countNodes(identity), 0U) << "identity is an implicit skip edge";
  const auto x = p.makeGate({p.system().zero(), p.system().one(), p.system().one(),
                             p.system().zero()},
                            4);
  EXPECT_EQ(p.countNodes(x), 1U);
  EXPECT_EQ(p.countNodes(state), 10U);
  EXPECT_EQ(p.countNodes(x), 1U);
}

} // namespace
} // namespace qadd::dd
