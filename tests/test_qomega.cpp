#include "algebraic/qomega.hpp"

#include <gtest/gtest.h>

#include <complex>
#include <random>

namespace qadd::alg {
namespace {

constexpr double kTol = 1e-9;

void expectComplexNear(std::complex<double> actual, std::complex<double> expected) {
  EXPECT_NEAR(actual.real(), expected.real(), kTol);
  EXPECT_NEAR(actual.imag(), expected.imag(), kTol);
}

QOmega randomQOmega(std::mt19937_64& rng) {
  std::uniform_int_distribution<std::int64_t> coefficient(-15, 15);
  std::uniform_int_distribution<long> exponent(-4, 6);
  std::uniform_int_distribution<std::int64_t> denominator(0, 6);
  return {ZOmega{BigInt{coefficient(rng)}, BigInt{coefficient(rng)}, BigInt{coefficient(rng)},
                 BigInt{coefficient(rng)}},
          exponent(rng), BigInt{2 * denominator(rng) + 1}};
}

// -- canonical form -------------------------------------------------------------

TEST(QOmega, ZeroCanonicalForm) {
  const QOmega zero{ZOmega::zero(), 5, BigInt{21}};
  EXPECT_TRUE(zero.isZero());
  EXPECT_EQ(zero.k(), 0);
  EXPECT_EQ(zero.den(), BigInt{1});
  EXPECT_EQ(zero, QOmega::zero());
}

TEST(QOmega, PaperExample6And7SmallestDenominatorExponent) {
  // sqrt2 can be written with k in {-1, 0, 1}; the canonical k is -1 with
  // numerator 1 (Example 7).
  const QOmega viaK0{ZOmega::sqrt2(), 0};
  const QOmega viaK1{ZOmega{BigInt{0}, BigInt{0}, BigInt{0}, BigInt{2}}, 1};
  const QOmega viaKminus1{ZOmega::one(), -1};
  EXPECT_EQ(viaK0, viaKminus1);
  EXPECT_EQ(viaK1, viaKminus1);
  EXPECT_EQ(viaK0.k(), -1);
  EXPECT_TRUE(viaK0.num().isOne());
}

TEST(QOmega, CanonicalFormSatisfiesMinimalityCriterion) {
  std::mt19937_64 rng(3);
  for (int i = 0; i < 500; ++i) {
    const QOmega x = randomQOmega(rng);
    if (x.isZero()) {
      continue;
    }
    // Criterion: a != c (mod 2) or b != d (mod 2) — not divisible by sqrt2.
    EXPECT_FALSE(x.num().divisibleBySqrt2())
        << "canonical numerator must not be divisible by sqrt2";
    EXPECT_FALSE(x.den().isNegative());
    EXPECT_TRUE(x.den().isOdd());
    // gcd(content, den) == 1.
    BigInt g = BigInt::gcd(BigInt::gcd(x.num().a(), x.num().b()),
                           BigInt::gcd(x.num().c(), x.num().d()));
    g = BigInt::gcd(g, x.den());
    EXPECT_TRUE(g.isOne());
  }
}

TEST(QOmega, CanonicalFormIsUniquePerValue) {
  std::mt19937_64 rng(5);
  for (int i = 0; i < 300; ++i) {
    const QOmega x = randomQOmega(rng);
    if (x.isZero()) {
      continue;
    }
    // Rescale numerator and denominator by the same junk and re-canonicalize.
    const BigInt junk{(static_cast<std::int64_t>(rng() % 9) + 1) * 3};
    const QOmega rescaled{x.num().scaled(junk), x.k(), x.den() * junk};
    EXPECT_EQ(rescaled, x);
    EXPECT_EQ(rescaled.hash(), x.hash());
    // Multiply numerator by sqrt2 and bump k.
    const QOmega shifted{x.num().timesSqrt2(), x.k() + 1, x.den()};
    EXPECT_EQ(shifted, x);
    // Multiply numerator by 2 and bump k twice.
    const QOmega doubled{x.num().scaled(BigInt{2}), x.k() + 2, x.den()};
    EXPECT_EQ(doubled, x);
  }
}

TEST(QOmega, IntegersGetNegativeExponent) {
  // 4 = sqrt2^4, canonical numerator 1, k = -4.
  const QOmega four{4};
  EXPECT_EQ(four.k(), -4);
  EXPECT_TRUE(four.num().isOne());
  expectComplexNear(four.toComplex(), {4.0, 0.0});
}

TEST(QOmega, Constants) {
  expectComplexNear(QOmega::invSqrt2().toComplex(), {1.0 / std::sqrt(2.0), 0.0});
  EXPECT_EQ(QOmega::invSqrt2().k(), 1);
  expectComplexNear(QOmega::omegaPower(3).toComplex(), std::polar(1.0, 3 * M_PI / 4));
  expectComplexNear(QOmega::omegaPower(-1).toComplex(), std::polar(1.0, -M_PI / 4));
  EXPECT_EQ(QOmega::omegaPower(8), QOmega::one());
  EXPECT_EQ(QOmega::omegaPower(4), -QOmega::one());
}

// -- arithmetic -------------------------------------------------------------------

TEST(QOmega, FieldAxioms) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 300; ++i) {
    const QOmega x = randomQOmega(rng);
    const QOmega y = randomQOmega(rng);
    const QOmega z = randomQOmega(rng);
    EXPECT_EQ((x + y) + z, x + (y + z));
    EXPECT_EQ((x * y) * z, x * (y * z));
    EXPECT_EQ(x * (y + z), x * y + x * z);
    EXPECT_EQ(x + y, y + x);
    EXPECT_EQ(x * y, y * x);
    EXPECT_EQ(x - x, QOmega::zero());
    if (!x.isZero()) {
      EXPECT_EQ(x * x.inverse(), QOmega::one());
      EXPECT_EQ(x / x, QOmega::one());
    }
  }
}

TEST(QOmega, ArithmeticMatchesComplexDoubles) {
  std::mt19937_64 rng(9);
  for (int i = 0; i < 300; ++i) {
    const QOmega x = randomQOmega(rng);
    const QOmega y = randomQOmega(rng);
    expectComplexNear((x + y).toComplex(), x.toComplex() + y.toComplex());
    expectComplexNear((x * y).toComplex(), x.toComplex() * y.toComplex());
    if (!y.isZero()) {
      expectComplexNear((x / y).toComplex(), x.toComplex() / y.toComplex());
    }
  }
}

TEST(QOmega, PaperExample8Inverse) {
  // z = 1 + i sqrt2; N(z) = 3; 1/z = (1 - i sqrt2)/3.
  const QOmega z = QOmega::one() + QOmega::imaginaryUnit() * QOmega::sqrt2();
  const QOmega inverse = z.inverse();
  EXPECT_EQ(inverse.den(), BigInt{3});
  EXPECT_EQ(inverse, (QOmega::one() - QOmega::imaginaryUnit() * QOmega::sqrt2()) / QOmega{3});
  expectComplexNear(inverse.toComplex(), 1.0 / z.toComplex());
}

TEST(QOmega, InverseOfZeroThrows) {
  EXPECT_THROW(QOmega::zero().inverse(), std::domain_error);
  EXPECT_THROW(QOmega::one() / QOmega::zero(), std::domain_error);
}

TEST(QOmega, DyadicClosure) {
  // D[omega] (den == 1) is closed under + and *; only division leaves it.
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<std::int64_t> c(-9, 9);
  for (int i = 0; i < 200; ++i) {
    const QOmega x{ZOmega{BigInt{c(rng)}, BigInt{c(rng)}, BigInt{c(rng)}, BigInt{c(rng)}},
                   static_cast<long>(rng() % 5)};
    const QOmega y{ZOmega{BigInt{c(rng)}, BigInt{c(rng)}, BigInt{c(rng)}, BigInt{c(rng)}},
                   static_cast<long>(rng() % 5)};
    EXPECT_TRUE(x.isDyadic());
    EXPECT_TRUE((x + y).isDyadic());
    EXPECT_TRUE((x * y).isDyadic());
  }
  // 1/3 is not dyadic.
  EXPECT_FALSE((QOmega{1} / QOmega{3}).isDyadic());
}

TEST(QOmega, ConjugationProperties) {
  std::mt19937_64 rng(13);
  for (int i = 0; i < 200; ++i) {
    const QOmega x = randomQOmega(rng);
    EXPECT_EQ(x.conj().conj(), x);
    expectComplexNear(x.conj().toComplex(), std::conj(x.toComplex()));
    // |x|^2 is real and non-negative.
    const QOmega magnitude = x.squaredMagnitude();
    EXPECT_NEAR(magnitude.toComplex().imag(), 0.0, kTol);
    EXPECT_GE(magnitude.toComplex().real(), -kTol);
  }
}

TEST(QOmega, HadamardEntryAlgebra) {
  // (1/sqrt2)^2 = 1/2; H^2 = I boils down to such identities.
  const QOmega h = QOmega::invSqrt2();
  EXPECT_EQ(h * h + h * h, QOmega::one());
  EXPECT_EQ(h * h - h * h, QOmega::zero());
  // T^8 = I: omega^8 = 1.
  QOmega t = QOmega::one();
  for (int i = 0; i < 8; ++i) {
    t *= QOmega::omega();
  }
  EXPECT_EQ(t, QOmega::one());
}

TEST(QOmega, ToComplexHandlesHugeCoefficients) {
  // (2^400 + 1) / 2^400 ~= 1 without overflow.
  const QOmega x{ZOmega{pow2(400) + BigInt{1}}, 0, BigInt{1}};
  const QOmega y{ZOmega{BigInt{1}}, -800, BigInt{1}}; // sqrt2^800 = 2^400
  const QOmega ratio = x / y;
  EXPECT_NEAR(ratio.toComplex().real(), 1.0, 1e-12);
  EXPECT_NEAR(ratio.toComplex().imag(), 0.0, 1e-12);
}

TEST(QOmega, ToStringSmoke) {
  EXPECT_EQ(QOmega::zero().toString(), "0");
  EXPECT_EQ(QOmega::one().toString(), "1");
  EXPECT_EQ(QOmega::invSqrt2().toString(), "(1)/(sqrt2^1)");
  EXPECT_EQ((QOmega{1} / QOmega{3}).toString(), "(1)/(3)");
}

TEST(QOmega, MaxBitsTracksGrowth) {
  QOmega x = QOmega::one() + QOmega::omega() * QOmega{3};
  std::size_t previous = x.maxBits();
  for (int i = 0; i < 20; ++i) {
    x *= x;
    EXPECT_GE(x.maxBits(), previous);
    previous = x.maxBits();
  }
  EXPECT_GT(previous, 100U); // repeated squaring explodes the coefficients
}

TEST(QOmega, DensityApproximationConverges) {
  // Section IV-A: D[omega] is dense in C.  The constructive approximation
  // must converge with the requested resolution.
  std::mt19937_64 rng(21);
  std::uniform_real_distribution<double> d(-2.0, 2.0);
  for (int i = 0; i < 50; ++i) {
    const std::complex<double> target{d(rng), d(rng)};
    for (const unsigned bits : {4U, 10U, 20U, 40U}) {
      const QOmega approximation = QOmega::approximate(target, bits);
      const double tolerance = std::ldexp(1.5, -static_cast<int>(bits));
      EXPECT_LE(std::abs(approximation.toComplex() - target), tolerance)
          << "bits=" << bits;
    }
  }
  // Exactly representable inputs round-trip exactly.
  const QOmega expected{ZOmega{BigInt{0}, BigInt{-64}, BigInt{0}, BigInt{128}}, 16};
  EXPECT_EQ(QOmega::approximate({0.5, -0.25}, 8), expected);
  EXPECT_THROW((void)QOmega::approximate({1.0, 0.0}, 5000), std::invalid_argument);
}

/// Parameterized: powers of unit values stay exactly on the unit circle.
class QOmegaUnitPowers : public ::testing::TestWithParam<int> {};

TEST_P(QOmegaUnitPowers, OmegaPowersHaveUnitMagnitude) {
  const QOmega u = QOmega::omegaPower(GetParam());
  EXPECT_EQ(u * u.conj(), QOmega::one());
}

INSTANTIATE_TEST_SUITE_P(AllPowers, QOmegaUnitPowers, ::testing::Range(-8, 9));

} // namespace
} // namespace qadd::alg
