#include "core/dd_node.hpp"
#include "core/memory_manager.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace qadd::dd {
namespace {

using TestNode = Node<std::uint32_t, 2>;
using Manager = MemoryManager<TestNode>;

TEST(MemoryManager, StartsEmpty) {
  Manager mem;
  EXPECT_EQ(mem.inUse(), 0U);
  EXPECT_EQ(mem.available(), 0U);
  EXPECT_EQ(mem.allocatedTotal(), 0U);
  EXPECT_EQ(mem.chunkCount(), 0U);
}

TEST(MemoryManager, GetBumpsInUse) {
  Manager mem;
  TestNode* a = mem.get();
  TestNode* b = mem.get();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(mem.inUse(), 2U);
  EXPECT_EQ(mem.chunkCount(), 1U);
}

TEST(MemoryManager, ChunkGrowthKeepsEarlierAddressesStable) {
  // Addresses handed out must never move: the unique tables key on node
  // pointers and edges store them directly.
  Manager mem;
  const std::size_t total = Manager::kDefaultInitialChunkSize * 4;
  std::vector<TestNode*> nodes;
  nodes.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    nodes.push_back(mem.get());
    nodes.back()->var = static_cast<std::uint32_t>(i);
  }
  EXPECT_GT(mem.chunkCount(), 1U) << "growth should have allocated further chunks";
  EXPECT_EQ(mem.inUse(), total);
  // Every node still holds the value written when it was allocated, at the
  // same address.
  for (std::size_t i = 0; i < total; ++i) {
    EXPECT_EQ(nodes[i]->var, static_cast<std::uint32_t>(i));
  }
  // All addresses distinct.
  std::unordered_set<const TestNode*> distinct(nodes.begin(), nodes.end());
  EXPECT_EQ(distinct.size(), total);
}

TEST(MemoryManager, FreeListReusesReturnedNodes) {
  Manager mem;
  TestNode* a = mem.get();
  TestNode* b = mem.get();
  const std::size_t allocatedAfterTwo = mem.allocatedTotal();
  mem.free(b);
  mem.free(a);
  EXPECT_EQ(mem.inUse(), 0U);
  EXPECT_EQ(mem.available(), 2U);
  // LIFO reuse: the most recently freed node comes back first, and no fresh
  // slots are consumed.
  EXPECT_EQ(mem.get(), a);
  EXPECT_EQ(mem.get(), b);
  EXPECT_EQ(mem.allocatedTotal(), allocatedAfterTwo);
  EXPECT_EQ(mem.inUse(), 2U);
}

TEST(MemoryManager, AvailableCountsOnlyFreedNodes) {
  Manager mem;
  TestNode* node = mem.get();
  EXPECT_EQ(mem.available(), 0U); // chunk tail capacity is not "available"
  mem.free(node);
  EXPECT_EQ(mem.available(), 1U);
}

TEST(MemoryManager, ChurnStaysWithinOneChunk) {
  // Alternating get/free must not grow the arena: the free list absorbs the
  // churn (this is what makes GC sweeps cheap to recover from).
  Manager mem;
  for (int round = 0; round < 10000; ++round) {
    TestNode* node = mem.get();
    mem.free(node);
  }
  EXPECT_EQ(mem.chunkCount(), 1U);
  EXPECT_EQ(mem.inUse(), 0U);
}

} // namespace
} // namespace qadd::dd
