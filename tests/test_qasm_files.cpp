/// Loads the shipped OpenQASM benchmark files end to end: parse -> simulate
/// (both flavors where exactly representable) -> verify known amplitudes and
/// invariants.
#include "qc/qasm.hpp"
#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#ifndef QADD_BENCHMARKS_DIR
#define QADD_BENCHMARKS_DIR "benchmarks"
#endif

namespace qadd::qc {
namespace {

std::string slurp(const std::string& name) {
  std::ifstream in(std::string{QADD_BENCHMARKS_DIR} + "/" + name);
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(QasmFiles, Bell) {
  const Circuit circuit = fromQasm(slurp("bell.qasm"));
  EXPECT_EQ(circuit.qubits(), 2U);
  Simulator<dd::AlgebraicSystem> simulator(circuit);
  simulator.run();
  const auto amplitudes = simulator.package().amplitudes(simulator.state());
  EXPECT_NEAR(amplitudes[0].real(), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(amplitudes[3].real(), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(QasmFiles, Ghz5) {
  const Circuit circuit = fromQasm(slurp("ghz5.qasm"));
  Simulator<dd::AlgebraicSystem> simulator(circuit);
  simulator.run();
  EXPECT_EQ(simulator.stateNodes(), 9U); // 2n - 1
  const auto amplitudes = simulator.package().amplitudes(simulator.state());
  EXPECT_NEAR(std::abs(amplitudes[0]), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(amplitudes[31]), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(QasmFiles, Qft4MatchesGenerator) {
  // The hand-written QASM QFT must equal our generator's circuit as a
  // unitary (numeric check with a tolerance: angle literals go through
  // the expression parser).
  const Circuit fromFile = fromQasm(slurp("qft4.qasm"));
  dd::Package<dd::NumericSystem> package(4,
                                         {1e-10, dd::NumericSystem::Normalization::LeftmostNonzero});
  const auto uFile = buildUnitary(package, fromFile);
  // Compare against our algos::qft via a fresh parse of its text (avoid
  // include cycles): simulate a basis state under both.
  Simulator<dd::NumericSystem> simulator(fromFile, {1e-12});
  simulator.run();
  const auto amplitudes = simulator.package().amplitudes(simulator.state());
  for (const auto& amplitude : amplitudes) {
    EXPECT_NEAR(std::abs(amplitude), 0.25, 1e-9) << "QFT of |0000> is uniform";
  }
  (void)uFile;
}

TEST(QasmFiles, ToffoliChainComputesAnds) {
  const Circuit circuit = fromQasm(slurp("toffoli_chain.qasm"));
  Simulator<dd::AlgebraicSystem> simulator(circuit);
  simulator.run();
  // Inputs q0=q1=1 -> q3 = 1; q2=1 -> q4 = q2 AND q3 = 1: state |11111>.
  const auto amplitudes = simulator.package().amplitudes(simulator.state());
  EXPECT_NEAR(std::abs(amplitudes[0b11111]), 1.0, 1e-12);
}

TEST(QasmFiles, CliffordTMixIsExact) {
  const Circuit circuit = fromQasm(slurp("clifford_t_mix.qasm"));
  EXPECT_TRUE(circuit.isCliffordTOnly());
  Simulator<dd::AlgebraicSystem> simulator(circuit);
  simulator.run();
  const auto norm = simulator.package().innerProduct(simulator.state(), simulator.state());
  EXPECT_TRUE(simulator.package().system().isOne(norm));
}

} // namespace
} // namespace qadd::qc
