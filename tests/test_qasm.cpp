#include "qc/qasm.hpp"

#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qadd::qc {
namespace {

TEST(Qasm, ParseBasicProgram) {
  const std::string source = R"(
    OPENQASM 2.0;
    include "qelib1.inc";
    qreg q[3];
    creg c[3];
    h q[0];
    cx q[0], q[1];
    ccx q[0], q[1], q[2];
    t q[2];
    measure q[0] -> c[0];
  )";
  const Circuit circuit = fromQasm(source);
  EXPECT_EQ(circuit.qubits(), 3U);
  ASSERT_EQ(circuit.size(), 4U); // measure is skipped
  EXPECT_EQ(circuit.operations()[0].kind, GateKind::H);
  EXPECT_EQ(circuit.operations()[1].controls.size(), 1U);
  EXPECT_EQ(circuit.operations()[2].controls.size(), 2U);
  EXPECT_EQ(circuit.operations()[3].kind, GateKind::T);
}

TEST(Qasm, ParseAngles) {
  const Circuit circuit = fromQasm(
      "OPENQASM 2.0; qreg q[1]; rz(pi/4) q[0]; u1(-pi/2) q[0]; rx(0.125) q[0]; ry(3*pi/8) q[0];");
  ASSERT_EQ(circuit.size(), 4U);
  EXPECT_NEAR(circuit.operations()[0].angle, M_PI / 4, 1e-15);
  EXPECT_EQ(circuit.operations()[1].kind, GateKind::Phase);
  EXPECT_NEAR(circuit.operations()[1].angle, -M_PI / 2, 1e-15);
  EXPECT_NEAR(circuit.operations()[2].angle, 0.125, 1e-15);
  EXPECT_NEAR(circuit.operations()[3].angle, 3 * M_PI / 8, 1e-15);
}

TEST(Qasm, ParseComments) {
  const Circuit circuit = fromQasm("OPENQASM 2.0; // header\nqreg q[2]; // reg\nh q[0]; // gate\n");
  EXPECT_EQ(circuit.size(), 1U);
}

TEST(Qasm, MultipleRegistersConcatenate) {
  const Circuit circuit = fromQasm("OPENQASM 2.0; qreg a[2]; qreg b[2]; x a[1]; x b[0];");
  EXPECT_EQ(circuit.qubits(), 4U);
  EXPECT_EQ(circuit.operations()[0].target, 1U);
  EXPECT_EQ(circuit.operations()[1].target, 2U);
}

TEST(Qasm, SwapAndControlledPhase) {
  const Circuit circuit = fromQasm("OPENQASM 2.0; qreg q[2]; swap q[0], q[1]; cu1(pi/8) q[0], q[1];");
  EXPECT_EQ(circuit.size(), 4U); // swap = 3 CNOTs + the cu1
  EXPECT_EQ(circuit.operations()[3].kind, GateKind::Phase);
  EXPECT_EQ(circuit.operations()[3].controls.size(), 1U);
}

TEST(Qasm, RejectsMalformedInput) {
  EXPECT_THROW((void)fromQasm("OPENQASM 2.0; h q[0];"), std::invalid_argument); // no qreg
  EXPECT_THROW((void)fromQasm("OPENQASM 2.0; qreg q[2]; bogus q[0];"), std::invalid_argument);
  EXPECT_THROW((void)fromQasm("OPENQASM 2.0; qreg q[2]; h q[0]"), std::invalid_argument); // missing ;
  EXPECT_THROW((void)fromQasm("OPENQASM 2.0; qreg q[2]; cx q[0];"), std::invalid_argument);
  EXPECT_THROW((void)fromQasm("OPENQASM 2.0; qreg q[2]; h r[0];"), std::invalid_argument);
  EXPECT_THROW((void)fromQasm("OPENQASM 2.0; qreg q[1]; rz(pi/) q[0];"), std::invalid_argument);
}

TEST(Qasm, RoundTripPreservesSemantics) {
  Circuit original(3, "roundtrip");
  original.h(0).cx(0, 1).t(1).ccx(0, 1, 2).rz(0.7, 2).phase(-0.3, 0).cz(1, 2);
  const Circuit parsed = fromQasm(toQasm(original));
  ASSERT_EQ(parsed.qubits(), original.qubits());
  // Compare semantics via exact/numeric simulation (textual forms differ:
  // u1 vs phase naming etc.).
  dd::Package<dd::NumericSystem> p1(3, {0.0, dd::NumericSystem::Normalization::LeftmostNonzero});
  const auto u1 = buildUnitary(p1, original);
  const auto u2 = buildUnitary(p1, parsed);
  EXPECT_EQ(u1, u2);
}

TEST(Qasm, EmitRejectsInexpressibleGates) {
  Circuit negative(2);
  negative.controlled(GateKind::X, 1, {{0, false}});
  EXPECT_THROW((void)toQasm(negative), std::invalid_argument);
  Circuit vGate(1);
  vGate.v(0);
  EXPECT_THROW((void)toQasm(vGate), std::invalid_argument);
  Circuit mcx(4);
  mcx.mcx({0, 1, 2}, 3);
  EXPECT_THROW((void)toQasm(mcx), std::invalid_argument);
}

TEST(Qasm, EmitContainsHeaderAndGates) {
  Circuit c(2);
  c.h(0).cx(0, 1);
  const std::string qasm = toQasm(c);
  EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(qasm.find("qreg q[2];"), std::string::npos);
  EXPECT_NE(qasm.find("h q[0];"), std::string::npos);
  EXPECT_NE(qasm.find("cx q[0], q[1];"), std::string::npos);
}

} // namespace
} // namespace qadd::qc
