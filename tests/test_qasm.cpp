#include "qc/qasm.hpp"

#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qadd::qc {
namespace {

TEST(Qasm, ParseBasicProgram) {
  const std::string source = R"(
    OPENQASM 2.0;
    include "qelib1.inc";
    qreg q[3];
    creg c[3];
    h q[0];
    cx q[0], q[1];
    ccx q[0], q[1], q[2];
    t q[2];
    measure q[0] -> c[0];
  )";
  const Circuit circuit = fromQasm(source);
  EXPECT_EQ(circuit.qubits(), 3U);
  ASSERT_EQ(circuit.size(), 4U); // measure is skipped
  EXPECT_EQ(circuit.operations()[0].kind, GateKind::H);
  EXPECT_EQ(circuit.operations()[1].controls.size(), 1U);
  EXPECT_EQ(circuit.operations()[2].controls.size(), 2U);
  EXPECT_EQ(circuit.operations()[3].kind, GateKind::T);
}

TEST(Qasm, ParseAngles) {
  const Circuit circuit = fromQasm(
      "OPENQASM 2.0; qreg q[1]; rz(pi/4) q[0]; u1(-pi/2) q[0]; rx(0.125) q[0]; ry(3*pi/8) q[0];");
  ASSERT_EQ(circuit.size(), 4U);
  EXPECT_NEAR(circuit.operations()[0].angle, M_PI / 4, 1e-15);
  EXPECT_EQ(circuit.operations()[1].kind, GateKind::Phase);
  EXPECT_NEAR(circuit.operations()[1].angle, -M_PI / 2, 1e-15);
  EXPECT_NEAR(circuit.operations()[2].angle, 0.125, 1e-15);
  EXPECT_NEAR(circuit.operations()[3].angle, 3 * M_PI / 8, 1e-15);
}

TEST(Qasm, ParseComments) {
  const Circuit circuit = fromQasm("OPENQASM 2.0; // header\nqreg q[2]; // reg\nh q[0]; // gate\n");
  EXPECT_EQ(circuit.size(), 1U);
}

TEST(Qasm, MultipleRegistersConcatenate) {
  const Circuit circuit = fromQasm("OPENQASM 2.0; qreg a[2]; qreg b[2]; x a[1]; x b[0];");
  EXPECT_EQ(circuit.qubits(), 4U);
  EXPECT_EQ(circuit.operations()[0].target, 1U);
  EXPECT_EQ(circuit.operations()[1].target, 2U);
}

TEST(Qasm, SwapAndControlledPhase) {
  const Circuit circuit = fromQasm("OPENQASM 2.0; qreg q[2]; swap q[0], q[1]; cu1(pi/8) q[0], q[1];");
  EXPECT_EQ(circuit.size(), 4U); // swap = 3 CNOTs + the cu1
  EXPECT_EQ(circuit.operations()[3].kind, GateKind::Phase);
  EXPECT_EQ(circuit.operations()[3].controls.size(), 1U);
}

TEST(Qasm, RejectsMalformedInput) {
  // ParseError derives from std::invalid_argument, so the legacy catch type
  // still works for every malformed construct.
  EXPECT_THROW((void)fromQasm("OPENQASM 2.0; h q[0];"), std::invalid_argument); // no qreg
  EXPECT_THROW((void)fromQasm("OPENQASM 2.0; qreg q[2]; bogus q[0];"), std::invalid_argument);
  EXPECT_THROW((void)fromQasm("OPENQASM 2.0; qreg q[2]; h q[0]"), std::invalid_argument); // missing ;
  EXPECT_THROW((void)fromQasm("OPENQASM 2.0; qreg q[2]; cx q[0];"), std::invalid_argument);
  EXPECT_THROW((void)fromQasm("OPENQASM 2.0; qreg q[2]; h r[0];"), std::invalid_argument);
  EXPECT_THROW((void)fromQasm("OPENQASM 2.0; qreg q[1]; rz(pi/) q[0];"), std::invalid_argument);
  EXPECT_THROW((void)fromQasm("OPENQASM 2.0; qreg q[2]; h q[7];"), ParseError); // out of range
  EXPECT_THROW((void)fromQasm("OPENQASM 2.0; qreg q[x];"), ParseError); // bad width
  // Huge literals must surface as ParseError, not escape as the bare
  // std::out_of_range that stoul/stod throw (nor wrap through the Qubit cast).
  EXPECT_THROW((void)fromQasm("OPENQASM 2.0; qreg q[99999999999999999999];"), ParseError);
  EXPECT_THROW((void)fromQasm("OPENQASM 2.0; qreg q[4294967299];"), ParseError); // 2^32 + 3
  EXPECT_THROW((void)fromQasm("OPENQASM 2.0; qreg q[2]; h q[18446744073709551617];"), ParseError);
  EXPECT_THROW((void)fromQasm("OPENQASM 2.0; qreg q[1]; rz(1e999) q[0];"), ParseError);
}

/// Catch `body`'s ParseError and return it (fails the test if none is thrown).
template <class Body> ParseError capture(Body&& body) {
  try {
    body();
  } catch (const ParseError& error) {
    return error;
  }
  ADD_FAILURE() << "expected a qasm ParseError";
  return ParseError(0, 0, "", "no error thrown");
}

TEST(Qasm, ParseErrorCarriesPositionAndToken) {
  // Line 3, the "bogus" statement starts at column 1.
  const auto unsupported = capture([] {
    (void)fromQasm("OPENQASM 2.0;\nqreg q[2];\nbogus q[0];\n");
  });
  EXPECT_EQ(unsupported.line(), 3U);
  EXPECT_EQ(unsupported.column(), 1U);
  EXPECT_EQ(unsupported.token(), "bogus");
  EXPECT_NE(std::string(unsupported.what()).find("qasm:3:1"), std::string::npos);
  EXPECT_NE(std::string(unsupported.what()).find("unsupported gate"), std::string::npos);

  // Unknown register: the token is the register name, at its own column.
  const auto unknown = capture([] {
    (void)fromQasm("OPENQASM 2.0;\nqreg q[2];\ncx q[0], r[1];\n");
  });
  EXPECT_EQ(unknown.line(), 3U);
  EXPECT_EQ(unknown.column(), 10U);
  EXPECT_EQ(unknown.token(), "r");

  // Expression errors point into the argument list.
  const auto expression = capture([] {
    (void)fromQasm("OPENQASM 2.0;\nqreg q[1];\nrz(pi/#) q[0];\n");
  });
  EXPECT_EQ(expression.line(), 3U);
  EXPECT_GE(expression.column(), 4U);

  // Comments are blanked, not deleted, so positions survive comment lines.
  const auto afterComment = capture([] {
    (void)fromQasm("OPENQASM 2.0; // header comment\nqreg q[1];\n// another\n  h q[3];\n");
  });
  EXPECT_EQ(afterComment.line(), 4U);
  EXPECT_EQ(afterComment.column(), 5U);
  EXPECT_EQ(afterComment.token(), "q[3]");

  // Missing terminator reports the position of the dangling statement.
  const auto missingSemicolon = capture([] {
    (void)fromQasm("OPENQASM 2.0;\nqreg q[2];\nh q[0]");
  });
  EXPECT_EQ(missingSemicolon.line(), 3U);
  EXPECT_EQ(missingSemicolon.token(), "h q[0]");

  // Wrong operand count names the gate and the counts.
  const auto operands = capture([] {
    (void)fromQasm("OPENQASM 2.0; qreg q[2]; cx q[0];");
  });
  EXPECT_NE(std::string(operands.what()).find("expected 2, got 1"), std::string::npos);
}

TEST(Qasm, RoundTripPreservesSemantics) {
  Circuit original(3, "roundtrip");
  original.h(0).cx(0, 1).t(1).ccx(0, 1, 2).rz(0.7, 2).phase(-0.3, 0).cz(1, 2);
  const Circuit parsed = fromQasm(toQasm(original));
  ASSERT_EQ(parsed.qubits(), original.qubits());
  // Compare semantics via exact/numeric simulation (textual forms differ:
  // u1 vs phase naming etc.).
  dd::Package<dd::NumericSystem> p1(3, {0.0, dd::NumericSystem::Normalization::LeftmostNonzero});
  const auto u1 = buildUnitary(p1, original);
  const auto u2 = buildUnitary(p1, parsed);
  EXPECT_EQ(u1, u2);
}

TEST(Qasm, EmitRejectsInexpressibleGates) {
  Circuit negative(2);
  negative.controlled(GateKind::X, 1, {{0, false}});
  EXPECT_THROW((void)toQasm(negative), std::invalid_argument);
  Circuit vGate(1);
  vGate.v(0);
  EXPECT_THROW((void)toQasm(vGate), std::invalid_argument);
  Circuit mcx(4);
  mcx.mcx({0, 1, 2}, 3);
  EXPECT_THROW((void)toQasm(mcx), std::invalid_argument);
}

TEST(Qasm, EmitContainsHeaderAndGates) {
  Circuit c(2);
  c.h(0).cx(0, 1);
  const std::string qasm = toQasm(c);
  EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(qasm.find("qreg q[2];"), std::string::npos);
  EXPECT_NE(qasm.find("h q[0];"), std::string::npos);
  EXPECT_NE(qasm.find("cx q[0], q[1];"), std::string::npos);
}

} // namespace
} // namespace qadd::qc
