#include "algorithms/bwt.hpp"

#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace qadd::algos {
namespace {

TEST(WeldedTree, GraphStructure) {
  for (const unsigned depth : {1U, 2U, 3U, 4U}) {
    const WeldedTree tree = makeWeldedTree(depth);
    // Edge count: 2 trees with 2^(d+1)-2 edges each + 2*2^d weld edges.
    const std::size_t treeEdges = 2 * ((1ULL << (depth + 1)) - 2);
    const std::size_t weldEdges = 2ULL << depth;
    EXPECT_EQ(tree.edgeCount(), treeEdges + weldEdges);
    EXPECT_EQ(tree.labelBits, depth + 2);
    EXPECT_EQ(tree.entrance, 1ULL);
  }
}

TEST(WeldedTree, ProperEdgeColoring) {
  // No node may have two incident edges of the same color — this is what
  // makes each color class a matching (an involution the walk can shift by).
  const WeldedTree tree = makeWeldedTree(3);
  for (unsigned color = 0; color < 4; ++color) {
    std::set<std::uint64_t> touched;
    for (const auto& edge : tree.matchings[color]) {
      EXPECT_TRUE(touched.insert(edge.a).second)
          << "node " << edge.a << " has two color-" << color << " edges";
      EXPECT_TRUE(touched.insert(edge.b).second)
          << "node " << edge.b << " has two color-" << color << " edges";
    }
  }
}

TEST(WeldedTree, DegreesAreCorrect) {
  const unsigned depth = 3;
  const WeldedTree tree = makeWeldedTree(depth);
  std::map<std::uint64_t, unsigned> degree;
  for (const auto& matching : tree.matchings) {
    for (const auto& edge : matching) {
      ++degree[edge.a];
      ++degree[edge.b];
    }
  }
  // Roots have degree 2, every other node degree 3.
  const std::uint64_t offset = 1ULL << (depth + 1);
  for (const auto& [node, d] : degree) {
    if (node == 1 || node == offset + 1) {
      EXPECT_EQ(d, 2U) << "root " << node;
    } else {
      EXPECT_EQ(d, 3U) << "node " << node;
    }
  }
  // Total node count: 2 * (2^(d+1) - 1).
  EXPECT_EQ(degree.size(), 2 * ((1ULL << (depth + 1)) - 1));
}

TEST(WeldedTree, WeldFormsACycleAcrossTheTrees) {
  const unsigned depth = 3;
  const WeldedTree tree = makeWeldedTree(depth);
  const unsigned weldBase = (depth % 2 == 0) ? 0 : 2;
  // Starting from a left leaf and alternating the two weld colors must visit
  // all 2 * 2^d leaves before returning (a single Hamiltonian cycle on the
  // leaves).
  const std::uint64_t start = 1ULL << depth;
  std::uint64_t current = start;
  unsigned color = weldBase;
  std::size_t steps = 0;
  do {
    current = tree.neighbor(color, current);
    color = color == weldBase ? weldBase + 1 : weldBase;
    ++steps;
  } while (current != start && steps < 1000);
  EXPECT_EQ(steps, 2ULL << depth);
}

TEST(WeldedTree, NeighborIsInvolution) {
  const WeldedTree tree = makeWeldedTree(2);
  for (unsigned color = 0; color < 4; ++color) {
    for (std::uint64_t label = 0; label < (1ULL << tree.labelBits); ++label) {
      EXPECT_EQ(tree.neighbor(color, tree.neighbor(color, label)), label);
    }
  }
}

TEST(Bwt, CircuitIsExactlyRepresentable) {
  const qc::Circuit circuit = bwt({2, 2});
  EXPECT_TRUE(circuit.isCliffordTOnly());
  EXPECT_EQ(circuit.qubits(), bwtQubits(2));
}

TEST(Bwt, WalkSpreadsFromEntrance) {
  // After a few steps the walker must have left the entrance with high
  // probability and the state must stay normalized (exact algebraically).
  const BwtOptions options{2, 3};
  qc::Simulator<dd::AlgebraicSystem> simulator(bwt(options));
  simulator.run();
  auto& package = simulator.package();
  const auto norm = package.innerProduct(simulator.state(), simulator.state());
  EXPECT_TRUE(package.system().isOne(norm));

  const auto amplitudes = package.amplitudes(simulator.state());
  const WeldedTree tree = makeWeldedTree(options.depth);
  // Probability mass on labels that are actual graph nodes must be 1: the
  // shift permutation never leaks into unused label space.
  double onGraph = 0.0;
  const unsigned totalQubits = 2 + tree.labelBits;
  for (std::size_t index = 0; index < amplitudes.size(); ++index) {
    const double p = std::norm(amplitudes[index]);
    if (p < 1e-18) {
      continue;
    }
    // Decode the label from the basis index (coin = top 2 qubits, label bits
    // b at qubit 2+b, qubit 0 = MSB of the index).
    std::uint64_t label = 0;
    for (unsigned bit = 0; bit < tree.labelBits; ++bit) {
      const unsigned qubit = 2 + bit;
      if ((index >> (totalQubits - 1 - qubit)) & 1ULL) {
        label |= 1ULL << bit;
      }
    }
    const bool isNode = [&] {
      for (unsigned color = 0; color < 4; ++color) {
        if (tree.neighbor(color, label) != label) {
          return true;
        }
      }
      return false;
    }();
    EXPECT_TRUE(isNode) << "amplitude on non-node label " << label;
    onGraph += p;
  }
  EXPECT_NEAR(onGraph, 1.0, 1e-9);
}

TEST(Bwt, DeterministicConstruction) {
  const qc::Circuit a = bwt({2, 2});
  const qc::Circuit b = bwt({2, 2});
  EXPECT_EQ(a.toText(), b.toText());
}

TEST(Bwt, GateCountScalesWithSteps) {
  const qc::Circuit one = bwt({2, 1});
  const qc::Circuit three = bwt({2, 3});
  EXPECT_NEAR(static_cast<double>(three.size() - one.size()),
              2.0 * static_cast<double>(one.size()), 30.0)
      << "each step adds a fixed block of gates";
}

} // namespace
} // namespace qadd::algos
