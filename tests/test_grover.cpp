#include "algorithms/grover.hpp"

#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qadd::algos {
namespace {

using dd::AlgebraicSystem;
using dd::NumericSystem;

std::array<bool, 64> markedBits(qc::Qubit n, std::uint64_t marked) {
  std::array<bool, 64> bits{};
  for (qc::Qubit q = 0; q < n; ++q) {
    bits[q] = ((marked >> q) & 1ULL) != 0;
  }
  return bits;
}

TEST(Grover, OptimalIterations) {
  EXPECT_EQ(groverOptimalIterations(2), 1U);
  EXPECT_EQ(groverOptimalIterations(4), 3U);
  EXPECT_EQ(groverOptimalIterations(10), 25U);
  EXPECT_EQ(groverOptimalIterations(15), 142U);
}

TEST(Grover, SuccessProbabilityFormula) {
  // After the optimal iteration count the success probability approaches 1.
  for (const qc::Qubit n : {4U, 8U, 12U}) {
    EXPECT_GT(groverSuccessProbability(n, groverOptimalIterations(n)), 0.9);
  }
  // With zero iterations it is uniform.
  EXPECT_NEAR(groverSuccessProbability(6, 0), 1.0 / 64.0, 1e-12);
}

TEST(Grover, CircuitIsCliffordTCompatible) {
  const qc::Circuit circuit = grover({5, 13, 0});
  // H, X, multi-controlled Z only: all exactly representable.
  EXPECT_TRUE(circuit.isCliffordTOnly());
}

TEST(Grover, AmplifiesTheMarkedElementExactly) {
  // Algebraic simulation: probability of the marked element must match the
  // closed form to within conversion accuracy.
  const GroverOptions options{5, 0b10110, 0};
  qc::Simulator<AlgebraicSystem> simulator(grover(options));
  simulator.run();
  const auto bits = markedBits(5, options.marked);
  const double probability =
      simulator.probability(std::span<const bool>(bits.data(), 5));
  EXPECT_NEAR(probability, groverSuccessProbability(5, groverOptimalIterations(5)), 1e-9);
  EXPECT_GT(probability, 0.99);
}

TEST(Grover, NumericWithReasonableEpsilonAgrees) {
  const GroverOptions options{4, 0b1010, 0};
  qc::Simulator<NumericSystem> simulator(grover(options),
                                         {1e-10, NumericSystem::Normalization::LeftmostNonzero});
  simulator.run();
  const auto bits = markedBits(4, options.marked);
  EXPECT_NEAR(simulator.probability(std::span<const bool>(bits.data(), 4)),
              groverSuccessProbability(4, groverOptimalIterations(4)), 1e-6);
}

TEST(Grover, ExplicitIterationCountIsHonored) {
  const qc::Circuit one = grover({4, 3, 1});
  const qc::Circuit two = grover({4, 3, 2});
  EXPECT_GT(two.size(), one.size());
  // Per iteration: oracle (possibly +2 X) + diffusion (4n + 1 gates).
  const std::size_t perIteration = two.size() - one.size();
  EXPECT_EQ(one.size(), 4U + perIteration); // 4 initial Hadamards
}

TEST(Grover, StateStaysCompactAlgebraically) {
  // The Grover state is (a, b, b, ..., b): 2 distinct amplitude values, so
  // the exact QMDD stays near-linear in qubits throughout the run.
  qc::Simulator<AlgebraicSystem> simulator(grover({7, 42, 0}));
  std::size_t peak = 0;
  simulator.run();
  peak = std::max(peak, simulator.stateNodes());
  EXPECT_LE(simulator.stateNodes(), 2U * 7U)
      << "the exact representation must exploit the two-value structure";
}

TEST(Grover, RejectsBadArguments) {
  EXPECT_THROW((void)grover({1, 0, 0}), std::invalid_argument);
  EXPECT_THROW((void)grover({4, 16, 0}), std::invalid_argument); // marked out of range
}

} // namespace
} // namespace qadd::algos
