#include "linalg/dense.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qadd::la {
namespace {

Matrix hadamard() {
  const double s = 1.0 / std::sqrt(2.0);
  return Matrix{2, {s, s, s, -s}};
}

Matrix pauliX() { return Matrix{2, {0, 1, 1, 0}}; }

TEST(DenseVector, BasisStateAndNorm) {
  const Vector v = Vector::basisState(8, 3);
  EXPECT_EQ(v.dimension(), 8U);
  EXPECT_EQ(v[3], Complex{1.0});
  EXPECT_EQ(v[0], Complex{0.0});
  EXPECT_DOUBLE_EQ(v.norm(), 1.0);
}

TEST(DenseVector, NormalizeAndZeroThrows) {
  Vector v(2);
  v[0] = 3.0;
  v[1] = 4.0;
  v.normalize();
  EXPECT_DOUBLE_EQ(v.norm(), 1.0);
  EXPECT_NEAR(v[0].real(), 0.6, 1e-12);
  Vector zero(4);
  EXPECT_THROW(zero.normalize(), std::domain_error);
}

TEST(DenseVector, InnerProductConjugateLinearity) {
  Vector a(2);
  a[0] = {0.0, 1.0};
  Vector b(2);
  b[0] = {1.0, 0.0};
  // <i e0 | e0> = conj(i) = -i.
  EXPECT_EQ(a.innerProduct(b), (Complex{0.0, -1.0}));
  EXPECT_EQ(b.innerProduct(a), (Complex{0.0, 1.0}));
}

TEST(DenseVector, KroneckerProduct) {
  Vector a(2);
  a[0] = 1.0;
  Vector b(2);
  b[1] = 2.0;
  const Vector k = a.kron(b);
  ASSERT_EQ(k.dimension(), 4U);
  EXPECT_EQ(k[1], Complex{2.0});
  EXPECT_EQ(k[0], Complex{0.0});
}

TEST(DenseMatrix, IdentityAndMultiply) {
  const Matrix h = hadamard();
  const Matrix hh = h * h;
  EXPECT_LE(Matrix::maxAbsDifference(hh, Matrix::identity(2)), 1e-12);
  EXPECT_TRUE(h.isUnitary());
}

TEST(DenseMatrix, MatrixVector) {
  const Vector zero = Vector::basisState(2, 0);
  const Vector plus = hadamard() * zero;
  EXPECT_NEAR(plus[0].real(), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(plus[1].real(), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(DenseMatrix, KroneckerStructure) {
  // H (x) I2 is the paper's Fig. 1a matrix.
  const Matrix u = hadamard().kron(Matrix::identity(2));
  const double s = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(u.at(0, 0).real(), s, 1e-12);
  EXPECT_NEAR(u.at(0, 2).real(), s, 1e-12);
  EXPECT_NEAR(u.at(2, 0).real(), s, 1e-12);
  EXPECT_NEAR(u.at(2, 2).real(), -s, 1e-12);
  EXPECT_EQ(u.at(0, 1), Complex{0.0});
  EXPECT_TRUE(u.isUnitary());
}

TEST(DenseMatrix, AdjointOfProduct) {
  const Matrix x = pauliX();
  const Matrix h = hadamard();
  const Matrix lhs = (h * x).adjoint();
  const Matrix rhs = x.adjoint() * h.adjoint();
  EXPECT_LE(Matrix::maxAbsDifference(lhs, rhs), 1e-12);
}

TEST(DenseMatrix, NonUnitaryDetected) {
  Matrix m(2);
  m.at(0, 0) = 2.0;
  m.at(1, 1) = 1.0;
  EXPECT_FALSE(m.isUnitary());
}

TEST(Dense, Distance) {
  Vector a(2);
  a[0] = 1.0;
  Vector b(2);
  b[1] = 1.0;
  EXPECT_NEAR(distance(a, b), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(distance(a, a), 0.0);
}

} // namespace
} // namespace qadd::la
