#include "qc/simulator.hpp"

#include "algorithms/common.hpp"
#include "core/export.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qadd::qc {
namespace {

using dd::AlgebraicSystem;
using dd::NumericSystem;

template <class System> std::vector<std::complex<double>> simulate(const Circuit& circuit) {
  Simulator<System> simulator(circuit);
  simulator.run();
  return simulator.package().amplitudes(simulator.state());
}

TEST(Simulator, BellStateBothSystems) {
  Circuit bell(2);
  bell.h(0).cx(0, 1);
  const double s = 1.0 / std::sqrt(2.0);
  for (const auto& amplitudes :
       {simulate<NumericSystem>(bell), simulate<AlgebraicSystem>(bell)}) {
    ASSERT_EQ(amplitudes.size(), 4U);
    EXPECT_NEAR(amplitudes[0].real(), s, 1e-12);
    EXPECT_NEAR(amplitudes[3].real(), s, 1e-12);
    EXPECT_NEAR(std::abs(amplitudes[1]), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(amplitudes[2]), 0.0, 1e-12);
  }
}

TEST(Simulator, GhzScalesLinearlyInNodes) {
  for (const Qubit n : {4U, 8U, 12U}) {
    Simulator<AlgebraicSystem> simulator(algos::ghz(n));
    simulator.run();
    // GHZ = |0..0> + |1..1>: one root node plus two nodes per lower level.
    EXPECT_EQ(simulator.stateNodes(), 2 * n - 1) << "GHZ DD must have linear width";
    const bool allOnes[12] = {true, true, true, true, true, true,
                              true, true, true, true, true, true};
    EXPECT_NEAR(simulator.probability(std::span<const bool>(allOnes, n)), 0.5, 1e-12);
  }
}

TEST(Simulator, StepAndReset) {
  Circuit c(1);
  c.h(0).h(0);
  Simulator<AlgebraicSystem> simulator(c);
  EXPECT_EQ(simulator.gateIndex(), 0U);
  EXPECT_TRUE(simulator.step());
  EXPECT_EQ(simulator.gateIndex(), 1U);
  EXPECT_TRUE(simulator.step());
  EXPECT_FALSE(simulator.step()) << "circuit exhausted";
  // After HH the state is |0> again.
  EXPECT_EQ(simulator.state(), simulator.package().makeZeroState());
  simulator.reset();
  EXPECT_EQ(simulator.gateIndex(), 0U);
  EXPECT_EQ(simulator.state(), simulator.package().makeZeroState());
}

TEST(Simulator, TeleportationMovesAmplitudes) {
  // Prepare qubit 0 in T H |0>, teleport to qubit 2, verify the marginal.
  Circuit c(3);
  c.h(0).t(0);
  c.append(algos::teleport());
  Simulator<AlgebraicSystem> simulator(c);
  simulator.run();
  const auto amplitudes = simulator.package().amplitudes(simulator.state());
  // The reduced state of qubit 2 must be T H |0>: probability of qubit 2
  // being |1> is |sin| component = 1/2 for H|0> after T (T only adds phase).
  double probabilityOne = 0.0;
  for (std::size_t i = 0; i < 8; ++i) {
    if ((i & 1) != 0) { // qubit 2 = least significant bit
      probabilityOne += std::norm(amplitudes[i]);
    }
  }
  EXPECT_NEAR(probabilityOne, 0.5, 1e-12);
}

TEST(Simulator, QftOnBasisStateGivesUniformMagnitudes) {
  Circuit c(4);
  c.append(algos::prepareBasisState(4, 0b0101));
  c.append(algos::qft(4));
  Simulator<NumericSystem> simulator(c, {1e-12, NumericSystem::Normalization::LeftmostNonzero});
  simulator.run();
  const auto amplitudes = simulator.package().amplitudes(simulator.state());
  for (const auto& amplitude : amplitudes) {
    EXPECT_NEAR(std::abs(amplitude), 0.25, 1e-9);
  }
  // QFT of a basis state is a product state: the DD must stay linear-sized.
  EXPECT_EQ(simulator.stateNodes(), 4U);
}

TEST(Simulator, QftInverseQftIsIdentity) {
  Circuit c(3);
  c.append(algos::prepareBasisState(3, 0b011));
  c.append(algos::qft(3));
  c.append(algos::inverseQft(3));
  Simulator<NumericSystem> simulator(c, {1e-10, NumericSystem::Normalization::LeftmostNonzero});
  simulator.run();
  // prepareBasisState maps bit q of the integer to qubit q: 0b011 sets
  // qubits 0 and 1.
  const bool bits[3] = {true, true, false};
  EXPECT_NEAR(simulator.probability(bits), 1.0, 1e-9);
}

TEST(Simulator, BuildUnitaryMatchesStepwiseSimulation) {
  Circuit c(3);
  c.h(0).t(1).cx(0, 2).v(1).cx(1, 0).tdg(2).h(2);
  dd::Package<AlgebraicSystem> package(3);
  const auto unitary = buildUnitary(package, c);
  const auto viaMatrix = package.multiply(unitary, package.makeZeroState());

  Simulator<AlgebraicSystem> simulator(c);
  simulator.run();
  const auto direct = simulator.package().amplitudes(simulator.state());
  const auto indirect = package.amplitudes(viaMatrix);
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(std::abs(direct[i] - indirect[i]), 0.0, 1e-12);
  }
}

TEST(Simulator, BuildUnitaryEquivalenceCheck) {
  // HXH == Z: the O(1) equivalence check on canonical diagrams.
  Circuit lhs(2);
  lhs.h(0).x(0).h(0);
  Circuit rhs(2);
  rhs.z(0);
  dd::Package<AlgebraicSystem> package(2);
  EXPECT_EQ(buildUnitary(package, lhs), buildUnitary(package, rhs));
  // And a non-equivalence: HXH != X.
  Circuit wrong(2);
  wrong.x(0);
  EXPECT_NE(buildUnitary(package, lhs), buildUnitary(package, wrong));
}

TEST(Simulator, GarbageCollectionThresholdRespected) {
  Circuit c(6);
  for (int round = 0; round < 5; ++round) {
    for (Qubit q = 0; q < 6; ++q) {
      c.h(q);
    }
    for (Qubit q = 0; q + 1 < 6; ++q) {
      c.cx(q, q + 1);
    }
  }
  Simulator<AlgebraicSystem>::Options options;
  options.gcNodeThreshold = 32; // force frequent GC
  Simulator<AlgebraicSystem> simulator(c, {}, options);
  simulator.run();
  // Correctness under aggressive GC: norm is exactly 1.
  const auto norm = simulator.package().innerProduct(simulator.state(), simulator.state());
  EXPECT_TRUE(simulator.package().system().isOne(norm));
}

TEST(Simulator, AlgebraicRejectsUncompiledRotations) {
  Circuit c(1);
  c.rz(0.3, 0);
  Simulator<AlgebraicSystem> simulator(c);
  EXPECT_THROW(simulator.step(), std::invalid_argument);
}

} // namespace
} // namespace qadd::qc
