#include "algorithms/shor.hpp"

#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace qadd::algos {
namespace {

TEST(Shor, MultiplicativeOrderReference) {
  EXPECT_EQ(multiplicativeOrder(7, 15), 4U);
  EXPECT_EQ(multiplicativeOrder(2, 15), 4U);
  EXPECT_EQ(multiplicativeOrder(4, 15), 2U);
  EXPECT_EQ(multiplicativeOrder(11, 15), 2U);
  EXPECT_EQ(multiplicativeOrder(2, 21), 6U);
  EXPECT_THROW((void)multiplicativeOrder(3, 15), std::invalid_argument); // gcd != 1
  EXPECT_THROW((void)multiplicativeOrder(1, 1), std::invalid_argument);
}

TEST(Shor, ModularMultiplicationTableIsPermutation) {
  for (const auto& [base, modulus] : {std::pair<std::uint64_t, std::uint64_t>{7, 15},
                                      {2, 15},
                                      {5, 21},
                                      {3, 7}}) {
    const unsigned width = workRegisterWidth(modulus);
    const auto image = modularMultiplicationTable(base, modulus, width);
    std::vector<bool> hit(image.size(), false);
    for (const std::uint64_t y : image) {
      ASSERT_LT(y, image.size());
      EXPECT_FALSE(hit[y]);
      hit[y] = true;
    }
    // Values below N multiply; values >= N are fixed.
    for (std::uint64_t x = 0; x < image.size(); ++x) {
      EXPECT_EQ(image[x], x < modulus ? base * x % modulus : x);
    }
  }
}

TEST(Shor, WorkRegisterWidth) {
  EXPECT_EQ(workRegisterWidth(15), 4U);
  EXPECT_EQ(workRegisterWidth(16), 4U);
  EXPECT_EQ(workRegisterWidth(17), 5U);
  EXPECT_EQ(workRegisterWidth(2), 1U);
}

TEST(Shor, OrderFindingPeaksAtMultiplesOfOneOverR) {
  // N = 15, a = 7, r = 4: the ancilla distribution must concentrate on
  // multiples of 2^m / 4.
  const OrderFindingOptions options{15, 7, 4};
  const qc::Circuit circuit = orderFinding(options);
  qc::Simulator<dd::NumericSystem> simulator(
      circuit, {1e-12, dd::NumericSystem::Normalization::LeftmostNonzero});
  simulator.run();
  const auto amplitudes = simulator.package().amplitudes(simulator.state());
  const unsigned m = options.precisionQubits;
  const unsigned w = workRegisterWidth(options.modulus);

  double onPeaks = 0.0;
  double total = 0.0;
  for (std::size_t index = 0; index < amplitudes.size(); ++index) {
    const double probability = std::norm(amplitudes[index]);
    total += probability;
    const std::size_t ancilla = index >> w;
    if (ancilla % (1ULL << (m - 2)) == 0) { // multiples of 2^m / 4
      onPeaks += probability;
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // r = 4 divides 2^m exactly, so the concentration is perfect.
  EXPECT_NEAR(onPeaks, 1.0, 1e-9);
}

TEST(Shor, OrderTwoElementNeedsFewerPeaks) {
  // a = 11 has order 2 mod 15: only ancilla values 0 and 2^(m-1) appear.
  const OrderFindingOptions options{15, 11, 4};
  qc::Simulator<dd::NumericSystem> simulator(
      orderFinding(options), {1e-12, dd::NumericSystem::Normalization::LeftmostNonzero});
  simulator.run();
  const auto amplitudes = simulator.package().amplitudes(simulator.state());
  const unsigned w = workRegisterWidth(options.modulus);
  double offPeaks = 0.0;
  for (std::size_t index = 0; index < amplitudes.size(); ++index) {
    const std::size_t ancilla = index >> w;
    if (ancilla != 0 && ancilla != (1ULL << (options.precisionQubits - 1))) {
      offPeaks += std::norm(amplitudes[index]);
    }
  }
  EXPECT_NEAR(offPeaks, 0.0, 1e-9);
}

TEST(Shor, CircuitStructure) {
  const OrderFindingOptions options{15, 7, 3};
  const qc::Circuit circuit = orderFinding(options);
  EXPECT_EQ(circuit.qubits(), 3U + 4U);
  EXPECT_FALSE(circuit.isCliffordTOnly()) << "the inverse QFT carries rotation gates";
  EXPECT_THROW((void)orderFinding({15, 7, 0}), std::invalid_argument);
}

} // namespace
} // namespace qadd::algos
