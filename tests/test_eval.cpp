#include "eval/accuracy.hpp"
#include "eval/report.hpp"
#include "eval/trace.hpp"

#include "algorithms/common.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace qadd::eval {
namespace {

TEST(Accuracy, ZeroForIdenticalVectors) {
  const std::vector<std::complex<double>> v{{0.6, 0.0}, {0.8, 0.0}};
  EXPECT_NEAR(accuracyError(v, v), 0.0, 1e-15);
}

TEST(Accuracy, LengthErrorIsForgiven) {
  // Footnote 8: the numeric vector is rescaled to unit norm first.
  const std::vector<std::complex<double>> reference{{1.0, 0.0}, {0.0, 0.0}};
  const std::vector<std::complex<double>> scaled{{0.5, 0.0}, {0.0, 0.0}};
  EXPECT_NEAR(accuracyError(scaled, reference), 0.0, 1e-15);
}

TEST(Accuracy, ZeroVectorIsMaximallyWrong) {
  const std::vector<std::complex<double>> reference{{1.0, 0.0}, {0.0, 0.0}};
  const std::vector<std::complex<double>> zero{{0.0, 0.0}, {0.0, 0.0}};
  EXPECT_NEAR(accuracyError(zero, reference), 1.0, 1e-15);
}

TEST(Accuracy, DirectionErrorIsMeasured) {
  const std::vector<std::complex<double>> reference{{1.0, 0.0}, {0.0, 0.0}};
  const std::vector<std::complex<double>> orthogonal{{0.0, 0.0}, {1.0, 0.0}};
  EXPECT_NEAR(accuracyError(orthogonal, reference), std::sqrt(2.0), 1e-15);
}

TEST(Accuracy, VectorNorm) {
  EXPECT_NEAR(vectorNorm({{3.0, 0.0}, {0.0, 4.0}}), 5.0, 1e-15);
  EXPECT_DOUBLE_EQ(vectorNorm({}), 0.0);
}

TEST(Trace, AlgebraicTraceRecordsSamples) {
  const qc::Circuit circuit = algos::ghz(4);
  ReferenceTrajectory reference;
  TraceOptions options;
  options.sampleEvery = 1;
  const SimulationTrace trace = traceAlgebraic(circuit, options, {}, &reference);
  EXPECT_EQ(trace.points.size(), circuit.size());
  EXPECT_EQ(reference.samples.size(), circuit.size());
  EXPECT_EQ(trace.finalNodes, 7U); // GHZ(4): 2n - 1 nodes
  EXPECT_FALSE(trace.collapsedToZero);
  for (const TracePoint& point : trace.points) {
    EXPECT_EQ(point.error, 0.0);
    EXPECT_GT(point.nodes, 0U);
  }
}

TEST(Trace, NumericTraceMeasuresErrorAgainstReference) {
  const qc::Circuit circuit = algos::ghz(4);
  ReferenceTrajectory reference;
  TraceOptions options;
  options.sampleEvery = 1;
  (void)traceAlgebraic(circuit, options, {}, &reference);
  const SimulationTrace numeric = traceNumeric(circuit, 1e-12, &reference, options);
  ASSERT_EQ(numeric.points.size(), circuit.size());
  for (const TracePoint& point : numeric.points) {
    ASSERT_TRUE(std::isfinite(point.error));
    EXPECT_LT(point.error, 1e-10) << "GHZ at eps=1e-12 must be essentially exact";
  }
  EXPECT_FALSE(numeric.collapsedToZero);
}

TEST(Trace, SamplingCadenceRespected) {
  const qc::Circuit circuit = algos::ghz(8); // 8 gates
  TraceOptions options;
  options.sampleEvery = 3;
  const SimulationTrace trace = traceAlgebraic(circuit, options);
  // Samples at gates 3, 6, and the final 8.
  ASSERT_EQ(trace.points.size(), 3U);
  EXPECT_EQ(trace.points[0].gateIndex, 3U);
  EXPECT_EQ(trace.points[1].gateIndex, 6U);
  EXPECT_EQ(trace.points[2].gateIndex, 8U);
}

TEST(Trace, MaxMagnitudeNormalizationTracksReferenceToo) {
  // End-to-end coverage of the [29] normalization inside the figure
  // machinery: same circuit, same reference, both numeric normalizations
  // essentially exact at tight epsilon.
  const qc::Circuit circuit = algos::ghz(5);
  ReferenceTrajectory reference;
  TraceOptions options;
  options.sampleEvery = 2;
  (void)traceAlgebraic(circuit, options, {}, &reference);
  const SimulationTrace leftmost = traceNumeric(circuit, 1e-12, &reference, options,
                                                dd::NumericSystem::Normalization::LeftmostNonzero);
  const SimulationTrace maxMagnitude = traceNumeric(
      circuit, 1e-12, &reference, options, dd::NumericSystem::Normalization::MaxMagnitude);
  EXPECT_LT(leftmost.finalError, 1e-10);
  EXPECT_LT(maxMagnitude.finalError, 1e-10);
  EXPECT_EQ(leftmost.finalNodes, maxMagnitude.finalNodes);
}

TEST(Report, CsvFormat) {
  const qc::Circuit circuit = algos::ghz(3);
  TraceOptions options;
  options.sampleEvery = 1;
  const SimulationTrace trace = traceAlgebraic(circuit, options);
  std::ostringstream os;
  writeCsv(os, {trace});
  const std::string csv = os.str();
  EXPECT_NE(csv.find("series,gate,nodes,seconds,error,maxbits"), std::string::npos);
  EXPECT_NE(csv.find("algebraic(Q[w]-inverse)"), std::string::npos);
  // Header + 3 samples.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

TEST(Report, SummaryTableAndChartSmoke) {
  const qc::Circuit circuit = algos::ghz(3);
  TraceOptions options;
  options.sampleEvery = 1;
  const SimulationTrace trace = traceAlgebraic(circuit, options);
  std::ostringstream os;
  printSummaryTable(os, {trace});
  printAsciiChart(os, "nodes", {trace}, Series::Nodes, false);
  printAsciiChart(os, "empty error", {trace}, Series::Error, true); // all zero -> "(no data)"
  const std::string out = os.str();
  EXPECT_NE(out.find("final nodes"), std::string::npos);
  EXPECT_NE(out.find("== nodes =="), std::string::npos);
  EXPECT_NE(out.find("(no data)"), std::string::npos);
}

} // namespace
} // namespace qadd::eval
