#include "synth/solovay_kitaev.hpp"

#include "qc/simulator.hpp"
#include "synth/compile.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qadd::synth {
namespace {

using qc::GateKind;

SU2 sequenceProduct(const std::vector<GateKind>& gates) {
  SU2 product;
  for (const GateKind kind : gates) {
    product = SU2::fromMatrix(qc::complexMatrix(kind)) * product;
  }
  return product;
}

// A shared small synthesizer (net construction is the expensive part).
const SolovayKitaev& sharedSynthesizer() {
  static const SolovayKitaev instance({4, 2});
  return instance;
}

TEST(SolovayKitaev, NetCoversCliffordTGenerators) {
  // Gates that ARE <H,T> words must be hit exactly at depth 0.
  const auto& sk = sharedSynthesizer();
  for (const GateKind kind : {GateKind::H, GateKind::T, GateKind::S, GateKind::Z}) {
    const auto approx = sk.approximate(SU2::fromMatrix(qc::complexMatrix(kind)), 0);
    EXPECT_LE(SU2::distance(approx.matrix, SU2::fromMatrix(qc::complexMatrix(kind))), 1e-7)
        << qc::gateName(kind);
  }
}

TEST(SolovayKitaev, SequencesMultiplyToReportedMatrix) {
  const auto& sk = sharedSynthesizer();
  for (const double angle : {0.35, 1.0, -2.2, 3.0}) {
    const auto approx = sk.approximateRz(angle);
    EXPECT_LE(SU2::distance(sequenceProduct(approx.gates), approx.matrix), 1e-6);
  }
}

TEST(SolovayKitaev, SequencesAreCliffordTOnly) {
  const auto& sk = sharedSynthesizer();
  const auto approx = sk.approximateRz(0.9);
  for (const GateKind kind : approx.gates) {
    EXPECT_TRUE(qc::isCliffordT(kind));
  }
  EXPECT_FALSE(approx.gates.empty());
}

TEST(SolovayKitaev, DeeperRecursionImproves) {
  const auto& sk = sharedSynthesizer();
  double worstBase = 0.0;
  double worstDeep = 0.0;
  for (const double angle : {0.21, 0.77, 1.3, 1.9, 2.51, -1.1}) {
    const SU2 target = SU2::fromAxisAngle(0, 0, 1, angle);
    const double base = SU2::distance(sk.approximate(target, 0).matrix, target);
    const double deep = SU2::distance(sk.approximate(target, 2).matrix, target);
    worstBase = std::max(worstBase, base);
    worstDeep = std::max(worstDeep, deep);
  }
  EXPECT_LT(worstDeep, worstBase) << "depth-2 must beat the raw net in the worst case";
  EXPECT_LT(worstDeep, 0.1);
}

TEST(SolovayKitaev, GateCountStaysBounded) {
  // Gate counts are not monotone in depth (peephole simplification can
  // shrink a deeper expansion), but they must stay within the 5^depth-ish
  // envelope of the recursion.
  const auto& sk = sharedSynthesizer();
  const SU2 target = SU2::fromAxisAngle(0, 0, 1, 0.813);
  for (int depth = 0; depth <= 3; ++depth) {
    const auto approx = sk.approximate(target, depth);
    EXPECT_FALSE(approx.gates.empty());
    EXPECT_LE(approx.gates.size(), 60U * static_cast<std::size_t>(std::pow(5.0, depth)));
  }
}

TEST(SolovayKitaev, InvalidOptionsThrow) {
  EXPECT_THROW(SolovayKitaev({0, 1}), std::invalid_argument);
  EXPECT_THROW(SolovayKitaev({3, -1}), std::invalid_argument);
}

TEST(SimplifySequence, CancelsAndFolds) {
  using G = GateKind;
  // H H -> empty.
  EXPECT_TRUE(simplifySequence({G::H, G::H}).empty());
  // T T -> S.
  EXPECT_EQ(simplifySequence({G::T, G::T}), (std::vector<G>{G::S}));
  // T*8 -> empty.
  EXPECT_TRUE(simplifySequence(std::vector<G>(8, G::T)).empty());
  // T Tdg -> empty.
  EXPECT_TRUE(simplifySequence({G::T, G::Tdg}).empty());
  // S S S -> Sdg (6 eighths).
  EXPECT_EQ(simplifySequence({G::S, G::S, G::S}), (std::vector<G>{G::Sdg}));
  // H T T H -> H S H.
  EXPECT_EQ(simplifySequence({G::H, G::T, G::T, G::H}), (std::vector<G>{G::H, G::S, G::H}));
  // Cascading: H (T Tdg) H -> H H -> empty.
  EXPECT_TRUE(simplifySequence({G::H, G::T, G::Tdg, G::H}).empty());
}

TEST(SimplifySequence, PreservesSemantics) {
  using G = GateKind;
  const std::vector<G> messy{G::T, G::H, G::H, G::S, G::T, G::Tdg, G::H, G::T,
                             G::T, G::T, G::T, G::T, G::T, G::T, G::T, G::H};
  const auto clean = simplifySequence(messy);
  EXPECT_LT(clean.size(), messy.size());
  EXPECT_LE(SU2::distance(sequenceProduct(messy), sequenceProduct(clean)), 1e-6);
}

TEST(CliffordTCompiler, CompilesRotationCircuits) {
  qc::Circuit circuit(2, "rot");
  circuit.h(0).rz(0.4, 0).rx(1.1, 1).ry(-0.3, 0).controlled(qc::GateKind::Phase, 1, {{0, true}},
                                                            0.7);
  CliffordTCompiler compiler({4, 1});
  const qc::Circuit compiled = compiler.compile(circuit);
  EXPECT_TRUE(compiled.isCliffordTOnly());
  EXPECT_GT(compiled.size(), circuit.size());
  EXPECT_GT(compiled.tCount(), 0U);
}

TEST(CliffordTCompiler, CachesRepeatedAngles) {
  qc::Circuit circuit(1, "repeat");
  for (int i = 0; i < 10; ++i) {
    circuit.rz(0.12345, 0);
  }
  CliffordTCompiler compiler({4, 1});
  const qc::Circuit compiled = compiler.compile(circuit);
  EXPECT_EQ(compiled.size() % 10, 0U) << "identical rotations must expand identically";
}

TEST(CliffordTCompiler, RotationAxesAreConjugatedCorrectly) {
  // Rx/Ry compile via H / SHS conjugations of Rz; validate the resulting
  // *probabilities* against the uncompiled rotation circuit (phases are
  // projective under SK, probabilities are not).
  for (const auto kind : {qc::GateKind::Rx, qc::GateKind::Ry}) {
    for (const double angle : {0.6, -1.1}) {
      qc::Circuit rotation(1);
      rotation.append({kind, angle, 0, {}});
      CliffordTCompiler compiler({4, 2});
      const qc::Circuit compiled = compiler.compile(rotation);
      ASSERT_TRUE(compiled.isCliffordTOnly());

      qc::Simulator<qadd::dd::NumericSystem> ideal(
          rotation, {0.0, qadd::dd::NumericSystem::Normalization::LeftmostNonzero});
      qc::Simulator<qadd::dd::AlgebraicSystem> approximate(compiled);
      ideal.run();
      approximate.run();
      const auto a = ideal.package().amplitudes(ideal.state());
      const auto b = approximate.package().amplitudes(approximate.state());
      for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_NEAR(std::norm(a[i]), std::norm(b[i]), 0.1)
            << qc::gateName(kind) << "(" << angle << ") index " << i;
      }
    }
  }
}

TEST(CliffordTCompiler, ControlledRzIsExactDecomposition) {
  // cRz decomposes into CX + two half-angle Rz *exactly* (before SK): check
  // the identity at the rotation level using the numeric backend.
  qc::Circuit controlled(2);
  controlled.controlled(qc::GateKind::Rz, 1, {{0, true}}, 0.9);
  qc::Circuit decomposed(2);
  decomposed.rz(0.45, 1).cx(0, 1).rz(-0.45, 1).cx(0, 1);
  qadd::dd::Package<qadd::dd::NumericSystem> p(
      2, {1e-12, qadd::dd::NumericSystem::Normalization::LeftmostNonzero});
  EXPECT_EQ(buildUnitary(p, controlled), buildUnitary(p, decomposed));
}

TEST(CliffordTCompiler, PassesThroughCliffordT) {
  qc::Circuit circuit(3, "ct");
  circuit.h(0).cx(0, 1).ccx(0, 1, 2).t(2);
  CliffordTCompiler compiler({3, 0});
  const qc::Circuit compiled = compiler.compile(circuit);
  ASSERT_EQ(compiled.size(), circuit.size());
  for (std::size_t i = 0; i < circuit.size(); ++i) {
    EXPECT_EQ(compiled.operations()[i], circuit.operations()[i]);
  }
}

} // namespace
} // namespace qadd::synth
