#include "qc/circuit.hpp"

#include <gtest/gtest.h>

namespace qadd::qc {
namespace {

TEST(Circuit, BuildersRecordOperations) {
  Circuit c(3, "demo");
  c.h(0).cx(0, 1).ccx(0, 1, 2).t(2).rz(0.5, 1);
  EXPECT_EQ(c.qubits(), 3U);
  EXPECT_EQ(c.size(), 5U);
  EXPECT_EQ(c.name(), "demo");
  EXPECT_EQ(c.operations()[0].kind, GateKind::H);
  EXPECT_EQ(c.operations()[1].controls.size(), 1U);
  EXPECT_EQ(c.operations()[2].controls.size(), 2U);
  EXPECT_DOUBLE_EQ(c.operations()[4].angle, 0.5);
}

TEST(Circuit, BoundsChecking) {
  Circuit c(2);
  EXPECT_THROW(c.h(2), std::out_of_range);
  EXPECT_THROW(c.cx(0, 2), std::out_of_range);
  EXPECT_THROW(c.cx(2, 0), std::out_of_range);
  EXPECT_THROW(c.cx(1, 1), std::invalid_argument); // control == target
}

TEST(Circuit, SwapExpandsToThreeCnots) {
  Circuit c(2);
  c.swap(0, 1);
  ASSERT_EQ(c.size(), 3U);
  for (const Operation& operation : c.operations()) {
    EXPECT_EQ(operation.kind, GateKind::X);
    EXPECT_EQ(operation.controls.size(), 1U);
  }
}

TEST(Circuit, McxMcz) {
  Circuit c(4);
  c.mcx({0, 1, 2}, 3).mcz({1, 2}, 0);
  EXPECT_EQ(c.operations()[0].controls.size(), 3U);
  EXPECT_EQ(c.operations()[1].kind, GateKind::Z);
}

TEST(Circuit, InverseReversesAndAdjoints) {
  Circuit c(2);
  c.h(0).t(0).cx(0, 1).rz(0.7, 1);
  const Circuit inv = c.inverse();
  ASSERT_EQ(inv.size(), 4U);
  EXPECT_EQ(inv.operations()[0].kind, GateKind::Rz);
  EXPECT_DOUBLE_EQ(inv.operations()[0].angle, -0.7);
  EXPECT_EQ(inv.operations()[1].kind, GateKind::X);
  EXPECT_EQ(inv.operations()[2].kind, GateKind::Tdg);
  EXPECT_EQ(inv.operations()[3].kind, GateKind::H);
}

TEST(Circuit, CliffordTOnlyAndTCount) {
  Circuit ct(2);
  ct.h(0).t(0).tdg(1).cx(0, 1).s(1);
  EXPECT_TRUE(ct.isCliffordTOnly());
  EXPECT_EQ(ct.tCount(), 2U);
  Circuit rot(1);
  rot.rz(0.1, 0);
  EXPECT_FALSE(rot.isCliffordTOnly());
}

TEST(Circuit, AppendCircuit) {
  Circuit a(2);
  a.h(0);
  Circuit b(2);
  b.cx(0, 1);
  a.append(b);
  EXPECT_EQ(a.size(), 2U);
  Circuit wrong(3);
  EXPECT_THROW(a.append(wrong), std::invalid_argument);
}

TEST(Circuit, TextRoundTrip) {
  Circuit c(4, "roundtrip");
  c.h(0)
      .cx(0, 1)
      .controlled(GateKind::X, 3, {{0, true}, {1, false}, {2, true}})
      .rz(0.78539816339744828, 2)
      .controlled(GateKind::Phase, 1, {{3, true}}, -1.5);
  const std::string text = c.toText();
  const Circuit parsed = Circuit::fromText(text);
  EXPECT_EQ(parsed.qubits(), c.qubits());
  ASSERT_EQ(parsed.size(), c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(parsed.operations()[i], c.operations()[i]) << "operation " << i;
  }
}

TEST(Circuit, FromTextRejectsMalformedInput) {
  EXPECT_THROW((void)Circuit::fromText(""), std::invalid_argument);
  EXPECT_THROW((void)Circuit::fromText("wat 3\n"), std::invalid_argument);
  EXPECT_THROW((void)Circuit::fromText("qubits 2\nbogus q0\n"), std::invalid_argument);
  EXPECT_THROW((void)Circuit::fromText("qubits 2\nh x0\n"), std::invalid_argument);
  EXPECT_THROW((void)Circuit::fromText("qubits 2\nx q1 banana q0\n"), std::invalid_argument);
}

TEST(Circuit, FromTextSkipsCommentsAndBlankLines) {
  const Circuit parsed = Circuit::fromText("qubits 2\n# a comment\n\nh q0\n");
  EXPECT_EQ(parsed.size(), 1U);
  EXPECT_EQ(parsed.operations()[0].kind, GateKind::H);
}

TEST(Circuit, ShiftedMovesAllLines) {
  Circuit c(2);
  c.h(0).cx(0, 1);
  const Circuit shifted = c.shifted(3, 6);
  EXPECT_EQ(shifted.qubits(), 6U);
  EXPECT_EQ(shifted.operations()[0].target, 3U);
  EXPECT_EQ(shifted.operations()[1].target, 4U);
  EXPECT_EQ(shifted.operations()[1].controls[0].qubit, 3U);
  EXPECT_THROW((void)c.shifted(5, 6), std::invalid_argument);
}

TEST(Circuit, ControlledByAddsAControlEverywhere) {
  Circuit c(3);
  c.h(1).cx(1, 2);
  const Circuit controlled = c.controlledBy(0);
  ASSERT_EQ(controlled.size(), 2U);
  EXPECT_EQ(controlled.operations()[0].controls.size(), 1U);
  EXPECT_EQ(controlled.operations()[0].controls[0].qubit, 0U);
  EXPECT_EQ(controlled.operations()[1].controls.size(), 2U);
  // Collisions are rejected.
  Circuit usesZero(2);
  usesZero.h(0);
  EXPECT_THROW((void)usesZero.controlledBy(0), std::invalid_argument);
  Circuit controlsZero(2);
  controlsZero.cx(0, 1);
  EXPECT_THROW((void)controlsZero.controlledBy(0), std::invalid_argument);
  EXPECT_THROW((void)c.controlledBy(7), std::out_of_range);
}

TEST(Circuit, NegativeControlTextForm) {
  Circuit c(2);
  c.controlled(GateKind::X, 1, {{0, false}});
  EXPECT_NE(c.toText().find("nctrl q0"), std::string::npos);
}

} // namespace
} // namespace qadd::qc
