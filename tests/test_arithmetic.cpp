#include "algorithms/arithmetic.hpp"

#include "qc/measure.hpp"
#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qadd::algos {
namespace {

using dd::AlgebraicSystem;

/// Read the adder registers from the basis index of the single unit
/// amplitude (the circuit is classical on basis states).
struct AdderReadout {
  std::uint64_t sum = 0;
  bool carryOut = false;
  std::uint64_t a = 0;
  bool carryIn = false;
};

AdderReadout runAdder(qc::Qubit nbits, std::uint64_t a, std::uint64_t b, bool carryIn) {
  const AdderLayout layout{nbits};
  qc::Circuit circuit = prepareAdderInputs(nbits, a, b, carryIn);
  circuit.append(rippleCarryAdder(nbits));
  qc::Simulator<AlgebraicSystem> simulator(circuit);
  simulator.run();
  const auto amplitudes = simulator.package().amplitudes(simulator.state());
  std::size_t hot = amplitudes.size();
  for (std::size_t i = 0; i < amplitudes.size(); ++i) {
    if (std::abs(amplitudes[i]) > 0.5) {
      hot = i;
      break;
    }
  }
  EXPECT_LT(hot, amplitudes.size()) << "expected a basis state";
  const auto bitAt = [&](qc::Qubit qubit) {
    return ((hot >> (layout.width() - 1 - qubit)) & 1ULL) != 0;
  };
  AdderReadout readout;
  readout.carryIn = bitAt(layout.carryIn());
  readout.carryOut = bitAt(layout.carryOut());
  for (qc::Qubit bit = 0; bit < nbits; ++bit) {
    if (bitAt(layout.b(bit))) {
      readout.sum |= 1ULL << bit;
    }
    if (bitAt(layout.a(bit))) {
      readout.a |= 1ULL << bit;
    }
  }
  return readout;
}

TEST(Adder, AddsExhaustivelyAt3Bits) {
  for (std::uint64_t a = 0; a < 8; ++a) {
    for (std::uint64_t b = 0; b < 8; ++b) {
      for (const bool carry : {false, true}) {
        const AdderReadout readout = runAdder(3, a, b, carry);
        const std::uint64_t expected = a + b + (carry ? 1 : 0);
        EXPECT_EQ(readout.sum, expected & 7ULL) << a << "+" << b << "+" << carry;
        EXPECT_EQ(readout.carryOut, expected > 7ULL);
        EXPECT_EQ(readout.a, a) << "operand register must be restored";
        EXPECT_EQ(readout.carryIn, carry) << "carry-in must be restored";
      }
    }
  }
}

TEST(Adder, WiderOperands) {
  EXPECT_EQ(runAdder(5, 13, 22, false).sum, (13ULL + 22) & 31ULL);
  EXPECT_EQ(runAdder(5, 31, 31, true).sum, (31ULL + 31 + 1) & 31ULL);
  EXPECT_TRUE(runAdder(5, 31, 1, false).carryOut);
  EXPECT_FALSE(runAdder(5, 15, 15, false).carryOut);
}

TEST(Adder, IsCliffordExact) {
  const qc::Circuit circuit = rippleCarryAdder(4);
  EXPECT_TRUE(circuit.isCliffordTOnly());
  EXPECT_EQ(circuit.tCount(), 0U); // CNOT/Toffoli netlists only
}

TEST(Adder, AddsInSuperposition) {
  // a register in uniform superposition, b = 1: the adder must map
  // sum_a |a>|1> -> sum_a |a>|a+1>, an entangled state whose b-register
  // marginal is uniform.
  const qc::Qubit n = 3;
  const AdderLayout layout{n};
  qc::Circuit circuit(layout.width());
  for (qc::Qubit bit = 0; bit < n; ++bit) {
    circuit.h(layout.a(bit));
  }
  circuit.x(layout.b(0)); // b = 1
  circuit.append(rippleCarryAdder(n));
  qc::Simulator<AlgebraicSystem> simulator(circuit);
  simulator.run();
  const auto amplitudes = simulator.package().amplitudes(simulator.state());
  // Every surviving basis state must satisfy b == a + 1 (mod 8), with the
  // carry-out set exactly for a = 7.
  double total = 0.0;
  for (std::size_t i = 0; i < amplitudes.size(); ++i) {
    const double p = std::norm(amplitudes[i]);
    if (p < 1e-18) {
      continue;
    }
    const auto bitAt = [&](qc::Qubit qubit) {
      return ((i >> (layout.width() - 1 - qubit)) & 1ULL) != 0;
    };
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    for (qc::Qubit bit = 0; bit < n; ++bit) {
      a |= static_cast<std::uint64_t>(bitAt(layout.a(bit))) << bit;
      b |= static_cast<std::uint64_t>(bitAt(layout.b(bit))) << bit;
    }
    EXPECT_EQ(b, (a + 1) & 7ULL);
    EXPECT_EQ(bitAt(layout.carryOut()), a == 7ULL);
    EXPECT_NEAR(p, 1.0 / 8.0, 1e-12);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Adder, AdderFollowedByInverseIsIdentity) {
  const qc::Circuit adder = rippleCarryAdder(3);
  qc::Circuit roundTrip = prepareAdderInputs(3, 5, 6, false);
  roundTrip.append(adder);
  roundTrip.append(adder.inverse());
  roundTrip.append(prepareAdderInputs(3, 5, 6, false)); // X's cancel
  qc::Simulator<AlgebraicSystem> simulator(roundTrip);
  simulator.run();
  EXPECT_EQ(simulator.state(), simulator.package().makeZeroState());
}

TEST(Adder, RejectsBadWidths) {
  EXPECT_THROW((void)rippleCarryAdder(0), std::invalid_argument);
  EXPECT_THROW((void)rippleCarryAdder(64), std::invalid_argument);
  EXPECT_THROW((void)prepareAdderInputs(3, 8, 0), std::invalid_argument);
}

} // namespace
} // namespace qadd::algos
