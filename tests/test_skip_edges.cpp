/// \file test_skip_edges.cpp
/// The skip-level edge contract: matrix edges whose var lies above their
/// node's variable carry an implicit identity on the skipped levels.
/// Covered here:
///  - canonicalization (makeNode identity collapse, unique-table canonicity,
///    gate node counts independent of register width);
///  - the end-to-end property test: random Clifford+T circuits simulated
///    with and without skipping produce identical snapshot bytes and
///    amplitudes, at jobs 1 and 4, under both weight systems and every
///    epsilon mode;
///  - QDDS round trips of skip edges and load-compat for v1 / materialized
///    matrix snapshots (identity towers collapse on load);
///  - the profiler's per-level skipped counters.
#include "core/export.hpp"
#include "core/package.hpp"
#include "exec/thread_pool.hpp"
#include "io/snapshot.hpp"
#include "obs/profiler.hpp"
#include "qc/circuit.hpp"
#include "qc/gates.hpp"
#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <complex>
#include <cstdint>
#include <random>
#include <vector>

namespace {

using namespace qadd;
using dd::AlgebraicSystem;
using dd::NumericSystem;

template <class System> typename dd::Package<System>::GateMatrix gateOf(dd::Package<System>& p, qc::GateKind kind) {
  if constexpr (System::kExact) {
    const auto m = qc::algebraicMatrix(kind);
    return {p.system().intern(m[0]), p.system().intern(m[1]), p.system().intern(m[2]),
            p.system().intern(m[3])};
  } else {
    const auto m = qc::complexMatrix(kind);
    return {p.system().fromComplex(m[0]), p.system().fromComplex(m[1]),
            p.system().fromComplex(m[2]), p.system().fromComplex(m[3])};
  }
}

// -- canonicalization -----------------------------------------------------------

TEST(SkipEdges, GateNodeCountIndependentOfRegisterWidth) {
  for (const dd::Qubit n : {2U, 8U, 33U, 64U}) {
    dd::Package<AlgebraicSystem> p(n);
    for (const dd::Qubit target : {dd::Qubit{0}, n / 2, n - 1}) {
      const auto h = p.makeGate(gateOf(p, qc::GateKind::H), target);
      EXPECT_EQ(p.countNodes(h), 1U) << "n=" << n << " target=" << target;
      EXPECT_EQ(h.var, 0U) << "gate DDs enter at the top level";
      EXPECT_EQ(h.node->var, target) << "the only node sits at the active level";
    }
    // CX: one control node, one target node — regardless of n and the
    // control-target gap.
    const qc::Operation cx{qc::GateKind::X, 0.0, n - 1, {{0, true}}};
    const auto gate = qc::makeOperationDD(p, cx);
    EXPECT_EQ(p.countNodes(gate), 2U) << "n=" << n;
  }
}

TEST(SkipEdges, MakeNodeCollapsesIdentityPattern) {
  using Pkg = dd::Package<AlgebraicSystem>;
  Pkg p(4);
  const auto t = p.makeGate(gateOf(p, qc::GateKind::T), 2);
  const std::size_t live = p.allocatedNodes();
  // diag(c, c) with equal child edges must come back as the child itself
  // (entering one level higher), allocating nothing.
  const auto zero = Pkg::MEdge{nullptr, p.system().zero()};
  const auto collapsed = p.makeMNode(1, {t, zero, zero, t});
  EXPECT_EQ(p.allocatedNodes(), live);
  EXPECT_EQ(collapsed.node, t.node);
  EXPECT_EQ(collapsed.var, 1U);
  EXPECT_EQ(collapsed.w, t.w);
}

TEST(SkipEdges, IdentityAndTraceAreNodeFree) {
  dd::Package<AlgebraicSystem> p(6);
  const auto identity = p.makeIdentity();
  EXPECT_TRUE(identity.isTerminal());
  EXPECT_EQ(p.countNodes(identity), 0U);
  // trace(I) = 2^n, computed straight off the implicit-identity extent.
  EXPECT_EQ(p.system().value(p.trace(identity)), alg::QOmega{64});
  // trace(H (x) I ... I) = 0: one materialized node, five skipped levels.
  const auto h = p.makeGate(gateOf(p, qc::GateKind::H), 3);
  EXPECT_TRUE(p.system().isZero(p.trace(h)));
  // trace(T (x) I^5) = (1 + omega) * 2^5.
  const auto t = p.makeGate(gateOf(p, qc::GateKind::T), 0);
  EXPECT_EQ(p.system().value(p.trace(t)),
            (alg::QOmega{1} + alg::QOmega::omega()) * alg::QOmega{32});
}

TEST(SkipEdges, SkippedAndMaterializedFormsCannotCoexist) {
  // Multiplying through identities, conjugating, kron with identity — every
  // route to "H on qubit 1 of 4" must land on the same canonical edge.
  dd::Package<AlgebraicSystem> p(4);
  const auto h = p.makeGate(gateOf(p, qc::GateKind::H), 1);
  const auto viaMultiply = p.multiply(h, p.makeIdentity());
  EXPECT_TRUE(viaMultiply == h);
  const auto viaTranspose = p.conjugateTranspose(h);
  EXPECT_TRUE(viaTranspose == h) << "H is Hermitian";
  const auto hh = p.multiply(h, h);
  EXPECT_TRUE(hh == p.makeIdentity()) << "H^2 collapses back to the terminal identity";
}

TEST(SkipEdges, DisabledModeMaterializesTowers) {
  AlgebraicSystem::Config config;
  config.skipIdentities = false;
  dd::Package<AlgebraicSystem> p(8, config);
  EXPECT_FALSE(p.skipIdentities());
  EXPECT_EQ(p.countNodes(p.makeIdentity()), 8U);
  EXPECT_EQ(p.countNodes(p.makeGate(gateOf(p, qc::GateKind::H), 3)), 8U);
}

// -- the with/without-skipping property test ------------------------------------

qc::Circuit randomCliffordT(std::uint64_t seed, qc::Qubit nqubits, std::size_t gates) {
  std::mt19937_64 rng(seed);
  const qc::GateKind kinds[] = {qc::GateKind::H, qc::GateKind::X,   qc::GateKind::S,
                                qc::GateKind::T, qc::GateKind::Tdg, qc::GateKind::Z};
  qc::Circuit circuit(nqubits, "skip-prop");
  for (std::size_t i = 0; i < gates; ++i) {
    const auto kind = kinds[rng() % std::size(kinds)];
    const auto target = static_cast<qc::Qubit>(rng() % nqubits);
    std::vector<qc::ControlSpec> controls;
    if (rng() % 3 == 0) {
      const auto control = static_cast<qc::Qubit>(rng() % nqubits);
      if (control != target) {
        controls.push_back({control, true});
      }
    }
    circuit.append({kind, 0.0, target, std::move(controls)});
  }
  return circuit;
}

struct RunResult {
  std::vector<std::uint8_t> snapshot;
  std::vector<std::complex<double>> amplitudes;
};

template <class System>
RunResult simulate(const qc::Circuit& circuit, typename System::Config config, bool skip,
                   int jobs) {
  config.skipIdentities = skip;
  qc::Simulator<System> simulator(circuit, config);
  std::unique_ptr<exec::ThreadPool> pool;
  if (jobs > 1) {
    pool = std::make_unique<exec::ThreadPool>(static_cast<std::size_t>(jobs));
    simulator.setExecutor(pool.get());
  }
  while (simulator.step()) {
  }
  return {io::saveVector(simulator.package(), simulator.state()),
          simulator.package().amplitudes(simulator.state())};
}

template <class System>
void expectSkipInvariant(const qc::Circuit& circuit, typename System::Config config, int jobs) {
  const RunResult with = simulate<System>(circuit, config, true, jobs);
  const RunResult without = simulate<System>(circuit, config, false, jobs);
  EXPECT_EQ(with.snapshot, without.snapshot)
      << "final-state snapshot bytes must not depend on identity skipping";
  EXPECT_EQ(with.amplitudes, without.amplitudes);
}

TEST(SkipEdges, AlgebraicApplyMatchesMaterialized) {
  for (const std::uint64_t seed : {7ULL, 8ULL, 9ULL}) {
    const qc::Circuit circuit = randomCliffordT(seed, 6, 40);
    for (const int jobs : {1, 4}) {
      expectSkipInvariant<AlgebraicSystem>(circuit, {}, jobs);
    }
  }
}

TEST(SkipEdges, NumericApplyMatchesMaterializedAllEpsilonModes) {
  for (const std::uint64_t seed : {11ULL, 12ULL}) {
    const qc::Circuit circuit = randomCliffordT(seed, 6, 40);
    for (const double epsilon : {0.0, 1e-10, 1e-5}) {
      for (const int jobs : {1, 4}) {
        expectSkipInvariant<NumericSystem>(
            circuit, {epsilon, NumericSystem::Normalization::LeftmostNonzero}, jobs);
      }
    }
  }
}

TEST(SkipEdges, UnitaryBuildMatchesDenseReference) {
  const qc::Circuit circuit = randomCliffordT(21, 4, 25);
  AlgebraicSystem::Config materialized;
  materialized.skipIdentities = false;
  dd::Package<AlgebraicSystem> skipPkg(4);
  dd::Package<AlgebraicSystem> matPkg(4, materialized);
  const auto skipU = qc::buildUnitary(skipPkg, circuit);
  const auto matU = qc::buildUnitary(matPkg, circuit);
  const la::Matrix skipDense = dd::toDenseMatrix(skipPkg, skipU);
  const la::Matrix matDense = dd::toDenseMatrix(matPkg, matU);
  EXPECT_LE(la::Matrix::maxAbsDifference(skipDense, matDense), 1e-12);
  EXPECT_LE(skipPkg.countNodes(skipU), matPkg.countNodes(matU))
      << "skipping never represents the same operator with more nodes";
}

// -- serialization --------------------------------------------------------------

TEST(SkipEdges, MatrixSnapshotRoundTripsSkipEdges) {
  dd::Package<AlgebraicSystem> p(6);
  const auto h = p.makeGate(gateOf(p, qc::GateKind::H), 3);
  const auto bytes = io::saveMatrix(p, h);
  EXPECT_EQ(io::readInfo(bytes).nodeCount, 1U) << "skipped levels serialize no nodes";
  const auto loaded = io::loadMatrix(p, bytes);
  EXPECT_TRUE(loaded == h) << "same node, weight, and entering level";
  // The node-free identity round-trips as a pure root record.
  const auto identityBytes = io::saveMatrix(p, p.makeIdentity());
  EXPECT_EQ(io::readInfo(identityBytes).nodeCount, 0U);
  EXPECT_TRUE(io::loadMatrix(p, identityBytes) == p.makeIdentity());
}

TEST(SkipEdges, MaterializedMatrixSnapshotCollapsesOnLoad) {
  // A v2 snapshot written by a skip-disabled package holds explicit identity
  // towers; loading it into a skip-enabled package re-canonicalizes them
  // away.
  AlgebraicSystem::Config materialized;
  materialized.skipIdentities = false;
  dd::Package<AlgebraicSystem> writer(5, materialized);
  const auto bytes = io::saveMatrix(writer, writer.makeGate(gateOf(writer, qc::GateKind::T), 2));
  EXPECT_EQ(io::readInfo(bytes).nodeCount, 5U);

  dd::Package<AlgebraicSystem> reader(5);
  const auto loaded = io::loadMatrix(reader, bytes);
  EXPECT_EQ(reader.countNodes(loaded), 1U);
  EXPECT_TRUE(loaded == reader.makeGate(gateOf(reader, qc::GateKind::T), 2));
}

TEST(SkipEdges, V1MatrixIdentityTowerLoadsAndCollapses) {
  // Hand-written QDDS v1 (no edge-level records) of the 3-qubit identity as
  // the old representation stored it: a tower of three diagonal nodes.  The
  // v2 reader must accept it and collapse the tower to the terminal edge.
  using Codec = io::SystemCodec<NumericSystem>;
  NumericSystem system({0.0, NumericSystem::Normalization::LeftmostNonzero});
  io::ByteWriter payload;
  Codec::writeMeta(payload, system);
  payload.varint(2); // weights: [one, zero]
  payload.varint(3); // nodes: the var 2..0 tower
  Codec::writeWeight(payload, system, system.one());
  Codec::writeWeight(payload, system, system.zero());
  for (std::uint64_t level = 0; level < 3; ++level) {
    payload.varint(2 - level);              // var, bottom-up
    payload.varint(level);                  // e[0] -> previous record (0 = terminal)
    payload.varint(0);                      // weight one
    payload.varint(0);                      // e[1] -> zero stub
    payload.varint(1);
    payload.varint(0);                      // e[2] -> zero stub
    payload.varint(1);
    payload.varint(level);                  // e[3] -> previous record
    payload.varint(0);
  }
  payload.varint(3); // root -> top node
  payload.varint(0);

  io::ByteWriter file;
  file.raw(io::kQddsMagic);
  file.u16(1); // v1 envelope
  file.u8(static_cast<std::uint8_t>(io::DdKind::Matrix));
  file.u8(static_cast<std::uint8_t>(io::SystemTag::Numeric));
  file.u32(3);
  file.u64(payload.size());
  file.u32(0);
  file.raw(payload.bytes());
  file.u32(io::Crc32::of(file.bytes()));
  const std::vector<std::uint8_t> bytes = file.take();
  EXPECT_EQ(io::readInfo(bytes).version, 1U);

  dd::Package<NumericSystem> p(3, {0.0, NumericSystem::Normalization::LeftmostNonzero});
  const std::size_t live = p.allocatedNodes();
  const auto loaded = io::loadMatrix(p, bytes);
  EXPECT_TRUE(loaded == p.makeIdentity()) << "tower collapses to the terminal identity";
  EXPECT_EQ(p.allocatedNodes(), live) << "no tower node survives the rebuild";
}

// -- observability --------------------------------------------------------------

TEST(SkipEdges, ProfilerCountsSkippedLevels) {
  dd::Package<AlgebraicSystem> p(8);
  const auto h = p.makeGate(gateOf(p, qc::GateKind::H), 3);
  const obs::DdProfile profile = obs::profileDd(p, h);
  EXPECT_EQ(profile.totalNodes, 1U);
  ASSERT_EQ(profile.levels.size(), 8U);
  for (std::size_t level = 0; level < 8; ++level) {
    if (level == 3) {
      EXPECT_EQ(profile.levels[level].nodes, 1U);
      EXPECT_EQ(profile.levels[level].skippedBy, 0U);
    } else {
      EXPECT_EQ(profile.levels[level].nodes, 0U);
      EXPECT_GE(profile.levels[level].skippedBy, 1U) << "level " << level;
    }
  }
  // Fully materialized diagrams report zero skips everywhere.
  AlgebraicSystem::Config materialized;
  materialized.skipIdentities = false;
  dd::Package<AlgebraicSystem> m(8, materialized);
  const obs::DdProfile matProfile = obs::profileDd(m, m.makeGate(gateOf(m, qc::GateKind::H), 3));
  for (const obs::LevelProfile& level : matProfile.levels) {
    EXPECT_EQ(level.skippedBy, 0U);
  }
}

} // namespace
