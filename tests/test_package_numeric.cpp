#include "core/export.hpp"
#include "core/numeric_system.hpp"
#include "core/package.hpp"
#include "linalg/dense.hpp"
#include "qc/gates.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace qadd::dd {
namespace {

using Pkg = Package<NumericSystem>;

NumericSystem::Config exactConfig() {
  return {0.0, NumericSystem::Normalization::LeftmostNonzero};
}

Pkg::GateMatrix gateOf(Pkg& p, qc::GateKind kind) {
  const auto m = qc::complexMatrix(kind);
  return {p.system().fromComplex(m[0]), p.system().fromComplex(m[1]),
          p.system().fromComplex(m[2]), p.system().fromComplex(m[3])};
}

TEST(NumericPackage, ZeroStateAmplitudes) {
  Pkg p(3, exactConfig());
  const auto state = p.makeZeroState();
  const auto amplitudes = p.amplitudes(state);
  ASSERT_EQ(amplitudes.size(), 8U);
  EXPECT_EQ(amplitudes[0], std::complex<double>(1.0, 0.0));
  for (std::size_t i = 1; i < 8; ++i) {
    EXPECT_EQ(amplitudes[i], std::complex<double>(0.0, 0.0));
  }
  EXPECT_EQ(p.countNodes(state), 3U);
}

TEST(NumericPackage, BasisStateIndexConvention) {
  Pkg p(3, exactConfig());
  const bool bits[] = {true, false, true}; // |101>: qubit 0 (top) = 1
  const auto state = p.makeBasisState(bits);
  const auto amplitudes = p.amplitudes(state);
  // Top qubit is the most significant bit: index 0b101 = 5.
  EXPECT_EQ(amplitudes[5], std::complex<double>(1.0, 0.0));
  EXPECT_EQ(p.amplitude(state, bits), std::complex<double>(1.0, 0.0));
}

TEST(NumericPackage, IdentityIsTerminalSkipEdge) {
  // With skip-level edges the identity needs no nodes at all: it is the
  // non-zero terminal edge (implicit identity over the whole context).
  Pkg p(4, exactConfig());
  const auto identity = p.makeIdentity();
  EXPECT_TRUE(identity.isTerminal());
  EXPECT_EQ(p.countNodes(identity), 0U);
  const la::Matrix dense = toDenseMatrix(p, identity);
  EXPECT_LE(la::Matrix::maxAbsDifference(dense, la::Matrix::identity(16)), 1e-14);
}

TEST(NumericPackage, IdentityIsDiagonalChainWhenSkippingDisabled) {
  auto config = exactConfig();
  config.skipIdentities = false;
  Pkg p(4, config);
  const auto identity = p.makeIdentity();
  EXPECT_EQ(p.countNodes(identity), 4U);
  const la::Matrix dense = toDenseMatrix(p, identity);
  EXPECT_LE(la::Matrix::maxAbsDifference(dense, la::Matrix::identity(16)), 1e-14);
}

TEST(NumericPackage, PaperFig1HadamardKronIdentity) {
  // U = H (x) I_2: the worked example of the paper (Fig. 1).  The classic
  // QMDD has two nodes (one q0 node, one shared q1 identity node); with
  // skip-level edges the identity on q1 is implicit and only the H node
  // remains.
  Pkg p(2, exactConfig());
  const auto u = p.makeGate(gateOf(p, qc::GateKind::H), 0);
  EXPECT_EQ(p.countNodes(u), 1U);
  const la::Matrix dense = toDenseMatrix(p, u);
  const double s = 1.0 / std::sqrt(2.0);
  la::Matrix expected(4);
  expected.at(0, 0) = s;
  expected.at(1, 1) = s;
  expected.at(0, 2) = s;
  expected.at(1, 3) = s;
  expected.at(2, 0) = s;
  expected.at(3, 1) = s;
  expected.at(2, 2) = -s;
  expected.at(3, 3) = -s;
  EXPECT_LE(la::Matrix::maxAbsDifference(dense, expected), 1e-14);
}

TEST(NumericPackage, MakeNodeIsCanonical) {
  // Building the same node twice must return the same pointer (unique table).
  Pkg p(1, exactConfig());
  const auto h1 = p.makeGate(gateOf(p, qc::GateKind::H), 0);
  const auto h2 = p.makeGate(gateOf(p, qc::GateKind::H), 0);
  EXPECT_EQ(h1.node, h2.node);
  EXPECT_EQ(h1.w, h2.w);
  EXPECT_EQ(h1, h2);
}

TEST(NumericPackage, ScalarMultiplesShareStructure) {
  // Nodes differing only by a scalar factor must collapse to the same node
  // (the QMDD weighted-edge property, Example 3 of the paper).
  Pkg p(1, exactConfig());
  const auto z = p.makeGate(gateOf(p, qc::GateKind::Z), 0);
  const auto s = p.makeGate(gateOf(p, qc::GateKind::S), 0);
  // Z = diag(1,-1), S = diag(1, i): different weights, same skeleton.
  ASSERT_NE(z.node, nullptr);
  ASSERT_NE(s.node, nullptr);
  // Their squared versions: S^2 = Z.
  const auto ss = p.multiply(s, s);
  EXPECT_EQ(ss, z);
}

TEST(NumericPackage, AdditionMatchesDense) {
  Pkg p(2, exactConfig());
  const auto h0 = p.makeGate(gateOf(p, qc::GateKind::H), 0);
  const auto x1 = p.makeGate(gateOf(p, qc::GateKind::X), 1);
  const auto sum = p.add(h0, x1);
  const la::Matrix expected = toDenseMatrix(p, h0) + toDenseMatrix(p, x1);
  EXPECT_LE(la::Matrix::maxAbsDifference(toDenseMatrix(p, sum), expected), 1e-14);
}

TEST(NumericPackage, MatrixVectorAgainstDense) {
  std::mt19937_64 rng(3);
  const qc::GateKind kinds[] = {qc::GateKind::H, qc::GateKind::X, qc::GateKind::T,
                                qc::GateKind::S, qc::GateKind::V, qc::GateKind::Z};
  for (int trial = 0; trial < 20; ++trial) {
    Pkg p(4, exactConfig());
    auto state = p.makeZeroState();
    la::Vector dense = la::Vector::basisState(16, 0);
    for (int step = 0; step < 12; ++step) {
      const auto kind = kinds[rng() % std::size(kinds)];
      const auto target = static_cast<Qubit>(rng() % 4);
      const auto gate = p.makeGate(gateOf(p, kind), target);
      state = p.multiply(gate, state);
      dense = toDenseMatrix(p, gate) * dense;
    }
    const auto amplitudes = p.amplitudes(state);
    for (std::size_t i = 0; i < 16; ++i) {
      EXPECT_NEAR(std::abs(amplitudes[i] - dense[i]), 0.0, 1e-10);
    }
  }
}

TEST(NumericPackage, MatrixMatrixAgainstDense) {
  std::mt19937_64 rng(5);
  Pkg p(3, exactConfig());
  auto accumulated = p.makeIdentity();
  la::Matrix dense = la::Matrix::identity(8);
  const qc::GateKind kinds[] = {qc::GateKind::H, qc::GateKind::X, qc::GateKind::T,
                                qc::GateKind::Y};
  for (int step = 0; step < 10; ++step) {
    const auto kind = kinds[rng() % std::size(kinds)];
    const auto target = static_cast<Qubit>(rng() % 3);
    const auto gate = p.makeGate(gateOf(p, kind), target);
    accumulated = p.multiply(gate, accumulated);
    dense = toDenseMatrix(p, gate) * dense;
  }
  EXPECT_LE(la::Matrix::maxAbsDifference(toDenseMatrix(p, accumulated), dense), 1e-10);
}

TEST(NumericPackage, ControlledGatesMatchDense) {
  Pkg p(3, exactConfig());
  // CNOT(control 0, target 2) with an uninvolved middle qubit.
  const std::pair<Qubit, Pkg::Control> controls[] = {{0, Pkg::Control::Positive}};
  const auto cnot = p.makeGate(gateOf(p, qc::GateKind::X), 2, controls);
  const la::Matrix dense = toDenseMatrix(p, cnot);
  for (std::size_t row = 0; row < 8; ++row) {
    for (std::size_t col = 0; col < 8; ++col) {
      const std::size_t expectedCol = (row & 4) != 0 ? (row ^ 1) : row;
      EXPECT_NEAR(std::abs(dense.at(row, col) - ((col == expectedCol) ? 1.0 : 0.0)), 0.0, 1e-14);
    }
  }
}

TEST(NumericPackage, NegativeControl) {
  Pkg p(2, exactConfig());
  const std::pair<Qubit, Pkg::Control> controls[] = {{0, Pkg::Control::Negative}};
  const auto gate = p.makeGate(gateOf(p, qc::GateKind::X), 1, controls);
  const la::Matrix dense = toDenseMatrix(p, gate);
  // X applies when control is |0>: swaps columns 0/1, identity on 2/3.
  EXPECT_NEAR(std::abs(dense.at(0, 1) - 1.0), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(dense.at(1, 0) - 1.0), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(dense.at(2, 2) - 1.0), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(dense.at(3, 3) - 1.0), 0.0, 1e-14);
}

TEST(NumericPackage, KroneckerMatchesDense) {
  // Kron of two single-qubit identity nodes equals the 2-qubit identity.
  Pkg single(2, exactConfig());
  const auto top = single.makeMNode(0, {Pkg::MEdge{nullptr, single.system().one()},
                                        single.zeroMatrix(), single.zeroMatrix(),
                                        Pkg::MEdge{nullptr, single.system().one()}});
  const auto bottom = single.makeMNode(1, {Pkg::MEdge{nullptr, single.system().one()},
                                           single.zeroMatrix(), single.zeroMatrix(),
                                           Pkg::MEdge{nullptr, single.system().one()}});
  const auto identity = single.kronecker(top, bottom);
  EXPECT_EQ(identity, single.makeIdentity());
}

TEST(NumericPackage, ConjugateTransposeUnitarity) {
  Pkg p(3, exactConfig());
  const std::pair<Qubit, Pkg::Control> controls[] = {{1, Pkg::Control::Positive}};
  auto u = p.makeGate(gateOf(p, qc::GateKind::V), 2, controls);
  u = p.multiply(p.makeGate(gateOf(p, qc::GateKind::H), 0), u);
  const auto uDagger = p.conjugateTranspose(u);
  const auto product = p.multiply(u, uDagger);
  EXPECT_LE(la::Matrix::maxAbsDifference(toDenseMatrix(p, product), la::Matrix::identity(8)),
            1e-12);
}

TEST(NumericPackage, InnerProduct) {
  Pkg p(2, exactConfig());
  const auto zero = p.makeZeroState();
  const auto h = p.makeGate(gateOf(p, qc::GateKind::H), 0);
  const auto plus = p.multiply(h, zero);
  // <0|+> = 1/sqrt2.
  const auto overlap = p.system().toComplex(p.innerProduct(zero, plus));
  EXPECT_NEAR(overlap.real(), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(overlap.imag(), 0.0, 1e-12);
  // <psi|psi> = 1.
  const auto norm = p.system().toComplex(p.innerProduct(plus, plus));
  EXPECT_NEAR(norm.real(), 1.0, 1e-12);
}

TEST(NumericPackage, GarbageCollectionKeepsReferencedNodes) {
  Pkg p(4, exactConfig());
  auto state = p.makeZeroState();
  p.incRef(state);
  const std::size_t before = p.countNodes(state);
  // Create garbage: many transient states.
  for (int i = 0; i < 10; ++i) {
    const auto h = p.makeGate(gateOf(p, qc::GateKind::H), static_cast<Qubit>(i % 4));
    const auto next = p.multiply(h, state);
    p.incRef(next);
    p.decRef(state);
    state = next;
  }
  p.garbageCollect();
  EXPECT_EQ(p.countNodes(state), p.allocatedNodes())
      << "after GC only the referenced state may survive";
  EXPECT_GE(p.countNodes(state), before);
  // The state is still intact.
  const auto amplitudes = p.amplitudes(state);
  double norm = 0.0;
  for (const auto& a : amplitudes) {
    norm += std::norm(a);
  }
  EXPECT_NEAR(norm, 1.0, 1e-12);
}

TEST(NumericPackage, DotExportSmoke) {
  Pkg p(2, exactConfig());
  const auto u = p.makeGate(gateOf(p, qc::GateKind::H), 0);
  const std::string dot = toDot(p, u);
  EXPECT_NE(dot.find("digraph qmdd"), std::string::npos);
  EXPECT_NE(dot.find("q0"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

} // namespace
} // namespace qadd::dd
