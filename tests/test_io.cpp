/// Tests for qadd::io — the byte codecs (CRC-32, varints, float records), the
/// QDDS snapshot format (round trips under both weight systems, corruption
/// and cross-configuration rejection, load-time dedup), the QCKP simulator
/// checkpoints, the QREF reference cache, and the algebraic -> numeric
/// snapshot conversion.  Also pins the fig3 eps=1e-5 tolerance-mode
/// regression: a reloaded reference state must match a recomputation exactly.
#include "algorithms/grover.hpp"
#include "eval/reference_cache.hpp"
#include "eval/trace.hpp"
#include "io/checkpoint.hpp"
#include "io/snapshot.hpp"
#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <random>

namespace qadd {
namespace {

using dd::AlgebraicSystem;
using dd::NumericSystem;

// -- byte codecs ------------------------------------------------------------------

TEST(IoCodec, Crc32CheckValue) {
  const std::uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(io::Crc32::of(digits), 0xCBF43926U);
  EXPECT_EQ(io::Crc32::of({}), 0x00000000U);
  // Incremental updates must match the one-shot digest.
  io::Crc32 incremental;
  incremental.update(std::span(digits).first(4)).update(std::span(digits).subspan(4));
  EXPECT_EQ(incremental.value(), 0xCBF43926U);
}

TEST(IoCodec, VarintRoundTrip) {
  io::ByteWriter writer;
  const std::uint64_t values[] = {0,   1,   127, 128,  129,  16383, 16384,
                                  255, 300, 1ULL << 32, ~0ULL};
  for (const std::uint64_t value : values) {
    writer.varint(value);
  }
  io::ByteReader reader(writer.bytes());
  for (const std::uint64_t value : values) {
    EXPECT_EQ(reader.varint(), value);
  }
  EXPECT_TRUE(reader.atEnd());
}

TEST(IoCodec, SignedVarintRoundTrip) {
  io::ByteWriter writer;
  const std::int64_t values[] = {0, -1, 1, -64, 64, std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (const std::int64_t value : values) {
    writer.svarint(value);
  }
  io::ByteReader reader(writer.bytes());
  for (const std::int64_t value : values) {
    EXPECT_EQ(reader.svarint(), value);
  }
  // Zigzag keeps small magnitudes short: -1 encodes in one byte.
  io::ByteWriter one;
  one.svarint(-1);
  EXPECT_EQ(one.size(), 1U);
}

TEST(IoCodec, FixedWidthLittleEndian) {
  io::ByteWriter writer;
  writer.u16(0x1234);
  writer.u32(0xDEADBEEF);
  writer.u64(0x0102030405060708ULL);
  EXPECT_EQ(writer.bytes()[0], 0x34); // least-significant byte first
  io::ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.u16(), 0x1234);
  EXPECT_EQ(reader.u32(), 0xDEADBEEFU);
  EXPECT_EQ(reader.u64(), 0x0102030405060708ULL);
}

TEST(IoCodec, ReaderThrowsOnOverrun) {
  const std::vector<std::uint8_t> two{0x01, 0x02};
  io::ByteReader reader(two);
  EXPECT_THROW((void)reader.u32(), io::SnapshotError);
  // A runaway varint (continuation bit forever) is rejected.
  const std::vector<std::uint8_t> runaway(11, 0x80);
  io::ByteReader varintReader(runaway);
  EXPECT_THROW((void)varintReader.varint(), io::SnapshotError);
  // A block whose length prefix exceeds the buffer is rejected.
  const std::vector<std::uint8_t> liar{0x7F, 0x01};
  io::ByteReader blockReader(liar);
  EXPECT_THROW((void)blockReader.block(), io::SnapshotError);
}

TEST(IoCodec, FloatRecordRoundTripIsExact) {
  const double values[] = {0.0,
                           1.0,
                           -1.0,
                           1.0 / 3.0,
                           -0.7071067811865476,
                           std::numeric_limits<double>::min(),
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max(),
                           3.141592653589793};
  for (const double value : values) {
    io::ByteWriter writer;
    io::detail::writeFloat<double>(writer, value);
    io::ByteReader reader(writer.bytes());
    const double back = io::detail::readFloat<double>(reader);
    EXPECT_EQ(back, value); // bit-exact, not approximate
    EXPECT_TRUE(reader.atEnd());
  }
  // Long double (64-bit mantissa on x86) must survive too — the record stores
  // mantissa bits, not the in-memory layout with its padding bytes.
  const long double extended = 1.0L / 3.0L;
  io::ByteWriter writer;
  io::detail::writeFloat<long double>(writer, extended);
  io::ByteReader reader(writer.bytes());
  EXPECT_EQ(io::detail::readFloat<long double>(reader), extended);
}

TEST(IoCodec, FloatRecordRejectsNonFinite) {
  io::ByteWriter writer;
  EXPECT_THROW(io::detail::writeFloat<double>(writer, std::numeric_limits<double>::infinity()),
               io::SnapshotError);
  EXPECT_THROW(io::detail::writeFloat<double>(writer, std::nan("")), io::SnapshotError);
}

// -- QDDS snapshots ---------------------------------------------------------------

/// |GHZ_n> — exactly representable, nontrivial shared structure.
qc::Circuit ghzCircuit(qc::Qubit nqubits) {
  qc::Circuit circuit(nqubits, "ghz");
  circuit.h(0);
  for (qc::Qubit q = 1; q < nqubits; ++q) {
    circuit.cx(q - 1, q);
  }
  return circuit;
}

TEST(QddsSnapshot, AlgebraicVectorRoundTripSamePackage) {
  qc::Simulator<AlgebraicSystem> simulator(ghzCircuit(6));
  simulator.run();
  const auto bytes = io::saveVector(simulator.package(), simulator.state());

  const auto reloaded = io::loadVector(simulator.package(), bytes);
  // Canonicity: re-interning into the same package reproduces the exact edge.
  EXPECT_TRUE(reloaded == simulator.state());
}

TEST(QddsSnapshot, AlgebraicVectorRoundTripFreshPackageIsBitIdentical) {
  qc::Simulator<AlgebraicSystem> simulator(ghzCircuit(6));
  simulator.run();
  auto& package = simulator.package();
  const auto bytes = io::saveVector(package, simulator.state());

  dd::Package<AlgebraicSystem> fresh(package.qubits());
  const auto reloaded = io::loadVector(fresh, bytes);
  EXPECT_EQ(fresh.countNodes(reloaded), package.countNodes(simulator.state()));
  // Strongest exactness check: re-serializing the reloaded DD reproduces the
  // original byte stream (same topological order, same interned weights).
  EXPECT_EQ(io::saveVector(fresh, reloaded), bytes);
}

TEST(QddsSnapshot, NumericVectorRoundTripUlpExact) {
  for (const double epsilon : {0.0, 1e-10, 1e-5}) {
    qc::Simulator<NumericSystem> simulator(
        ghzCircuit(5), {epsilon, NumericSystem::Normalization::LeftmostNonzero});
    simulator.run();
    const auto bytes = io::saveVector(simulator.package(), simulator.state());

    dd::Package<NumericSystem> fresh(simulator.package().qubits(),
                                     {epsilon, NumericSystem::Normalization::LeftmostNonzero});
    const auto reloaded = io::loadVector(fresh, bytes);
    const auto original = simulator.package().amplitudes(simulator.state());
    const auto restored = fresh.amplitudes(reloaded);
    ASSERT_EQ(original.size(), restored.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
      // ULP-0: the float records are bit patterns, not approximations.
      EXPECT_EQ(restored[i].real(), original[i].real()) << "eps " << epsilon << " index " << i;
      EXPECT_EQ(restored[i].imag(), original[i].imag()) << "eps " << epsilon << " index " << i;
    }
  }
}

TEST(QddsSnapshot, MatrixRoundTrip) {
  dd::Package<AlgebraicSystem> package(3);
  const qc::Operation hadamard{qc::GateKind::H, 0.0, 1, {}};
  const auto gate = qc::makeOperationDD(package, hadamard);
  const auto bytes = io::saveMatrix(package, gate);
  EXPECT_EQ(io::readInfo(bytes).kind, io::DdKind::Matrix);

  const auto reloaded = io::loadMatrix(package, bytes);
  EXPECT_TRUE(reloaded == gate);

  dd::Package<AlgebraicSystem> fresh(3);
  const auto rebuilt = io::loadMatrix(fresh, bytes);
  EXPECT_EQ(io::saveMatrix(fresh, rebuilt), bytes);
}

TEST(QddsSnapshot, ReadInfoReportsHeaderFields) {
  qc::Simulator<AlgebraicSystem> simulator(ghzCircuit(7));
  simulator.run();
  const auto bytes = io::saveVector(simulator.package(), simulator.state());
  const io::SnapshotInfo info = io::readInfo(bytes);
  EXPECT_EQ(info.kind, io::DdKind::Vector);
  EXPECT_EQ(info.system, io::SystemTag::Algebraic);
  EXPECT_EQ(info.qubits, 7U);
  EXPECT_EQ(info.nodeCount, simulator.package().countNodes(simulator.state()));
  EXPECT_EQ(info.totalBytes, bytes.size());
  EXPECT_EQ(info.payloadBytes + io::kQddsHeaderBytes + io::kQddsFooterBytes, bytes.size());
}

TEST(QddsSnapshot, LoadDedupsAgainstLiveNodes) {
  qc::Simulator<AlgebraicSystem> simulator(ghzCircuit(6));
  simulator.run();
  auto& package = simulator.package();
  const auto bytes = io::saveVector(package, simulator.state());
  const std::size_t nodeCount = package.countNodes(simulator.state());

  const std::size_t allocatedBefore = package.allocatedNodes();
  const std::uint64_t dedupBefore = package.counters().io.loadDedupNodes.value();
  const auto reloaded = io::loadVector(package, bytes);
  EXPECT_TRUE(reloaded == simulator.state());
  // Every stored node already lives in the unique table: nothing allocated,
  // everything counted as deduplicated (counters are no-ops with QADD_OBS=OFF).
  EXPECT_EQ(package.allocatedNodes(), allocatedBefore);
  if (obs::kEnabled) {
    EXPECT_EQ(package.counters().io.loadDedupNodes.value(), dedupBefore + nodeCount);
  }
}

TEST(QddsSnapshot, RejectsCorruptionEverywhere) {
  qc::Simulator<AlgebraicSystem> simulator(ghzCircuit(4));
  simulator.run();
  const auto bytes = io::saveVector(simulator.package(), simulator.state());
  dd::Package<AlgebraicSystem> fresh(4);

  // Any flipped byte must be caught (CRC covers header + payload; the CRC
  // bytes themselves then disagree with the recomputed digest).
  for (const std::size_t index : {std::size_t{0}, std::size_t{5}, bytes.size() / 2, bytes.size() - 1}) {
    auto corrupted = bytes;
    corrupted[index] ^= 0x40;
    EXPECT_THROW((void)io::loadVector(fresh, corrupted), io::SnapshotError) << "byte " << index;
  }
  // Truncation at any prefix length.
  for (const std::size_t keep : {std::size_t{0}, std::size_t{3}, io::kQddsHeaderBytes, bytes.size() - 1}) {
    const std::vector<std::uint8_t> truncated(bytes.begin(),
                                              bytes.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW((void)io::loadVector(fresh, truncated), io::SnapshotError) << "keep " << keep;
  }
  // Trailing garbage changes the digest too.
  auto extended = bytes;
  extended.push_back(0x00);
  EXPECT_THROW((void)io::loadVector(fresh, extended), io::SnapshotError);
}

TEST(QddsSnapshot, RejectsCrossConfigurationLoads) {
  qc::Simulator<AlgebraicSystem> algebraic(ghzCircuit(4));
  algebraic.run();
  const auto algebraicBytes = io::saveVector(algebraic.package(), algebraic.state());

  qc::Simulator<NumericSystem> numeric(ghzCircuit(4),
                                       {1e-5, NumericSystem::Normalization::LeftmostNonzero});
  numeric.run();
  const auto numericBytes = io::saveVector(numeric.package(), numeric.state());

  // Wrong weight system.
  dd::Package<NumericSystem> numericTarget(4, {1e-5, NumericSystem::Normalization::LeftmostNonzero});
  EXPECT_THROW((void)io::loadVector(numericTarget, algebraicBytes), io::SnapshotError);
  dd::Package<AlgebraicSystem> algebraicTarget(4);
  EXPECT_THROW((void)io::loadVector(algebraicTarget, numericBytes), io::SnapshotError);
  // Wrong tolerance: a snapshot taken at eps=1e-5 must not silently feed an
  // eps=0 table (the weights would masquerade as exact).
  dd::Package<NumericSystem> exactTarget(4, {0.0, NumericSystem::Normalization::LeftmostNonzero});
  EXPECT_THROW((void)io::loadVector(exactTarget, numericBytes), io::SnapshotError);
  // Wrong kind.
  EXPECT_THROW((void)io::loadMatrix(algebraicTarget, algebraicBytes), io::SnapshotError);
  // Wrong register width.
  dd::Package<AlgebraicSystem> narrowTarget(3);
  EXPECT_THROW((void)io::loadVector(narrowTarget, algebraicBytes), io::SnapshotError);
}

TEST(QddsSnapshot, AlgebraicNormalizationMismatchIsAllowed) {
  // Exact weights re-normalize losslessly, so a GcdDOmega package may load a
  // QOmegaInverse snapshot; the amplitudes must agree exactly.
  qc::Simulator<AlgebraicSystem> simulator(ghzCircuit(5));
  simulator.run();
  const auto bytes = io::saveVector(simulator.package(), simulator.state());

  dd::Package<AlgebraicSystem> gcd(5, {AlgebraicSystem::Normalization::GcdDOmega});
  const auto reloaded = io::loadVector(gcd, bytes);
  const auto original = simulator.package().amplitudes(simulator.state());
  const auto restored = gcd.amplitudes(reloaded);
  ASSERT_EQ(original.size(), restored.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(std::abs(restored[i] - original[i]), 0.0, 1e-15);
  }
}

TEST(QddsSnapshot, FileRoundTrip) {
  qc::Simulator<AlgebraicSystem> simulator(ghzCircuit(5));
  simulator.run();
  const auto bytes = io::saveVector(simulator.package(), simulator.state());
  const std::string path = "test_io_roundtrip.qdds";
  io::writeBytesFile(path, bytes);
  EXPECT_EQ(io::readBytesFile(path), bytes);
  std::remove(path.c_str());
  EXPECT_THROW((void)io::readBytesFile(path), io::SnapshotError);
}

// -- algebraic -> numeric conversion ----------------------------------------------

TEST(QddsSnapshot, ConvertVectorPreservesState) {
  const qc::Circuit circuit = algos::grover({5, 11, 0});
  qc::Simulator<AlgebraicSystem> simulator(circuit);
  simulator.run();

  dd::Package<NumericSystem> numeric(simulator.package().qubits(),
                                     {0.0, NumericSystem::Normalization::LeftmostNonzero});
  const auto converted =
      io::convertVector(simulator.package(), simulator.state(), numeric);
  const auto exact = simulator.package().amplitudes(simulator.state());
  const auto rounded = numeric.amplitudes(converted);
  ASSERT_EQ(exact.size(), rounded.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(std::abs(rounded[i] - exact[i]), 0.0, 1e-12) << "index " << i;
  }
  // Width mismatch is refused.
  dd::Package<NumericSystem> narrow(3, {0.0, NumericSystem::Normalization::LeftmostNonzero});
  EXPECT_THROW((void)io::convertVector(simulator.package(), simulator.state(), narrow),
               io::SnapshotError);
}

// -- QCKP checkpoints -------------------------------------------------------------

TEST(Checkpoint, EnvelopeRoundTrip) {
  io::CheckpointData data;
  data.gateIndex = 123;
  data.circuitText = "qubits 3\nh 0\ncx 0 1\n";
  data.snapshot = {0xDE, 0xAD, 0xBE, 0xEF};
  const auto bytes = io::writeCheckpoint(data);
  const io::CheckpointData back = io::readCheckpoint(bytes);
  EXPECT_EQ(back.gateIndex, data.gateIndex);
  EXPECT_EQ(back.circuitText, data.circuitText);
  EXPECT_EQ(back.snapshot, data.snapshot);

  auto corrupted = bytes;
  corrupted[bytes.size() / 2] ^= 0x01;
  EXPECT_THROW((void)io::readCheckpoint(corrupted), io::SnapshotError);
}

TEST(Checkpoint, ResumedGroverMatchesStraightRunExactly) {
  const qc::Circuit circuit = algos::grover({5, 7, 0});

  qc::Simulator<AlgebraicSystem> straight(circuit);
  straight.run();
  const auto straightBytes = io::saveVector(straight.package(), straight.state());

  // Run half the circuit, checkpoint, resume in a brand-new simulator.
  qc::Simulator<AlgebraicSystem> first(circuit);
  const std::size_t half = circuit.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(first.step());
  }
  const auto checkpoint = first.saveCheckpoint();

  qc::Simulator<AlgebraicSystem> resumed(circuit);
  resumed.resumeFrom(checkpoint);
  EXPECT_EQ(resumed.gateIndex(), half);
  resumed.run();
  // Bit-exact: the serialized final states are identical byte streams.
  EXPECT_EQ(io::saveVector(resumed.package(), resumed.state()), straightBytes);
}

TEST(Checkpoint, ResumeRejectsForeignCircuit) {
  qc::Simulator<AlgebraicSystem> simulator(ghzCircuit(4));
  simulator.run();
  const auto checkpoint = simulator.saveCheckpoint();

  qc::Simulator<AlgebraicSystem> other(ghzCircuit(5));
  EXPECT_THROW(other.resumeFrom(checkpoint), io::SnapshotError);
}

// -- QREF reference cache ---------------------------------------------------------

TEST(ReferenceCache, EncodeDecodeRoundTrip) {
  const qc::Circuit circuit = algos::grover({4, 5, 0});
  eval::TraceOptions options;
  options.sampleEvery = 7;
  options.captureFinalState = true;

  eval::ReferenceTrajectory trajectory;
  const eval::SimulationTrace trace = eval::traceAlgebraic(circuit, options, {}, &trajectory);
  ASSERT_FALSE(trace.finalStateSnapshot.empty());

  const auto blob =
      eval::encodeReference(circuit, options, trace, trajectory, trace.finalStateSnapshot);
  eval::SimulationTrace decodedTrace;
  eval::ReferenceTrajectory decodedTrajectory;
  std::vector<std::uint8_t> decodedFinal;
  ASSERT_TRUE(eval::decodeReference(blob, circuit, options, decodedTrace, decodedTrajectory,
                                    decodedFinal));
  EXPECT_EQ(decodedTrace.label, trace.label);
  EXPECT_EQ(decodedTrace.finalNodes, trace.finalNodes);
  EXPECT_EQ(decodedTrace.points.size(), trace.points.size());
  for (std::size_t i = 0; i < trace.points.size(); ++i) {
    EXPECT_EQ(decodedTrace.points[i].gateIndex, trace.points[i].gateIndex);
    EXPECT_EQ(decodedTrace.points[i].nodes, trace.points[i].nodes);
  }
  ASSERT_EQ(decodedTrajectory.samples.size(), trajectory.samples.size());
  for (std::size_t s = 0; s < trajectory.samples.size(); ++s) {
    EXPECT_EQ(decodedTrajectory.samples[s], trajectory.samples[s]); // exact doubles
  }
  EXPECT_EQ(decodedFinal, trace.finalStateSnapshot);

  // A different circuit (or stride) makes the blob stale, not corrupt.
  const qc::Circuit other = algos::grover({4, 6, 0});
  EXPECT_FALSE(eval::decodeReference(blob, other, options, decodedTrace, decodedTrajectory,
                                     decodedFinal));
  eval::TraceOptions otherStride = options;
  otherStride.sampleEvery = 13;
  EXPECT_FALSE(eval::decodeReference(blob, circuit, otherStride, decodedTrace, decodedTrajectory,
                                     decodedFinal));
  // A flipped byte is corruption and must be loud.
  auto corrupted = blob;
  corrupted[blob.size() / 3] ^= 0x10;
  EXPECT_THROW((void)eval::decodeReference(corrupted, circuit, options, decodedTrace,
                                           decodedTrajectory, decodedFinal),
               io::SnapshotError);
}

TEST(ReferenceCache, CachedTraceMatchesComputedTrace) {
  const qc::Circuit circuit = algos::grover({4, 9, 0});
  eval::TraceOptions options;
  options.sampleEvery = 11;
  const std::string path = "test_io_reference.qref";
  std::remove(path.c_str());

  const auto computed = eval::traceAlgebraicCached(circuit, options, path);
  EXPECT_FALSE(computed.fromCache);
  const auto cached = eval::traceAlgebraicCached(circuit, options, path);
  EXPECT_TRUE(cached.fromCache);
  EXPECT_EQ(cached.trace.label, computed.trace.label + " [cached]");
  EXPECT_EQ(cached.trace.finalNodes, computed.trace.finalNodes);
  EXPECT_EQ(cached.trajectory.samples, computed.trajectory.samples);
  // refresh=true forces recomputation even with a valid cache on disk.
  const auto refreshed = eval::traceAlgebraicCached(circuit, options, path, true);
  EXPECT_FALSE(refreshed.fromCache);
  std::remove(path.c_str());
}

// -- fig3 eps=1e-5 regression -----------------------------------------------------

/// The fig3 sweep's interesting tolerance point (eps=1e-5: compact AND
/// accurate).  The ComplexTable's tolerance buckets make numeric runs
/// sensitive to lookup order, so pin the property the reference cache relies
/// on: recomputing the run and reloading its snapshot agree exactly — the
/// reloaded state re-interns onto the recomputed table without drift.
TEST(Fig3Regression, ToleranceModeReloadMatchesRecompute) {
  const qc::Circuit circuit = algos::grover({6, 21, 0});
  const NumericSystem::Config config{1e-5, NumericSystem::Normalization::LeftmostNonzero};

  qc::Simulator<NumericSystem> reference(circuit, config);
  reference.run();
  const auto snapshot = io::saveVector(reference.package(), reference.state());

  // Recompute in a fresh package (fresh allocator, fresh tolerance table).
  qc::Simulator<NumericSystem> recomputed(circuit, config);
  recomputed.run();
  // Determinism pin: the recomputed state serializes to the same bytes.
  EXPECT_EQ(io::saveVector(recomputed.package(), recomputed.state()), snapshot);

  // Reloading the snapshot into the recomputed package lands on the exact
  // same canonical edge — fidelity exactly 1, not 1-O(eps).
  const auto reloaded = io::loadVector(recomputed.package(), snapshot);
  EXPECT_TRUE(reloaded == recomputed.state());
  EXPECT_DOUBLE_EQ(recomputed.package().fidelity(reloaded, recomputed.state()), 1.0);
}

// -- golden snapshot regression ---------------------------------------------------

/// Old-format load-compat pin: a QDDS v1 file written by an earlier release
/// (PR 3 seed build: 5-qubit random Clifford+T state, 31 nodes, 83-bit
/// worst-case coefficients) must still load through the v2 reader.  The
/// rebuilt diagram re-canonicalizes through makeNode (vector DDs have no
/// identity patterns to collapse, so the node count is unchanged), and
/// writing it back now produces v2 bytes — which must themselves be a fixed
/// point of a further load/save round trip.
TEST(IoGolden, Pr3SnapshotLoadsAndResavesByteIdentical) {
  const std::string path = std::string(QADD_TESTDATA_DIR) + "/golden_pr3.qdds";
  std::ifstream file(path, std::ios::binary);
  ASSERT_TRUE(file.is_open()) << "missing golden file: " << path;
  const std::vector<std::uint8_t> golden{std::istreambuf_iterator<char>(file),
                                         std::istreambuf_iterator<char>()};
  ASSERT_EQ(golden.size(), 1973U) << "golden file changed on disk";
  EXPECT_EQ(io::readInfo(golden).version, 1U);

  dd::Package<AlgebraicSystem> package(5);
  const auto state = io::loadVector(package, golden);
  EXPECT_EQ(package.countNodes(state), 31U);

  // Re-serializing upgrades the envelope to the current version and appends
  // one entering-level varint per edge record: 31 nodes * 2 children + root.
  const auto resaved = io::saveVector(package, state);
  EXPECT_EQ(io::readInfo(resaved).version, io::kQddsVersion);
  EXPECT_EQ(resaved.size(), golden.size() + 31U * 2U + 1U);
  const auto reloaded = io::loadVector(package, resaved);
  EXPECT_TRUE(reloaded == state);
  EXPECT_EQ(io::saveVector(package, reloaded), resaved) << "v2 bytes are a fixed point";

  // The state is a unit vector (the generator applied only unitary gates).
  EXPECT_TRUE(package.system().isOne(package.innerProduct(state, state)));
}

} // namespace
} // namespace qadd
