#include "bigint/bigint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>

namespace qadd {
namespace {

TEST(BigInt, DefaultIsZero) {
  const BigInt zero;
  EXPECT_TRUE(zero.isZero());
  EXPECT_FALSE(zero.isNegative());
  EXPECT_EQ(zero.sign(), 0);
  EXPECT_EQ(zero.toString(), "0");
  EXPECT_EQ(zero.bitLength(), 0U);
}

TEST(BigInt, Int64RoundTrip) {
  for (const std::int64_t value :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1}, std::int64_t{42},
        std::int64_t{-123456789}, std::numeric_limits<std::int64_t>::max(),
        std::numeric_limits<std::int64_t>::min()}) {
    const BigInt b{value};
    ASSERT_TRUE(b.fitsInt64()) << value;
    EXPECT_EQ(b.toInt64(), value);
    EXPECT_EQ(b.toString(), std::to_string(value));
  }
}

TEST(BigInt, DecimalStringRoundTrip) {
  for (const char* text : {"0", "1", "-1", "99999999999999999999999999999999999",
                           "-170141183460469231731687303715884105727", "12345678901234567890"}) {
    EXPECT_EQ(BigInt{std::string_view{text}}.toString(), text);
  }
}

TEST(BigInt, DecimalStringRejectsGarbage) {
  EXPECT_THROW(BigInt{std::string_view{""}}, std::invalid_argument);
  EXPECT_THROW(BigInt{std::string_view{"-"}}, std::invalid_argument);
  EXPECT_THROW(BigInt{std::string_view{"12a3"}}, std::invalid_argument);
  EXPECT_THROW(BigInt{std::string_view{"0x10"}}, std::invalid_argument);
}

TEST(BigInt, FitsInt64Boundaries) {
  const BigInt maxValue{std::numeric_limits<std::int64_t>::max()};
  const BigInt minValue{std::numeric_limits<std::int64_t>::min()};
  EXPECT_TRUE(maxValue.fitsInt64());
  EXPECT_TRUE(minValue.fitsInt64());
  EXPECT_FALSE((maxValue + BigInt{1}).fitsInt64());
  EXPECT_FALSE((minValue - BigInt{1}).fitsInt64());
  EXPECT_EQ((minValue - BigInt{1}).toString(), "-9223372036854775809");
}

TEST(BigInt, SignedArithmeticMatchesInt64) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 3000; ++i) {
    const auto x = static_cast<std::int64_t>(rng()) >> (rng() % 30 + 3);
    const auto y = static_cast<std::int64_t>(rng()) >> (rng() % 30 + 3);
    const BigInt bx{x};
    const BigInt by{y};
    EXPECT_EQ((bx + by).toInt64(), x + y);
    EXPECT_EQ((bx - by).toInt64(), x - y);
    if (std::abs(x) < (std::int64_t{1} << 31) && std::abs(y) < (std::int64_t{1} << 31)) {
      EXPECT_EQ((bx * by).toInt64(), x * y);
    }
    if (y != 0) {
      EXPECT_EQ((bx / by).toInt64(), x / y);
      EXPECT_EQ((bx % by).toInt64(), x % y);
    }
  }
}

TEST(BigInt, DivModIdentityOnHugeOperands) {
  std::mt19937_64 rng(11);
  for (int i = 0; i < 100; ++i) {
    BigInt a{1};
    BigInt b{1};
    const int aLimbs = static_cast<int>(rng() % 24) + 1;
    const int bLimbs = static_cast<int>(rng() % 10) + 1;
    for (int j = 0; j < aLimbs; ++j) {
      a *= BigInt{static_cast<std::int64_t>(rng() | 1)};
    }
    for (int j = 0; j < bLimbs; ++j) {
      b *= BigInt{static_cast<std::int64_t>(rng() | 1)};
    }
    if (rng() % 2 == 0) {
      a = -a;
    }
    if (rng() % 2 == 0) {
      b = -b;
    }
    BigInt q;
    BigInt r;
    BigInt::divMod(a, b, q, r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r.abs(), b.abs());
    // Truncated semantics: remainder carries the numerator's sign.
    if (!r.isZero()) {
      EXPECT_EQ(r.sign(), a.sign());
    }
  }
}

TEST(BigInt, KaratsubaAgreesWithSquaredStructure) {
  // (10^k + 1)^2 = 10^2k + 2*10^k + 1 for k large enough to cross the
  // Karatsuba threshold.
  std::string digits = "1";
  digits.append(400, '0');
  digits.push_back('1');
  const BigInt x{std::string_view{digits}};
  // x = 10^401 + 1, so x^2 = 10^802 + 2*10^401 + 1.
  std::string expected = "1";
  expected.append(400, '0');
  expected += "2";
  expected.append(400, '0');
  expected += "1";
  EXPECT_EQ((x * x).toString(), expected);
}

TEST(BigInt, MulDivRoundTripLarge) {
  std::mt19937_64 rng(13);
  for (int i = 0; i < 60; ++i) {
    BigInt a{1};
    BigInt b{static_cast<std::int64_t>(rng() | 1)};
    for (int j = 0; j < 40; ++j) {
      a *= BigInt{static_cast<std::int64_t>(rng())};
    }
    if (a.isZero()) {
      continue;
    }
    BigInt q;
    BigInt r;
    BigInt::divMod(a * b, b, q, r);
    EXPECT_EQ(q, a);
    EXPECT_TRUE(r.isZero());
  }
}

TEST(BigInt, DivRoundNearest) {
  EXPECT_EQ(BigInt::divRound(BigInt{7}, BigInt{2}).toInt64(), 4);  // 3.5 -> away from zero
  EXPECT_EQ(BigInt::divRound(BigInt{-7}, BigInt{2}).toInt64(), -4);
  EXPECT_EQ(BigInt::divRound(BigInt{7}, BigInt{-2}).toInt64(), -4);
  EXPECT_EQ(BigInt::divRound(BigInt{6}, BigInt{4}).toInt64(), 2); // 1.5 -> 2
  EXPECT_EQ(BigInt::divRound(BigInt{5}, BigInt{4}).toInt64(), 1);
  EXPECT_EQ(BigInt::divRound(BigInt{3}, BigInt{4}).toInt64(), 1);
  EXPECT_EQ(BigInt::divRound(BigInt{1}, BigInt{4}).toInt64(), 0);
  EXPECT_EQ(BigInt::divRound(BigInt{-1}, BigInt{4}).toInt64(), 0);
  EXPECT_EQ(BigInt::divRound(BigInt{-3}, BigInt{4}).toInt64(), -1);
  EXPECT_EQ(BigInt::divRound(BigInt{0}, BigInt{9}).toInt64(), 0);
}

TEST(BigInt, DivisionByZeroThrows) {
  BigInt q;
  BigInt r;
  EXPECT_THROW(BigInt::divMod(BigInt{1}, BigInt{0}, q, r), std::domain_error);
}

TEST(BigInt, Shifts) {
  const BigInt one{1};
  EXPECT_EQ(one.shiftLeft(100).toString(), "1267650600228229401496703205376");
  EXPECT_EQ(one.shiftLeft(100).shiftRight(100), one);
  EXPECT_EQ(BigInt{-12}.shiftRight(2).toInt64(), -3);
  EXPECT_EQ(BigInt{-13}.shiftRight(2).toInt64(), -3); // magnitude-truncating
  EXPECT_EQ(BigInt{0}.shiftLeft(1000), BigInt{0});
  EXPECT_EQ(pow2(64).toString(), "18446744073709551616");
}

TEST(BigInt, CountTrailingZeroBits) {
  EXPECT_EQ(BigInt{1}.countTrailingZeroBits(), 0U);
  EXPECT_EQ(BigInt{8}.countTrailingZeroBits(), 3U);
  EXPECT_EQ(pow2(100).countTrailingZeroBits(), 100U);
  EXPECT_EQ((pow2(100) * BigInt{3}).countTrailingZeroBits(), 100U);
}

TEST(BigInt, GcdMatchesReference) {
  std::mt19937_64 rng(17);
  const auto referenceGcd = [](std::int64_t a, std::int64_t b) {
    a = std::abs(a);
    b = std::abs(b);
    while (b != 0) {
      const std::int64_t t = a % b;
      a = b;
      b = t;
    }
    return a;
  };
  for (int i = 0; i < 500; ++i) {
    const auto x = static_cast<std::int64_t>(rng() >> 20);
    const auto y = static_cast<std::int64_t>(rng() >> 20);
    EXPECT_EQ(BigInt::gcd(BigInt{x}, BigInt{y}).toInt64(), referenceGcd(x, y));
  }
  EXPECT_EQ(BigInt::gcd(BigInt{0}, BigInt{0}), BigInt{0});
  EXPECT_EQ(BigInt::gcd(BigInt{0}, BigInt{-5}).toInt64(), 5);
  EXPECT_EQ(BigInt::gcd(BigInt{-6}, BigInt{0}).toInt64(), 6);
}

TEST(BigInt, GcdDividesLargeProducts) {
  std::mt19937_64 rng(19);
  for (int i = 0; i < 40; ++i) {
    BigInt g{static_cast<std::int64_t>((rng() >> 30) | 1)};
    BigInt a = g * BigInt{static_cast<std::int64_t>(rng() >> 16)};
    BigInt b = g * BigInt{static_cast<std::int64_t>(rng() >> 16)};
    const BigInt result = BigInt::gcd(a, b);
    if (a.isZero() || b.isZero()) {
      continue;
    }
    EXPECT_TRUE((a % result).isZero());
    EXPECT_TRUE((b % result).isZero());
    EXPECT_TRUE((result % g).isZero()); // g divides gcd
  }
}

TEST(BigInt, ToDoubleAccuracy) {
  EXPECT_DOUBLE_EQ(BigInt{0}.toDouble(), 0.0);
  EXPECT_DOUBLE_EQ(BigInt{12345}.toDouble(), 12345.0);
  EXPECT_DOUBLE_EQ(BigInt{-98765}.toDouble(), -98765.0);
  const BigInt big = pow2(300);
  EXPECT_NEAR(big.toDouble() / std::ldexp(1.0, 300), 1.0, 1e-15);
}

TEST(BigInt, ToDoubleScaledRatioOfHugeNumbers) {
  // (2^5000 * 3) / 2^5000 should come out as 3 even though both overflow.
  const BigInt numerator = pow2(5000) * BigInt{3};
  const BigInt denominator = pow2(5000);
  long numExp = 0;
  long denExp = 0;
  const double m1 = numerator.toDoubleScaled(numExp);
  const double m2 = denominator.toDoubleScaled(denExp);
  EXPECT_NEAR(m1 / m2 * std::exp2(static_cast<double>(numExp - denExp)), 3.0, 1e-12);
  EXPECT_GE(std::abs(m1), 0.5);
  EXPECT_LT(std::abs(m1), 1.0);
}

TEST(BigInt, ComparisonTotalOrder) {
  const BigInt values[] = {BigInt{-100}, BigInt{-1}, BigInt{0}, BigInt{1}, BigInt{100},
                           pow2(80), -pow2(80)};
  EXPECT_LT(values[0], values[1]);
  EXPECT_LT(values[1], values[2]);
  EXPECT_LT(values[2], values[3]);
  EXPECT_LT(values[6], values[0]);
  EXPECT_GT(values[5], values[4]);
  EXPECT_EQ(BigInt{5}, BigInt{"5"});
  EXPECT_NE(BigInt{5}, BigInt{-5});
}

TEST(BigInt, HashConsistency) {
  std::mt19937_64 rng(23);
  for (int i = 0; i < 200; ++i) {
    const auto x = static_cast<std::int64_t>(rng());
    EXPECT_EQ(BigInt{x}.hash(), BigInt{std::to_string(x)}.hash());
  }
  EXPECT_NE(BigInt{1}.hash(), BigInt{-1}.hash());
}

TEST(BigInt, OddEven) {
  EXPECT_TRUE(BigInt{0}.isEven());
  EXPECT_TRUE(BigInt{2}.isEven());
  EXPECT_TRUE(BigInt{-2}.isEven());
  EXPECT_TRUE(BigInt{3}.isOdd());
  EXPECT_TRUE(BigInt{-3}.isOdd());
  EXPECT_TRUE((pow2(100) + BigInt{1}).isOdd());
}

TEST(BigIntBytes, ZeroIsSingleHeaderByte) {
  const std::vector<std::uint8_t> bytes = BigInt{0}.toBytes();
  ASSERT_EQ(bytes.size(), 1U);
  EXPECT_EQ(bytes[0], 0x00);
  EXPECT_EQ(BigInt::fromBytes(bytes), BigInt{0});
}

TEST(BigIntBytes, SmallValuesEncodeCompactly) {
  // header = (count << 1) | sign, magnitude little-endian.
  EXPECT_EQ(BigInt{1}.toBytes(), (std::vector<std::uint8_t>{0x02, 0x01}));
  EXPECT_EQ(BigInt{-1}.toBytes(), (std::vector<std::uint8_t>{0x03, 0x01}));
  EXPECT_EQ(BigInt{255}.toBytes(), (std::vector<std::uint8_t>{0x02, 0xFF}));
  EXPECT_EQ(BigInt{256}.toBytes(), (std::vector<std::uint8_t>{0x04, 0x00, 0x01}));
  EXPECT_EQ(BigInt{-0x1234}.toBytes(), (std::vector<std::uint8_t>{0x05, 0x34, 0x12}));
}

TEST(BigIntBytes, NegativeRoundTrip) {
  for (const std::int64_t value : {std::int64_t{-1}, std::int64_t{-255}, std::int64_t{-256},
                                   std::numeric_limits<std::int64_t>::min()}) {
    const BigInt original{value};
    EXPECT_EQ(BigInt::fromBytes(original.toBytes()), original) << value;
  }
}

TEST(BigIntBytes, MultiLimbRoundTripMatchesDecimal) {
  for (const char* text :
       {"99999999999999999999999999999999999", "-170141183460469231731687303715884105727",
        "340282366920938463463374607431768211456"}) {
    const BigInt original{std::string_view{text}};
    const BigInt decoded = BigInt::fromBytes(original.toBytes());
    EXPECT_EQ(decoded, original);
    EXPECT_EQ(decoded.toString(), text);
  }
}

TEST(BigIntBytes, RandomRoundTripAllSizes) {
  std::mt19937_64 rng(29);
  for (int limbs = 1; limbs <= 40; ++limbs) {
    for (int i = 0; i < 10; ++i) {
      BigInt value{static_cast<std::int64_t>(rng())};
      for (int j = 1; j < limbs; ++j) {
        value = value * BigInt{static_cast<std::int64_t>(rng() | 1)};
      }
      if (rng() % 2 == 0) {
        value = -value;
      }
      EXPECT_EQ(BigInt::fromBytes(value.toBytes()), value);
    }
  }
}

TEST(BigIntBytes, StreamingDecodeAdvancesOffset) {
  std::vector<std::uint8_t> stream;
  const BigInt values[] = {BigInt{0}, BigInt{-42}, pow2(200) + BigInt{7}, BigInt{1}};
  for (const BigInt& value : values) {
    value.toBytes(stream);
  }
  std::size_t offset = 0;
  for (const BigInt& value : values) {
    EXPECT_EQ(BigInt::fromBytes(stream, offset), value);
  }
  EXPECT_EQ(offset, stream.size());
}

TEST(BigIntBytes, RejectsMalformedInput) {
  // Truncated: header promises one magnitude byte, buffer ends.
  EXPECT_THROW(BigInt::fromBytes(std::vector<std::uint8_t>{0x02}), std::invalid_argument);
  // Empty buffer.
  EXPECT_THROW(BigInt::fromBytes(std::vector<std::uint8_t>{}), std::invalid_argument);
  // Non-canonical: trailing zero magnitude byte (2 encoded as two bytes).
  EXPECT_THROW(BigInt::fromBytes(std::vector<std::uint8_t>{0x04, 0x02, 0x00}),
               std::invalid_argument);
  // Negative zero: sign bit set with no magnitude bytes.
  EXPECT_THROW(BigInt::fromBytes(std::vector<std::uint8_t>{0x01}), std::invalid_argument);
  // Whole-buffer decode rejects trailing garbage.
  EXPECT_THROW(BigInt::fromBytes(std::vector<std::uint8_t>{0x02, 0x01, 0xFF}),
               std::invalid_argument);
  // Runaway varint header (continuation bits forever).
  EXPECT_THROW(BigInt::fromBytes(std::vector<std::uint8_t>(12, 0x80)), std::invalid_argument);
}

/// Property sweep: (a+b)*c == a*c + b*c over random magnitudes of varying
/// sizes (crossing the Karatsuba threshold).
class BigIntDistributivity : public ::testing::TestWithParam<int> {};

TEST_P(BigIntDistributivity, Holds) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  const auto randomBig = [&rng](int limbs) {
    BigInt v{static_cast<std::int64_t>(rng())};
    for (int i = 1; i < limbs; ++i) {
      v = v * BigInt{static_cast<std::int64_t>(rng() | 1)} + BigInt{static_cast<std::int64_t>(rng() % 1000)};
    }
    return rng() % 2 == 0 ? v : -v;
  };
  const int limbs = GetParam();
  for (int i = 0; i < 20; ++i) {
    const BigInt a = randomBig(limbs);
    const BigInt b = randomBig(limbs);
    const BigInt c = randomBig(limbs);
    EXPECT_EQ((a + b) * c, a * c + b * c);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a - b) + b, a);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BigIntDistributivity, ::testing::Values(1, 2, 4, 8, 20, 40, 70));

// ---------------------------------------------------------------------------
// int64 / storage boundary behaviour.  These pin the edges the word kernels
// and the small-size-optimized storage switch on: INT64_MIN/MAX, 2^63, 2^64,
// and the 62-bit fast-path bounds.
// ---------------------------------------------------------------------------

TEST(BigIntBoundary, Int64EdgesRoundTripExactly) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  const struct {
    std::int64_t value;
    const char* text;
  } cases[] = {
      {kMax, "9223372036854775807"},
      {kMin, "-9223372036854775808"},
      {kMax - 1, "9223372036854775806"},
      {kMin + 1, "-9223372036854775807"},
  };
  for (const auto& c : cases) {
    const BigInt b{c.value};
    EXPECT_TRUE(b.fitsInt64()) << c.text;
    EXPECT_EQ(b.toInt64(), c.value);
    EXPECT_EQ(b.toString(), c.text);
    EXPECT_EQ(BigInt::fromBytes(b.toBytes()), b);
  }
}

TEST(BigIntBoundary, JustOutsideInt64DoesNotFit) {
  const BigInt twoPow63 = pow2(63);              // == -INT64_MIN as magnitude
  const BigInt twoPow64 = pow2(64);
  EXPECT_FALSE(twoPow63.fitsInt64());            // 2^63 > INT64_MAX
  EXPECT_TRUE((-twoPow63).fitsInt64());          // -2^63 == INT64_MIN
  EXPECT_EQ((-twoPow63).toInt64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_FALSE((twoPow63 + BigInt{1}).fitsInt64());
  EXPECT_FALSE((-twoPow63 - BigInt{1}).fitsInt64());
  EXPECT_TRUE((twoPow63 - BigInt{1}).fitsInt64());
  EXPECT_EQ((twoPow63 - BigInt{1}).toInt64(), std::numeric_limits<std::int64_t>::max());
  EXPECT_FALSE(twoPow64.fitsInt64());
  EXPECT_FALSE((twoPow64 + BigInt{1}).fitsInt64());
  EXPECT_FALSE((twoPow64 - BigInt{1}).fitsInt64());
  EXPECT_EQ((twoPow64 - BigInt{1}).toString(), "18446744073709551615");
}

TEST(BigIntBoundary, InlineStorageCoversTwoLimbs) {
  // With QADD_BIGINT_SSO on, every <= 64-bit magnitude lives inline; the
  // first 65-bit magnitude spills to the heap.  With SSO off isInline() is
  // always false and only the value-level assertions apply.
  const BigInt small{42};
  const BigInt oneLimb{std::int64_t{0x7FFFFFFF}};
  const BigInt twoLimbs = pow2(64) - BigInt{1};
  const BigInt threeLimbs = pow2(64);
#if QADD_BIGINT_SSO
  EXPECT_TRUE(BigInt{0}.isInline());
  EXPECT_TRUE(small.isInline());
  EXPECT_TRUE(oneLimb.isInline());
  EXPECT_TRUE(twoLimbs.isInline());
  EXPECT_TRUE((-twoLimbs).isInline());
  EXPECT_FALSE(threeLimbs.isInline());
  // Shrinking a spilled value back under the threshold keeps correctness
  // (re-inlining is not required, only value equality).
  const BigInt shrunk = threeLimbs - pow2(64) + BigInt{7};
  EXPECT_EQ(shrunk.toInt64(), 7);
#else
  EXPECT_FALSE(small.isInline());
  EXPECT_FALSE(twoLimbs.isInline());
#endif
  EXPECT_EQ(threeLimbs.bitLength(), 65U);
  EXPECT_EQ(twoLimbs.bitLength(), 64U);
}

TEST(BigIntBoundary, FromInt128Edges) {
  const __int128 one = 1;
  EXPECT_EQ(BigInt::fromInt128(0), BigInt{0});
  EXPECT_EQ(BigInt::fromInt128(-1), BigInt{-1});
  EXPECT_EQ(BigInt::fromInt128(one << 64), pow2(64));
  EXPECT_EQ(BigInt::fromInt128(-(one << 64)), -pow2(64));
  EXPECT_EQ(BigInt::fromInt128((one << 126) - 1), pow2(126) - BigInt{1});
  // INT128_MIN = -2^127: the magnitude is not representable as +int128, so
  // the negation must be done in unsigned arithmetic internally.
  const __int128 int128Min = -(one << 126) - (one << 126);
  EXPECT_EQ(BigInt::fromInt128(int128Min), -pow2(127));
  EXPECT_EQ(BigInt::fromInt128(int128Min + 1), -(pow2(127) - BigInt{1}));
  const std::int64_t raw = std::numeric_limits<std::int64_t>::min();
  EXPECT_EQ(BigInt::fromInt128(static_cast<__int128>(raw)), BigInt{raw});
}

TEST(BigIntBoundary, KernelOverflowEdgesAddMul) {
  // Operands on each side of the 62-bit fast-path bound and the 64-bit
  // storage bound: sums/products that overflow the word kernels must be
  // detected and produce the same value the multi-limb path computes.
  const BigInt near62 = pow2(62) - BigInt{1};
  const BigInt at63 = pow2(63);
  const BigInt near64 = pow2(64) - BigInt{1};
  EXPECT_EQ((near62 + near62).toString(), (pow2(63) - BigInt{2}).toString());
  EXPECT_EQ(near64 + BigInt{1}, pow2(64));             // u64 carry-out
  EXPECT_EQ(near64 + near64, pow2(65) - BigInt{2});
  EXPECT_EQ(-near64 - near64, -(pow2(65) - BigInt{2}));
  EXPECT_EQ(at63 - near64, -(pow2(63) - BigInt{1}));   // sign flip on subtract
  EXPECT_EQ(near64 * near64, pow2(128) - pow2(65) + BigInt{1});
  EXPECT_EQ(near62 * BigInt{4} + BigInt{4}, pow2(64)); // product crosses u64
  const BigInt minInt64{std::numeric_limits<std::int64_t>::min()};
  EXPECT_EQ(minInt64 * minInt64, pow2(126));
  EXPECT_EQ(minInt64 * BigInt{-1}, pow2(63));
}

TEST(BigIntBoundary, KernelOverflowEdgesDivShift) {
  const BigInt near64 = pow2(64) - BigInt{1};
  BigInt q, r;
  BigInt::divMod(near64, BigInt{1}, q, r);
  EXPECT_EQ(q, near64);
  EXPECT_TRUE(r.isZero());
  BigInt::divMod(pow2(64), near64, q, r);
  EXPECT_EQ(q.toInt64(), 1);
  EXPECT_EQ(r.toInt64(), 1);
  BigInt::divMod(-pow2(64), near64, q, r);
  EXPECT_EQ(q.toInt64(), -1);
  EXPECT_EQ(r.toInt64(), -1); // remainder carries numerator sign
  EXPECT_EQ(BigInt::divRound(near64, BigInt{2}), pow2(63)); // .5 away from 0
  EXPECT_EQ(BigInt::divRound(-near64, BigInt{2}), -pow2(63));
  // Shifts across the 64-bit word boundary.
  EXPECT_EQ(BigInt{1}.shiftLeft(63).shiftLeft(1), pow2(64));
  EXPECT_EQ(near64.shiftLeft(64).shiftRight(64), near64);
  EXPECT_EQ(near64.shiftRight(63).toInt64(), 1);
  EXPECT_EQ(near64.shiftRight(64).toInt64(), 0);
  EXPECT_EQ(BigInt::gcd(pow2(64), pow2(63)), pow2(63));
  EXPECT_EQ(BigInt::gcd(near64, near64), near64);
}

} // namespace
} // namespace qadd
