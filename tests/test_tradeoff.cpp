/// Integration tests of the paper's central claims (Sections III and V):
///  - epsilon = 0 misses redundancies and blows the numeric QMDD up;
///  - moderate epsilon recovers compactness at a small, bounded error;
///  - large epsilon destroys the state (down to the all-zero vector);
///  - the algebraic QMDD is simultaneously compact and exact.
#include "algorithms/grover.hpp"
#include "eval/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qadd::eval {
namespace {

struct TradeoffData {
  SimulationTrace algebraic;
  SimulationTrace exactNumeric;    // eps = 0
  SimulationTrace moderateNumeric; // eps = 1e-10
  SimulationTrace sloppyNumeric;   // eps = 1e-2
  ReferenceTrajectory reference;
};

const TradeoffData& groverData() {
  static const TradeoffData data = [] {
    TradeoffData d;
    // 7-qubit Grover, enough iterations for the effects to show.
    const qc::Circuit circuit = algos::grover({7, 0b1011001, 0});
    TraceOptions options;
    options.sampleEvery = 20;
    d.algebraic = traceAlgebraic(circuit, options, {}, &d.reference);
    d.exactNumeric = traceNumeric(circuit, 0.0, &d.reference, options);
    d.moderateNumeric = traceNumeric(circuit, 1e-10, &d.reference, options);
    d.sloppyNumeric = traceNumeric(circuit, 1e-2, &d.reference, options);
    return d;
  }();
  return data;
}

TEST(Tradeoff, AlgebraicIsCompact) {
  // The exact representation finds the (a, b, ..., b) structure: O(n) nodes
  // in the state DD.  (peakNodes counts all allocations — state, gate DDs
  // and transient products between collections — so it is only sanity-bounded.)
  EXPECT_LE(groverData().algebraic.finalNodes, 14U);
  EXPECT_LE(groverData().algebraic.peakNodes, 5000U);
  for (const TracePoint& point : groverData().algebraic.points) {
    // Mid-iteration snapshots (after the oracle, inside the diffusion) carry
    // a third distinct amplitude, so allow 3n rather than 2n nodes.
    EXPECT_LE(point.nodes, 21U) << "state DD must stay linear throughout";
  }
}

TEST(Tradeoff, EpsilonZeroLosesCompactness) {
  // With eps = 0, accumulated floating-point error makes amplitudes that are
  // mathematically equal differ in a few ulps: far more nodes than the
  // algebraic representation needs.
  EXPECT_GT(groverData().exactNumeric.finalNodes, 4 * groverData().algebraic.finalNodes)
      << "eps = 0 must fail to see most redundancies";
}

TEST(Tradeoff, EpsilonZeroIsAccurateButNotExact) {
  const auto& trace = groverData().exactNumeric;
  ASSERT_FALSE(trace.points.empty());
  EXPECT_GT(trace.finalError, 0.0) << "floating point cannot be exact";
  EXPECT_LT(trace.finalError, 1e-10) << "but it is numerically accurate";
}

TEST(Tradeoff, ModerateEpsilonRecoversCompactness) {
  const auto& moderate = groverData().moderateNumeric;
  EXPECT_LE(moderate.finalNodes, groverData().algebraic.finalNodes + 2)
      << "eps = 1e-10 should find the same redundancies the exact arithmetic proves";
  EXPECT_LT(moderate.finalError, 1e-6);
  EXPECT_FALSE(moderate.collapsedToZero);
}

TEST(Tradeoff, LargeEpsilonFalsifiesTheResult) {
  const auto& sloppy = groverData().sloppyNumeric;
  // eps = 1e-2 merges genuinely different amplitudes; the result is useless.
  EXPECT_GT(sloppy.finalError, 0.5) << "the paper's information-loss regime";
}

TEST(Tradeoff, ErrorGrowsWithGateCountAtFixedEpsilon) {
  // Numerical error accumulates roughly monotonically over the run
  // (Section III: linear growth in the number of multiplications).
  const auto& trace = groverData().exactNumeric;
  ASSERT_GE(trace.points.size(), 3U);
  const double early = trace.points.front().error;
  const double late = trace.points.back().error;
  EXPECT_GT(late, early);
}

TEST(Tradeoff, AlgebraicErrorIsIdenticallyZero) {
  for (const TracePoint& point : groverData().algebraic.points) {
    EXPECT_EQ(point.error, 0.0);
  }
}

TEST(Tradeoff, RuntimeCorrelatesWithNodes) {
  // The paper: simulation time slope is proportional to DD size.  Check the
  // ordering only (absolute times are machine-dependent): the eps = 0 run
  // (huge DD) must be slower than the moderate run (tiny DD).
  EXPECT_GT(groverData().exactNumeric.totalSeconds,
            groverData().moderateNumeric.totalSeconds);
}

} // namespace
} // namespace qadd::eval
