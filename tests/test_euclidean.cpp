#include "algebraic/euclidean.hpp"

#include <gtest/gtest.h>

#include <random>

namespace qadd::alg {
namespace {

ZOmega randomZOmega(std::mt19937_64& rng, int bound = 25) {
  std::uniform_int_distribution<std::int64_t> d(-bound, bound);
  return {BigInt{d(rng)}, BigInt{d(rng)}, BigInt{d(rng)}, BigInt{d(rng)}};
}

TEST(Euclidean, RemainderStrictlySmaller) {
  // The Euclidean property of Section IV-B: E(r) <= (9/16) E(z2) < E(z2).
  std::mt19937_64 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const ZOmega z1 = randomZOmega(rng);
    const ZOmega z2 = randomZOmega(rng, 9);
    if (z2.isZero()) {
      continue;
    }
    const ZOmega q = euclideanQuotient(z1, z2);
    const ZOmega r = z1 - q * z2;
    EXPECT_EQ(r, euclideanRemainder(z1, z2));
    EXPECT_LT(r.euclideanValue(), z2.euclideanValue());
    // Paper's sharper bound: E(r) <= 9/16 E(z2), i.e. 16 E(r) <= 9 E(z2).
    EXPECT_LE(r.euclideanValue() * BigInt{16}, z2.euclideanValue() * BigInt{9});
  }
}

TEST(Euclidean, QuotientOfExactMultipleIsExact) {
  std::mt19937_64 rng(5);
  for (int i = 0; i < 300; ++i) {
    const ZOmega q = randomZOmega(rng);
    const ZOmega d = randomZOmega(rng, 9);
    if (d.isZero()) {
      continue;
    }
    EXPECT_EQ(euclideanQuotient(q * d, d), q);
    EXPECT_TRUE(euclideanRemainder(q * d, d).isZero());
  }
}

TEST(Euclidean, GcdDividesBothOperands) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 200; ++i) {
    const ZOmega a = randomZOmega(rng);
    const ZOmega b = randomZOmega(rng);
    if (a.isZero() && b.isZero()) {
      continue;
    }
    const ZOmega g = gcdZOmega(a, b);
    ASSERT_FALSE(g.isZero());
    ZOmega quotient;
    EXPECT_TRUE(a.isZero() || tryExactDivide(a, g, quotient));
    EXPECT_TRUE(b.isZero() || tryExactDivide(b, g, quotient));
  }
}

TEST(Euclidean, GcdAbsorbsCommonFactor) {
  std::mt19937_64 rng(9);
  for (int i = 0; i < 150; ++i) {
    const ZOmega common = randomZOmega(rng, 5);
    const ZOmega a = randomZOmega(rng, 8);
    const ZOmega b = randomZOmega(rng, 8);
    if (common.isZero() || a.isZero() || b.isZero()) {
      continue;
    }
    const ZOmega g = gcdZOmega(common * a, common * b);
    ZOmega quotient;
    EXPECT_TRUE(tryExactDivide(g, common, quotient))
        << "gcd must contain every common factor";
  }
}

TEST(Euclidean, TryExactDivide) {
  const ZOmega six{BigInt{6}};
  const ZOmega three{BigInt{3}};
  const ZOmega two{BigInt{2}};
  ZOmega quotient;
  ASSERT_TRUE(tryExactDivide(six, three, quotient));
  EXPECT_EQ(quotient, two);
  EXPECT_FALSE(tryExactDivide(three, two, quotient)); // 3/2 not in Z[omega]
  // omega-multiples always divide exactly.
  ASSERT_TRUE(tryExactDivide(ZOmega::omega() * six, six, quotient));
  EXPECT_EQ(quotient, ZOmega::omega());
}

TEST(Euclidean, CanonicalAssociateIsClassInvariant) {
  // The defining property for Algorithm 3: every unit multiple of a value
  // maps to the same canonical associate.
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<int> small(-3, 3);
  const ZOmega unitPlus = ZOmega::omega() + ZOmega::one();
  for (int i = 0; i < 60; ++i) {
    const ZOmega z = randomZOmega(rng, 10);
    if (z.isZero()) {
      continue;
    }
    const ZOmega canonical = canonicalAssociate(QOmega{z});
    // Multiply by assorted units of D[omega]: omega^j, sqrt2^m, (omega+1)^p.
    for (int trial = 0; trial < 8; ++trial) {
      QOmega u = QOmega::omegaPower(small(rng));
      u = u * QOmega{ZOmega::one(), small(rng)}; // sqrt2 powers
      const int plusPowers = std::abs(small(rng)) % 3;
      for (int p = 0; p < plusPowers; ++p) {
        u = u * QOmega{unitPlus};
      }
      EXPECT_EQ(canonicalAssociate(QOmega{z} * u), canonical);
    }
  }
}

TEST(Euclidean, CanonicalAssociateOfUnitsIsOne) {
  EXPECT_EQ(canonicalAssociate(QOmega::one()), ZOmega::one());
  EXPECT_EQ(canonicalAssociate(-QOmega::one()), ZOmega::one());
  EXPECT_EQ(canonicalAssociate(QOmega::omega()), ZOmega::one());
  EXPECT_EQ(canonicalAssociate(QOmega::invSqrt2()), ZOmega::one());
  EXPECT_EQ(canonicalAssociate(QOmega::sqrt2()), ZOmega::one());
  EXPECT_EQ(canonicalAssociate(QOmega{ZOmega::omega() + ZOmega::one()}), ZOmega::one());
  EXPECT_EQ(canonicalAssociate(QOmega{ZOmega::omega() - ZOmega::one()}), ZOmega::one());
}

TEST(Euclidean, CanonicalAssociatePropertiesHold) {
  std::mt19937_64 rng(13);
  for (int i = 0; i < 100; ++i) {
    const ZOmega z = randomZOmega(rng, 12);
    if (z.isZero()) {
      continue;
    }
    const ZOmega canonical = canonicalAssociate(QOmega{z});
    // (a) in Z[omega] with minimal exponent: not divisible by sqrt2.
    EXPECT_FALSE(canonical.divisibleBySqrt2());
    // (c) d >= 0 (positive sign preferred).
    EXPECT_GE(canonical.d().sign(), 0);
    // Same Euclidean value class up to powers of 2 (units have E = 2^j).
    const BigInt eCanonical = canonical.euclideanValue();
    const BigInt eOriginalTimes = QOmega{z}.num().euclideanValue();
    BigInt big = eCanonical;
    BigInt small = eOriginalTimes;
    if (big < small) {
      std::swap(big, small);
    }
    BigInt q;
    BigInt r;
    BigInt::divMod(big, small, q, r);
    EXPECT_TRUE(r.isZero());
    EXPECT_EQ(q, pow2(q.isZero() ? 0 : q.countTrailingZeroBits()))
        << "E may change only by a power of two under unit multiplication";
  }
}

TEST(Euclidean, CanonicalAssociateUnitIsExact) {
  std::mt19937_64 rng(17);
  for (int i = 0; i < 100; ++i) {
    const ZOmega z = randomZOmega(rng, 10);
    if (z.isZero()) {
      continue;
    }
    const QOmega unit = canonicalAssociateUnit(QOmega{z});
    EXPECT_EQ(QOmega{z} * unit, QOmega{canonicalAssociate(QOmega{z})});
    // A unit of D[omega] has Euclidean value a power of two (and dyadic den).
    EXPECT_TRUE(unit.isDyadic());
    const BigInt e = unit.num().euclideanValue();
    EXPECT_EQ(e, pow2(e.countTrailingZeroBits()));
  }
}

TEST(Euclidean, GcdDyadicOfWeights) {
  // gcd of {1/sqrt2, 1/sqrt2} is a unit -> canonical 1.
  const std::vector<QOmega> hadamard{QOmega::invSqrt2(), QOmega::invSqrt2()};
  EXPECT_EQ(gcdDyadic(hadamard), ZOmega::one());
  // gcd of {6, 10} is an associate of 2 -> canonical associate of 2 = 1?  2 =
  // sqrt2^2 is a unit times 1, so the canonical associate is 1.
  const std::vector<QOmega> evens{QOmega{6}, QOmega{10}};
  const ZOmega g = gcdDyadic(evens);
  // 6 and 10 share the factor 2 (a D[omega] unit) -> gcd class is the unit
  // class, canonical representative 1.
  EXPECT_EQ(g, ZOmega::one());
  // gcd of {3, 6} contains the non-unit 3.
  const std::vector<QOmega> threes{QOmega{3}, QOmega{6}};
  const ZOmega g3 = gcdDyadic(threes);
  ZOmega quotient;
  EXPECT_TRUE(tryExactDivide(g3, ZOmega{BigInt{3}}, quotient));
  // Zero entries are ignored; all-zero input gives zero.
  const std::vector<QOmega> zeros{QOmega::zero(), QOmega::zero()};
  EXPECT_TRUE(gcdDyadic(zeros).isZero());
  const std::vector<QOmega> withZero{QOmega::zero(), QOmega{5}};
  ZOmega q5;
  EXPECT_TRUE(tryExactDivide(gcdDyadic(withZero), ZOmega{BigInt{5}}, q5));
}

} // namespace
} // namespace qadd::alg
