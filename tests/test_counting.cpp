#include "algorithms/counting.hpp"

#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qadd::algos {
namespace {

TEST(Counting, GroverIterateAmplifiesMultipleMarked) {
  // 4 qubits, 2 marked: after k iterations the marked probability follows
  // sin^2((2k+1) theta) with theta = asin(sqrt(M/N)).
  const std::vector<std::uint64_t> marked{3, 9};
  qc::Circuit circuit(4);
  for (qc::Qubit q = 0; q < 4; ++q) {
    circuit.h(q);
  }
  const qc::Circuit iterate = groverIterate(4, marked);
  const int iterations = 2;
  for (int i = 0; i < iterations; ++i) {
    circuit.append(iterate);
  }
  qc::Simulator<dd::AlgebraicSystem> simulator(circuit);
  simulator.run();
  const auto amplitudes = simulator.package().amplitudes(simulator.state());
  double markedProbability = 0.0;
  for (const std::uint64_t element : marked) {
    // qubit q of the element is bit q; index packs qubit 0 as MSB.
    std::size_t index = 0;
    for (qc::Qubit q = 0; q < 4; ++q) {
      if ((element >> q) & 1ULL) {
        index |= 1ULL << (3 - q);
      }
    }
    markedProbability += std::norm(amplitudes[index]);
  }
  const double theta = std::asin(std::sqrt(2.0 / 16.0));
  const double expected = std::pow(std::sin((2 * iterations + 1) * theta), 2);
  EXPECT_NEAR(markedProbability, expected, 1e-9);
}

TEST(Counting, PhaseEstimateMatchesMarkedCount) {
  const CountingOptions options{4, 5, {3, 5, 6, 12}};
  qc::Simulator<dd::NumericSystem> simulator(
      quantumCounting(options), {1e-12, dd::NumericSystem::Normalization::LeftmostNonzero});
  simulator.run();
  const auto amplitudes = simulator.package().amplitudes(simulator.state());
  const unsigned m = options.precisionQubits;
  const unsigned n = options.searchQubits;
  // Ancilla marginal.
  std::vector<double> marginal(1ULL << m, 0.0);
  for (std::size_t index = 0; index < amplitudes.size(); ++index) {
    marginal[index >> n] += std::norm(amplitudes[index]);
  }
  std::size_t best = 0;
  for (std::size_t a = 1; a < marginal.size(); ++a) {
    if (marginal[a] > marginal[best]) {
      best = a;
    }
  }
  // G has eigenphases +-theta: accept the mirror value as well.
  const double count = estimatedCount(n, m, best);
  EXPECT_NEAR(count, 4.0, 1.2) << "peak ancilla " << best;
  // And the distribution is not flat: the top bin dominates a uniform one.
  EXPECT_GT(marginal[best], 3.0 / static_cast<double>(1ULL << m));
}

TEST(Counting, ExpectedPhaseFormula) {
  EXPECT_NEAR(countingExpectedPhase(4, 4), std::asin(0.5) / M_PI, 1e-12);
  EXPECT_NEAR(countingExpectedPhase(4, 0), 0.0, 1e-12);
  EXPECT_NEAR(countingExpectedPhase(2, 4), 0.5, 1e-12); // all marked: theta = pi
  // estimatedCount inverts it.
  const double phase = countingExpectedPhase(4, 4);
  const auto ancilla = static_cast<std::uint64_t>(std::llround(phase * 32.0));
  EXPECT_NEAR(estimatedCount(4, 5, ancilla), 4.0, 0.7);
}

TEST(Counting, RejectsBadOptions) {
  EXPECT_THROW((void)quantumCounting({4, 0, {1}}), std::invalid_argument);
  EXPECT_THROW((void)groverIterate(1, {0}), std::invalid_argument);
  EXPECT_THROW((void)groverIterate(3, {8}), std::invalid_argument);
}

} // namespace
} // namespace qadd::algos
