/// Differential fuzzing: random Clifford+T circuits with random control
/// structure are simulated by the numeric QMDD, the algebraic QMDD and the
/// dense reference; all three must agree.  This is the broadest correctness
/// net over the whole stack (gates -> gate DDs -> multiply/add -> normalize
/// -> unique tables).
#include "algebraic/euclidean.hpp"
#include "algebraic/qomega.hpp"
#include "bigint/bigint.hpp"
#include "core/export.hpp"
#include "io/snapshot.hpp"
#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

namespace qadd {
namespace {

using dd::AlgebraicSystem;
using dd::NumericSystem;

qc::Circuit randomCliffordT(std::mt19937_64& rng, qc::Qubit nqubits, std::size_t gates) {
  const qc::GateKind kinds[] = {qc::GateKind::H,   qc::GateKind::X,   qc::GateKind::Y,
                                qc::GateKind::Z,   qc::GateKind::S,   qc::GateKind::Sdg,
                                qc::GateKind::T,   qc::GateKind::Tdg, qc::GateKind::V,
                                qc::GateKind::Vdg, qc::GateKind::I};
  qc::Circuit circuit(nqubits, "fuzz");
  for (std::size_t i = 0; i < gates; ++i) {
    const auto kind = kinds[rng() % std::size(kinds)];
    const auto target = static_cast<qc::Qubit>(rng() % nqubits);
    std::vector<qc::ControlSpec> controls;
    const std::size_t controlCount = rng() % 3; // 0, 1 or 2 controls
    for (std::size_t c = 0; c < controlCount; ++c) {
      const auto qubit = static_cast<qc::Qubit>(rng() % nqubits);
      bool clash = qubit == target;
      for (const auto& existing : controls) {
        clash = clash || existing.qubit == qubit;
      }
      if (!clash) {
        controls.push_back({qubit, rng() % 2 == 0});
      }
    }
    circuit.append({kind, 0.0, target, std::move(controls)});
  }
  return circuit;
}

la::Vector denseSimulate(const qc::Circuit& circuit) {
  // Use a numeric package only to construct per-gate dense matrices.
  dd::Package<NumericSystem> package(circuit.qubits(),
                                     {0.0, NumericSystem::Normalization::LeftmostNonzero});
  la::Vector state = la::Vector::basisState(std::size_t{1} << circuit.qubits(), 0);
  for (const qc::Operation& operation : circuit.operations()) {
    const auto gate = qc::makeOperationDD(package, operation);
    state = dd::toDenseMatrix(package, gate) * state;
  }
  return state;
}

class FuzzDifferential : public ::testing::TestWithParam<int> {};

TEST_P(FuzzDifferential, AllThreeBackendsAgree) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const auto nqubits = static_cast<qc::Qubit>(2 + rng() % 4); // 2..5
  const std::size_t gates = 10 + rng() % 30;
  const qc::Circuit circuit = randomCliffordT(rng, nqubits, gates);

  const la::Vector expected = denseSimulate(circuit);

  qc::Simulator<NumericSystem> numeric(circuit,
                                       {0.0, NumericSystem::Normalization::LeftmostNonzero});
  numeric.run();
  const auto numericAmplitudes = numeric.package().amplitudes(numeric.state());

  qc::Simulator<AlgebraicSystem> algebraic(circuit);
  algebraic.run();
  const auto algebraicAmplitudes = algebraic.package().amplitudes(algebraic.state());

  // Also cross-check the GCD and experimental unit-part schemes.
  qc::Simulator<AlgebraicSystem> gcd(circuit, {AlgebraicSystem::Normalization::GcdDOmega});
  gcd.run();
  const auto gcdAmplitudes = gcd.package().amplitudes(gcd.state());
  qc::Simulator<AlgebraicSystem> unitPart(circuit, {AlgebraicSystem::Normalization::UnitPart});
  unitPart.run();
  const auto unitPartAmplitudes = unitPart.package().amplitudes(unitPart.state());

  for (std::size_t i = 0; i < expected.dimension(); ++i) {
    EXPECT_NEAR(std::abs(numericAmplitudes[i] - expected[i]), 0.0, 1e-9)
        << "numeric, index " << i;
    EXPECT_NEAR(std::abs(algebraicAmplitudes[i] - expected[i]), 0.0, 1e-9)
        << "algebraic, index " << i;
    EXPECT_NEAR(std::abs(gcdAmplitudes[i] - algebraicAmplitudes[i]), 0.0, 1e-12)
        << "gcd vs inverse normalization, index " << i;
    EXPECT_NEAR(std::abs(unitPartAmplitudes[i] - algebraicAmplitudes[i]), 0.0, 1e-12)
        << "unit-part vs inverse normalization, index " << i;
  }

  // Norm is exactly 1 in the algebraic flavors.
  EXPECT_TRUE(algebraic.package().system().isOne(
      algebraic.package().innerProduct(algebraic.state(), algebraic.state())));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential, ::testing::Range(0, 24));

class FuzzNumericTolerance : public ::testing::TestWithParam<double> {};

TEST_P(FuzzNumericTolerance, ModerateEpsilonStaysAccurateOnShortCircuits) {
  // On short circuits every epsilon below 1e-6 must stay essentially exact.
  std::mt19937_64 rng(99);
  const qc::Circuit circuit = randomCliffordT(rng, 4, 25);
  const la::Vector expected = denseSimulate(circuit);
  qc::Simulator<NumericSystem> simulator(
      circuit, {GetParam(), NumericSystem::Normalization::LeftmostNonzero});
  simulator.run();
  const auto amplitudes = simulator.package().amplitudes(simulator.state());
  for (std::size_t i = 0; i < expected.dimension(); ++i) {
    EXPECT_NEAR(std::abs(amplitudes[i] - expected[i]), 0.0, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, FuzzNumericTolerance,
                         ::testing::Values(0.0, 1e-15, 1e-12, 1e-9, 1e-7));

/// Snapshot round-trip fuzzing: for random Clifford+T states the QDDS
/// serialize -> deserialize cycle must reproduce the canonical diagram —
/// same node count and exact weight equality (the re-serialization of the
/// reloaded DD is byte-identical) under the algebraic system, and ULP-0
/// amplitudes under the numeric system at the matching tolerance.
class FuzzSnapshotRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSnapshotRoundTrip, SerializeDeserializeIsExact) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 31);
  const auto nqubits = static_cast<qc::Qubit>(2 + rng() % 4); // 2..5
  const std::size_t gates = 10 + rng() % 40;
  const qc::Circuit circuit = randomCliffordT(rng, nqubits, gates);
  const double epsilon = (GetParam() % 2 == 0) ? 0.0 : 1e-10;

  qc::Simulator<AlgebraicSystem> algebraic(circuit);
  algebraic.run();
  auto& algebraicPackage = algebraic.package();
  const auto algebraicBytes = io::saveVector(algebraicPackage, algebraic.state());
  // Same package: the canonical edge itself comes back.
  EXPECT_TRUE(io::loadVector(algebraicPackage, algebraicBytes) == algebraic.state());
  // Fresh package: canonical node count survives and every weight is exactly
  // reproduced (byte-identical re-serialization).
  dd::Package<AlgebraicSystem> algebraicFresh(nqubits);
  const auto algebraicReloaded = io::loadVector(algebraicFresh, algebraicBytes);
  EXPECT_EQ(algebraicFresh.countNodes(algebraicReloaded),
            algebraicPackage.countNodes(algebraic.state()));
  EXPECT_EQ(io::saveVector(algebraicFresh, algebraicReloaded), algebraicBytes);

  qc::Simulator<NumericSystem> numeric(circuit,
                                       {epsilon, NumericSystem::Normalization::LeftmostNonzero});
  numeric.run();
  const auto numericBytes = io::saveVector(numeric.package(), numeric.state());
  dd::Package<NumericSystem> numericFresh(nqubits,
                                          {epsilon, NumericSystem::Normalization::LeftmostNonzero});
  const auto numericReloaded = io::loadVector(numericFresh, numericBytes);
  EXPECT_EQ(numericFresh.countNodes(numericReloaded),
            numeric.package().countNodes(numeric.state()));
  const auto expected = numeric.package().amplitudes(numeric.state());
  const auto restored = numericFresh.amplitudes(numericReloaded);
  ASSERT_EQ(expected.size(), restored.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(restored[i].real(), expected[i].real()) << "ULP-0 violated at index " << i;
    EXPECT_EQ(restored[i].imag(), expected[i].imag()) << "ULP-0 violated at index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSnapshotRoundTrip, ::testing::Range(0, 16));

/// Differential fuzzing of the int64/int128 word kernels: every BigInt /
/// Z[omega] / Q[omega] operation with a small-coefficient fast path is run on
/// the SAME operands twice — once with the kernels enabled (small path) and
/// once with them force-disabled (the multi-limb spill path) — and the two
/// results must be bit-identical.  Operand magnitudes sweep across the kernel
/// bit bounds (62-bit add/mul, 30-bit Euclidean/quotient loads) so both the
/// engaged-kernel and the overflow-detected spill branches are exercised.
/// With QADD_BIGINT_SSO=0 the toggle is inert and both runs take the spill
/// path; the assertions then degenerate to determinism checks.
class FastPathGuard {
public:
  explicit FastPathGuard(bool enabled) : previous_(detail::setSmallFastPaths(enabled)) {}
  ~FastPathGuard() { detail::setSmallFastPaths(previous_); }
  FastPathGuard(const FastPathGuard&) = delete;
  FastPathGuard& operator=(const FastPathGuard&) = delete;

private:
  bool previous_;
};

/// Random BigInt whose magnitude is `bits` wide (so sweeps cross the 62-bit
/// kernel bounds from both sides).
BigInt randomBigInt(std::mt19937_64& rng, unsigned bits) {
  BigInt value{0};
  for (unsigned produced = 0; produced < bits; produced += 32) {
    const unsigned chunk = std::min(32U, bits - produced);
    const auto limb = static_cast<std::int64_t>(rng() & ((std::uint64_t{1} << chunk) - 1));
    value = value.shiftLeft(chunk) + BigInt{limb};
  }
  return rng() % 2 == 0 ? value : -value;
}

class FuzzSmallPathDifferential : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSmallPathDifferential, BigIntOpsMatchSpillPath) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 3);
  for (int round = 0; round < 40; ++round) {
    // Bit widths straddle the 62/63/64-bit kernel and storage boundaries.
    const unsigned widths[] = {1, 8, 31, 32, 61, 62, 63, 64, 65, 96, 128};
    const BigInt a = randomBigInt(rng, widths[rng() % std::size(widths)]);
    const BigInt b = randomBigInt(rng, widths[rng() % std::size(widths)]);
    const unsigned shift = static_cast<unsigned>(rng() % 70);

    BigInt sumSmall, difSmall, prodSmall, gcdSmall, shlSmall, shrSmall;
    BigInt quotSmall, remSmall, roundSmall;
    {
      FastPathGuard guard(true);
      sumSmall = a + b;
      difSmall = a - b;
      prodSmall = a * b;
      gcdSmall = BigInt::gcd(a, b);
      shlSmall = a.shiftLeft(shift);
      shrSmall = a.shiftRight(shift);
      if (!b.isZero()) {
        BigInt::divMod(a, b, quotSmall, remSmall);
        roundSmall = BigInt::divRound(a, b);
      }
    }
    FastPathGuard guard(false);
    EXPECT_EQ(sumSmall, a + b);
    EXPECT_EQ(difSmall, a - b);
    EXPECT_EQ(prodSmall, a * b);
    EXPECT_EQ(gcdSmall, BigInt::gcd(a, b));
    EXPECT_EQ(shlSmall, a.shiftLeft(shift));
    EXPECT_EQ(shrSmall, a.shiftRight(shift));
    if (!b.isZero()) {
      BigInt quot, rem;
      BigInt::divMod(a, b, quot, rem);
      EXPECT_EQ(quotSmall, quot);
      EXPECT_EQ(remSmall, rem);
      EXPECT_EQ(roundSmall, BigInt::divRound(a, b));
      EXPECT_EQ(quot * b + rem, a);
    }
    // GCD properties hold regardless of which algorithm/path produced it.
    if (!gcdSmall.isZero()) {
      EXPECT_TRUE((a % gcdSmall).isZero());
      EXPECT_TRUE((b % gcdSmall).isZero());
      EXPECT_FALSE(gcdSmall.isNegative());
    }
  }
}

TEST_P(FuzzSmallPathDifferential, RingOpsMatchSpillPath) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 12289 + 17);
  const auto randomRing = [&rng](unsigned bits) {
    return alg::ZOmega{randomBigInt(rng, bits), randomBigInt(rng, bits),
                       randomBigInt(rng, bits), randomBigInt(rng, bits)};
  };
  for (int round = 0; round < 30; ++round) {
    // Coefficient widths straddle the kernel bounds: 30-bit Euclidean loads,
    // 62-bit add/mul loads.
    const unsigned widths[] = {4, 20, 29, 30, 31, 60, 61, 62, 63, 80};
    const alg::ZOmega x = randomRing(widths[rng() % std::size(widths)]);
    const alg::ZOmega y = randomRing(widths[rng() % std::size(widths)]);

    alg::ZOmega sumSmall, difSmall, prodSmall, quotSmall, remSmall, gcdSmall;
    BigInt normUSmall, normVSmall;
    {
      FastPathGuard guard(true);
      sumSmall = x + y;
      difSmall = x - y;
      prodSmall = x * y;
      x.norm(normUSmall, normVSmall);
      if (!y.isZero()) {
        quotSmall = alg::euclideanQuotient(x, y);
        remSmall = alg::euclideanRemainder(x, y);
        gcdSmall = alg::gcdZOmega(x, y);
      }
    }
    FastPathGuard guard(false);
    EXPECT_EQ(sumSmall, x + y);
    EXPECT_EQ(difSmall, x - y);
    EXPECT_EQ(prodSmall, x * y);
    BigInt normU, normV;
    x.norm(normU, normV);
    EXPECT_EQ(normUSmall, normU);
    EXPECT_EQ(normVSmall, normV);
    if (!y.isZero()) {
      EXPECT_EQ(quotSmall, alg::euclideanQuotient(x, y));
      EXPECT_EQ(remSmall, alg::euclideanRemainder(x, y));
      EXPECT_EQ(gcdSmall, alg::gcdZOmega(x, y));
      // Euclidean contract: remainder strictly smaller in E() = |u^2 - 2 v^2|.
      EXPECT_EQ(remSmall, x - quotSmall * y);
    }
  }
}

TEST_P(FuzzSmallPathDifferential, QOmegaCanonicalizationMatchesSpillPath) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 24593 + 29);
  const auto randomRing = [&rng](unsigned bits) {
    return alg::ZOmega{randomBigInt(rng, bits), randomBigInt(rng, bits),
                       randomBigInt(rng, bits), randomBigInt(rng, bits)};
  };
  const auto expectCanonical = [](const alg::QOmega& value) {
    // Algorithm 1 invariants: positive denominator with all 2-content folded
    // into the sqrt2 exponent, numerator not divisible by sqrt2 (minimal k),
    // and no odd common content left between numerator and denominator.
    if (value.isZero()) {
      return;
    }
    EXPECT_FALSE(value.den().isNegative());
    EXPECT_TRUE(value.den().isOdd());
    EXPECT_FALSE(value.num().divisibleBySqrt2());
    if (!value.den().isOne()) {
      BigInt content = BigInt::gcd(value.num().a(), value.num().b());
      content = BigInt::gcd(content, value.num().c());
      content = BigInt::gcd(content, value.num().d());
      EXPECT_TRUE(BigInt::gcd(content, value.den()).isOne());
    }
  };
  for (int round = 0; round < 25; ++round) {
    const unsigned widths[] = {4, 16, 31, 59, 61, 62, 63, 70};
    const alg::ZOmega n1 = randomRing(widths[rng() % std::size(widths)]);
    const alg::ZOmega n2 = randomRing(widths[rng() % std::size(widths)]);
    const long k1 = static_cast<long>(rng() % 9) - 4;
    const long k2 = static_cast<long>(rng() % 9) - 4;
    const BigInt d1 = randomBigInt(rng, 1U + static_cast<unsigned>(rng() % 40)).abs() + BigInt{1};
    const BigInt d2 = randomBigInt(rng, 1U + static_cast<unsigned>(rng() % 40)).abs() + BigInt{1};

    alg::QOmega xSmall, ySmall, sumSmall, prodSmall, invSmall;
    {
      FastPathGuard guard(true);
      xSmall = alg::QOmega{n1, k1, d1}; // constructor canonicalizes (Alg. 1)
      ySmall = alg::QOmega{n2, k2, d2};
      sumSmall = xSmall + ySmall;
      prodSmall = xSmall * ySmall;
      if (!xSmall.isZero()) {
        invSmall = xSmall.inverse();
      }
    }
    FastPathGuard guard(false);
    const alg::QOmega x{n1, k1, d1};
    const alg::QOmega y{n2, k2, d2};
    EXPECT_TRUE(xSmall == x);
    EXPECT_TRUE(ySmall == y);
    EXPECT_TRUE(sumSmall == x + y);
    EXPECT_TRUE(prodSmall == x * y);
    expectCanonical(x);
    expectCanonical(sumSmall);
    expectCanonical(prodSmall);
    if (!x.isZero()) {
      EXPECT_TRUE(invSmall == x.inverse());
      expectCanonical(invSmall);
      EXPECT_TRUE((x * invSmall).isOne());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSmallPathDifferential, ::testing::Range(0, 8));

} // namespace
} // namespace qadd
