/// Differential fuzzing: random Clifford+T circuits with random control
/// structure are simulated by the numeric QMDD, the algebraic QMDD and the
/// dense reference; all three must agree.  This is the broadest correctness
/// net over the whole stack (gates -> gate DDs -> multiply/add -> normalize
/// -> unique tables).
#include "core/export.hpp"
#include "io/snapshot.hpp"
#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace qadd {
namespace {

using dd::AlgebraicSystem;
using dd::NumericSystem;

qc::Circuit randomCliffordT(std::mt19937_64& rng, qc::Qubit nqubits, std::size_t gates) {
  const qc::GateKind kinds[] = {qc::GateKind::H,   qc::GateKind::X,   qc::GateKind::Y,
                                qc::GateKind::Z,   qc::GateKind::S,   qc::GateKind::Sdg,
                                qc::GateKind::T,   qc::GateKind::Tdg, qc::GateKind::V,
                                qc::GateKind::Vdg, qc::GateKind::I};
  qc::Circuit circuit(nqubits, "fuzz");
  for (std::size_t i = 0; i < gates; ++i) {
    const auto kind = kinds[rng() % std::size(kinds)];
    const auto target = static_cast<qc::Qubit>(rng() % nqubits);
    std::vector<qc::ControlSpec> controls;
    const std::size_t controlCount = rng() % 3; // 0, 1 or 2 controls
    for (std::size_t c = 0; c < controlCount; ++c) {
      const auto qubit = static_cast<qc::Qubit>(rng() % nqubits);
      bool clash = qubit == target;
      for (const auto& existing : controls) {
        clash = clash || existing.qubit == qubit;
      }
      if (!clash) {
        controls.push_back({qubit, rng() % 2 == 0});
      }
    }
    circuit.append({kind, 0.0, target, std::move(controls)});
  }
  return circuit;
}

la::Vector denseSimulate(const qc::Circuit& circuit) {
  // Use a numeric package only to construct per-gate dense matrices.
  dd::Package<NumericSystem> package(circuit.qubits(),
                                     {0.0, NumericSystem::Normalization::LeftmostNonzero});
  la::Vector state = la::Vector::basisState(std::size_t{1} << circuit.qubits(), 0);
  for (const qc::Operation& operation : circuit.operations()) {
    const auto gate = qc::makeOperationDD(package, operation);
    state = dd::toDenseMatrix(package, gate) * state;
  }
  return state;
}

class FuzzDifferential : public ::testing::TestWithParam<int> {};

TEST_P(FuzzDifferential, AllThreeBackendsAgree) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const auto nqubits = static_cast<qc::Qubit>(2 + rng() % 4); // 2..5
  const std::size_t gates = 10 + rng() % 30;
  const qc::Circuit circuit = randomCliffordT(rng, nqubits, gates);

  const la::Vector expected = denseSimulate(circuit);

  qc::Simulator<NumericSystem> numeric(circuit,
                                       {0.0, NumericSystem::Normalization::LeftmostNonzero});
  numeric.run();
  const auto numericAmplitudes = numeric.package().amplitudes(numeric.state());

  qc::Simulator<AlgebraicSystem> algebraic(circuit);
  algebraic.run();
  const auto algebraicAmplitudes = algebraic.package().amplitudes(algebraic.state());

  // Also cross-check the GCD and experimental unit-part schemes.
  qc::Simulator<AlgebraicSystem> gcd(circuit, {AlgebraicSystem::Normalization::GcdDOmega});
  gcd.run();
  const auto gcdAmplitudes = gcd.package().amplitudes(gcd.state());
  qc::Simulator<AlgebraicSystem> unitPart(circuit, {AlgebraicSystem::Normalization::UnitPart});
  unitPart.run();
  const auto unitPartAmplitudes = unitPart.package().amplitudes(unitPart.state());

  for (std::size_t i = 0; i < expected.dimension(); ++i) {
    EXPECT_NEAR(std::abs(numericAmplitudes[i] - expected[i]), 0.0, 1e-9)
        << "numeric, index " << i;
    EXPECT_NEAR(std::abs(algebraicAmplitudes[i] - expected[i]), 0.0, 1e-9)
        << "algebraic, index " << i;
    EXPECT_NEAR(std::abs(gcdAmplitudes[i] - algebraicAmplitudes[i]), 0.0, 1e-12)
        << "gcd vs inverse normalization, index " << i;
    EXPECT_NEAR(std::abs(unitPartAmplitudes[i] - algebraicAmplitudes[i]), 0.0, 1e-12)
        << "unit-part vs inverse normalization, index " << i;
  }

  // Norm is exactly 1 in the algebraic flavors.
  EXPECT_TRUE(algebraic.package().system().isOne(
      algebraic.package().innerProduct(algebraic.state(), algebraic.state())));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential, ::testing::Range(0, 24));

class FuzzNumericTolerance : public ::testing::TestWithParam<double> {};

TEST_P(FuzzNumericTolerance, ModerateEpsilonStaysAccurateOnShortCircuits) {
  // On short circuits every epsilon below 1e-6 must stay essentially exact.
  std::mt19937_64 rng(99);
  const qc::Circuit circuit = randomCliffordT(rng, 4, 25);
  const la::Vector expected = denseSimulate(circuit);
  qc::Simulator<NumericSystem> simulator(
      circuit, {GetParam(), NumericSystem::Normalization::LeftmostNonzero});
  simulator.run();
  const auto amplitudes = simulator.package().amplitudes(simulator.state());
  for (std::size_t i = 0; i < expected.dimension(); ++i) {
    EXPECT_NEAR(std::abs(amplitudes[i] - expected[i]), 0.0, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, FuzzNumericTolerance,
                         ::testing::Values(0.0, 1e-15, 1e-12, 1e-9, 1e-7));

/// Snapshot round-trip fuzzing: for random Clifford+T states the QDDS
/// serialize -> deserialize cycle must reproduce the canonical diagram —
/// same node count and exact weight equality (the re-serialization of the
/// reloaded DD is byte-identical) under the algebraic system, and ULP-0
/// amplitudes under the numeric system at the matching tolerance.
class FuzzSnapshotRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSnapshotRoundTrip, SerializeDeserializeIsExact) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 31);
  const auto nqubits = static_cast<qc::Qubit>(2 + rng() % 4); // 2..5
  const std::size_t gates = 10 + rng() % 40;
  const qc::Circuit circuit = randomCliffordT(rng, nqubits, gates);
  const double epsilon = (GetParam() % 2 == 0) ? 0.0 : 1e-10;

  qc::Simulator<AlgebraicSystem> algebraic(circuit);
  algebraic.run();
  auto& algebraicPackage = algebraic.package();
  const auto algebraicBytes = io::saveVector(algebraicPackage, algebraic.state());
  // Same package: the canonical edge itself comes back.
  EXPECT_TRUE(io::loadVector(algebraicPackage, algebraicBytes) == algebraic.state());
  // Fresh package: canonical node count survives and every weight is exactly
  // reproduced (byte-identical re-serialization).
  dd::Package<AlgebraicSystem> algebraicFresh(nqubits);
  const auto algebraicReloaded = io::loadVector(algebraicFresh, algebraicBytes);
  EXPECT_EQ(algebraicFresh.countNodes(algebraicReloaded),
            algebraicPackage.countNodes(algebraic.state()));
  EXPECT_EQ(io::saveVector(algebraicFresh, algebraicReloaded), algebraicBytes);

  qc::Simulator<NumericSystem> numeric(circuit,
                                       {epsilon, NumericSystem::Normalization::LeftmostNonzero});
  numeric.run();
  const auto numericBytes = io::saveVector(numeric.package(), numeric.state());
  dd::Package<NumericSystem> numericFresh(nqubits,
                                          {epsilon, NumericSystem::Normalization::LeftmostNonzero});
  const auto numericReloaded = io::loadVector(numericFresh, numericBytes);
  EXPECT_EQ(numericFresh.countNodes(numericReloaded),
            numeric.package().countNodes(numeric.state()));
  const auto expected = numeric.package().amplitudes(numeric.state());
  const auto restored = numericFresh.amplitudes(numericReloaded);
  ASSERT_EQ(expected.size(), restored.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(restored[i].real(), expected[i].real()) << "ULP-0 violated at index " << i;
    EXPECT_EQ(restored[i].imag(), expected[i].imag()) << "ULP-0 violated at index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSnapshotRoundTrip, ::testing::Range(0, 16));

} // namespace
} // namespace qadd
