#include "core/dd_node.hpp"
#include "core/memory_manager.hpp"
#include "core/unique_table.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

namespace qadd::dd {
namespace {

using TestNode = Node<std::uint32_t, 2>;
using TestEdge = Edge<TestNode, std::uint32_t>;
using Table = UniqueTable<TestNode>;

/// Build a (not yet inserted) node with the given contents.
TestNode* makeNode(MemoryManager<TestNode>& mem, Qubit var, TestEdge left, TestEdge right) {
  TestNode* node = mem.get();
  node->var = var;
  node->e = {left, right};
  node->ref = 0;
  node->next = nullptr;
  return node;
}

TEST(UniqueTable, FindMissesOnEmptyTable) {
  Table table;
  const std::array<TestEdge, 2> children{TestEdge{nullptr, 1}, TestEdge{nullptr, 0}};
  EXPECT_EQ(table.find(0, children, Table::hash(0, children)), nullptr);
}

TEST(UniqueTable, InsertThenFindReturnsSameNode) {
  MemoryManager<TestNode> mem;
  Table table;
  const std::array<TestEdge, 2> children{TestEdge{nullptr, 1}, TestEdge{nullptr, 0}};
  TestNode* node = makeNode(mem, 0, children[0], children[1]);
  const std::uint64_t h = Table::hash(0, children);
  table.insert(node, h);
  EXPECT_EQ(table.find(0, children, h), node);
  EXPECT_EQ(table.size(), 1U);
}

TEST(UniqueTable, DistinguishesEqualHashBucketNeighbors) {
  // Chaining must resolve same-bucket residents by full content comparison:
  // insert many nodes into a tiny table (1 bucket -> everything collides
  // until growth kicks in) and check each one is still individually found.
  MemoryManager<TestNode> mem;
  Table table(1);
  std::vector<std::array<TestEdge, 2>> contents;
  std::vector<TestNode*> nodes;
  for (std::uint32_t w = 1; w <= 64; ++w) {
    const std::array<TestEdge, 2> children{TestEdge{nullptr, w}, TestEdge{nullptr, 0}};
    TestNode* node = makeNode(mem, 0, children[0], children[1]);
    table.insert(node, Table::hash(0, children));
    contents.push_back(children);
    nodes.push_back(node);
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(table.find(0, contents[i], Table::hash(0, contents[i])), nodes[i]);
  }
}

TEST(UniqueTable, WouldCollideReportsOccupiedBucket) {
  MemoryManager<TestNode> mem;
  Table table(2); // tiny: second insert below lands in the same bucket
  bool sawCollision = false;
  for (std::uint32_t w = 1; w <= 8 && !sawCollision; ++w) {
    const std::array<TestEdge, 2> children{TestEdge{nullptr, w}, TestEdge{nullptr, 0}};
    const std::uint64_t h = Table::hash(0, children);
    sawCollision = table.wouldCollide(h);
    table.insert(makeNode(mem, 0, children[0], children[1]), h);
  }
  EXPECT_TRUE(sawCollision);
}

TEST(UniqueTable, GrowthRehashPreservesCanonicity) {
  // Push the table across several load-factor growths and verify every node
  // inserted before the rehashes is still found under its content hash —
  // i.e. growth cannot break the "same contents -> same node" guarantee.
  MemoryManager<TestNode> mem;
  Table table(4);
  const std::size_t initialBuckets = table.bucketCount();
  std::vector<std::array<TestEdge, 2>> contents;
  std::vector<TestNode*> nodes;
  for (std::uint32_t w = 1; w <= 4096; ++w) {
    const std::array<TestEdge, 2> children{TestEdge{nullptr, w}, TestEdge{nullptr, w + 1}};
    TestNode* node = makeNode(mem, w % 7, children[0], children[1]);
    table.insert(node, Table::hash(w % 7, children));
    contents.push_back(children);
    nodes.push_back(node);
  }
  EXPECT_GT(table.bucketCount(), initialBuckets) << "test must actually exercise growth";
  EXPECT_LE(table.loadFactor(), 0.75 + 1e-9);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Qubit var = static_cast<Qubit>((i + 1) % 7);
    EXPECT_EQ(table.find(var, contents[i], Table::hash(var, contents[i])), nodes[i]);
  }
}

TEST(UniqueTable, SweepRemovesOnlyDeadNodesAndLookupStillWorks) {
  MemoryManager<TestNode> mem;
  Table table;
  std::vector<std::array<TestEdge, 2>> contents;
  std::vector<TestNode*> nodes;
  for (std::uint32_t w = 1; w <= 100; ++w) {
    const std::array<TestEdge, 2> children{TestEdge{nullptr, w}, TestEdge{nullptr, 0}};
    TestNode* node = makeNode(mem, 0, children[0], children[1]);
    node->ref = (w % 2 == 0) ? 1 : 0; // odd weights are dead
    table.insert(node, Table::hash(0, children));
    contents.push_back(children);
    nodes.push_back(node);
  }
  std::size_t released = 0;
  const std::size_t swept = table.sweep([&](TestNode* node) {
    mem.free(node);
    ++released;
  });
  EXPECT_EQ(swept, 50U);
  EXPECT_EQ(released, 50U);
  EXPECT_EQ(table.size(), 50U);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    TestNode* found = table.find(0, contents[i], Table::hash(0, contents[i]));
    if (nodes[i]->ref == 0) {
      EXPECT_EQ(found, nullptr) << "dead node survived the sweep";
    } else {
      EXPECT_EQ(found, nodes[i]) << "live node lost by the sweep";
    }
  }
}

TEST(UniqueTable, SweepCascadesThroughNewlyDeadParents) {
  // A dead parent must release its children; a child whose only reference
  // was that parent dies in the same sweep (the iterate-until-fixpoint part).
  MemoryManager<TestNode> mem;
  Table table;
  const std::array<TestEdge, 2> childContents{TestEdge{nullptr, 1}, TestEdge{nullptr, 0}};
  TestNode* child = makeNode(mem, 1, childContents[0], childContents[1]);
  child->ref = 1; // held only by the parent below
  table.insert(child, Table::hash(1, childContents));

  const std::array<TestEdge, 2> parentContents{TestEdge{child, 1}, TestEdge{nullptr, 0}};
  TestNode* parent = makeNode(mem, 0, parentContents[0], parentContents[1]);
  parent->ref = 0; // dead
  table.insert(parent, Table::hash(0, parentContents));

  const std::size_t swept = table.sweep([&](TestNode* node) { mem.free(node); });
  EXPECT_EQ(swept, 2U);
  EXPECT_EQ(table.size(), 0U);
}

} // namespace
} // namespace qadd::dd
