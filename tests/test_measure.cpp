#include "qc/measure.hpp"

#include "algorithms/common.hpp"
#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace qadd::qc {
namespace {

using dd::AlgebraicSystem;
using dd::NumericSystem;

TEST(Measure, BasisStateProbabilities) {
  qc::Circuit c(3);
  c.x(0).x(2);
  Simulator<AlgebraicSystem> simulator(c);
  simulator.run();
  auto& p = simulator.package();
  EXPECT_NEAR(probabilityOfOne(p, simulator.state(), 0), 1.0, 1e-12);
  EXPECT_NEAR(probabilityOfOne(p, simulator.state(), 1), 0.0, 1e-12);
  EXPECT_NEAR(probabilityOfOne(p, simulator.state(), 2), 1.0, 1e-12);
}

TEST(Measure, PlusStateIsBalanced) {
  qc::Circuit c(2);
  c.h(0);
  Simulator<AlgebraicSystem> simulator(c);
  simulator.run();
  auto& p = simulator.package();
  EXPECT_NEAR(probabilityOfOne(p, simulator.state(), 0), 0.5, 1e-12);
  EXPECT_NEAR(probabilityOfOne(p, simulator.state(), 1), 0.0, 1e-12);
}

TEST(Measure, GhzMarginalsAreHalf) {
  for (const Qubit n : {3U, 6U}) {
    Simulator<NumericSystem> simulator(algos::ghz(n), {1e-12});
    simulator.run();
    auto& p = simulator.package();
    for (Qubit q = 0; q < n; ++q) {
      EXPECT_NEAR(probabilityOfOne(p, simulator.state(), q), 0.5, 1e-9) << "qubit " << q;
    }
  }
}

TEST(Measure, TGateDoesNotChangeProbabilities) {
  qc::Circuit c(1);
  c.h(0).t(0);
  Simulator<AlgebraicSystem> simulator(c);
  simulator.run();
  EXPECT_NEAR(probabilityOfOne(simulator.package(), simulator.state(), 0), 0.5, 1e-12);
}

TEST(Measure, SamplingMatchesBornRule) {
  // Biased single-qubit state: Ry-like bias built from H T H ...; easier:
  // use |psi> = H|0> on qubit 0 entangled with qubit 1 -> outcomes 00 and 11
  // each with probability 1/2.
  Simulator<AlgebraicSystem> simulator(algos::ghz(2));
  simulator.run();
  auto& p = simulator.package();
  std::mt19937_64 rng(42);
  std::map<std::uint64_t, int> histogram;
  constexpr int kSamples = 4000;
  for (int i = 0; i < kSamples; ++i) {
    ++histogram[sampleOutcome(p, simulator.state(), rng)];
  }
  ASSERT_EQ(histogram.size(), 2U);
  EXPECT_GT(histogram[0b00], kSamples / 2 - 200);
  EXPECT_GT(histogram[0b11], kSamples / 2 - 200);
  EXPECT_EQ(histogram.count(0b01), 0U);
  EXPECT_EQ(histogram.count(0b10), 0U);
}

TEST(Measure, SamplingUniformSuperposition) {
  qc::Circuit c(3);
  c.h(0).h(1).h(2);
  Simulator<NumericSystem> simulator(c, {1e-12});
  simulator.run();
  std::mt19937_64 rng(7);
  std::map<std::uint64_t, int> histogram;
  constexpr int kSamples = 8000;
  for (int i = 0; i < kSamples; ++i) {
    ++histogram[sampleOutcome(simulator.package(), simulator.state(), rng)];
  }
  EXPECT_EQ(histogram.size(), 8U);
  for (const auto& [outcome, count] : histogram) {
    EXPECT_NEAR(static_cast<double>(count) / kSamples, 0.125, 0.03) << "outcome " << outcome;
  }
}

TEST(Measure, ProjectionSelectsBranch) {
  Simulator<AlgebraicSystem> simulator(algos::ghz(3));
  simulator.run();
  auto& p = simulator.package();
  // Project qubit 0 onto |1>: the state must become |111> / sqrt2
  // (sub-normalized, squared norm = outcome probability 1/2).
  const auto projected = projectQubit(p, simulator.state(), 0, true);
  const auto amplitudes = p.amplitudes(projected);
  EXPECT_NEAR(std::abs(amplitudes[7]), 1.0 / std::sqrt(2.0), 1e-12);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_NEAR(std::abs(amplitudes[i]), 0.0, 1e-12);
  }
  // Squared norm of the projection = P(outcome).
  const auto norm = p.system().toComplex(p.innerProduct(projected, projected));
  EXPECT_NEAR(norm.real(), 0.5, 1e-12);
}

TEST(Measure, ProjectionOfImpossibleOutcomeIsZero) {
  qc::Circuit c(2);
  c.x(0); // |10>
  Simulator<AlgebraicSystem> simulator(c);
  simulator.run();
  auto& p = simulator.package();
  const auto projected = projectQubit(p, simulator.state(), 0, false);
  EXPECT_TRUE(p.system().isZero(projected.w));
}

TEST(Measure, ProjectionConsistentWithProbability) {
  // For a generic Clifford+T state: ||project(q,1)||^2 == P(q = 1).
  qc::Circuit c(3);
  c.h(0).t(0).cx(0, 1).h(2).v(1).cx(1, 2).h(1);
  Simulator<AlgebraicSystem> simulator(c);
  simulator.run();
  auto& p = simulator.package();
  for (Qubit q = 0; q < 3; ++q) {
    const auto projected = projectQubit(p, simulator.state(), q, true);
    const double normSquared =
        p.system().toComplex(p.innerProduct(projected, projected)).real();
    EXPECT_NEAR(normSquared, probabilityOfOne(p, simulator.state(), q), 1e-10) << "qubit " << q;
  }
}

} // namespace
} // namespace qadd::qc
