#include "qc/stats.hpp"

#include "algorithms/common.hpp"
#include "algorithms/grover.hpp"

#include <gtest/gtest.h>

namespace qadd::qc {
namespace {

TEST(Stats, EmptyCircuit) {
  const CircuitStats stats = analyze(Circuit(3));
  EXPECT_EQ(stats.gates, 0U);
  EXPECT_EQ(stats.depth, 0U);
  EXPECT_EQ(stats.tCount, 0U);
}

TEST(Stats, ParallelGatesShareALayer) {
  Circuit c(3);
  c.h(0).h(1).h(2); // one layer
  c.t(0);           // second layer
  const CircuitStats stats = analyze(c);
  EXPECT_EQ(stats.gates, 4U);
  EXPECT_EQ(stats.depth, 2U);
  EXPECT_EQ(stats.tCount, 1U);
}

TEST(Stats, ControlsSerializeLines) {
  Circuit c(3);
  c.cx(0, 1); // layer 1 on lines 0,1
  c.h(2);     // layer 1 on line 2
  c.cx(1, 2); // layer 2 (line 1 busy, line 2 busy after h -> starts at 1+... )
  const CircuitStats stats = analyze(c);
  EXPECT_EQ(stats.depth, 2U);
  EXPECT_EQ(stats.twoQubitGates, 2U);
  EXPECT_EQ(stats.controlledGates, 2U);
}

TEST(Stats, GhzDepthIsLinear) {
  const CircuitStats stats = analyze(algos::ghz(8));
  EXPECT_EQ(stats.gates, 8U);
  EXPECT_EQ(stats.depth, 8U); // H then a strictly sequential CNOT ladder
}

TEST(Stats, GroverHistogram) {
  const CircuitStats stats = analyze(algos::grover({5, 7, 2}));
  EXPECT_EQ(stats.perKind.at(GateKind::H), 5U + 2U * 10U);
  EXPECT_EQ(stats.perKind.at(GateKind::Z), 4U); // 2 oracles + 2 diffusions
  EXPECT_EQ(stats.maxControls, 4U);
  EXPECT_GT(stats.depth, 0U);
  EXPECT_LE(stats.depth, stats.gates);
  EXPECT_FALSE(stats.toString().empty());
}

TEST(Stats, DeepSingleLine) {
  Circuit c(2);
  for (int i = 0; i < 10; ++i) {
    c.t(0);
  }
  c.h(1);
  const CircuitStats stats = analyze(c);
  EXPECT_EQ(stats.depth, 10U);
  EXPECT_EQ(stats.tCount, 10U);
}

} // namespace
} // namespace qadd::qc
