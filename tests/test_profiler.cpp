/// \file test_profiler.cpp
/// The structural DD profiler (qadd::obs::profileDd and the snapshot entry
/// points behind the qadd_prof CLI): per-level accounting must tie out
/// against the package's own node counts, fan-out/sharing factors must obey
/// their structural bounds, the weight histograms must classify by the right
/// complexity measure per system, and the JSON/DOT emitters must be
/// well-formed.
#include "algorithms/common.hpp"
#include "algorithms/grover.hpp"
#include "core/algebraic_system.hpp"
#include "core/numeric_system.hpp"
#include "core/package.hpp"
#include "io/snapshot.hpp"
#include "obs/profiler.hpp"
#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace {

using namespace qadd;

dd::NumericSystem::Config tightConfig() {
  return {1e-12, dd::NumericSystem::Normalization::LeftmostNonzero};
}

std::vector<std::uint8_t> goldenSnapshot() {
  const std::string path = std::string(QADD_TESTDATA_DIR) + "/golden_pr3.qdds";
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.is_open()) << "missing golden file: " << path;
  return {std::istreambuf_iterator<char>(file), std::istreambuf_iterator<char>()};
}

std::size_t levelNodeSum(const obs::DdProfile& profile) {
  std::size_t sum = 0;
  for (const auto& level : profile.levels) {
    sum += level.nodes;
  }
  return sum;
}

TEST(Profiler, LiveVectorProfileTiesOutAgainstPackageCounts) {
  qc::Simulator<dd::NumericSystem> simulator(algos::grover({6, (1ULL << 6) - 2, 0}),
                                             tightConfig());
  simulator.run();
  const auto& package = simulator.package();
  const obs::DdProfile profile = obs::profileDd(package, simulator.state());

  EXPECT_EQ(profile.kind, "vector");
  EXPECT_EQ(profile.qubits, 6U);
  EXPECT_EQ(profile.weightHistogramKind, "neglog2magnitude");
  EXPECT_EQ(profile.totalNodes, package.countNodes(simulator.state()));
  EXPECT_EQ(levelNodeSum(profile), profile.totalNodes);
  ASSERT_EQ(profile.levels.size(), 6U);
  // The root (level 0) of a connected vector DD is a single node whose only
  // incoming edge is the root edge.
  EXPECT_EQ(profile.levels[0].nodes, 1U);
  EXPECT_EQ(profile.levels[0].incomingEdges, 1U);

  std::size_t edgeSum = 0;
  std::size_t terminalSum = 0;
  std::size_t incomingSum = 0;
  for (const auto& level : profile.levels) {
    // Vector nodes have at most two non-zero successors; every counted edge
    // is classified into exactly one histogram bucket.
    EXPECT_LE(level.edges + level.zeroEdges, 2 * level.nodes);
    EXPECT_LE(level.fanOut(), 2.0);
    std::uint64_t histogramTotal = 0;
    for (const std::uint64_t count : level.weightHistogram) {
      histogramTotal += count;
    }
    EXPECT_EQ(histogramTotal, level.edges);
    edgeSum += level.edges;
    terminalSum += level.edgesToTerminal;
    incomingSum += level.incomingEdges;
  }
  // totalEdges = per-level outgoing edges + the root edge; every edge that
  // does not end at the terminal is an incoming edge of some level.
  EXPECT_EQ(profile.totalEdges, edgeSum + 1);
  EXPECT_EQ(incomingSum, profile.totalEdges - terminalSum);
  EXPECT_GT(profile.distinctEdgeWeights, 0U);
}

TEST(Profiler, MatrixProfileCountsGateDd) {
  dd::Package<dd::NumericSystem> package(4, tightConfig());
  const qc::Operation cx{qc::GateKind::X, 0.0, 2, {qc::ControlSpec{0}}};
  const auto gate = qc::makeOperationDD(package, cx);
  const obs::DdProfile profile = obs::profileDd(package, gate);
  EXPECT_EQ(profile.kind, "matrix");
  EXPECT_EQ(profile.totalNodes, package.countNodes(gate));
  EXPECT_EQ(levelNodeSum(profile), profile.totalNodes);
  for (const auto& level : profile.levels) {
    EXPECT_LE(level.fanOut(), 4.0); // matrix nodes have up to four successors
  }
}

TEST(Profiler, AlgebraicHistogramUsesCoefficientBits) {
  qc::Simulator<dd::AlgebraicSystem> simulator(algos::ghz(4));
  simulator.run();
  const obs::DdProfile profile =
      obs::profileDd(simulator.package(), simulator.state());
  EXPECT_EQ(profile.weightHistogramKind, "bits");
  EXPECT_EQ(profile.totalNodes, simulator.package().countNodes(simulator.state()));
  EXPECT_EQ(levelNodeSum(profile), profile.totalNodes);
}

TEST(Profiler, GoldenSnapshotLevelsSumToStoredNodeCount) {
  // The acceptance tie-out: profiling the PR 3 golden QDDS snapshot must
  // report per-level node counts that sum to the snapshot's own node total.
  const std::vector<std::uint8_t> golden = goldenSnapshot();
  ASSERT_FALSE(golden.empty());
  const io::SnapshotInfo info = io::readInfo(golden);
  const obs::DdProfile profile = obs::profileSnapshot(golden);
  EXPECT_EQ(profile.totalNodes, info.nodeCount);
  EXPECT_EQ(levelNodeSum(profile), info.nodeCount);
  EXPECT_EQ(profile.qubits, info.qubits);
  EXPECT_EQ(profile.kind, "vector");
  EXPECT_EQ(profile.weightHistogramKind, "bits"); // algebraic golden state
}

TEST(Profiler, JsonEmitterIsBalancedAndCarriesLevels) {
  const obs::DdProfile profile = obs::profileSnapshot(goldenSnapshot());
  std::ostringstream os;
  obs::writeProfileJson(os, profile);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"levels\":["), std::string::npos);
  EXPECT_NE(json.find("\"fanOut\":"), std::string::npos);
  EXPECT_NE(json.find("\"sharing\":"), std::string::npos);
  long braces = 0;
  long brackets = 0;
  for (const char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);

  std::ostringstream table;
  obs::printProfileTable(table, profile);
  EXPECT_NE(table.str().find("level"), std::string::npos);
  EXPECT_NE(table.str().find("fan-out"), std::string::npos);
}

TEST(Profiler, SnapshotToDotProducesGraphviz) {
  const std::string dot = obs::snapshotToDot(goldenSnapshot());
  EXPECT_EQ(dot.rfind("digraph", 0), 0U) << "DOT output must start with 'digraph'";
  EXPECT_NE(dot.find("->"), std::string::npos);
}

} // namespace
