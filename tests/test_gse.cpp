#include "algorithms/gse.hpp"

#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qadd::algos {
namespace {

TEST(IsingHamiltonian, EigenvalueSigns) {
  IsingHamiltonian h;
  h.systemQubits = 2;
  h.fields = {1.0, 0.5};
  h.couplings = {{0.0, 1.0, 0.25}};
  // |00>: all Z = +1.
  EXPECT_DOUBLE_EQ(h.eigenvalue(0b00), 1.0 + 0.5 + 0.25);
  // |01> (qubit 0 set): Z_0 = -1.
  EXPECT_DOUBLE_EQ(h.eigenvalue(0b01), -1.0 + 0.5 - 0.25);
  // |11>: both -1, coupling +.
  EXPECT_DOUBLE_EQ(h.eigenvalue(0b11), -1.0 - 0.5 + 0.25);
}

TEST(IsingHamiltonian, MolecularInstanceShape) {
  const IsingHamiltonian h = makeMolecularInstance(4);
  EXPECT_EQ(h.fields.size(), 4U);
  EXPECT_EQ(h.couplings.size(), 6U); // C(4,2)
  for (const double field : h.fields) {
    EXPECT_GT(field, 0.0);
  }
}

TEST(Gse, RotationCircuitShape) {
  const GseOptions options{3, 4, 1.0, 0};
  const qc::Circuit circuit = gseRotationCircuit(options);
  EXPECT_EQ(circuit.qubits(), 7U);
  EXPECT_FALSE(circuit.isCliffordTOnly()) << "rotation-level GSE has arbitrary angles";
}

TEST(Gse, CompiledCircuitIsCliffordT) {
  const qc::Circuit circuit = gse({2, 2, 1.0, 0}, {3, 0});
  EXPECT_TRUE(circuit.isCliffordTOnly());
  EXPECT_GT(circuit.tCount(), 0U);
}

TEST(Gse, NumericPhaseEstimationFindsTheEigenphase) {
  // Simulate the *rotation-level* circuit numerically (exact gates): the
  // ancilla register must concentrate on the expected phase.
  const GseOptions options{2, 5, 1.0, 0b00};
  const IsingHamiltonian hamiltonian = makeMolecularInstance(2);
  const qc::Circuit circuit = gseRotationCircuit(options, &hamiltonian);
  qc::Simulator<dd::NumericSystem> simulator(
      circuit, {1e-12, dd::NumericSystem::Normalization::LeftmostNonzero});
  simulator.run();
  const auto amplitudes = simulator.package().amplitudes(simulator.state());

  const double expectedPhase = gseExpectedPhase(options, hamiltonian);
  // Ancillas are the top 5 qubits; system is in the eigenstate |00>, i.e.
  // system index 0.  Find the most probable ancilla value.
  const unsigned m = options.precisionQubits;
  const unsigned s = options.systemQubits;
  double bestProbability = 0.0;
  std::size_t bestAncilla = 0;
  for (std::size_t a = 0; a < (1ULL << m); ++a) {
    double p = 0.0;
    for (std::size_t sys = 0; sys < (1ULL << s); ++sys) {
      p += std::norm(amplitudes[(a << s) | sys]);
    }
    if (p > bestProbability) {
      bestProbability = p;
      bestAncilla = a;
    }
  }
  const double measuredPhase =
      static_cast<double>(bestAncilla) / static_cast<double>(1ULL << m);
  // Phase estimation with m bits has resolution 2^-m; allow one bin.
  double delta = std::abs(measuredPhase - expectedPhase);
  delta = std::min(delta, 1.0 - delta); // circular distance
  EXPECT_LE(delta, 1.5 / static_cast<double>(1ULL << m));
  EXPECT_GT(bestProbability, 0.4);
}

TEST(Gse, CompiledAndRotationCircuitsAgreeApproximately) {
  // The Clifford+T compilation is an approximation, but with a deep-ish SK
  // the measurement statistics must stay close (projective phases cancel in
  // probabilities of the ancilla register only up to the SK error).
  const GseOptions options{1, 2, 1.0, 0};
  IsingHamiltonian h;
  h.systemQubits = 1;
  h.fields = {0.7071067811865476};
  const qc::Circuit rotation = gseRotationCircuit(options, &h);
  synth::CliffordTCompiler compiler({5, 2});
  const qc::Circuit compiled = compiler.compile(rotation);

  qc::Simulator<dd::NumericSystem> exact(rotation,
                                         {0.0, dd::NumericSystem::Normalization::LeftmostNonzero});
  exact.run();
  qc::Simulator<dd::AlgebraicSystem> approximate(compiled);
  approximate.run();
  const auto a = exact.package().amplitudes(exact.state());
  const auto b = approximate.package().amplitudes(approximate.state());
  // Compare probability distributions (global/relative phases may differ).
  double l1 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    l1 += std::abs(std::norm(a[i]) - std::norm(b[i]));
  }
  EXPECT_LT(l1, 0.35) << "SK-compiled GSE must roughly track the ideal distribution";
}

TEST(Gse, EigenstatePreparationAffectsPhase) {
  const IsingHamiltonian hamiltonian = makeMolecularInstance(2);
  const GseOptions ground{2, 4, 1.0, 0b00};
  const GseOptions excited{2, 4, 1.0, 0b11};
  EXPECT_NE(gseExpectedPhase(ground, hamiltonian), gseExpectedPhase(excited, hamiltonian));
}

TEST(Gse, RejectsDegenerateOptions) {
  EXPECT_THROW((void)gseRotationCircuit({0, 4, 1.0, 0}), std::invalid_argument);
  EXPECT_THROW((void)gseRotationCircuit({3, 0, 1.0, 0}), std::invalid_argument);
}

} // namespace
} // namespace qadd::algos
