/// \file test_approx.cpp
/// The fidelity-bounded approximation engine (arXiv 2002.04904): the
/// Package::prune contribution/budget contract, the simulator's per-gate and
/// one-shot policies, determinism of approximated sweeps across --jobs,
/// canonicalization of pruned states through QDDS round trips, the serve
/// protocol-v2 knobs (including the exactness-contract 400 on algebraic
/// sessions), and the accuracyError off-unit-reference regression.
#include "algorithms/grover.hpp"
#include "core/algebraic_system.hpp"
#include "core/approximation.hpp"
#include "core/numeric_system.hpp"
#include "core/package.hpp"
#include "eval/accuracy.hpp"
#include "eval/report.hpp"
#include "eval/sweep.hpp"
#include "io/snapshot.hpp"
#include "obs/deterministic.hpp"
#include "qc/simulator.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <optional>
#include <span>
#include <type_traits>
#include <complex>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace qadd;

using NumPackage = dd::Package<dd::NumericSystem>;
using NumSimulator = qc::Simulator<dd::NumericSystem>;

/// A Grover state midway through amplitude amplification: structured but not
/// sparse — plenty of small-contribution subtrees for prune to rank.
std::shared_ptr<NumPackage> runGrover(qc::Qubit qubits, NumSimulator*& out,
                                      std::optional<NumSimulator>& storage,
                                      const dd::ApproxSpec& approx = {}) {
  auto package = std::make_shared<NumPackage>(static_cast<dd::Qubit>(qubits),
                                              dd::NumericSystem::Config{});
  storage.emplace(package, algos::grover({qubits, (1ULL << qubits) - 2, 0}));
  if (approx.policy != dd::ApproxPolicy::None) {
    storage->setApproximation(approx);
  }
  storage->run();
  out = &*storage;
  return package;
}

double stateNorm(NumPackage& package, const NumPackage::VEdge& e) {
  return package.system().toComplex(package.innerProduct(e, e)).real();
}

// -- Package::prune ---------------------------------------------------------------

TEST(ApproxPrune, FidelityBoundHolds) {
  NumSimulator* sim = nullptr;
  std::optional<NumSimulator> storage;
  auto package = runGrover(8, sim, storage);
  const auto root = sim->state();
  const std::size_t exactNodes = package->countNodes(root);

  for (const double budget : {0.5, 0.1, 0.01, 0.001}) {
    const auto result = package->prune(root, budget);
    EXPECT_GE(result.achievedFidelity, 1.0 - budget - 1e-9)
        << "fidelity bound violated for budget " << budget;
    EXPECT_LE(result.budgetSpent, budget + 1e-12);
    EXPECT_LE(result.nodesAfter, result.nodesBefore);
    EXPECT_EQ(result.nodesBefore, exactNodes);
    // The pruned state is renormalized back to unit length.
    EXPECT_NEAR(stateNorm(*package, result.edge), 1.0, 1e-9);
    // The reported fidelity is the actual overlap with the input, not just
    // the budget bookkeeping.
    EXPECT_NEAR(result.achievedFidelity, package->fidelity(result.edge, root), 1e-12);
  }
}

TEST(ApproxPrune, LargerBudgetsNeverGrowTheDiagram) {
  NumSimulator* sim = nullptr;
  std::optional<NumSimulator> storage;
  auto package = runGrover(8, sim, storage);
  const auto root = sim->state();
  std::size_t previousNodes = package->countNodes(root) + 1;
  for (const double budget : {1e-4, 1e-3, 1e-2, 1e-1, 0.5}) {
    const auto result = package->prune(root, budget);
    EXPECT_LE(result.nodesAfter, previousNodes)
        << "budget " << budget << " produced a larger diagram than a smaller budget";
    previousNodes = result.nodesAfter;
  }
}

TEST(ApproxPrune, BudgetZeroIsANoop) {
  NumSimulator* sim = nullptr;
  std::optional<NumSimulator> storage;
  auto package = runGrover(6, sim, storage);
  const auto root = sim->state();
  const auto result = package->prune(root, 0.0);
  EXPECT_EQ(result.edge.node, root.node);
  EXPECT_EQ(result.edge.w, root.w);
  EXPECT_EQ(result.edgesPruned, 0U);
  EXPECT_EQ(result.achievedFidelity, 1.0);
  EXPECT_EQ(io::saveVector(*package, result.edge), io::saveVector(*package, root));
}

TEST(ApproxPrune, PrunedStateIsCanonical) {
  // Prune -> snapshot -> reload into a fresh package -> snapshot again must
  // be byte-identical: the pruned DD is a first-class canonical diagram, not
  // a package-private artifact.
  NumSimulator* sim = nullptr;
  std::optional<NumSimulator> storage;
  auto package = runGrover(8, sim, storage);
  const auto result = package->prune(sim->state(), 0.05);
  ASSERT_GT(result.edgesPruned, 0U);
  const std::vector<std::uint8_t> bytes = io::saveVector(*package, result.edge);

  NumPackage fresh(8, dd::NumericSystem::Config{});
  const auto reloaded = io::loadVector(fresh, bytes);
  EXPECT_EQ(io::saveVector(fresh, reloaded), bytes)
      << "QDDS round trip of a pruned state must be byte-identical";
  EXPECT_EQ(fresh.countNodes(reloaded), result.nodesAfter);
}

TEST(ApproxPrune, CountsIntoPackageStats) {
  NumSimulator* sim = nullptr;
  std::optional<NumSimulator> storage;
  auto package = runGrover(8, sim, storage);
  const auto result = package->prune(sim->state(), 0.1);
  ASSERT_GT(result.edgesPruned, 0U);
  EXPECT_TRUE(package->stats().approx.any());
  EXPECT_EQ(package->stats().approx.pruneRuns.value(), 1U);
  EXPECT_EQ(package->stats().approx.edgesPruned.value(), result.edgesPruned);

  std::ostringstream os;
  eval::writeStatsJson(os, package->stats());
  EXPECT_NE(os.str().find("\"approx\""), std::string::npos);
  EXPECT_NE(os.str().find("\"pruneRuns\""), std::string::npos);
}

TEST(ApproxPrune, AlgebraicPackageRefuses) {
  dd::Package<dd::AlgebraicSystem> package(3);
  const std::array<bool, 3> bits{false, false, false};
  const auto basis = package.makeBasisState(std::span<const bool>(bits));
  EXPECT_THROW((void)package.prune(basis, 0.1), std::logic_error)
      << "the algebraic system is exact; prune must refuse";
}

// -- simulator policies -----------------------------------------------------------

TEST(ApproxPrune, PerGatePolicyKeepsCumulativeFidelityBound) {
  const double budget = 0.05;
  NumSimulator* sim = nullptr;
  std::optional<NumSimulator> storage;
  auto package =
      runGrover(9, sim, storage, {budget, dd::ApproxPolicy::PerGate});
  EXPECT_GE(sim->approxFidelity(), 1.0 - budget - 1e-9)
      << "the product of per-prune fidelities must respect the total budget";
  EXPECT_LT(sim->approxFidelity(), 1.0) << "a 5% budget on Grover should actually prune";
  EXPECT_GT(sim->approxPrunedNodes(), 0U);
  EXPECT_NEAR(stateNorm(*package, sim->state()), 1.0, 1e-9);

  // The approximated diagram never exceeds the exact one.
  NumSimulator* exact = nullptr;
  std::optional<NumSimulator> exactStorage;
  auto exactPackage = runGrover(9, exact, exactStorage);
  EXPECT_LE(sim->stateNodes(), exact->stateNodes());
}

TEST(ApproxPrune, OneShotPolicyPrunesOnlyAtTheEnd) {
  const qc::Qubit qubits = 8;
  auto package = std::make_shared<NumPackage>(static_cast<dd::Qubit>(qubits),
                                              dd::NumericSystem::Config{});
  NumSimulator simulator(package, algos::grover({qubits, (1ULL << qubits) - 2, 0}));
  simulator.setApproximation({0.1, dd::ApproxPolicy::OneShot});
  const std::size_t half = simulator.circuit().size() / 2;
  while (simulator.gateIndex() < half) {
    simulator.step();
  }
  EXPECT_EQ(simulator.approxPrunedNodes(), 0U) << "one-shot must not prune mid-circuit";
  EXPECT_EQ(simulator.approxFidelity(), 1.0);
  simulator.run();
  EXPECT_GE(simulator.approxFidelity(), 1.0 - 0.1 - 1e-9);
  EXPECT_GT(simulator.approxPrunedNodes(), 0U);
}

TEST(ApproxPrune, SimulatorRejectsBadSpecs) {
  const qc::Qubit qubits = 3;
  auto package = std::make_shared<NumPackage>(static_cast<dd::Qubit>(qubits),
                                              dd::NumericSystem::Config{});
  NumSimulator simulator(package, algos::grover({qubits, 1, 1}));
  EXPECT_THROW(simulator.setApproximation({1.5, dd::ApproxPolicy::PerGate}),
               std::invalid_argument);
  EXPECT_THROW(simulator.setApproximation({-0.1, dd::ApproxPolicy::PerGate}),
               std::invalid_argument);

  using AlgSimulator = qc::Simulator<dd::AlgebraicSystem>;
  auto algPackage = std::make_shared<dd::Package<dd::AlgebraicSystem>>(qubits);
  AlgSimulator algSimulator(algPackage, algos::grover({qubits, 1, 1}));
  EXPECT_THROW(algSimulator.setApproximation({0.1, dd::ApproxPolicy::PerGate}),
               std::invalid_argument);
}

// -- RunSpec sweeps ---------------------------------------------------------------

namespace {

std::string deterministicCsv(const std::vector<eval::SimulationTrace>& traces) {
  obs::setDeterministic(true);
  std::ostringstream os;
  eval::writeCsv(os, traces);
  obs::setDeterministic(false);
  return os.str();
}

eval::SweepSpec approxSweep() {
  eval::SweepSpec sweep(algos::grover({6, (1ULL << 6) - 2, 0}));
  sweep.options.sampleEvery = 7;
  sweep.options.captureFinalState = true;
  sweep.reference = eval::ReferencePolicy::Inline;
  sweep.addEpsilons({0.0, 1e-10, 1e-5});
  sweep.applyApprox({0.1, dd::ApproxPolicy::PerGate});
  return sweep;
}

} // namespace

TEST(ApproxSweep, LabelsCarryTheApproxAxis) {
  const eval::SweepSpec sweep = approxSweep();
  const eval::SweepResult result = eval::runSweep(sweep, nullptr);
  ASSERT_EQ(result.traces.size(), 1U + sweep.points.size());
  EXPECT_EQ(result.traces[1].label, "numeric eps=0 approx=pergate:f0.9");
  for (std::size_t i = 1; i < result.traces.size(); ++i) {
    EXPECT_GE(result.traces[i].finalFidelity, 1.0 - 0.1 - 1e-9);
    EXPECT_LE(result.traces[i].finalFidelity, 1.0);
  }
}

TEST(ApproxSweep, DeterministicAcrossJobs) {
  const eval::SweepSpec sweep = approxSweep();
  const eval::SweepResult serial = eval::runSweep(sweep, nullptr);
  exec::ThreadPool pool(4);
  const eval::SweepResult parallel = eval::runSweep(sweep, &pool);
  ASSERT_EQ(serial.traces.size(), parallel.traces.size());
  EXPECT_EQ(deterministicCsv(serial.traces), deterministicCsv(parallel.traces))
      << "approximated sweeps must stay byte-identical between --jobs 1 and --jobs 4";
  for (std::size_t i = 0; i < serial.traces.size(); ++i) {
    EXPECT_EQ(serial.traces[i].finalStateSnapshot, parallel.traces[i].finalStateSnapshot)
        << "final state of " << serial.traces[i].label;
    EXPECT_EQ(serial.traces[i].prunedNodes, parallel.traces[i].prunedNodes);
    EXPECT_EQ(serial.traces[i].finalFidelity, parallel.traces[i].finalFidelity);
  }
}

TEST(ApproxSweep, InactiveSpecLeavesLegacyBehaviorIntact) {
  // RunSpec with a default ApproxSpec must reproduce the historic SweepPoint
  // behavior bit for bit: same labels, fidelity pinned at 1, no pruning.
  eval::SweepSpec sweep(algos::grover({5, (1ULL << 5) - 2, 0}));
  sweep.options.sampleEvery = 7;
  sweep.reference = eval::ReferencePolicy::None;
  sweep.addEpsilons({0.0, 1e-5});
  sweep.applyApprox({}); // inactive: a no-op by contract
  const eval::SweepResult result = eval::runSweep(sweep, nullptr);
  ASSERT_EQ(result.traces.size(), 2U);
  EXPECT_EQ(result.traces[0].label, "numeric eps=0");
  EXPECT_EQ(result.traces[1].label, "numeric eps=1e-05");
  for (const auto& trace : result.traces) {
    EXPECT_EQ(trace.finalFidelity, 1.0);
    EXPECT_EQ(trace.prunedNodes, 0U);
  }
  // The deprecated alias stays source-compatible.
  const eval::SweepPoint legacy{1e-3, false};
  static_assert(std::is_same_v<eval::SweepPoint, eval::RunSpec>);
  EXPECT_EQ(legacy.epsilon, 1e-3);
  EXPECT_FALSE(legacy.approx.active());
}

TEST(ApproxSweep, CsvCarriesFidelityColumns) {
  const eval::SweepSpec sweep = approxSweep();
  const eval::SweepResult result = eval::runSweep(sweep, nullptr);
  std::ostringstream os;
  eval::writeCsv(os, result.traces);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("fidelity,prunednodes"), std::string::npos);
  EXPECT_EQ(csv.find("series,"), 0U);
}

// -- serve protocol v2 ------------------------------------------------------------

TEST(ApproxServe, NumericSessionsAcceptAndReportApproximation) {
  serve::ServerConfig config;
  config.port = 0;
  config.workers = 2;
  config.idleTimeoutSeconds = 0;
  serve::Server server(config);
  server.start();

  serve::Client client;
  client.connect("127.0.0.1", server.port(), 30.0);

  serve::json::Value hello = serve::json::Value::object();
  hello.set("op", "hello");
  const auto helloReply = client.call(hello);
  EXPECT_GE(helloReply.getNumber("protocol"), 2.0) << "approx knobs arrived with protocol v2";

  serve::json::Value open = serve::json::Value::object();
  open.set("op", "open");
  open.set("session", "approx");
  open.set("system", "num");
  open.set("qubits", static_cast<std::size_t>(8));
  open.set("approx_fidelity", 0.9);
  const auto opened = client.call(open);
  ASSERT_TRUE(opened.getBool("ok")) << "numeric session must accept approx_fidelity";
  EXPECT_NEAR(opened.getNumber("approx_fidelity"), 0.9, 1e-12);
  EXPECT_EQ(opened.getString("approx_policy"), "pergate");

  serve::json::Value run = serve::json::Value::object();
  run.set("op", "run");
  run.set("session", "approx");
  run.set("circuit", algos::grover({8, (1ULL << 8) - 2, 0}).toText());
  const auto ran = client.call(run);
  ASSERT_TRUE(ran.getBool("ok"));
  EXPECT_GE(ran.getNumber("fidelity"), 1.0 - 0.1 - 1e-9);
  EXPECT_LE(ran.getNumber("fidelity"), 1.0);
  EXPECT_NE(ran.find("pruned_nodes"), nullptr);

  server.stop();
}

TEST(ApproxServe, AlgebraicSessionsRejectApproximationWith400) {
  serve::ServerConfig config;
  config.port = 0;
  config.workers = 1;
  config.idleTimeoutSeconds = 0;
  serve::Server server(config);
  server.start();

  serve::Client client;
  client.connect("127.0.0.1", server.port(), 30.0);

  serve::json::Value open = serve::json::Value::object();
  open.set("op", "open");
  open.set("session", "exact");
  open.set("system", "alg");
  open.set("qubits", static_cast<std::size_t>(4));
  open.set("approx_fidelity", 0.9);
  const auto rejected = client.call(open);
  EXPECT_FALSE(rejected.getBool("ok"));
  const serve::json::Value* error = rejected.find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(static_cast<int>(error->getNumber("code")), serve::kBadRequest)
      << "the exactness contract: approximated results must never enter the exact cache";

  // A policy without a fidelity budget is a contradiction on any system.
  serve::json::Value bad = serve::json::Value::object();
  bad.set("op", "open");
  bad.set("session", "bad");
  bad.set("system", "num");
  bad.set("qubits", static_cast<std::size_t>(4));
  bad.set("approx_policy", "oneshot");
  const auto alsoRejected = client.call(bad);
  EXPECT_FALSE(alsoRejected.getBool("ok"));
  EXPECT_EQ(static_cast<int>(alsoRejected.find("error")->getNumber("code")),
            serve::kBadRequest);

  server.stop();
}

// -- accuracyError off-unit references --------------------------------------------

TEST(ApproxAccuracy, ScaledReferenceGivesTheSameError) {
  const std::vector<std::complex<double>> numeric = {{0.6, 0.0}, {0.0, 0.8}};
  const std::vector<std::complex<double>> unitReference = {{1.0, 0.0}, {0.0, 0.0}};
  std::vector<std::complex<double>> scaledReference = unitReference;
  for (auto& amplitude : scaledReference) {
    amplitude *= 2.0;
  }
  const double unitError = eval::accuracyError(numeric, unitReference);
  const double scaledError = eval::accuracyError(numeric, scaledReference);
  EXPECT_NEAR(scaledError, unitError, 1e-12)
      << "a reference scaled off unit norm must be renormalized, not penalized";
  // Historic behavior is preserved bit for bit on unit references.
  double expected = 0.0;
  for (std::size_t i = 0; i < numeric.size(); ++i) {
    expected += std::norm(numeric[i] - unitReference[i]);
  }
  EXPECT_EQ(unitError, std::sqrt(expected));
}

TEST(ApproxAccuracy, ZeroNumericAgainstScaledReferenceIsMaximal) {
  const std::vector<std::complex<double>> zero(4, {0.0, 0.0});
  const std::vector<std::complex<double>> scaled = {{3.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}};
  EXPECT_NEAR(eval::accuracyError(zero, scaled), 1.0, 1e-12)
      << "the zero vector is maximally wrong regardless of the reference's length";
  EXPECT_EQ(eval::accuracyError(zero, zero), 0.0);
}

} // namespace
