/// Edge-case batch: boundary behaviors of the number layers and the package
/// that the broader property suites only hit probabilistically.
#include "algebraic/euclidean.hpp"
#include "core/export.hpp"
#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qadd {
namespace {

using alg::QOmega;
using alg::ZOmega;

TEST(EdgeCases, BigIntSelfOperations) {
  BigInt x{12345};
  x += x;
  EXPECT_EQ(x.toInt64(), 24690);
  x -= x;
  EXPECT_TRUE(x.isZero());
  BigInt y{7};
  y *= y;
  EXPECT_EQ(y.toInt64(), 49);
  BigInt z{100};
  z /= z;
  EXPECT_EQ(z.toInt64(), 1);
}

TEST(EdgeCases, BigIntShiftZeroAndIdentity) {
  EXPECT_EQ(BigInt{5}.shiftLeft(0), BigInt{5});
  EXPECT_EQ(BigInt{5}.shiftRight(0), BigInt{5});
  EXPECT_EQ(BigInt{5}.shiftRight(100), BigInt{0});
  EXPECT_EQ(BigInt{-5}.shiftRight(100), BigInt{0});
}

TEST(EdgeCases, BigIntDivRoundHalfwayAwayFromZero) {
  // Exactly +-0.5 rounds away from zero in both sign combinations.
  EXPECT_EQ(BigInt::divRound(BigInt{1}, BigInt{2}).toInt64(), 1);
  EXPECT_EQ(BigInt::divRound(BigInt{-1}, BigInt{2}).toInt64(), -1);
  EXPECT_EQ(BigInt::divRound(BigInt{1}, BigInt{-2}).toInt64(), -1);
  EXPECT_EQ(BigInt::divRound(BigInt{-1}, BigInt{-2}).toInt64(), 1);
}

TEST(EdgeCases, ZOmegaZeroNormAndEuclid) {
  BigInt u;
  BigInt v;
  ZOmega::zero().norm(u, v);
  EXPECT_TRUE(u.isZero());
  EXPECT_TRUE(v.isZero());
  // gcd with zero operands.
  EXPECT_EQ(alg::gcdZOmega(ZOmega::zero(), ZOmega::zero()), ZOmega::zero());
  EXPECT_EQ(alg::gcdZOmega(ZOmega::omega(), ZOmega::zero()), ZOmega::omega());
  EXPECT_EQ(alg::gcdZOmega(ZOmega::zero(), ZOmega{BigInt{5}}), ZOmega{BigInt{5}});
}

TEST(EdgeCases, QOmegaNegativeDenominatorNormalizes) {
  const QOmega x{ZOmega::one(), 0, BigInt{-3}};
  EXPECT_FALSE(x.den().isNegative());
  EXPECT_NEAR(x.toComplex().real(), -1.0 / 3.0, 1e-15);
  EXPECT_THROW((QOmega{ZOmega::one(), 0, BigInt{0}}), std::domain_error);
}

TEST(EdgeCases, QOmegaEvenDenominatorFoldsIntoExponent) {
  const QOmega x{ZOmega::one(), 0, BigInt{8}}; // 1/8 = 1/sqrt2^6
  EXPECT_TRUE(x.den().isOne());
  EXPECT_EQ(x.k(), 6);
  EXPECT_NEAR(x.toComplex().real(), 0.125, 1e-15);
}

TEST(EdgeCases, SingleQubitPackage) {
  dd::Package<dd::AlgebraicSystem> p(1);
  const auto state = p.makeZeroState();
  EXPECT_EQ(p.countNodes(state), 1U);
  const auto amplitudes = p.amplitudes(state);
  ASSERT_EQ(amplitudes.size(), 2U);
  EXPECT_EQ(amplitudes[0], std::complex<double>(1.0, 0.0));
  EXPECT_EQ(p.trace(p.makeIdentity()), p.system().intern(QOmega{2}));
}

TEST(EdgeCases, ZeroVectorPropagation) {
  dd::Package<dd::AlgebraicSystem> p(3);
  const auto zero = p.zeroVector();
  // All operations on the zero vector stay zero.
  const auto m = qc::algebraicMatrix(qc::GateKind::H);
  const typename dd::Package<dd::AlgebraicSystem>::GateMatrix h{
      p.system().intern(m[0]), p.system().intern(m[1]), p.system().intern(m[2]),
      p.system().intern(m[3])};
  const auto gate = p.makeGate(h, 1);
  EXPECT_EQ(p.multiply(gate, zero), zero);
  EXPECT_EQ(p.add(zero, zero), zero);
  EXPECT_TRUE(p.system().isZero(p.innerProduct(zero, p.makeZeroState())));
  EXPECT_EQ(p.countNodes(zero), 0U);
}

TEST(EdgeCases, AddIsIdentityOnZeroOperand) {
  dd::Package<dd::AlgebraicSystem> p(2);
  qc::Circuit c(2);
  c.h(0).t(1);
  const auto state = p.multiply(qc::buildUnitary(p, c), p.makeZeroState());
  EXPECT_EQ(p.add(state, p.zeroVector()), state);
  EXPECT_EQ(p.add(p.zeroVector(), state), state);
}

TEST(EdgeCases, EmptyCircuitSimulation) {
  qc::Circuit empty(4, "empty");
  qc::Simulator<dd::AlgebraicSystem> simulator(empty);
  simulator.run();
  EXPECT_EQ(simulator.state(), simulator.package().makeZeroState());
  EXPECT_EQ(simulator.gateIndex(), 0U);
}

TEST(EdgeCases, IdentityGateKeepsCanonicalState) {
  qc::Circuit c(2);
  c.gate(qc::GateKind::I, 0).gate(qc::GateKind::I, 1);
  qc::Simulator<dd::AlgebraicSystem> simulator(c);
  simulator.run();
  EXPECT_EQ(simulator.state(), simulator.package().makeZeroState());
}

TEST(EdgeCases, ControlledGateWithAllQubitsAsControls) {
  // (n-1)-controlled X on the last free line.
  dd::Package<dd::NumericSystem> p(4, {0.0, dd::NumericSystem::Normalization::LeftmostNonzero});
  qc::Circuit c(4);
  c.mcx({0, 1, 2}, 3);
  const auto u = qc::buildUnitary(p, c);
  const auto dense = dd::toDenseMatrix(p, u);
  // Only the last 2x2 block swaps.
  EXPECT_NEAR(std::abs(dense.at(14, 15) - 1.0), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(dense.at(15, 14) - 1.0), 0.0, 1e-14);
  for (std::size_t i = 0; i < 14; ++i) {
    EXPECT_NEAR(std::abs(dense.at(i, i) - 1.0), 0.0, 1e-14);
  }
  EXPECT_TRUE(dense.isUnitary());
}

TEST(EdgeCases, RepeatedNormalizeIsIdempotent) {
  dd::AlgebraicSystem system;
  std::array<dd::AlgebraicSystem::Weight, 4> weights{
      system.intern(QOmega{3} * QOmega::invSqrt2()), system.intern(QOmega::omega()),
      system.zero(), system.intern(QOmega{5})};
  auto once = weights;
  (void)system.normalize(once);
  auto twice = once;
  const auto secondFactor = system.normalize(twice);
  EXPECT_EQ(once, twice) << "normalizing a normalized node must be a no-op";
  EXPECT_TRUE(system.isOne(secondFactor));
}

} // namespace
} // namespace qadd
