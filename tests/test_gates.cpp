#include "qc/gates.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

namespace qadd::qc {
namespace {

using C = std::complex<double>;

void expectUnitary(const std::array<C, 4>& m) {
  // M M^dag = I for 2x2.
  const C a = m[0] * std::conj(m[0]) + m[1] * std::conj(m[1]);
  const C b = m[0] * std::conj(m[2]) + m[1] * std::conj(m[3]);
  const C d = m[2] * std::conj(m[2]) + m[3] * std::conj(m[3]);
  EXPECT_NEAR(std::abs(a - 1.0), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(b), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(d - 1.0), 0.0, 1e-12);
}

TEST(Gates, AllFixedGatesAreUnitary) {
  for (const GateKind kind : {GateKind::I, GateKind::X, GateKind::Y, GateKind::Z, GateKind::H,
                              GateKind::S, GateKind::Sdg, GateKind::T, GateKind::Tdg,
                              GateKind::V, GateKind::Vdg}) {
    expectUnitary(complexMatrix(kind));
  }
}

TEST(Gates, ParameterizedGatesAreUnitary) {
  for (const GateKind kind : {GateKind::Rx, GateKind::Ry, GateKind::Rz, GateKind::Phase}) {
    for (const double angle : {0.0, 0.1, 1.0, M_PI, -2.5}) {
      expectUnitary(complexMatrix(kind, angle));
    }
  }
}

TEST(Gates, CliffordTClassification) {
  EXPECT_TRUE(isCliffordT(GateKind::H));
  EXPECT_TRUE(isCliffordT(GateKind::T));
  EXPECT_TRUE(isCliffordT(GateKind::V));
  EXPECT_FALSE(isCliffordT(GateKind::Rz));
  EXPECT_FALSE(isCliffordT(GateKind::Phase));
  EXPECT_EQ(isParameterized(GateKind::Rz), !isCliffordT(GateKind::Rz));
}

TEST(Gates, AlgebraicMatricesMatchComplexOnes) {
  for (const GateKind kind : {GateKind::I, GateKind::X, GateKind::Y, GateKind::Z, GateKind::H,
                              GateKind::S, GateKind::Sdg, GateKind::T, GateKind::Tdg,
                              GateKind::V, GateKind::Vdg}) {
    const auto exact = algebraicMatrix(kind);
    const auto numeric = complexMatrix(kind);
    for (std::size_t i = 0; i < 4; ++i) {
      const C converted = exact[i].toComplex();
      EXPECT_NEAR(std::abs(converted - numeric[i]), 0.0, 1e-12)
          << gateName(kind) << " entry " << i;
    }
  }
}

TEST(Gates, AlgebraicMatrixRejectsRotations) {
  EXPECT_THROW(algebraicMatrix(GateKind::Rz), std::invalid_argument);
  EXPECT_THROW(algebraicMatrix(GateKind::Phase), std::invalid_argument);
}

TEST(Gates, AlgebraicEntriesAreDyadic) {
  // Exactly-representable gates have entries in D[omega] (Section IV-A).
  for (const GateKind kind : {GateKind::H, GateKind::T, GateKind::V, GateKind::Y}) {
    for (const auto& entry : algebraicMatrix(kind)) {
      EXPECT_TRUE(entry.isDyadic());
    }
  }
}

TEST(Gates, NamesRoundTrip) {
  for (const GateKind kind : {GateKind::I, GateKind::X, GateKind::Y, GateKind::Z, GateKind::H,
                              GateKind::S, GateKind::Sdg, GateKind::T, GateKind::Tdg,
                              GateKind::V, GateKind::Vdg, GateKind::Rx, GateKind::Ry,
                              GateKind::Rz, GateKind::Phase}) {
    EXPECT_EQ(gateKindFromName(gateName(kind)), kind);
  }
  EXPECT_THROW((void)gateKindFromName("bogus"), std::invalid_argument);
}

TEST(Gates, AdjointPairs) {
  EXPECT_EQ(adjointKind(GateKind::T), GateKind::Tdg);
  EXPECT_EQ(adjointKind(GateKind::Tdg), GateKind::T);
  EXPECT_EQ(adjointKind(GateKind::S), GateKind::Sdg);
  EXPECT_EQ(adjointKind(GateKind::V), GateKind::Vdg);
  EXPECT_EQ(adjointKind(GateKind::H), GateKind::H);
  EXPECT_EQ(adjointKind(GateKind::X), GateKind::X);
  // Numerically: U * adj(U) = I.
  for (const GateKind kind : {GateKind::T, GateKind::S, GateKind::V, GateKind::H}) {
    const auto u = complexMatrix(kind);
    const auto a = complexMatrix(adjointKind(kind));
    const C topLeft = u[0] * a[0] + u[1] * a[2];
    const C offDiag = u[0] * a[1] + u[1] * a[3];
    EXPECT_NEAR(std::abs(topLeft - 1.0), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(offDiag), 0.0, 1e-12);
  }
}

TEST(Gates, SpecificMatrixValues) {
  const auto t = complexMatrix(GateKind::T);
  EXPECT_NEAR(std::abs(t[3] - std::polar(1.0, M_PI / 4)), 0.0, 1e-15);
  const auto h = complexMatrix(GateKind::H);
  EXPECT_NEAR(h[0].real(), 1.0 / std::sqrt(2.0), 1e-15);
  EXPECT_NEAR(h[3].real(), -1.0 / std::sqrt(2.0), 1e-15);
  const auto rz = complexMatrix(GateKind::Rz, M_PI / 2);
  EXPECT_NEAR(std::abs(rz[0] - std::polar(1.0, -M_PI / 4)), 0.0, 1e-15);
}

} // namespace
} // namespace qadd::qc
