#include "numeric/complex_table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace qadd::num {
namespace {

TEST(ComplexTable, ZeroAndOneArePreinterned) {
  ComplexTable table(0.0);
  EXPECT_EQ(table.lookup(ComplexValue::zero()), table.zeroRef());
  EXPECT_EQ(table.lookup(ComplexValue::one()), table.oneRef());
  EXPECT_EQ(table.size(), 2U);
}

TEST(ComplexTable, ExactModeDistinguishesUlps) {
  ComplexTable table(0.0);
  const double x = 1.0 / std::sqrt(2.0);
  const double xUlp = std::nextafter(x, 1.0);
  const ComplexRef a = table.lookup({x, 0.0});
  const ComplexRef b = table.lookup({xUlp, 0.0});
  EXPECT_NE(a, b) << "epsilon = 0 must be bit-exact";
  EXPECT_EQ(table.lookup({x, 0.0}), a);
}

TEST(ComplexTable, ToleranceUnifiesNearbyValues) {
  ComplexTable table(1e-6);
  const ComplexRef a = table.lookup({0.5, 0.25});
  const ComplexRef b = table.lookup({0.5 + 4e-7, 0.25 - 4e-7});
  EXPECT_EQ(a, b);
  const ComplexRef c = table.lookup({0.5 + 5e-6, 0.25});
  EXPECT_NE(a, c);
}

TEST(ComplexTable, ValuesNearZeroSnapToZero) {
  // The mechanism behind the paper's epsilon = 1e-3 zero-vector collapse.
  ComplexTable table(1e-3);
  EXPECT_EQ(table.lookup({5e-4, -5e-4}), table.zeroRef());
  EXPECT_NE(table.lookup({5e-3, 0.0}), table.zeroRef());
}

TEST(ComplexTable, ValuesNearOneSnapToOne) {
  ComplexTable table(1e-10);
  EXPECT_EQ(table.lookup({1.0 + 1e-11, -1e-11}), table.oneRef());
}

TEST(ComplexTable, FirstInsertedWins) {
  ComplexTable table(1e-4);
  const ComplexRef a = table.lookup({0.70710, 0.0});
  const ComplexRef b = table.lookup({0.70715, 0.0});
  EXPECT_EQ(a, b);
  EXPECT_DOUBLE_EQ(table.value(b).re, 0.70710); // canonical entry is the first one
}

TEST(ComplexTable, NegativeCoordinatesAndCellBoundaries) {
  ComplexTable table(1e-2);
  // Values straddling a grid cell boundary must still unify.
  const ComplexRef a = table.lookup({-0.0100001, 0.0});
  const ComplexRef b = table.lookup({-0.0099999, 0.0});
  EXPECT_EQ(a, b);
}

TEST(ComplexTable, RejectsInvalidEpsilon) {
  EXPECT_THROW(ComplexTable(-1.0), std::invalid_argument);
  EXPECT_THROW(ComplexTable(std::nan("")), std::invalid_argument);
}

TEST(ComplexTable, SizeCountsDistinctValues) {
  ComplexTable table(0.0);
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  for (int i = 0; i < 100; ++i) {
    (void)table.lookup({d(rng), d(rng)});
  }
  EXPECT_EQ(table.size(), 102U); // 100 random + 0 + 1
  // Re-interning the same values does not grow the table.
  std::mt19937_64 rng2(3);
  for (int i = 0; i < 100; ++i) {
    (void)table.lookup({d(rng2), d(rng2)});
  }
  EXPECT_EQ(table.size(), 102U);
}

TEST(ComplexValue, Arithmetic) {
  const ComplexValue a{1.0, 2.0};
  const ComplexValue b{3.0, -1.0};
  EXPECT_EQ((a + b), (ComplexValue{4.0, 1.0}));
  EXPECT_EQ((a - b), (ComplexValue{-2.0, 3.0}));
  EXPECT_EQ((a * b), (ComplexValue{5.0, 5.0}));
  const ComplexValue q = a / b;
  EXPECT_NEAR(q.re, 0.1, 1e-12);
  EXPECT_NEAR(q.im, 0.7, 1e-12);
  EXPECT_EQ(a.conj(), (ComplexValue{1.0, -2.0}));
  EXPECT_DOUBLE_EQ(a.squaredMagnitude(), 5.0);
}

TEST(ComplexValue, ApproxEqualPerComponent) {
  EXPECT_TRUE(ComplexValue::approxEqual({1.0, 1.0}, {1.0 + 1e-9, 1.0 - 1e-9}, 1e-8));
  EXPECT_FALSE(ComplexValue::approxEqual({1.0, 1.0}, {1.0 + 2e-8, 1.0}, 1e-8));
  EXPECT_TRUE(ComplexValue::approxEqual({1.0, 1.0}, {1.0, 1.0}, 0.0));
}

/// Parameterized sweep over epsilons: interning is idempotent and value()
/// returns something within epsilon of the query.
class ComplexTableEpsilons : public ::testing::TestWithParam<double> {};

TEST_P(ComplexTableEpsilons, LookupIsIdempotentAndClose) {
  const double epsilon = GetParam();
  ComplexTable table(epsilon);
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  for (int i = 0; i < 500; ++i) {
    const ComplexValue v{d(rng), d(rng)};
    const ComplexRef ref = table.lookup(v);
    EXPECT_EQ(table.lookup(table.value(ref)), ref);
    EXPECT_LE(std::abs(table.value(ref).re - v.re), epsilon);
    EXPECT_LE(std::abs(table.value(ref).im - v.im), epsilon);
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, ComplexTableEpsilons,
                         ::testing::Values(0.0, 1e-20, 1e-15, 1e-10, 1e-5, 1e-3));

} // namespace
} // namespace qadd::num
