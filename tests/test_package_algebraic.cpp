#include "core/algebraic_system.hpp"
#include "core/export.hpp"
#include "core/package.hpp"
#include "linalg/dense.hpp"
#include "qc/gates.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace qadd::dd {
namespace {

using Pkg = Package<AlgebraicSystem>;
using alg::QOmega;

Pkg::GateMatrix gateOf(Pkg& p, qc::GateKind kind) {
  const auto m = qc::algebraicMatrix(kind);
  return {p.system().intern(m[0]), p.system().intern(m[1]), p.system().intern(m[2]),
          p.system().intern(m[3])};
}

TEST(AlgebraicPackage, HadamardSelfInverseExactly) {
  // H * H == I as an *identity of diagrams* — the O(1) equivalence check the
  // paper highlights (Section V-B).
  Pkg p(3);
  const auto h = p.makeGate(gateOf(p, qc::GateKind::H), 1);
  const auto hh = p.multiply(h, h);
  EXPECT_EQ(hh, p.makeIdentity());
}

TEST(AlgebraicPackage, TEighthPowerIsIdentity) {
  Pkg p(2);
  const auto t = p.makeGate(gateOf(p, qc::GateKind::T), 0);
  auto acc = p.makeIdentity();
  for (int i = 0; i < 8; ++i) {
    acc = p.multiply(t, acc);
  }
  EXPECT_EQ(acc, p.makeIdentity());
  // S = T^2, Z = T^4 — also exact diagram identities.
  const auto s = p.makeGate(gateOf(p, qc::GateKind::S), 0);
  const auto z = p.makeGate(gateOf(p, qc::GateKind::Z), 0);
  EXPECT_EQ(p.multiply(t, t), s);
  EXPECT_EQ(p.multiply(s, s), z);
}

TEST(AlgebraicPackage, VSquaredIsX) {
  Pkg p(1);
  const auto v = p.makeGate(gateOf(p, qc::GateKind::V), 0);
  const auto x = p.makeGate(gateOf(p, qc::GateKind::X), 0);
  EXPECT_EQ(p.multiply(v, v), x);
}

TEST(AlgebraicPackage, PaperFig1QmddShape) {
  // U = H (x) I_2: classically one q0 node plus one shared q1 identity
  // node; with skip-level edges the q1 identity is implicit, leaving just
  // the H node.  Root weight stays 1/sqrt2.
  Pkg p(2);
  const auto u = p.makeGate(gateOf(p, qc::GateKind::H), 0);
  EXPECT_EQ(p.countNodes(u), 1U);
  EXPECT_EQ(p.system().value(u.w), QOmega::invSqrt2());
}

TEST(AlgebraicPackage, RedundancyDetectionIsPerfect) {
  // Repeated H on the same qubit must cycle through exactly two distinct
  // diagrams (H and I) without any growth — impossible numerically without
  // a tolerance, automatic algebraically.
  Pkg p(5);
  auto acc = p.makeIdentity();
  const auto h = p.makeGate(gateOf(p, qc::GateKind::H), 2);
  std::size_t sizeAfterOdd = 0;
  for (int i = 1; i <= 40; ++i) {
    acc = p.multiply(h, acc);
    if (i == 1) {
      sizeAfterOdd = p.countNodes(acc);
    } else if (i % 2 == 1) {
      EXPECT_EQ(p.countNodes(acc), sizeAfterOdd);
    } else {
      EXPECT_EQ(acc, p.makeIdentity());
    }
  }
}

TEST(AlgebraicPackage, AmplitudesAreExactlyConverted) {
  Pkg p(2);
  auto state = p.makeZeroState();
  const auto h0 = p.makeGate(gateOf(p, qc::GateKind::H), 0);
  const std::pair<Qubit, Pkg::Control> controls[] = {{0, Pkg::Control::Positive}};
  const auto cnot = p.makeGate(gateOf(p, qc::GateKind::X), 1, controls);
  state = p.multiply(cnot, p.multiply(h0, state));
  const auto amplitudes = p.amplitudes(state);
  const double s = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(amplitudes[0].real(), s, 1e-15);
  EXPECT_NEAR(amplitudes[3].real(), s, 1e-15);
  EXPECT_EQ(amplitudes[1], std::complex<double>(0.0, 0.0));
  EXPECT_EQ(amplitudes[2], std::complex<double>(0.0, 0.0));
}

TEST(AlgebraicPackage, MatchesDenseOnRandomCliffordTCircuits) {
  std::mt19937_64 rng(7);
  const qc::GateKind kinds[] = {qc::GateKind::H,   qc::GateKind::X, qc::GateKind::T,
                                qc::GateKind::Tdg, qc::GateKind::S, qc::GateKind::V,
                                qc::GateKind::Y,   qc::GateKind::Z};
  for (int trial = 0; trial < 10; ++trial) {
    Pkg p(3);
    auto state = p.makeZeroState();
    la::Vector dense = la::Vector::basisState(8, 0);
    for (int step = 0; step < 15; ++step) {
      const auto kind = kinds[rng() % std::size(kinds)];
      const auto target = static_cast<Qubit>(rng() % 3);
      const auto gate = p.makeGate(gateOf(p, kind), target);
      state = p.multiply(gate, state);
      dense = toDenseMatrix(p, gate) * dense;
    }
    const auto amplitudes = p.amplitudes(state);
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_NEAR(std::abs(amplitudes[i] - dense[i]), 0.0, 1e-9);
    }
  }
}

TEST(AlgebraicPackage, StateNormIsExactlyOne) {
  // <psi|psi> == 1 exactly after any Clifford+T evolution.
  std::mt19937_64 rng(9);
  Pkg p(4);
  auto state = p.makeZeroState();
  const qc::GateKind kinds[] = {qc::GateKind::H, qc::GateKind::T, qc::GateKind::V,
                                qc::GateKind::X};
  for (int step = 0; step < 30; ++step) {
    const auto gate = p.makeGate(gateOf(p, kinds[rng() % 4]), static_cast<Qubit>(rng() % 4));
    state = p.multiply(gate, state);
  }
  const auto norm = p.innerProduct(state, state);
  EXPECT_TRUE(p.system().isOne(norm)) << "norm must be the exact value 1";
}

TEST(AlgebraicPackage, LongProductsStayCanonical) {
  // (HT)^k products generate dense angle structure; equal prefixes must be
  // recognized as equal diagrams.
  Pkg p(1);
  const auto h = p.makeGate(gateOf(p, qc::GateKind::H), 0);
  const auto t = p.makeGate(gateOf(p, qc::GateKind::T), 0);
  auto a = p.makeIdentity();
  for (int i = 0; i < 12; ++i) {
    a = p.multiply(t, p.multiply(h, a));
  }
  auto b = p.makeIdentity();
  for (int i = 0; i < 12; ++i) {
    b = p.multiply(t, p.multiply(h, b));
  }
  EXPECT_EQ(a, b);
  // And the matrix is still exactly unitary: U U^dag == I.
  const auto product = p.multiply(a, p.conjugateTranspose(a));
  EXPECT_EQ(product, p.makeIdentity());
}

TEST(AlgebraicPackage, GarbageCollectReclaimsEverythingUnreferenced) {
  Pkg p(3);
  {
    const auto h = p.makeGate(gateOf(p, qc::GateKind::H), 0);
    const auto t = p.makeGate(gateOf(p, qc::GateKind::T), 1);
    (void)p.multiply(h, t);
  }
  EXPECT_GT(p.allocatedNodes(), 0U);
  p.garbageCollect();
  EXPECT_EQ(p.allocatedNodes(), 0U);
}

TEST(AlgebraicPackage, MaxBitsGrowsUnderHtProducts) {
  // The paper's GSE observation: coefficient bit widths grow along generic
  // Clifford+T products.
  Pkg p(1);
  const auto h = p.makeGate(gateOf(p, qc::GateKind::H), 0);
  const auto t = p.makeGate(gateOf(p, qc::GateKind::T), 0);
  auto state = p.makeZeroState();
  const std::size_t before = p.system().maxBits();
  for (int i = 0; i < 64; ++i) {
    state = p.multiply(t, state);
    state = p.multiply(h, state);
  }
  EXPECT_GT(p.system().maxBits(), before + 10)
      << "generic HT products must grow the coefficient bit width";
}

TEST(AlgebraicPackage, TrivialWeightStatistics) {
  Pkg p(4);
  auto state = p.makeZeroState();
  const auto h = p.makeGate(gateOf(p, qc::GateKind::H), 0);
  state = p.multiply(h, state);
  // The Q[omega]-inverse normalization keeps at least half the produced
  // weights trivial (paper, Section V-B).
  EXPECT_GE(p.system().trivialWeightFraction(), 0.5);
}

} // namespace
} // namespace qadd::dd
