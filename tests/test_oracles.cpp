#include "algorithms/oracles.hpp"

#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qadd::algos {
namespace {

using dd::AlgebraicSystem;

/// Index of |bits...0> with the ancilla (bottom qubit) zero; qubit q of
/// `value` (bit q) sits at index bit (n - q), counting the ancilla.
std::size_t basisIndex(qc::Qubit n, std::uint64_t value) {
  std::size_t index = 0;
  for (qc::Qubit q = 0; q < n; ++q) {
    if ((value >> q) & 1ULL) {
      index |= 1ULL << (n - q); // n+1 lines total; bottom line = ancilla
    }
  }
  return index;
}

TEST(BernsteinVazirani, RecoversTheSecretExactly) {
  for (const std::uint64_t secret : {0b1011ULL, 0b0001ULL, 0b1111ULL, 0b0000ULL}) {
    qc::Simulator<AlgebraicSystem> simulator(bernsteinVazirani(4, secret));
    simulator.run();
    const auto amplitudes = simulator.package().amplitudes(simulator.state());
    const std::size_t expected = basisIndex(4, secret);
    for (std::size_t i = 0; i < amplitudes.size(); ++i) {
      const double magnitude = std::abs(amplitudes[i]);
      if (i == expected) {
        EXPECT_NEAR(magnitude, 1.0, 1e-12) << "secret " << secret;
      } else {
        EXPECT_NEAR(magnitude, 0.0, 1e-12) << "secret " << secret << " index " << i;
      }
    }
  }
}

TEST(BernsteinVazirani, IsExactlyRepresentable) {
  EXPECT_TRUE(bernsteinVazirani(6, 0b101010).isCliffordTOnly());
}

TEST(BernsteinVazirani, DdStaysTiny) {
  qc::Simulator<AlgebraicSystem> simulator(bernsteinVazirani(10, 0b1100110011));
  simulator.run();
  // Final state is a basis state: exactly n+1 nodes.
  EXPECT_EQ(simulator.stateNodes(), 11U);
}

TEST(DeutschJozsa, ConstantOracleReturnsAllZero) {
  qc::Simulator<AlgebraicSystem> simulator(deutschJozsa(5, 0));
  simulator.run();
  const auto amplitudes = simulator.package().amplitudes(simulator.state());
  EXPECT_NEAR(std::abs(amplitudes[0]), 1.0, 1e-12);
}

TEST(DeutschJozsa, BalancedOracleAvoidsAllZero) {
  for (const std::uint64_t mask : {0b00101ULL, 0b11111ULL, 0b10000ULL}) {
    qc::Simulator<AlgebraicSystem> simulator(deutschJozsa(5, mask));
    simulator.run();
    const auto amplitudes = simulator.package().amplitudes(simulator.state());
    EXPECT_NEAR(std::abs(amplitudes[0]), 0.0, 1e-12) << "mask " << mask;
  }
}

TEST(Oracles, RejectOutOfRangeMask) {
  EXPECT_THROW((void)bernsteinVazirani(3, 0b1000), std::invalid_argument);
  EXPECT_THROW((void)deutschJozsa(0, 0), std::invalid_argument);
}

} // namespace
} // namespace qadd::algos
