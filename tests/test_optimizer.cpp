#include "qc/optimizer.hpp"

#include "qc/equivalence.hpp"
#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <random>

namespace qadd::qc {
namespace {

using dd::AlgebraicSystem;
using dd::NumericSystem;

TEST(Optimizer, CancelsAdjacentInversePairs) {
  Circuit c(2);
  c.h(0).h(0).x(1).x(1).cx(0, 1).cx(0, 1).v(0).vdg(0);
  OptimizerReport report;
  const Circuit optimized = optimize(c, &report);
  EXPECT_EQ(optimized.size(), 0U);
  EXPECT_EQ(report.removedGates, 8U);
}

TEST(Optimizer, FoldsDiagonalRuns) {
  Circuit c(1);
  c.t(0).t(0); // -> S
  const Circuit optimized = optimize(c);
  ASSERT_EQ(optimized.size(), 1U);
  EXPECT_EQ(optimized.operations()[0].kind, GateKind::S);

  Circuit full(1);
  for (int i = 0; i < 8; ++i) {
    full.t(0);
  }
  EXPECT_EQ(optimize(full).size(), 0U);

  Circuit mixed(1);
  mixed.t(0).s(0).z(0).tdg(0); // 1+2+4+7 = 14 = 6 mod 8 -> Sdg
  const Circuit foldedMixed = optimize(mixed);
  ASSERT_EQ(foldedMixed.size(), 1U);
  EXPECT_EQ(foldedMixed.operations()[0].kind, GateKind::Sdg);
}

TEST(Optimizer, LooksThroughCommutingGates) {
  Circuit c(3);
  c.h(0);
  c.x(1).t(2).cx(1, 2); // all disjoint from line 0
  c.h(0);               // cancels with the first H across the middle block
  const Circuit optimized = optimize(c);
  EXPECT_EQ(optimized.size(), 3U);
  for (const Operation& operation : optimized.operations()) {
    EXPECT_NE(operation.target, 0U);
  }
}

TEST(Optimizer, DoesNotCancelAcrossBlockers) {
  Circuit c(2);
  c.h(0).cx(0, 1).h(0); // CX touches line 0: H's must stay
  EXPECT_EQ(optimize(c).size(), 3U);
}

TEST(Optimizer, MergesRotations) {
  Circuit c(1);
  c.rz(0.3, 0).rz(0.4, 0);
  OptimizerReport report;
  const Circuit optimized = optimize(c, &report);
  ASSERT_EQ(optimized.size(), 1U);
  EXPECT_NEAR(optimized.operations()[0].angle, 0.7, 1e-15);
  EXPECT_EQ(report.mergedRotations, 1U);

  Circuit cancels(1);
  cancels.phase(0.9, 0).phase(-0.9, 0);
  EXPECT_EQ(optimize(cancels).size(), 0U);
}

TEST(Optimizer, RespectsControlledRotationPeriod) {
  // c-Rz(2 pi) is NOT the identity (it is a controlled -I): must survive.
  Circuit c(2);
  c.controlled(GateKind::Rz, 1, {{0, true}}, M_PI);
  c.controlled(GateKind::Rz, 1, {{0, true}}, M_PI);
  const Circuit optimized = optimize(c);
  ASSERT_EQ(optimized.size(), 1U);
  EXPECT_NEAR(optimized.operations()[0].angle, 2.0 * M_PI, 1e-12);
  // Verify semantically against the unoptimized circuit.
  dd::Package<NumericSystem> p(2, {1e-12, NumericSystem::Normalization::LeftmostNonzero});
  EXPECT_EQ(buildUnitary(p, c), buildUnitary(p, optimized));
}

TEST(Optimizer, ControlPolaritiesMatter) {
  Circuit c(2);
  c.controlled(GateKind::X, 1, {{0, true}});
  c.controlled(GateKind::X, 1, {{0, false}});
  // Different polarities: no cancellation (the pair equals X on the target).
  EXPECT_EQ(optimize(c).size(), 2U);
}

/// Property sweep: optimization provably preserves the unitary (exact
/// algebraic equivalence check) while never growing the circuit.
class OptimizerSemantics : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerSemantics, ExactlyPreservesTheUnitary) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  const auto nqubits = static_cast<Qubit>(2 + rng() % 3);
  Circuit circuit(nqubits, "fuzz");
  const GateKind kinds[] = {GateKind::H, GateKind::X,   GateKind::T, GateKind::Tdg,
                            GateKind::S, GateKind::Sdg, GateKind::Z, GateKind::V,
                            GateKind::Vdg};
  for (int i = 0; i < 40; ++i) {
    const auto target = static_cast<Qubit>(rng() % nqubits);
    if (rng() % 3 == 0) {
      auto control = static_cast<Qubit>(rng() % nqubits);
      if (control == target) {
        control = (control + 1) % nqubits;
      }
      circuit.controlled(kinds[rng() % std::size(kinds)], target, {{control, rng() % 2 == 0}});
    } else {
      circuit.gate(kinds[rng() % std::size(kinds)], target);
    }
  }
  const Circuit optimized = optimize(circuit);
  EXPECT_LE(optimized.size(), circuit.size());
  const auto verdict =
      checkEquivalence<AlgebraicSystem>(circuit, optimized, EquivalenceStrategy::Construct);
  EXPECT_TRUE(verdict.equivalent) << "optimization must preserve the unitary exactly";
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerSemantics, ::testing::Range(0, 16));

} // namespace
} // namespace qadd::qc
