#include "synth/su2.hpp"

#include "qc/gates.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace qadd::synth {
namespace {

using C = std::complex<double>;

std::array<C, 4> matmul(const std::array<C, 4>& a, const std::array<C, 4>& b) {
  return {a[0] * b[0] + a[1] * b[2], a[0] * b[1] + a[1] * b[3], a[2] * b[0] + a[3] * b[2],
          a[2] * b[1] + a[3] * b[3]};
}

SU2 randomSU2(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  double w;
  double x;
  double y;
  double z;
  do {
    w = d(rng);
    x = d(rng);
    y = d(rng);
    z = d(rng);
  } while (w * w + x * x + y * y + z * z < 1e-6);
  return {w, x, y, z};
}

// The projective metric amplifies double rounding as sqrt(eps) ~ 1e-8.
constexpr double kTol = 5e-7;

TEST(SU2, IdentityProperties) {
  const SU2 identity;
  EXPECT_DOUBLE_EQ(identity.w(), 1.0);
  EXPECT_DOUBLE_EQ(SU2::distance(identity, identity), 0.0);
  const auto m = identity.toMatrix();
  EXPECT_EQ(m[0], C(1.0, 0.0));
  EXPECT_EQ(m[1], C(0.0, 0.0));
}

TEST(SU2, ProductMatchesMatrixProduct) {
  std::mt19937_64 rng(3);
  for (int i = 0; i < 300; ++i) {
    const SU2 a = randomSU2(rng);
    const SU2 b = randomSU2(rng);
    const SU2 viaQuaternion = a * b;
    const SU2 viaMatrix = SU2::fromMatrix(matmul(a.toMatrix(), b.toMatrix()));
    EXPECT_LE(SU2::distance(viaQuaternion, viaMatrix), kTol);
  }
}

TEST(SU2, MatrixRoundTrip) {
  std::mt19937_64 rng(5);
  for (int i = 0; i < 200; ++i) {
    const SU2 a = randomSU2(rng);
    EXPECT_LE(SU2::distance(SU2::fromMatrix(a.toMatrix()), a), kTol);
  }
}

TEST(SU2, FromMatrixDropsGlobalPhase) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 100; ++i) {
    const SU2 a = randomSU2(rng);
    auto m = a.toMatrix();
    const C phase = std::polar(1.0, 2.1);
    for (auto& entry : m) {
      entry *= phase;
    }
    EXPECT_LE(SU2::distance(SU2::fromMatrix(m), a), kTol);
  }
}

TEST(SU2, AxisAngleRoundTrip) {
  std::mt19937_64 rng(9);
  for (int i = 0; i < 200; ++i) {
    const SU2 a = randomSU2(rng);
    double nx;
    double ny;
    double nz;
    double angle;
    a.toAxisAngle(nx, ny, nz, angle);
    EXPECT_NEAR(nx * nx + ny * ny + nz * nz, 1.0, 1e-9);
    EXPECT_LE(SU2::distance(SU2::fromAxisAngle(nx, ny, nz, angle), a), kTol);
  }
}

TEST(SU2, AdjointInverts) {
  std::mt19937_64 rng(11);
  for (int i = 0; i < 100; ++i) {
    const SU2 a = randomSU2(rng);
    EXPECT_LE(SU2::distance(a * a.adjoint(), SU2{}), kTol);
    EXPECT_LE(SU2::distance(a.adjoint() * a, SU2{}), kTol);
  }
}

TEST(SU2, DistanceIsAMetricOnExamples) {
  const SU2 rx = SU2::fromAxisAngle(1, 0, 0, 0.5);
  const SU2 ry = SU2::fromAxisAngle(0, 1, 0, 0.5);
  const SU2 rz = SU2::fromAxisAngle(0, 0, 1, 0.5);
  EXPECT_GT(SU2::distance(rx, ry), 0.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(SU2::distance(rx, ry), SU2::distance(ry, rx));
  // Triangle inequality on a sample.
  EXPECT_LE(SU2::distance(rx, rz), SU2::distance(rx, ry) + SU2::distance(ry, rz) + 1e-12);
  // Projectivity: U and -U are the same point.
  EXPECT_LE(SU2::distance(SU2::fromAxisAngle(0, 0, 1, 0.5),
                          SU2::fromAxisAngle(0, 0, 1, 0.5 - 4 * M_PI)),
            kTol);
}

TEST(SU2, KnownGateMatrices) {
  const SU2 h = SU2::fromMatrix(qc::complexMatrix(qc::GateKind::H));
  // H is a pi rotation about (x+z)/sqrt2.
  const SU2 expected = SU2::fromAxisAngle(1 / std::sqrt(2.0), 0, 1 / std::sqrt(2.0), M_PI);
  EXPECT_LE(SU2::distance(h, expected), kTol);
  const SU2 t = SU2::fromMatrix(qc::complexMatrix(qc::GateKind::T));
  const SU2 rzQuarter = SU2::fromAxisAngle(0, 0, 1, M_PI / 4);
  EXPECT_LE(SU2::distance(t, rzQuarter), kTol);
}

} // namespace
} // namespace qadd::synth
