#include "qc/equivalence.hpp"

#include "algorithms/common.hpp"
#include "algorithms/grover.hpp"

#include <gtest/gtest.h>

namespace qadd::qc {
namespace {

using dd::AlgebraicSystem;
using dd::NumericSystem;

const EquivalenceStrategy kStrategies[] = {EquivalenceStrategy::Construct,
                                           EquivalenceStrategy::Alternate};

TEST(Equivalence, IdenticalCircuits) {
  Circuit c(3);
  c.h(0).t(1).cx(0, 2).v(1).cz(1, 2).tdg(0);
  for (const auto strategy : kStrategies) {
    const auto result = checkEquivalence<AlgebraicSystem>(c, c, strategy);
    EXPECT_TRUE(result.equivalent) << result.strategy;
    EXPECT_TRUE(result.equivalentUpToPhase);
  }
}

TEST(Equivalence, KnownIdentities) {
  // HXH == Z.
  Circuit hxh(2);
  hxh.h(0).x(0).h(0);
  Circuit z(2);
  z.z(0);
  // T^8 == I.
  Circuit t8(2);
  for (int i = 0; i < 8; ++i) {
    t8.t(1);
  }
  Circuit empty(2);
  for (const auto strategy : kStrategies) {
    EXPECT_TRUE(checkEquivalence<AlgebraicSystem>(hxh, z, strategy).equivalent);
    EXPECT_TRUE(checkEquivalence<AlgebraicSystem>(t8, empty, strategy).equivalent);
  }
}

TEST(Equivalence, DetectsNonEquivalence) {
  Circuit a(2);
  a.h(0).cx(0, 1);
  Circuit b(2);
  b.h(0).cx(0, 1).t(1); // extra T
  for (const auto strategy : kStrategies) {
    const auto result = checkEquivalence<AlgebraicSystem>(a, b, strategy);
    EXPECT_FALSE(result.equivalent) << result.strategy;
    EXPECT_FALSE(result.equivalentUpToPhase);
  }
}

TEST(Equivalence, GlobalPhaseIsReportedSeparately) {
  // X Y = i Z: the circuits differ exactly by the global phase i.
  Circuit xy(1);
  xy.y(0).x(0); // applies Y first, then X -> matrix X*Y
  Circuit z(1);
  z.z(0);
  for (const auto strategy : kStrategies) {
    const auto result = checkEquivalence<AlgebraicSystem>(xy, z, strategy);
    EXPECT_FALSE(result.equivalent) << result.strategy;
    EXPECT_TRUE(result.equivalentUpToPhase) << result.strategy;
  }
}

TEST(Equivalence, SwapRealizationsAgree) {
  Circuit direct(2);
  direct.swap(0, 1);
  Circuit viaCz(2);
  viaCz.cx(0, 1).h(0).cz(1, 0).h(0).cx(0, 1);
  for (const auto strategy : kStrategies) {
    EXPECT_TRUE(checkEquivalence<AlgebraicSystem>(direct, viaCz, strategy).equivalent);
  }
}

TEST(Equivalence, AlternateStaysNearIdentityOnEqualCircuits) {
  // For equal circuits the alternating accumulator returns to the identity
  // at every synchronized point, so its peak allocation stays well below the
  // construct strategy's (which must materialize the full Grover unitary).
  const Circuit grover = algos::grover({6, 13, 2});
  const auto alternate = checkEquivalence<AlgebraicSystem>(
      grover, grover, EquivalenceStrategy::Alternate);
  const auto construct = checkEquivalence<AlgebraicSystem>(
      grover, grover, EquivalenceStrategy::Construct);
  EXPECT_TRUE(alternate.equivalent);
  EXPECT_TRUE(construct.equivalent);
  EXPECT_LT(alternate.peakNodes, construct.peakNodes);
}

TEST(Equivalence, NumericEpsilonZeroCanMissTrueEquivalences) {
  // The motivating failure of the numerical representation (Section V-B):
  // with eps = 0, rounding makes canonical forms of equal unitaries differ.
  Circuit direct(2);
  direct.swap(0, 1);
  Circuit viaCz(2);
  viaCz.cx(0, 1).h(0).cz(1, 0).h(0).cx(0, 1);
  const auto strict = checkEquivalence<NumericSystem>(
      direct, viaCz, EquivalenceStrategy::Construct,
      {0.0, NumericSystem::Normalization::LeftmostNonzero});
  EXPECT_FALSE(strict.equivalent) << "eps = 0 misses the equivalence (expected failure mode)";
  const auto tolerant = checkEquivalence<NumericSystem>(
      direct, viaCz, EquivalenceStrategy::Construct,
      {1e-10, NumericSystem::Normalization::LeftmostNonzero});
  EXPECT_TRUE(tolerant.equivalent);
}

TEST(Equivalence, MismatchedWidthsThrow) {
  Circuit a(2);
  Circuit b(3);
  EXPECT_THROW((void)checkEquivalence<AlgebraicSystem>(a, b), std::invalid_argument);
}

TEST(Equivalence, UnbalancedGateCountsInterleaveCorrectly) {
  // One long realization vs one short one: HH HH HH H == H.
  Circuit longer(1);
  for (int i = 0; i < 7; ++i) {
    longer.h(0);
  }
  Circuit shorter(1);
  shorter.h(0);
  for (const auto strategy : kStrategies) {
    EXPECT_TRUE(checkEquivalence<AlgebraicSystem>(longer, shorter, strategy).equivalent);
    EXPECT_TRUE(checkEquivalence<AlgebraicSystem>(shorter, longer, strategy).equivalent);
  }
}

} // namespace
} // namespace qadd::qc
