#include "synth/reversible.hpp"

#include "core/numeric_system.hpp"
#include "qc/simulator.hpp"

#include <gtest/gtest.h>

#include <random>

namespace qadd::synth {
namespace {

using dd::NumericSystem;

/// Classically simulate the circuit on a basis state (all gates must be X
/// with controls) and return the resulting basis index (qubit 0 = MSB).
std::uint64_t applyClassically(const qc::Circuit& circuit, std::uint64_t input) {
  const unsigned n = circuit.qubits();
  std::uint64_t state = input;
  const auto bitOf = [n](std::uint64_t value, qc::Qubit qubit) {
    return (value >> (n - 1 - qubit)) & 1ULL;
  };
  for (const qc::Operation& operation : circuit.operations()) {
    EXPECT_EQ(operation.kind, qc::GateKind::X);
    bool active = true;
    for (const qc::ControlSpec& control : operation.controls) {
      if ((bitOf(state, control.qubit) != 0) != control.positive) {
        active = false;
        break;
      }
    }
    if (active) {
      state ^= 1ULL << (n - 1 - operation.target);
    }
  }
  return state;
}

/// Register-level view: the transposition module addresses bits within
/// [offset, offset+width) with bit 0 of the value at the *lowest* qubit
/// index...  verify the convention via the DD simulator instead.
std::uint64_t registerValueToBasisIndex(std::uint64_t value, unsigned offset, unsigned width,
                                        unsigned totalQubits) {
  std::uint64_t index = 0;
  for (unsigned bit = 0; bit < width; ++bit) {
    if ((value >> bit) & 1ULL) {
      const unsigned qubit = offset + bit;
      index |= 1ULL << (totalQubits - 1 - qubit);
    }
  }
  return index;
}

TEST(Reversible, SingleBitTransposition) {
  qc::Circuit circuit(3);
  appendTransposition(circuit, 0, 3, {0b000, 0b001});
  EXPECT_EQ(circuit.size(), 1U); // hamming distance 1 -> a single MCX
  // Swaps exactly the two states.
  EXPECT_EQ(applyClassically(circuit, registerValueToBasisIndex(0b000, 0, 3, 3)),
            registerValueToBasisIndex(0b001, 0, 3, 3));
  EXPECT_EQ(applyClassically(circuit, registerValueToBasisIndex(0b001, 0, 3, 3)),
            registerValueToBasisIndex(0b000, 0, 3, 3));
  for (std::uint64_t other : {0b010, 0b011, 0b100, 0b111}) {
    const std::uint64_t index = registerValueToBasisIndex(other, 0, 3, 3);
    EXPECT_EQ(applyClassically(circuit, index), index);
  }
}

TEST(Reversible, MultiBitTranspositionTouchesOnlyThePair) {
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const unsigned width = 4 + static_cast<unsigned>(rng() % 3); // 4..6
    const std::uint64_t size = 1ULL << width;
    const std::uint64_t a = rng() % size;
    std::uint64_t b = rng() % size;
    if (a == b) {
      continue;
    }
    qc::Circuit circuit(width);
    appendTransposition(circuit, 0, width, {a, b});
    for (std::uint64_t value = 0; value < size; ++value) {
      const std::uint64_t expected = value == a ? b : (value == b ? a : value);
      EXPECT_EQ(applyClassically(circuit, registerValueToBasisIndex(value, 0, width, width)),
                registerValueToBasisIndex(expected, 0, width, width))
          << "a=" << a << " b=" << b << " value=" << value;
    }
  }
}

TEST(Reversible, RejectsDegenerateTransposition) {
  qc::Circuit circuit(3);
  EXPECT_THROW(appendTransposition(circuit, 0, 3, {5, 5}), std::invalid_argument);
}

TEST(Reversible, InvolutionAppliesAllPairs) {
  const std::vector<Transposition> pairs{{0, 3}, {1, 6}, {4, 5}};
  qc::Circuit circuit(3);
  appendInvolution(circuit, 0, 3, pairs);
  for (std::uint64_t value = 0; value < 8; ++value) {
    EXPECT_EQ(applyClassically(circuit, registerValueToBasisIndex(value, 0, 3, 3)),
              registerValueToBasisIndex(applyInvolution(pairs, value), 0, 3, 3));
  }
}

TEST(Reversible, ExtraControlsGateTheWholeInvolution) {
  // One control qubit on top; involution on the 3 register qubits below.
  const std::vector<Transposition> pairs{{2, 7}};
  qc::Circuit circuit(4);
  appendInvolution(circuit, 1, 3, pairs, {{0, true}});
  // Control = 0: nothing happens.
  const std::uint64_t idle = registerValueToBasisIndex(2, 1, 3, 4);
  EXPECT_EQ(applyClassically(circuit, idle), idle);
  // Control = 1 (basis MSB set): the pair swaps.
  const std::uint64_t controlBit = 1ULL << 3;
  EXPECT_EQ(applyClassically(circuit, controlBit | registerValueToBasisIndex(2, 1, 3, 4)),
            controlBit | registerValueToBasisIndex(7, 1, 3, 4));
}

TEST(Reversible, AgreesWithDdSimulation) {
  // The same circuit driven through the numeric QMDD simulator.
  const std::vector<Transposition> pairs{{1, 4}, {2, 7}};
  qc::Circuit circuit(3);
  appendInvolution(circuit, 0, 3, pairs);
  for (std::uint64_t value = 0; value < 8; ++value) {
    qc::Circuit withPreparation(3);
    for (unsigned bit = 0; bit < 3; ++bit) {
      if ((value >> bit) & 1ULL) {
        withPreparation.x(bit);
      }
    }
    withPreparation.append(circuit);
    qc::Simulator<NumericSystem> simulator(withPreparation);
    simulator.run();
    const auto amplitudes = simulator.package().amplitudes(simulator.state());
    // The preparation sets qubit `bit` for bit `bit` of `value`, which is
    // exactly the register convention of appendInvolution (bit b at qubit
    // offset + b), so the register value IS `value`.
    const std::uint64_t expectedValue = applyInvolution(pairs, value);
    // Locate the single unit amplitude.
    std::size_t hot = 0;
    for (std::size_t i = 0; i < amplitudes.size(); ++i) {
      if (std::abs(amplitudes[i]) > 0.5) {
        hot = i;
      }
    }
    EXPECT_EQ(hot, registerValueToBasisIndex(expectedValue, 0, 3, 3)) << "value=" << value;
  }
}

TEST(Reversible, ApplyInvolutionHelper) {
  const std::vector<Transposition> pairs{{10, 20}, {30, 40}};
  EXPECT_EQ(applyInvolution(pairs, 10), 20U);
  EXPECT_EQ(applyInvolution(pairs, 20), 10U);
  EXPECT_EQ(applyInvolution(pairs, 40), 30U);
  EXPECT_EQ(applyInvolution(pairs, 99), 99U);
}

} // namespace
} // namespace qadd::synth
