#include "algebraic/zomega.hpp"

#include <gtest/gtest.h>

#include <complex>
#include <random>

namespace qadd::alg {
namespace {

ZOmega randomZOmega(std::mt19937_64& rng, int bound = 20) {
  std::uniform_int_distribution<std::int64_t> d(-bound, bound);
  return {BigInt{d(rng)}, BigInt{d(rng)}, BigInt{d(rng)}, BigInt{d(rng)}};
}

constexpr double kTol = 1e-9;

void expectComplexNear(std::complex<double> actual, std::complex<double> expected) {
  EXPECT_NEAR(actual.real(), expected.real(), kTol);
  EXPECT_NEAR(actual.imag(), expected.imag(), kTol);
}

TEST(ZOmega, Constants) {
  EXPECT_TRUE(ZOmega::zero().isZero());
  EXPECT_TRUE(ZOmega::one().isOne());
  expectComplexNear(ZOmega::omega().toComplex(), std::polar(1.0, M_PI / 4));
  expectComplexNear(ZOmega::imaginaryUnit().toComplex(), {0.0, 1.0});
  expectComplexNear(ZOmega::sqrt2().toComplex(), {std::sqrt(2.0), 0.0});
}

TEST(ZOmega, OmegaIsPrimitiveEighthRoot) {
  ZOmega power = ZOmega::one();
  for (int i = 1; i <= 8; ++i) {
    power = power * ZOmega::omega();
    if (i < 8) {
      EXPECT_FALSE(power.isOne()) << "omega^" << i << " must not be 1";
    }
  }
  EXPECT_TRUE(power.isOne()); // omega^8 == 1
  // omega^4 == -1.
  ZOmega fourth = ZOmega::one();
  for (int i = 0; i < 4; ++i) {
    fourth = fourth * ZOmega::omega();
  }
  EXPECT_EQ(fourth, -ZOmega::one());
}

TEST(ZOmega, MultiplicationMatchesComplexArithmetic) {
  std::mt19937_64 rng(3);
  for (int i = 0; i < 500; ++i) {
    const ZOmega x = randomZOmega(rng);
    const ZOmega y = randomZOmega(rng);
    expectComplexNear((x * y).toComplex(), x.toComplex() * y.toComplex());
    expectComplexNear((x + y).toComplex(), x.toComplex() + y.toComplex());
    expectComplexNear((x - y).toComplex(), x.toComplex() - y.toComplex());
  }
}

TEST(ZOmega, RingAxioms) {
  std::mt19937_64 rng(5);
  for (int i = 0; i < 300; ++i) {
    const ZOmega x = randomZOmega(rng);
    const ZOmega y = randomZOmega(rng);
    const ZOmega z = randomZOmega(rng);
    EXPECT_EQ(x * (y * z), (x * y) * z);
    EXPECT_EQ(x * (y + z), x * y + x * z);
    EXPECT_EQ(x * y, y * x);
    EXPECT_EQ(x + (-x), ZOmega::zero());
    EXPECT_EQ(x * ZOmega::one(), x);
    EXPECT_EQ(x * ZOmega::zero(), ZOmega::zero());
  }
}

TEST(ZOmega, ConjugationIsInvolutiveAntiAutomorphism) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 200; ++i) {
    const ZOmega x = randomZOmega(rng);
    const ZOmega y = randomZOmega(rng);
    EXPECT_EQ(x.conj().conj(), x);
    EXPECT_EQ((x * y).conj(), x.conj() * y.conj());
    EXPECT_EQ((x + y).conj(), x.conj() + y.conj());
    expectComplexNear(x.conj().toComplex(), std::conj(x.toComplex()));
  }
}

TEST(ZOmega, Sqrt2ConjIsRingAutomorphismNegatingSqrt2) {
  EXPECT_EQ(ZOmega::sqrt2().sqrt2Conj(), -ZOmega::sqrt2());
  std::mt19937_64 rng(9);
  for (int i = 0; i < 200; ++i) {
    const ZOmega x = randomZOmega(rng);
    const ZOmega y = randomZOmega(rng);
    EXPECT_EQ((x * y).sqrt2Conj(), x.sqrt2Conj() * y.sqrt2Conj());
    EXPECT_EQ((x + y).sqrt2Conj(), x.sqrt2Conj() + y.sqrt2Conj());
    EXPECT_EQ(x.sqrt2Conj().sqrt2Conj(), x);
  }
}

TEST(ZOmega, TimesOmegaMatchesMultiplication) {
  std::mt19937_64 rng(11);
  for (int i = 0; i < 100; ++i) {
    const ZOmega x = randomZOmega(rng);
    EXPECT_EQ(x.timesOmega(), x * ZOmega::omega());
    EXPECT_EQ(x.timesSqrt2(), x * ZOmega::sqrt2());
  }
}

TEST(ZOmega, Sqrt2DivisibilityCriterion) {
  // Example 7 of the paper: -w^3 + w (= sqrt2) is divisible; 1 is not.
  EXPECT_TRUE(ZOmega::sqrt2().divisibleBySqrt2());
  EXPECT_FALSE(ZOmega::one().divisibleBySqrt2());
  EXPECT_FALSE(ZOmega::omega().divisibleBySqrt2());
  EXPECT_TRUE((ZOmega{BigInt{0}, BigInt{0}, BigInt{0}, BigInt{2}}.divisibleBySqrt2()));

  std::mt19937_64 rng(13);
  for (int i = 0; i < 300; ++i) {
    const ZOmega x = randomZOmega(rng);
    const ZOmega multiple = x.timesSqrt2();
    ASSERT_TRUE(multiple.divisibleBySqrt2());
    EXPECT_EQ(multiple.divideBySqrt2(), x); // exact inverse of timesSqrt2
  }
}

TEST(ZOmega, NormIsRealAndMultiplicative) {
  std::mt19937_64 rng(17);
  for (int i = 0; i < 300; ++i) {
    const ZOmega x = randomZOmega(rng);
    const ZOmega y = randomZOmega(rng);
    BigInt ux;
    BigInt vx;
    x.norm(ux, vx);
    // N(x) = |x|^2 numerically.
    const double expected = std::norm(x.toComplex());
    EXPECT_NEAR(ux.toDouble() + vx.toDouble() * std::sqrt(2.0), expected,
                1e-6 * (1.0 + expected));
    // The Euclidean value E = |u^2 - 2 v^2| is multiplicative.
    EXPECT_EQ((x * y).euclideanValue(), x.euclideanValue() * y.euclideanValue());
  }
  EXPECT_EQ(ZOmega::zero().euclideanValue(), BigInt{0});
  EXPECT_EQ(ZOmega::one().euclideanValue(), BigInt{1});
  EXPECT_EQ(ZOmega::omega().euclideanValue(), BigInt{1});
  EXPECT_EQ(ZOmega::sqrt2().euclideanValue(), BigInt{4});
}

TEST(ZOmega, PaperExample9Norm) {
  // N(2w^3 + 3w^2 + 2w + 4) = 33 + 12 sqrt2 (paper, Example 9).
  const ZOmega alpha{BigInt{2}, BigInt{3}, BigInt{2}, BigInt{4}};
  BigInt u;
  BigInt v;
  alpha.norm(u, v);
  EXPECT_EQ(u.toInt64(), 33);
  EXPECT_EQ(v.toInt64(), 12);
}

TEST(ZOmega, ToStringForms) {
  EXPECT_EQ(ZOmega::zero().toString(), "0");
  EXPECT_EQ(ZOmega::one().toString(), "1");
  EXPECT_EQ(ZOmega::omega().toString(), "w");
  EXPECT_EQ((-ZOmega::omega()).toString(), "-w");
  EXPECT_EQ(ZOmega::sqrt2().toString(), "-w3 + w");
  EXPECT_EQ((ZOmega{BigInt{2}, BigInt{3}, BigInt{2}, BigInt{4}}).toString(), "2w3 + 3w2 + 2w + 4");
}

TEST(ZOmega, HashAndEquality) {
  std::mt19937_64 rng(19);
  for (int i = 0; i < 100; ++i) {
    const ZOmega x = randomZOmega(rng);
    const ZOmega copy{x.a(), x.b(), x.c(), x.d()};
    EXPECT_EQ(x, copy);
    EXPECT_EQ(x.hash(), copy.hash());
  }
  EXPECT_NE(ZOmega::omega(), ZOmega::imaginaryUnit());
}

TEST(ZOmega, MaxCoefficientBits) {
  EXPECT_EQ(ZOmega::zero().maxCoefficientBits(), 0U);
  EXPECT_EQ(ZOmega::one().maxCoefficientBits(), 1U);
  const ZOmega wide{BigInt{1}, pow2(100), BigInt{3}, BigInt{0}};
  EXPECT_EQ(wide.maxCoefficientBits(), 101U);
}

} // namespace
} // namespace qadd::alg
