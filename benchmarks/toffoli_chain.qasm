// Toffoli cascade: computes the AND-prefixes of the top three lines
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
x q[0];
x q[1];
ccx q[0], q[1], q[3];
x q[2];
ccx q[2], q[3], q[4];
