// A generic Clifford+T word on 3 qubits (exactly representable)
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
t q[0];
cx q[0], q[1];
tdg q[1];
h q[1];
s q[2];
cx q[1], q[2];
t q[2];
h q[2];
cz q[0], q[2];
sdg q[0];
