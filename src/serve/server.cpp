#include "serve/server.hpp"

#include "eval/report.hpp"
#include "exec/thread_pool.hpp"
#include "io/snapshot.hpp"
#include "obs/exposition.hpp"
#include "qc/qasm.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace qadd::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Lingering close: after a 413 the peer may still be mid-burst; keep
/// draining (and discarding) its bytes this long so close() sends FIN rather
/// than RST and the error response actually reaches the client.
constexpr double kLingerSeconds = 1.0;

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

json::Value idOf(const json::Value& request) {
  const json::Value* id = request.find("id");
  return id != nullptr ? *id : json::Value();
}

/// Re-serialize a PackageStats through the canonical JSON emitter so the
/// protocol's "stats" object matches the offline reports field for field.
json::Value statsToJson(const obs::PackageStats& stats) {
  std::ostringstream os;
  eval::writeStatsJson(os, stats);
  return json::parse(os.str());
}

/// Integer-valued request field, validated BEFORE any cast: the double must
/// be finite, integral, and within [min, max] — a static_cast of a hostile
/// value (1e30, NaN, a negative into an unsigned) is undefined behavior.
double checkedInteger(const json::Value& request, std::string_view key, double fallback,
                      double min, double max) {
  const json::Value* value = request.find(key);
  if (value == nullptr) {
    return fallback;
  }
  const std::string name{key};
  if (!value->isNumber()) {
    throw ServeError(kBadRequest, "\"" + name + "\" must be a number");
  }
  const double number = value->asNumber();
  if (!std::isfinite(number) || number != std::floor(number) || number < min || number > max) {
    std::ostringstream os;
    os << '"' << name << "\" must be an integer in [" << min << ", " << max << ']';
    throw ServeError(kBadRequest, os.str());
  }
  return number;
}

} // namespace

// -- connection state -------------------------------------------------------------

struct Server::Connection {
  explicit Connection(int descriptor) : fd(descriptor) {}

  const int fd;
  std::string inBuffer; ///< loop thread only

  std::mutex outMutex;
  std::string outBuffer; ///< guarded by outMutex (job threads append)

  std::atomic<int> pendingJobs{0};
  // Loop-thread-only bookkeeping.
  Clock::time_point lastActivity{};
  Clock::time_point writeStallSince{}; ///< epoch value = not stalled
  Clock::time_point lingerSince{};     ///< when the lingering drain started
  bool closing = false; ///< stop reading; close once flushed and jobs drained
  bool discarding = false; ///< read-and-discard while closing (lingering close)

  [[nodiscard]] bool hasOutput() {
    const std::lock_guard<std::mutex> lock(outMutex);
    return !outBuffer.empty();
  }
};

// -- identical-job result cache ---------------------------------------------------

struct Server::CacheEntry {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  bool failed = false;
  int errorCode = 0;
  std::string errorMessage;
  JobResult result;
};

/// Bounded map keyed on the job identity (system config + circuit CRC +
/// requested outputs).  The first requester of a key is the *leader* and
/// computes; concurrent requesters wait on the entry; later requesters copy
/// the published result.  FIFO eviction; in-flight entries are not evicted.
class Server::ResultCache {
public:
  explicit ResultCache(std::size_t maxEntries) : maxEntries_(maxEntries) {}

  std::pair<std::shared_ptr<CacheEntry>, bool> lookupOrInsert(const std::string& key) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = entries_.find(key); it != entries_.end()) {
      return {it->second, false};
    }
    auto entry = std::make_shared<CacheEntry>();
    entries_.emplace(key, entry);
    order_.push_back(key);
    for (std::size_t attempts = order_.size(); entries_.size() > maxEntries_ && attempts > 0;
         --attempts) {
      const std::string victim = std::move(order_.front());
      order_.pop_front();
      const auto vit = entries_.find(victim);
      if (vit == entries_.end()) {
        continue;
      }
      bool evictable = false;
      {
        const std::lock_guard<std::mutex> entryLock(vit->second->mutex);
        evictable = vit->second->done;
      }
      if (evictable) {
        entries_.erase(vit);
      } else {
        order_.push_back(victim); // a leader is still computing it
      }
    }
    return {entry, true};
  }

  /// Drop a failed leader's entry so a later identical job can recompute.
  void forget(const std::string& key) {
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.erase(key); // the stale order_ slot is skipped at eviction time
  }

private:
  std::size_t maxEntries_;
  std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<CacheEntry>> entries_;
  std::deque<std::string> order_;
};

// -- lifecycle --------------------------------------------------------------------

Server::Server(ServerConfig config) : config_(std::move(config)) {
  pool_ = std::make_unique<exec::ThreadPool>(config_.workers);
  SessionManager::Limits limits;
  limits.maxSessions = config_.maxSessions;
  limits.memoryWatermarkNodes = config_.memoryWatermarkNodes;
  sessions_ = std::make_unique<SessionManager>(limits,
                                               config_.kernelParallel ? pool_.get() : nullptr);
  queue_ = std::make_unique<JobQueue>(*pool_, config_.maxQueueDepth);
  if (config_.resultCacheEntries != 0) {
    cache_ = std::make_unique<ResultCache>(config_.resultCacheEntries);
  }
}

Server::~Server() { stop(); }

void Server::start() {
  {
    const std::lock_guard<std::mutex> lock(lifecycleMutex_);
    if (started_) {
      throw std::runtime_error("server already started");
    }
    started_ = true;
  }
  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listenFd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bindAddress.c_str(), &address.sin_addr) != 1) {
    throw std::runtime_error("bad bind address: " + config_.bindAddress);
  }
  if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    throw std::runtime_error(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listenFd_, 128) != 0) {
    throw std::runtime_error(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t length = sizeof(bound);
  ::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound), &length);
  port_ = ntohs(bound.sin_port);
  setNonBlocking(listenFd_);
  if (::pipe(wakePipe_) != 0) {
    throw std::runtime_error(std::string("pipe: ") + std::strerror(errno));
  }
  setNonBlocking(wakePipe_[0]);
  setNonBlocking(wakePipe_[1]);
  loop_ = std::thread([this] { eventLoop(); });
}

void Server::stop() {
  {
    const std::lock_guard<std::mutex> lock(lifecycleMutex_);
    if (!started_ || stopped_) {
      return;
    }
    stopped_ = true;
    shutdownRequested_ = true;
  }
  shutdownCv_.notify_all();
  stopping_.store(true, std::memory_order_release);
  queue_->close();
  wake();
  queue_->drain();
  drained_.store(true, std::memory_order_release);
  wake();
  if (loop_.joinable()) {
    loop_.join();
  }
  for (const int fd : {wakePipe_[0], wakePipe_[1]}) {
    if (fd >= 0) {
      ::close(fd);
    }
  }
  wakePipe_[0] = wakePipe_[1] = -1;
}

void Server::requestShutdown() {
  {
    const std::lock_guard<std::mutex> lock(lifecycleMutex_);
    shutdownRequested_ = true;
  }
  shutdownCv_.notify_all();
}

void Server::waitShutdown() {
  std::unique_lock<std::mutex> lock(lifecycleMutex_);
  shutdownCv_.wait(lock, [this] { return shutdownRequested_; });
}

void Server::wake() {
  if (wakePipe_[1] >= 0) {
    const char byte = 'w';
    [[maybe_unused]] const auto n = ::write(wakePipe_[1], &byte, 1); // full pipe = already awake
  }
}

// -- event loop -------------------------------------------------------------------

void Server::eventLoop() {
  Clock::time_point flushDeadline{};
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Connection>> polled;
  while (true) {
    const bool stopping = stopping_.load(std::memory_order_acquire);
    if (stopping && listenFd_ >= 0) {
      ::close(listenFd_);
      listenFd_ = -1;
    }
    fds.clear();
    polled.clear();
    fds.push_back({wakePipe_[0], POLLIN, 0});
    if (listenFd_ >= 0) {
      fds.push_back({listenFd_, POLLIN, 0});
    }
    for (const auto& [fd, connection] : connections_) {
      short events = 0;
      if (!connection->closing || connection->discarding) {
        events |= POLLIN;
      }
      if (connection->hasOutput()) {
        events |= POLLOUT;
      }
      fds.push_back({fd, events, 0});
      polled.push_back(connection);
    }
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 250);

    if ((fds[0].revents & POLLIN) != 0) {
      char drain[256];
      while (::read(wakePipe_[0], drain, sizeof(drain)) > 0) {
      }
    }
    std::size_t index = 1;
    if (listenFd_ >= 0) {
      if ((fds[index].revents & POLLIN) != 0) {
        acceptPending();
      }
      ++index;
    }
    for (std::size_t i = 0; i < polled.size(); ++i, ++index) {
      const auto& connection = polled[i];
      const short revents = fds[index].revents;
      if ((revents & (POLLOUT)) != 0) {
        if (!flushWrites(connection)) {
          closeConnection(connection->fd, /*dropped=*/true);
          continue;
        }
      }
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
          (!connection->closing || connection->discarding)) {
        handleReadable(connection);
      }
      // Opportunistic flush: responses produced inline by handleFrame go out
      // without waiting for the next POLLOUT round trip.
      if (connections_.contains(connection->fd) && connection->hasOutput()) {
        if (!flushWrites(connection)) {
          closeConnection(connection->fd, /*dropped=*/true);
        }
      }
    }

    // Timeout / teardown sweep.
    const Clock::time_point now = Clock::now();
    std::vector<std::pair<int, bool>> closures; // (fd, dropped)
    for (const auto& [fd, connection] : connections_) {
      bool outEmpty = false;
      Clock::time_point stallSince{};
      {
        const std::lock_guard<std::mutex> lock(connection->outMutex);
        outEmpty = connection->outBuffer.empty();
        stallSince = connection->writeStallSince;
      }
      if (config_.writeStallSeconds > 0 && !outEmpty && stallSince != Clock::time_point{} &&
          std::chrono::duration<double>(now - stallSince).count() > config_.writeStallSeconds) {
        closures.emplace_back(fd, true);
        continue;
      }
      const bool quiescent = outEmpty && connection->pendingJobs.load() == 0;
      const bool lingering =
          connection->discarding &&
          std::chrono::duration<double>(now - connection->lingerSince).count() < kLingerSeconds;
      if (connection->closing && quiescent && !lingering) {
        closures.emplace_back(fd, false);
        continue;
      }
      if (!connection->closing && config_.idleTimeoutSeconds > 0 && quiescent &&
          std::chrono::duration<double>(now - connection->lastActivity).count() >
              config_.idleTimeoutSeconds) {
        closures.emplace_back(fd, false);
      }
    }
    for (const auto& [fd, dropped] : closures) {
      closeConnection(fd, dropped);
    }

    if (stopping && drained_.load(std::memory_order_acquire)) {
      if (flushDeadline == Clock::time_point{}) {
        flushDeadline = now + std::chrono::seconds(5);
      }
      bool allFlushed = true;
      for (const auto& [fd, connection] : connections_) {
        if (connection->hasOutput()) {
          if (!flushWrites(connection)) {
            closeConnection(fd, /*dropped=*/true);
            break; // iterator invalidated; re-check next iteration
          }
          allFlushed = false;
        }
      }
      if (allFlushed || now > flushDeadline) {
        while (!connections_.empty()) {
          closeConnection(connections_.begin()->first, false);
        }
        return;
      }
    }
  }
}

void Server::acceptPending() {
  while (true) {
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      return; // EAGAIN (or a transient error; the next POLLIN retries)
    }
    setNonBlocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto connection = std::make_shared<Connection>(fd);
    connection->lastActivity = Clock::now();
    connections_.emplace(fd, std::move(connection));
    counters_.connectionsAccepted.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::handleReadable(const std::shared_ptr<Connection>& connection) {
  char buffer[65536];
  while (!connection->closing || connection->discarding) {
    const ssize_t n = ::recv(connection->fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      connection->lastActivity = Clock::now();
      if (connection->discarding) {
        // Lingering close: the peer is mid-burst past a rejection; swallow
        // the rest so close() ends in FIN (RST would discard the response).
        continue;
      }
      connection->inBuffer.append(buffer, static_cast<std::size_t>(n));
      // Process after every chunk, so the frame-size limit is enforced no
      // matter how an over-limit frame is spread across a readable burst,
      // and inBuffer never grows past the cap plus one recv chunk.
      processFrames(connection);
      if (static_cast<std::size_t>(n) < sizeof(buffer)) {
        break;
      }
      continue;
    }
    if (n == 0) {
      // Peer half-closed: stop reading, but finish in-flight jobs and flush
      // their responses before tearing the connection down.
      connection->closing = true;
      connection->discarding = false;
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno != EAGAIN && errno != EWOULDBLOCK) {
      connection->closing = true;
      connection->discarding = false;
    }
    break;
  }
}

void Server::processFrames(const std::shared_ptr<Connection>& connection) {
  const auto rejectOversized = [&] {
    counters_.oversizedFrames.fetch_add(1, std::memory_order_relaxed);
    send(connection, makeError(json::Value(), kPayloadTooLarge,
                               "frame exceeds " + std::to_string(config_.maxFrameBytes) +
                                   " bytes"));
    connection->closing = true;
    connection->discarding = true;
    connection->lingerSince = Clock::now();
    connection->inBuffer.clear();
    connection->inBuffer.shrink_to_fit();
  };
  std::size_t start = 0;
  while (true) {
    const std::size_t newline = connection->inBuffer.find('\n', start);
    if (newline == std::string::npos) {
      break;
    }
    std::string_view line(connection->inBuffer.data() + start, newline - start);
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    if (line.size() > config_.maxFrameBytes) {
      rejectOversized(); // before parsing, let alone executing
      return;
    }
    if (!line.empty()) {
      handleFrame(connection, line);
    }
    start = newline + 1;
  }
  connection->inBuffer.erase(0, start);
  if (connection->inBuffer.size() > config_.maxFrameBytes) {
    rejectOversized(); // a partial frame already over the limit cannot complete
  }
}

bool Server::flushWrites(const std::shared_ptr<Connection>& connection) {
  const std::lock_guard<std::mutex> lock(connection->outMutex);
  while (!connection->outBuffer.empty()) {
    const ssize_t n = ::send(connection->fd, connection->outBuffer.data(),
                             connection->outBuffer.size(), MSG_NOSIGNAL);
    if (n > 0) {
      connection->outBuffer.erase(0, static_cast<std::size_t>(n));
      connection->writeStallSince = {};
      connection->lastActivity = Clock::now();
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (connection->writeStallSince == Clock::time_point{}) {
        connection->writeStallSince = Clock::now();
      }
      return true; // kernel buffer full; POLLOUT resumes, stall clock runs
    }
    return false; // hard write error: drop the connection
  }
  connection->writeStallSince = {};
  return true;
}

void Server::closeConnection(int fd, bool dropped) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) {
    return;
  }
  ::close(fd);
  connections_.erase(it);
  counters_.connectionsClosed.fetch_add(1, std::memory_order_relaxed);
  if (dropped) {
    counters_.droppedConnections.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::send(const std::shared_ptr<Connection>& connection, const json::Value& response) {
  if (connection == nullptr) {
    return;
  }
  const std::string line = json::dump(response);
  {
    const std::lock_guard<std::mutex> lock(connection->outMutex);
    connection->outBuffer += line;
    connection->outBuffer += '\n';
  }
  counters_.framesOut.fetch_add(1, std::memory_order_relaxed);
  wake();
}

// -- dispatch ---------------------------------------------------------------------

void Server::handleFrame(const std::shared_ptr<Connection>& connection, std::string_view line) {
  counters_.framesIn.fetch_add(1, std::memory_order_relaxed);
  json::Value request;
  try {
    request = json::parse(line);
    if (!request.isObject()) {
      throw json::Error(0, "frame is not a JSON object");
    }
  } catch (const json::Error& error) {
    counters_.malformedFrames.fetch_add(1, std::memory_order_relaxed);
    send(connection, makeError(json::Value(), kBadRequest,
                               std::string("malformed frame: ") + error.what()));
    return;
  }
  const json::Value id = idOf(request);
  const std::string op = request.getString("op");
  if (stopping_.load(std::memory_order_acquire)) {
    send(connection, makeError(id, kUnavailable, "server is shutting down"));
    return;
  }
  try {
    if (op == "hello") {
      send(connection, opHello(id));
    } else if (op == "ping") {
      send(connection, makeOk(id));
    } else if (op == "open") {
      send(connection, opOpen(id, request));
    } else if (op == "close") {
      send(connection, opClose(id, request));
    } else if (op == "metrics") {
      send(connection, opMetrics(id));
    } else if (op == "shutdown") {
      send(connection, makeOk(id));
      requestShutdown();
    } else if (op == "run" || op == "state" || op == "checkpoint" || op == "loadstate" ||
               op == "stats") {
      runJob(connection, request);
    } else {
      send(connection, makeError(id, kBadRequest, "unknown op '" + op + "'"));
    }
  } catch (const ServeError& error) {
    send(connection, makeError(id, error.code(), error.what()));
  } catch (const std::exception& error) {
    send(connection, makeError(id, kInternalError, error.what()));
  }
}

json::Value Server::opHello(const json::Value& id) const {
  json::Value response = makeOk(id);
  response.set("server", "qadd_serve");
  response.set("protocol", kProtocolVersion);
  json::Value systems = json::Value::array();
  systems.push("alg");
  systems.push("num");
  response.set("systems", std::move(systems));
  response.set("maxFrameBytes", config_.maxFrameBytes);
  response.set("maxQueueDepth", config_.maxQueueDepth);
  response.set("maxSessions", config_.maxSessions);
  return response;
}

json::Value Server::opOpen(const json::Value& id, const json::Value& request) {
  SessionConfig sessionConfig;
  sessionConfig.name = request.getString("session");
  sessionConfig.system = request.getString("system", "alg");
  sessionConfig.epsilon = request.getNumber("eps", 0.0);
  sessionConfig.qubits =
      static_cast<qc::Qubit>(checkedInteger(request, "qubits", 0.0, 0.0, 64.0));
  sessionConfig.gcWatermark = static_cast<std::size_t>(
      checkedInteger(request, "gc_watermark", 200'000.0, 0.0, 9.0e15));
  sessionConfig.maxMagnitudeNormalization = request.getBool("max_magnitude");
  // Protocol v2: fidelity-bounded approximation knobs.  approx_fidelity F in
  // (0, 1] becomes a pruning budget of 1-F per docs/APPROXIMATION.md; the
  // policy defaults to "pergate" when only the fidelity is given.
  // makeSessionBackend rejects the combination with an algebraic session.
  const double approxFidelity = request.getNumber("approx_fidelity", 1.0);
  if (!(approxFidelity > 0.0) || approxFidelity > 1.0) {
    throw ServeError(kBadRequest, "approx_fidelity must be in (0, 1]");
  }
  const std::string policyText = request.getString("approx_policy", "");
  if (!policyText.empty()) {
    const auto policy = dd::parseApproxPolicy(policyText);
    if (!policy.has_value()) {
      throw ServeError(kBadRequest, "unknown approx_policy '" + policyText +
                                        "' (expected \"pergate\", \"oneshot\" or \"none\")");
    }
    sessionConfig.approx.policy = *policy;
  }
  if (approxFidelity < 1.0) {
    sessionConfig.approx.budget = 1.0 - approxFidelity;
    if (sessionConfig.approx.policy == dd::ApproxPolicy::None && policyText.empty()) {
      sessionConfig.approx.policy = dd::ApproxPolicy::PerGate;
    }
  } else if (sessionConfig.approx.policy != dd::ApproxPolicy::None) {
    throw ServeError(kBadRequest, "approx_policy requires approx_fidelity < 1");
  }
  const auto session = sessions_->open(sessionConfig);
  json::Value response = makeOk(id);
  response.set("session", session->config().name);
  response.set("system", session->config().system);
  response.set("eps", session->config().epsilon);
  response.set("qubits", static_cast<std::size_t>(session->config().qubits));
  if (session->config().approx.active()) {
    response.set("approx_fidelity", 1.0 - session->config().approx.budget);
    response.set("approx_policy", dd::approxPolicyName(session->config().approx.policy));
  }
  return response;
}

json::Value Server::opClose(const json::Value& id, const json::Value& request) {
  sessions_->close(request.getString("session"));
  return makeOk(id);
}

json::Value Server::opMetrics(const json::Value& id) const {
  json::Value response = makeOk(id);
  response.set("metrics", renderMetrics());
  return response;
}

void Server::runJob(const std::shared_ptr<Connection>& connection, const json::Value& request) {
  const json::Value id = idOf(request);
  const std::string sessionName = request.getString("session");
  // Resolve the session inline: a 404 should not consume queue capacity.
  [[maybe_unused]] const auto session = sessions_->find(sessionName); // throws ServeError(404)
  const int priority =
      static_cast<int>(checkedInteger(request, "priority", 0.0, -1.0e9, 1.0e9));
  connection->pendingJobs.fetch_add(1, std::memory_order_relaxed);
  std::weak_ptr<Connection> weak = connection;
  const bool admitted = queue_->tryEnqueue(priority, [this, weak, request, id] {
    const std::shared_ptr<Connection> target = weak.lock();
    const json::Value response = executeJob(target, id, request);
    if (target != nullptr) {
      send(target, response);
      target->pendingJobs.fetch_sub(1, std::memory_order_relaxed);
      wake();
    }
  });
  if (!admitted) {
    connection->pendingJobs.fetch_sub(1, std::memory_order_relaxed);
    throw ServeError(kTooManyRequests,
                     "job queue is full (depth " + std::to_string(queue_->maxDepth()) + ")");
  }
}

json::Value Server::executeJob(const std::shared_ptr<Connection>& connection,
                               const json::Value& id, const json::Value& request) {
  const std::string op = request.getString("op");
  try {
    if (op == "run") {
      return opRun(connection, id, request);
    }
    const auto session = sessions_->find(request.getString("session"));
    json::Value response = makeOk(id);
    if (op == "state") {
      sessions_->withBackend(*session, [&](SessionBackend& backend) {
        response.set("snapshot_b64", encodeBase64(backend.stateSnapshot()));
        response.set("nodes", backend.stateNodes());
      });
    } else if (op == "checkpoint") {
      sessions_->withBackend(*session, [&](SessionBackend& backend) {
        response.set("checkpoint_b64", encodeBase64(backend.checkpoint()));
      });
    } else if (op == "loadstate") {
      const json::Value* blob = request.find("qdds_b64");
      if (blob == nullptr || !blob->isString()) {
        throw ServeError(kBadRequest, "loadstate requires a \"qdds_b64\" string");
      }
      const std::vector<std::uint8_t> qdds = decodeBase64(blob->asString());
      sessions_->withBackend(*session, [&](SessionBackend& backend) {
        backend.loadState(qdds);
        response.set("nodes", backend.stateNodes());
      });
    } else { // "stats"
      sessions_->withBackend(*session, [&](SessionBackend& backend) {
        response.set("stats", statsToJson(backend.stats()));
      });
    }
    return response;
  } catch (const qc::ParseError& error) {
    json::Value detail = json::Value::object();
    detail.set("line", error.line());
    detail.set("column", error.column());
    detail.set("token", error.token());
    return makeError(id, kBadRequest, error.what(), std::move(detail));
  } catch (const ServeError& error) {
    if (error.code() >= 500) {
      counters_.jobsFailed.fetch_add(1, std::memory_order_relaxed);
    }
    return makeError(id, error.code(), error.what());
  } catch (const io::SnapshotError& error) {
    return makeError(id, kBadRequest, error.what());
  } catch (const std::invalid_argument& error) {
    return makeError(id, kBadRequest, error.what());
  } catch (const std::exception& error) {
    counters_.jobsFailed.fetch_add(1, std::memory_order_relaxed);
    return makeError(id, kInternalError, error.what());
  }
}

json::Value Server::opRun(const std::shared_ptr<Connection>& connection, const json::Value& id,
                          const json::Value& request) {
  const auto session = sessions_->find(request.getString("session"));
  const SessionConfig& sessionConfig = session->config();

  JobRequest job;
  if (const json::Value* qasm = request.find("qasm"); qasm != nullptr && qasm->isString()) {
    job.circuit = qc::fromQasm(qasm->asString()); // ParseError carries line/column/token
  } else if (const json::Value* text = request.find("circuit");
             text != nullptr && text->isString()) {
    job.circuit = qc::Circuit::fromText(text->asString());
  } else {
    throw ServeError(kBadRequest, "run requires a \"qasm\" or \"circuit\" string");
  }
  job.wantAmplitudes = request.getBool("amplitudes");
  job.wantSnapshot = request.getBool("snapshot");
  job.wantCheckpoint = request.getBool("checkpoint");
  job.traceEvery =
      static_cast<std::size_t>(checkedInteger(request, "trace_every", 0.0, 0.0, 9.0e15));
  if (const json::Value* resume = request.find("resume"); resume != nullptr) {
    if (!resume->isString()) {
      throw ServeError(kBadRequest, "resume must be a base64 string");
    }
    job.resumeCheckpoint = decodeBase64(resume->asString());
  }
  if (job.wantAmplitudes && sessionConfig.qubits > config_.maxAmplitudeQubits) {
    throw ServeError(kBadRequest,
                     "amplitude dumps are limited to " +
                         std::to_string(config_.maxAmplitudeQubits) + " qubits");
  }
  const bool wantStats = request.getBool("stats");

  // Identical algebraic jobs coalesce: exactness makes the cached answer THE
  // answer, independent of which session computed it or what ran before
  // (order-independence, docs/SERVE.md).  The key is the full canonical
  // circuit text — already computed for free via toText(), and immune to the
  // collisions a short hash would invite on a service whose contract is
  // exactness.  Leaders always capture a final-state snapshot so cache hits
  // can restore it into the serving session (run-then-state behaves the same
  // cached or not); the client-visible snapshot stays opt-in.
  const bool cacheable = cache_ != nullptr && sessionConfig.system == "alg" &&
                         job.resumeCheckpoint.empty() && !job.wantCheckpoint &&
                         job.traceEvery == 0 && !wantStats;
  const bool wantSnapshotResponse = job.wantSnapshot;
  std::string cacheKey;
  std::shared_ptr<CacheEntry> entry;
  bool leader = true;
  JobResult result;
  obs::PackageStats statsSnapshot;
  bool served = false;
  if (cacheable) {
    job.wantSnapshot = true;
    cacheKey = sessionConfig.system + '|' + std::to_string(sessionConfig.qubits) + '|' +
               (job.wantAmplitudes ? 'A' : '-') + '|' + job.circuit.toText();
    std::tie(entry, leader) = cache_->lookupOrInsert(cacheKey);
    if (!leader) {
      std::unique_lock<std::mutex> lock(entry->mutex);
      if (entry->done) {
        counters_.resultCacheHits.fetch_add(1, std::memory_order_relaxed);
      } else {
        counters_.resultCacheCoalesced.fetch_add(1, std::memory_order_relaxed);
        entry->cv.wait(lock, [&] { return entry->done; });
      }
      if (entry->failed) {
        throw ServeError(entry->errorCode != 0 ? entry->errorCode : kInternalError,
                         entry->errorMessage);
      }
      result = entry->result;
      result.fromCache = true;
      served = true;
    }
    if (served) {
      // Adopt the cached final state as the session state, exactly as an
      // uncached run would have (the QDDS snapshot is exact, so this is a
      // byte-identical restore; the session's circuit position resets).
      sessions_->withBackend(*session, [&](SessionBackend& backend) {
        backend.loadState(result.snapshot);
      });
    }
  }

  if (!served) {
    const auto publishFailure = [&](int code, const std::string& message) {
      if (!cacheable || !leader) {
        return;
      }
      {
        const std::lock_guard<std::mutex> lock(entry->mutex);
        entry->done = true;
        entry->failed = true;
        entry->errorCode = code;
        entry->errorMessage = message;
      }
      entry->cv.notify_all();
      cache_->forget(cacheKey); // a later identical job may recompute
    };
    try {
      sessions_->withBackend(*session, [&](SessionBackend& backend) {
        GateCallback onGate;
        if (job.traceEvery != 0 && connection != nullptr) {
          onGate = [&](std::size_t gate, std::size_t nodes) {
            json::Value event = json::Value::object();
            event.set("id", id);
            event.set("event", "gate");
            event.set("gate", gate);
            event.set("nodes", nodes);
            send(connection, event);
          };
        }
        result = backend.run(job, onGate);
        if (wantStats) {
          statsSnapshot = backend.stats();
        }
      });
    } catch (const ServeError& error) {
      publishFailure(error.code(), error.what());
      throw;
    } catch (const std::exception& error) {
      publishFailure(kInternalError, error.what());
      throw;
    }
    if (cacheable && leader) {
      {
        const std::lock_guard<std::mutex> lock(entry->mutex);
        entry->done = true;
        entry->result = result;
      }
      entry->cv.notify_all();
    }
  }

  json::Value response = makeOk(id);
  response.set("gates", result.gatesApplied);
  response.set("nodes", result.finalNodes);
  response.set("seconds", result.seconds);
  if (sessionConfig.approx.active()) {
    response.set("fidelity", result.fidelity);
    response.set("pruned_nodes", result.prunedNodes);
  }
  if (result.fromCache) {
    response.set("cached", true);
  }
  if (job.wantAmplitudes) {
    json::Value amplitudes = json::Value::array();
    for (const std::complex<double>& amplitude : result.amplitudes) {
      json::Value pair = json::Value::array();
      pair.push(amplitude.real());
      pair.push(amplitude.imag());
      amplitudes.push(std::move(pair));
    }
    response.set("amplitudes", std::move(amplitudes));
  }
  if (wantSnapshotResponse) {
    response.set("snapshot_b64", encodeBase64(result.snapshot));
  }
  if (job.wantCheckpoint) {
    response.set("checkpoint_b64", encodeBase64(result.checkpoint));
  }
  if (wantStats) {
    response.set("stats", statsToJson(statsSnapshot));
  }
  return response;
}

// -- metrics ----------------------------------------------------------------------

std::string Server::renderMetrics() const {
  obs::PackageStats total;
  const auto sessions = sessions_->sessions();
  for (const auto& session : sessions) {
    total += session->lastStats();
  }
  std::ostringstream os;
  obs::renderPrometheus(os, total);

  const auto gauge = [&os](const char* name, const char* help, std::uint64_t value) {
    os << "# HELP " << name << ' ' << help << '\n';
    os << "# TYPE " << name << " gauge\n";
    os << name << ' ' << value << '\n';
  };
  const auto counter = [&os](const char* name, const char* help, std::uint64_t value) {
    os << "# HELP " << name << ' ' << help << '\n';
    os << "# TYPE " << name << " counter\n";
    os << name << ' ' << value << '\n';
  };
  gauge("qadd_serve_sessions", "Open sessions.", sessions.size());
  gauge("qadd_serve_queue_depth", "Jobs admitted and not yet completed.", queue_->depth());
  gauge("qadd_serve_connections", "Open client connections.",
        counters_.connectionsAccepted.load() - counters_.connectionsClosed.load());
  counter("qadd_serve_jobs_accepted_total", "Jobs admitted by the queue.", queue_->accepted());
  counter("qadd_serve_jobs_rejected_total", "Jobs refused by admission control (429).",
          queue_->rejected());
  counter("qadd_serve_jobs_completed_total", "Jobs completed.", queue_->completed());
  counter("qadd_serve_jobs_failed_total", "Jobs answered with a 5xx.",
          counters_.jobsFailed.load());
  counter("qadd_serve_frames_in_total", "Request frames received.", counters_.framesIn.load());
  counter("qadd_serve_frames_out_total", "Response frames sent.", counters_.framesOut.load());
  counter("qadd_serve_frames_malformed_total", "Frames that failed to parse.",
          counters_.malformedFrames.load());
  counter("qadd_serve_frames_oversized_total", "Frames beyond the size limit (413).",
          counters_.oversizedFrames.load());
  counter("qadd_serve_connections_dropped_total", "Connections force-closed on write stall.",
          counters_.droppedConnections.load());
  counter("qadd_serve_result_cache_hits_total", "Jobs served from the result cache.",
          counters_.resultCacheHits.load());
  counter("qadd_serve_result_cache_coalesced_total",
          "Jobs that waited on an identical in-flight job.",
          counters_.resultCacheCoalesced.load());
  const auto& sessionCounters = sessions_->counters();
  counter("qadd_serve_sessions_persisted_total",
          "Idle sessions persisted to QCKP under the memory watermark.",
          sessionCounters.persisted.load());
  counter("qadd_serve_sessions_restored_total", "Persisted sessions restored on demand.",
          sessionCounters.restored.load());

  os << "# HELP qadd_serve_session_nodes Live DD nodes per resident session.\n";
  os << "# TYPE qadd_serve_session_nodes gauge\n";
  for (const auto& session : sessions) {
    os << "qadd_serve_session_nodes{session=\""
       << obs::promEscapeLabel(session->config().name) << "\"} " << session->lastLiveNodes()
       << '\n';
  }
  return os.str();
}

} // namespace qadd::serve
