/// \file json.hpp
/// Minimal JSON document model for the qadd_serve wire protocol
/// (docs/SERVE.md): parse one line-delimited frame into a Value tree, build
/// response frames, and serialize them compactly (single line, no raw
/// newlines — the framing invariant).  Deliberately small: objects keep
/// insertion order, numbers are doubles (the protocol's integers fit 2^53),
/// \uXXXX escapes decode to UTF-8.  Parsing is bounded by an explicit depth
/// limit so hostile frames cannot recurse the stack away.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace qadd::serve::json {

/// Parse failure: byte offset + message ("json:<offset>: <message>").
class Error : public std::invalid_argument {
public:
  Error(std::size_t offset, const std::string& message)
      : std::invalid_argument("json:" + std::to_string(offset) + ": " + message),
        offset_(offset) {}
  [[nodiscard]] std::size_t offset() const { return offset_; }

private:
  std::size_t offset_;
};

class Value {
public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };
  using Member = std::pair<std::string, Value>;

  Value() = default;
  /* implicit */ Value(bool b) : kind_(Kind::Bool), bool_(b) {}
  /* implicit */ Value(double n) : kind_(Kind::Number), number_(n) {}
  /// Any non-bool integer (the protocol's integers all fit 2^53 exactly).
  template <class T, std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>, int> = 0>
  /* implicit */ Value(T n) : Value(static_cast<double>(n)) {}
  /* implicit */ Value(const char* s) : kind_(Kind::String), string_(s) {}
  /* implicit */ Value(std::string s) : kind_(Kind::String), string_(std::move(s)) {}

  [[nodiscard]] static Value array() {
    Value v;
    v.kind_ = Kind::Array;
    return v;
  }
  [[nodiscard]] static Value object() {
    Value v;
    v.kind_ = Kind::Object;
    return v;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool isNull() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool isBool() const { return kind_ == Kind::Bool; }
  [[nodiscard]] bool isNumber() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool isString() const { return kind_ == Kind::String; }
  [[nodiscard]] bool isArray() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool isObject() const { return kind_ == Kind::Object; }

  [[nodiscard]] bool asBool(bool fallback = false) const {
    return isBool() ? bool_ : fallback;
  }
  [[nodiscard]] double asNumber(double fallback = 0.0) const {
    return isNumber() ? number_ : fallback;
  }
  [[nodiscard]] const std::string& asString() const { return string_; }
  [[nodiscard]] std::string asString(const std::string& fallback) const {
    return isString() ? string_ : fallback;
  }

  [[nodiscard]] std::vector<Value>& items() { return array_; }
  [[nodiscard]] const std::vector<Value>& items() const { return array_; }
  [[nodiscard]] std::vector<Member>& members() { return object_; }
  [[nodiscard]] const std::vector<Member>& members() const { return object_; }

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Value* find(std::string_view key) const {
    for (const Member& member : object_) {
      if (member.first == key) {
        return &member.second;
      }
    }
    return nullptr;
  }

  /// Append an object member (no duplicate check; the writers don't repeat).
  Value& set(std::string key, Value value) {
    kind_ = Kind::Object;
    object_.emplace_back(std::move(key), std::move(value));
    return *this;
  }
  /// Append an array element.
  Value& push(Value value) {
    kind_ = Kind::Array;
    array_.push_back(std::move(value));
    return *this;
  }

  // -- convenience getters over find() --------------------------------------------

  [[nodiscard]] std::string getString(std::string_view key, const std::string& fallback = {}) const {
    const Value* v = find(key);
    return v != nullptr && v->isString() ? v->asString() : fallback;
  }
  [[nodiscard]] double getNumber(std::string_view key, double fallback = 0.0) const {
    const Value* v = find(key);
    return v != nullptr && v->isNumber() ? v->asNumber() : fallback;
  }
  [[nodiscard]] bool getBool(std::string_view key, bool fallback = false) const {
    const Value* v = find(key);
    return v != nullptr && v->isBool() ? v->asBool() : fallback;
  }

private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<Member> object_;
};

/// Parse a complete JSON document.  \throws Error on malformed input or when
/// nesting exceeds `maxDepth`.
[[nodiscard]] Value parse(std::string_view text, std::size_t maxDepth = 64);

/// Escape a string for embedding in a JSON document (quotes not included).
/// Control characters, quote and backslash are escaped, so the output never
/// contains a raw newline.
[[nodiscard]] std::string escape(std::string_view text);

/// Serialize compactly onto one line (no whitespace, no raw newlines).
void write(std::ostream& os, const Value& value);

/// write() into a string.
[[nodiscard]] std::string dump(const Value& value);

} // namespace qadd::serve::json
