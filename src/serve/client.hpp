/// \file client.hpp
/// Minimal blocking client for the qadd_serve protocol (docs/SERVE.md); the
/// load bench and the protocol tests speak through this.  One TCP
/// connection, line-delimited JSON frames, synchronous call/response with
/// streamed "event" frames routed to an optional callback.
#pragma once

#include "serve/json.hpp"

#include <cstdint>
#include <functional>
#include <string>

namespace qadd::serve {

class Client {
public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&&) = delete;

  /// Connect with send/receive timeouts (seconds; 0 = OS default).
  /// \throws std::runtime_error on failure.
  void connect(const std::string& host, std::uint16_t port, double timeoutSeconds = 30.0);
  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Send one request frame and block for its response frame.  Interleaved
  /// "event" frames (per-gate traces) are passed to `onEvent` (when set) and
  /// skipped.  \throws std::runtime_error on I/O failure or timeout.
  json::Value call(const json::Value& request);

  /// Raw bytes straight onto the socket — the protocol-fuzzing tests use
  /// this to send malformed and truncated frames.
  void sendRaw(const std::string& bytes);

  /// Read one newline-terminated frame (without the newline).
  std::string readLine();

  /// Frames carrying an "event" member, delivered from within call().
  std::function<void(const json::Value&)> onEvent;

private:
  int fd_ = -1;
  std::string buffer_; ///< bytes read past the last returned line
};

} // namespace qadd::serve
