#include "serve/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace qadd::serve::json {

namespace {

class Parser {
public:
  Parser(std::string_view text, std::size_t maxDepth) : text_(text), maxDepth_(maxDepth) {}

  Value run() {
    Value value = parseValue(0);
    skipSpace();
    if (pos_ != text_.size()) {
      fail("trailing content after document");
    }
    return value;
  }

private:
  [[noreturn]] void fail(const std::string& message) const { throw Error(pos_, message); }

  void skipSpace() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const unsigned char c = static_cast<unsigned char>(text_[pos_++]);
      if (c == '"') {
        return out;
      }
      if (c < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += static_cast<char>(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (pos_ + 4 > text_.size()) {
          fail("truncated \\u escape");
        }
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = text_[pos_++];
          code <<= 4;
          if (h >= '0' && h <= '9') {
            code |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            code |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            code |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            fail("bad hex digit in \\u escape");
          }
        }
        // UTF-8 encode (surrogate pairs are passed through individually; the
        // protocol never emits them, and replacing is better than rejecting).
        if (code < 0x80) {
          out += static_cast<char>(code);
        } else if (code < 0x800) {
          out += static_cast<char>(0xC0 | (code >> 6));
          out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
          out += static_cast<char>(0xE0 | (code >> 12));
          out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (code & 0x3F));
        }
        break;
      }
      default: fail("unknown escape character");
      }
    }
  }

  Value parseValue(std::size_t depth) {
    if (depth > maxDepth_) {
      fail("nesting exceeds the depth limit");
    }
    skipSpace();
    const char c = peek();
    if (c == '{') {
      ++pos_;
      Value object = Value::object();
      skipSpace();
      if (peek() == '}') {
        ++pos_;
        return object;
      }
      while (true) {
        skipSpace();
        std::string key = parseString();
        skipSpace();
        expect(':');
        object.set(std::move(key), parseValue(depth + 1));
        skipSpace();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return object;
      }
    }
    if (c == '[') {
      ++pos_;
      Value array = Value::array();
      skipSpace();
      if (peek() == ']') {
        ++pos_;
        return array;
      }
      while (true) {
        array.push(parseValue(depth + 1));
        skipSpace();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return array;
      }
    }
    if (c == '"') {
      return Value(parseString());
    }
    if (consumeLiteral("true")) {
      return Value(true);
    }
    if (consumeLiteral("false")) {
      return Value(false);
    }
    if (consumeLiteral("null")) {
      return Value();
    }
    // Number.
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected a value");
    }
    double number = 0.0;
    const auto [end, errc] = std::from_chars(text_.data() + start, text_.data() + pos_, number);
    if (errc != std::errc{} || end != text_.data() + pos_) {
      fail("bad number");
    }
    return Value(number);
  }

  std::string_view text_;
  std::size_t maxDepth_;
  mutable std::size_t pos_ = 0;
};

void writeNumber(std::ostream& os, double number) {
  if (!std::isfinite(number)) {
    os << "null"; // JSON has no NaN/Inf; null is the conventional stand-in
    return;
  }
  // Integers (the common case: counts, indices) print without an exponent.
  if (number == std::floor(number) && std::abs(number) < 9.007199254740992e15) {
    os << static_cast<long long>(number);
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", number);
  os << buffer;
}

} // namespace

Value parse(std::string_view text, std::size_t maxDepth) {
  return Parser(text, maxDepth).run();
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
    case '"': out += "\\\""; break;
    case '\\': out += "\\\\"; break;
    case '\n': out += "\\n"; break;
    case '\r': out += "\\r"; break;
    case '\t': out += "\\t"; break;
    default:
      if (u < 0x20) {
        char buffer[8];
        std::snprintf(buffer, sizeof(buffer), "\\u%04x", u);
        out += buffer;
      } else {
        out += c;
      }
      break;
    }
  }
  return out;
}

void write(std::ostream& os, const Value& value) {
  switch (value.kind()) {
  case Value::Kind::Null: os << "null"; break;
  case Value::Kind::Bool: os << (value.asBool() ? "true" : "false"); break;
  case Value::Kind::Number: writeNumber(os, value.asNumber()); break;
  case Value::Kind::String: os << '"' << escape(value.asString()) << '"'; break;
  case Value::Kind::Array: {
    os << '[';
    bool first = true;
    for (const Value& item : value.items()) {
      if (!first) {
        os << ',';
      }
      first = false;
      write(os, item);
    }
    os << ']';
    break;
  }
  case Value::Kind::Object: {
    os << '{';
    bool first = true;
    for (const Value::Member& member : value.members()) {
      if (!first) {
        os << ',';
      }
      first = false;
      os << '"' << escape(member.first) << "\":";
      write(os, member.second);
    }
    os << '}';
    break;
  }
  }
}

std::string dump(const Value& value) {
  std::ostringstream os;
  write(os, value);
  return os.str();
}

} // namespace qadd::serve::json
