/// \file job_queue.hpp
/// Admission-controlled priority job queue of the qadd_serve daemon.  Jobs
/// (closures that run a simulation and write the response) are admitted up to
/// a configurable depth — beyond it tryEnqueue refuses and the server answers
/// 429, which is what keeps tail latency bounded under overload instead of
/// letting the queue grow without limit (the SLO methodology in
/// docs/SERVE.md).  Admitted jobs run on the shared exec::ThreadPool in
/// (priority, arrival) order; lower priority values run sooner.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <utility>

namespace qadd::exec {
class ThreadPool;
}

namespace qadd::serve {

class JobQueue {
public:
  /// `maxDepth` caps pending + in-flight jobs (0 = unlimited).
  JobQueue(exec::ThreadPool& pool, std::size_t maxDepth) : pool_(pool), maxDepth_(maxDepth) {}

  /// Admit a job, or return false when the queue is at capacity (the caller
  /// answers 429).  Lower `priority` values are dispatched sooner; equal
  /// priorities run in arrival order.  After close(), all jobs are refused.
  bool tryEnqueue(int priority, std::function<void()> work);

  /// Refuse new admissions (running/queued jobs are unaffected).
  void close();

  /// Block until every admitted job has completed.  Call after close() for a
  /// graceful drain; with admissions still open this is a momentary barrier.
  void drain();

  [[nodiscard]] std::size_t depth() const { return depth_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::size_t maxDepth() const { return maxDepth_; }
  [[nodiscard]] std::uint64_t accepted() const { return accepted_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }

private:
  void runNext();

  exec::ThreadPool& pool_;
  std::size_t maxDepth_;

  std::mutex mutex_;
  std::condition_variable drained_;
  /// Pending jobs keyed (priority, arrival seq): begin() is the next to run.
  std::map<std::pair<int, std::uint64_t>, std::function<void()>> pending_;
  std::uint64_t nextSeq_ = 0;
  bool closed_ = false;

  std::atomic<std::size_t> depth_{0}; ///< pending + in-flight
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
};

} // namespace qadd::serve
