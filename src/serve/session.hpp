/// \file session.hpp
/// Sessions of the qadd_serve daemon: one dd::Package + per-job simulators
/// per session, with the weight system and ε chosen at open time (the
/// paper's central accuracy knob stays a first-class, per-session setting).
/// The package persists across jobs, so the complex/algebraic weight tables,
/// unique tables and operation caches warm up with traffic — cross-request
/// table reuse is where DD packages win.
///
/// Memory governance: the SessionManager tracks the live node count across
/// all sessions; past the configured watermark, idle sessions are persisted
/// to a QCKP checkpoint blob (circuit + position + exact state snapshot) and
/// their package is torn down.  The next op on a persisted session rebuilds
/// the package and restores the state — byte-identically, QCKP round trips
/// are exact (docs/SNAPSHOT_FORMAT.md).
#pragma once

#include "core/approximation.hpp"
#include "obs/stats.hpp"
#include "qc/circuit.hpp"
#include "serve/protocol.hpp"

#include <atomic>
#include <complex>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace qadd::exec {
class ThreadPool;
}

namespace qadd::serve {

/// Per-session configuration fixed at open time.
struct SessionConfig {
  std::string name;
  std::string system = "alg"; ///< "alg" (exact ℚ[ω]) or "num" (ε-tolerance numeric)
  double epsilon = 0.0;       ///< numeric weight-unification tolerance (num only)
  qc::Qubit qubits = 0;       ///< register width of every job in this session
  std::size_t gcWatermark = 200'000; ///< per-package auto-GC threshold (nodes)
  bool maxMagnitudeNormalization = false; ///< num only: [29]'s normalization flavor
  /// Fidelity-bounded state pruning applied to every job (num only; protocol
  /// v2).  Rejected with 400 on algebraic sessions: approximated results must
  /// never enter the exact result cache.
  dd::ApproxSpec approx{};
};

/// One job: a circuit to simulate from |0...0> (or to continue from an
/// uploaded checkpoint) plus what to return.
struct JobRequest {
  qc::Circuit circuit{0};
  bool wantAmplitudes = false;  ///< return all 2^n amplitudes (width-capped)
  bool wantSnapshot = false;    ///< return a QDDS blob of the final state
  bool wantCheckpoint = false;  ///< return a QCKP blob of the final position
  std::vector<std::uint8_t> resumeCheckpoint; ///< QCKP to restore before running
  std::size_t traceEvery = 0;   ///< stream a per-gate sample every K gates (0 = off)
};

struct JobResult {
  std::size_t gatesApplied = 0;
  std::size_t finalNodes = 0;
  double seconds = 0.0;
  double fidelity = 1.0;        ///< lower bound on |<approx|exact>|^2 (1 when exact)
  std::size_t prunedNodes = 0;  ///< nodes removed by approximation during the job
  std::vector<std::complex<double>> amplitudes;
  std::vector<std::uint8_t> snapshot;
  std::vector<std::uint8_t> checkpoint;
  bool fromCache = false; ///< served from the identical-circuit result cache
};

/// Per-gate streaming callback: (gates applied so far, state DD nodes).
using GateCallback = std::function<void(std::size_t, std::size_t)>;

/// Type-erased weight-system backend of one session (implemented per System
/// in session.cpp).  Not thread-safe; the owning Session serializes access.
class SessionBackend {
public:
  virtual ~SessionBackend() = default;
  /// Simulate request.circuit (resuming from request.resumeCheckpoint when
  /// given); the session state afterwards is the job's final state.
  virtual JobResult run(const JobRequest& request, const GateCallback& onGate) = 0;
  /// QCKP blob of the current position. \throws ServeError(409) without state.
  [[nodiscard]] virtual std::vector<std::uint8_t> checkpoint() = 0;
  /// Restore from a QCKP blob (the idle-persistence path).
  virtual void restore(std::span<const std::uint8_t> bytes) = 0;
  /// Replace the session state with a QDDS vector snapshot (empty circuit).
  virtual void loadState(std::span<const std::uint8_t> qdds) = 0;
  /// QDDS blob of the current state. \throws ServeError(409) without state.
  [[nodiscard]] virtual std::vector<std::uint8_t> stateSnapshot() = 0;
  /// Amplitudes of the current state. \throws ServeError(409) without state.
  [[nodiscard]] virtual std::vector<std::complex<double>> stateAmplitudes() = 0;
  [[nodiscard]] virtual std::size_t stateNodes() const = 0;
  [[nodiscard]] virtual bool hasState() const = 0;
  [[nodiscard]] virtual obs::PackageStats stats() const = 0;
  [[nodiscard]] virtual std::size_t liveNodes() const = 0;
};

/// Build a backend for `config` (validates system/qubits).  `kernelPool` is
/// the pool the package's DD kernels fork onto, or nullptr for serial
/// kernels (the default in the daemon: jobs themselves are the unit of
/// parallelism).
[[nodiscard]] std::unique_ptr<SessionBackend> makeSessionBackend(const SessionConfig& config,
                                                                 exec::ThreadPool* kernelPool);

class SessionManager;

/// One live session.  All package access happens under mutex() via
/// SessionManager::withBackend, which also transparently restores a
/// persisted session.
class Session {
public:
  explicit Session(SessionConfig config) : config_(std::move(config)) {}

  [[nodiscard]] const SessionConfig& config() const { return config_; }
  /// Telemetry snapshot taken after the most recent job (lock-free read for
  /// the metrics path, which must not block behind a running job).
  [[nodiscard]] obs::PackageStats lastStats() const {
    const std::lock_guard<std::mutex> lock(statsMutex_);
    return lastStats_;
  }
  [[nodiscard]] std::size_t lastLiveNodes() const {
    return lastLiveNodes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t jobsCompleted() const {
    return jobsCompleted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool persisted() const { return persistedFlag_.load(std::memory_order_relaxed); }

private:
  friend class SessionManager;

  SessionConfig config_;
  std::mutex mutex_; ///< serializes backend access (one job at a time)
  std::unique_ptr<SessionBackend> backend_;
  std::vector<std::uint8_t> persistedCheckpoint_; ///< QCKP while evicted (empty = no state)
  std::atomic<bool> persistedFlag_{false};
  std::atomic<std::uint64_t> lastUsedTick_{0};
  std::atomic<std::size_t> lastLiveNodes_{0};
  std::atomic<std::uint64_t> jobsCompleted_{0};
  mutable std::mutex statsMutex_;
  obs::PackageStats lastStats_;
};

/// Owns all sessions; enforces the session-count limit and the cross-session
/// memory watermark.
class SessionManager {
public:
  struct Limits {
    std::size_t maxSessions = 64;
    /// Persist idle sessions once the summed live node count of all resident
    /// sessions exceeds this (0 disables idle persistence).
    std::size_t memoryWatermarkNodes = 0;
  };

  struct Counters {
    std::atomic<std::uint64_t> opened{0};
    std::atomic<std::uint64_t> closed{0};
    std::atomic<std::uint64_t> persisted{0};
    std::atomic<std::uint64_t> restored{0};
  };

  SessionManager(Limits limits, exec::ThreadPool* kernelPool)
      : limits_(limits), kernelPool_(kernelPool) {}

  /// \throws ServeError(409) on a duplicate name, (429) past maxSessions,
  /// (400) on an invalid config.
  std::shared_ptr<Session> open(SessionConfig config);
  /// \throws ServeError(404) on an unknown name.
  [[nodiscard]] std::shared_ptr<Session> find(const std::string& name) const;
  /// Idempotent: closing an unknown name throws (404).
  void close(const std::string& name);

  /// Run `fn` with exclusive access to the session's backend, restoring it
  /// from its idle checkpoint first when necessary; afterwards refresh the
  /// session's telemetry snapshot and apply the memory watermark.
  void withBackend(Session& session, const std::function<void(SessionBackend&)>& fn);

  [[nodiscard]] std::vector<std::shared_ptr<Session>> sessions() const;
  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] const Limits& limits() const { return limits_; }
  /// Summed live nodes over resident (non-persisted) sessions.
  [[nodiscard]] std::size_t residentNodes() const;

private:
  void enforceWatermark();

  Limits limits_;
  exec::ThreadPool* kernelPool_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  std::atomic<std::uint64_t> tick_{0};
  Counters counters_;
};

} // namespace qadd::serve
