#include "serve/protocol.hpp"

#include <array>

namespace qadd::serve {

json::Value makeOk(const json::Value& id) {
  json::Value response = json::Value::object();
  response.set("id", id);
  response.set("ok", true);
  return response;
}

json::Value makeError(const json::Value& id, int code, const std::string& message,
                      json::Value detail) {
  json::Value error = json::Value::object();
  error.set("code", code);
  error.set("message", message);
  for (auto& member : detail.members()) {
    error.set(member.first, std::move(member.second));
  }
  json::Value response = json::Value::object();
  response.set("id", id);
  response.set("ok", false);
  response.set("error", std::move(error));
  return response;
}

namespace {
constexpr std::string_view kAlphabet =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<std::int8_t, 256> decodeTable() {
  std::array<std::int8_t, 256> table{};
  table.fill(-1);
  for (std::size_t i = 0; i < kAlphabet.size(); ++i) {
    table[static_cast<unsigned char>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  }
  return table;
}
} // namespace

std::string encodeBase64(std::span<const std::uint8_t> bytes) {
  std::string out;
  out.reserve((bytes.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= bytes.size(); i += 3) {
    const std::uint32_t chunk = (static_cast<std::uint32_t>(bytes[i]) << 16) |
                                (static_cast<std::uint32_t>(bytes[i + 1]) << 8) |
                                static_cast<std::uint32_t>(bytes[i + 2]);
    out += kAlphabet[(chunk >> 18) & 63];
    out += kAlphabet[(chunk >> 12) & 63];
    out += kAlphabet[(chunk >> 6) & 63];
    out += kAlphabet[chunk & 63];
  }
  const std::size_t rest = bytes.size() - i;
  if (rest == 1) {
    const std::uint32_t chunk = static_cast<std::uint32_t>(bytes[i]) << 16;
    out += kAlphabet[(chunk >> 18) & 63];
    out += kAlphabet[(chunk >> 12) & 63];
    out += "==";
  } else if (rest == 2) {
    const std::uint32_t chunk = (static_cast<std::uint32_t>(bytes[i]) << 16) |
                                (static_cast<std::uint32_t>(bytes[i + 1]) << 8);
    out += kAlphabet[(chunk >> 18) & 63];
    out += kAlphabet[(chunk >> 12) & 63];
    out += kAlphabet[(chunk >> 6) & 63];
    out += '=';
  }
  return out;
}

std::vector<std::uint8_t> decodeBase64(std::string_view text) {
  static const std::array<std::int8_t, 256> kDecode = decodeTable();
  if (text.size() % 4 != 0) {
    throw ServeError(kBadRequest, "base64 payload length is not a multiple of 4");
  }
  std::vector<std::uint8_t> out;
  out.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    int padding = 0;
    std::uint32_t chunk = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const char c = text[i + j];
      if (c == '=') {
        // Padding is only legal in the last group's final two positions.
        if (i + 4 != text.size() || j < 2) {
          throw ServeError(kBadRequest, "misplaced base64 padding");
        }
        ++padding;
        chunk <<= 6;
        continue;
      }
      if (padding != 0) {
        throw ServeError(kBadRequest, "base64 data after padding");
      }
      const std::int8_t decoded = kDecode[static_cast<unsigned char>(c)];
      if (decoded < 0) {
        throw ServeError(kBadRequest, "invalid base64 character");
      }
      chunk = (chunk << 6) | static_cast<std::uint32_t>(decoded);
    }
    out.push_back(static_cast<std::uint8_t>((chunk >> 16) & 0xFF));
    if (padding < 2) {
      out.push_back(static_cast<std::uint8_t>((chunk >> 8) & 0xFF));
    }
    if (padding < 1) {
      out.push_back(static_cast<std::uint8_t>(chunk & 0xFF));
    }
  }
  return out;
}

} // namespace qadd::serve
