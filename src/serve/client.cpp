#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace qadd::serve {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : onEvent(std::move(other.onEvent)), fd_(std::exchange(other.fd_, -1)),
      buffer_(std::move(other.buffer_)) {}

void Client::connect(const std::string& host, std::uint16_t port, double timeoutSeconds) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  if (timeoutSeconds > 0) {
    timeval timeout{};
    timeout.tv_sec = static_cast<time_t>(timeoutSeconds);
    timeout.tv_usec = static_cast<suseconds_t>((timeoutSeconds - std::floor(timeoutSeconds)) * 1e6);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    close();
    throw std::runtime_error("bad host address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    const std::string message = std::strerror(errno);
    close();
    throw std::runtime_error("connect " + host + ":" + std::to_string(port) + ": " + message);
  }
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

void Client::sendRaw(const std::string& bytes) {
  if (fd_ < 0) {
    throw std::runtime_error("client is not connected");
  }
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw std::runtime_error(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string Client::readLine() {
  if (fd_ < 0) {
    throw std::runtime_error("client is not connected");
  }
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      return line;
    }
    char chunk[65536];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      throw std::runtime_error("connection closed by server");
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw std::runtime_error("receive timeout");
    }
    throw std::runtime_error(std::string("recv: ") + std::strerror(errno));
  }
}

json::Value Client::call(const json::Value& request) {
  sendRaw(json::dump(request) + "\n");
  while (true) {
    const json::Value frame = json::parse(readLine());
    if (frame.find("event") != nullptr) {
      if (onEvent) {
        onEvent(frame);
      }
      continue;
    }
    return frame;
  }
}

} // namespace qadd::serve
