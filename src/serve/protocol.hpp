/// \file protocol.hpp
/// Wire-protocol vocabulary of the qadd_serve daemon (docs/SERVE.md): one
/// JSON object per newline-terminated frame in each direction.  Requests
/// carry an "op" plus op-specific fields; responses echo the request "id" and
/// carry "ok" plus either the result fields or an "error" object with an
/// HTTP-style status code.  Binary payloads (QDDS snapshots, QCKP
/// checkpoints) travel base64-encoded, keeping the framing purely textual.
#pragma once

#include "serve/json.hpp"

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace qadd::serve {

/// Protocol version answered by the "hello" op; bump on breaking changes.
/// v2: "open" accepts approx_fidelity / approx_policy (numeric sessions
/// only), "run" responses carry fidelity / pruned_nodes on such sessions.
inline constexpr int kProtocolVersion = 2;

/// HTTP-style status codes carried by error responses.
enum Status : int {
  kBadRequest = 400,       ///< malformed frame / unparsable circuit / bad field
  kNotFound = 404,         ///< unknown session
  kConflict = 409,         ///< session name already open / state mismatch
  kPayloadTooLarge = 413,  ///< frame exceeded the configured limit
  kTooManyRequests = 429,  ///< admission control rejected the job (queue full)
  kInternalError = 500,    ///< unexpected server-side failure
  kUnavailable = 503,      ///< server is shutting down
};

/// Server-side failure that maps onto an error response.  Ops throw this (or
/// qc::ParseError, which the dispatcher enriches with line/column/token).
class ServeError : public std::runtime_error {
public:
  ServeError(int code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  [[nodiscard]] int code() const { return code_; }

private:
  int code_;
};

/// Start a success response: {"id":<id>,"ok":true}.  `id` is the request's
/// "id" member, echoed verbatim (null when the request carried none).
[[nodiscard]] json::Value makeOk(const json::Value& id);

/// Error response: {"id":<id>,"ok":false,"error":{"code":C,"message":M}}.
/// `detail` members (e.g. qasm line/column/token) are merged into "error".
[[nodiscard]] json::Value makeError(const json::Value& id, int code, const std::string& message,
                                    json::Value detail = json::Value::object());

// -- base64 -----------------------------------------------------------------------

[[nodiscard]] std::string encodeBase64(std::span<const std::uint8_t> bytes);

/// \throws ServeError(kBadRequest) on any non-base64 character or bad length.
[[nodiscard]] std::vector<std::uint8_t> decodeBase64(std::string_view text);

} // namespace qadd::serve
