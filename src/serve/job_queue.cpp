#include "serve/job_queue.hpp"

#include "exec/thread_pool.hpp"

namespace qadd::serve {

bool JobQueue::tryEnqueue(int priority, std::function<void()> work) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || (maxDepth_ != 0 && depth_.load(std::memory_order_relaxed) >= maxDepth_)) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    depth_.fetch_add(1, std::memory_order_relaxed);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    pending_.emplace(std::make_pair(priority, nextSeq_++), std::move(work));
  }
  // One dispatch ticket per admitted job: the pool task pops whatever is the
  // best pending job at run time, so a late high-priority arrival overtakes
  // earlier low-priority ones even though their tickets were queued first.
  pool_.submitDetached([this] { runNext(); });
  return true;
}

void JobQueue::runNext() {
  std::function<void()> work;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (pending_.empty()) {
      return; // a concurrent ticket already ran it
    }
    work = std::move(pending_.begin()->second);
    pending_.erase(pending_.begin());
  }
  work(); // job closures catch their own exceptions and answer 500
  completed_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  if (depth_.fetch_sub(1, std::memory_order_relaxed) == 1 || pending_.empty()) {
    drained_.notify_all();
  }
}

void JobQueue::close() {
  const std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
}

void JobQueue::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock, [this] { return depth_.load(std::memory_order_relaxed) == 0; });
}

} // namespace qadd::serve
