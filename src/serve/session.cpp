#include "serve/session.hpp"

#include "core/algebraic_system.hpp"
#include "core/numeric_system.hpp"
#include "core/package.hpp"
#include "io/checkpoint.hpp"
#include "io/snapshot.hpp"
#include "qc/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

namespace qadd::serve {

namespace {

/// The per-System session backend: one shared package (weight tables, unique
/// tables and op caches live here and persist across jobs) plus a simulator
/// holding the state of the most recent job.
template <class System> class BackendImpl final : public SessionBackend {
public:
  using Package = dd::Package<System>;
  using Simulator = qc::Simulator<System>;

  BackendImpl(const SessionConfig& config, typename System::Config systemConfig,
              exec::ThreadPool* kernelPool)
      : config_(config),
        package_(std::make_shared<Package>(static_cast<dd::Qubit>(config.qubits), systemConfig)) {
    package_->setExecutor(kernelPool);
  }

  JobResult run(const JobRequest& request, const GateCallback& onGate) override {
    if (request.circuit.qubits() != config_.qubits) {
      throw ServeError(kBadRequest, "circuit width " + std::to_string(request.circuit.qubits()) +
                                        " does not match the session's " +
                                        std::to_string(config_.qubits) + " qubits");
    }
    const auto start = std::chrono::steady_clock::now();
    Simulator simulator = makeSimulator(request.circuit);
    if (!request.resumeCheckpoint.empty()) {
      try {
        simulator.resumeFrom(std::span<const std::uint8_t>(request.resumeCheckpoint));
      } catch (const io::SnapshotError& error) {
        throw ServeError(kBadRequest, std::string("resume rejected: ") + error.what());
      }
    }
    JobResult result;
    const std::size_t resumedAt = simulator.gateIndex();
    if (request.traceEvery != 0 && onGate) {
      simulator.run([&](Simulator& sim) {
        if ((sim.gateIndex() - resumedAt) % request.traceEvery == 0) {
          onGate(sim.gateIndex(), sim.stateNodes());
        }
      });
    } else {
      simulator.run();
    }
    result.gatesApplied = simulator.gateIndex() - resumedAt;
    result.finalNodes = simulator.stateNodes();
    if constexpr (!System::kExact) {
      result.fidelity = simulator.approxFidelity();
      result.prunedNodes = simulator.approxPrunedNodes();
    }
    if (request.wantAmplitudes) {
      result.amplitudes = package_->amplitudes(simulator.state());
    }
    if (request.wantSnapshot) {
      result.snapshot = io::saveVector(*package_, simulator.state());
    }
    if (request.wantCheckpoint) {
      result.checkpoint = simulator.saveCheckpoint();
    }
    // Adopt the job's final state as the session state (the previous
    // simulator's destructor drops its claim on the old one).
    current_.emplace(std::move(simulator));
    result.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return result;
  }

  [[nodiscard]] std::vector<std::uint8_t> checkpoint() override {
    return requireState().saveCheckpoint();
  }

  void restore(std::span<const std::uint8_t> bytes) override {
    io::CheckpointData data;
    try {
      data = io::readCheckpoint(bytes);
    } catch (const io::SnapshotError& error) {
      throw ServeError(kBadRequest, std::string("checkpoint rejected: ") + error.what());
    }
    qc::Circuit circuit(0);
    try {
      circuit = qc::Circuit::fromText(data.circuitText);
    } catch (const std::exception& error) {
      throw ServeError(kBadRequest, std::string("checkpoint circuit rejected: ") + error.what());
    }
    if (circuit.qubits() != config_.qubits) {
      throw ServeError(kConflict, "checkpoint width does not match the session");
    }
    Simulator simulator = makeSimulator(std::move(circuit));
    try {
      simulator.resumeFrom(bytes);
    } catch (const io::SnapshotError& error) {
      throw ServeError(kBadRequest, std::string("checkpoint rejected: ") + error.what());
    }
    current_.emplace(std::move(simulator));
  }

  void loadState(std::span<const std::uint8_t> qdds) override {
    // Wrap the bare QDDS vector in a synthetic position-zero checkpoint over
    // the empty circuit and reuse the restore path (and its validation).
    io::CheckpointData data;
    data.gateIndex = 0;
    data.circuitText = qc::Circuit(config_.qubits).toText();
    data.snapshot.assign(qdds.begin(), qdds.end());
    restore(io::writeCheckpoint(data));
  }

  [[nodiscard]] std::vector<std::uint8_t> stateSnapshot() override {
    Simulator& simulator = requireState();
    return io::saveVector(*package_, simulator.state());
  }

  [[nodiscard]] std::vector<std::complex<double>> stateAmplitudes() override {
    Simulator& simulator = requireState();
    return package_->amplitudes(simulator.state());
  }

  [[nodiscard]] std::size_t stateNodes() const override {
    return current_.has_value() ? current_->stateNodes() : 0;
  }

  [[nodiscard]] bool hasState() const override { return current_.has_value(); }

  [[nodiscard]] obs::PackageStats stats() const override { return package_->stats(); }

  [[nodiscard]] std::size_t liveNodes() const override { return package_->allocatedNodes(); }

private:
  Simulator makeSimulator(qc::Circuit circuit) {
    typename Simulator::Options options;
    options.gcNodeThreshold = config_.gcWatermark;
    Simulator simulator(package_, std::move(circuit), options);
    if constexpr (!System::kExact) {
      if (config_.approx.policy != dd::ApproxPolicy::None) {
        simulator.setApproximation(config_.approx);
      }
    }
    return simulator;
  }

  Simulator& requireState() {
    if (!current_.has_value()) {
      throw ServeError(kConflict, "session has no state yet (run a job first)");
    }
    return *current_;
  }

  SessionConfig config_;
  std::shared_ptr<Package> package_;
  std::optional<Simulator> current_; ///< state of the most recent job
};

} // namespace

std::unique_ptr<SessionBackend> makeSessionBackend(const SessionConfig& config,
                                                   exec::ThreadPool* kernelPool) {
  if (config.qubits == 0 || config.qubits > 64) {
    throw ServeError(kBadRequest, "qubits must be in [1, 64]");
  }
  if (config.epsilon < 0.0) {
    throw ServeError(kBadRequest, "epsilon must be non-negative");
  }
  if (config.approx.policy != dd::ApproxPolicy::None &&
      (!(config.approx.budget > 0.0) || config.approx.budget >= 1.0)) {
    throw ServeError(kBadRequest, "approx_fidelity must be in (0, 1)");
  }
  if (config.system == "alg") {
    if (config.epsilon != 0.0) {
      throw ServeError(kBadRequest, "the algebraic system is exact: epsilon must be 0");
    }
    if (config.approx.policy != dd::ApproxPolicy::None) {
      throw ServeError(kBadRequest,
                       "the algebraic system is exact: fidelity-bounded approximation "
                       "(approx_fidelity/approx_policy) is not supported on \"alg\" sessions");
    }
    dd::AlgebraicSystem::Config systemConfig;
    systemConfig.gcWatermark = config.gcWatermark;
    return std::make_unique<BackendImpl<dd::AlgebraicSystem>>(config, systemConfig, kernelPool);
  }
  if (config.system == "num") {
    dd::NumericSystem::Config systemConfig;
    systemConfig.epsilon = config.epsilon;
    systemConfig.normalization = config.maxMagnitudeNormalization
                                     ? dd::NumericSystem::Normalization::MaxMagnitude
                                     : dd::NumericSystem::Normalization::LeftmostNonzero;
    systemConfig.gcWatermark = config.gcWatermark;
    return std::make_unique<BackendImpl<dd::NumericSystem>>(config, systemConfig, kernelPool);
  }
  throw ServeError(kBadRequest, "unknown weight system '" + config.system +
                                    "' (expected \"alg\" or \"num\")");
}

// -- SessionManager ---------------------------------------------------------------

std::shared_ptr<Session> SessionManager::open(SessionConfig config) {
  if (config.name.empty()) {
    throw ServeError(kBadRequest, "session name must not be empty");
  }
  auto session = std::make_shared<Session>(config);
  {
    // Build the backend outside the manager lock?  No: construction is cheap
    // (empty tables), and holding the lock keeps the name reservation atomic.
    const std::lock_guard<std::mutex> lock(mutex_);
    if (sessions_.contains(config.name)) {
      throw ServeError(kConflict, "session '" + config.name + "' is already open");
    }
    if (sessions_.size() >= limits_.maxSessions) {
      throw ServeError(kTooManyRequests,
                       "session limit reached (" + std::to_string(limits_.maxSessions) + ")");
    }
    session->backend_ = makeSessionBackend(config, kernelPool_); // validates config
    session->lastUsedTick_.store(tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                                 std::memory_order_relaxed);
    sessions_.emplace(config.name, session);
  }
  counters_.opened.fetch_add(1, std::memory_order_relaxed);
  return session;
}

std::shared_ptr<Session> SessionManager::find(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    throw ServeError(kNotFound, "unknown session '" + name + "'");
  }
  return it->second;
}

void SessionManager::close(const std::string& name) {
  std::shared_ptr<Session> victim;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(name);
    if (it == sessions_.end()) {
      throw ServeError(kNotFound, "unknown session '" + name + "'");
    }
    victim = std::move(it->second);
    sessions_.erase(it);
  }
  counters_.closed.fetch_add(1, std::memory_order_relaxed);
  // Tear the package down outside the manager lock; a job still running on
  // the session finishes first (it holds the session mutex and a shared_ptr).
  const std::lock_guard<std::mutex> lock(victim->mutex_);
  victim->backend_.reset();
  victim->persistedCheckpoint_.clear();
  victim->persistedFlag_.store(false, std::memory_order_relaxed);
  victim->lastLiveNodes_.store(0, std::memory_order_relaxed);
}

void SessionManager::withBackend(Session& session,
                                 const std::function<void(SessionBackend&)>& fn) {
  {
    const std::lock_guard<std::mutex> lock(session.mutex_);
    if (session.backend_ == nullptr) {
      // Rebuild the package and restore the idle checkpoint (if the session
      // held state when it was persisted).
      session.backend_ = makeSessionBackend(session.config_, kernelPool_);
      if (!session.persistedCheckpoint_.empty()) {
        session.backend_->restore(std::span<const std::uint8_t>(session.persistedCheckpoint_));
        session.persistedCheckpoint_.clear();
        counters_.restored.fetch_add(1, std::memory_order_relaxed);
      }
      session.persistedFlag_.store(false, std::memory_order_relaxed);
    }
    session.lastUsedTick_.store(tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                                std::memory_order_relaxed);
    fn(*session.backend_);
    // Refresh the lock-free telemetry snapshot while we still hold the
    // session (the /metrics path reads these without blocking on jobs).
    {
      const std::lock_guard<std::mutex> statsLock(session.statsMutex_);
      session.lastStats_ = session.backend_->stats();
    }
    session.lastLiveNodes_.store(session.backend_->liveNodes(), std::memory_order_relaxed);
    session.jobsCompleted_.fetch_add(1, std::memory_order_relaxed);
  }
  enforceWatermark();
}

std::vector<std::shared_ptr<Session>> SessionManager::sessions() const {
  std::vector<std::shared_ptr<Session>> out;
  const std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(sessions_.size());
  for (const auto& [name, session] : sessions_) {
    out.push_back(session);
  }
  return out;
}

std::size_t SessionManager::residentNodes() const {
  std::size_t total = 0;
  for (const auto& session : sessions()) {
    if (!session->persisted()) {
      total += session->lastLiveNodes();
    }
  }
  return total;
}

void SessionManager::enforceWatermark() {
  if (limits_.memoryWatermarkNodes == 0) {
    return;
  }
  while (residentNodes() > limits_.memoryWatermarkNodes) {
    // Pick the least-recently-used resident session with a live package.
    std::shared_ptr<Session> victim;
    std::uint64_t oldest = UINT64_MAX;
    for (const auto& session : sessions()) {
      if (session->persisted()) {
        continue;
      }
      const std::uint64_t tick = session->lastUsedTick_.load(std::memory_order_relaxed);
      if (tick < oldest) {
        oldest = tick;
        victim = session;
      }
    }
    if (victim == nullptr) {
      return;
    }
    std::unique_lock<std::mutex> lock(victim->mutex_, std::try_to_lock);
    if (!lock.owns_lock()) {
      // A job is running on the LRU candidate; it will re-run the watermark
      // check when it completes.  Don't block the finishing job on it.
      return;
    }
    if (victim->backend_ == nullptr) {
      victim->persistedFlag_.store(true, std::memory_order_relaxed);
      continue;
    }
    if (victim->backend_->hasState()) {
      victim->persistedCheckpoint_ = victim->backend_->checkpoint();
    } else {
      victim->persistedCheckpoint_.clear();
    }
    victim->backend_.reset();
    victim->persistedFlag_.store(true, std::memory_order_relaxed);
    victim->lastLiveNodes_.store(0, std::memory_order_relaxed);
    counters_.persisted.fetch_add(1, std::memory_order_relaxed);
  }
}

} // namespace qadd::serve
