/// \file server.hpp
/// The qadd_serve daemon core: a poll()-based TCP accept/dispatch loop
/// speaking the line-delimited JSON protocol of docs/SERVE.md.  Light ops
/// (hello/ping/open/close/metrics/shutdown) are answered inline on the loop
/// thread; package-touching ops (run/state/checkpoint/loadstate) go through
/// the admission-controlled JobQueue onto a thread pool, one session at a
/// time per session.  Identical algebraic jobs are coalesced against a
/// bounded result cache: the first arrival computes, concurrent duplicates
/// wait for its result, later duplicates are served from cache — exactness
/// is what makes the cached answer the correct answer.
#pragma once

#include "serve/job_queue.hpp"
#include "serve/session.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

namespace qadd::serve {

struct ServerConfig {
  std::string bindAddress = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = let the kernel pick (port() reports it)
  std::size_t workers = 4; ///< job-execution threads
  std::size_t maxQueueDepth = 64; ///< admission cap, pending+running (0 = unlimited)
  std::size_t maxSessions = 64;
  std::size_t memoryWatermarkNodes = 0;    ///< idle-session persistence watermark (0 = off)
  std::size_t maxFrameBytes = 8 << 20;     ///< request frames beyond this → 413 + close
  double idleTimeoutSeconds = 300.0;       ///< close quiet connections (0 = never)
  double writeStallSeconds = 30.0;         ///< drop connections that stop reading (0 = never)
  std::size_t resultCacheEntries = 128;    ///< identical-job result cache size (0 = off)
  std::uint32_t maxAmplitudeQubits = 20;   ///< refuse 2^n amplitude dumps beyond this width
  bool kernelParallel = false; ///< also fork DD kernels onto the pool (see docs/SERVE.md)
};

/// Monotonic counters exposed via /metrics; all relaxed (telemetry only).
struct ServerCounters {
  std::atomic<std::uint64_t> connectionsAccepted{0};
  std::atomic<std::uint64_t> connectionsClosed{0};
  std::atomic<std::uint64_t> droppedConnections{0}; ///< write-stall force-closes
  std::atomic<std::uint64_t> framesIn{0};
  std::atomic<std::uint64_t> framesOut{0};
  std::atomic<std::uint64_t> malformedFrames{0};
  std::atomic<std::uint64_t> oversizedFrames{0};
  std::atomic<std::uint64_t> jobsFailed{0}; ///< jobs answered with a 5xx
  std::atomic<std::uint64_t> resultCacheHits{0};
  std::atomic<std::uint64_t> resultCacheCoalesced{0}; ///< followers that waited on a leader
};

class Server {
public:
  explicit Server(ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen and spawn the event-loop thread.
  /// \throws std::runtime_error when the socket cannot be set up.
  void start();

  /// The bound port (after start(); resolves config.port == 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Graceful shutdown: refuse new work (503), drain admitted jobs, flush
  /// response buffers, close.  Idempotent; also run by the destructor.
  void stop();

  /// Async shutdown trigger (the "shutdown" op): unblocks waitShutdown().
  void requestShutdown();
  /// Block until requestShutdown()/stop(); the daemon main sits here.
  void waitShutdown();

  [[nodiscard]] const ServerCounters& counters() const { return counters_; }
  [[nodiscard]] SessionManager& sessionManager() { return *sessions_; }
  [[nodiscard]] JobQueue& jobQueue() { return *queue_; }
  [[nodiscard]] const ServerConfig& config() const { return config_; }

  /// Prometheus exposition: the obs families over the merged per-session
  /// package stats plus the qadd_serve_* families.  Thread-safe and
  /// non-blocking (reads the sessions' post-job telemetry snapshots).
  [[nodiscard]] std::string renderMetrics() const;

private:
  struct Connection;
  struct CacheEntry;
  class ResultCache;

  void eventLoop();
  void wake();
  void acceptPending();
  void handleReadable(const std::shared_ptr<Connection>& connection);
  void processFrames(const std::shared_ptr<Connection>& connection);
  bool flushWrites(const std::shared_ptr<Connection>& connection);
  void closeConnection(int fd, bool dropped);
  void handleFrame(const std::shared_ptr<Connection>& connection, std::string_view line);
  void send(const std::shared_ptr<Connection>& connection, const json::Value& response);

  // Op handlers (inline ones run on the loop thread, job ones on the pool).
  [[nodiscard]] json::Value opHello(const json::Value& id) const;
  [[nodiscard]] json::Value opOpen(const json::Value& id, const json::Value& request);
  [[nodiscard]] json::Value opClose(const json::Value& id, const json::Value& request);
  [[nodiscard]] json::Value opMetrics(const json::Value& id) const;
  void runJob(const std::shared_ptr<Connection>& connection, const json::Value& request);
  [[nodiscard]] json::Value executeJob(const std::shared_ptr<Connection>& connection,
                                       const json::Value& id, const json::Value& request);
  [[nodiscard]] json::Value opRun(const std::shared_ptr<Connection>& connection,
                                  const json::Value& id, const json::Value& request);

  ServerConfig config_;
  ServerCounters counters_;
  std::unique_ptr<exec::ThreadPool> pool_;
  std::unique_ptr<SessionManager> sessions_;
  std::unique_ptr<JobQueue> queue_;
  std::unique_ptr<ResultCache> cache_;

  int listenFd_ = -1;
  int wakePipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  std::thread loop_;
  std::unordered_map<int, std::shared_ptr<Connection>> connections_; ///< loop thread only

  std::atomic<bool> stopping_{false};  ///< graceful-stop entered: new work → 503
  std::atomic<bool> drained_{false};   ///< job queue fully drained (flush may finish)
  std::mutex lifecycleMutex_;
  std::condition_variable shutdownCv_;
  bool shutdownRequested_ = false;
  bool started_ = false;
  bool stopped_ = false;
};

} // namespace qadd::serve
