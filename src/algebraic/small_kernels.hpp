/// \file small_kernels.hpp
/// Shared machinery for the int64/int128 fast-path kernels of the Z[omega] /
/// Q[omega] hot operations (add, sub, mul, norm, Algorithm 1 canonicalization,
/// Euclidean division).
///
/// Each kernel loads the BigInt coefficients into machine words when they are
/// provably small enough that every intermediate fits in a signed 128-bit
/// accumulator, runs the ring formula on hardware integers, and writes the
/// results back through the (allocation-free, under SSO) small-value BigInt
/// constructors.  When any coefficient exceeds the per-kernel bit bound the
/// operation falls back to the general BigInt path — results are identical
/// either way, which tests/test_fuzz.cpp checks differentially.
///
/// The kernels are compiled only under QADD_BIGINT_SSO and can additionally be
/// disabled at runtime via qadd::detail::setSmallFastPaths(false).
#pragma once

#include "bigint/bigint.hpp"

#include <atomic>
#include <cstdint>

namespace qadd::alg::detail {

/// Process-wide tally of fast-path engagements, surfaced through
/// obs::WeightTableStats as `alg.smallPathHit` / `alg.smallPathSpill`.
/// `hits` counts ring operations served entirely by a word kernel; `spills`
/// counts operations that probed the fast path but fell back to BigInt
/// because a coefficient exceeded the kernel's bit bound.  The counters are
/// atomic because the tally is shared by every DD package in the process and
/// the parallel ε-sweep executor (qadd::exec) runs packages on concurrent
/// workers; on x86 the increment is the same `lock xadd` either way, and the
/// algebraic reference of a sweep runs serially, so contention is nil.
struct SmallPathStats {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> spills{0};
};

[[nodiscard]] inline SmallPathStats& smallPathStats() noexcept {
  static SmallPathStats stats;
  return stats;
}

#if QADD_BIGINT_SSO

using I128 = __int128;

/// A Z[omega] value whose four coefficients fit in int64 within a kernel's
/// bit bound.
struct SmallZ {
  std::int64_t a;
  std::int64_t b;
  std::int64_t c;
  std::int64_t d;
};

/// Load `x` into `out` iff |x| < 2^maxBits (maxBits <= 62, so the value also
/// fits int64).  The bound is what makes the caller's int128 accumulation
/// overflow-free; see each kernel for its arithmetic-derived bound.
[[nodiscard]] inline bool load(const BigInt& x, std::int64_t& out,
                               std::size_t maxBits) noexcept {
  if (x.bitLength() > maxBits) {
    return false;
  }
  out = x.toInt64();
  return true;
}

/// Load all four coefficients of a Z[omega] value under a common bound.
template <typename ZOmegaT>
[[nodiscard]] bool load(const ZOmegaT& z, SmallZ& out, std::size_t maxBits) noexcept {
  return load(z.a(), out.a, maxBits) && load(z.b(), out.b, maxBits) &&
         load(z.c(), out.c, maxBits) && load(z.d(), out.d, maxBits);
}

/// Round-to-nearest division with ties away from zero — the int128 mirror of
/// BigInt::divRound.  \pre den != 0 and |num % den| < 2^126 (so doubling the
/// remainder cannot overflow).
[[nodiscard]] inline I128 divRoundI128(I128 num, I128 den) noexcept {
  I128 quotient = num / den;
  const I128 remainder = num % den;
  if (remainder != 0) {
    const I128 absRem = remainder < 0 ? -remainder : remainder;
    const I128 absDen = den < 0 ? -den : den;
    if (absRem * 2 >= absDen) {
      quotient += ((num < 0) == (den < 0)) ? 1 : -1;
    }
  }
  return quotient;
}

#endif // QADD_BIGINT_SSO

} // namespace qadd::alg::detail
