/// \file euclidean.hpp
/// Euclidean structure of Z[omega] and the canonical-associate machinery that
/// the paper's GCD normalization scheme (Algorithm 3) relies on.
///
/// Z[omega] is a Euclidean ring under E(z) = |N_{Q[omega]/Q}(z)| (Section
/// IV-B): division with nearest-integer rounding of each coordinate yields a
/// remainder with E(r) <= (9/16) E(z2), so the classic Euclidean algorithm
/// terminates and GCDs exist.  GCDs are unique only up to units; the
/// `canonicalAssociate*` helpers implement the paper's properties (a)-(c)
/// (k = 0, minimal norm pair, lexicographically minimal coefficient rotation)
/// to pin down one representative deterministically.
#pragma once

#include "algebraic/qomega.hpp"
#include "algebraic/zomega.hpp"

#include <span>

namespace qadd::alg {

/// Nearest-integer quotient of z1/z2 in Q[omega], rounded coordinate-wise.
/// \pre z2 != 0
[[nodiscard]] ZOmega euclideanQuotient(const ZOmega& z1, const ZOmega& z2);

/// Remainder z1 - euclideanQuotient(z1,z2) * z2; satisfies
/// E(rem) <= (9/16) E(z2) < E(z2).
[[nodiscard]] ZOmega euclideanRemainder(const ZOmega& z1, const ZOmega& z2);

/// GCD in Z[omega] via the Euclidean algorithm (up to units; deterministic for
/// given inputs).  gcd(0,0) = 0.
[[nodiscard]] ZOmega gcdZOmega(ZOmega z1, ZOmega z2);

/// Exact division in Z[omega]; returns false when z2 does not divide z1.
/// \pre z2 != 0
[[nodiscard]] bool tryExactDivide(const ZOmega& z1, const ZOmega& z2, ZOmega& quotient);

/// The canonical associate of a non-zero Q[omega] value z: the unique
/// z' = z * mu (mu a unit of D[omega]) satisfying the paper's properties
///  (a) z' in Z[omega] with minimal denominator exponent (k = 0, not
///      divisible by sqrt 2),
///  (b) minimal norm pair among associates: with N(z') = u + v sqrt2, one of
///      the derived pairs (|u|,|v|), (|2v|,|u|) is lexicographically minimal
///      after factoring out powers of two,
///  (c) (|a|,|b|,|c|,|d|) lexicographically minimal over the eight rotations
///      z' * omega^j, preferring positive d.
/// \pre z != 0
[[nodiscard]] ZOmega canonicalAssociate(const QOmega& z);

/// The unit mu with canonicalAssociate(z) == z * mu (exact in Q[omega]).
/// \pre z != 0
[[nodiscard]] QOmega canonicalAssociateUnit(const QOmega& z);

/// GCD of a set of D[omega] values, returned as the canonical associate
/// (so the result is deterministic and unique).  Zero entries are ignored;
/// all-zero input yields zero.
[[nodiscard]] ZOmega gcdDyadic(std::span<const QOmega> values);

} // namespace qadd::alg
