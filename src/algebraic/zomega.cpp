#include "algebraic/zomega.hpp"

#include "algebraic/small_kernels.hpp"

#include <cassert>
#include <cmath>
#include <ostream>
#include <sstream>

namespace qadd::alg {

#if QADD_BIGINT_SSO
namespace {

using detail::I128;
using detail::SmallZ;

/// Coefficients below 2^62 keep int64 sums below 2^63 and keep the four-term
/// int128 accumulations of mul/norm below 2^126.
constexpr std::size_t kAddBits = 62;
constexpr std::size_t kMulBits = 62;
/// euclideanValue squares the norm components (themselves quadratic in the
/// coefficients):  u, |v| <= 4 * (2^30)^2 = 2^62, so u^2, 2v^2 < 2^126.
constexpr std::size_t kEuclideanBits = 30;

} // namespace
#endif

std::size_t ZOmega::maxCoefficientBits() const noexcept {
  return std::max(std::max(a_.bitLength(), b_.bitLength()),
                  std::max(c_.bitLength(), d_.bitLength()));
}

ZOmega ZOmega::operator-() const { return {-a_, -b_, -c_, -d_}; }

ZOmega& ZOmega::operator+=(const ZOmega& rhs) {
#if QADD_BIGINT_SSO
  if (qadd::detail::smallFastPathsEnabled()) {
    SmallZ x;
    SmallZ y;
    if (detail::load(*this, x, kAddBits) && detail::load(rhs, y, kAddBits)) {
      ++detail::smallPathStats().hits;
      a_ = BigInt{x.a + y.a};
      b_ = BigInt{x.b + y.b};
      c_ = BigInt{x.c + y.c};
      d_ = BigInt{x.d + y.d};
      return *this;
    }
    ++detail::smallPathStats().spills;
  }
#endif
  a_ += rhs.a_;
  b_ += rhs.b_;
  c_ += rhs.c_;
  d_ += rhs.d_;
  return *this;
}

ZOmega& ZOmega::operator-=(const ZOmega& rhs) {
#if QADD_BIGINT_SSO
  if (qadd::detail::smallFastPathsEnabled()) {
    SmallZ x;
    SmallZ y;
    if (detail::load(*this, x, kAddBits) && detail::load(rhs, y, kAddBits)) {
      ++detail::smallPathStats().hits;
      a_ = BigInt{x.a - y.a};
      b_ = BigInt{x.b - y.b};
      c_ = BigInt{x.c - y.c};
      d_ = BigInt{x.d - y.d};
      return *this;
    }
    ++detail::smallPathStats().spills;
  }
#endif
  a_ -= rhs.a_;
  b_ -= rhs.b_;
  c_ -= rhs.c_;
  d_ -= rhs.d_;
  return *this;
}

ZOmega& ZOmega::operator*=(const ZOmega& rhs) {
#if QADD_BIGINT_SSO
  if (qadd::detail::smallFastPathsEnabled()) {
    SmallZ x;
    SmallZ y;
    if (detail::load(*this, x, kMulBits) && detail::load(rhs, y, kMulBits)) {
      // Four products of < 2^62 magnitudes sum to < 2^126: no int128 overflow.
      ++detail::smallPathStats().hits;
      const I128 a = I128{x.a} * y.d + I128{x.b} * y.c + I128{x.c} * y.b + I128{x.d} * y.a;
      const I128 b = I128{x.b} * y.d + I128{x.c} * y.c + I128{x.d} * y.b - I128{x.a} * y.a;
      const I128 c = I128{x.c} * y.d + I128{x.d} * y.c - I128{x.a} * y.b - I128{x.b} * y.a;
      const I128 d = I128{x.d} * y.d - I128{x.a} * y.c - I128{x.b} * y.b - I128{x.c} * y.a;
      a_ = BigInt::fromInt128(a);
      b_ = BigInt::fromInt128(b);
      c_ = BigInt::fromInt128(c);
      d_ = BigInt::fromInt128(d);
      return *this;
    }
    ++detail::smallPathStats().spills;
  }
#endif
  // Expand on the basis {w^3, w^2, w, 1} using w^4 = -1:
  //   w^3*w^3 = -w^2, w^3*w^2 = -w, w^3*w = -1, w^2*w^2 = -1, w^2*w = w^3.
  const BigInt& a1 = a_;
  const BigInt& b1 = b_;
  const BigInt& c1 = c_;
  const BigInt& d1 = d_;
  const BigInt& a2 = rhs.a_;
  const BigInt& b2 = rhs.b_;
  const BigInt& c2 = rhs.c_;
  const BigInt& d2 = rhs.d_;
  BigInt a = a1 * d2 + b1 * c2 + c1 * b2 + d1 * a2;
  BigInt b = b1 * d2 + c1 * c2 + d1 * b2 - a1 * a2;
  BigInt c = c1 * d2 + d1 * c2 - a1 * b2 - b1 * a2;
  BigInt d = d1 * d2 - a1 * c2 - b1 * b2 - c1 * a2;
  a_ = std::move(a);
  b_ = std::move(b);
  c_ = std::move(c);
  d_ = std::move(d);
  return *this;
}

ZOmega ZOmega::scaled(const BigInt& factor) const {
  return {a_ * factor, b_ * factor, c_ * factor, d_ * factor};
}

ZOmega ZOmega::conj() const { return {-c_, -b_, -a_, d_}; }

ZOmega ZOmega::sqrt2Conj() const { return {c_, -b_, a_, d_}; }

ZOmega ZOmega::timesOmega() const {
  // w*(a w^3 + b w^2 + c w + d) = -a + b w^3 + c w^2 + d w.
  return {b_, c_, d_, -a_};
}

ZOmega ZOmega::timesSqrt2() const {
  // (w - w^3)*(a w^3 + b w^2 + c w + d)
  //   = (b-d) w^3 + (c+a) w^2 + (b+d) w + (c-a).
  return {b_ - d_, c_ + a_, b_ + d_, c_ - a_};
}

bool ZOmega::divisibleBySqrt2() const noexcept {
  return (a_.isOdd() == c_.isOdd()) && (b_.isOdd() == d_.isOdd());
}

ZOmega ZOmega::divideBySqrt2() const {
  assert(divisibleBySqrt2());
  // Inverse of timesSqrt2: solve (b'-d', c'+a', b'+d', c'-a') = (a, b, c, d).
  BigInt a = (b_ - d_).shiftRight(1);
  BigInt b = (a_ + c_).shiftRight(1);
  BigInt c = (b_ + d_).shiftRight(1);
  BigInt d = (c_ - a_).shiftRight(1);
  // shiftRight truncates magnitudes toward zero, which matches exact halving
  // because the preconditions guarantee the sums/differences are even.
  return {std::move(a), std::move(b), std::move(c), std::move(d)};
}

void ZOmega::norm(BigInt& u, BigInt& v) const {
#if QADD_BIGINT_SSO
  if (qadd::detail::smallFastPathsEnabled()) {
    SmallZ z;
    if (detail::load(*this, z, kMulBits)) {
      ++detail::smallPathStats().hits;
      u = BigInt::fromInt128(I128{z.a} * z.a + I128{z.b} * z.b + I128{z.c} * z.c +
                             I128{z.d} * z.d);
      v = BigInt::fromInt128(I128{z.a} * z.b + I128{z.b} * z.c + I128{z.c} * z.d -
                             I128{z.d} * z.a);
      return;
    }
    ++detail::smallPathStats().spills;
  }
#endif
  // N(z) = z*conj(z) = (a^2+b^2+c^2+d^2) + (ab + bc + cd - da) * sqrt(2).
  u = a_ * a_ + b_ * b_ + c_ * c_ + d_ * d_;
  v = a_ * b_ + b_ * c_ + c_ * d_ - d_ * a_;
}

BigInt ZOmega::euclideanValue() const {
#if QADD_BIGINT_SSO
  if (qadd::detail::smallFastPathsEnabled()) {
    SmallZ z;
    if (detail::load(*this, z, kEuclideanBits)) {
      ++detail::smallPathStats().hits;
      const I128 u = I128{z.a} * z.a + I128{z.b} * z.b + I128{z.c} * z.c + I128{z.d} * z.d;
      const I128 v = I128{z.a} * z.b + I128{z.b} * z.c + I128{z.c} * z.d - I128{z.d} * z.a;
      const I128 value = u * u - 2 * (v * v);
      return BigInt::fromInt128(value < 0 ? -value : value);
    }
    ++detail::smallPathStats().spills;
  }
#endif
  BigInt u;
  BigInt v;
  norm(u, v);
  return (u * u - (v * v).shiftLeft(1)).abs();
}

std::complex<double> ZOmega::toComplex() const {
  // w = (1+i)/sqrt2, w^2 = i, w^3 = (-1+i)/sqrt2.
  constexpr double invSqrt2 = 0.70710678118654752440;
  const double av = a_.toDouble();
  const double bv = b_.toDouble();
  const double cv = c_.toDouble();
  const double dv = d_.toDouble();
  return {dv + (cv - av) * invSqrt2, bv + (cv + av) * invSqrt2};
}

std::string ZOmega::toString() const {
  if (isZero()) {
    return "0";
  }
  std::ostringstream os;
  bool first = true;
  const auto term = [&](const BigInt& coefficient, const char* basis) {
    if (coefficient.isZero()) {
      return;
    }
    if (!first) {
      os << (coefficient.isNegative() ? " - " : " + ");
    } else if (coefficient.isNegative()) {
      os << "-";
    }
    first = false;
    const BigInt magnitude = coefficient.abs();
    if (!magnitude.isOne() || basis[0] == '\0') {
      os << magnitude.toString();
    }
    os << basis;
  };
  term(a_, "w3");
  term(b_, "w2");
  term(c_, "w");
  term(d_, "");
  return os.str();
}

std::size_t ZOmega::hash() const noexcept {
  std::size_t h = a_.hash();
  h = h * 31 + b_.hash();
  h = h * 31 + c_.hash();
  h = h * 31 + d_.hash();
  return h;
}

std::ostream& operator<<(std::ostream& os, const ZOmega& value) {
  return os << value.toString();
}

} // namespace qadd::alg
