/// \file zomega.hpp
/// The ring Z[omega] of cyclotomic integers for omega = e^{i*pi/4}.
///
/// Every element is written on the integral basis {omega^3, omega^2, omega, 1}
/// as  z = a*omega^3 + b*omega^2 + c*omega + d  with BigInt coefficients.
/// This is the integer layer underneath the paper's D[omega] / Q[omega]
/// representation (Section IV-A): sqrt(2) = omega - omega^3 and i = omega^2
/// live here, and the Euclidean structure of Z[omega] (Section IV-B, option 2)
/// is what makes GCD-based normalization possible.
#pragma once

#include "bigint/bigint.hpp"

#include <complex>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace qadd::alg {

/// An element of Z[omega], omega = (1+i)/sqrt(2).
///
/// Regular value type with exact ring arithmetic.  The basis powers satisfy
/// omega^4 = -1, which drives all the multiplication identities below.
class ZOmega {
public:
  /// Zero.
  ZOmega() = default;

  /// The rational integer d.
  explicit ZOmega(BigInt d) : d_(std::move(d)) {}

  /// a*omega^3 + b*omega^2 + c*omega + d.
  ZOmega(BigInt a, BigInt b, BigInt c, BigInt d)
      : a_(std::move(a)), b_(std::move(b)), c_(std::move(c)), d_(std::move(d)) {}

  // -- named constants --------------------------------------------------------

  [[nodiscard]] static ZOmega zero() { return {}; }
  [[nodiscard]] static ZOmega one() { return ZOmega{BigInt{1}}; }
  /// omega = e^{i pi/4}.
  [[nodiscard]] static ZOmega omega() { return {BigInt{0}, BigInt{0}, BigInt{1}, BigInt{0}}; }
  /// i = omega^2.
  [[nodiscard]] static ZOmega imaginaryUnit() { return {BigInt{0}, BigInt{1}, BigInt{0}, BigInt{0}}; }
  /// sqrt(2) = omega - omega^3.
  [[nodiscard]] static ZOmega sqrt2() { return {BigInt{-1}, BigInt{0}, BigInt{1}, BigInt{0}}; }

  // -- observers ---------------------------------------------------------------

  [[nodiscard]] const BigInt& a() const noexcept { return a_; }
  [[nodiscard]] const BigInt& b() const noexcept { return b_; }
  [[nodiscard]] const BigInt& c() const noexcept { return c_; }
  [[nodiscard]] const BigInt& d() const noexcept { return d_; }

  [[nodiscard]] bool isZero() const noexcept {
    return a_.isZero() && b_.isZero() && c_.isZero() && d_.isZero();
  }
  [[nodiscard]] bool isOne() const noexcept {
    return a_.isZero() && b_.isZero() && c_.isZero() && d_.isOne();
  }

  /// Largest coefficient bit width; the quantity whose growth explains the
  /// paper's GSE run-time blow-up (Section V-B).
  [[nodiscard]] std::size_t maxCoefficientBits() const noexcept;

  // -- ring arithmetic ----------------------------------------------------------

  [[nodiscard]] ZOmega operator-() const;
  ZOmega& operator+=(const ZOmega& rhs);
  ZOmega& operator-=(const ZOmega& rhs);
  ZOmega& operator*=(const ZOmega& rhs);

  friend ZOmega operator+(ZOmega lhs, const ZOmega& rhs) { return lhs += rhs; }
  friend ZOmega operator-(ZOmega lhs, const ZOmega& rhs) { return lhs -= rhs; }
  friend ZOmega operator*(ZOmega lhs, const ZOmega& rhs) { return lhs *= rhs; }

  /// Multiply by a rational integer.
  [[nodiscard]] ZOmega scaled(const BigInt& factor) const;

  /// Complex conjugate: (a,b,c,d) -> (-c,-b,-a,d).
  [[nodiscard]] ZOmega conj() const;

  /// The sqrt(2) |-> -sqrt(2) automorphism (omega |-> omega^3):
  /// (a,b,c,d) -> (c,-b,a,d).
  [[nodiscard]] ZOmega sqrt2Conj() const;

  /// Multiply by omega (a cyclic coefficient rotation with one sign flip).
  [[nodiscard]] ZOmega timesOmega() const;

  /// Multiply by sqrt(2) = omega - omega^3.
  [[nodiscard]] ZOmega timesSqrt2() const;

  /// True iff the value is divisible by sqrt(2) in Z[omega]; this is exactly
  /// the paper's minimality criterion from Algorithm 1:
  /// a == c (mod 2) and b == d (mod 2).
  [[nodiscard]] bool divisibleBySqrt2() const noexcept;

  /// Exact division by sqrt(2). \pre divisibleBySqrt2()
  [[nodiscard]] ZOmega divideBySqrt2() const;

  /// Squared complex norm N(z) = z * conj(z) = u + v*sqrt(2), u,v in Z.
  void norm(BigInt& u, BigInt& v) const;

  /// Euclidean function E(z) = |u^2 - 2 v^2| = |N_{Q[omega]/Q}(z)|; it is
  /// multiplicative, zero only at zero, and makes Z[omega] a Euclidean ring
  /// (Section IV-B).
  [[nodiscard]] BigInt euclideanValue() const;

  /// Closest complex double.
  [[nodiscard]] std::complex<double> toComplex() const;

  /// Human-readable form such as "2w3 - w + 5".
  [[nodiscard]] std::string toString() const;

  friend bool operator==(const ZOmega& lhs, const ZOmega& rhs) noexcept = default;

  [[nodiscard]] std::size_t hash() const noexcept;

  friend std::ostream& operator<<(std::ostream& os, const ZOmega& value);

private:
  BigInt a_;
  BigInt b_;
  BigInt c_;
  BigInt d_;
};

} // namespace qadd::alg

template <> struct std::hash<qadd::alg::ZOmega> {
  std::size_t operator()(const qadd::alg::ZOmega& value) const noexcept { return value.hash(); }
};
