/// \file qomega.hpp
/// The field Q[omega] (and its subring D[omega]) in the paper's canonical form.
///
/// Every value is stored as
///
///     value = (a*w^3 + b*w^2 + c*w + d) / (sqrt(2)^k * e)
///
/// with a,b,c,d in Z (BigInt), k in Z, and e an odd positive integer, subject
/// to the canonicity invariants:
///   (1) k is the *smallest denominator exponent* (paper, Algorithm 1): the
///       numerator is not divisible by sqrt(2), i.e. a != c (mod 2) or
///       b != d (mod 2)  — except for zero, canonically (0,0,0,0)/1, k=0;
///   (2) gcd(a, b, c, d, e) = 1 and e > 0 is odd.
///
/// Values with e == 1 are exactly the elements of D[omega]; these are closed
/// under +,-,* and are all that ever occurs when simulating Clifford+T
/// circuits with GCD normalization.  Division (needed by the Q[omega]-inverse
/// normalization, Algorithm 2) introduces odd denominators e.
///
/// Because the representation is canonical, equality is coefficient-wise and
/// hashing is well defined — the property that lets the algebraic QMDD detect
/// every redundancy that is mathematically present.
#pragma once

#include "algebraic/zomega.hpp"
#include "bigint/bigint.hpp"

#include <complex>
#include <iosfwd>
#include <string>

namespace qadd::alg {

/// Canonical element of Q[omega]; see file comment for the invariants.
class QOmega {
public:
  /// Zero.
  QOmega() = default;

  /// num / (sqrt(2)^k * den); canonicalizes.
  QOmega(ZOmega num, long k, BigInt den);

  /// num / sqrt(2)^k; canonicalizes (a D[omega] value).
  QOmega(ZOmega num, long k) : QOmega(std::move(num), k, BigInt{1}) {}

  /// The cyclotomic integer num itself.
  explicit QOmega(ZOmega num) : QOmega(std::move(num), 0, BigInt{1}) {}

  /// The rational integer value.
  explicit QOmega(std::int64_t value) : QOmega(ZOmega{BigInt{value}}, 0, BigInt{1}) {}

  // -- named constants --------------------------------------------------------

  [[nodiscard]] static QOmega zero() { return {}; }
  [[nodiscard]] static QOmega one() { return QOmega{1}; }
  [[nodiscard]] static QOmega omega() { return QOmega{ZOmega::omega()}; }
  [[nodiscard]] static QOmega imaginaryUnit() { return QOmega{ZOmega::imaginaryUnit()}; }
  [[nodiscard]] static QOmega sqrt2() { return QOmega{ZOmega::sqrt2()}; }
  /// 1/sqrt(2), the Hadamard factor; canonical form (0,0,0,1)/sqrt(2)^1.
  [[nodiscard]] static QOmega invSqrt2() { return {ZOmega::one(), 1}; }
  /// omega^p for any integer p (period 8).
  [[nodiscard]] static QOmega omegaPower(long p);

  // -- observers ---------------------------------------------------------------

  [[nodiscard]] const ZOmega& num() const noexcept { return num_; }
  [[nodiscard]] long k() const noexcept { return k_; }
  [[nodiscard]] const BigInt& den() const noexcept { return den_; }

  [[nodiscard]] bool isZero() const noexcept { return num_.isZero(); }
  [[nodiscard]] bool isOne() const noexcept {
    return num_.isOne() && k_ == 0 && den_.isOne();
  }
  /// True iff the value lies in D[omega] (denominator e == 1).
  [[nodiscard]] bool isDyadic() const noexcept { return den_.isOne(); }

  /// Largest bit width across numerator coefficients and denominator — the
  /// cost driver of algebraic arithmetic (paper, Section V-B).
  [[nodiscard]] std::size_t maxBits() const noexcept;

  // -- field arithmetic ---------------------------------------------------------

  [[nodiscard]] QOmega operator-() const;
  QOmega& operator+=(const QOmega& rhs);
  QOmega& operator-=(const QOmega& rhs);
  QOmega& operator*=(const QOmega& rhs);
  /// Exact division. \throws std::domain_error when rhs is zero.
  QOmega& operator/=(const QOmega& rhs);

  friend QOmega operator+(QOmega lhs, const QOmega& rhs) { return lhs += rhs; }
  friend QOmega operator-(QOmega lhs, const QOmega& rhs) { return lhs -= rhs; }
  friend QOmega operator*(QOmega lhs, const QOmega& rhs) { return lhs *= rhs; }
  friend QOmega operator/(QOmega lhs, const QOmega& rhs) { return lhs /= rhs; }

  /// Multiplicative inverse via the squared-norm construction of Section IV-B:
  /// 1/z = conj(z) / N(z) with 1/N(z) = (u - v sqrt2)/(u^2 - 2 v^2).
  /// \throws std::domain_error for zero.
  [[nodiscard]] QOmega inverse() const;

  [[nodiscard]] QOmega conj() const;

  /// Squared magnitude |z|^2 as an exact (real, non-negative) Q[omega] value.
  [[nodiscard]] QOmega squaredMagnitude() const { return *this * conj(); }

  /// Closest complex double (safe for huge coefficients via scaled ratios).
  [[nodiscard]] std::complex<double> toComplex() const;

  /// Constructive witness of the density of D[omega] in C (Section IV-A of
  /// the paper): the dyadic-grid approximation of `z` with 2^-bits
  /// resolution per component (error <= 2^-bits per real/imaginary part).
  [[nodiscard]] static QOmega approximate(std::complex<double> z, unsigned bits);

  /// e.g. "(w + 1)/(sqrt2^3 * 5)".
  [[nodiscard]] std::string toString() const;

  friend bool operator==(const QOmega& lhs, const QOmega& rhs) noexcept = default;

  [[nodiscard]] std::size_t hash() const noexcept;

  friend std::ostream& operator<<(std::ostream& os, const QOmega& value);

private:
  void canonicalize();
  /// int64 kernel for canonicalize() (Algorithm 1): sign-fix + 2-folding of
  /// the denominator, sqrt2 divisions, and odd-content cancellation on
  /// machine words.  Returns false (leaving *this untouched) when a
  /// coefficient exceeds the kernel bound.  Compiled out without
  /// QADD_BIGINT_SSO.  \pre !num_.isZero() && !den_.isZero()
  bool canonicalizeSmall();

  ZOmega num_;
  long k_ = 0;
  BigInt den_{1};
};

} // namespace qadd::alg

template <> struct std::hash<qadd::alg::QOmega> {
  std::size_t operator()(const qadd::alg::QOmega& value) const noexcept { return value.hash(); }
};
