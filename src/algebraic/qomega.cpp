#include "algebraic/qomega.hpp"

#include "algebraic/small_kernels.hpp"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace qadd::alg {

QOmega::QOmega(ZOmega num, long k, BigInt den)
    : num_(std::move(num)), k_(k), den_(std::move(den)) {
  if (den_.isZero()) {
    throw std::domain_error("QOmega: zero denominator");
  }
  canonicalize();
}

QOmega QOmega::omegaPower(long p) {
  long r = p % 8;
  if (r < 0) {
    r += 8;
  }
  ZOmega value = ZOmega::one();
  for (long i = 0; i < r; ++i) {
    value = value.timesOmega();
  }
  return QOmega{std::move(value)};
}

std::size_t QOmega::maxBits() const noexcept {
  return std::max(num_.maxCoefficientBits(), den_.bitLength());
}

#if QADD_BIGINT_SSO

bool QOmega::canonicalizeSmall() {
  // Coefficients below 2^62 keep every intermediate (negation, the halving
  // steps of divide-by-sqrt2, the u64 Euclid content GCD) inside int64.
  constexpr std::size_t kCanonBits = 62;
  detail::SmallZ n{};
  std::int64_t den = 0;
  if (!detail::load(num_, n, kCanonBits) || !detail::load(den_, den, kCanonBits)) {
    return false;
  }
  ++detail::smallPathStats().hits;
  // (a) denominator: positive sign, powers of two folded into k (2 = sqrt2^2).
  if (den < 0) {
    den = -den;
    n.a = -n.a;
    n.b = -n.b;
    n.c = -n.c;
    n.d = -n.d;
  }
  if ((den & 1) == 0) {
    const int twos = __builtin_ctzll(static_cast<unsigned long long>(den));
    den >>= twos;
    k_ += 2L * twos;
  }
  // (b) smallest denominator exponent (Algorithm 1): divide by sqrt(2) while
  // the parity criterion a == c, b == d (mod 2) holds.  The differences are
  // even by construction, so the halvings are exact.
  while (((n.a ^ n.c) & 1) == 0 && ((n.b ^ n.d) & 1) == 0) {
    const std::int64_t a2 = (n.b - n.d) / 2;
    const std::int64_t b2 = (n.a + n.c) / 2;
    const std::int64_t c2 = (n.b + n.d) / 2;
    const std::int64_t d2 = (n.c - n.a) / 2;
    n = {a2, b2, c2, d2};
    --k_;
  }
  // (c) cancel the odd content shared between numerator and denominator.
  if (den != 1) {
    const auto absU64 = [](std::int64_t v) {
      return v < 0 ? ~static_cast<std::uint64_t>(v) + 1U : static_cast<std::uint64_t>(v);
    };
    const auto gcdU64 = [](std::uint64_t x, std::uint64_t y) {
      while (y != 0) {
        x %= y;
        std::swap(x, y);
      }
      return x;
    };
    std::uint64_t g = gcdU64(gcdU64(absU64(n.a), absU64(n.b)),
                             gcdU64(absU64(n.c), absU64(n.d)));
    g = gcdU64(g, static_cast<std::uint64_t>(den));
    if (g != 1) {
      const auto divisor = static_cast<std::int64_t>(g);
      n.a /= divisor;
      n.b /= divisor;
      n.c /= divisor;
      n.d /= divisor;
      den /= divisor;
    }
  }
  num_ = ZOmega{BigInt{n.a}, BigInt{n.b}, BigInt{n.c}, BigInt{n.d}};
  den_ = BigInt{den};
  return true;
}

#endif // QADD_BIGINT_SSO

void QOmega::canonicalize() {
  if (num_.isZero()) {
    k_ = 0;
    den_ = BigInt{1};
    return;
  }
#if QADD_BIGINT_SSO
  if (qadd::detail::smallFastPathsEnabled()) {
    if (canonicalizeSmall()) {
      return;
    }
    ++detail::smallPathStats().spills;
  }
#endif
  // (a) denominator: positive sign, powers of two folded into k (2 = sqrt2^2).
  if (den_.isNegative()) {
    den_ = -den_;
    num_ = -num_;
  }
  if (den_.isEven()) {
    const std::size_t twos = den_.countTrailingZeroBits();
    den_ = den_.shiftRight(twos);
    k_ += static_cast<long>(2 * twos);
  }
  // (b) smallest denominator exponent (Algorithm 1 of the paper): divide the
  // numerator by sqrt(2) while the parity criterion allows it.
  while (num_.divisibleBySqrt2()) {
    num_ = num_.divideBySqrt2();
    --k_;
  }
  // (c) cancel the odd content shared between numerator and denominator.
  // (Dividing by an odd integer preserves coefficient parities, so the
  // exponent stays minimal.)
  if (!den_.isOne()) {
    BigInt g = BigInt::gcd(BigInt::gcd(num_.a(), num_.b()),
                           BigInt::gcd(num_.c(), num_.d()));
    g = BigInt::gcd(std::move(g), den_);
    if (!g.isOne()) {
      num_ = ZOmega{num_.a() / g, num_.b() / g, num_.c() / g, num_.d() / g};
      den_ /= g;
    }
  }
}

QOmega QOmega::operator-() const {
  QOmega result;
  result.num_ = -num_;
  result.k_ = k_;
  result.den_ = den_;
  return result; // canonical form is preserved under negation
}

QOmega& QOmega::operator+=(const QOmega& rhs) {
  if (rhs.isZero()) {
    return *this;
  }
  if (isZero()) {
    return *this = rhs;
  }
  // Bring both operands to the common denominator sqrt(2)^kc * lcm(e1, e2).
  const long kc = std::max(k_, rhs.k_);
  ZOmega n1 = num_;
  for (long i = k_; i < kc; ++i) {
    n1 = n1.timesSqrt2();
  }
  ZOmega n2 = rhs.num_;
  for (long i = rhs.k_; i < kc; ++i) {
    n2 = n2.timesSqrt2();
  }
  const BigInt g = BigInt::gcd(den_, rhs.den_);
  const BigInt m1 = rhs.den_ / g; // multiply our numerator by this
  const BigInt m2 = den_ / g;
  num_ = n1.scaled(m1) + n2.scaled(m2);
  den_ *= m1;
  k_ = kc;
  canonicalize();
  return *this;
}

QOmega& QOmega::operator-=(const QOmega& rhs) { return *this += -rhs; }

QOmega& QOmega::operator*=(const QOmega& rhs) {
  if (isZero() || rhs.isZero()) {
    return *this = QOmega{};
  }
  num_ *= rhs.num_;
  k_ += rhs.k_;
  den_ *= rhs.den_;
  canonicalize();
  return *this;
}

QOmega QOmega::inverse() const {
  if (isZero()) {
    throw std::domain_error("QOmega: inverse of zero");
  }
  // z = n / (sqrt2^k e);  N(n) = n conj(n) = u + v sqrt2;
  // 1/z = e sqrt2^k conj(n) (u - v sqrt2) / (u^2 - 2 v^2).
  BigInt u;
  BigInt v;
  num_.norm(u, v);
  const ZOmega uMinusVSqrt2{v, BigInt{0}, -v, u};
  BigInt bigDen = u * u - (v * v).shiftLeft(1);
  assert(!bigDen.isZero());
  ZOmega numerator = num_.conj() * uMinusVSqrt2;
  numerator = numerator.scaled(den_);
  return QOmega{std::move(numerator), -k_, std::move(bigDen)};
}

QOmega& QOmega::operator/=(const QOmega& rhs) { return *this *= rhs.inverse(); }

QOmega QOmega::conj() const {
  // conj(n) / (sqrt2^k e): conjugation preserves canonicity (parities of the
  // coefficient multiset are unchanged).
  QOmega result;
  result.num_ = num_.conj();
  result.k_ = k_;
  result.den_ = den_;
  return result;
}

std::complex<double> QOmega::toComplex() const {
  if (isZero()) {
    return {0.0, 0.0};
  }
  // Each coefficient contributes  coeff/den * 2^(-k/2); form the ratio in
  // scaled (mantissa, exponent) space so huge BigInts never overflow.
  long denExp = 0;
  const double denMantissa = den_.toDoubleScaled(denExp);
  const auto ratio = [&](const BigInt& x) -> double {
    if (x.isZero()) {
      return 0.0;
    }
    long xExp = 0;
    const double xMantissa = x.toDoubleScaled(xExp);
    const double exponent =
        static_cast<double>(xExp - denExp) - 0.5 * static_cast<double>(k_);
    return xMantissa / denMantissa * std::exp2(exponent);
  };
  constexpr double invSqrt2 = 0.70710678118654752440;
  // value = [d + (c-a)/sqrt2] + i [b + (c+a)/sqrt2]   (all over den*sqrt2^k).
  const double re = ratio(num_.d()) + ratio(num_.c() - num_.a()) * invSqrt2;
  const double im = ratio(num_.b()) + ratio(num_.c() + num_.a()) * invSqrt2;
  return {re, im};
}

QOmega QOmega::approximate(std::complex<double> z, unsigned bits) {
  if (bits > 1000) {
    throw std::invalid_argument("QOmega::approximate: resolution out of range");
  }
  // re + i*im ~= (a + b*omega^2) / 2^bits with a = round(re * 2^bits) etc.
  const double scale = std::ldexp(1.0, static_cast<int>(bits));
  const auto toBig = [](double value) {
    // Doubles this large are exact integers after llround only below 2^63;
    // clamp the usable range accordingly.
    if (std::abs(value) >= 9.0e18) {
      throw std::domain_error("QOmega::approximate: value out of range");
    }
    return BigInt{static_cast<std::int64_t>(std::llround(value))};
  };
  ZOmega numerator{BigInt{0}, toBig(z.imag() * scale), BigInt{0}, toBig(z.real() * scale)};
  return QOmega{std::move(numerator), static_cast<long>(2 * bits)};
}

std::string QOmega::toString() const {
  std::ostringstream os;
  const bool trivialDen = k_ == 0 && den_.isOne();
  if (trivialDen) {
    os << num_.toString();
    return os.str();
  }
  os << "(" << num_.toString() << ")/(";
  bool needStar = false;
  if (k_ != 0) {
    os << "sqrt2^" << k_;
    needStar = true;
  }
  if (!den_.isOne()) {
    if (needStar) {
      os << " * ";
    }
    os << den_.toString();
  } else if (!needStar) {
    os << "1";
  }
  os << ")";
  return os.str();
}

std::size_t QOmega::hash() const noexcept {
  std::size_t h = num_.hash();
  h = h * 31 + static_cast<std::size_t>(k_) * 0x9e3779b97f4a7c15ULL;
  h = h * 31 + den_.hash();
  return h;
}

std::ostream& operator<<(std::ostream& os, const QOmega& value) {
  return os << value.toString();
}

} // namespace qadd::alg
