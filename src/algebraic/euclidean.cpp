#include "algebraic/euclidean.hpp"

#include "algebraic/small_kernels.hpp"

#include <array>
#include <cassert>
#include <utility>

namespace qadd::alg {

namespace {

#if QADD_BIGINT_SSO

using detail::I128;
using detail::SmallZ;

/// Bound for the Euclidean-division inner loop.  With |coefficients| < 2^30:
/// the product z1 * conj(z2) and the norm components u, v of z2 stay below
/// 4 * 2^60 = 2^62; the rationalized numerator (a four-term sum of products
/// of those) stays below 4 * 2^124 = 2^126; and |den| = |u^2 - 2 v^2| stays
/// below 2^125 — everything fits a signed int128.
constexpr std::size_t kQuotientBits = 30;

/// Word-kernel version of rationalizedQuotient + divRound.  Returns false
/// when the operands exceed the bound (or the general path must run).
bool euclideanQuotientSmall(const ZOmega& z1, const ZOmega& z2, ZOmega& out) {
  SmallZ x;
  SmallZ y;
  if (!detail::load(z1, x, kQuotientBits) || !detail::load(z2, y, kQuotientBits)) {
    return false;
  }
  ++detail::smallPathStats().hits;
  // p = z1 * conj(z2), conj(z2) = (-c2, -b2, -a2, d2).
  const auto mul = [](const SmallZ& l, const SmallZ& r) {
    return SmallZ{
        static_cast<std::int64_t>(l.a * r.d + l.b * r.c + l.c * r.b + l.d * r.a),
        static_cast<std::int64_t>(l.b * r.d + l.c * r.c + l.d * r.b - l.a * r.a),
        static_cast<std::int64_t>(l.c * r.d + l.d * r.c - l.a * r.b - l.b * r.a),
        static_cast<std::int64_t>(l.d * r.d - l.a * r.c - l.b * r.b - l.c * r.a)};
  };
  const SmallZ conj2{-y.c, -y.b, -y.a, y.d};
  const SmallZ p = mul(x, conj2);
  // N(z2) = u + v sqrt2.
  const std::int64_t u = y.a * y.a + y.b * y.b + y.c * y.c + y.d * y.d;
  const std::int64_t v = y.a * y.b + y.b * y.c + y.c * y.d - y.d * y.a;
  // numerator = p * (v w^3 - v w + u);  denominator = u^2 - 2 v^2.
  const SmallZ uMinusVSqrt2{v, 0, -v, u};
  const I128 na = I128{p.a} * uMinusVSqrt2.d + I128{p.b} * uMinusVSqrt2.c +
                  I128{p.c} * uMinusVSqrt2.b + I128{p.d} * uMinusVSqrt2.a;
  const I128 nb = I128{p.b} * uMinusVSqrt2.d + I128{p.c} * uMinusVSqrt2.c +
                  I128{p.d} * uMinusVSqrt2.b - I128{p.a} * uMinusVSqrt2.a;
  const I128 nc = I128{p.c} * uMinusVSqrt2.d + I128{p.d} * uMinusVSqrt2.c -
                  I128{p.a} * uMinusVSqrt2.b - I128{p.b} * uMinusVSqrt2.a;
  const I128 nd = I128{p.d} * uMinusVSqrt2.d - I128{p.a} * uMinusVSqrt2.c -
                  I128{p.b} * uMinusVSqrt2.b - I128{p.c} * uMinusVSqrt2.a;
  const I128 den = I128{u} * u - 2 * (I128{v} * v);
  out = ZOmega{BigInt::fromInt128(detail::divRoundI128(na, den)),
               BigInt::fromInt128(detail::divRoundI128(nb, den)),
               BigInt::fromInt128(detail::divRoundI128(nc, den)),
               BigInt::fromInt128(detail::divRoundI128(nd, den))};
  return true;
}

#endif // QADD_BIGINT_SSO

/// Numerator and (rational, possibly negative) denominator of z1/z2 so that
/// z1/z2 = numerator / denominator with numerator in Z[omega], denominator in Z.
void rationalizedQuotient(const ZOmega& z1, const ZOmega& z2, ZOmega& numerator,
                          BigInt& denominator) {
  BigInt u;
  BigInt v;
  z2.norm(u, v);
  const ZOmega uMinusVSqrt2{v, BigInt{0}, -v, u};
  numerator = z1 * z2.conj() * uMinusVSqrt2;
  denominator = u * u - (v * v).shiftLeft(1);
}

/// The paper's norm-pair key (property (b)): with N(z) = u + v sqrt2, the
/// lexicographic minimum of the two derived pairs (|u|,|v|) and (|2v|,|u|)
/// after factoring powers of two out of each pair.
struct NormPairKey {
  BigInt first;
  BigInt second;

  friend bool operator==(const NormPairKey&, const NormPairKey&) = default;
  friend bool operator<(const NormPairKey& lhs, const NormPairKey& rhs) {
    if (lhs.first != rhs.first) {
      return lhs.first < rhs.first;
    }
    return lhs.second < rhs.second;
  }
};

NormPairKey reducePair(BigInt x, BigInt y) {
  if (x.isZero() && y.isZero()) {
    return {std::move(x), std::move(y)};
  }
  const auto evenish = [](const BigInt& value) { return value.isZero() || value.isEven(); };
  while (evenish(x) && evenish(y)) {
    x = x.shiftRight(1);
    y = y.shiftRight(1);
  }
  return {std::move(x), std::move(y)};
}

NormPairKey normPairKey(const ZOmega& z) {
  BigInt u;
  BigInt v;
  z.norm(u, v);
  NormPairKey p1 = reducePair(u.abs(), v.abs());
  NormPairKey p2 = reducePair(v.abs().shiftLeft(1), u.abs());
  return p1 < p2 ? p1 : p2;
}

/// Divide by sqrt2 as often as possible (stays in the associate class since
/// sqrt2 is a unit of D[omega]).
ZOmega stripSqrt2(ZOmega z) {
  while (!z.isZero() && z.divisibleBySqrt2()) {
    z = z.divideBySqrt2();
  }
  return z;
}

/// Signed coefficient tuple comparison, used as the final deterministic
/// tie-break.
bool coefficientsLess(const ZOmega& lhs, const ZOmega& rhs) {
  if (lhs.a() != rhs.a()) {
    return lhs.a() < rhs.a();
  }
  if (lhs.b() != rhs.b()) {
    return lhs.b() < rhs.b();
  }
  if (lhs.c() != rhs.c()) {
    return lhs.c() < rhs.c();
  }
  return lhs.d() < rhs.d();
}

/// Property (c): pick among the eight rotations z * omega^j the one whose
/// absolute coefficient quadruple is lexicographically minimal, preferring a
/// positive d and finally the smallest signed tuple.
ZOmega rotationCanonical(const ZOmega& z) {
  ZOmega best = z;
  ZOmega current = z;
  const auto betterThan = [](const ZOmega& x, const ZOmega& y) {
    const std::array<BigInt, 4> kx{x.a().abs(), x.b().abs(), x.c().abs(), x.d().abs()};
    const std::array<BigInt, 4> ky{y.a().abs(), y.b().abs(), y.c().abs(), y.d().abs()};
    if (kx != ky) {
      return kx < ky;
    }
    const int sx = x.d().sign();
    const int sy = y.d().sign();
    if (sx != sy) {
      return sx > sy; // positive d preferred
    }
    return coefficientsLess(x, y);
  };
  for (int j = 1; j < 8; ++j) {
    current = current.timesOmega();
    if (betterThan(current, best)) {
      best = current;
    }
  }
  return best;
}

} // namespace

ZOmega euclideanQuotient(const ZOmega& z1, const ZOmega& z2) {
  assert(!z2.isZero());
#if QADD_BIGINT_SSO
  if (qadd::detail::smallFastPathsEnabled()) {
    ZOmega quotient;
    if (euclideanQuotientSmall(z1, z2, quotient)) {
      return quotient;
    }
    ++detail::smallPathStats().spills;
  }
#endif
  ZOmega numerator;
  BigInt denominator;
  rationalizedQuotient(z1, z2, numerator, denominator);
  return {BigInt::divRound(numerator.a(), denominator),
          BigInt::divRound(numerator.b(), denominator),
          BigInt::divRound(numerator.c(), denominator),
          BigInt::divRound(numerator.d(), denominator)};
}

ZOmega euclideanRemainder(const ZOmega& z1, const ZOmega& z2) {
  return z1 - euclideanQuotient(z1, z2) * z2;
}

ZOmega gcdZOmega(ZOmega z1, ZOmega z2) {
  while (!z2.isZero()) {
    ZOmega remainder = euclideanRemainder(z1, z2);
    z1 = std::move(z2);
    z2 = std::move(remainder);
  }
  return z1;
}

bool tryExactDivide(const ZOmega& z1, const ZOmega& z2, ZOmega& quotient) {
  assert(!z2.isZero());
  ZOmega numerator;
  BigInt denominator;
  rationalizedQuotient(z1, z2, numerator, denominator);
  BigInt q;
  BigInt r;
  std::array<BigInt, 4> result;
  const std::array<const BigInt*, 4> coefficients{&numerator.a(), &numerator.b(),
                                                  &numerator.c(), &numerator.d()};
  for (std::size_t i = 0; i < 4; ++i) {
    BigInt::divMod(*coefficients[i], denominator, q, r);
    if (!r.isZero()) {
      return false;
    }
    result[i] = std::move(q);
  }
  quotient = ZOmega{std::move(result[0]), std::move(result[1]), std::move(result[2]),
                    std::move(result[3])};
  return true;
}

ZOmega canonicalAssociate(const QOmega& z) {
  assert(!z.isZero());
  // Property (a): the canonical QOmega numerator is already the k = 0
  // representative of the associate class (minimal denominator exponent).
  ZOmega n = z.num();

  // Property (b): greedy descent along the unit line generated by
  // (omega +- 1) (norm factors 2 +- sqrt2), stripping sqrt2 powers.
  const ZOmega unitPlus = ZOmega::omega() + ZOmega::one();
  const ZOmega unitMinus = ZOmega::omega() - ZOmega::one();
  NormPairKey key = normPairKey(n);
  while (true) {
    ZOmega up = stripSqrt2(n * unitPlus);
    ZOmega down = stripSqrt2(n * unitMinus);
    NormPairKey keyUp = normPairKey(up);
    NormPairKey keyDown = normPairKey(down);
    if (keyUp < key && !(keyDown < keyUp)) {
      n = std::move(up);
      key = std::move(keyUp);
    } else if (keyDown < key) {
      n = std::move(down);
      key = std::move(keyDown);
    } else {
      // Local minimum.  Adjacent associates may tie on the norm-pair key;
      // resolve the plateau deterministically through the rotation canonical
      // form so the result depends only on the associate class.
      ZOmega best = rotationCanonical(n);
      if (keyUp == key) {
        ZOmega candidate = rotationCanonical(up);
        if (coefficientsLess(candidate, best)) {
          best = std::move(candidate);
        }
      }
      if (keyDown == key) {
        ZOmega candidate = rotationCanonical(down);
        if (coefficientsLess(candidate, best)) {
          best = std::move(candidate);
        }
      }
      return best;
    }
  }
}

QOmega canonicalAssociateUnit(const QOmega& z) {
  return QOmega{canonicalAssociate(z)} / z;
}

ZOmega gcdDyadic(std::span<const QOmega> values) {
  ZOmega g;
  for (const QOmega& value : values) {
    if (value.isZero()) {
      continue;
    }
    assert(value.isDyadic());
    // The Z[omega] representative of the associate class of the value is its
    // canonical numerator (sqrt2 powers are units and do not affect GCDs).
    g = g.isZero() ? value.num() : gcdZOmega(g, value.num());
    if (g.euclideanValue().isOne()) {
      break; // the GCD is a unit; no smaller it can get
    }
  }
  if (g.isZero()) {
    return g;
  }
  return canonicalAssociate(QOmega{g});
}

} // namespace qadd::alg
