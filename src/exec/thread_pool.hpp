/// \file thread_pool.hpp
/// Fixed-size task-queue thread pool (qadd::exec) powering the parallel
/// ε-sweep executor.  The pool is deliberately small and boring: a mutex +
/// condition-variable task queue drained by N worker threads, futures with
/// full exception propagation, and a nested-wait deadlock guard — a
/// parallelFor() issued from inside a worker runs inline instead of blocking
/// on tasks that could never be scheduled.
///
/// Concurrency model of the DD layers (see docs/PARALLELISM.md): a
/// dd::Package and everything hanging off it (unique tables, computed
/// tables, weight interning) is **thread-confined** — each task builds its
/// own package and never shares DD edges across threads.  The pool therefore
/// needs no locking below the task queue; the only process-wide structures
/// touched from workers are the obs::Tracer span buffer (mutex-guarded) and
/// the algebraic small-path tallies (atomic).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace qadd::exec {

/// Worker-count resolution used by the `--jobs` flag: the QADD_JOBS
/// environment variable when set to a positive integer, otherwise the
/// hardware concurrency (at least 1).
[[nodiscard]] std::size_t defaultJobs();

/// True on a thread that is currently executing a pool task.  Used by
/// parallelFor() as its deadlock guard.
[[nodiscard]] bool onWorkerThread();

class ThreadPool {
public:
  /// Spawn `workers` threads.  `workers == 0` is clamped to 1; note that a
  /// 1-worker pool still runs tasks on its (single) worker thread — callers
  /// wanting the strictly serial path should not construct a pool at all
  /// (see parallelFor(), which accepts nullptr).
  explicit ThreadPool(std::size_t workers);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  /// Joins all workers; queued-but-unstarted tasks still run first.
  ~ThreadPool();

  [[nodiscard]] std::size_t workers() const { return threads_.size(); }

  /// Enqueue `fn` and return a future for its result.  Exceptions thrown by
  /// the task are captured and rethrown from future::get().  Safe to call
  /// from worker threads (the task is queued, not executed inline) — but
  /// blocking on the returned future from a worker can deadlock; use
  /// parallelFor() for fork-join patterns.
  template <class F> auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using Result = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<F>(fn));
    std::future<Result> future = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    available_.notify_one();
    return future;
  }

private:
  void workerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable available_;
  bool stop_ = false;
};

/// Run `fn(0) .. fn(n-1)`, fanning the indices out across `pool` and waiting
/// for all of them.  Serial fallbacks, all exactly equivalent to the plain
/// loop: `pool == nullptr` (the `--jobs 1` path), `n <= 1`, and calls from
/// inside a pool task (nested fork-join would block a worker on tasks that
/// may never get a thread — the deadlock guard runs them inline instead).
///
/// All indices are waited on even when one throws; the exception of the
/// lowest throwing index is then rethrown, so error reporting does not
/// depend on completion order.
void parallelFor(ThreadPool* pool, std::size_t n, const std::function<void(std::size_t)>& fn);

} // namespace qadd::exec
