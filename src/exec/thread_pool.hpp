/// \file thread_pool.hpp
/// Fixed-size task-queue thread pool (qadd::exec) powering the parallel
/// ε-sweep executor.  The pool is deliberately small and boring: a mutex +
/// condition-variable task queue drained by N worker threads, futures with
/// full exception propagation, and a nested-wait deadlock guard — a
/// parallelFor() issued from inside a worker runs inline instead of blocking
/// on tasks that could never be scheduled.
///
/// Concurrency model of the DD layers (see docs/PARALLELISM.md): a
/// dd::Package and everything hanging off it (unique tables, computed
/// tables, weight interning) is **thread-confined** — each task builds its
/// own package and never shares DD edges across threads.  The pool therefore
/// needs no locking below the task queue; the only process-wide structures
/// touched from workers are the obs::Tracer span buffer (mutex-guarded) and
/// the algebraic small-path tallies (atomic).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace qadd::exec {

/// Worker-count resolution used by the `--jobs` flag: the QADD_JOBS
/// environment variable when set to a positive integer, otherwise the
/// hardware concurrency (at least 1).
[[nodiscard]] std::size_t defaultJobs();

/// True on a thread that is currently executing a pool task.  Used by
/// parallelFor() as its deadlock guard.
[[nodiscard]] bool onWorkerThread();

/// Dense per-thread arena slot: 0 on any external thread, `1..workers()` on
/// the worker threads of a pool.  The slot is what makes per-worker arena
/// allocation (core/memory_manager.hpp) contention-free: every thread that
/// can participate in one package's fork-join kernels — the single external
/// caller (slot 0) plus the workers of the one pool the package was bound to
/// via Package::setExecutor — owns a distinct slot.  A package must never be
/// driven through two different pools at once; slot numbers are only unique
/// within one pool.
[[nodiscard]] std::size_t workerSlot();

class ThreadPool {
public:
  /// Spawn `workers` threads.  `workers == 0` is clamped to 1; note that a
  /// 1-worker pool still runs tasks on its (single) worker thread — callers
  /// wanting the strictly serial path should not construct a pool at all
  /// (see parallelFor(), which accepts nullptr).
  explicit ThreadPool(std::size_t workers);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  /// Joins all workers; queued-but-unstarted tasks still run first.
  ~ThreadPool();

  [[nodiscard]] std::size_t workers() const { return threads_.size(); }

  /// Enqueue `fn` and return a future for its result.  Exceptions thrown by
  /// the task are captured and rethrown from future::get().  Safe to call
  /// from worker threads (the task is queued, not executed inline) — but
  /// blocking on the returned future from a worker can deadlock; use
  /// parallelFor() for fork-join patterns.
  template <class F> auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using Result = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<F>(fn));
    std::future<Result> future = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    available_.notify_one();
    return future;
  }

  /// Enqueue a fire-and-forget task: no future, no packaged_task allocation.
  /// The caller is responsible for its own completion signalling — this is
  /// the building block of forkJoin(), which needs exactly that freedom on
  /// the hot kernel-recursion path.
  void submitDetached(std::function<void()> fn);

private:
  void workerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable available_;
  bool stop_ = false;
};

/// Run `fn(0) .. fn(n-1)`, fanning the indices out across `pool` and waiting
/// for all of them.  Serial fallbacks, all exactly equivalent to the plain
/// loop: `pool == nullptr` (the `--jobs 1` path), `n <= 1`, and calls from
/// inside a pool task (nested fork-join would block a worker on tasks that
/// may never get a thread — the deadlock guard runs them inline instead).
///
/// All indices are waited on even when one throws; the exception of the
/// lowest throwing index is then rethrown, so error reporting does not
/// depend on completion order.
void parallelFor(ThreadPool* pool, std::size_t n, const std::function<void(std::size_t)>& fn);

namespace detail {

/// Join state of one forked task.  `phase` is the claim token: 0 = still
/// queued (either side may claim it with a CAS and run it inline), 1 =
/// claimed.  `done`/`cv` signal completion of a worker-side run.
struct ForkState {
  std::atomic<int> phase{0};
  std::exception_ptr error;
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
};

} // namespace detail

/// Run `a` and `b` as a fork-join pair and return when **both** completed:
/// `a` is enqueued on the pool, `b` runs inline on the caller, then the
/// caller *steals `a` back* (one CAS) if no worker has picked it up yet and
/// runs it inline too.  The caller therefore only ever blocks on an `a` that
/// is actively executing on a worker — never on a queued task — which makes
/// nested forkJoin calls from inside workers deadlock-free: every wait
/// targets a strictly deeper, running fork.
///
/// Serial fallback (`pool == nullptr`): `a(); b();` inline — byte-identical
/// to the plain recursion, which is what keeps `--jobs 1` kernels exactly on
/// the pre-parallelism path.
///
/// Exceptions: both branches always complete (or are stolen back and run);
/// if both throw, `a`'s exception wins — deterministic regardless of
/// scheduling.
template <class FnA, class FnB> void forkJoin(ThreadPool* pool, FnA&& a, FnB&& b) {
  if (pool == nullptr) {
    a();
    b();
    return;
  }
  auto state = std::make_shared<detail::ForkState>();
  // `a` is captured by reference: the caller's frame outlives the join below.
  pool->submitDetached([state, &a]() {
    int expected = 0;
    if (!state->phase.compare_exchange_strong(expected, 1, std::memory_order_acq_rel)) {
      return; // the caller stole the task back and ran it inline
    }
    try {
      a();
    } catch (...) {
      state->error = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(state->m);
      state->done = true;
    }
    state->cv.notify_all();
  });
  std::exception_ptr errorB;
  try {
    b();
  } catch (...) {
    errorB = std::current_exception();
  }
  int expected = 0;
  if (state->phase.compare_exchange_strong(expected, 1, std::memory_order_acq_rel)) {
    // Still queued: run `a` here.  The queued wrapper will see phase == 1
    // and return without touching `state->error` or `done`.
    try {
      a();
    } catch (...) {
      state->error = std::current_exception();
    }
  } else {
    std::unique_lock<std::mutex> lock(state->m);
    state->cv.wait(lock, [&state]() { return state->done; });
  }
  if (state->error != nullptr) {
    std::rethrow_exception(state->error);
  }
  if (errorB != nullptr) {
    std::rethrow_exception(errorB);
  }
}

} // namespace qadd::exec
