#include "exec/thread_pool.hpp"

#include <cstdlib>
#include <exception>
#include <string>

namespace qadd::exec {

namespace {

/// Set while the current thread is executing a pool task.
thread_local bool tlsOnWorker = false;

/// Dense arena slot of this thread: 0 for external threads, i+1 for pool
/// worker i (assigned once in workerLoop).
thread_local std::size_t tlsWorkerSlot = 0;

} // namespace

std::size_t defaultJobs() {
  if (const char* env = std::getenv("QADD_JOBS"); env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value > 0) {
      return static_cast<std::size_t>(value);
    }
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<std::size_t>(hardware);
}

bool onWorkerThread() { return tlsOnWorker; }

std::size_t workerSlot() { return tlsWorkerSlot; }

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t count = workers == 0 ? 1 : workers;
  threads_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    threads_.emplace_back([this, i]() {
      tlsWorkerSlot = i + 1;
      workerLoop();
    });
  }
}

void ThreadPool::submitDetached(std::function<void()> fn) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.emplace_back(std::move(fn));
  }
  available_.notify_one();
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  available_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

void ThreadPool::workerLoop() {
  tlsOnWorker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      available_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return; // stop_ set and the queue drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void parallelFor(ThreadPool* pool, std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || n <= 1 || onWorkerThread()) {
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool->submit([&fn, i]() { fn(i); }));
  }
  // Wait for everything before surfacing any failure, then rethrow the
  // exception of the lowest failing index — deterministic regardless of
  // which worker finished first.
  std::exception_ptr firstError;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (firstError == nullptr) {
        firstError = std::current_exception();
      }
    }
  }
  if (firstError != nullptr) {
    std::rethrow_exception(firstError);
  }
}

} // namespace qadd::exec
