/// \file circuit.hpp
/// Quantum circuit IR: an ordered list of (possibly multi-controlled) gate
/// applications on a fixed register, with a simple text round-trip format.
#pragma once

#include "qc/gates.hpp"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace qadd::qc {

using Qubit = std::uint32_t;

/// A control qubit with polarity (positive = active on |1>).
struct ControlSpec {
  Qubit qubit;
  bool positive = true;
  friend bool operator==(const ControlSpec&, const ControlSpec&) = default;
};

/// One gate application.
struct Operation {
  GateKind kind = GateKind::I;
  double angle = 0.0; // only meaningful for parameterized kinds
  Qubit target = 0;
  std::vector<ControlSpec> controls;
  friend bool operator==(const Operation&, const Operation&) = default;
};

/// An ordered quantum circuit over `qubits()` qubits (qubit 0 is the top /
/// most significant line, matching the QMDD variable order).
class Circuit {
public:
  explicit Circuit(Qubit nqubits, std::string name = {})
      : nqubits_(nqubits), name_(std::move(name)) {}

  [[nodiscard]] Qubit qubits() const { return nqubits_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Operation>& operations() const { return operations_; }
  [[nodiscard]] std::size_t size() const { return operations_.size(); }

  // -- builders (fluent, bounds-checked) ----------------------------------------

  Circuit& append(Operation operation);
  Circuit& gate(GateKind kind, Qubit target) { return append({kind, 0.0, target, {}}); }
  Circuit& h(Qubit q) { return gate(GateKind::H, q); }
  Circuit& x(Qubit q) { return gate(GateKind::X, q); }
  Circuit& y(Qubit q) { return gate(GateKind::Y, q); }
  Circuit& z(Qubit q) { return gate(GateKind::Z, q); }
  Circuit& s(Qubit q) { return gate(GateKind::S, q); }
  Circuit& sdg(Qubit q) { return gate(GateKind::Sdg, q); }
  Circuit& t(Qubit q) { return gate(GateKind::T, q); }
  Circuit& tdg(Qubit q) { return gate(GateKind::Tdg, q); }
  Circuit& v(Qubit q) { return gate(GateKind::V, q); }
  Circuit& vdg(Qubit q) { return gate(GateKind::Vdg, q); }
  Circuit& rx(double angle, Qubit q) { return append({GateKind::Rx, angle, q, {}}); }
  Circuit& ry(double angle, Qubit q) { return append({GateKind::Ry, angle, q, {}}); }
  Circuit& rz(double angle, Qubit q) { return append({GateKind::Rz, angle, q, {}}); }
  Circuit& phase(double angle, Qubit q) { return append({GateKind::Phase, angle, q, {}}); }
  Circuit& cx(Qubit control, Qubit target) {
    return append({GateKind::X, 0.0, target, {{control, true}}});
  }
  Circuit& cz(Qubit control, Qubit target) {
    return append({GateKind::Z, 0.0, target, {{control, true}}});
  }
  Circuit& ccx(Qubit c1, Qubit c2, Qubit target) {
    return append({GateKind::X, 0.0, target, {{c1, true}, {c2, true}}});
  }
  Circuit& controlled(GateKind kind, Qubit target, std::vector<ControlSpec> controls,
                      double angle = 0.0) {
    return append({kind, angle, target, std::move(controls)});
  }
  /// Multi-controlled X (arbitrary control count; applied as one QMDD gate).
  Circuit& mcx(const std::vector<Qubit>& controls, Qubit target);
  /// Multi-controlled Z.
  Circuit& mcz(const std::vector<Qubit>& controls, Qubit target);
  /// SWAP decomposed into three CNOTs.
  Circuit& swap(Qubit a, Qubit b) { return cx(a, b).cx(b, a).cx(a, b); }

  /// Appends all of `other` (same width required).
  Circuit& append(const Circuit& other);

  /// The inverse circuit (reversed order, adjoint gates).
  [[nodiscard]] Circuit inverse() const;

  /// The same circuit embedded into a register of `newWidth` qubits with all
  /// lines moved down by `offset`. \pre offset + qubits() <= newWidth
  [[nodiscard]] Circuit shifted(Qubit offset, Qubit newWidth) const;

  /// Every operation additionally controlled on `control` (positive).
  /// Controlled Clifford+T gates remain exactly representable (their matrix
  /// entries are still in D[omega]).  \pre control is not used by the circuit
  [[nodiscard]] Circuit controlledBy(Qubit control) const;

  // -- analysis -------------------------------------------------------------------

  /// True iff every gate is exactly representable (Clifford+T family).
  [[nodiscard]] bool isCliffordTOnly() const;
  /// Number of T / Tdg gates (the standard cost measure for fault tolerance).
  [[nodiscard]] std::size_t tCount() const;

  // -- text round trip -------------------------------------------------------------
  //
  // Format: one header "qubits N" line, then one line per operation:
  //   <name> [angle] q<target> [ctrl q<i> | nctrl q<i>]...
  // e.g. "h q0", "rz 0.785398 q2", "x q3 ctrl q0 ctrl q1".

  [[nodiscard]] std::string toText() const;
  [[nodiscard]] static Circuit fromText(const std::string& text);

  friend std::ostream& operator<<(std::ostream& os, const Circuit& circuit);

private:
  Qubit nqubits_;
  std::string name_;
  std::vector<Operation> operations_;
};

} // namespace qadd::qc
