#include "qc/observables.hpp"

#include <stdexcept>

namespace qadd::qc {

PauliString PauliString::fromText(const std::string& text) {
  PauliString result;
  result.factors.reserve(text.size());
  for (const char c : text) {
    switch (c) {
    case 'I':
    case 'i':
      result.factors.push_back(Pauli::I);
      break;
    case 'X':
    case 'x':
      result.factors.push_back(Pauli::X);
      break;
    case 'Y':
    case 'y':
      result.factors.push_back(Pauli::Y);
      break;
    case 'Z':
    case 'z':
      result.factors.push_back(Pauli::Z);
      break;
    default:
      throw std::invalid_argument("PauliString: invalid character in '" + text + "'");
    }
  }
  return result;
}

std::string PauliString::toText() const {
  std::string text;
  text.reserve(factors.size());
  for (const Pauli factor : factors) {
    switch (factor) {
    case Pauli::I:
      text.push_back('I');
      break;
    case Pauli::X:
      text.push_back('X');
      break;
    case Pauli::Y:
      text.push_back('Y');
      break;
    case Pauli::Z:
      text.push_back('Z');
      break;
    }
  }
  return text;
}

} // namespace qadd::qc
