/// \file optimizer.hpp
/// Peephole circuit optimization: cancellation of adjacent inverse pairs,
/// folding of diagonal phase runs (T/S/Z powers), and merging of equal-kind
/// rotations — looking through gates on disjoint lines (which commute).
///
/// Every rewrite is unitary-preserving; the test suite *proves* this per
/// circuit by comparing canonical algebraic QMDDs of the original and the
/// optimized circuit — the O(1) exact equivalence check of the paper put to
/// work as an engineering tool.
#pragma once

#include "qc/circuit.hpp"

#include <cstddef>

namespace qadd::qc {

struct OptimizerReport {
  std::size_t removedGates = 0;
  std::size_t mergedRotations = 0;
  std::size_t passes = 0;
};

/// Optimize until a fixed point (bounded number of passes).
[[nodiscard]] Circuit optimize(const Circuit& circuit, OptimizerReport* report = nullptr);

} // namespace qadd::qc
