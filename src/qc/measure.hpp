/// \file measure.hpp
/// Measurement utilities on QMDD state vectors: single-qubit outcome
/// probabilities, projection (collapse), and weighted sampling — the
/// read-out layer every DD-based simulator ships with.
///
/// All probability computations walk the diagram with memoization; squared
/// magnitudes are taken from the weight system's complex conversion (for the
/// algebraic system that conversion carries a single final rounding).
#pragma once

#include "core/package.hpp"
#include "qc/circuit.hpp"

#include <cmath>
#include <cstdint>
#include <functional>
#include <random>
#include <unordered_map>

namespace qadd::qc {

/// ||subtree||^2 of a weight-1 edge to `node` (1.0 for the terminal),
/// memoized in `memo`.
template <class System>
[[nodiscard]] double
subtreeNormSquared(dd::Package<System>& package,
                   const typename dd::Package<System>::VNode* node,
                   std::unordered_map<const typename dd::Package<System>::VNode*, double>& memo) {
  if (node == nullptr) {
    return 1.0;
  }
  const auto it = memo.find(node);
  if (it != memo.end()) {
    return it->second;
  }
  double sum = 0.0;
  for (const auto& edge : node->e) {
    if (package.system().isZero(edge.w)) {
      continue;
    }
    sum += std::norm(package.system().toComplex(edge.w)) *
           subtreeNormSquared(package, edge.node, memo);
  }
  memo.emplace(node, sum);
  return sum;
}

/// Probability that measuring `qubit` yields |1>, given a normalized state.
template <class System>
[[nodiscard]] double probabilityOfOne(dd::Package<System>& package,
                                      const typename dd::Package<System>::VEdge& state,
                                      Qubit qubit) {
  using VNode = typename dd::Package<System>::VNode;
  std::unordered_map<const VNode*, double> normMemo;
  std::unordered_map<const VNode*, double> oneMemo;
  // perUnit(node) = P(qubit = 1) contribution of the subtree under a
  // weight-1 edge.
  const std::function<double(const VNode*)> perUnit = [&](const VNode* node) -> double {
    if (node == nullptr) {
      return 0.0; // the target qubit does not lie below the terminal
    }
    const auto it = oneMemo.find(node);
    if (it != oneMemo.end()) {
      return it->second;
    }
    double result = 0.0;
    for (std::size_t branch = 0; branch < 2; ++branch) {
      const auto& edge = node->e[branch];
      if (package.system().isZero(edge.w)) {
        continue;
      }
      const double childWeight = std::norm(package.system().toComplex(edge.w));
      if (node->var == qubit) {
        if (branch == 1) {
          result += childWeight * subtreeNormSquared(package, edge.node, normMemo);
        }
      } else {
        result += childWeight * perUnit(edge.node);
      }
    }
    oneMemo.emplace(node, result);
    return result;
  };
  return std::norm(package.system().toComplex(state.w)) * perUnit(state.node);
}

/// Sample a complete measurement outcome (most significant bit = qubit 0)
/// from the state's Born distribution.  The state must be normalized.
template <class System>
[[nodiscard]] std::uint64_t sampleOutcome(dd::Package<System>& package,
                                          const typename dd::Package<System>::VEdge& state,
                                          std::mt19937_64& rng) {
  using VNode = typename dd::Package<System>::VNode;
  std::unordered_map<const VNode*, double> normMemo;
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::uint64_t outcome = 0;
  const VNode* node = state.node;
  // Walk the diagram top-down, choosing each branch with its conditional
  // probability.
  while (node != nullptr) {
    const double w0 = package.system().isZero(node->e[0].w)
                          ? 0.0
                          : std::norm(package.system().toComplex(node->e[0].w)) *
                                subtreeNormSquared(package, node->e[0].node, normMemo);
    const double w1 = package.system().isZero(node->e[1].w)
                          ? 0.0
                          : std::norm(package.system().toComplex(node->e[1].w)) *
                                subtreeNormSquared(package, node->e[1].node, normMemo);
    const double total = w0 + w1;
    const bool one = total > 0.0 && uniform(rng) * total >= w0;
    outcome = (outcome << 1) | (one ? 1ULL : 0ULL);
    node = node->e[one ? 1 : 0].node;
  }
  return outcome;
}

/// Project the state onto `qubit == outcome` WITHOUT renormalizing: the
/// squared norm of the result is the outcome probability.  (Renormalization
/// by 1/sqrt(p) generally leaves D[omega], so the exact flavor keeps the
/// sub-normalized projection; callers that need a unit vector can divide in
/// the numeric flavor or track the norm separately.)
template <class System>
[[nodiscard]] typename dd::Package<System>::VEdge
projectQubit(dd::Package<System>& package, const typename dd::Package<System>::VEdge& state,
             Qubit qubit, bool outcome) {
  using VEdge = typename dd::Package<System>::VEdge;
  const std::function<VEdge(const VEdge&)> walk = [&](const VEdge& edge) -> VEdge {
    if (package.system().isZero(edge.w) || edge.isTerminal()) {
      return edge;
    }
    if (edge.node->var == qubit) {
      std::array<VEdge, 2> children{package.zeroVector(), package.zeroVector()};
      children[outcome ? 1 : 0] = edge.node->e[outcome ? 1 : 0];
      const VEdge projected = package.makeVNode(edge.node->var, children);
      return {projected.node, package.system().mul(edge.w, projected.w)};
    }
    std::array<VEdge, 2> children{walk(edge.node->e[0]), walk(edge.node->e[1])};
    if (package.system().isZero(children[0].w) && package.system().isZero(children[1].w)) {
      return package.zeroVector();
    }
    const VEdge rebuilt = package.makeVNode(edge.node->var, children);
    return {rebuilt.node, package.system().mul(edge.w, rebuilt.w)};
  };
  return walk(state);
}

} // namespace qadd::qc
