/// \file observables.hpp
/// Pauli-string observables on QMDD states.  For Z-type strings (the terms
/// of the diagonal molecular Hamiltonians used by GSE) the expectation value
/// of an exactly-prepared state is computed *exactly* in Q[omega] — e.g. the
/// energy of an eigenstate comes out as the precise algebraic number, not a
/// floating-point estimate.
#pragma once

#include "core/package.hpp"
#include "qc/circuit.hpp"
#include "qc/gates.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace qadd::qc {

/// One Pauli factor on a specific qubit.
enum class Pauli : std::uint8_t { I, X, Y, Z };

/// A Pauli string: one factor per qubit ('IXZY' order = qubit 0 first).
struct PauliString {
  std::vector<Pauli> factors;

  /// Parse from text like "ZIZY" (qubit 0 = first character).
  [[nodiscard]] static PauliString fromText(const std::string& text);
  [[nodiscard]] std::string toText() const;
};

/// Build the matrix DD of the Pauli string (identity on 'I' positions).
template <class System>
[[nodiscard]] typename dd::Package<System>::MEdge
makePauliString(dd::Package<System>& package, const PauliString& pauli) {
  if (pauli.factors.size() != package.qubits()) {
    throw std::invalid_argument("makePauliString: width mismatch");
  }
  auto result = package.makeIdentity();
  for (dd::Qubit q = 0; q < package.qubits(); ++q) {
    GateKind kind = GateKind::I;
    switch (pauli.factors[q]) {
    case Pauli::I:
      continue;
    case Pauli::X:
      kind = GateKind::X;
      break;
    case Pauli::Y:
      kind = GateKind::Y;
      break;
    case Pauli::Z:
      kind = GateKind::Z;
      break;
    }
    const Operation operation{kind, 0.0, q, {}};
    result = package.multiply(makeOperationDD(package, operation), result);
  }
  return result;
}

/// <psi| P |psi> as a weight (exact for the algebraic system).
template <class System>
[[nodiscard]] typename System::Weight
pauliExpectation(dd::Package<System>& package, const typename dd::Package<System>::VEdge& state,
                 const PauliString& pauli) {
  return package.expectationValue(makePauliString(package, pauli), state);
}

/// A weighted sum of Pauli strings (an observable/Hamiltonian).
struct PauliObservable {
  std::vector<std::pair<double, PauliString>> terms;

  /// <psi| H |psi> accumulated in double (each string's expectation is
  /// computed on the DD — exactly in the algebraic case — and scaled by its
  /// real coefficient).
  template <class System>
  [[nodiscard]] double expectation(dd::Package<System>& package,
                                   const typename dd::Package<System>::VEdge& state) const {
    double energy = 0.0;
    for (const auto& [coefficient, pauli] : terms) {
      energy +=
          coefficient * package.system().toComplex(pauliExpectation(package, state, pauli)).real();
    }
    return energy;
  }
};

} // namespace qadd::qc
