#include "qc/gates.hpp"

#include <cmath>
#include <stdexcept>

namespace qadd::qc {

bool isCliffordT(GateKind kind) {
  switch (kind) {
  case GateKind::Rx:
  case GateKind::Ry:
  case GateKind::Rz:
  case GateKind::Phase:
    return false;
  default:
    return true;
  }
}

bool isParameterized(GateKind kind) { return !isCliffordT(kind); }

std::array<std::complex<double>, 4> complexMatrix(GateKind kind, double angle) {
  return complexMatrixT<double>(kind, angle);
}

std::array<alg::QOmega, 4> algebraicMatrix(GateKind kind) {
  using alg::QOmega;
  using alg::ZOmega;
  const QOmega zero = QOmega::zero();
  const QOmega one = QOmega::one();
  const QOmega i = QOmega::imaginaryUnit();
  const QOmega h = QOmega::invSqrt2();
  switch (kind) {
  case GateKind::I:
    return {one, zero, zero, one};
  case GateKind::X:
    return {zero, one, one, zero};
  case GateKind::Y:
    return {zero, -i, i, zero};
  case GateKind::Z:
    return {one, zero, zero, -one};
  case GateKind::H:
    return {h, h, h, -h};
  case GateKind::S:
    return {one, zero, zero, i};
  case GateKind::Sdg:
    return {one, zero, zero, -i};
  case GateKind::T:
    return {one, zero, zero, QOmega::omega()};
  case GateKind::Tdg:
    return {one, zero, zero, QOmega::omegaPower(7)};
  case GateKind::V: {
    // (1 +- i)/2 both lie in D[omega].
    const QOmega p = (one + i) * QOmega{ZOmega::one(), 2}; // (1+i)/2
    const QOmega m = (one - i) * QOmega{ZOmega::one(), 2};
    return {p, m, m, p};
  }
  case GateKind::Vdg: {
    const QOmega p = (one + i) * QOmega{ZOmega::one(), 2};
    const QOmega m = (one - i) * QOmega{ZOmega::one(), 2};
    return {m, p, p, m};
  }
  default:
    throw std::invalid_argument(
        "algebraicMatrix: gate is not Clifford+T; compile rotations with qadd::synth first");
  }
}

std::string_view gateName(GateKind kind) {
  switch (kind) {
  case GateKind::I:
    return "id";
  case GateKind::X:
    return "x";
  case GateKind::Y:
    return "y";
  case GateKind::Z:
    return "z";
  case GateKind::H:
    return "h";
  case GateKind::S:
    return "s";
  case GateKind::Sdg:
    return "sdg";
  case GateKind::T:
    return "t";
  case GateKind::Tdg:
    return "tdg";
  case GateKind::V:
    return "v";
  case GateKind::Vdg:
    return "vdg";
  case GateKind::Rx:
    return "rx";
  case GateKind::Ry:
    return "ry";
  case GateKind::Rz:
    return "rz";
  case GateKind::Phase:
    return "p";
  }
  return "?";
}

GateKind gateKindFromName(std::string_view name) {
  for (const GateKind kind :
       {GateKind::I, GateKind::X, GateKind::Y, GateKind::Z, GateKind::H, GateKind::S,
        GateKind::Sdg, GateKind::T, GateKind::Tdg, GateKind::V, GateKind::Vdg, GateKind::Rx,
        GateKind::Ry, GateKind::Rz, GateKind::Phase}) {
    if (gateName(kind) == name) {
      return kind;
    }
  }
  throw std::invalid_argument("gateKindFromName: unknown gate '" + std::string{name} + "'");
}

GateKind adjointKind(GateKind kind) {
  switch (kind) {
  case GateKind::S:
    return GateKind::Sdg;
  case GateKind::Sdg:
    return GateKind::S;
  case GateKind::T:
    return GateKind::Tdg;
  case GateKind::Tdg:
    return GateKind::T;
  case GateKind::V:
    return GateKind::Vdg;
  case GateKind::Vdg:
    return GateKind::V;
  default:
    return kind; // self-adjoint, or parameterized (invert by negating angle)
  }
}

} // namespace qadd::qc
