/// \file equivalence.hpp
/// DD-based circuit equivalence checking — the design-automation task the
/// paper cites as a prime QMDD application ([20]-[23]) and the one that
/// benefits most from exact canonicity: with algebraic weights, "U1 == U2"
/// is a root-edge comparison, with no tolerance to tune and no false
/// verdicts.
///
/// Two strategies are provided:
///  - Construct: build both full unitaries and compare (robust, but the
///    intermediate diagrams can be large);
///  - Alternate: exploit U1 U2^dagger = I by applying gates of circuit 1
///    forward and gates of circuit 2 inverted into one accumulator,
///    interleaved proportionally to the circuit lengths (the strategy of
///    [23]); if the circuits are equivalent the accumulator hovers near the
///    identity and stays small.
#pragma once

#include "core/package.hpp"
#include "qc/circuit.hpp"
#include "qc/simulator.hpp"

#include <cstddef>
#include <string>

namespace qadd::qc {

enum class EquivalenceStrategy {
  Construct, ///< build U1 and U2, compare canonical diagrams
  Alternate, ///< accumulate U1 * U2^dagger towards the identity
};

struct EquivalenceResult {
  bool equivalent = false;
  /// Equal up to a global phase only (reported separately; many synthesis
  /// flows consider this equivalent).
  bool equivalentUpToPhase = false;
  /// Peak allocated node count during the check (cost indicator).
  std::size_t peakNodes = 0;
  std::string strategy;
};

/// Check whether two circuits over the same register implement the same
/// unitary, using the given weight system (AlgebraicSystem: exact verdicts;
/// NumericSystem: verdicts relative to the configured tolerance).
template <class System>
[[nodiscard]] EquivalenceResult
checkEquivalence(const Circuit& first, const Circuit& second,
                 EquivalenceStrategy strategy = EquivalenceStrategy::Alternate,
                 typename System::Config config = {}) {
  if (first.qubits() != second.qubits()) {
    throw std::invalid_argument("checkEquivalence: register widths differ");
  }
  dd::Package<System> package(first.qubits(), config);
  EquivalenceResult result;
  const auto identity = package.makeIdentity();
  // The identity is compared against at the very end; protect it in case a
  // configured GC watermark triggers a collection inside the decRefs below.
  package.incRef(identity);

  if (strategy == EquivalenceStrategy::Construct) {
    result.strategy = "construct";
    const auto u1 = buildUnitary(package, first);
    const auto u2 = buildUnitary(package, second);
    result.equivalent = u1 == u2;
    result.equivalentUpToPhase = package.equalUpToGlobalPhase(u1, u2);
  } else {
    result.strategy = "alternate";
    // accumulator := G1_k ... G1_1 * (G2_l ... G2_1)^dagger, built as
    // G1 gates multiplied from the left, G2^dagger gates from the right.
    const Circuit secondInverse = second.inverse();
    auto accumulator = identity;
    package.incRef(accumulator);
    std::size_t i = 0; // applied from first
    std::size_t j = 0; // applied from secondInverse (right side)
    const std::size_t total1 = first.size();
    const std::size_t total2 = secondInverse.size();
    while (i < total1 || j < total2) {
      // Keep the application ratio proportional to the gate counts.
      const bool takeFirst =
          j >= total2 ||
          (i < total1 && i * (total2 + 1) <= j * (total1 + 1));
      if (takeFirst) {
        const auto gate = makeOperationDD(package, first.operations()[i]);
        const auto next = package.multiply(gate, accumulator);
        package.incRef(next);
        package.decRef(accumulator);
        accumulator = next;
        ++i;
      } else {
        // Right-multiplying by the next gate of second^-1: note
        // (G_l ... G_1)^dagger = G_1^dagger ... G_l^dagger, so the inverse
        // circuit's gates are applied right-to-left on the right side —
        // which is exactly front-to-back of `secondInverse` reversed again;
        // we simply multiply on the right in `secondInverse` order reversed:
        const auto& operation =
            secondInverse.operations()[total2 - 1 - j];
        const auto gate = makeOperationDD(package, operation);
        const auto next = package.multiply(accumulator, gate);
        package.incRef(next);
        package.decRef(accumulator);
        accumulator = next;
        ++j;
      }
    }
    result.equivalent = accumulator == identity;
    result.equivalentUpToPhase = package.equalUpToGlobalPhase(accumulator, identity);
  }
  result.peakNodes = package.peakNodes();
  return result;
}

} // namespace qadd::qc
