/// \file gates.hpp
/// Elementary quantum gates: kinds, parameterization and their matrices, both
/// as complex doubles (numerical QMDD flavor) and as exact Q[omega] values
/// (algebraic flavor).  The exactly representable gates are precisely the
/// Clifford+T family (Section IV-A: a unitary is exactly Clifford+T iff its
/// entries lie in D[omega]); rotation gates carry an angle and only exist
/// numerically until they are compiled to Clifford+T by qadd::synth.
#pragma once

#include "algebraic/qomega.hpp"

#include <array>
#include <cmath>
#include <complex>
#include <stdexcept>
#include <string>
#include <string_view>

#ifndef M_PIl
#define M_PIl 3.141592653589793238462643383279502884L
#endif

namespace qadd::qc {

enum class GateKind {
  I,
  X,
  Y,
  Z,
  H,
  S,
  Sdg,
  T,
  Tdg,
  V,   // sqrt(X)
  Vdg, // sqrt(X)^dagger
  Rx,  // exp(-i angle X / 2)
  Ry,  // exp(-i angle Y / 2)
  Rz,  // exp(-i angle Z / 2)
  Phase, // diag(1, exp(i angle))
};

/// True for gates whose matrix entries lie in D[omega] (exactly representable
/// by the algebraic QMDD).
[[nodiscard]] bool isCliffordT(GateKind kind);

/// True for gates carrying an angle parameter.
[[nodiscard]] bool isParameterized(GateKind kind);

/// Matrix [u00, u01, u10, u11] in the requested floating-point precision.
/// `complexMatrixT<long double>` feeds the extended-precision numeric system
/// (the constants must be computed in the target precision or the wider
/// mantissa would be wasted on double-rounded gate entries).
template <class FloatT>
[[nodiscard]] std::array<std::complex<FloatT>, 4> complexMatrixT(GateKind kind,
                                                                 FloatT angle = 0) {
  using C = std::complex<FloatT>;
  const FloatT invSqrt2 = FloatT{1} / std::sqrt(FloatT{2});
  const C i{0, 1};
  const FloatT pi = static_cast<FloatT>(M_PIl);
  switch (kind) {
  case GateKind::I:
    return {C{1}, C{0}, C{0}, C{1}};
  case GateKind::X:
    return {C{0}, C{1}, C{1}, C{0}};
  case GateKind::Y:
    return {C{0}, -i, i, C{0}};
  case GateKind::Z:
    return {C{1}, C{0}, C{0}, C{-1}};
  case GateKind::H:
    return {C{invSqrt2}, C{invSqrt2}, C{invSqrt2}, C{-invSqrt2}};
  case GateKind::S:
    return {C{1}, C{0}, C{0}, i};
  case GateKind::Sdg:
    return {C{1}, C{0}, C{0}, -i};
  case GateKind::T:
    return {C{1}, C{0}, C{0}, std::exp(i * (pi / 4))};
  case GateKind::Tdg:
    return {C{1}, C{0}, C{0}, std::exp(-i * (pi / 4))};
  case GateKind::V:
    return {FloatT{0.5} * (C{1} + i), FloatT{0.5} * (C{1} - i), FloatT{0.5} * (C{1} - i),
            FloatT{0.5} * (C{1} + i)};
  case GateKind::Vdg:
    return {FloatT{0.5} * (C{1} - i), FloatT{0.5} * (C{1} + i), FloatT{0.5} * (C{1} + i),
            FloatT{0.5} * (C{1} - i)};
  case GateKind::Rx: {
    const FloatT c = std::cos(angle / 2);
    const FloatT s = std::sin(angle / 2);
    return {C{c}, -i * s, -i * s, C{c}};
  }
  case GateKind::Ry: {
    const FloatT c = std::cos(angle / 2);
    const FloatT s = std::sin(angle / 2);
    return {C{c}, C{-s}, C{s}, C{c}};
  }
  case GateKind::Rz:
    return {std::exp(-i * (angle / 2)), C{0}, C{0}, std::exp(i * (angle / 2))};
  case GateKind::Phase:
    return {C{1}, C{0}, C{0}, std::exp(i * angle)};
  }
  throw std::invalid_argument("complexMatrixT: unknown gate kind");
}

/// Matrix [u00, u01, u10, u11] as complex doubles.
[[nodiscard]] std::array<std::complex<double>, 4> complexMatrix(GateKind kind,
                                                                double angle = 0.0);

/// Matrix as exact Q[omega] values.
/// \throws std::invalid_argument for parameterized (non-Clifford+T) gates.
[[nodiscard]] std::array<alg::QOmega, 4> algebraicMatrix(GateKind kind);

/// Lower-case mnemonic ("h", "tdg", "rz", ...).
[[nodiscard]] std::string_view gateName(GateKind kind);

/// Inverse of gateName. \throws std::invalid_argument for unknown names.
[[nodiscard]] GateKind gateKindFromName(std::string_view name);

/// The adjoint gate kind, and the angle transformation that goes with it
/// (parameterized gates invert by negating the angle).
[[nodiscard]] GateKind adjointKind(GateKind kind);

} // namespace qadd::qc
