/// \file qasm.hpp
/// OpenQASM 2.0 interoperability (a practical subset): import benchmark
/// circuits written for other toolchains and export ours.  Supported gates:
/// id, x, y, z, h, s, sdg, t, tdg, rx, ry, rz, p/u1, cx, cz, ccx, swap, and
/// the barrier/measure statements (which carry no unitary semantics and are
/// skipped on import).
#pragma once

#include "qc/circuit.hpp"

#include <iosfwd>
#include <string>

namespace qadd::qc {

/// Parse OpenQASM 2.0 source.  Multiple qreg declarations are concatenated
/// in declaration order; q[i] of the first register maps to qubit i.
/// \throws std::invalid_argument on unsupported or malformed constructs.
[[nodiscard]] Circuit fromQasm(const std::string& source);

/// Emit OpenQASM 2.0 with a single register q[n].  Multi-controlled gates
/// beyond ccx/cz and negative controls have no qelib1 equivalent and throw.
[[nodiscard]] std::string toQasm(const Circuit& circuit);

} // namespace qadd::qc
