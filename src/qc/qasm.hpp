/// \file qasm.hpp
/// OpenQASM 2.0 interoperability (a practical subset): import benchmark
/// circuits written for other toolchains and export ours.  Supported gates:
/// id, x, y, z, h, s, sdg, t, tdg, rx, ry, rz, p/u1, cx, cz, ccx, swap, and
/// the barrier/measure statements (which carry no unitary semantics and are
/// skipped on import).
#pragma once

#include "qc/circuit.hpp"

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <string>

namespace qadd::qc {

/// Parse failure with source coordinates: the 1-based line and column of the
/// offending construct plus the token itself, so an embedding layer (the
/// qadd_serve daemon in particular) can return actionable errors instead of a
/// bare message.  Derives from std::invalid_argument, so callers that only
/// catch the old type keep working; what() renders
/// "qasm:<line>:<column>: <message> (near '<token>')".
class ParseError : public std::invalid_argument {
public:
  ParseError(std::size_t line, std::size_t column, std::string token, const std::string& message);

  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] std::size_t column() const { return column_; }
  [[nodiscard]] const std::string& token() const { return token_; }

private:
  std::size_t line_;
  std::size_t column_;
  std::string token_;
};

/// Parse OpenQASM 2.0 source.  Multiple qreg declarations are concatenated
/// in declaration order; q[i] of the first register maps to qubit i.
/// \throws ParseError (an std::invalid_argument) on unsupported or malformed
/// constructs, carrying the line/column and the offending token.
[[nodiscard]] Circuit fromQasm(const std::string& source);

/// Emit OpenQASM 2.0 with a single register q[n].  Multi-controlled gates
/// beyond ccx/cz and negative controls have no qelib1 equivalent and throw.
[[nodiscard]] std::string toQasm(const Circuit& circuit);

} // namespace qadd::qc
