#include "qc/qasm.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace qadd::qc {

namespace {

std::string renderMessage(std::size_t line, std::size_t column, const std::string& token,
                          const std::string& message) {
  std::string rendered = "qasm:" + std::to_string(line) + ":" + std::to_string(column) + ": " +
                         message;
  if (!token.empty()) {
    rendered += " (near '" + token + "')";
  }
  return rendered;
}

/// 1-based line/column of a byte offset in the original source.
std::pair<std::size_t, std::size_t> lineColumn(std::string_view source, std::size_t offset) {
  std::size_t line = 1;
  std::size_t column = 1;
  const std::size_t end = std::min(offset, source.size());
  for (std::size_t i = 0; i < end; ++i) {
    if (source[i] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
  }
  return {line, column};
}

[[noreturn]] void failAt(std::string_view source, std::size_t offset, std::string token,
                         const std::string& message) {
  const auto [line, column] = lineColumn(source, offset);
  throw ParseError(line, column, std::move(token), message);
}

/// Minimal arithmetic-expression evaluator for gate arguments: numbers, pi,
/// + - * / and parentheses (covers what qelib-style sources use, e.g.
/// "-pi/4", "3*pi/8").  `baseOffset` is the position of the expression in the
/// original source, so errors carry exact coordinates.
class ExpressionParser {
public:
  ExpressionParser(std::string_view source, std::string_view text, std::size_t baseOffset)
      : source_(source), text_(text), baseOffset_(baseOffset) {}

  double parse() {
    const double value = parseSum();
    skipSpace();
    if (position_ != text_.size()) {
      fail(position_, std::string{text_.substr(position_)},
           "trailing characters in expression");
    }
    return value;
  }

private:
  [[noreturn]] void fail(std::size_t position, std::string token, const std::string& message) {
    failAt(source_, baseOffset_ + position, std::move(token), message);
  }

  void skipSpace() {
    while (position_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[position_])) != 0) {
      ++position_;
    }
  }
  bool consume(char c) {
    skipSpace();
    if (position_ < text_.size() && text_[position_] == c) {
      ++position_;
      return true;
    }
    return false;
  }
  double parseSum() {
    double value = parseProduct();
    while (true) {
      if (consume('+')) {
        value += parseProduct();
      } else if (consume('-')) {
        value -= parseProduct();
      } else {
        return value;
      }
    }
  }
  double parseProduct() {
    double value = parseUnary();
    while (true) {
      if (consume('*')) {
        value *= parseUnary();
      } else if (consume('/')) {
        value /= parseUnary();
      } else {
        return value;
      }
    }
  }
  double parseUnary() {
    if (consume('-')) {
      return -parseUnary();
    }
    if (consume('+')) {
      return parseUnary();
    }
    return parseAtom();
  }
  double parseAtom() {
    skipSpace();
    if (consume('(')) {
      const double value = parseSum();
      if (!consume(')')) {
        fail(position_, std::string{text_}, "missing ')' in expression");
      }
      return value;
    }
    if (position_ + 1 < text_.size() && text_.compare(position_, 2, "pi") == 0) {
      position_ += 2;
      return M_PI;
    }
    const std::size_t start = position_;
    while (position_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[position_])) != 0 ||
            text_[position_] == '.' || text_[position_] == 'e' || text_[position_] == 'E' ||
            ((text_[position_] == '+' || text_[position_] == '-') && position_ > start &&
             (text_[position_ - 1] == 'e' || text_[position_ - 1] == 'E')))) {
      ++position_;
    }
    if (position_ == start) {
      fail(start, std::string{text_}, "expected number in expression");
    }
    const std::string token{text_.substr(start, position_ - start)};
    try {
      return std::stod(token);
    } catch (const std::out_of_range&) {
      fail(start, token, "number out of range in expression");
    }
  }

  std::string_view source_;
  std::string_view text_;
  std::size_t baseOffset_ = 0;
  std::size_t position_ = 0;
};

/// One ';'-delimited statement: its trimmed text plus the byte offset of that
/// text in the original source (comment stripping is offset-preserving).
struct Statement {
  std::string text;
  std::size_t offset = 0;
};

/// Registers wider (and indices larger) than this are rejected outright: a
/// 2^20-qubit DD is far past anything simulable, and the bound keeps huge
/// literals from wrapping through the narrower Qubit cast at the call sites.
constexpr std::size_t kMaxQasmIndex = 1U << 20U;

/// Parse a decimal unsigned integer; the whole token must be digits.
std::size_t parseIndex(std::string_view source, std::string_view digits, std::size_t offset,
                       const std::string& what) {
  if (digits.empty() ||
      !std::all_of(digits.begin(), digits.end(),
                   [](unsigned char c) { return std::isdigit(c) != 0; })) {
    failAt(source, offset, std::string{digits}, "expected an unsigned integer " + what);
  }
  std::size_t value = kMaxQasmIndex + 1; // stoul overflow counts as too large
  try {
    value = std::stoul(std::string{digits});
  } catch (const std::out_of_range&) {
  }
  if (value > kMaxQasmIndex) {
    failAt(source, offset, std::string{digits}, "integer too large " + what);
  }
  return value;
}

} // namespace

ParseError::ParseError(std::size_t line, std::size_t column, std::string token,
                       const std::string& message)
    : std::invalid_argument(renderMessage(line, column, token, message)), line_(line),
      column_(column), token_(std::move(token)) {}

Circuit fromQasm(const std::string& source) {
  // Blank out comments in place of deleting them, so every byte offset in
  // `cleaned` is also a byte offset in `source` — that equivalence is what
  // lets every error below report exact line/column coordinates.
  std::string cleaned = source;
  for (std::size_t i = 0; i + 1 < cleaned.size(); ++i) {
    if (cleaned[i] == '/' && cleaned[i + 1] == '/') {
      while (i < cleaned.size() && cleaned[i] != '\n') {
        cleaned[i++] = ' ';
      }
    }
  }

  std::map<std::string, std::pair<Qubit, Qubit>> registers; // qreg name -> {base, width}
  Qubit totalQubits = 0;
  std::vector<Statement> statements;
  {
    std::size_t start = 0;
    for (std::size_t i = 0; i <= cleaned.size(); ++i) {
      if (i < cleaned.size() && cleaned[i] != ';') {
        continue;
      }
      // [start, i) is one raw statement; trim it while keeping the offset of
      // the first retained character.
      std::size_t first = start;
      while (first < i && std::isspace(static_cast<unsigned char>(cleaned[first])) != 0) {
        ++first;
      }
      std::size_t last = i;
      while (last > first && std::isspace(static_cast<unsigned char>(cleaned[last - 1])) != 0) {
        --last;
      }
      if (first < last) {
        if (i == cleaned.size()) {
          failAt(source, first, cleaned.substr(first, last - first),
                 "missing ';' after last statement");
        }
        statements.push_back({cleaned.substr(first, last - first), first});
      }
      start = i + 1;
    }
  }

  // First pass: collect qreg declarations (so the Circuit width is known).
  std::vector<Statement> bodyStatements;
  for (const Statement& statement : statements) {
    if (statement.text.starts_with("OPENQASM") || statement.text.starts_with("include") ||
        statement.text.starts_with("creg") || statement.text.starts_with("barrier") ||
        statement.text.starts_with("measure")) {
      continue;
    }
    if (statement.text.starts_with("qreg")) {
      const auto open = statement.text.find('[');
      const auto close = statement.text.find(']');
      if (open == std::string::npos || close == std::string::npos || close < open) {
        failAt(source, statement.offset, statement.text, "malformed qreg");
      }
      const std::string name = [&] {
        std::string n = statement.text.substr(4, open - 4);
        n.erase(n.begin(), std::find_if(n.begin(), n.end(), [](unsigned char c) {
                  return std::isspace(c) == 0;
                }));
        n.erase(std::find_if(n.rbegin(), n.rend(),
                             [](unsigned char c) { return std::isspace(c) == 0; })
                    .base(),
                n.end());
        return n;
      }();
      const auto width = static_cast<Qubit>(
          parseIndex(source, std::string_view{statement.text}.substr(open + 1, close - open - 1),
                     statement.offset + open + 1, "as the register width"));
      registers[name] = {totalQubits, width};
      totalQubits += width;
      continue;
    }
    bodyStatements.push_back(statement);
  }
  if (totalQubits == 0) {
    failAt(source, 0, "", "no qreg declared");
  }

  Circuit circuit(totalQubits, "qasm");
  // `token` is a slice of a statement's text; `localOffset` its position
  // within that statement.
  const auto parseQubit = [&](const Statement& statement, std::string_view token,
                              std::size_t localOffset) {
    while (!token.empty() && std::isspace(static_cast<unsigned char>(token.front())) != 0) {
      token.remove_prefix(1);
      ++localOffset;
    }
    while (!token.empty() && std::isspace(static_cast<unsigned char>(token.back())) != 0) {
      token.remove_suffix(1);
    }
    const std::size_t tokenOffset = statement.offset + localOffset;
    const auto open = token.find('[');
    const auto close = token.find(']');
    if (open == std::string::npos || close == std::string::npos || close < open) {
      failAt(source, tokenOffset, std::string{token}, "expected a qubit reference");
    }
    std::string name{token.substr(0, open)};
    name.erase(std::find_if(name.rbegin(), name.rend(),
                            [](unsigned char c) { return std::isspace(c) == 0; })
                   .base(),
               name.end());
    const auto it = registers.find(name);
    if (it == registers.end()) {
      failAt(source, tokenOffset, name, "unknown register");
    }
    const std::size_t index = parseIndex(source, token.substr(open + 1, close - open - 1),
                                         tokenOffset + open + 1, "as the qubit index");
    if (index >= it->second.second) {
      failAt(source, tokenOffset, std::string{token}, "qubit index out of range for register");
    }
    return static_cast<Qubit>(it->second.first + index);
  };

  for (const Statement& statement : bodyStatements) {
    // <name>[(args)] operand {, operand}
    std::size_t nameEnd = 0;
    while (nameEnd < statement.text.size() && statement.text[nameEnd] != ' ' &&
           statement.text[nameEnd] != '(') {
      ++nameEnd;
    }
    const std::string name = statement.text.substr(0, nameEnd);
    double angle = 0.0;
    std::size_t operandStart = nameEnd;
    if (nameEnd < statement.text.size() && statement.text[nameEnd] == '(') {
      const auto close = statement.text.find(')', nameEnd);
      if (close == std::string::npos) {
        failAt(source, statement.offset + nameEnd, statement.text, "missing ')' in gate call");
      }
      angle = ExpressionParser(source, statement.text.substr(nameEnd + 1, close - nameEnd - 1),
                               statement.offset + nameEnd + 1)
                  .parse();
      operandStart = close + 1;
    }
    std::vector<Qubit> operands;
    {
      std::string_view rest{statement.text};
      std::size_t position = operandStart;
      while (position < rest.size()) {
        std::size_t comma = rest.find(',', position);
        if (comma == std::string::npos) {
          comma = rest.size();
        }
        operands.push_back(parseQubit(statement, rest.substr(position, comma - position), position));
        position = comma + 1;
      }
    }
    const auto need = [&](std::size_t count) {
      if (operands.size() != count) {
        failAt(source, statement.offset, statement.text,
               "wrong operand count for '" + name + "': expected " + std::to_string(count) +
                   ", got " + std::to_string(operands.size()));
      }
    };
    if (name == "id") {
      need(1);
      circuit.gate(GateKind::I, operands[0]);
    } else if (name == "x" || name == "y" || name == "z" || name == "h" || name == "s" ||
               name == "sdg" || name == "t" || name == "tdg") {
      need(1);
      circuit.gate(gateKindFromName(name), operands[0]);
    } else if (name == "rx" || name == "ry" || name == "rz") {
      need(1);
      circuit.append({gateKindFromName(name), angle, operands[0], {}});
    } else if (name == "p" || name == "u1") {
      need(1);
      circuit.phase(angle, operands[0]);
    } else if (name == "cx" || name == "CX") {
      need(2);
      circuit.cx(operands[0], operands[1]);
    } else if (name == "cz") {
      need(2);
      circuit.cz(operands[0], operands[1]);
    } else if (name == "ccx") {
      need(3);
      circuit.ccx(operands[0], operands[1], operands[2]);
    } else if (name == "swap") {
      need(2);
      circuit.swap(operands[0], operands[1]);
    } else if (name == "cp" || name == "cu1") {
      need(2);
      circuit.controlled(GateKind::Phase, operands[1], {{operands[0], true}}, angle);
    } else {
      failAt(source, statement.offset, name, "unsupported gate");
    }
  }
  return circuit;
}

std::string toQasm(const Circuit& circuit) {
  std::ostringstream os;
  os << "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[" << circuit.qubits() << "];\n";
  os.precision(17);
  for (const Operation& operation : circuit.operations()) {
    for (const ControlSpec& control : operation.controls) {
      if (!control.positive) {
        throw std::invalid_argument("toQasm: negative controls are not expressible in qelib1");
      }
    }
    const auto q = [](Qubit qubit) {
      return "q[" + std::to_string(qubit) + "]";
    };
    if (operation.controls.empty()) {
      if (operation.kind == GateKind::Phase) {
        os << "u1(" << operation.angle << ") " << q(operation.target) << ";\n";
      } else if (isParameterized(operation.kind)) {
        os << gateName(operation.kind) << "(" << operation.angle << ") " << q(operation.target)
           << ";\n";
      } else if (operation.kind == GateKind::I) {
        os << "id " << q(operation.target) << ";\n";
      } else if (operation.kind == GateKind::V || operation.kind == GateKind::Vdg) {
        throw std::invalid_argument("toQasm: v/vdg have no qelib1 equivalent");
      } else {
        os << gateName(operation.kind) << " " << q(operation.target) << ";\n";
      }
    } else if (operation.controls.size() == 1 && operation.kind == GateKind::X) {
      os << "cx " << q(operation.controls[0].qubit) << ", " << q(operation.target) << ";\n";
    } else if (operation.controls.size() == 1 && operation.kind == GateKind::Z) {
      os << "cz " << q(operation.controls[0].qubit) << ", " << q(operation.target) << ";\n";
    } else if (operation.controls.size() == 1 && operation.kind == GateKind::Phase) {
      os << "cu1(" << operation.angle << ") " << q(operation.controls[0].qubit) << ", "
         << q(operation.target) << ";\n";
    } else if (operation.controls.size() == 2 && operation.kind == GateKind::X) {
      os << "ccx " << q(operation.controls[0].qubit) << ", " << q(operation.controls[1].qubit)
         << ", " << q(operation.target) << ";\n";
    } else {
      throw std::invalid_argument("toQasm: gate has no qelib1 encoding");
    }
  }
  return os.str();
}

} // namespace qadd::qc
