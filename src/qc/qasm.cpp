#include "qc/qasm.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace qadd::qc {

namespace {

/// Minimal arithmetic-expression evaluator for gate arguments: numbers, pi,
/// + - * / and parentheses (covers what qelib-style sources use, e.g.
/// "-pi/4", "3*pi/8").
class ExpressionParser {
public:
  explicit ExpressionParser(std::string_view text) : text_(text) {}

  double parse() {
    const double value = parseSum();
    skipSpace();
    if (position_ != text_.size()) {
      throw std::invalid_argument("qasm: trailing characters in expression '" +
                                  std::string{text_} + "'");
    }
    return value;
  }

private:
  void skipSpace() {
    while (position_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[position_])) != 0) {
      ++position_;
    }
  }
  bool consume(char c) {
    skipSpace();
    if (position_ < text_.size() && text_[position_] == c) {
      ++position_;
      return true;
    }
    return false;
  }
  double parseSum() {
    double value = parseProduct();
    while (true) {
      if (consume('+')) {
        value += parseProduct();
      } else if (consume('-')) {
        value -= parseProduct();
      } else {
        return value;
      }
    }
  }
  double parseProduct() {
    double value = parseUnary();
    while (true) {
      if (consume('*')) {
        value *= parseUnary();
      } else if (consume('/')) {
        value /= parseUnary();
      } else {
        return value;
      }
    }
  }
  double parseUnary() {
    if (consume('-')) {
      return -parseUnary();
    }
    if (consume('+')) {
      return parseUnary();
    }
    return parseAtom();
  }
  double parseAtom() {
    skipSpace();
    if (consume('(')) {
      const double value = parseSum();
      if (!consume(')')) {
        throw std::invalid_argument("qasm: missing ')' in expression");
      }
      return value;
    }
    if (position_ + 1 < text_.size() && text_.compare(position_, 2, "pi") == 0) {
      position_ += 2;
      return M_PI;
    }
    const std::size_t start = position_;
    while (position_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[position_])) != 0 ||
            text_[position_] == '.' || text_[position_] == 'e' || text_[position_] == 'E' ||
            ((text_[position_] == '+' || text_[position_] == '-') && position_ > start &&
             (text_[position_ - 1] == 'e' || text_[position_ - 1] == 'E')))) {
      ++position_;
    }
    if (position_ == start) {
      throw std::invalid_argument("qasm: expected number in expression '" + std::string{text_} +
                                  "'");
    }
    return std::stod(std::string{text_.substr(start, position_ - start)});
  }

  std::string_view text_;
  std::size_t position_ = 0;
};

std::string trim(std::string s) {
  const auto notSpace = [](unsigned char c) { return std::isspace(c) == 0; };
  s.erase(s.begin(), std::find_if(s.begin(), s.end(), notSpace));
  s.erase(std::find_if(s.rbegin(), s.rend(), notSpace).base(), s.end());
  return s;
}

} // namespace

Circuit fromQasm(const std::string& source) {
  // Strip comments and split on ';'.
  std::string cleaned;
  cleaned.reserve(source.size());
  for (std::size_t i = 0; i < source.size(); ++i) {
    if (source[i] == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      while (i < source.size() && source[i] != '\n') {
        ++i;
      }
    }
    if (i < source.size()) {
      cleaned.push_back(source[i]);
    }
  }

  std::map<std::string, Qubit> registerOffsets; // qreg name -> base qubit
  Qubit totalQubits = 0;
  std::vector<std::string> statements;
  {
    std::string current;
    for (const char c : cleaned) {
      if (c == ';') {
        statements.push_back(trim(current));
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    if (!trim(current).empty()) {
      throw std::invalid_argument("qasm: missing ';' after last statement");
    }
  }

  // First pass: collect qreg declarations (so the Circuit width is known).
  std::vector<std::string> bodyStatements;
  for (const std::string& statement : statements) {
    if (statement.empty() || statement.starts_with("OPENQASM") ||
        statement.starts_with("include") || statement.starts_with("creg") ||
        statement.starts_with("barrier") || statement.starts_with("measure")) {
      continue;
    }
    if (statement.starts_with("qreg")) {
      const auto open = statement.find('[');
      const auto close = statement.find(']');
      if (open == std::string::npos || close == std::string::npos || close < open) {
        throw std::invalid_argument("qasm: malformed qreg: " + statement);
      }
      const std::string name = trim(statement.substr(4, open - 4));
      const auto width = static_cast<Qubit>(std::stoul(statement.substr(open + 1, close - open - 1)));
      registerOffsets[name] = totalQubits;
      totalQubits += width;
      continue;
    }
    bodyStatements.push_back(statement);
  }
  if (totalQubits == 0) {
    throw std::invalid_argument("qasm: no qreg declared");
  }

  Circuit circuit(totalQubits, "qasm");
  const auto parseQubit = [&](std::string token) {
    token = trim(std::move(token));
    const auto open = token.find('[');
    const auto close = token.find(']');
    if (open == std::string::npos || close == std::string::npos) {
      throw std::invalid_argument("qasm: expected qubit reference, got '" + token + "'");
    }
    const std::string name = trim(token.substr(0, open));
    const auto it = registerOffsets.find(name);
    if (it == registerOffsets.end()) {
      throw std::invalid_argument("qasm: unknown register '" + name + "'");
    }
    const auto index = static_cast<Qubit>(std::stoul(token.substr(open + 1, close - open - 1)));
    return static_cast<Qubit>(it->second + index);
  };

  for (const std::string& statement : bodyStatements) {
    // <name>[(args)] operand {, operand}
    std::size_t nameEnd = 0;
    while (nameEnd < statement.size() && statement[nameEnd] != ' ' && statement[nameEnd] != '(') {
      ++nameEnd;
    }
    const std::string name = statement.substr(0, nameEnd);
    double angle = 0.0;
    std::size_t operandStart = nameEnd;
    if (nameEnd < statement.size() && statement[nameEnd] == '(') {
      const auto close = statement.find(')', nameEnd);
      if (close == std::string::npos) {
        throw std::invalid_argument("qasm: missing ')' in " + statement);
      }
      angle = ExpressionParser(statement.substr(nameEnd + 1, close - nameEnd - 1)).parse();
      operandStart = close + 1;
    }
    std::vector<Qubit> operands;
    {
      std::stringstream operandStream(statement.substr(operandStart));
      std::string token;
      while (std::getline(operandStream, token, ',')) {
        operands.push_back(parseQubit(token));
      }
    }
    const auto need = [&](std::size_t count) {
      if (operands.size() != count) {
        throw std::invalid_argument("qasm: wrong operand count in " + statement);
      }
    };
    if (name == "id") {
      need(1);
      circuit.gate(GateKind::I, operands[0]);
    } else if (name == "x" || name == "y" || name == "z" || name == "h" || name == "s" ||
               name == "sdg" || name == "t" || name == "tdg") {
      need(1);
      circuit.gate(gateKindFromName(name), operands[0]);
    } else if (name == "rx" || name == "ry" || name == "rz") {
      need(1);
      circuit.append({gateKindFromName(name), angle, operands[0], {}});
    } else if (name == "p" || name == "u1") {
      need(1);
      circuit.phase(angle, operands[0]);
    } else if (name == "cx" || name == "CX") {
      need(2);
      circuit.cx(operands[0], operands[1]);
    } else if (name == "cz") {
      need(2);
      circuit.cz(operands[0], operands[1]);
    } else if (name == "ccx") {
      need(3);
      circuit.ccx(operands[0], operands[1], operands[2]);
    } else if (name == "swap") {
      need(2);
      circuit.swap(operands[0], operands[1]);
    } else if (name == "cp" || name == "cu1") {
      need(2);
      circuit.controlled(GateKind::Phase, operands[1], {{operands[0], true}}, angle);
    } else {
      throw std::invalid_argument("qasm: unsupported gate '" + name + "'");
    }
  }
  return circuit;
}

std::string toQasm(const Circuit& circuit) {
  std::ostringstream os;
  os << "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[" << circuit.qubits() << "];\n";
  os.precision(17);
  for (const Operation& operation : circuit.operations()) {
    for (const ControlSpec& control : operation.controls) {
      if (!control.positive) {
        throw std::invalid_argument("toQasm: negative controls are not expressible in qelib1");
      }
    }
    const auto q = [](Qubit qubit) {
      return "q[" + std::to_string(qubit) + "]";
    };
    if (operation.controls.empty()) {
      if (operation.kind == GateKind::Phase) {
        os << "u1(" << operation.angle << ") " << q(operation.target) << ";\n";
      } else if (isParameterized(operation.kind)) {
        os << gateName(operation.kind) << "(" << operation.angle << ") " << q(operation.target)
           << ";\n";
      } else if (operation.kind == GateKind::I) {
        os << "id " << q(operation.target) << ";\n";
      } else if (operation.kind == GateKind::V || operation.kind == GateKind::Vdg) {
        throw std::invalid_argument("toQasm: v/vdg have no qelib1 equivalent");
      } else {
        os << gateName(operation.kind) << " " << q(operation.target) << ";\n";
      }
    } else if (operation.controls.size() == 1 && operation.kind == GateKind::X) {
      os << "cx " << q(operation.controls[0].qubit) << ", " << q(operation.target) << ";\n";
    } else if (operation.controls.size() == 1 && operation.kind == GateKind::Z) {
      os << "cz " << q(operation.controls[0].qubit) << ", " << q(operation.target) << ";\n";
    } else if (operation.controls.size() == 1 && operation.kind == GateKind::Phase) {
      os << "cu1(" << operation.angle << ") " << q(operation.controls[0].qubit) << ", "
         << q(operation.target) << ";\n";
    } else if (operation.controls.size() == 2 && operation.kind == GateKind::X) {
      os << "ccx " << q(operation.controls[0].qubit) << ", " << q(operation.controls[1].qubit)
         << ", " << q(operation.target) << ";\n";
    } else {
      throw std::invalid_argument("toQasm: gate has no qelib1 encoding");
    }
  }
  return os.str();
}

} // namespace qadd::qc
