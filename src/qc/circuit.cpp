#include "qc/circuit.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace qadd::qc {

Circuit& Circuit::append(Operation operation) {
  if (operation.target >= nqubits_) {
    throw std::out_of_range("Circuit: target qubit out of range");
  }
  for (const ControlSpec& control : operation.controls) {
    if (control.qubit >= nqubits_) {
      throw std::out_of_range("Circuit: control qubit out of range");
    }
    if (control.qubit == operation.target) {
      throw std::invalid_argument("Circuit: control equals target");
    }
  }
  operations_.push_back(std::move(operation));
  return *this;
}

Circuit& Circuit::mcx(const std::vector<Qubit>& controls, Qubit target) {
  std::vector<ControlSpec> specs;
  specs.reserve(controls.size());
  for (const Qubit q : controls) {
    specs.push_back({q, true});
  }
  return append({GateKind::X, 0.0, target, std::move(specs)});
}

Circuit& Circuit::mcz(const std::vector<Qubit>& controls, Qubit target) {
  std::vector<ControlSpec> specs;
  specs.reserve(controls.size());
  for (const Qubit q : controls) {
    specs.push_back({q, true});
  }
  return append({GateKind::Z, 0.0, target, std::move(specs)});
}

Circuit& Circuit::append(const Circuit& other) {
  if (other.nqubits_ != nqubits_) {
    throw std::invalid_argument("Circuit: appending circuit of different width");
  }
  operations_.insert(operations_.end(), other.operations_.begin(), other.operations_.end());
  return *this;
}

Circuit Circuit::inverse() const {
  Circuit result(nqubits_, name_.empty() ? std::string{} : name_ + "_inv");
  for (auto it = operations_.rbegin(); it != operations_.rend(); ++it) {
    Operation inverted = *it;
    inverted.kind = adjointKind(it->kind);
    if (isParameterized(it->kind)) {
      inverted.angle = -it->angle;
    }
    result.append(std::move(inverted));
  }
  return result;
}

Circuit Circuit::shifted(Qubit offset, Qubit newWidth) const {
  if (offset + nqubits_ > newWidth) {
    throw std::invalid_argument("Circuit::shifted: target register too narrow");
  }
  Circuit result(newWidth, name_);
  for (Operation operation : operations_) {
    operation.target += offset;
    for (ControlSpec& control : operation.controls) {
      control.qubit += offset;
    }
    result.append(std::move(operation));
  }
  return result;
}

Circuit Circuit::controlledBy(Qubit control) const {
  if (control >= nqubits_) {
    throw std::out_of_range("Circuit::controlledBy: control out of range");
  }
  Circuit result(nqubits_, name_.empty() ? std::string{} : "c_" + name_);
  for (Operation operation : operations_) {
    if (operation.target == control) {
      throw std::invalid_argument("Circuit::controlledBy: control collides with a target");
    }
    for (const ControlSpec& existing : operation.controls) {
      if (existing.qubit == control) {
        throw std::invalid_argument("Circuit::controlledBy: control already used");
      }
    }
    operation.controls.push_back({control, true});
    result.append(std::move(operation));
  }
  return result;
}

bool Circuit::isCliffordTOnly() const {
  for (const Operation& operation : operations_) {
    if (!isCliffordT(operation.kind)) {
      return false;
    }
  }
  return true;
}

std::size_t Circuit::tCount() const {
  std::size_t count = 0;
  for (const Operation& operation : operations_) {
    if (operation.kind == GateKind::T || operation.kind == GateKind::Tdg) {
      ++count;
    }
  }
  return count;
}

std::string Circuit::toText() const {
  std::ostringstream os;
  os << "qubits " << nqubits_ << "\n";
  for (const Operation& operation : operations_) {
    os << gateName(operation.kind);
    if (isParameterized(operation.kind)) {
      os.precision(17);
      os << " " << operation.angle;
    }
    os << " q" << operation.target;
    for (const ControlSpec& control : operation.controls) {
      os << (control.positive ? " ctrl q" : " nctrl q") << control.qubit;
    }
    os << "\n";
  }
  return os.str();
}

namespace {

Qubit parseQubitToken(const std::string& token) {
  if (token.size() < 2 || token[0] != 'q') {
    throw std::invalid_argument("Circuit::fromText: expected qubit token, got '" + token + "'");
  }
  return static_cast<Qubit>(std::stoul(token.substr(1)));
}

} // namespace

Circuit Circuit::fromText(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) {
    throw std::invalid_argument("Circuit::fromText: empty input");
  }
  std::istringstream header(line);
  std::string keyword;
  Qubit nqubits = 0;
  header >> keyword >> nqubits;
  if (keyword != "qubits" || nqubits == 0) {
    throw std::invalid_argument("Circuit::fromText: missing 'qubits N' header");
  }
  Circuit circuit(nqubits);
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream tokens(line);
    std::string name;
    tokens >> name;
    Operation operation;
    operation.kind = gateKindFromName(name);
    if (isParameterized(operation.kind)) {
      tokens >> operation.angle;
    }
    std::string token;
    tokens >> token;
    operation.target = parseQubitToken(token);
    while (tokens >> token) {
      const bool positive = token == "ctrl";
      if (!positive && token != "nctrl") {
        throw std::invalid_argument("Circuit::fromText: expected ctrl/nctrl, got '" + token + "'");
      }
      tokens >> token;
      operation.controls.push_back({parseQubitToken(token), positive});
    }
    circuit.append(std::move(operation));
  }
  return circuit;
}

std::ostream& operator<<(std::ostream& os, const Circuit& circuit) {
  return os << circuit.toText();
}

} // namespace qadd::qc
