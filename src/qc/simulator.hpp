/// \file simulator.hpp
/// DD-based quantum-circuit simulation (the workload of the paper's
/// evaluation): the state starts as |0...0> and is evolved gate by gate via
/// QMDD matrix-vector multiplication; the full-circuit unitary can likewise
/// be accumulated via matrix-matrix multiplication (used for verification /
/// equivalence checking).
#pragma once

#include "core/algebraic_system.hpp"
#include "core/approximation.hpp"
#include "core/numeric_system.hpp"
#include "core/package.hpp"
#include "io/checkpoint.hpp"
#include "io/snapshot.hpp"
#include "obs/timeline.hpp"
#include "obs/tracer.hpp"
#include "qc/circuit.hpp"
#include "qc/gates.hpp"

#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace qadd::qc {

/// Build the package-level gate matrix for an operation.
template <class System>
[[nodiscard]] typename dd::Package<System>::GateMatrix
makeWeightMatrix(dd::Package<System>& package, const Operation& operation) {
  typename dd::Package<System>::GateMatrix matrix;
  if constexpr (System::kExact) {
    const auto exact = algebraicMatrix(operation.kind); // throws for rotations
    for (std::size_t i = 0; i < 4; ++i) {
      matrix[i] = package.system().intern(exact[i]);
    }
  } else {
    // Compute the entries in the system's own precision (an extended-
    // precision system must not be fed double-rounded constants).
    using Float = typename System::Float;
    const auto numeric =
        complexMatrixT<Float>(operation.kind, static_cast<Float>(operation.angle));
    for (std::size_t i = 0; i < 4; ++i) {
      matrix[i] = package.system().fromComplex(numeric[i]);
    }
  }
  return matrix;
}

/// Build the full n-qubit DD of one operation (target + controls embedded).
template <class System>
[[nodiscard]] typename dd::Package<System>::MEdge
makeOperationDD(dd::Package<System>& package, const Operation& operation) {
  const auto matrix = makeWeightMatrix(package, operation);
  std::vector<std::pair<dd::Qubit, typename dd::Package<System>::Control>> controls;
  controls.reserve(operation.controls.size());
  for (const ControlSpec& control : operation.controls) {
    controls.push_back({control.qubit, control.positive
                                           ? dd::Package<System>::Control::Positive
                                           : dd::Package<System>::Control::Negative});
  }
  return package.makeGate(matrix, operation.target, controls);
}

/// Step-wise circuit simulator.  Use `Simulator<dd::NumericSystem>` for the
/// baseline numerical representation and `Simulator<dd::AlgebraicSystem>` for
/// the paper's exact algebraic one.
template <class System> class Simulator {
public:
  using Package = dd::Package<System>;
  using VEdge = typename Package::VEdge;

  struct Options {
    /// Run garbage collection when the live node count exceeds this
    /// (installed as the package's GC watermark; 0 disables auto-GC).
    std::size_t gcNodeThreshold = 200'000;
  };

  /// One garbage-collection run observed during simulation, tagged with the
  /// number of gates applied when it fired.
  struct GcEvent {
    std::size_t gateIndex = 0;
    dd::GcReport report;
  };

  explicit Simulator(Circuit circuit, typename System::Config config = {}, Options options = {})
      : circuit_(std::move(circuit)),
        package_(std::make_shared<Package>(circuit_.qubits(), config)), options_(options) {
    // GC is the package's job now: it auto-collects from decRef once the
    // live node count crosses the watermark; the simulator only records the
    // events (see step()).
    package_->setGcWatermark(options_.gcNodeThreshold);
    reset();
  }

  /// Run on an existing package instead of building a private one: the
  /// serving layer keeps one package per session so the weight tables,
  /// unique tables and operation caches persist across jobs (cross-request
  /// table reuse is where DD packages win).  The package's width must match
  /// the circuit.
  /// (Package-first parameter order keeps overload resolution away from the
  /// config ctor: `Simulator(circuit, {}, options)` must stay unambiguous.)
  Simulator(std::shared_ptr<Package> package, Circuit circuit, Options options = {})
      : circuit_(std::move(circuit)), package_(std::move(package)), options_(options) {
    if (package_ == nullptr || package_->qubits() != circuit_.qubits()) {
      throw std::invalid_argument("Simulator: package width does not match the circuit");
    }
    package_->setGcWatermark(options_.gcNodeThreshold);
    reset();
  }

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  /// Movable; the moved-from simulator releases its claim on the state.
  Simulator(Simulator&& other) noexcept
      : circuit_(std::move(other.circuit_)), package_(std::move(other.package_)),
        options_(other.options_), state_(other.state_), hasState_(other.hasState_),
        next_(other.next_), gcEvents_(std::move(other.gcEvents_)), approx_(other.approx_),
        approxBudgetLeft_(other.approxBudgetLeft_), approxFidelity_(other.approxFidelity_),
        approxPrunedNodes_(other.approxPrunedNodes_) {
    other.hasState_ = false;
  }
  Simulator& operator=(Simulator&&) = delete;

  /// Drop the external reference on the current state.  With a private
  /// package this is moot (the package dies with us); with a shared one it is
  /// what lets the next job's garbage collection reclaim this state.
  ~Simulator() {
    if (hasState_) {
      package_->decRef(state_);
    }
  }

  /// Reset the state to |0...0> and rewind to the first gate.
  void reset() {
    if (hasState_) {
      package_->decRef(state_);
    }
    state_ = package_->makeZeroState();
    package_->incRef(state_);
    hasState_ = true;
    next_ = 0;
    gcEvents_.clear();
    approxBudgetLeft_ = approx_.budget;
    approxFidelity_ = 1.0;
    approxPrunedNodes_ = 0;
  }

  /// Install a fidelity-bounded approximation policy (see
  /// docs/APPROXIMATION.md): after gate applications, the state is pruned
  /// under the spec's budget — all at once after the last gate (OneShot) or
  /// rebudgeted over the remaining gates after every gate (PerGate).
  /// Resets the cumulative fidelity/budget tracking.  \throws
  /// std::invalid_argument on an exact (algebraic) system with an active
  /// policy, or a budget outside [0, 1).
  void setApproximation(const dd::ApproxSpec& approx) {
    if constexpr (System::kExact) {
      if (approx.policy != dd::ApproxPolicy::None) {
        throw std::invalid_argument("Simulator: the algebraic system is exact; "
                                    "approximation requires a numeric system");
      }
    }
    if (approx.budget < 0.0 || approx.budget >= 1.0) {
      throw std::invalid_argument("Simulator: approximation budget must be in [0, 1)");
    }
    approx_ = approx;
    approxBudgetLeft_ = approx.budget;
    approxFidelity_ = 1.0;
    approxPrunedNodes_ = 0;
  }

  /// Apply the next gate; false when the circuit is exhausted.
  bool step() {
    if (next_ >= circuit_.size()) {
      return false;
    }
    const Operation& operation = circuit_.operations()[next_];
    obs::Tracer::Span gateSpan;
    if (auto& tracer = obs::Tracer::global(); tracer.enabled()) {
      gateSpan = tracer.span(std::string("gate:") += gateName(operation.kind), "simulate");
    }
    const auto gate = makeOperationDD(*package_, operation);
    VEdge updated;
    {
      const auto applySpan = obs::Tracer::global().span("mv", "dd");
      updated = package_->multiply(gate, state_);
    }
    const std::size_t gcRunsBefore = package_->gcRuns();
    package_->incRef(updated);
    package_->decRef(state_); // may auto-GC at the watermark
    state_ = updated;
    ++next_;
    if (package_->gcRuns() != gcRunsBefore) {
      gcEvents_.push_back({next_, package_->lastGcReport()});
    }
    maybeApproximate();
    if (auto& timeline = obs::Timeline::global(); timeline.enabled()) {
      obs::Timeline::Sample sample;
      sample.kind = obs::Timeline::Kind::Gate;
      sample.gateIndex = next_;
      obs::Timeline::fillSeriesContext(sample);
      package_->sampleTimeline(sample);
      timeline.record(std::move(sample));
    }
    return true;
  }

  /// Run to completion (optionally invoking `perGate(simulator)` after each
  /// gate application).
  template <class Callback = std::nullptr_t> void run(Callback&& perGate = nullptr) {
    while (step()) {
      if constexpr (!std::is_same_v<std::decay_t<Callback>, std::nullptr_t>) {
        perGate(*this);
      }
    }
  }

  /// Attach the thread pool the package's DD kernels fork onto (nullptr
  /// detaches; see dd::Package::setExecutor for when concurrency actually
  /// engages).  Call between gates, never from a perGate callback that is
  /// itself running on the pool.
  void setExecutor(exec::ThreadPool* pool) { package_->setExecutor(pool); }

  [[nodiscard]] const VEdge& state() const { return state_; }
  [[nodiscard]] Package& package() { return *package_; }
  [[nodiscard]] const Package& package() const { return *package_; }
  [[nodiscard]] const Circuit& circuit() const { return circuit_; }
  /// Index of the next gate to apply == number of gates applied so far.
  [[nodiscard]] std::size_t gateIndex() const { return next_; }

  /// Garbage-collection runs triggered so far (cleared by reset()).
  [[nodiscard]] const std::vector<GcEvent>& gcEvents() const { return gcEvents_; }

  /// The installed approximation spec ({} when exact).
  [[nodiscard]] const dd::ApproxSpec& approximation() const { return approx_; }
  /// Cumulative fidelity of all prune runs so far: the product of per-run
  /// achieved fidelities, a lower bound on |<state|exact state>|^2.  1.0
  /// while nothing has been pruned.
  [[nodiscard]] double approxFidelity() const { return approxFidelity_; }
  /// State node-count decrease summed over all prune runs so far.
  [[nodiscard]] std::size_t approxPrunedNodes() const { return approxPrunedNodes_; }

  /// Number of nodes of the current state DD (the paper's compactness
  /// metric).
  [[nodiscard]] std::size_t stateNodes() const { return package_->countNodes(state_); }

  /// Probability of measuring `bits` (|amplitude|^2).
  [[nodiscard]] double probability(std::span<const bool> bits) const {
    const auto amplitude = package_->amplitude(state_, bits);
    return std::norm(amplitude);
  }

  // -- checkpoint / restore ------------------------------------------------------

  /// Serialize the simulation position (gate index + circuit identity) and
  /// the current state DD as a QCKP checkpoint blob.
  [[nodiscard]] std::vector<std::uint8_t> saveCheckpoint() {
    io::CheckpointData data;
    data.gateIndex = next_;
    data.circuitText = circuit_.toText();
    data.snapshot = io::saveVector(*package_, state_);
    return io::writeCheckpoint(data);
  }

  /// saveCheckpoint() straight to a file.
  void saveCheckpointFile(const std::string& path) { io::writeBytesFile(path, saveCheckpoint()); }

  /// Restore gate position and state from a checkpoint taken on the *same*
  /// circuit (verified via the serialized circuit text).  The state DD
  /// re-interns through this simulator's package, so an algebraic resume is
  /// bit-identical to the state at checkpoint time.  \throws
  /// io::SnapshotError on corruption or any circuit/system/width mismatch.
  void resumeFrom(std::span<const std::uint8_t> bytes) {
    const io::CheckpointData data = io::readCheckpoint(bytes);
    if (data.circuitText != circuit_.toText()) {
      throw io::SnapshotError("checkpoint was taken on a different circuit");
    }
    if (data.gateIndex > circuit_.size()) {
      throw io::SnapshotError("checkpoint gate index exceeds the circuit length");
    }
    const VEdge restored = io::loadVector(*package_, std::span<const std::uint8_t>(data.snapshot));
    package_->incRef(restored);
    if (hasState_) {
      package_->decRef(state_);
    }
    state_ = restored;
    hasState_ = true;
    next_ = static_cast<std::size_t>(data.gateIndex);
    gcEvents_.clear();
  }

  /// resumeFrom() straight from a file.
  void resumeFromFile(const std::string& path) {
    const auto bytes = io::readBytesFile(path);
    resumeFrom(bytes);
  }

  /// The shared package handle (serving layer: keep the package alive across
  /// successive per-job simulators of one session).
  [[nodiscard]] std::shared_ptr<Package> sharedPackage() const { return package_; }

private:
  /// Prune the state per the installed policy.  Runs after every gate for
  /// PerGate (spending an equal share of the remaining budget over the
  /// remaining gates, so unspent budget rolls forward) and only after the
  /// final gate for OneShot.  No-op on exact systems and inactive specs.
  void maybeApproximate() {
    if constexpr (!System::kExact) {
      if (!approx_.active() || approxBudgetLeft_ <= 0.0) {
        return;
      }
      double budget = 0.0;
      if (approx_.policy == dd::ApproxPolicy::OneShot) {
        if (next_ < circuit_.size()) {
          return;
        }
        budget = approxBudgetLeft_;
      } else {
        const std::size_t remainingGates = circuit_.size() - next_;
        budget = approxBudgetLeft_ / static_cast<double>(remainingGates + 1);
      }
      const auto pruned = package_->prune(state_, budget);
      if (pruned.edgesPruned == 0) {
        return;
      }
      // Charge the ledger with whichever is larger: the contribution mass the
      // greedy selection accounted for, or the loss actually measured on the
      // stored result (ε-unification can perturb the renormalized root weight
      // by up to ε, so the two can differ).  Charging the max keeps the
      // cumulative invariant  prod(achieved_i) >= 1 - budget  sound.
      const double lost = std::max(pruned.budgetSpent, 1.0 - pruned.achievedFidelity);
      approxBudgetLeft_ -= lost;
      approxFidelity_ *= pruned.achievedFidelity;
      approxPrunedNodes_ += pruned.nodesBefore >= pruned.nodesAfter
                                ? pruned.nodesBefore - pruned.nodesAfter
                                : 0;
      package_->incRef(pruned.edge);
      package_->decRef(state_); // may auto-GC; the new state holds its ref
      state_ = pruned.edge;
    }
  }

  Circuit circuit_;
  std::shared_ptr<Package> package_;
  Options options_;
  VEdge state_{};
  bool hasState_ = false;
  std::size_t next_ = 0;
  std::vector<GcEvent> gcEvents_;
  dd::ApproxSpec approx_{};
  double approxBudgetLeft_ = 0.0;
  double approxFidelity_ = 1.0;
  std::size_t approxPrunedNodes_ = 0;
};

/// Accumulate the full-circuit unitary U = G_m ... G_2 G_1 as a matrix DD.
template <class System>
[[nodiscard]] typename dd::Package<System>::MEdge buildUnitary(dd::Package<System>& package,
                                                               const Circuit& circuit) {
  if (circuit.qubits() != package.qubits()) {
    throw std::invalid_argument("buildUnitary: package width mismatch");
  }
  auto unitary = package.makeIdentity();
  package.incRef(unitary);
  for (const Operation& operation : circuit.operations()) {
    obs::Tracer::Span gateSpan;
    if (auto& tracer = obs::Tracer::global(); tracer.enabled()) {
      gateSpan = tracer.span(std::string("unitary:") += gateName(operation.kind), "simulate");
    }
    const auto gate = makeOperationDD(package, operation);
    const auto mmSpan = obs::Tracer::global().span("mm", "dd");
    const auto next = package.multiply(gate, unitary);
    package.incRef(next);
    package.decRef(unitary);
    unitary = next;
  }
  return unitary;
}

} // namespace qadd::qc
