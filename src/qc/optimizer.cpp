#include "qc/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

namespace qadd::qc {

namespace {

/// Number of T-eighth turns a diagonal gate contributes; -1 if not in the
/// foldable diagonal family {I, T, S, Z, Sdg, Tdg}.
int eighthsOf(GateKind kind) {
  switch (kind) {
  case GateKind::I:
    return 0;
  case GateKind::T:
    return 1;
  case GateKind::S:
    return 2;
  case GateKind::Z:
    return 4;
  case GateKind::Sdg:
    return 6;
  case GateKind::Tdg:
    return 7;
  default:
    return -1;
  }
}

/// The (up to two) gates realizing `eighths` mod 8 eighth turns.
void emitEighths(std::vector<Operation>& out, int eighths, Qubit target,
                 const std::vector<ControlSpec>& controls) {
  const auto push = [&](GateKind kind) { out.push_back({kind, 0.0, target, controls}); };
  switch (eighths & 7) {
  case 0:
    break;
  case 1:
    push(GateKind::T);
    break;
  case 2:
    push(GateKind::S);
    break;
  case 3:
    push(GateKind::S);
    push(GateKind::T);
    break;
  case 4:
    push(GateKind::Z);
    break;
  case 5:
    push(GateKind::Z);
    push(GateKind::T);
    break;
  case 6:
    push(GateKind::Sdg);
    break;
  case 7:
    push(GateKind::Tdg);
    break;
  default:
    break;
  }
}

bool touchesQubit(const Operation& operation, Qubit qubit) {
  if (operation.target == qubit) {
    return true;
  }
  for (const ControlSpec& control : operation.controls) {
    if (control.qubit == qubit) {
      return true;
    }
  }
  return false;
}

bool disjoint(const Operation& a, const Operation& b) {
  if (touchesQubit(a, b.target)) {
    return false;
  }
  for (const ControlSpec& control : b.controls) {
    if (touchesQubit(a, control.qubit)) {
      return false;
    }
  }
  return true;
}

bool sameControls(const Operation& a, const Operation& b) {
  if (a.controls.size() != b.controls.size()) {
    return false;
  }
  // Control order is irrelevant; compare as (small) sets.
  for (const ControlSpec& control : a.controls) {
    if (std::find(b.controls.begin(), b.controls.end(), control) == b.controls.end()) {
      return false;
    }
  }
  return true;
}

/// Whether two gates with equal target+controls cancel to the identity.
bool cancels(const Operation& a, const Operation& b) {
  if (isParameterized(a.kind) || isParameterized(b.kind)) {
    return false; // handled by the merge path
  }
  return adjointKind(a.kind) == b.kind;
}

/// Whether two equal-kind rotations can merge; the period after which the
/// *controlled* gate is the identity (Phase: 2 pi; Rx/Ry/Rz: 4 pi).
std::optional<double> mergePeriod(GateKind kind) {
  switch (kind) {
  case GateKind::Phase:
    return 2.0 * M_PI;
  case GateKind::Rx:
  case GateKind::Ry:
  case GateKind::Rz:
    return 4.0 * M_PI;
  default:
    return std::nullopt;
  }
}

/// One optimization pass; returns the rewritten list.
std::vector<Operation> pass(const std::vector<Operation>& input, OptimizerReport& report) {
  std::vector<Operation> output;
  output.reserve(input.size());
  for (const Operation& operation : input) {
    // Identity gates vanish outright.
    if (operation.kind == GateKind::I) {
      ++report.removedGates;
      continue;
    }
    // Look back past commuting (line-disjoint) gates for a partner acting on
    // the same target with the same controls.
    std::size_t partner = output.size();
    for (std::size_t back = output.size(); back-- > 0;) {
      const Operation& candidate = output[back];
      if (candidate.target == operation.target && sameControls(candidate, operation)) {
        partner = back;
        break;
      }
      if (!disjoint(candidate, operation)) {
        break;
      }
    }
    if (partner < output.size()) {
      Operation& candidate = output[partner];
      // Inverse pairs annihilate.
      if (cancels(candidate, operation)) {
        output.erase(output.begin() + static_cast<std::ptrdiff_t>(partner));
        report.removedGates += 2;
        continue;
      }
      // Diagonal family folds by eighth turns.
      const int e1 = eighthsOf(candidate.kind);
      const int e2 = eighthsOf(operation.kind);
      if (e1 >= 0 && e2 >= 0) {
        const std::vector<ControlSpec> controls = candidate.controls;
        const Qubit target = candidate.target;
        output.erase(output.begin() + static_cast<std::ptrdiff_t>(partner));
        std::vector<Operation> folded;
        emitEighths(folded, e1 + e2, target, controls);
        // Re-insert at the partner position to preserve commutation context.
        output.insert(output.begin() + static_cast<std::ptrdiff_t>(partner), folded.begin(),
                      folded.end());
        report.removedGates += 2 - folded.size();
        continue;
      }
      // Equal-kind rotation merge.
      if (operation.kind == candidate.kind && isParameterized(operation.kind)) {
        const auto period = mergePeriod(operation.kind);
        if (period.has_value()) {
          double angle = std::fmod(candidate.angle + operation.angle, *period);
          ++report.mergedRotations;
          if (std::abs(angle) < 1e-15 || std::abs(std::abs(angle) - *period) < 1e-15) {
            output.erase(output.begin() + static_cast<std::ptrdiff_t>(partner));
            report.removedGates += 2;
          } else {
            candidate.angle = angle;
            ++report.removedGates;
          }
          continue;
        }
      }
    }
    output.push_back(operation);
  }
  return output;
}

} // namespace

Circuit optimize(const Circuit& circuit, OptimizerReport* report) {
  OptimizerReport local;
  std::vector<Operation> operations = circuit.operations();
  constexpr std::size_t kMaxPasses = 32;
  for (std::size_t i = 0; i < kMaxPasses; ++i) {
    ++local.passes;
    const std::size_t before = operations.size();
    operations = pass(operations, local);
    if (operations.size() == before) {
      // A pass that removes nothing may still have rewritten in place
      // (rotation merge keeps count); run once more only if it shrank.
      break;
    }
  }
  Circuit result(circuit.qubits(),
                 circuit.name().empty() ? std::string{} : circuit.name() + "_opt");
  for (Operation& operation : operations) {
    result.append(std::move(operation));
  }
  if (report != nullptr) {
    *report = local;
  }
  return result;
}

} // namespace qadd::qc
