/// \file stats.hpp
/// Static circuit metrics: gate-kind histogram, control statistics, T-count
/// and circuit depth (greedy ASAP layering) — the numbers synthesis and
/// mapping papers report alongside DD sizes.
#pragma once

#include "qc/circuit.hpp"

#include <array>
#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>

namespace qadd::qc {

struct CircuitStats {
  std::size_t gates = 0;
  std::size_t depth = 0;          ///< ASAP-layered depth
  std::size_t tCount = 0;         ///< T + Tdg gates
  std::size_t controlledGates = 0;
  std::size_t maxControls = 0;
  std::size_t twoQubitGates = 0;  ///< gates touching exactly 2 lines
  std::map<GateKind, std::size_t> perKind;

  [[nodiscard]] std::string toString() const;
};

/// Compute all metrics in one pass.
[[nodiscard]] CircuitStats analyze(const Circuit& circuit);

std::ostream& operator<<(std::ostream& os, const CircuitStats& stats);

} // namespace qadd::qc
