#include "qc/stats.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <vector>

namespace qadd::qc {

CircuitStats analyze(const Circuit& circuit) {
  CircuitStats stats;
  stats.gates = circuit.size();
  // ASAP layering: a gate starts after the latest layer of any line it
  // touches.
  std::vector<std::size_t> lineDepth(circuit.qubits(), 0);
  for (const Operation& operation : circuit.operations()) {
    ++stats.perKind[operation.kind];
    if (operation.kind == GateKind::T || operation.kind == GateKind::Tdg) {
      ++stats.tCount;
    }
    if (!operation.controls.empty()) {
      ++stats.controlledGates;
      stats.maxControls = std::max(stats.maxControls, operation.controls.size());
    }
    if (operation.controls.size() == 1) {
      ++stats.twoQubitGates;
    }
    std::size_t start = lineDepth[operation.target];
    for (const ControlSpec& control : operation.controls) {
      start = std::max(start, lineDepth[control.qubit]);
    }
    const std::size_t finish = start + 1;
    lineDepth[operation.target] = finish;
    for (const ControlSpec& control : operation.controls) {
      lineDepth[control.qubit] = finish;
    }
    stats.depth = std::max(stats.depth, finish);
  }
  return stats;
}

std::string CircuitStats::toString() const {
  std::ostringstream os;
  os << gates << " gates, depth " << depth << ", T-count " << tCount << ", "
     << controlledGates << " controlled (max " << maxControls << " controls), "
     << twoQubitGates << " two-qubit";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const CircuitStats& stats) {
  return os << stats.toString();
}

} // namespace qadd::qc
