#include "obs/deterministic.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace qadd::obs {

namespace {

/// -1 = not yet resolved from the environment; 0/1 = off/on.
std::atomic<int> gDeterministic{-1};

} // namespace

bool deterministic() {
  int state = gDeterministic.load(std::memory_order_relaxed);
  if (state < 0) {
    const char* env = std::getenv("QADD_OBS_DETERMINISTIC");
    state = (env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0) ? 1 : 0;
    gDeterministic.store(state, std::memory_order_relaxed);
  }
  return state == 1;
}

void setDeterministic(bool on) { gDeterministic.store(on ? 1 : 0, std::memory_order_relaxed); }

} // namespace qadd::obs
