/// \file stats.hpp
/// Package-wide telemetry counters (qadd::obs).  Every hot structure of the
/// DD package — the nine operation caches, the two unique tables, the node
/// pools and the garbage collector — increments a counter here, so the cost
/// distribution the paper analyses (cache behaviour, table growth, ε-induced
/// merges, bit-width blow-up) is measurable on any workload instead of only
/// on the figure harnesses.
///
/// Compile-time switch: building with -DQADD_OBS=0 turns every increment
/// into a constant-folded no-op (the counters and the reporting API stay
/// available but read as zero), so release builds that want the last few
/// percent can opt out without source changes.  The CMake option QADD_OBS
/// (default ON) drives the define.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#ifndef QADD_OBS
#define QADD_OBS 1
#endif

namespace qadd::obs {

/// True iff telemetry is compiled in.  All increments are guarded by this
/// constant, so with QADD_OBS=0 the optimizer removes them entirely.
inline constexpr bool kEnabled = QADD_OBS != 0;

/// Monotonic event counter; a no-op when telemetry is compiled out.
///
/// Storage is a relaxed atomic so counters touched from inside the parallel
/// DD kernels (cache hits/misses, unique-table probes) can be read by the
/// `--timeline` sampler and bumped by several workers without a data race.
/// inc() is deliberately a relaxed load+store rather than a fetch_add: on the
/// serial path it compiles to the same plain increment as before, and on the
/// parallel path a concurrent increment may occasionally be lost — these are
/// approximate scheduling-dependent event counts there anyway (they are
/// exempt from the determinism contract, see docs/PARALLELISM.md), and the
/// kernels won't pay a locked RMW per probe for them.
struct Counter {
  std::atomic<std::uint64_t> count{0};

  Counter() = default;
  Counter(const Counter& other) : count(other.value()) {}
  Counter& operator=(const Counter& other) {
    count.store(other.value(), std::memory_order_relaxed);
    return *this;
  }

  void inc(std::uint64_t n = 1) {
    if constexpr (kEnabled) {
      count.store(count.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
    } else {
      (void)n;
    }
  }
  [[nodiscard]] std::uint64_t value() const { return count.load(std::memory_order_relaxed); }
  explicit operator std::uint64_t() const { return value(); }

  Counter& operator+=(const Counter& other) {
    count.store(value() + other.value(), std::memory_order_relaxed);
    return *this;
  }
};

/// Hit/miss statistics of one operation cache.  A "miss" is a lookup that
/// fell through to the recursive computation (and inserted its result).
struct CacheStats {
  Counter hits;
  Counter misses;
  /// Inserts that displaced a live entry with a different key — the lossy
  /// direct-mapped caches overwrite on slot collision instead of chaining.
  Counter evictions;

  [[nodiscard]] std::uint64_t lookups() const { return hits.value() + misses.value(); }
  [[nodiscard]] double hitRate() const {
    const std::uint64_t total = lookups();
    return total == 0 ? 0.0 : static_cast<double>(hits.value()) / static_cast<double>(total);
  }

  CacheStats& operator+=(const CacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    return *this;
  }
};

/// Unique-table statistics.  A "collision" is a miss whose hash bucket was
/// already occupied by a different node (chain lengthening insert).
struct UniqueTableStats {
  Counter lookups;
  Counter hits;
  Counter collisions;

  // Fill gauges (snapshot time): current entry and bucket counts of the
  // bucket-chained unique table.
  std::size_t entries = 0;
  std::size_t buckets = 0;

  [[nodiscard]] double hitRate() const {
    const std::uint64_t total = lookups.value();
    return total == 0 ? 0.0 : static_cast<double>(hits.value()) / static_cast<double>(total);
  }

  /// Counters sum; the fill gauges take the per-table maximum (the tables
  /// being merged are independent, so "largest table seen" is the honest
  /// aggregate — summing snapshots of different tables means nothing).
  UniqueTableStats& operator+=(const UniqueTableStats& other) {
    lookups += other.lookups;
    hits += other.hits;
    collisions += other.collisions;
    entries = std::max(entries, other.entries);
    buckets = std::max(buckets, other.buckets);
    return *this;
  }
};

/// Garbage-collector statistics, accumulated across runs.
struct GcStats {
  Counter runs;
  Counter nodesSwept;
  double seconds = 0.0;

  GcStats& operator+=(const GcStats& other) {
    runs += other.runs;
    nodesSwept += other.nodesSwept;
    seconds += other.seconds;
    return *this;
  }
};

/// Weight-table gauges, filled at snapshot time by the active weight system.
/// The numeric system reports the ε-table view (entry count, spatial-hash
/// bucket occupancy, near-miss unifications — the paper's accuracy-loss
/// event); the algebraic system reports the interned-value count and the
/// bit-width histogram of its 𝔻[ω]/ℚ[ω] coefficients (the paper's cost
/// driver for the GSE blow-up).
struct WeightTableStats {
  std::string system;        ///< System::describe() of the producer
  std::size_t entries = 0;   ///< distinct interned weights
  std::uint64_t nearMissUnifications = 0; ///< ε-hits that were not bit-exact (numeric)
  /// bucketOccupancy[k] = number of hash buckets holding exactly k entries
  /// (k clamped to the last bin); numeric system only.
  std::vector<std::uint64_t> bucketOccupancy;
  /// bitWidthHistogram[b] = number of interned values whose widest
  /// coefficient/denominator uses exactly b bits; algebraic system only.
  std::vector<std::uint64_t> bitWidthHistogram;
  /// Aggregated weight-op memoization cache (add/sub/mul/div pair caches the
  /// systems layer over their intern pools).  For the numeric system these
  /// run only under bit-exact interning; tolerance mode bypasses them.
  CacheStats opCache;
  /// Small-value fast-path tallies of the algebraic arithmetic layer
  /// (process-wide, see src/algebraic/small_kernels.hpp): ring operations
  /// served entirely by the int64/int128 word kernels vs operations that
  /// probed the fast path and fell back to BigInt.  Zero for the numeric
  /// system and in QADD_BIGINT_SSO=0 builds.
  std::uint64_t smallPathHits = 0;
  std::uint64_t smallPathSpills = 0;

  /// Merge a second weight-table snapshot: event counters sum, fill gauges
  /// max, histograms add element-wise.  The small-path tallies are snapshots
  /// of one process-wide counter, so merging them takes the max (summing
  /// would double-count the shared counter).
  WeightTableStats& operator+=(const WeightTableStats& other) {
    if (system.empty()) {
      system = other.system;
    } else if (!other.system.empty() && other.system != system) {
      system = "mixed";
    }
    entries = std::max(entries, other.entries);
    nearMissUnifications += other.nearMissUnifications;
    opCache += other.opCache;
    smallPathHits = std::max(smallPathHits, other.smallPathHits);
    smallPathSpills = std::max(smallPathSpills, other.smallPathSpills);
    const auto addHistogram = [](std::vector<std::uint64_t>& into,
                                 const std::vector<std::uint64_t>& from) {
      if (into.size() < from.size()) {
        into.resize(from.size(), 0);
      }
      for (std::size_t i = 0; i < from.size(); ++i) {
        into[i] += from[i];
      }
    };
    addHistogram(bucketOccupancy, other.bucketOccupancy);
    addHistogram(bitWidthHistogram, other.bitWidthHistogram);
    return *this;
  }
};

/// Snapshot-I/O statistics (qadd::io): volume written/read through the QDDS
/// serialization layer and the canonical dedup observed on loads (nodes from
/// a snapshot that re-interned onto nodes already present in the unique
/// tables — the measure of how much a load shares with the live package).
struct IoStats {
  Counter snapshotsSaved;
  Counter snapshotsLoaded;
  Counter nodesWritten;
  Counter nodesRead;
  Counter weightsWritten;
  Counter weightsRead;
  Counter bytesWritten;
  Counter bytesRead;
  Counter loadDedupNodes; ///< loaded node records already canonically present

  [[nodiscard]] bool any() const {
    return snapshotsSaved.value() + snapshotsLoaded.value() + bytesWritten.value() +
               bytesRead.value() !=
           0;
  }

  IoStats& operator+=(const IoStats& other) {
    snapshotsSaved += other.snapshotsSaved;
    snapshotsLoaded += other.snapshotsLoaded;
    nodesWritten += other.nodesWritten;
    nodesRead += other.nodesRead;
    weightsWritten += other.weightsWritten;
    weightsRead += other.weightsRead;
    bytesWritten += other.bytesWritten;
    bytesRead += other.bytesRead;
    loadDedupNodes += other.loadDedupNodes;
    return *this;
  }
};

/// Fidelity-bounded approximation statistics (dd::Package::prune): how often
/// the pruner ran, how many edges it redirected to the zero vector and how
/// many nodes left the state as a result.  Zero on exact (algebraic) runs and
/// whenever no ApproxSpec is active.
struct ApproxStats {
  Counter pruneRuns;    ///< prune() invocations that removed at least one edge
  Counter edgesPruned;  ///< child edges redirected to the zero vector
  Counter nodesRemoved; ///< state node-count decrease summed over prune runs

  [[nodiscard]] bool any() const {
    return pruneRuns.value() + edgesPruned.value() + nodesRemoved.value() != 0;
  }

  ApproxStats& operator+=(const ApproxStats& other) {
    pruneRuns += other.pruneRuns;
    edgesPruned += other.edgesPruned;
    nodesRemoved += other.nodesRemoved;
    return *this;
  }
};

/// The full counter block of one dd::Package.  Counters are maintained
/// inline by the package; gauges (live/peak nodes, weight-table view) are
/// filled when a snapshot is taken via Package::stats().
struct PackageStats {
  // Per-operation-cache hit/miss counters.
  CacheStats vAdd;
  CacheStats mAdd;
  CacheStats mv;
  CacheStats mm;
  CacheStats vKron;
  CacheStats mKron;
  CacheStats transpose;
  CacheStats inner;
  CacheStats trace;

  UniqueTableStats vUnique;
  UniqueTableStats mUnique;

  Counter nodeAllocations; ///< nodes taken fresh from the pool
  Counter nodeReuses;      ///< nodes recycled from the free list

  GcStats gc;
  IoStats io;
  ApproxStats approx;

  // Gauges (snapshot time).
  std::size_t liveNodes = 0;
  std::size_t peakNodes = 0;
  std::size_t arenaBytes = 0; ///< node-arena capacity (both pools) in bytes
  WeightTableStats weights;

  /// Worker threads that contributed to this snapshot: 1 for a single
  /// package, and the sweep's `--jobs` count on the aggregated snapshot a
  /// parallel ε-sweep reports (eval::runSweep sets it explicitly).
  std::size_t threads = 1;

  /// Named view over the operation caches, for generic emitters.
  [[nodiscard]] std::vector<std::pair<std::string_view, const CacheStats*>> caches() const {
    return {{"vAdd", &vAdd},   {"mAdd", &mAdd},           {"mv", &mv},
            {"mm", &mm},       {"vKron", &vKron},         {"mKron", &mKron},
            {"transpose", &transpose}, {"inner", &inner}, {"trace", &trace}};
  }

  /// Aggregate hit rate over the multiplication/addition caches that
  /// dominate simulation time (the figure CSVs' cache-hit-rate column).
  [[nodiscard]] double combinedCacheHitRate() const {
    std::uint64_t hits = 0;
    std::uint64_t total = 0;
    for (const CacheStats* cache : {&vAdd, &mAdd, &mv, &mm}) {
      hits += cache->hits.value();
      total += cache->lookups();
    }
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }

  /// Merge another package's counter block into this one: event counters
  /// sum, gauges (live/peak nodes, table fills, weight-table view) take the
  /// maximum, `threads` takes the max of the two views (callers aggregating
  /// a parallel sweep overwrite it with the actual worker count).  This is
  /// how per-worker packages of a parallel ε-sweep fold into the one
  /// aggregated snapshot the report emitters print.
  PackageStats& operator+=(const PackageStats& other) {
    vAdd += other.vAdd;
    mAdd += other.mAdd;
    mv += other.mv;
    mm += other.mm;
    vKron += other.vKron;
    mKron += other.mKron;
    transpose += other.transpose;
    inner += other.inner;
    trace += other.trace;
    vUnique += other.vUnique;
    mUnique += other.mUnique;
    nodeAllocations += other.nodeAllocations;
    nodeReuses += other.nodeReuses;
    gc += other.gc;
    io += other.io;
    approx += other.approx;
    liveNodes = std::max(liveNodes, other.liveNodes);
    peakNodes = std::max(peakNodes, other.peakNodes);
    arenaBytes = std::max(arenaBytes, other.arenaBytes);
    weights += other.weights;
    threads = std::max(threads, other.threads);
    return *this;
  }

  /// Value-returning flavour of operator+= for expression use.
  [[nodiscard]] friend PackageStats merge(PackageStats a, const PackageStats& b) {
    a += b;
    return a;
  }
};

} // namespace qadd::obs
