/// \file profiler.hpp
/// Structural DD profiler (qadd::obs): walks a vector or matrix QMDD — a
/// live package root or a QDDS snapshot via the qadd::io loader — and
/// reports, per level, the node/edge counts, fan-out and sharing factors,
/// and the weight-complexity distribution (ℚ[ω] coefficient bit widths for
/// the algebraic system, magnitude bands for the numeric ones).  This is the
/// per-level view of the paper's compactness story: *where* in the diagram
/// the nodes, the sharing, and the coefficient blow-up live, not just how
/// many nodes there are in total.
///
/// Exposed as the qadd_prof CLI (tools/qadd_prof.cpp) and as the
/// --profile-final flag of the figure drivers.  Profiling is a diagnostic
/// walk (hash-set visited marking, O(nodes + edges)); it never mutates the
/// package and is not meant for hot loops.
#pragma once

#include "core/package.hpp"

#include <cmath>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

namespace qadd::obs {

/// Per-level slice of a DD profile.  Level k holds the nodes with var == k;
/// level 0 is the root (top qubit) level, as in core/dd_node.hpp.
struct LevelProfile {
  std::size_t nodes = 0;
  std::size_t edges = 0;           ///< non-zero outgoing edges of this level's nodes
  std::size_t edgesToTerminal = 0; ///< subset of `edges` that end at the terminal
  std::size_t zeroEdges = 0;       ///< zero-weight (absent) successors
  std::size_t incomingEdges = 0;   ///< parent edges into this level (root edge included)
  /// Non-zero edges whose implicit-identity span covers this level: skip
  /// edges passing over it plus non-zero terminal matrix edges whose
  /// identity tail includes it.  Always 0 for vector DDs (quasi-reduced)
  /// and for packages with identity skipping disabled.
  std::size_t skippedBy = 0;
  /// weightHistogram[b] = outgoing non-zero edges whose weight falls in
  /// complexity class b; see DdProfile::weightHistogramKind.
  std::vector<std::uint64_t> weightHistogram;

  /// Average non-zero successors per node (≤ 2 for vectors, ≤ 4 for matrices).
  [[nodiscard]] double fanOut() const {
    return nodes == 0 ? 0.0 : static_cast<double>(edges) / static_cast<double>(nodes);
  }
  /// Average parents per node — the sharing the DD achieves at this level
  /// (1.0 = a tree, larger = more reuse).
  [[nodiscard]] double sharing() const {
    return nodes == 0 ? 0.0 : static_cast<double>(incomingEdges) / static_cast<double>(nodes);
  }
};

/// Full structural profile of one diagram.
struct DdProfile {
  std::string system; ///< System::describe() of the profiled package
  std::string kind;   ///< "vector" or "matrix"
  std::size_t qubits = 0;
  std::size_t totalNodes = 0;
  std::size_t totalEdges = 0;          ///< non-zero edges, root edge included
  std::size_t distinctEdgeWeights = 0; ///< distinct weight handles on those edges
  /// Meaning of the per-level weight histograms: "bits" (algebraic — widest
  /// coefficient/denominator bit width of the ℚ[ω] value) or
  /// "neglog2magnitude" (numeric — band k holds weights with
  /// 2^-(k+1) < |w| <= 2^-k; band 0 also holds |w| >= 1).
  std::string weightHistogramKind;
  std::vector<LevelProfile> levels; ///< levels[k] = qubit level k (0 = top)
};

/// Machine-readable JSON object of a profile (one self-contained object,
/// histograms as arrays).
void writeProfileJson(std::ostream& os, const DdProfile& profile);

/// Human-readable per-level table (the qadd_prof / --profile-final console
/// rendering).
void printProfileTable(std::ostream& os, const DdProfile& profile);

namespace detail {

/// Complexity class of one weight: coefficient bit width for the algebraic
/// system, negative-log2 magnitude band for the numeric ones.
template <class System>
[[nodiscard]] std::size_t weightClass(const System& system, typename System::Weight w) {
  if constexpr (System::kExact) {
    const auto& q = system.value(w);
    std::size_t bits = q.den().bitLength();
    for (const auto* coefficient : {&q.num().a(), &q.num().b(), &q.num().c(), &q.num().d()}) {
      bits = std::max(bits, coefficient->bitLength());
    }
    return bits;
  } else {
    const auto z = system.toComplex(w);
    const double magnitude = std::abs(z);
    if (!(magnitude > 0.0) || magnitude >= 1.0) {
      return 0;
    }
    const int exponent = std::ilogb(magnitude); // magnitude in [2^e, 2^{e+1})
    return static_cast<std::size_t>(std::min(255, std::max(0, -exponent - 1)));
  }
}

inline void bumpHistogram(std::vector<std::uint64_t>& histogram, std::size_t bucket) {
  if (histogram.size() <= bucket) {
    histogram.resize(bucket + 1, 0);
  }
  ++histogram[bucket];
}

} // namespace detail

/// Profile a live DD rooted at `root` (VEdge or MEdge of `package`).
template <class System, class EdgeT>
[[nodiscard]] DdProfile profileDd(const dd::Package<System>& package, const EdgeT& root) {
  using NodeT = typename EdgeT::Node;
  DdProfile profile;
  profile.system = package.system().describe();
  profile.kind = NodeT::kBranching == 2 ? "vector" : "matrix";
  profile.qubits = package.qubits();
  profile.weightHistogramKind = System::kExact ? "bits" : "neglog2magnitude";
  profile.levels.resize(profile.qubits);

  std::unordered_set<const NodeT*> visited;
  std::unordered_set<typename System::Weight> weights;
  std::vector<const NodeT*> stack;

  // Levels an edge passes over implicitly (skip-level edges; matrix DDs
  // only in practice).  `from` is the level below the edge's origin, `to`
  // the level its node materializes at — qubits (context end) for non-zero
  // terminal edges, whose tail is an implicit identity.
  const auto countSkips = [&](dd::Qubit from, const EdgeT& edge) {
    const std::size_t to =
        edge.node != nullptr ? edge.node->var : (NodeT::kBranching == 4 ? profile.qubits : from);
    for (std::size_t k = from; k < to; ++k) {
      ++profile.levels[k].skippedBy;
    }
  };

  const auto countEdge = [&](const NodeT* parent, const EdgeT& edge) {
    LevelProfile& level = profile.levels[parent->var];
    if (package.system().isZero(edge.w)) {
      ++level.zeroEdges;
      return;
    }
    ++level.edges;
    ++profile.totalEdges;
    weights.insert(edge.w);
    detail::bumpHistogram(level.weightHistogram, detail::weightClass(package.system(), edge.w));
    countSkips(parent->var + 1, edge);
    if (edge.node == nullptr) {
      ++level.edgesToTerminal;
      return;
    }
    ++profile.levels[edge.node->var].incomingEdges;
    if (visited.insert(edge.node).second) {
      stack.push_back(edge.node);
    }
  };

  if (!package.system().isZero(root.w)) {
    // The root edge counts toward totals and the root level's sharing, but
    // has no parent node, so it joins no level's outgoing-weight histogram.
    ++profile.totalEdges;
    weights.insert(root.w);
    countSkips(root.var, root);
    if (root.node != nullptr) {
      ++profile.levels[root.node->var].incomingEdges;
      if (visited.insert(root.node).second) {
        stack.push_back(root.node);
      }
    }
  }
  while (!stack.empty()) {
    const NodeT* node = stack.back();
    stack.pop_back();
    ++profile.levels[node->var].nodes;
    ++profile.totalNodes;
    for (const auto& child : node->e) {
      countEdge(node, child);
    }
  }
  profile.distinctEdgeWeights = weights.size();
  return profile;
}

/// Profile a QDDS snapshot (or the snapshot embedded in a QCKP checkpoint):
/// builds a package matching the snapshot's system meta (algebraic, numeric
/// double, or numeric long double), loads the diagram through the canonical
/// qadd::io path, and profiles the rebuilt root.  \throws io::SnapshotError
/// on corruption or an unsupported float precision.
[[nodiscard]] DdProfile profileSnapshot(std::span<const std::uint8_t> bytes);
/// profileSnapshot() straight from a file.
[[nodiscard]] DdProfile profileSnapshotFile(const std::string& path);

/// Graphviz DOT text of a snapshot's diagram (dd::toDot on the rebuilt
/// root).  \throws io::SnapshotError like profileSnapshot.
[[nodiscard]] std::string snapshotToDot(std::span<const std::uint8_t> bytes);

} // namespace qadd::obs
