#include "obs/timeline.hpp"

#include "obs/deterministic.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>

namespace qadd::obs {

std::uint32_t currentThreadId() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

namespace {

/// Innermost open ScopedSeries of this thread (nullptr outside any run).
thread_local const Timeline::ScopedSeries* tlsSeries = nullptr;

} // namespace

Timeline::ScopedSeries::ScopedSeries(std::string label, double epsilon)
    : label_(std::move(label)), epsilon_(epsilon), previous_(tlsSeries) {
  tlsSeries = this;
}

Timeline::ScopedSeries::~ScopedSeries() { tlsSeries = previous_; }

Timeline& Timeline::global() {
  static Timeline instance;
  return instance;
}

void Timeline::fillSeriesContext(Sample& sample) {
  if (tlsSeries != nullptr) {
    sample.series = tlsSeries->label_;
    sample.epsilon = tlsSeries->epsilon_;
  }
}

void Timeline::setCapacity(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.shrink_to_fit();
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
}

void Timeline::record(Sample sample) {
  if constexpr (!kEnabled) {
    return;
  }
  if (!enabled()) {
    return;
  }
  sample.tid = currentThreadId();
  sample.seconds = nowSeconds();
  const std::lock_guard<std::mutex> lock(mutex_);
  if (count_ < capacity_) {
    ring_.push_back(std::move(sample));
    ++count_;
    return;
  }
  // Full: overwrite the oldest slot and advance the ring head.
  ring_[head_] = std::move(sample);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::size_t Timeline::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

std::size_t Timeline::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void Timeline::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
}

std::vector<Timeline::Sample> Timeline::samplesSnapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Sample> samples;
  samples.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    samples.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return samples;
}

namespace {

const char* kindName(Timeline::Kind kind) {
  return kind == Timeline::Kind::Gate ? "gate" : "point";
}

/// Minimal JSON string escaping (series labels come from trace labels, but
/// stay safe for arbitrary circuit names).
void writeEscaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
    case '"':
      os << "\\\"";
      break;
    case '\\':
      os << "\\\\";
      break;
    case '\n':
      os << "\\n";
      break;
    case '\t':
      os << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        os << ' ';
      } else {
        os << c;
      }
    }
  }
  os << '"';
}

} // namespace

void Timeline::writeJson(std::ostream& os) const {
  const std::vector<Sample> samples = samplesSnapshot();
  const bool det = deterministic();
  os << std::setprecision(12);
  os << "{\"deterministic\":" << (det ? "true" : "false") << ",\"dropped\":" << dropped()
     << ",\"samples\":[";
  bool first = true;
  for (const Sample& sample : samples) {
    os << (first ? "" : ",") << "\n{\"series\":";
    writeEscaped(os, sample.series);
    os << ",\"kind\":\"" << kindName(sample.kind) << "\",\"tid\":" << sample.tid
       << ",\"gate\":" << sample.gateIndex << ",\"epsilon\":" << sample.epsilon
       << ",\"liveNodes\":" << sample.liveNodes << ",\"peakNodes\":" << sample.peakNodes
       << ",\"arenaBytes\":" << sample.arenaBytes << ",\"uniqueEntries\":" << sample.uniqueEntries
       << ",\"uniqueBuckets\":" << sample.uniqueBuckets
       << ",\"uniqueCollisions\":" << sample.uniqueCollisions
       << ",\"cacheHitRate\":" << (det ? 0.0 : sample.cacheHitRate)
       << ",\"gcRuns\":" << sample.gcRuns << ",\"smallPathHits\":" << sample.smallPathHits
       << ",\"smallPathSpills\":" << sample.smallPathSpills
       << ",\"weightEntries\":" << sample.weightEntries
       << ",\"prunedNodes\":" << sample.prunedNodes
       << ",\"seconds\":" << (det ? 0.0 : sample.seconds) << "}";
    first = false;
  }
  os << "\n]}\n";
}

bool Timeline::writeJson(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    return false;
  }
  writeJson(os);
  return os.good();
}

void Timeline::writeCsv(std::ostream& os) const {
  const std::vector<Sample> samples = samplesSnapshot();
  const bool det = deterministic();
  os << "series,kind,tid,gate,epsilon,livenodes,peaknodes,arenabytes,uniqueentries,"
        "uniquebuckets,uniquecollisions,cachehitrate,gcruns,smallpathhits,smallpathspills,"
        "weightentries,prunednodes,seconds\n";
  os << std::setprecision(12);
  for (const Sample& sample : samples) {
    os << sample.series << "," << kindName(sample.kind) << "," << sample.tid << ","
       << sample.gateIndex << "," << sample.epsilon << "," << sample.liveNodes << ","
       << sample.peakNodes << "," << sample.arenaBytes << "," << sample.uniqueEntries << ","
       << sample.uniqueBuckets << "," << sample.uniqueCollisions << ","
       << (det ? 0.0 : sample.cacheHitRate) << "," << sample.gcRuns << ","
       << sample.smallPathHits << "," << sample.smallPathSpills << "," << sample.weightEntries
       << "," << sample.prunedNodes << "," << (det ? 0.0 : sample.seconds) << "\n";
  }
}

bool Timeline::writeCsv(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    return false;
  }
  writeCsv(os);
  return os.good();
}

} // namespace qadd::obs
