#include "obs/exposition.hpp"

#include "obs/deterministic.hpp"
#include "obs/timeline.hpp"

#include <iomanip>
#include <ostream>
#include <string_view>

namespace qadd::obs {

namespace {

/// "# HELP" + "# TYPE" header of one metric family.
void family(std::ostream& os, std::string_view name, std::string_view type,
            std::string_view help) {
  os << "# HELP " << name << " " << help << "\n# TYPE " << name << " " << type << "\n";
}

} // namespace

std::string promEscapeLabel(std::string_view value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (const char c : value) {
    switch (c) {
    case '\\': escaped += "\\\\"; break;
    case '"': escaped += "\\\""; break;
    case '\n': escaped += "\\n"; break;
    default: escaped += c; break;
    }
  }
  return escaped;
}

void renderPrometheus(std::ostream& os, const PackageStats& stats) {
  os << std::setprecision(12);

  family(os, "qadd_cache_hits_total", "counter", "Operation-cache lookups served from the cache.");
  for (const auto& [name, cache] : stats.caches()) {
    os << "qadd_cache_hits_total{cache=\"" << promEscapeLabel(name) << "\"} "
       << cache->hits.value() << "\n";
  }
  family(os, "qadd_cache_misses_total", "counter",
         "Operation-cache lookups that fell through to the recursive computation.");
  for (const auto& [name, cache] : stats.caches()) {
    os << "qadd_cache_misses_total{cache=\"" << promEscapeLabel(name) << "\"} "
       << cache->misses.value() << "\n";
  }
  family(os, "qadd_cache_evictions_total", "counter",
         "Direct-mapped cache inserts that displaced a live entry.");
  for (const auto& [name, cache] : stats.caches()) {
    os << "qadd_cache_evictions_total{cache=\"" << promEscapeLabel(name) << "\"} "
       << cache->evictions.value() << "\n";
  }

  family(os, "qadd_unique_lookups_total", "counter", "Unique-table lookups.");
  os << "qadd_unique_lookups_total{table=\"vector\"} " << stats.vUnique.lookups.value() << "\n";
  os << "qadd_unique_lookups_total{table=\"matrix\"} " << stats.mUnique.lookups.value() << "\n";
  family(os, "qadd_unique_hits_total", "counter",
         "Unique-table lookups that found the canonical node.");
  os << "qadd_unique_hits_total{table=\"vector\"} " << stats.vUnique.hits.value() << "\n";
  os << "qadd_unique_hits_total{table=\"matrix\"} " << stats.mUnique.hits.value() << "\n";
  family(os, "qadd_unique_collisions_total", "counter",
         "Unique-table inserts into an already occupied bucket.");
  os << "qadd_unique_collisions_total{table=\"vector\"} " << stats.vUnique.collisions.value()
     << "\n";
  os << "qadd_unique_collisions_total{table=\"matrix\"} " << stats.mUnique.collisions.value()
     << "\n";
  family(os, "qadd_unique_entries", "gauge", "Unique-table fill (entries).");
  os << "qadd_unique_entries{table=\"vector\"} " << stats.vUnique.entries << "\n";
  os << "qadd_unique_entries{table=\"matrix\"} " << stats.mUnique.entries << "\n";
  family(os, "qadd_unique_buckets", "gauge", "Unique-table bucket count.");
  os << "qadd_unique_buckets{table=\"vector\"} " << stats.vUnique.buckets << "\n";
  os << "qadd_unique_buckets{table=\"matrix\"} " << stats.mUnique.buckets << "\n";

  family(os, "qadd_nodes_allocated_total", "counter", "Nodes taken fresh from the arena.");
  os << "qadd_nodes_allocated_total " << stats.nodeAllocations.value() << "\n";
  family(os, "qadd_nodes_reused_total", "counter", "Nodes recycled from the free list.");
  os << "qadd_nodes_reused_total " << stats.nodeReuses.value() << "\n";
  family(os, "qadd_nodes_live", "gauge", "Currently allocated DD nodes.");
  os << "qadd_nodes_live " << stats.liveNodes << "\n";
  family(os, "qadd_nodes_peak", "gauge", "Peak allocated DD nodes.");
  os << "qadd_nodes_peak " << stats.peakNodes << "\n";
  family(os, "qadd_arena_bytes", "gauge", "Node-arena capacity in bytes.");
  os << "qadd_arena_bytes " << stats.arenaBytes << "\n";

  family(os, "qadd_gc_runs_total", "counter", "Garbage-collection runs.");
  os << "qadd_gc_runs_total " << stats.gc.runs.value() << "\n";
  family(os, "qadd_gc_swept_nodes_total", "counter", "Nodes reclaimed by garbage collection.");
  os << "qadd_gc_swept_nodes_total " << stats.gc.nodesSwept.value() << "\n";
  family(os, "qadd_gc_seconds_total", "counter", "Wall time spent in garbage collection.");
  os << "qadd_gc_seconds_total " << (deterministic() ? 0.0 : stats.gc.seconds) << "\n";

  family(os, "qadd_threads", "gauge", "Worker threads that contributed to this snapshot.");
  os << "qadd_threads " << stats.threads << "\n";

  family(os, "qadd_weight_entries", "gauge", "Distinct interned weights.");
  os << "qadd_weight_entries " << stats.weights.entries << "\n";
  family(os, "qadd_weight_near_miss_unifications_total", "counter",
         "Numeric-table hits that were not bit-exact (accuracy-loss events).");
  os << "qadd_weight_near_miss_unifications_total " << stats.weights.nearMissUnifications << "\n";
  family(os, "qadd_weight_op_hits_total", "counter", "Weight-op memoization cache hits.");
  os << "qadd_weight_op_hits_total " << stats.weights.opCache.hits.value() << "\n";
  family(os, "qadd_weight_op_misses_total", "counter", "Weight-op memoization cache misses.");
  os << "qadd_weight_op_misses_total " << stats.weights.opCache.misses.value() << "\n";
  family(os, "qadd_alg_small_path_hits_total", "counter",
         "Algebraic ring operations served by the int64/int128 word kernels.");
  os << "qadd_alg_small_path_hits_total " << stats.weights.smallPathHits << "\n";
  family(os, "qadd_alg_small_path_spills_total", "counter",
         "Word-kernel probes that fell back to BigInt arithmetic.");
  os << "qadd_alg_small_path_spills_total " << stats.weights.smallPathSpills << "\n";

  family(os, "qadd_io_snapshots_saved_total", "counter", "QDDS snapshots serialized.");
  os << "qadd_io_snapshots_saved_total " << stats.io.snapshotsSaved.value() << "\n";
  family(os, "qadd_io_snapshots_loaded_total", "counter", "QDDS snapshots loaded.");
  os << "qadd_io_snapshots_loaded_total " << stats.io.snapshotsLoaded.value() << "\n";
  family(os, "qadd_io_bytes_written_total", "counter", "Snapshot bytes written.");
  os << "qadd_io_bytes_written_total " << stats.io.bytesWritten.value() << "\n";
  family(os, "qadd_io_bytes_read_total", "counter", "Snapshot bytes read.");
  os << "qadd_io_bytes_read_total " << stats.io.bytesRead.value() << "\n";
  family(os, "qadd_io_load_dedup_nodes_total", "counter",
         "Loaded node records already canonically present.");
  os << "qadd_io_load_dedup_nodes_total " << stats.io.loadDedupNodes.value() << "\n";
}

void renderPrometheus(std::ostream& os, const PackageStats& stats, const Timeline& timeline) {
  renderPrometheus(os, stats);
  family(os, "qadd_timeline_samples", "gauge", "Samples currently held by the timeline ring.");
  os << "qadd_timeline_samples " << timeline.size() << "\n";
  family(os, "qadd_timeline_dropped_total", "counter",
         "Timeline samples lost to ring wrap-around.");
  os << "qadd_timeline_dropped_total " << timeline.dropped() << "\n";
  const std::vector<Timeline::Sample> samples = timeline.samplesSnapshot();
  if (!samples.empty()) {
    const Timeline::Sample& last = samples.back();
    family(os, "qadd_timeline_last_live_nodes", "gauge",
           "Live node count of the most recent timeline sample.");
    os << "qadd_timeline_last_live_nodes " << last.liveNodes << "\n";
    family(os, "qadd_timeline_last_arena_bytes", "gauge",
           "Arena bytes of the most recent timeline sample.");
    os << "qadd_timeline_last_arena_bytes " << last.arenaBytes << "\n";
    family(os, "qadd_timeline_last_gate", "gauge",
           "Gate index of the most recent timeline sample.");
    os << "qadd_timeline_last_gate " << last.gateIndex << "\n";
  }
}

} // namespace qadd::obs
