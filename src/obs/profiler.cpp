#include "obs/profiler.hpp"

#include "core/algebraic_system.hpp"
#include "core/export.hpp"
#include "core/numeric_system.hpp"
#include "io/snapshot.hpp"

#include <iomanip>
#include <limits>
#include <ostream>

namespace qadd::obs {

namespace {

/// Run `action(package, info)` on a fresh package matching the snapshot's
/// system meta — the same dispatch qadd_snapshot uses.
template <class Action> auto withMatchingPackage(std::span<const std::uint8_t> bytes, Action&& action) {
  const io::SnapshotInfo info = io::readInfo(bytes);
  if (info.system == io::SystemTag::Algebraic) {
    dd::AlgebraicSystem::Config config;
    config.normalization = static_cast<dd::AlgebraicSystem::Normalization>(info.normalization);
    dd::Package<dd::AlgebraicSystem> package(info.qubits, config);
    return action(package, info);
  }
  if (info.floatDigits == std::numeric_limits<double>::digits) {
    dd::NumericSystem::Config config;
    config.epsilon = info.epsilon;
    config.normalization = static_cast<dd::NumericSystem::Normalization>(info.normalization);
    dd::Package<dd::NumericSystem> package(info.qubits, config);
    return action(package, info);
  }
  if (info.floatDigits == std::numeric_limits<long double>::digits) {
    dd::ExtendedNumericSystem::Config config;
    config.epsilon = info.epsilon;
    config.normalization =
        static_cast<dd::ExtendedNumericSystem::Normalization>(info.normalization);
    dd::Package<dd::ExtendedNumericSystem> package(info.qubits, config);
    return action(package, info);
  }
  throw io::SnapshotError("profiler: unsupported float precision (" +
                          std::to_string(static_cast<int>(info.floatDigits)) +
                          " mantissa bits) on this platform");
}

} // namespace

DdProfile profileSnapshot(std::span<const std::uint8_t> bytes) {
  return withMatchingPackage(bytes, [&](auto& package, const io::SnapshotInfo& info) {
    if (info.kind == io::DdKind::Vector) {
      return profileDd(package, io::loadVector(package, bytes));
    }
    return profileDd(package, io::loadMatrix(package, bytes));
  });
}

DdProfile profileSnapshotFile(const std::string& path) {
  const std::vector<std::uint8_t> bytes = io::readBytesFile(path);
  return profileSnapshot(bytes);
}

std::string snapshotToDot(std::span<const std::uint8_t> bytes) {
  return withMatchingPackage(bytes, [&](auto& package, const io::SnapshotInfo& info) {
    if (info.kind == io::DdKind::Vector) {
      return dd::toDot(package, io::loadVector(package, bytes));
    }
    return dd::toDot(package, io::loadMatrix(package, bytes));
  });
}

namespace {

void writeHistogram(std::ostream& os, const std::vector<std::uint64_t>& histogram) {
  os << "[";
  for (std::size_t i = 0; i < histogram.size(); ++i) {
    os << (i == 0 ? "" : ",") << histogram[i];
  }
  os << "]";
}

} // namespace

void writeProfileJson(std::ostream& os, const DdProfile& profile) {
  os << std::setprecision(12);
  os << "{\"system\":\"" << profile.system << "\",\"kind\":\"" << profile.kind
     << "\",\"qubits\":" << profile.qubits << ",\"totalNodes\":" << profile.totalNodes
     << ",\"totalEdges\":" << profile.totalEdges
     << ",\"distinctEdgeWeights\":" << profile.distinctEdgeWeights
     << ",\"weightHistogramKind\":\"" << profile.weightHistogramKind << "\",\"levels\":[";
  for (std::size_t k = 0; k < profile.levels.size(); ++k) {
    const LevelProfile& level = profile.levels[k];
    os << (k == 0 ? "" : ",") << "\n{\"level\":" << k << ",\"nodes\":" << level.nodes
       << ",\"edges\":" << level.edges << ",\"edgesToTerminal\":" << level.edgesToTerminal
       << ",\"zeroEdges\":" << level.zeroEdges << ",\"incomingEdges\":" << level.incomingEdges
       << ",\"skippedBy\":" << level.skippedBy << ",\"fanOut\":" << level.fanOut()
       << ",\"sharing\":" << level.sharing() << ",\"weightHistogram\":";
    writeHistogram(os, level.weightHistogram);
    os << "}";
  }
  os << "\n]}\n";
}

void printProfileTable(std::ostream& os, const DdProfile& profile) {
  os << "-- DD profile: " << profile.kind << ", " << profile.qubits << " qubits ["
     << profile.system << "] --\n";
  os << profile.totalNodes << " nodes, " << profile.totalEdges << " edges, "
     << profile.distinctEdgeWeights << " distinct edge weights\n";
  os << std::left << std::setw(7) << "level" << std::right << std::setw(8) << "nodes"
     << std::setw(8) << "edges" << std::setw(8) << "->term" << std::setw(8) << "zero"
     << std::setw(9) << "skipped" << std::setw(9) << "fan-out" << std::setw(9) << "sharing"
     << "  "
     << (profile.weightHistogramKind == "bits" ? "weight bits" : "weight magnitude bands")
     << "\n";
  for (std::size_t k = 0; k < profile.levels.size(); ++k) {
    const LevelProfile& level = profile.levels[k];
    os << std::left << std::setw(7) << k << std::right << std::setw(8) << level.nodes
       << std::setw(8) << level.edges << std::setw(8) << level.edgesToTerminal << std::setw(8)
       << level.zeroEdges << std::setw(9) << level.skippedBy << std::setw(9) << std::fixed
       << std::setprecision(2) << level.fanOut() << std::setw(9) << level.sharing() << "  ";
    os.unsetf(std::ios::floatfield);
    bool any = false;
    for (std::size_t b = 0; b < level.weightHistogram.size(); ++b) {
      if (level.weightHistogram[b] != 0) {
        os << (profile.weightHistogramKind == "bits" ? "" : "2^-") << b << ":"
           << level.weightHistogram[b] << (profile.weightHistogramKind == "bits" ? "b " : " ");
        any = true;
      }
    }
    if (!any) {
      os << "-";
    }
    os << "\n";
  }
}

} // namespace qadd::obs
