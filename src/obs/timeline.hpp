/// \file timeline.hpp
/// Time-series gauge sampler (qadd::obs::Timeline): a bounded ring buffer of
/// package-gauge snapshots recorded at per-gate granularity by the simulator
/// and at per-ε-point granularity by the eval tracing layer.  Where
/// obs::PackageStats answers "what did the whole run cost", the timeline
/// answers "when did it get expensive" — the per-gate evolution of DD size,
/// arena footprint, table fill, cache behaviour and GC activity that the
/// paper's figures plot only for node counts.
///
/// Every sample is O(1) to take (no DD traversals, no histogram walks) and
/// recording is a short mutex-guarded ring write, so the sampler can stay on
/// for whole sweeps: when the ring wraps, the oldest samples are dropped and
/// counted.  Samples record the dense thread id of the recording worker
/// (obs::currentThreadId — the same id the span tracer emits as the
/// Chrome-trace tid), so parallel ε-sweep workers show up as separate lanes.
///
/// The sampler is disabled by default and costs one branch per sample
/// request while disabled; with QADD_OBS=0 it compiles out entirely (like
/// the Tracer).  The drivers map --timeline <base> onto the global instance
/// and write <base>.json + <base>.csv at the end of the run.
#pragma once

#include "obs/stats.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace qadd::obs {

class Timeline {
public:
  /// What triggered the sample: a simulator gate application or the
  /// completion of one sweep point (the end-of-run snapshot of one series).
  enum class Kind : std::uint8_t { Gate, Point };

  /// One gauge snapshot.  All counts are the recording package's view at the
  /// moment of sampling; `seconds` is wall time since the timeline's epoch.
  struct Sample {
    std::string series;  ///< trace label of the enclosing run ("" if none)
    Kind kind = Kind::Gate;
    std::uint32_t tid = 0;        ///< dense recording-thread id (stamped by record)
    std::size_t gateIndex = 0;    ///< gates applied so far
    double epsilon = 0.0;         ///< ε of the enclosing numeric run (0 = exact)
    std::size_t liveNodes = 0;    ///< allocated nodes (vector + matrix pools)
    std::size_t peakNodes = 0;    ///< peak allocated nodes so far
    std::size_t arenaBytes = 0;   ///< node-arena capacity in bytes
    std::size_t uniqueEntries = 0;   ///< unique-table fill (both tables)
    std::size_t uniqueBuckets = 0;   ///< unique-table bucket count (both tables)
    std::uint64_t uniqueCollisions = 0; ///< chain-lengthening inserts so far
    double cacheHitRate = 0.0;    ///< combined add/mv/mm computed-table hit rate
    std::uint64_t gcRuns = 0;     ///< garbage collections so far
    std::uint64_t smallPathHits = 0;   ///< algebraic word-kernel fast-path hits
    std::uint64_t smallPathSpills = 0; ///< fast-path probes that fell back to BigInt
    std::size_t weightEntries = 0;     ///< distinct interned weights
    std::uint64_t prunedNodes = 0;     ///< nodes removed by approximation so far
    double seconds = 0.0;         ///< stamped by record(); zeroed in deterministic output
  };

  /// Thread-local series context: the eval tracing layer opens one around a
  /// simulation so the per-gate samples the simulator records carry the
  /// trace's label and ε without threading them through the simulator API.
  class ScopedSeries {
  public:
    ScopedSeries(std::string label, double epsilon);
    ScopedSeries(const ScopedSeries&) = delete;
    ScopedSeries& operator=(const ScopedSeries&) = delete;
    ~ScopedSeries();

  private:
    std::string label_;
    double epsilon_;
    const ScopedSeries* previous_;
    friend class Timeline;
  };

  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16U;

  Timeline() : epoch_(Clock::now()) {}

  /// Process-wide sampler the simulator and eval layer record into.
  [[nodiscard]] static Timeline& global();

  void setEnabled(bool enabled) { enabled_.store(enabled && kEnabled, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return kEnabled && enabled_.load(std::memory_order_relaxed);
  }

  /// Resize the ring (drops all recorded samples).  Capacity 0 is clamped to 1.
  void setCapacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Append a sample, stamping its tid and seconds; when the ring is full
  /// the oldest sample is dropped (and counted).  No-op when disabled.
  void record(Sample sample);

  /// Series label/ε of the innermost open ScopedSeries on this thread, or
  /// defaults when none is open.  Fills only `series` and `epsilon`.
  static void fillSeriesContext(Sample& sample);

  [[nodiscard]] std::size_t size() const;
  /// Samples lost to ring wrap-around since the last clear().
  [[nodiscard]] std::size_t dropped() const;
  void clear();

  /// Recorded samples in chronological order (ring unwrapped).
  [[nodiscard]] std::vector<Sample> samplesSnapshot() const;

  /// JSON object: {"dropped":N,"samples":[{...},...]}.  In deterministic
  /// mode the seconds and cacheHitRate fields are written as 0.
  void writeJson(std::ostream& os) const;
  bool writeJson(const std::string& path) const;

  /// One row per sample:
  /// series,kind,tid,gate,epsilon,livenodes,peaknodes,arenabytes,
  /// uniqueentries,uniquebuckets,uniquecollisions,cachehitrate,gcruns,
  /// smallpathhits,smallpathspills,weightentries,prunednodes,seconds.
  void writeCsv(std::ostream& os) const;
  bool writeCsv(const std::string& path) const;

private:
  using Clock = std::chrono::steady_clock;

  [[nodiscard]] double nowSeconds() const {
    return std::chrono::duration<double>(Clock::now() - epoch_).count();
  }

  Clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<Sample> ring_;
  std::size_t capacity_ = kDefaultCapacity;
  std::size_t head_ = 0;    ///< index of the oldest sample once wrapped
  std::size_t count_ = 0;   ///< samples currently in the ring
  std::size_t dropped_ = 0; ///< samples overwritten by wrap-around
};

/// Dense id of the calling thread: 1 for the first thread that asks (the
/// driver's main thread in practice), then 2, 3, ... in first-use order.
/// Shared by the span tracer (Chrome-trace tid) and the timeline sampler, so
/// the two outputs agree on which lane a worker is.
[[nodiscard]] std::uint32_t currentThreadId();

} // namespace qadd::obs
