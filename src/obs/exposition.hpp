/// \file exposition.hpp
/// Prometheus text-format rendering of the qadd::obs telemetry
/// (qadd::obs::renderPrometheus): the machine-readable metrics surface a
/// monitoring stack scrapes — and the exact payload a future qadd_serve will
/// answer on /metrics.  Format per the Prometheus exposition spec: one
/// "# HELP" + "# TYPE" pair per metric family, `counter` for monotonic event
/// counts (suffixed _total), `gauge` for snapshot values, labels for the
/// per-cache / per-table dimensions.
///
/// In deterministic-output mode (obs::deterministic) the wall-clock family
/// qadd_gc_seconds_total renders as 0, like every other emitter.
#pragma once

#include "obs/stats.hpp"

#include <iosfwd>
#include <string>
#include <string_view>

namespace qadd::obs {

class Timeline;

/// Escape a label value per the Prometheus exposition spec: backslash,
/// double-quote and newline become \\, \" and \n.  Every label value in the
/// families below goes through this, so exposition stays parseable even when
/// a label value comes from untrusted input (qadd_serve session names in
/// particular).
[[nodiscard]] std::string promEscapeLabel(std::string_view value);

/// Render one PackageStats snapshot.
void renderPrometheus(std::ostream& os, const PackageStats& stats);

/// renderPrometheus(stats) plus the timeline sampler's own families
/// (qadd_timeline_samples, qadd_timeline_dropped_total, and the gauges of
/// the most recent sample as qadd_timeline_last_*).
void renderPrometheus(std::ostream& os, const PackageStats& stats, const Timeline& timeline);

} // namespace qadd::obs
