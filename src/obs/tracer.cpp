#include "obs/tracer.hpp"

#include <fstream>
#include <ostream>

namespace qadd::obs {

Tracer& Tracer::global() {
  static Tracer instance;
  return instance;
}

Tracer::Span::Span(Tracer* tracer, std::string name, std::string category)
    : tracer_(tracer), name_(std::move(name)), category_(std::move(category)) {
  startUs_ = tracer_->nowUs();
  depth_ = tracer_->depth_++;
}

void Tracer::Span::finish() {
  if (tracer_ == nullptr) {
    return;
  }
  Event event;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.startUs = startUs_;
  event.durationUs = tracer_->nowUs() - startUs_;
  event.depth = depth_;
  --tracer_->depth_;
  tracer_->record(std::move(event));
  tracer_ = nullptr;
}

namespace {

/// Minimal JSON string escaping (names come from gate mnemonics and fixed
/// labels, but stay safe for arbitrary circuit names).
void writeEscaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
    case '"':
      os << "\\\"";
      break;
    case '\\':
      os << "\\\\";
      break;
    case '\n':
      os << "\\n";
      break;
    case '\t':
      os << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        os << ' ';
      } else {
        os << c;
      }
    }
  }
  os << '"';
}

} // namespace

void Tracer::writeJson(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Event& event : events_) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "\n{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":";
    writeEscaped(os, event.name);
    os << ",\"cat\":";
    writeEscaped(os, event.category);
    os << ",\"ts\":" << event.startUs << ",\"dur\":" << event.durationUs << ",\"args\":{\"depth\":"
       << event.depth << "}}";
  }
  os << "\n]}\n";
}

bool Tracer::writeJson(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    return false;
  }
  writeJson(os);
  return os.good();
}

} // namespace qadd::obs
