#include "obs/tracer.hpp"

#include "obs/timeline.hpp" // currentThreadId — the shared dense tid

#include <cstdlib>
#include <fstream>
#include <mutex>
#include <ostream>

namespace qadd::obs {

namespace {

/// Per-thread span nesting depth.  Depth is cosmetic metadata (emitted into
/// the event args), so sharing the counter across Tracer instances on the
/// same thread is fine — instances are not traced into concurrently.
thread_local std::uint32_t tlsDepth = 0;

} // namespace

Tracer& Tracer::global() {
  static Tracer instance;
  return instance;
}

Tracer::~Tracer() {
  // Flush on destruction so stack-local tracers keep their spans through
  // exception unwind (the global tracer additionally flushes via atexit).
  flushNow();
}

void Tracer::setAutoFlush(const std::string& path, std::size_t everyEvents) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    autoFlushPath_ = path;
    autoFlushEvery_ = everyEvents == 0 ? 1 : everyEvents;
  }
  if (this == &global()) {
    // atexit does not run on _exit/abort — the periodic flush in record()
    // covers those — but it does cover exit() and returning from main before
    // the driver's own writeJson call.
    static std::once_flag registered;
    std::call_once(registered, [] { std::atexit([] { Tracer::global().flushNow(); }); });
  }
}

bool Tracer::flushNow() const {
  std::string path;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    path = autoFlushPath_;
  }
  if (path.empty()) {
    return false;
  }
  return writeJson(path);
}

Tracer::Span::Span(Tracer* tracer, std::string name, std::string category)
    : tracer_(tracer), name_(std::move(name)), category_(std::move(category)) {
  startUs_ = tracer_->nowUs();
  depth_ = tlsDepth++;
}

void Tracer::Span::finish() {
  if (tracer_ == nullptr) {
    return;
  }
  Event event;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.startUs = startUs_;
  event.durationUs = tracer_->nowUs() - startUs_;
  event.depth = depth_;
  event.tid = currentThreadId();
  --tlsDepth;
  tracer_->record(std::move(event));
  tracer_ = nullptr;
}

namespace {

/// Minimal JSON string escaping (names come from gate mnemonics and fixed
/// labels, but stay safe for arbitrary circuit names).
void writeEscaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
    case '"':
      os << "\\\"";
      break;
    case '\\':
      os << "\\\\";
      break;
    case '\n':
      os << "\\n";
      break;
    case '\t':
      os << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        os << ' ';
      } else {
        os << c;
      }
    }
  }
  os << '"';
}

} // namespace

void Tracer::writeJson(std::ostream& os) const {
  const std::vector<Event> events = eventsSnapshot();
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Event& event : events) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "\n{\"ph\":\"X\",\"pid\":1,\"tid\":" << event.tid << ",\"name\":";
    writeEscaped(os, event.name);
    os << ",\"cat\":";
    writeEscaped(os, event.category);
    os << ",\"ts\":" << event.startUs << ",\"dur\":" << event.durationUs << ",\"args\":{\"depth\":"
       << event.depth << "}}";
  }
  os << "\n]}\n";
}

bool Tracer::writeJson(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    return false;
  }
  writeJson(os);
  return os.good();
}

} // namespace qadd::obs
