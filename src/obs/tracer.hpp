/// \file tracer.hpp
/// Lightweight span tracer (qadd::obs::Tracer): RAII scopes around gate
/// application, DD operations and garbage collection, emitted as Chrome
/// trace-event JSON ("traceEvents" with complete "X" events) that loads
/// directly into chrome://tracing or https://ui.perfetto.dev.
///
/// The tracer is disabled by default and costs one branch per span request
/// while disabled; span names are only materialized once a span is actually
/// recorded.  With QADD_OBS=0 the recording path compiles out entirely.
///
/// Thread safety: the span buffer is mutex-guarded and every span records
/// the id of the thread that opened it (a small dense integer, emitted as
/// the Chrome-trace "tid" so parallel ε-sweep workers show up as separate
/// rows in the timeline).  Span nesting depth is tracked per thread.  A Span
/// must be finished on the thread that opened it; enabling/disabling and
/// clear()/writeJson() are safe at any time, though a JSON snapshot taken
/// while workers are still tracing only contains the spans finished so far.
#pragma once

#include "obs/stats.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace qadd::obs {

class Tracer {
public:
  /// One completed span.  Times are microseconds since the tracer's epoch.
  struct Event {
    std::string name;
    std::string category;
    double startUs = 0.0;
    double durationUs = 0.0;
    std::uint32_t depth = 0; ///< per-thread nesting level when the span opened
    std::uint32_t tid = 0;   ///< dense id of the recording thread (1 = first seen)
  };

  /// RAII scope: records an Event on destruction (inert when default
  /// constructed or obtained from a disabled tracer).
  class Span {
  public:
    Span() = default;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept {
      if (this != &other) {
        finish();
        tracer_ = other.tracer_;
        name_ = std::move(other.name_);
        category_ = std::move(other.category_);
        startUs_ = other.startUs_;
        depth_ = other.depth_;
        other.tracer_ = nullptr;
      }
      return *this;
    }
    ~Span() { finish(); }

    [[nodiscard]] bool active() const { return tracer_ != nullptr; }

  private:
    friend class Tracer;
    Span(Tracer* tracer, std::string name, std::string category);
    void finish();

    Tracer* tracer_ = nullptr;
    std::string name_;
    std::string category_;
    double startUs_ = 0.0;
    std::uint32_t depth_ = 0;
  };

  Tracer() : epoch_(Clock::now()) {}
  /// Flushes (see setAutoFlush) so spans survive exception unwind.
  ~Tracer();

  /// Process-wide tracer used by the simulator/package instrumentation.
  [[nodiscard]] static Tracer& global();

  /// Crash resilience: rewrite the trace JSON to `path` every `everyEvents`
  /// recorded spans, on destruction, and — for the global tracer — at normal
  /// process exit (std::atexit).  The periodic rewrite is what saves partial
  /// traces on abnormal exits (_exit, abort, signals), where no handler
  /// runs; the drivers enable it with the --trace-json path so a crashed run
  /// still leaves the spans recorded so far on disk.
  void setAutoFlush(const std::string& path, std::size_t everyEvents = 64);
  /// Write the trace to the auto-flush path now; false if no path is set or
  /// the write failed.
  bool flushNow() const;

  void setEnabled(bool enabled) { enabled_.store(enabled && kEnabled, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const { return kEnabled && enabled_.load(std::memory_order_relaxed); }

  /// Open a span; inert (zero-allocation) when the tracer is disabled.
  [[nodiscard]] Span span(std::string_view name, std::string_view category = "dd") {
    if (!enabled()) {
      return {};
    }
    return Span(this, std::string(name), std::string(category));
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
  }
  /// Completed spans so far.  The reference is only stable while no other
  /// thread is recording; prefer eventsSnapshot() if workers may be live.
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::vector<Event> eventsSnapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return events_;
  }

  /// Chrome trace-event JSON: {"traceEvents":[{"ph":"X",...},...]}.
  void writeJson(std::ostream& os) const;
  /// Convenience overload; returns false if the file could not be opened.
  bool writeJson(const std::string& path) const;

private:
  using Clock = std::chrono::steady_clock;

  [[nodiscard]] double nowUs() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - epoch_).count();
  }
  void record(Event event) {
    bool flushDue = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      events_.push_back(std::move(event));
      flushDue = autoFlushEvery_ != 0 && events_.size() % autoFlushEvery_ == 0;
    }
    if (flushDue) {
      flushNow();
    }
  }

  Clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::string autoFlushPath_;
  std::size_t autoFlushEvery_ = 0; ///< 0 = auto-flush off
};

} // namespace qadd::obs
