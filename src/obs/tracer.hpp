/// \file tracer.hpp
/// Lightweight span tracer (qadd::obs::Tracer): RAII scopes around gate
/// application, DD operations and garbage collection, emitted as Chrome
/// trace-event JSON ("traceEvents" with complete "X" events) that loads
/// directly into chrome://tracing or https://ui.perfetto.dev.
///
/// The tracer is disabled by default and costs one branch per span request
/// while disabled; span names are only materialized once a span is actually
/// recorded.  With QADD_OBS=0 the recording path compiles out entirely.
#pragma once

#include "obs/stats.hpp"

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace qadd::obs {

class Tracer {
public:
  /// One completed span.  Times are microseconds since the tracer's epoch.
  struct Event {
    std::string name;
    std::string category;
    double startUs = 0.0;
    double durationUs = 0.0;
    std::uint32_t depth = 0; ///< nesting level at the time the span opened
  };

  /// RAII scope: records an Event on destruction (inert when default
  /// constructed or obtained from a disabled tracer).
  class Span {
  public:
    Span() = default;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept {
      if (this != &other) {
        finish();
        tracer_ = other.tracer_;
        name_ = std::move(other.name_);
        category_ = std::move(other.category_);
        startUs_ = other.startUs_;
        depth_ = other.depth_;
        other.tracer_ = nullptr;
      }
      return *this;
    }
    ~Span() { finish(); }

    [[nodiscard]] bool active() const { return tracer_ != nullptr; }

  private:
    friend class Tracer;
    Span(Tracer* tracer, std::string name, std::string category);
    void finish();

    Tracer* tracer_ = nullptr;
    std::string name_;
    std::string category_;
    double startUs_ = 0.0;
    std::uint32_t depth_ = 0;
  };

  Tracer() : epoch_(Clock::now()) {}

  /// Process-wide tracer used by the simulator/package instrumentation.
  [[nodiscard]] static Tracer& global();

  void setEnabled(bool enabled) { enabled_ = enabled && kEnabled; }
  [[nodiscard]] bool enabled() const { return kEnabled && enabled_; }

  /// Open a span; inert (zero-allocation) when the tracer is disabled.
  [[nodiscard]] Span span(std::string_view name, std::string_view category = "dd") {
    if (!enabled()) {
      return {};
    }
    return Span(this, std::string(name), std::string(category));
  }

  void clear() {
    events_.clear();
    depth_ = 0;
  }
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }

  /// Chrome trace-event JSON: {"traceEvents":[{"ph":"X",...},...]}.
  void writeJson(std::ostream& os) const;
  /// Convenience overload; returns false if the file could not be opened.
  bool writeJson(const std::string& path) const;

private:
  using Clock = std::chrono::steady_clock;

  [[nodiscard]] double nowUs() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - epoch_).count();
  }
  void record(Event event) { events_.push_back(std::move(event)); }

  Clock::time_point epoch_;
  bool enabled_ = false;
  std::uint32_t depth_ = 0;
  std::vector<Event> events_;
};

} // namespace qadd::obs
