/// \file deterministic.hpp
/// Process-wide deterministic-output mode for the telemetry emitters
/// (qadd::obs).  Structural series (node counts, bytes, table fills) are
/// run-deterministic, but wall-clock columns (seconds) and address-sensitive
/// ones (computed-table hit rates, which depend on pointer hashes under
/// ASLR) wobble between runs, which used to force the byte-comparison tests
/// to mask CSV columns.  With deterministic mode on, every emitter zeroes
/// exactly those columns, so two runs of the same workload produce
/// byte-identical CSV/JSON output.
///
/// The mode is read once from the QADD_OBS_DETERMINISTIC environment
/// variable (any value except "" and "0" enables it) and can be overridden
/// programmatically — the drivers map --obs-deterministic onto
/// setDeterministic(true).  It is independent of the QADD_OBS compile switch:
/// the wall-clock columns exist even with the counters compiled out.
#pragma once

namespace qadd::obs {

/// True iff deterministic-output mode is active (env or setDeterministic).
[[nodiscard]] bool deterministic();

/// Force the mode on or off, overriding the environment.
void setDeterministic(bool on);

} // namespace qadd::obs
