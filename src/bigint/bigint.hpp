/// \file bigint.hpp
/// Arbitrary-precision signed integers.
///
/// This is the repository's replacement for GMP (which the paper uses for the
/// integer coefficients of its algebraic number representation).  The design
/// is a classic sign-magnitude big integer: the magnitude is a little-endian
/// sequence of 32-bit limbs, multiplication switches to Karatsuba above a
/// threshold, and division implements Knuth's Algorithm D.
///
/// Storage is small-size optimized (QADD_BIGINT_SSO, default on): magnitudes
/// of up to two limbs — i.e. |value| < 2^64, the overwhelmingly common case
/// for the Q[omega] coefficients of Clifford+T workloads — live inline in the
/// object with no heap allocation; larger magnitudes spill to a heap buffer.
/// On top of the storage layout, the arithmetic operators take single-word
/// (u64/u128) fast paths for small operands and fall back to the general
/// limb-vector algorithms on overflow.  Building with -DQADD_BIGINT_SSO=0
/// restores the plain std::vector representation and disables every word
/// kernel (the escape hatch CI exercises); results are identical either way.
///
/// The class is a regular value type: copyable, movable, totally ordered,
/// hashable, and streamable.  All operations are exact.
#pragma once

#include <compare>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#ifndef QADD_BIGINT_SSO
#define QADD_BIGINT_SSO 1
#endif

namespace qadd {

namespace detail {

/// Differential-testing escape hatch: when false, every small-value fast path
/// (the BigInt word kernels and the Z[omega]/Q[omega] int64 kernels) is
/// skipped and the same operands run through the general limb-vector
/// algorithms.  Storage stays small-size optimized either way.  Not
/// thread-safe; intended for the fuzzer and the allocation benchmarks only.
/// Returns the previous setting.
bool setSmallFastPaths(bool enabled) noexcept;

extern bool gSmallFastPaths; ///< use smallFastPathsEnabled(), not this
[[nodiscard]] inline bool smallFastPathsEnabled() noexcept { return gSmallFastPaths; }

#if QADD_BIGINT_SSO

/// Small-size-optimized limb buffer: up to kInlineLimbs 32-bit limbs inline,
/// larger magnitudes in a heap array.  Deliberately minimal — exactly the
/// std::vector surface the BigInt algorithms use, so QADD_BIGINT_SSO=0 can
/// swap std::vector back in.
class LimbVec {
public:
  using value_type = std::uint32_t;
  static constexpr std::size_t kInlineLimbs = 2;

  LimbVec() noexcept : storage_{} {}
  LimbVec(std::size_t count, value_type value) : storage_{} { assign(count, value); }
  LimbVec(const value_type* first, const value_type* last) : storage_{} { assign(first, last); }
  LimbVec(const LimbVec& other) : storage_{} {
    assign(other.data(), other.data() + other.size_);
  }
  LimbVec(LimbVec&& other) noexcept
      : storage_(other.storage_), size_(other.size_), capacity_(other.capacity_) {
    other.size_ = 0;
    other.capacity_ = kInlineLimbs;
  }
  LimbVec& operator=(const LimbVec& other) {
    if (this != &other) {
      assign(other.data(), other.data() + other.size_);
    }
    return *this;
  }
  LimbVec& operator=(LimbVec&& other) noexcept {
    if (this != &other) {
      if (isHeap()) {
        delete[] storage_.heap;
      }
      storage_ = other.storage_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.size_ = 0;
      other.capacity_ = kInlineLimbs;
    }
    return *this;
  }
  ~LimbVec() {
    if (isHeap()) {
      delete[] storage_.heap;
    }
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// True iff the limbs live inside the object (no heap buffer).
  [[nodiscard]] bool isInline() const noexcept { return !isHeap(); }

  [[nodiscard]] value_type* data() noexcept {
    return isHeap() ? storage_.heap : storage_.inlineLimbs;
  }
  [[nodiscard]] const value_type* data() const noexcept {
    return isHeap() ? storage_.heap : storage_.inlineLimbs;
  }
  [[nodiscard]] value_type* begin() noexcept { return data(); }
  [[nodiscard]] const value_type* begin() const noexcept { return data(); }
  [[nodiscard]] value_type* end() noexcept { return data() + size_; }
  [[nodiscard]] const value_type* end() const noexcept { return data() + size_; }

  [[nodiscard]] value_type& operator[](std::size_t i) noexcept { return data()[i]; }
  [[nodiscard]] value_type operator[](std::size_t i) const noexcept { return data()[i]; }
  [[nodiscard]] value_type& back() noexcept { return data()[size_ - 1]; }
  [[nodiscard]] value_type back() const noexcept { return data()[size_ - 1]; }

  void clear() noexcept { size_ = 0; }
  void pop_back() noexcept { --size_; }
  void push_back(value_type value) {
    if (size_ == capacity_) {
      grow(std::size_t{size_} + 1);
    }
    data()[size_++] = value;
  }
  /// Grow capacity to at least `count`, preserving contents.
  void reserve(std::size_t count) {
    if (count > capacity_) {
      grow(count);
    }
  }
  void assign(std::size_t count, value_type value) {
    discardingReserve(count);
    value_type* out = data();
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = value;
    }
    size_ = static_cast<std::uint32_t>(count);
  }
  void assign(const value_type* first, const value_type* last) {
    const auto count = static_cast<std::size_t>(last - first);
    if (count <= capacity_) {
      // memmove: the source range may alias this buffer (e.g. self-assign).
      std::memmove(data(), first, count * sizeof(value_type));
      size_ = static_cast<std::uint32_t>(count);
      return;
    }
    auto* fresh = new value_type[count];
    std::memcpy(fresh, first, count * sizeof(value_type));
    if (isHeap()) {
      delete[] storage_.heap;
    }
    storage_.heap = fresh;
    capacity_ = static_cast<std::uint32_t>(count);
    size_ = static_cast<std::uint32_t>(count);
  }

  friend bool operator==(const LimbVec& lhs, const LimbVec& rhs) noexcept {
    return lhs.size_ == rhs.size_ &&
           std::memcmp(lhs.data(), rhs.data(), lhs.size_ * sizeof(value_type)) == 0;
  }

private:
  [[nodiscard]] bool isHeap() const noexcept { return capacity_ > kInlineLimbs; }

  /// Ensure capacity >= count without preserving contents (cheaper than
  /// reserve when the caller overwrites everything anyway).
  void discardingReserve(std::size_t count) {
    if (count > capacity_) {
      auto* fresh = new value_type[count];
      if (isHeap()) {
        delete[] storage_.heap;
      }
      storage_.heap = fresh;
      capacity_ = static_cast<std::uint32_t>(count);
    }
  }

  void grow(std::size_t minCapacity) {
    std::size_t newCapacity = std::size_t{capacity_} * 2;
    if (newCapacity < minCapacity) {
      newCapacity = minCapacity;
    }
    auto* fresh = new value_type[newCapacity];
    std::memcpy(fresh, data(), size_ * sizeof(value_type));
    if (isHeap()) {
      delete[] storage_.heap;
    }
    storage_.heap = fresh;
    capacity_ = static_cast<std::uint32_t>(newCapacity);
  }

  union Storage {
    value_type inlineLimbs[kInlineLimbs];
    value_type* heap;
  };
  Storage storage_;
  std::uint32_t size_ = 0;
  std::uint32_t capacity_ = kInlineLimbs;
};

#else // !QADD_BIGINT_SSO — escape hatch: the plain heap representation.

using LimbVec = std::vector<std::uint32_t>;

#endif

} // namespace detail

/// Arbitrary-precision signed integer (sign + magnitude, 32-bit limbs).
///
/// Invariants:
///  - `limbs_` has no trailing (most-significant) zero limbs.
///  - zero is represented as an empty limb sequence with `negative_ == false`.
class BigInt {
public:
  /// Zero.
  BigInt() = default;

  /// Construct from a machine integer.
  BigInt(std::int64_t value); // NOLINT(google-explicit-constructor): intended implicit

  /// Construct from a decimal string, optionally signed ("-123", "+7", "0").
  /// \throws std::invalid_argument on malformed input.
  explicit BigInt(std::string_view decimal);

  /// Exact value of a signed 128-bit integer (the widest result the
  /// algebraic small-value kernels produce).
  [[nodiscard]] static BigInt fromInt128(__int128 value);

  // -- observers ------------------------------------------------------------

  [[nodiscard]] bool isZero() const noexcept { return limbs_.empty(); }
  [[nodiscard]] bool isNegative() const noexcept { return negative_; }
  [[nodiscard]] bool isOne() const noexcept;
  [[nodiscard]] bool isOdd() const noexcept { return !limbs_.empty() && (limbs_[0] & 1U) != 0; }
  [[nodiscard]] bool isEven() const noexcept { return !isOdd(); }

  /// Number of bits in the magnitude (0 for zero).
  [[nodiscard]] std::size_t bitLength() const noexcept;

  /// -1, 0, or +1.
  [[nodiscard]] int sign() const noexcept {
    return isZero() ? 0 : (negative_ ? -1 : 1);
  }

  /// True iff the value fits into int64_t.
  [[nodiscard]] bool fitsInt64() const noexcept;

  /// Value as int64_t. \pre fitsInt64()
  [[nodiscard]] std::int64_t toInt64() const;

  /// True iff the magnitude is stored inline (no heap buffer) — i.e. the
  /// small-size-optimized representation is active for this value.  Always
  /// false in QADD_BIGINT_SSO=0 builds.  Exposed for tests and benchmarks.
  [[nodiscard]] bool isInline() const noexcept {
#if QADD_BIGINT_SSO
    return limbs_.isInline();
#else
    return false;
#endif
  }

  /// Closest double (may overflow to +-inf for huge magnitudes).
  [[nodiscard]] double toDouble() const noexcept;

  /// Decompose as m * 2^e with m in [0.5, 1) (or m == 0).  Never overflows,
  /// which makes it suitable for forming ratios of huge integers.
  [[nodiscard]] double toDoubleScaled(long& exponent2) const noexcept;

  /// Decimal string ("-123", "0", ...).
  [[nodiscard]] std::string toString() const;

  // -- byte serialization ---------------------------------------------------
  //
  // Self-delimiting binary encoding used by the qadd::io snapshot codecs (and
  // handy for content hashing): one LEB128 varint header
  //   h = (magnitudeByteCount << 1) | (negative ? 1 : 0)
  // followed by the magnitude as `magnitudeByteCount` little-endian bytes with
  // no trailing zero byte.  Zero is the single header byte 0x00.  The encoding
  // depends only on the value, never on the storage representation (inline vs
  // spilled), so QDDS snapshots are byte-identical across QADD_BIGINT_SSO
  // configurations.

  /// Append the encoding of this value to `out`.
  void toBytes(std::vector<std::uint8_t>& out) const;
  /// The encoding as a fresh buffer.
  [[nodiscard]] std::vector<std::uint8_t> toBytes() const;

  /// Decode one value from `bytes` starting at `offset`; advances `offset`
  /// past the consumed encoding.  \throws std::invalid_argument on truncated
  /// or non-canonical input (trailing zero magnitude byte, negative zero,
  /// runaway varint header).
  [[nodiscard]] static BigInt fromBytes(std::span<const std::uint8_t> bytes, std::size_t& offset);
  /// Decode a value that must occupy the whole buffer.
  [[nodiscard]] static BigInt fromBytes(std::span<const std::uint8_t> bytes);

  // -- arithmetic -----------------------------------------------------------

  [[nodiscard]] BigInt operator-() const;
  [[nodiscard]] BigInt abs() const;

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);
  /// Truncated division (rounds toward zero, like C++ integer division).
  BigInt& operator/=(const BigInt& rhs);
  /// Remainder matching truncated division: (a/b)*b + a%b == a.
  BigInt& operator%=(const BigInt& rhs);

  friend BigInt operator+(BigInt lhs, const BigInt& rhs) { return lhs += rhs; }
  friend BigInt operator-(BigInt lhs, const BigInt& rhs) { return lhs -= rhs; }
  friend BigInt operator*(BigInt lhs, const BigInt& rhs) { return lhs *= rhs; }
  friend BigInt operator/(BigInt lhs, const BigInt& rhs) { return lhs /= rhs; }
  friend BigInt operator%(BigInt lhs, const BigInt& rhs) { return lhs %= rhs; }

  /// Quotient and remainder of truncated division in one pass.
  /// \throws std::domain_error on division by zero.
  static void divMod(const BigInt& numerator, const BigInt& denominator,
                     BigInt& quotient, BigInt& remainder);

  /// Quotient rounded to the *nearest* integer (ties away from zero).
  /// Used by the Euclidean division in Z[omega].
  [[nodiscard]] static BigInt divRound(const BigInt& numerator, const BigInt& denominator);

  /// Left shift by `bits` (multiplication by 2^bits). \pre bits >= 0
  [[nodiscard]] BigInt shiftLeft(std::size_t bits) const;
  /// Arithmetic-magnitude right shift (divides magnitude by 2^bits, keeps sign;
  /// truncates toward zero).
  [[nodiscard]] BigInt shiftRight(std::size_t bits) const;

  /// Greatest common divisor (always non-negative).
  [[nodiscard]] static BigInt gcd(BigInt a, BigInt b);

  /// Largest e such that 2^e divides the value. \pre !isZero()
  [[nodiscard]] std::size_t countTrailingZeroBits() const;

  // -- comparison -----------------------------------------------------------

  friend bool operator==(const BigInt& lhs, const BigInt& rhs) noexcept {
    return lhs.negative_ == rhs.negative_ && lhs.limbs_ == rhs.limbs_;
  }
  friend std::strong_ordering operator<=>(const BigInt& lhs, const BigInt& rhs) noexcept;

  /// FNV-style hash of the canonical representation.  Small values hash
  /// entirely from inline storage — no pointer chase on the unique-table and
  /// computed-table lookups that hash algebraic weights.
  [[nodiscard]] std::size_t hash() const noexcept;

  friend std::ostream& operator<<(std::ostream& os, const BigInt& value);

private:
  using Limb = std::uint32_t;
  using DoubleLimb = std::uint64_t;
  using LimbVec = detail::LimbVec;

  static constexpr std::size_t kLimbBits = 32;
  static constexpr std::size_t kKaratsubaThreshold = 32; // limbs

  LimbVec limbs_; // little-endian magnitude
  bool negative_ = false;

  void trim() noexcept;

  // -- word-kernel helpers (fast paths over <= 2-limb magnitudes) -----------

  /// Magnitude fits in one machine word (|value| < 2^64).
  [[nodiscard]] bool magFitsU64() const noexcept { return limbs_.size() <= 2; }
  /// Magnitude as u64. \pre magFitsU64()
  [[nodiscard]] std::uint64_t magU64() const noexcept;
  /// Overwrite with a <= 2-limb magnitude; never allocates under SSO
  /// (inline capacity is always two limbs).
  void setMagU64(std::uint64_t magnitude, bool negative);
  /// Overwrite with a <= 4-limb magnitude (allocates only when spilling
  /// past two limbs).
  void setMagU128(unsigned __int128 magnitude, bool negative);

  // magnitude helpers (ignore signs)
  static int compareMagnitude(const LimbVec& a, const LimbVec& b) noexcept;
  static LimbVec addMagnitude(const LimbVec& a, const LimbVec& b);
  /// \pre |a| >= |b|
  static LimbVec subMagnitude(const LimbVec& a, const LimbVec& b);
  static LimbVec mulMagnitude(const LimbVec& a, const LimbVec& b);
  static LimbVec mulSchoolbook(const LimbVec& a, const LimbVec& b);
  static void divModMagnitude(const LimbVec& a, const LimbVec& b,
                              LimbVec& quotient, LimbVec& remainder);
};

/// Convenience literal-ish factory: 2^exponent.
[[nodiscard]] BigInt pow2(std::size_t exponent);

} // namespace qadd

template <> struct std::hash<qadd::BigInt> {
  std::size_t operator()(const qadd::BigInt& value) const noexcept { return value.hash(); }
};
