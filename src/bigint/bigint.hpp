/// \file bigint.hpp
/// Arbitrary-precision signed integers.
///
/// This is the repository's replacement for GMP (which the paper uses for the
/// integer coefficients of its algebraic number representation).  The design
/// is a classic sign-magnitude big integer: the magnitude is a little-endian
/// vector of 32-bit limbs, multiplication switches to Karatsuba above a
/// threshold, and division implements Knuth's Algorithm D.
///
/// The class is a regular value type: copyable, movable, totally ordered,
/// hashable, and streamable.  All operations are exact.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace qadd {

/// Arbitrary-precision signed integer (sign + magnitude, 32-bit limbs).
///
/// Invariants:
///  - `limbs_` has no trailing (most-significant) zero limbs.
///  - zero is represented as an empty limb vector with `negative_ == false`.
class BigInt {
public:
  /// Zero.
  BigInt() = default;

  /// Construct from a machine integer.
  BigInt(std::int64_t value); // NOLINT(google-explicit-constructor): intended implicit

  /// Construct from a decimal string, optionally signed ("-123", "+7", "0").
  /// \throws std::invalid_argument on malformed input.
  explicit BigInt(std::string_view decimal);

  // -- observers ------------------------------------------------------------

  [[nodiscard]] bool isZero() const noexcept { return limbs_.empty(); }
  [[nodiscard]] bool isNegative() const noexcept { return negative_; }
  [[nodiscard]] bool isOne() const noexcept;
  [[nodiscard]] bool isOdd() const noexcept { return !limbs_.empty() && (limbs_[0] & 1U) != 0; }
  [[nodiscard]] bool isEven() const noexcept { return !isOdd(); }

  /// Number of bits in the magnitude (0 for zero).
  [[nodiscard]] std::size_t bitLength() const noexcept;

  /// -1, 0, or +1.
  [[nodiscard]] int sign() const noexcept {
    return isZero() ? 0 : (negative_ ? -1 : 1);
  }

  /// True iff the value fits into int64_t.
  [[nodiscard]] bool fitsInt64() const noexcept;

  /// Value as int64_t. \pre fitsInt64()
  [[nodiscard]] std::int64_t toInt64() const;

  /// Closest double (may overflow to +-inf for huge magnitudes).
  [[nodiscard]] double toDouble() const noexcept;

  /// Decompose as m * 2^e with m in [0.5, 1) (or m == 0).  Never overflows,
  /// which makes it suitable for forming ratios of huge integers.
  [[nodiscard]] double toDoubleScaled(long& exponent2) const noexcept;

  /// Decimal string ("-123", "0", ...).
  [[nodiscard]] std::string toString() const;

  // -- byte serialization ---------------------------------------------------
  //
  // Self-delimiting binary encoding used by the qadd::io snapshot codecs (and
  // handy for content hashing): one LEB128 varint header
  //   h = (magnitudeByteCount << 1) | (negative ? 1 : 0)
  // followed by the magnitude as `magnitudeByteCount` little-endian bytes with
  // no trailing zero byte.  Zero is the single header byte 0x00.

  /// Append the encoding of this value to `out`.
  void toBytes(std::vector<std::uint8_t>& out) const;
  /// The encoding as a fresh buffer.
  [[nodiscard]] std::vector<std::uint8_t> toBytes() const;

  /// Decode one value from `bytes` starting at `offset`; advances `offset`
  /// past the consumed encoding.  \throws std::invalid_argument on truncated
  /// or non-canonical input (trailing zero magnitude byte, negative zero,
  /// runaway varint header).
  [[nodiscard]] static BigInt fromBytes(std::span<const std::uint8_t> bytes, std::size_t& offset);
  /// Decode a value that must occupy the whole buffer.
  [[nodiscard]] static BigInt fromBytes(std::span<const std::uint8_t> bytes);

  // -- arithmetic -----------------------------------------------------------

  [[nodiscard]] BigInt operator-() const;
  [[nodiscard]] BigInt abs() const;

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);
  /// Truncated division (rounds toward zero, like C++ integer division).
  BigInt& operator/=(const BigInt& rhs);
  /// Remainder matching truncated division: (a/b)*b + a%b == a.
  BigInt& operator%=(const BigInt& rhs);

  friend BigInt operator+(BigInt lhs, const BigInt& rhs) { return lhs += rhs; }
  friend BigInt operator-(BigInt lhs, const BigInt& rhs) { return lhs -= rhs; }
  friend BigInt operator*(BigInt lhs, const BigInt& rhs) { return lhs *= rhs; }
  friend BigInt operator/(BigInt lhs, const BigInt& rhs) { return lhs /= rhs; }
  friend BigInt operator%(BigInt lhs, const BigInt& rhs) { return lhs %= rhs; }

  /// Quotient and remainder of truncated division in one pass.
  /// \throws std::domain_error on division by zero.
  static void divMod(const BigInt& numerator, const BigInt& denominator,
                     BigInt& quotient, BigInt& remainder);

  /// Quotient rounded to the *nearest* integer (ties away from zero).
  /// Used by the Euclidean division in Z[omega].
  [[nodiscard]] static BigInt divRound(const BigInt& numerator, const BigInt& denominator);

  /// Left shift by `bits` (multiplication by 2^bits). \pre bits >= 0
  [[nodiscard]] BigInt shiftLeft(std::size_t bits) const;
  /// Arithmetic-magnitude right shift (divides magnitude by 2^bits, keeps sign;
  /// truncates toward zero).
  [[nodiscard]] BigInt shiftRight(std::size_t bits) const;

  /// Greatest common divisor (always non-negative).
  [[nodiscard]] static BigInt gcd(BigInt a, BigInt b);

  /// Largest e such that 2^e divides the value. \pre !isZero()
  [[nodiscard]] std::size_t countTrailingZeroBits() const;

  // -- comparison -----------------------------------------------------------

  friend bool operator==(const BigInt& lhs, const BigInt& rhs) noexcept {
    return lhs.negative_ == rhs.negative_ && lhs.limbs_ == rhs.limbs_;
  }
  friend std::strong_ordering operator<=>(const BigInt& lhs, const BigInt& rhs) noexcept;

  /// FNV-style hash of the canonical representation.
  [[nodiscard]] std::size_t hash() const noexcept;

  friend std::ostream& operator<<(std::ostream& os, const BigInt& value);

private:
  using Limb = std::uint32_t;
  using DoubleLimb = std::uint64_t;

  static constexpr std::size_t kLimbBits = 32;
  static constexpr std::size_t kKaratsubaThreshold = 32; // limbs

  std::vector<Limb> limbs_; // little-endian magnitude
  bool negative_ = false;

  void trim() noexcept;

  // magnitude helpers (ignore signs)
  static int compareMagnitude(const std::vector<Limb>& a, const std::vector<Limb>& b) noexcept;
  static std::vector<Limb> addMagnitude(const std::vector<Limb>& a, const std::vector<Limb>& b);
  /// \pre |a| >= |b|
  static std::vector<Limb> subMagnitude(const std::vector<Limb>& a, const std::vector<Limb>& b);
  static std::vector<Limb> mulMagnitude(const std::vector<Limb>& a, const std::vector<Limb>& b);
  static std::vector<Limb> mulSchoolbook(const std::vector<Limb>& a, const std::vector<Limb>& b);
  static void divModMagnitude(const std::vector<Limb>& a, const std::vector<Limb>& b,
                              std::vector<Limb>& quotient, std::vector<Limb>& remainder);
};

/// Convenience literal-ish factory: 2^exponent.
[[nodiscard]] BigInt pow2(std::size_t exponent);

} // namespace qadd

template <> struct std::hash<qadd::BigInt> {
  std::size_t operator()(const qadd::BigInt& value) const noexcept { return value.hash(); }
};
