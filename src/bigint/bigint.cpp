#include "bigint/bigint.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace qadd {

namespace detail {

bool gSmallFastPaths = QADD_BIGINT_SSO != 0;

bool setSmallFastPaths(bool enabled) noexcept {
#if QADD_BIGINT_SSO
  return std::exchange(gSmallFastPaths, enabled);
#else
  (void)enabled;
  return false; // no kernels compiled in; the flag stays off
#endif
}

} // namespace detail

namespace {

// Number of leading zero bits of a non-zero 32-bit limb.
int leadingZeros(std::uint32_t x) noexcept {
  assert(x != 0);
  return __builtin_clz(x);
}

int trailingZeros(std::uint32_t x) noexcept {
  assert(x != 0);
  return __builtin_ctz(x);
}

#if QADD_BIGINT_SSO
/// Shorthand for "the word kernels may run": compiled in and not disabled by
/// the differential-testing toggle.
bool fastPath() noexcept { return detail::smallFastPathsEnabled(); }
#endif

} // namespace

std::uint64_t BigInt::magU64() const noexcept {
  assert(magFitsU64());
  switch (limbs_.size()) {
  case 0:
    return 0;
  case 1:
    return limbs_[0];
  default:
    return static_cast<std::uint64_t>(limbs_[1]) << 32 | limbs_[0];
  }
}

void BigInt::setMagU64(std::uint64_t magnitude, bool negative) {
  limbs_.clear();
  if (magnitude != 0) {
    limbs_.push_back(static_cast<Limb>(magnitude & 0xffffffffU));
    if ((magnitude >> 32) != 0) {
      limbs_.push_back(static_cast<Limb>(magnitude >> 32));
    }
  }
  negative_ = negative && magnitude != 0;
}

void BigInt::setMagU128(unsigned __int128 magnitude, bool negative) {
  const auto high = static_cast<std::uint64_t>(magnitude >> 64);
  if (high == 0) {
    setMagU64(static_cast<std::uint64_t>(magnitude), negative);
    return;
  }
  const auto low = static_cast<std::uint64_t>(magnitude);
  limbs_.clear();
  limbs_.reserve(4);
  limbs_.push_back(static_cast<Limb>(low & 0xffffffffU));
  limbs_.push_back(static_cast<Limb>(low >> 32));
  limbs_.push_back(static_cast<Limb>(high & 0xffffffffU));
  if ((high >> 32) != 0) {
    limbs_.push_back(static_cast<Limb>(high >> 32));
  }
  negative_ = negative;
}

BigInt::BigInt(std::int64_t value) {
  // Avoid UB on INT64_MIN: negate in unsigned space.
  const auto magnitude = value < 0 ? ~static_cast<std::uint64_t>(value) + 1U
                                   : static_cast<std::uint64_t>(value);
  setMagU64(magnitude, value < 0);
}

BigInt BigInt::fromInt128(__int128 value) {
  const auto magnitude = value < 0 ? ~static_cast<unsigned __int128>(value) + 1U
                                   : static_cast<unsigned __int128>(value);
  BigInt result;
  result.setMagU128(magnitude, value < 0);
  return result;
}

BigInt::BigInt(std::string_view decimal) {
  std::size_t pos = 0;
  bool negative = false;
  if (pos < decimal.size() && (decimal[pos] == '+' || decimal[pos] == '-')) {
    negative = decimal[pos] == '-';
    ++pos;
  }
  if (pos == decimal.size()) {
    throw std::invalid_argument("BigInt: empty decimal string");
  }
  BigInt accumulator;
  const BigInt ten{10};
  for (; pos < decimal.size(); ++pos) {
    const char c = decimal[pos];
    if (c < '0' || c > '9') {
      throw std::invalid_argument("BigInt: invalid decimal digit");
    }
    accumulator *= ten;
    accumulator += BigInt{c - '0'};
  }
  limbs_ = std::move(accumulator.limbs_);
  negative_ = negative && !limbs_.empty();
}

bool BigInt::isOne() const noexcept {
  return !negative_ && limbs_.size() == 1 && limbs_[0] == 1;
}

std::size_t BigInt::bitLength() const noexcept {
  if (limbs_.empty()) {
    return 0;
  }
  return limbs_.size() * kLimbBits - static_cast<std::size_t>(leadingZeros(limbs_.back()));
}

bool BigInt::fitsInt64() const noexcept {
  const std::size_t bits = bitLength();
  if (bits < 64) {
    return true;
  }
  if (bits > 64) {
    return false;
  }
  // Exactly 64 bits of magnitude: only INT64_MIN fits.
  return negative_ && limbs_[0] == 0 && limbs_[1] == 0x80000000U;
}

std::int64_t BigInt::toInt64() const {
  assert(fitsInt64());
  std::uint64_t magnitude = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    magnitude = (magnitude << 32) | limbs_[i];
  }
  return negative_ ? static_cast<std::int64_t>(~magnitude + 1U)
                   : static_cast<std::int64_t>(magnitude);
}

double BigInt::toDouble() const noexcept {
  long exponent = 0;
  const double mantissa = toDoubleScaled(exponent);
  return std::ldexp(mantissa, static_cast<int>(std::min<long>(exponent, 1 << 24)));
}

double BigInt::toDoubleScaled(long& exponent2) const noexcept {
  exponent2 = 0;
  if (limbs_.empty()) {
    return 0.0;
  }
  const std::size_t bits = bitLength();
  // Keep only the top (up to) 64 bits: value ~= top * 2^(bits - taken).
  const std::size_t taken = std::min<std::size_t>(bits, 64);
  const BigInt head = shiftRight(bits - taken);
  std::uint64_t top = 0;
  for (std::size_t i = head.limbs_.size(); i-- > 0;) {
    top = (top << 32) | head.limbs_[i];
  }
  // top < 2^taken, top >= 2^(taken-1)  ->  mantissa in [0.5, 1).  (Rounding of
  // a 64-bit `top` to double can land exactly on 1.0; renormalize then.)
  double mantissa = std::ldexp(static_cast<double>(top), -static_cast<int>(taken));
  exponent2 = static_cast<long>(bits);
  if (mantissa >= 1.0) {
    mantissa *= 0.5;
    ++exponent2;
  }
  return negative_ ? -mantissa : mantissa;
}

std::string BigInt::toString() const {
  if (isZero()) {
    return "0";
  }
  // Repeated division by 10^9 to peel off 9 decimal digits at a time.
  LimbVec work = limbs_;
  std::string digits;
  while (!work.empty()) {
    DoubleLimb remainder = 0;
    for (std::size_t i = work.size(); i-- > 0;) {
      const DoubleLimb current = (remainder << 32) | work[i];
      work[i] = static_cast<Limb>(current / 1000000000U);
      remainder = current % 1000000000U;
    }
    while (!work.empty() && work.back() == 0) {
      work.pop_back();
    }
    for (int d = 0; d < 9; ++d) {
      digits.push_back(static_cast<char>('0' + remainder % 10));
      remainder /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') {
    digits.pop_back();
  }
  if (negative_) {
    digits.push_back('-');
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

void BigInt::toBytes(std::vector<std::uint8_t>& out) const {
  // Magnitude byte count without the trailing zero bytes of the top limb.
  std::size_t byteCount = 0;
  if (!limbs_.empty()) {
    byteCount = (limbs_.size() - 1) * 4;
    for (Limb top = limbs_.back(); top != 0; top >>= 8U) {
      ++byteCount;
    }
  }
  // Header varint: (byteCount << 1) | sign.
  std::uint64_t header = (static_cast<std::uint64_t>(byteCount) << 1U) |
                         (negative_ ? 1U : 0U);
  while (header >= 0x80U) {
    out.push_back(static_cast<std::uint8_t>(header) | 0x80U);
    header >>= 7U;
  }
  out.push_back(static_cast<std::uint8_t>(header));
  // Little-endian magnitude bytes straight from the little-endian limbs.
  for (std::size_t i = 0; i < byteCount; ++i) {
    out.push_back(static_cast<std::uint8_t>(limbs_[i / 4] >> (8U * (i % 4))));
  }
}

std::vector<std::uint8_t> BigInt::toBytes() const {
  std::vector<std::uint8_t> out;
  toBytes(out);
  return out;
}

BigInt BigInt::fromBytes(std::span<const std::uint8_t> bytes, std::size_t& offset) {
  std::uint64_t header = 0;
  unsigned shift = 0;
  for (;; shift += 7) {
    if (shift >= 64 || offset >= bytes.size()) {
      throw std::invalid_argument("BigInt::fromBytes: truncated or runaway header varint");
    }
    const std::uint8_t byte = bytes[offset++];
    header |= static_cast<std::uint64_t>(byte & 0x7FU) << shift;
    if ((byte & 0x80U) == 0) {
      break;
    }
  }
  const bool negative = (header & 1U) != 0;
  const auto byteCount = static_cast<std::size_t>(header >> 1U);
  if (byteCount > bytes.size() - offset) {
    throw std::invalid_argument("BigInt::fromBytes: magnitude exceeds buffer");
  }
  if (byteCount == 0 && negative) {
    throw std::invalid_argument("BigInt::fromBytes: negative zero is not canonical");
  }
  if (byteCount != 0 && bytes[offset + byteCount - 1] == 0) {
    throw std::invalid_argument("BigInt::fromBytes: non-minimal magnitude encoding");
  }
  BigInt result;
  result.limbs_.assign((byteCount + 3) / 4, 0);
  for (std::size_t i = 0; i < byteCount; ++i) {
    result.limbs_[i / 4] |= static_cast<Limb>(bytes[offset + i]) << (8U * (i % 4));
  }
  offset += byteCount;
  result.negative_ = negative;
  return result;
}

BigInt BigInt::fromBytes(std::span<const std::uint8_t> bytes) {
  std::size_t offset = 0;
  BigInt result = fromBytes(bytes, offset);
  if (offset != bytes.size()) {
    throw std::invalid_argument("BigInt::fromBytes: trailing bytes after value");
  }
  return result;
}

BigInt BigInt::operator-() const {
  BigInt result = *this;
  if (!result.isZero()) {
    result.negative_ = !result.negative_;
  }
  return result;
}

BigInt BigInt::abs() const {
  BigInt result = *this;
  result.negative_ = false;
  return result;
}

void BigInt::trim() noexcept {
  while (!limbs_.empty() && limbs_.back() == 0) {
    limbs_.pop_back();
  }
  if (limbs_.empty()) {
    negative_ = false;
  }
}

int BigInt::compareMagnitude(const LimbVec& a, const LimbVec& b) noexcept {
  if (a.size() != b.size()) {
    return a.size() < b.size() ? -1 : 1;
  }
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) {
      return a[i] < b[i] ? -1 : 1;
    }
  }
  return 0;
}

BigInt::LimbVec BigInt::addMagnitude(const LimbVec& a, const LimbVec& b) {
  const auto& longer = a.size() >= b.size() ? a : b;
  const auto& shorter = a.size() >= b.size() ? b : a;
  LimbVec result;
  result.reserve(longer.size() + 1);
  DoubleLimb carry = 0;
  for (std::size_t i = 0; i < longer.size(); ++i) {
    DoubleLimb sum = carry + longer[i];
    if (i < shorter.size()) {
      sum += shorter[i];
    }
    result.push_back(static_cast<Limb>(sum & 0xffffffffU));
    carry = sum >> 32;
  }
  if (carry != 0) {
    result.push_back(static_cast<Limb>(carry));
  }
  return result;
}

BigInt::LimbVec BigInt::subMagnitude(const LimbVec& a, const LimbVec& b) {
  assert(compareMagnitude(a, b) >= 0);
  LimbVec result;
  result.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow;
    if (i < b.size()) {
      diff -= b[i];
    }
    if (diff < 0) {
      diff += static_cast<std::int64_t>(1) << 32;
      borrow = 1;
    } else {
      borrow = 0;
    }
    result.push_back(static_cast<Limb>(diff));
  }
  while (!result.empty() && result.back() == 0) {
    result.pop_back();
  }
  return result;
}

BigInt::LimbVec BigInt::mulSchoolbook(const LimbVec& a, const LimbVec& b) {
  if (a.empty() || b.empty()) {
    return {};
  }
  LimbVec result(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    DoubleLimb carry = 0;
    const DoubleLimb ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      const DoubleLimb current = ai * b[j] + result[i + j] + carry;
      result[i + j] = static_cast<Limb>(current & 0xffffffffU);
      carry = current >> 32;
    }
    result[i + b.size()] = static_cast<Limb>(carry);
  }
  while (!result.empty() && result.back() == 0) {
    result.pop_back();
  }
  return result;
}

BigInt::LimbVec BigInt::mulMagnitude(const LimbVec& a, const LimbVec& b) {
  if (a.size() < kKaratsubaThreshold || b.size() < kKaratsubaThreshold) {
    return mulSchoolbook(a, b);
  }
  // Karatsuba: split at half of the longer operand.
  const std::size_t half = std::max(a.size(), b.size()) / 2;
  const auto split = [half](const LimbVec& v) {
    const std::size_t cut = std::min(half, v.size());
    LimbVec low(v.data(), v.data() + cut);
    LimbVec high(v.data() + cut, v.data() + v.size());
    while (!low.empty() && low.back() == 0) {
      low.pop_back();
    }
    return std::pair{std::move(low), std::move(high)};
  };
  auto [a0, a1] = split(a);
  auto [b0, b1] = split(b);
  const auto z0 = mulMagnitude(a0, b0);
  const auto z2 = mulMagnitude(a1, b1);
  const auto sumA = addMagnitude(a0, a1);
  const auto sumB = addMagnitude(b0, b1);
  auto z1 = mulMagnitude(sumA, sumB);
  z1 = subMagnitude(z1, z0);
  z1 = subMagnitude(z1, z2);

  // result = z0 + z1 << (32*half) + z2 << (64*half)
  LimbVec result(std::max({z0.size(), z1.size() + half, z2.size() + 2 * half}) + 1, 0);
  const auto accumulate = [&result](const LimbVec& part, std::size_t offset) {
    DoubleLimb carry = 0;
    std::size_t i = 0;
    for (; i < part.size(); ++i) {
      const DoubleLimb current = static_cast<DoubleLimb>(result[offset + i]) + part[i] + carry;
      result[offset + i] = static_cast<Limb>(current & 0xffffffffU);
      carry = current >> 32;
    }
    for (; carry != 0; ++i) {
      const DoubleLimb current = static_cast<DoubleLimb>(result[offset + i]) + carry;
      result[offset + i] = static_cast<Limb>(current & 0xffffffffU);
      carry = current >> 32;
    }
  };
  accumulate(z0, 0);
  accumulate(z1, half);
  accumulate(z2, 2 * half);
  while (!result.empty() && result.back() == 0) {
    result.pop_back();
  }
  return result;
}

BigInt& BigInt::operator+=(const BigInt& rhs) {
#if QADD_BIGINT_SSO
  if (fastPath() && magFitsU64() && rhs.magFitsU64()) {
    const std::uint64_t x = magU64();
    const std::uint64_t y = rhs.magU64();
    if (negative_ == rhs.negative_) {
      // Same sign: magnitudes add; a 65-bit carry spills to three limbs.
      setMagU128(static_cast<unsigned __int128>(x) + y, negative_);
    } else if (x >= y) {
      setMagU64(x - y, negative_);
    } else {
      setMagU64(y - x, rhs.negative_);
    }
    return *this;
  }
#endif
  if (negative_ == rhs.negative_) {
    limbs_ = addMagnitude(limbs_, rhs.limbs_);
  } else if (compareMagnitude(limbs_, rhs.limbs_) >= 0) {
    limbs_ = subMagnitude(limbs_, rhs.limbs_);
  } else {
    limbs_ = subMagnitude(rhs.limbs_, limbs_);
    negative_ = rhs.negative_;
  }
  trim();
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& rhs) {
#if QADD_BIGINT_SSO
  if (fastPath() && magFitsU64() && rhs.magFitsU64()) {
    const std::uint64_t x = magU64();
    const std::uint64_t y = rhs.magU64();
    const bool rhsNegated = !rhs.negative_;
    if (negative_ == rhsNegated) {
      setMagU128(static_cast<unsigned __int128>(x) + y, negative_);
    } else if (x >= y) {
      setMagU64(x - y, negative_);
    } else {
      setMagU64(y - x, rhsNegated);
    }
    return *this;
  }
#endif
  if (negative_ != rhs.negative_) {
    limbs_ = addMagnitude(limbs_, rhs.limbs_);
  } else if (compareMagnitude(limbs_, rhs.limbs_) >= 0) {
    limbs_ = subMagnitude(limbs_, rhs.limbs_);
  } else {
    limbs_ = subMagnitude(rhs.limbs_, limbs_);
    negative_ = !negative_;
  }
  trim();
  return *this;
}

BigInt& BigInt::operator*=(const BigInt& rhs) {
#if QADD_BIGINT_SSO
  if (fastPath() && magFitsU64() && rhs.magFitsU64()) {
    // One hardware 64x64 -> 128 multiply replaces the schoolbook limb loop;
    // products past 64 bits spill to up to four limbs.
    const unsigned __int128 product =
        static_cast<unsigned __int128>(magU64()) * rhs.magU64();
    setMagU128(product, negative_ != rhs.negative_);
    return *this;
  }
#endif
  negative_ = negative_ != rhs.negative_;
  limbs_ = mulMagnitude(limbs_, rhs.limbs_);
  trim();
  return *this;
}

void BigInt::divModMagnitude(const LimbVec& a, const LimbVec& b,
                             LimbVec& quotient, LimbVec& remainder) {
  assert(!b.empty());
  quotient.clear();
  remainder.clear();
  if (compareMagnitude(a, b) < 0) {
    remainder = a;
    return;
  }
  if (b.size() == 1) {
    // Short division.
    quotient.assign(a.size(), 0);
    DoubleLimb rem = 0;
    for (std::size_t i = a.size(); i-- > 0;) {
      const DoubleLimb current = (rem << 32) | a[i];
      quotient[i] = static_cast<Limb>(current / b[0]);
      rem = current % b[0];
    }
    while (!quotient.empty() && quotient.back() == 0) {
      quotient.pop_back();
    }
    if (rem != 0) {
      remainder.push_back(static_cast<Limb>(rem));
    }
    return;
  }

  // Knuth Algorithm D.  Normalize so the divisor's top limb has its high bit set.
  const int shift = leadingZeros(b.back());
  const std::size_t n = b.size();
  const std::size_t m = a.size() - n;

  // u = a << shift (with one extra limb), v = b << shift.
  LimbVec u(a.size() + 1, 0);
  LimbVec v(n, 0);
  if (shift == 0) {
    std::copy(a.begin(), a.end(), u.begin());
    v = b;
  } else {
    const std::size_t inverseShift = kLimbBits - static_cast<std::size_t>(shift);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = (b[i] << shift) | (i > 0 ? (b[i - 1] >> inverseShift) : 0);
    }
    for (std::size_t i = 0; i <= a.size(); ++i) {
      const Limb low = i < a.size() ? (a[i] << shift) : 0;
      const Limb high = i > 0 ? (a[i - 1] >> inverseShift) : 0;
      u[i] = low | high;
    }
  }

  quotient.assign(m + 1, 0);
  const DoubleLimb base = static_cast<DoubleLimb>(1) << 32;
  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat = (u[j+n]*base + u[j+n-1]) / v[n-1], then refine it with
    // the second divisor limb so it is at most one too large.
    const DoubleLimb numerator = (static_cast<DoubleLimb>(u[j + n]) << 32) | u[j + n - 1];
    DoubleLimb qHat;
    DoubleLimb rHat;
    if (u[j + n] == v[n - 1]) {
      qHat = base - 1;
      rHat = static_cast<DoubleLimb>(u[j + n - 1]) + v[n - 1];
    } else {
      qHat = numerator / v[n - 1];
      rHat = numerator % v[n - 1];
    }
    while (rHat < base &&
           static_cast<unsigned __int128>(qHat) * v[n - 2] >
               ((static_cast<unsigned __int128>(rHat) << 32) | u[j + n - 2])) {
      --qHat;
      rHat += v[n - 1];
    }
    // Multiply-and-subtract: u[j..j+n] -= qHat * v.
    std::int64_t borrow = 0;
    DoubleLimb carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const DoubleLimb product = qHat * v[i] + carry;
      carry = product >> 32;
      std::int64_t diff = static_cast<std::int64_t>(u[j + i]) -
                          static_cast<std::int64_t>(product & 0xffffffffU) - borrow;
      if (diff < 0) {
        diff += static_cast<std::int64_t>(base);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[j + i] = static_cast<Limb>(diff);
    }
    std::int64_t topDiff = static_cast<std::int64_t>(u[j + n]) -
                           static_cast<std::int64_t>(carry) - borrow;
    if (topDiff < 0) {
      // q_hat was one too large: add back.
      topDiff += static_cast<std::int64_t>(base);
      --qHat;
      DoubleLimb addCarry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const DoubleLimb sum = static_cast<DoubleLimb>(u[j + i]) + v[i] + addCarry;
        u[j + i] = static_cast<Limb>(sum & 0xffffffffU);
        addCarry = sum >> 32;
      }
      topDiff += static_cast<std::int64_t>(addCarry);
      topDiff &= static_cast<std::int64_t>(base) - 1;
    }
    u[j + n] = static_cast<Limb>(topDiff);
    quotient[j] = static_cast<Limb>(qHat);
  }
  while (!quotient.empty() && quotient.back() == 0) {
    quotient.pop_back();
  }
  // Remainder = u[0..n) >> shift.
  remainder.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  if (shift != 0) {
    for (std::size_t i = 0; i < n; ++i) {
      remainder[i] = (remainder[i] >> shift) |
                     (i + 1 < n ? (remainder[i + 1] << (kLimbBits - static_cast<std::size_t>(shift))) : 0);
    }
  }
  while (!remainder.empty() && remainder.back() == 0) {
    remainder.pop_back();
  }
}

void BigInt::divMod(const BigInt& numerator, const BigInt& denominator,
                    BigInt& quotient, BigInt& remainder) {
  if (denominator.isZero()) {
    throw std::domain_error("BigInt: division by zero");
  }
#if QADD_BIGINT_SSO
  if (fastPath() && numerator.magFitsU64() && denominator.magFitsU64()) {
    // Read both operands before writing: quotient/remainder may alias them.
    const std::uint64_t x = numerator.magU64();
    const std::uint64_t y = denominator.magU64();
    const bool quotientNegative = numerator.negative_ != denominator.negative_;
    const bool remainderNegative = numerator.negative_;
    quotient.setMagU64(x / y, quotientNegative);
    remainder.setMagU64(x % y, remainderNegative);
    return;
  }
#endif
  LimbVec q;
  LimbVec r;
  divModMagnitude(numerator.limbs_, denominator.limbs_, q, r);
  quotient.limbs_ = std::move(q);
  quotient.negative_ = numerator.negative_ != denominator.negative_;
  quotient.trim();
  remainder.limbs_ = std::move(r);
  remainder.negative_ = numerator.negative_;
  remainder.trim();
}

BigInt BigInt::divRound(const BigInt& numerator, const BigInt& denominator) {
#if QADD_BIGINT_SSO
  if (fastPath() && numerator.magFitsU64() && denominator.magFitsU64() &&
      !denominator.isZero()) {
    const std::uint64_t x = numerator.magU64();
    const std::uint64_t y = denominator.magU64();
    std::uint64_t q = x / y;
    const std::uint64_t r = x % y;
    if (r != 0 && r >= y - r) { // 2r >= y without overflowing: round away
      ++q;
    }
    BigInt result;
    result.setMagU64(q, numerator.negative_ != denominator.negative_);
    return result;
  }
#endif
  BigInt quotient;
  BigInt remainder;
  divMod(numerator, denominator, quotient, remainder);
  if (remainder.isZero()) {
    return quotient;
  }
  // |remainder| * 2 >= |denominator| -> round away from zero.
  const BigInt twiceRemainder = remainder.abs().shiftLeft(1);
  if (compareMagnitude(twiceRemainder.limbs_, denominator.limbs_) >= 0) {
    const bool resultNegative = numerator.negative_ != denominator.negative_;
    quotient += resultNegative ? BigInt{-1} : BigInt{1};
  }
  return quotient;
}

BigInt& BigInt::operator/=(const BigInt& rhs) {
  BigInt quotient;
  BigInt remainder;
  divMod(*this, rhs, quotient, remainder);
  *this = std::move(quotient);
  return *this;
}

BigInt& BigInt::operator%=(const BigInt& rhs) {
  BigInt quotient;
  BigInt remainder;
  divMod(*this, rhs, quotient, remainder);
  *this = std::move(remainder);
  return *this;
}

BigInt BigInt::shiftLeft(std::size_t bits) const {
  if (isZero() || bits == 0) {
    return *this;
  }
#if QADD_BIGINT_SSO
  if (fastPath() && magFitsU64() && bits < 64) {
    BigInt result;
    result.setMagU128(static_cast<unsigned __int128>(magU64()) << bits, negative_);
    return result;
  }
#endif
  const std::size_t limbShift = bits / kLimbBits;
  const std::size_t bitShift = bits % kLimbBits;
  BigInt result;
  result.negative_ = negative_;
  result.limbs_.assign(limbs_.size() + limbShift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const DoubleLimb shifted = static_cast<DoubleLimb>(limbs_[i]) << bitShift;
    result.limbs_[i + limbShift] |= static_cast<Limb>(shifted & 0xffffffffU);
    result.limbs_[i + limbShift + 1] |= static_cast<Limb>(shifted >> 32);
  }
  result.trim();
  return result;
}

BigInt BigInt::shiftRight(std::size_t bits) const {
#if QADD_BIGINT_SSO
  if (fastPath() && magFitsU64()) {
    BigInt result;
    result.setMagU64(bits >= 64 ? 0 : magU64() >> bits, negative_);
    return result;
  }
#endif
  const std::size_t limbShift = bits / kLimbBits;
  if (limbShift >= limbs_.size()) {
    return BigInt{};
  }
  const std::size_t bitShift = bits % kLimbBits;
  BigInt result;
  result.negative_ = negative_;
  result.limbs_.assign(limbs_.begin() + static_cast<std::ptrdiff_t>(limbShift), limbs_.end());
  if (bitShift != 0) {
    for (std::size_t i = 0; i < result.limbs_.size(); ++i) {
      result.limbs_[i] = (result.limbs_[i] >> bitShift) |
                         (i + 1 < result.limbs_.size()
                              ? (result.limbs_[i + 1] << (kLimbBits - bitShift))
                              : 0);
    }
  }
  result.trim();
  return result;
}

std::size_t BigInt::countTrailingZeroBits() const {
  assert(!isZero());
  std::size_t count = 0;
  for (const Limb limb : limbs_) {
    if (limb == 0) {
      count += kLimbBits;
    } else {
      count += static_cast<std::size_t>(trailingZeros(limb));
      break;
    }
  }
  return count;
}

namespace {

/// (value >> shift) truncated to 64 bits; `shift` must leave at most 63
/// significant bits, which the Lehmer caller guarantees.  Reads straight from
/// the limb array — no temporary BigInt.
std::uint64_t topWindow(const qadd::detail::LimbVec& limbs, std::size_t shift) noexcept {
  const std::size_t limbIndex = shift / 32;
  const std::size_t bitIndex = shift % 32;
  unsigned __int128 window = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    if (limbIndex + i < limbs.size()) {
      window |= static_cast<unsigned __int128>(limbs[limbIndex + i]) << (32 * i);
    }
  }
  return static_cast<std::uint64_t>(window >> bitIndex);
}

} // namespace

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  if (a.isZero()) {
    return b;
  }
  if (b.isZero()) {
    return a;
  }
#if QADD_BIGINT_SSO
  if (fastPath() && a.magFitsU64() && b.magFitsU64()) {
    // Hardware Euclid straight away — no multi-limb setup needed.
    std::uint64_t x = a.magU64();
    std::uint64_t y = b.magU64();
    while (y != 0) {
      x %= y;
      std::swap(x, y);
    }
    a.setMagU64(x, false);
    return a;
  }
#endif
  // Lehmer's GCD: run Euclid on the aligned top 63 bits of both operands with
  // int64 cofactors, then apply the accumulated 2x2 matrix (determinant +-1,
  // so the gcd is preserved) to the full values in one O(limbs) pass.  Each
  // round retires ~31 bits, against 1 bit per subtract-and-shift round of the
  // binary GCD this replaces — the difference dominated whole-simulation
  // profiles via the canonicalization content gcd.
  while (a.limbs_.size() > 2 || b.limbs_.size() > 2) {
    if (compareMagnitude(a.limbs_, b.limbs_) < 0) {
      std::swap(a, b);
    }
    if (b.isZero()) {
      return a;
    }
    const std::size_t bits = a.bitLength();
    const std::size_t shift = bits > 63 ? bits - 63 : 0;
    std::int64_t xh = static_cast<std::int64_t>(topWindow(a.limbs_, shift));
    std::int64_t yh = static_cast<std::int64_t>(topWindow(b.limbs_, shift));
    std::int64_t mA = 1;
    std::int64_t mB = 0;
    std::int64_t mC = 0;
    std::int64_t mD = 1;
    // Simulate Euclid while the quotient is provably independent of the bits
    // truncated away (Knuth 4.5.2 L: the quotients computed from the two
    // extreme completions of the window must agree).
    while (yh + mC != 0 && yh + mD != 0) {
      const std::int64_t q = (xh + mA) / (yh + mC);
      if (q != (xh + mB) / (yh + mD)) {
        break;
      }
      // 128-bit intermediates: the continuant recurrences can brush past
      // int64 at the very end of a window.
      const auto nextC = static_cast<__int128>(mA) - static_cast<__int128>(q) * mC;
      const auto nextD = static_cast<__int128>(mB) - static_cast<__int128>(q) * mD;
      const auto nextY = static_cast<__int128>(xh) - static_cast<__int128>(q) * yh;
      constexpr auto kBound = static_cast<__int128>(1) << 62;
      if (nextC > kBound || nextC < -kBound || nextD > kBound || nextD < -kBound) {
        break;
      }
      mA = mC;
      mB = mD;
      mC = static_cast<std::int64_t>(nextC);
      mD = static_cast<std::int64_t>(nextD);
      xh = yh;
      yh = static_cast<std::int64_t>(nextY);
    }
    if (mB == 0) {
      // The window carried no usable quotient (e.g. |a| >> |b|): take one
      // full division step instead.
      LimbVec quotient;
      LimbVec remainder;
      divModMagnitude(a.limbs_, b.limbs_, quotient, remainder);
      a.limbs_ = std::move(b.limbs_);
      b.limbs_ = std::move(remainder);
    } else {
      BigInt nextA = a * BigInt{mA} + b * BigInt{mB};
      BigInt nextB = a * BigInt{mC} + b * BigInt{mD};
      nextA.negative_ = false;
      nextB.negative_ = false;
      if (compareMagnitude(nextB.limbs_, b.limbs_) >= 0) {
        // No reduction (pathological window): force progress by division.
        LimbVec quotient;
        LimbVec remainder;
        divModMagnitude(a.limbs_, b.limbs_, quotient, remainder);
        a.limbs_ = std::move(b.limbs_);
        b.limbs_ = std::move(remainder);
      } else {
        a = std::move(nextA);
        b = std::move(nextB);
      }
    }
  }
  // Word-size finish with hardware Euclid.
  std::uint64_t x = a.magU64();
  std::uint64_t y = b.magU64();
  if (x < y) {
    std::swap(x, y);
  }
  while (y != 0) {
    x %= y;
    std::swap(x, y);
  }
  BigInt result;
  result.setMagU64(x, false);
  return result;
}

std::strong_ordering operator<=>(const BigInt& lhs, const BigInt& rhs) noexcept {
  if (lhs.negative_ != rhs.negative_) {
    return lhs.negative_ ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  const int magnitude = BigInt::compareMagnitude(lhs.limbs_, rhs.limbs_);
  const int signed_ = lhs.negative_ ? -magnitude : magnitude;
  if (signed_ < 0) {
    return std::strong_ordering::less;
  }
  if (signed_ > 0) {
    return std::strong_ordering::greater;
  }
  return std::strong_ordering::equal;
}

std::size_t BigInt::hash() const noexcept {
  std::size_t h = negative_ ? 0x9e3779b97f4a7c15ULL : 0x2545f4914f6cdd1dULL;
  for (const Limb limb : limbs_) {
    h ^= limb + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.toString();
}

BigInt pow2(std::size_t exponent) {
  return BigInt{1}.shiftLeft(exponent);
}

} // namespace qadd
