#include "algorithms/arithmetic.hpp"

#include <stdexcept>

namespace qadd::algos {

using qc::Circuit;
using qc::Qubit;

namespace {

/// MAJ (majority) block of the CDKM adder on (c, b, a).
void maj(Circuit& circuit, Qubit c, Qubit b, Qubit a) {
  circuit.cx(a, b);
  circuit.cx(a, c);
  circuit.ccx(c, b, a);
}

/// UMA (un-majority and add) block, the inverse of MAJ plus the sum write.
void uma(Circuit& circuit, Qubit c, Qubit b, Qubit a) {
  circuit.ccx(c, b, a);
  circuit.cx(a, c);
  circuit.cx(c, b);
}

} // namespace

Circuit rippleCarryAdder(Qubit nbits) {
  if (nbits == 0 || nbits > 20) {
    throw std::invalid_argument("rippleCarryAdder: width out of range");
  }
  const AdderLayout layout{nbits};
  Circuit circuit(layout.width(), "cdkm_adder");
  // Ripple the majority up.
  maj(circuit, layout.carryIn(), layout.b(0), layout.a(0));
  for (Qubit bit = 1; bit < nbits; ++bit) {
    maj(circuit, layout.a(bit - 1), layout.b(bit), layout.a(bit));
  }
  // Copy the top carry out.
  circuit.cx(layout.a(nbits - 1), layout.carryOut());
  // Unwind with UMA, writing the sum bits.
  for (Qubit bit = nbits; bit-- > 1;) {
    uma(circuit, layout.a(bit - 1), layout.b(bit), layout.a(bit));
  }
  uma(circuit, layout.carryIn(), layout.b(0), layout.a(0));
  return circuit;
}

Circuit prepareAdderInputs(Qubit nbits, std::uint64_t a, std::uint64_t b, bool carryIn) {
  const AdderLayout layout{nbits};
  if ((nbits < 64 && ((a >> nbits) != 0 || (b >> nbits) != 0))) {
    throw std::invalid_argument("prepareAdderInputs: operand out of range");
  }
  Circuit circuit(layout.width(), "adder_inputs");
  if (carryIn) {
    circuit.x(layout.carryIn());
  }
  for (Qubit bit = 0; bit < nbits; ++bit) {
    if ((a >> bit) & 1ULL) {
      circuit.x(layout.a(bit));
    }
    if ((b >> bit) & 1ULL) {
      circuit.x(layout.b(bit));
    }
  }
  return circuit;
}

} // namespace qadd::algos
