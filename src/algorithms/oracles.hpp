/// \file oracles.hpp
/// Oracle-based textbook algorithms whose circuits are exactly representable
/// (H / X / CNOT / multi-controlled X only): Deutsch-Jozsa and
/// Bernstein-Vazirani.  They complement Grover as Clifford+T-exact
/// benchmarks and serve as additional correctness fixtures for both QMDD
/// flavors (the final state is a known basis state).
#pragma once

#include "qc/circuit.hpp"

#include <cstdint>

namespace qadd::algos {

/// Bernstein-Vazirani: recover the hidden string s of f(x) = s.x (mod 2) in
/// one query.  Layout: n data qubits on top, one phase ancilla at the
/// bottom; after the circuit the data register holds |s> exactly (bit q of
/// `secret` on qubit q).
[[nodiscard]] qc::Circuit bernsteinVazirani(qc::Qubit nqubits, std::uint64_t secret);

/// Deutsch-Jozsa with a balanced oracle f(x) = mask.x (mod 2), mask != 0, or
/// the constant oracle when mask == 0.  After the circuit the data register
/// is |0...0> iff the oracle is constant.
[[nodiscard]] qc::Circuit deutschJozsa(qc::Qubit nqubits, std::uint64_t mask);

} // namespace qadd::algos
