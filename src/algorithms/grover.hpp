/// \file grover.hpp
/// Grover's database-search algorithm [2] — the paper's computer-science
/// benchmark whose gates are all exactly representable in D[omega]
/// (Section V): H, X, and multi-controlled Z only.
#pragma once

#include "qc/circuit.hpp"

#include <cstdint>

namespace qadd::algos {

struct GroverOptions {
  qc::Qubit nqubits = 11;          ///< search register width
  std::uint64_t marked = 0x2AA;    ///< element the oracle marks
  /// 0 = use the optimal floor(pi/4 * sqrt(2^n)) iteration count.
  std::size_t iterations = 0;
};

/// Number of iterations Grover's algorithm uses for an n-qubit search.
[[nodiscard]] std::size_t groverOptimalIterations(qc::Qubit nqubits);

/// The full circuit: uniform superposition, then `iterations` rounds of
/// (phase oracle; diffusion).  The oracle is a multi-controlled Z whose
/// control polarities encode the marked element.
[[nodiscard]] qc::Circuit grover(const GroverOptions& options = {});

/// Success probability of measuring `marked` after the optimal number of
/// iterations (closed form; used by tests).
[[nodiscard]] double groverSuccessProbability(qc::Qubit nqubits, std::size_t iterations);

} // namespace qadd::algos
