#include "algorithms/counting.hpp"

#include "algorithms/common.hpp"

#include <cmath>
#include <stdexcept>

namespace qadd::algos {

using qc::Circuit;
using qc::ControlSpec;
using qc::GateKind;
using qc::Qubit;

Circuit groverIterate(Qubit searchQubits, const std::vector<std::uint64_t>& marked) {
  const Qubit n = searchQubits;
  if (n < 2) {
    throw std::invalid_argument("groverIterate: need at least 2 search qubits");
  }
  Circuit circuit(n, "grover_iterate");
  // Phase oracle: one multi-controlled Z per marked element, polarities
  // encoding its bits (conjugate the target with X when its bit is 0).
  for (const std::uint64_t element : marked) {
    if (n < 64 && (element >> n) != 0) {
      throw std::invalid_argument("groverIterate: marked element out of range");
    }
    std::vector<ControlSpec> controls;
    for (Qubit q = 0; q + 1 < n; ++q) {
      controls.push_back({q, ((element >> q) & 1ULL) != 0});
    }
    const bool lastBit = ((element >> (n - 1)) & 1ULL) != 0;
    if (!lastBit) {
      circuit.x(n - 1);
    }
    circuit.controlled(GateKind::Z, n - 1, controls);
    if (!lastBit) {
      circuit.x(n - 1);
    }
  }
  // Diffusion.
  for (Qubit q = 0; q < n; ++q) {
    circuit.h(q);
  }
  for (Qubit q = 0; q < n; ++q) {
    circuit.x(q);
  }
  std::vector<ControlSpec> diffusionControls;
  for (Qubit q = 0; q + 1 < n; ++q) {
    diffusionControls.push_back({q, true});
  }
  circuit.controlled(GateKind::Z, n - 1, diffusionControls);
  for (Qubit q = 0; q < n; ++q) {
    circuit.x(q);
  }
  for (Qubit q = 0; q < n; ++q) {
    circuit.h(q);
  }
  // The H/X/MCZ sandwich realizes -(2|s><s| - I).  A global -1 is harmless
  // in plain Grover but becomes a *relative* phase once the iterate is
  // controlled (quantum counting!), so restore the textbook sign with an
  // explicit -I = Z X Z X on one line.
  circuit.z(0).x(0).z(0).x(0);
  return circuit;
}

Circuit quantumCounting(const CountingOptions& options) {
  const Qubit m = options.precisionQubits;
  const Qubit n = options.searchQubits;
  if (m == 0) {
    throw std::invalid_argument("quantumCounting: need at least one ancilla");
  }
  Circuit circuit(m + n, "quantum_counting");
  // Uniform superpositions on both registers.
  for (Qubit q = 0; q < m + n; ++q) {
    circuit.h(q);
  }
  // Controlled G^(2^(m-1-k)) controlled by ancilla k.
  const Circuit iterate = groverIterate(n, options.marked).shifted(m, m + n);
  for (Qubit k = 0; k < m; ++k) {
    const Circuit controlled = iterate.controlledBy(k);
    const std::uint64_t repetitions = 1ULL << (m - 1 - k);
    for (std::uint64_t r = 0; r < repetitions; ++r) {
      circuit.append(controlled);
    }
  }
  // Inverse QFT on the ancillas.
  const Circuit iqft = inverseQft(m);
  for (const qc::Operation& operation : iqft.operations()) {
    circuit.append(operation);
  }
  return circuit;
}

double countingExpectedPhase(Qubit searchQubits, std::size_t markedCount) {
  const double total = std::ldexp(1.0, static_cast<int>(searchQubits));
  const double theta = 2.0 * std::asin(std::sqrt(static_cast<double>(markedCount) / total));
  return theta / (2.0 * M_PI);
}

double estimatedCount(Qubit searchQubits, Qubit precisionQubits, std::uint64_t ancillaValue) {
  const double phase =
      static_cast<double>(ancillaValue) / std::ldexp(1.0, static_cast<int>(precisionQubits));
  const double theta = 2.0 * M_PI * phase;
  const double s = std::sin(theta / 2.0);
  return s * s * std::ldexp(1.0, static_cast<int>(searchQubits));
}

} // namespace qadd::algos
