#include "algorithms/gse.hpp"

#include "algorithms/common.hpp"

#include <cmath>
#include <stdexcept>

namespace qadd::algos {

using qc::Circuit;
using qc::GateKind;
using qc::Qubit;

double IsingHamiltonian::eigenvalue(std::uint64_t bits) const {
  const auto zValue = [bits](unsigned qubit) {
    return ((bits >> qubit) & 1ULL) != 0 ? -1.0 : 1.0;
  };
  double energy = 0.0;
  for (unsigned j = 0; j < systemQubits; ++j) {
    energy += fields[j] * zValue(j);
  }
  for (const auto& [j, k, strength] : couplings) {
    energy += strength * zValue(static_cast<unsigned>(j)) * zValue(static_cast<unsigned>(k));
  }
  return energy;
}

IsingHamiltonian makeMolecularInstance(unsigned systemQubits) {
  IsingHamiltonian hamiltonian;
  hamiltonian.systemQubits = systemQubits;
  // Irrational coefficients: none of the resulting rotation angles lie in
  // the exactly representable set, forcing genuine Clifford+T approximation
  // (the regime of the paper's GSE benchmark).
  for (unsigned j = 0; j < systemQubits; ++j) {
    hamiltonian.fields.push_back(0.5 / std::sqrt(2.0 + j));
  }
  for (unsigned j = 0; j < systemQubits; ++j) {
    for (unsigned k = j + 1; k < systemQubits; ++k) {
      hamiltonian.couplings.push_back(
          {static_cast<double>(j), static_cast<double>(k), 0.25 / std::sqrt(3.0 + j + k)});
    }
  }
  return hamiltonian;
}

namespace {

/// Append the controlled time evolution  c-exp(-i H t)  with the given
/// control, as controlled z-rotations (exact identities: H is diagonal).
void appendControlledEvolution(Circuit& circuit, const IsingHamiltonian& hamiltonian,
                               double time, Qubit control, Qubit systemOffset) {
  for (unsigned j = 0; j < hamiltonian.systemQubits; ++j) {
    if (hamiltonian.fields[j] == 0.0) {
      continue;
    }
    // exp(-i t h Z_j) = Rz(2 t h) on qubit j.
    circuit.controlled(GateKind::Rz, systemOffset + j, {{control, true}},
                       2.0 * time * hamiltonian.fields[j]);
  }
  for (const auto& [j, k, strength] : hamiltonian.couplings) {
    if (strength == 0.0) {
      continue;
    }
    const Qubit qj = systemOffset + static_cast<Qubit>(j);
    const Qubit qk = systemOffset + static_cast<Qubit>(k);
    // exp(-i t J Z_j Z_k) = CX(j,k) Rz(2 t J)_k CX(j,k).
    circuit.cx(qj, qk);
    circuit.controlled(GateKind::Rz, qk, {{control, true}}, 2.0 * time * strength);
    circuit.cx(qj, qk);
  }
}

} // namespace

Circuit gseRotationCircuit(const GseOptions& options, const IsingHamiltonian* hamiltonian) {
  const IsingHamiltonian instance =
      hamiltonian != nullptr ? *hamiltonian : makeMolecularInstance(options.systemQubits);
  if (instance.systemQubits != options.systemQubits) {
    throw std::invalid_argument("gse: hamiltonian width mismatch");
  }
  const unsigned m = options.precisionQubits;
  const unsigned s = options.systemQubits;
  if (m == 0 || s == 0) {
    throw std::invalid_argument("gse: need at least one ancilla and one system qubit");
  }
  Circuit circuit(m + s, "gse");

  // System register (below the ancillas): prepare the chosen eigenstate.
  for (unsigned j = 0; j < s; ++j) {
    if ((options.eigenstate >> j) & 1ULL) {
      circuit.x(m + j);
    }
  }
  // Ancillas into superposition.
  for (unsigned k = 0; k < m; ++k) {
    circuit.h(k);
  }
  // Controlled powers U^(2^(m-1-k)) controlled by ancilla k (ancilla 0 is
  // the most significant phase bit).
  for (unsigned k = 0; k < m; ++k) {
    const double time = options.evolutionTime * std::ldexp(1.0, static_cast<int>(m - 1 - k));
    appendControlledEvolution(circuit, instance, time, k, m);
  }
  // Inverse QFT on the ancilla register.
  const Circuit iqft = inverseQft(m);
  for (const qc::Operation& operation : iqft.operations()) {
    circuit.append(operation);
  }
  return circuit;
}

Circuit gse(const GseOptions& options, synth::SolovayKitaev::Options skOptions) {
  synth::CliffordTCompiler compiler(skOptions);
  Circuit compiled = compiler.compile(gseRotationCircuit(options));
  return compiled;
}

double gseExpectedPhase(const GseOptions& options, const IsingHamiltonian& hamiltonian) {
  const double energy = hamiltonian.eigenvalue(options.eigenstate);
  double phase = -options.evolutionTime * energy / (2.0 * M_PI);
  phase -= std::floor(phase);
  return phase;
}

} // namespace qadd::algos
