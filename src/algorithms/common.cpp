#include "algorithms/common.hpp"

#include <cmath>

namespace qadd::algos {

using qc::Circuit;
using qc::Qubit;

Circuit ghz(Qubit nqubits) {
  Circuit circuit(nqubits, "ghz");
  circuit.h(0);
  for (Qubit q = 0; q + 1 < nqubits; ++q) {
    circuit.cx(q, q + 1);
  }
  return circuit;
}

Circuit qft(Qubit nqubits) {
  Circuit circuit(nqubits, "qft");
  for (Qubit q = 0; q < nqubits; ++q) {
    circuit.h(q);
    for (Qubit k = q + 1; k < nqubits; ++k) {
      const double angle = M_PI / static_cast<double>(1ULL << (k - q));
      circuit.controlled(qc::GateKind::Phase, q, {{k, true}}, angle);
    }
  }
  // Final bit-reversal swaps: without them the circuit computes the QFT with
  // reversed output order (and phase-estimation readout would be scrambled).
  for (Qubit q = 0; q < nqubits / 2; ++q) {
    circuit.swap(q, nqubits - 1 - q);
  }
  return circuit;
}

Circuit inverseQft(Qubit nqubits) { return qft(nqubits).inverse(); }

Circuit teleport() {
  Circuit circuit(3, "teleport");
  // Entangle qubits 1 and 2, Bell-measure 0 and 1 (deferred), correct on 2.
  circuit.h(1).cx(1, 2);
  circuit.cx(0, 1).h(0);
  circuit.cx(1, 2);
  circuit.cz(0, 2);
  return circuit;
}

Circuit prepareBasisState(Qubit nqubits, std::uint64_t bits) {
  Circuit circuit(nqubits, "basis");
  for (Qubit q = 0; q < nqubits; ++q) {
    if ((bits >> q) & 1ULL) {
      circuit.x(q);
    }
  }
  return circuit;
}

} // namespace qadd::algos
