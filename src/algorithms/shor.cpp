#include "algorithms/shor.hpp"

#include "algorithms/common.hpp"
#include "synth/reversible.hpp"

#include <numeric>
#include <stdexcept>

namespace qadd::algos {

using qc::Circuit;
using qc::Qubit;

std::uint64_t multiplicativeOrder(std::uint64_t base, std::uint64_t modulus) {
  if (modulus < 2 || std::gcd(base, modulus) != 1) {
    throw std::invalid_argument("multiplicativeOrder: base must be coprime to modulus >= 2");
  }
  std::uint64_t power = base % modulus;
  std::uint64_t order = 1;
  while (power != 1) {
    power = power * base % modulus;
    ++order;
  }
  return order;
}

unsigned workRegisterWidth(std::uint64_t modulus) {
  unsigned width = 0;
  while ((1ULL << width) < modulus) {
    ++width;
  }
  return width;
}

std::vector<std::uint64_t> modularMultiplicationTable(std::uint64_t base, std::uint64_t modulus,
                                                      unsigned width) {
  if ((1ULL << width) < modulus) {
    throw std::invalid_argument("modularMultiplicationTable: register too narrow");
  }
  if (std::gcd(base, modulus) != 1) {
    throw std::invalid_argument("modularMultiplicationTable: base not coprime to modulus");
  }
  const std::uint64_t size = 1ULL << width;
  std::vector<std::uint64_t> image(size);
  for (std::uint64_t x = 0; x < size; ++x) {
    image[x] = x < modulus ? (base * x % modulus) : x;
  }
  return image;
}

Circuit orderFinding(const OrderFindingOptions& options) {
  const unsigned m = options.precisionQubits;
  const unsigned w = workRegisterWidth(options.modulus);
  if (m == 0) {
    throw std::invalid_argument("orderFinding: need at least one ancilla");
  }
  Circuit circuit(m + w, "order_finding");

  // Work register in |1> (an equal superposition of all of U_a's eigenstates
  // whose phases are multiples of 1/r).  appendPermutation addresses value
  // bit b at qubit offset + b, so bit 0 of the register value lives on
  // qubit m.
  circuit.x(m);

  // Ancillas in superposition.
  for (unsigned k = 0; k < m; ++k) {
    circuit.h(k);
  }
  // Controlled U_a^(2^(m-1-k)) controlled by ancilla k: a^(2^j) mod N is
  // itself a modular multiplication, so each power is one permutation.
  for (unsigned k = 0; k < m; ++k) {
    std::uint64_t power = options.base % options.modulus;
    for (unsigned j = 0; j < m - 1 - k; ++j) {
      power = power * power % options.modulus;
    }
    const auto image = modularMultiplicationTable(power, options.modulus, w);
    synth::appendPermutation(circuit, m, w, image, {{static_cast<Qubit>(k), true}});
  }
  // Inverse QFT on the ancillas.
  const Circuit iqft = inverseQft(m);
  for (const qc::Operation& operation : iqft.operations()) {
    circuit.append(operation);
  }
  return circuit;
}

} // namespace qadd::algos
