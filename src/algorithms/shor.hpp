/// \file shor.hpp
/// Shor-style order finding: quantum phase estimation over the
/// modular-multiplication unitary U_a : |x> -> |a x mod N>, realized exactly
/// as a basis-state permutation circuit (qadd::synth::appendPermutation).
/// All gates are H / multi-controlled X / controlled phases, so the circuit
/// is exactly representable once the inverse QFT is compiled (or simulable
/// numerically with the rotation-level QFT).
#pragma once

#include "qc/circuit.hpp"

#include <cstdint>
#include <vector>

namespace qadd::algos {

struct OrderFindingOptions {
  std::uint64_t modulus = 15;   ///< N (the number to factor)
  std::uint64_t base = 7;       ///< a, coprime to N
  unsigned precisionQubits = 5; ///< phase-estimation ancillas
};

/// Multiplicative order of a modulo N (classical reference for tests).
[[nodiscard]] std::uint64_t multiplicativeOrder(std::uint64_t base, std::uint64_t modulus);

/// The image table of |x> -> |a x mod N> on `width` bits (identity for
/// x >= N, making the map a permutation of the full register space).
[[nodiscard]] std::vector<std::uint64_t> modularMultiplicationTable(std::uint64_t base,
                                                                    std::uint64_t modulus,
                                                                    unsigned width);

/// The order-finding circuit: [ancillas | work register], work prepared in
/// |1>, controlled-U_a^(2^j) as controlled permutations, inverse QFT on the
/// ancillas.  Measuring the ancillas yields s/r-approximations (r = order of
/// a mod N), from which Shor's algorithm extracts factors classically.
[[nodiscard]] qc::Circuit orderFinding(const OrderFindingOptions& options = {});

/// Width of the work register for a given modulus.
[[nodiscard]] unsigned workRegisterWidth(std::uint64_t modulus);

} // namespace qadd::algos
