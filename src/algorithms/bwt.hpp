/// \file bwt.hpp
/// Binary-Welded-Tree quantum walk (Childs et al. [38]) — the paper's
/// graph-exploration benchmark whose gates are all exactly representable in
/// D[omega] (Section V).
///
/// Construction (see DESIGN.md, substitution 2): the welded-tree graph of two
/// depth-d binary trees, their leaves joined by two cyclic perfect matchings,
/// is properly edge-colored with 4 colors.  A discrete-time coined quantum
/// walk is run on it: a 2-qubit coin register selects the color, the Grover
/// coin mixes it, and the color-c shift (an involution: each color class is a
/// matching) is synthesized as a multi-controlled-X netlist via
/// qadd::synth::appendInvolution.  All gates are {H, X, Z, MCX, CZ} — exact
/// in the algebraic representation, as the paper requires for this benchmark.
#pragma once

#include "qc/circuit.hpp"
#include "synth/reversible.hpp"

#include <array>
#include <cstdint>
#include <vector>

namespace qadd::algos {

/// The welded-tree graph with its 4-coloring.
struct WeldedTree {
  unsigned depth = 3;       ///< depth of each binary tree (root = depth 0)
  unsigned labelBits = 0;   ///< qubits needed for a node label
  std::uint64_t entrance = 0; ///< label of the left root
  std::uint64_t exit = 0;     ///< label of the right root
  /// Per color: the matching as basis-state transpositions on labels.
  std::array<std::vector<synth::Transposition>, 4> matchings;

  /// Neighbor of `label` along `color` (label itself if no such edge).
  [[nodiscard]] std::uint64_t neighbor(unsigned color, std::uint64_t label) const;
  /// Total number of edges.
  [[nodiscard]] std::size_t edgeCount() const;
};

/// Build the welded-tree graph of the given depth with a proper 4-coloring:
/// tree child edges use colors {0,1} at even depths, {2,3} at odd depths; the
/// two weld matchings (leaf i <-> leaf i, leaf i <-> leaf i+1 cyclically) use
/// the color pair that is free at the leaves.
[[nodiscard]] WeldedTree makeWeldedTree(unsigned depth);

struct BwtOptions {
  unsigned depth = 3;  ///< tree depth
  unsigned steps = 6;  ///< walk steps (each: coin + 4 colored shifts)
};

/// The full walk circuit.  Register layout: [coin (2 qubits) | label
/// (labelBits qubits)]; the initial position (entrance) is prepared with X
/// gates, the coin starts in uniform superposition.
[[nodiscard]] qc::Circuit bwt(const BwtOptions& options = {});

/// Qubit count of the walk circuit for a given depth.
[[nodiscard]] unsigned bwtQubits(unsigned depth);

} // namespace qadd::algos
