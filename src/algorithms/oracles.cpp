#include "algorithms/oracles.hpp"

#include <stdexcept>

namespace qadd::algos {

using qc::Circuit;
using qc::Qubit;

namespace {

/// The shared Deutsch-Jozsa / Bernstein-Vazirani skeleton with the phase
/// oracle f(x) = mask.x implemented as CNOTs into the bottom ancilla.
Circuit phaseKickback(Qubit nqubits, std::uint64_t mask, const char* name) {
  if (nqubits < 1 || (nqubits < 64 && (mask >> nqubits) != 0)) {
    throw std::invalid_argument("phase oracle: mask out of range");
  }
  const Qubit ancilla = nqubits;
  Circuit circuit(nqubits + 1, name);
  // Ancilla in |->, data in uniform superposition.
  circuit.x(ancilla).h(ancilla);
  for (Qubit q = 0; q < nqubits; ++q) {
    circuit.h(q);
  }
  // Oracle: f(x) = mask.x as CNOTs onto the ancilla (phase kickback).
  for (Qubit q = 0; q < nqubits; ++q) {
    if ((mask >> q) & 1ULL) {
      circuit.cx(q, ancilla);
    }
  }
  // Final Hadamards on the data register.
  for (Qubit q = 0; q < nqubits; ++q) {
    circuit.h(q);
  }
  // Uncompute the ancilla back to |0> so the result is a clean basis state.
  circuit.h(ancilla).x(ancilla);
  return circuit;
}

} // namespace

Circuit bernsteinVazirani(Qubit nqubits, std::uint64_t secret) {
  return phaseKickback(nqubits, secret, "bernstein_vazirani");
}

Circuit deutschJozsa(Qubit nqubits, std::uint64_t mask) {
  return phaseKickback(nqubits, mask, "deutsch_jozsa");
}

} // namespace qadd::algos
