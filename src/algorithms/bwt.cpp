#include "algorithms/bwt.hpp"

#include <bit>
#include <stdexcept>

namespace qadd::algos {

using qc::Circuit;
using qc::ControlSpec;
using qc::Qubit;
using synth::Transposition;

std::uint64_t WeldedTree::neighbor(unsigned color, std::uint64_t label) const {
  return synth::applyInvolution(matchings[color], label);
}

std::size_t WeldedTree::edgeCount() const {
  std::size_t count = 0;
  for (const auto& matching : matchings) {
    count += matching.size();
  }
  return count;
}

WeldedTree makeWeldedTree(unsigned depth) {
  if (depth < 1 || depth > 20) {
    throw std::invalid_argument("makeWeldedTree: depth out of range");
  }
  WeldedTree tree;
  tree.depth = depth;
  // Left tree: heap labels 1 .. 2^(depth+1)-1 (root 1, children 2v, 2v+1).
  // Right tree: the same heap labels with the top bit `offset` set.
  const std::uint64_t heapSize = (1ULL << (depth + 1)); // exclusive bound
  const std::uint64_t offset = heapSize;
  tree.labelBits = depth + 2;
  tree.entrance = 1;
  tree.exit = offset + 1;

  // Tree edges: child edges at even depths use colors {0, 1}, odd depths
  // {2, 3}; a node's parent edge therefore never clashes with its child
  // edges, giving a proper coloring.
  for (unsigned level = 0; level < depth; ++level) {
    const unsigned colorBase = (level % 2 == 0) ? 0 : 2;
    for (std::uint64_t v = (1ULL << level); v < (1ULL << (level + 1)); ++v) {
      tree.matchings[colorBase].push_back({v, 2 * v});
      tree.matchings[colorBase + 1].push_back({v, 2 * v + 1});
      tree.matchings[colorBase].push_back({offset + v, offset + 2 * v});
      tree.matchings[colorBase + 1].push_back({offset + v, offset + 2 * v + 1});
    }
  }

  // Weld: leaves are at depth `depth`; their free color pair is the one that
  // would color their (non-existent) child edges.
  const unsigned weldBase = (depth % 2 == 0) ? 0 : 2;
  const std::uint64_t firstLeaf = 1ULL << depth;
  const std::uint64_t leafCount = 1ULL << depth;
  for (std::uint64_t i = 0; i < leafCount; ++i) {
    const std::uint64_t left = firstLeaf + i;
    const std::uint64_t rightSame = offset + firstLeaf + i;
    const std::uint64_t rightNext = offset + firstLeaf + ((i + 1) % leafCount);
    tree.matchings[weldBase].push_back({left, rightSame});
    tree.matchings[weldBase + 1].push_back({left, rightNext});
  }
  return tree;
}

unsigned bwtQubits(unsigned depth) { return 2 + depth + 2; }

qc::Circuit bwt(const BwtOptions& options) {
  const WeldedTree tree = makeWeldedTree(options.depth);
  const Qubit coinBits = 2;
  const Qubit labelOffset = coinBits; // coin on top, label register below
  const Qubit width = coinBits + tree.labelBits;
  Circuit circuit(width, "bwt");

  // Start at the entrance with a uniform coin.
  for (unsigned bit = 0; bit < tree.labelBits; ++bit) {
    if ((tree.entrance >> bit) & 1ULL) {
      circuit.x(labelOffset + bit);
    }
  }
  circuit.h(0).h(1);

  for (unsigned step = 0; step < options.steps; ++step) {
    // Phased Grover coin on the 2 coin qubits: the plain Grover coin
    // (H^2 X^2 CZ X^2 H^2) has entries +-1/2, which doubles represent
    // *exactly* — no numerical error would ever accrue.  The T/S phases make
    // the coin entries generic elements of D[omega] (still exactly
    // representable algebraically, like the paper's BWT), so the numeric
    // representation actually has to approximate sqrt(2)'s.
    circuit.h(0).h(1).t(0).s(1).x(0).x(1).cz(0, 1).x(0).x(1).h(0).tdg(1).h(1);
    // Colored shifts: each matching conditioned on its coin value.
    for (unsigned color = 0; color < 4; ++color) {
      const std::vector<ControlSpec> coinControls{{0, (color & 2U) != 0},
                                                  {1, (color & 1U) != 0}};
      synth::appendInvolution(circuit, labelOffset, tree.labelBits, tree.matchings[color],
                              coinControls);
    }
  }
  return circuit;
}

} // namespace qadd::algos
