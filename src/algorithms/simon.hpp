/// \file simon.hpp
/// Simon's hidden-period problem: f(x) = f(x XOR s) for a secret s != 0.
/// The standard one-query quantum routine leaves the input register in a
/// uniform superposition over { y : y . s = 0 (mod 2) } — collecting n-1
/// independent such y determines s classically.
///
/// The oracle used here is f(x) = x XOR (x_j ? s : 0) with j the lowest set
/// bit of s: a CNOT-copy plus controlled XOR network, so the whole circuit
/// is exactly representable (Clifford only).
#pragma once

#include "qc/circuit.hpp"

#include <cstdint>

namespace qadd::algos {

/// The full circuit: n input qubits on top, n output qubits below.
/// H^n, oracle, H^n on the inputs (outputs left unmeasured/entangled).
/// \pre secret != 0 and secret < 2^n
[[nodiscard]] qc::Circuit simon(qc::Qubit nqubits, std::uint64_t secret);

/// The classical oracle the circuit implements (test helper).
[[nodiscard]] std::uint64_t simonOracle(std::uint64_t secret, std::uint64_t x);

} // namespace qadd::algos
