#include "algorithms/grover.hpp"

#include <cmath>
#include <stdexcept>

namespace qadd::algos {

using qc::Circuit;
using qc::ControlSpec;
using qc::GateKind;
using qc::Qubit;

std::size_t groverOptimalIterations(Qubit nqubits) {
  const double dimension = std::ldexp(1.0, static_cast<int>(nqubits));
  return static_cast<std::size_t>(std::floor(M_PI / 4.0 * std::sqrt(dimension)));
}

Circuit grover(const GroverOptions& options) {
  const Qubit n = options.nqubits;
  if (n < 2) {
    throw std::invalid_argument("grover: need at least 2 qubits");
  }
  if (n < 64 && (options.marked >> n) != 0) {
    throw std::invalid_argument("grover: marked element out of range");
  }
  const std::size_t iterations =
      options.iterations != 0 ? options.iterations : groverOptimalIterations(n);

  Circuit circuit(n, "grover");
  for (Qubit q = 0; q < n; ++q) {
    circuit.h(q);
  }

  // Phase oracle: Z on the last qubit controlled by all others with
  // polarities encoding the marked element (qubit q corresponds to bit q of
  // `marked`, counted from the top line).
  std::vector<ControlSpec> oracleControls;
  for (Qubit q = 0; q + 1 < n; ++q) {
    oracleControls.push_back({q, ((options.marked >> q) & 1ULL) != 0});
  }
  const bool lastBit = ((options.marked >> (n - 1)) & 1ULL) != 0;

  // Diffusion operator: H^n X^n (multi-controlled Z) X^n H^n.
  std::vector<ControlSpec> diffusionControls;
  for (Qubit q = 0; q + 1 < n; ++q) {
    diffusionControls.push_back({q, true});
  }

  for (std::size_t i = 0; i < iterations; ++i) {
    // Oracle: if the marked element has a 0 on the target line, conjugate
    // the controlled-Z with X to flip the active value.
    if (!lastBit) {
      circuit.x(n - 1);
    }
    circuit.controlled(GateKind::Z, n - 1, oracleControls);
    if (!lastBit) {
      circuit.x(n - 1);
    }
    // Diffusion.
    for (Qubit q = 0; q < n; ++q) {
      circuit.h(q);
    }
    for (Qubit q = 0; q < n; ++q) {
      circuit.x(q);
    }
    circuit.controlled(GateKind::Z, n - 1, diffusionControls);
    for (Qubit q = 0; q < n; ++q) {
      circuit.x(q);
    }
    for (Qubit q = 0; q < n; ++q) {
      circuit.h(q);
    }
  }
  return circuit;
}

double groverSuccessProbability(Qubit nqubits, std::size_t iterations) {
  const double dimension = std::ldexp(1.0, static_cast<int>(nqubits));
  const double theta = std::asin(1.0 / std::sqrt(dimension));
  const double amplitude = std::sin((2.0 * static_cast<double>(iterations) + 1.0) * theta);
  return amplitude * amplitude;
}

} // namespace qadd::algos
