/// \file gse.hpp
/// Ground State Estimation (GSE, Whitfield et al. [33]) — the paper's
/// quantum-physics benchmark: quantum phase estimation of a molecular-style
/// Hamiltonian.  Its time-evolution operator requires rotations by arbitrary
/// angles, so (as in the paper, which used Quipper for this step) the circuit
/// is compiled to Clifford+T by qadd::synth::CliffordTCompiler before the
/// algebraic QMDD can simulate it — and both representations then simulate
/// the *same* approximated circuit.
#pragma once

#include "qc/circuit.hpp"
#include "synth/compile.hpp"

#include <array>
#include <cstdint>
#include <vector>

namespace qadd::algos {

/// A diagonal Ising-type Hamiltonian H = sum_j h_j Z_j + sum_{j<k} J_jk Z_j Z_k
/// (the Jordan-Wigner image of the diagonal part of an electronic-structure
/// Hamiltonian).  Diagonal terms commute, so exp(-iHt) is an exact product of
/// z-rotations — all the phase-estimation structure of GSE with none of the
/// Trotter bookkeeping.
struct IsingHamiltonian {
  unsigned systemQubits = 3;
  std::vector<double> fields;                          ///< h_j, size systemQubits
  std::vector<std::array<double, 3>> couplings;        ///< {j, k, J_jk} triples (j,k as doubles)

  /// Eigenvalue on the computational basis state `bits` (bit j = qubit j).
  [[nodiscard]] double eigenvalue(std::uint64_t bits) const;
};

/// A small H2-inspired instance with irrational coefficients (so none of the
/// rotation angles are exactly representable — the regime the paper's GSE
/// evaluation targets).
[[nodiscard]] IsingHamiltonian makeMolecularInstance(unsigned systemQubits);

struct GseOptions {
  unsigned systemQubits = 3;    ///< Hamiltonian register width
  unsigned precisionQubits = 4; ///< phase-estimation ancillas
  double evolutionTime = 1.0;   ///< tau in U = exp(-i H tau)
  std::uint64_t eigenstate = 0; ///< basis eigenstate whose energy is estimated
};

/// Rotation-level GSE circuit: ancilla Hadamards, controlled powers
/// U^(2^k) of the (diagonal) time evolution as controlled-phase networks,
/// inverse QFT on the ancillas.  Register layout: [ancillas | system].
[[nodiscard]] qc::Circuit gseRotationCircuit(const GseOptions& options = {},
                                             const IsingHamiltonian* hamiltonian = nullptr);

/// Clifford+T GSE: the rotation circuit compiled by Solovay-Kitaev.  This is
/// the exactly-representable benchmark simulated in Figures 2 and 5.
[[nodiscard]] qc::Circuit gse(const GseOptions& options = {},
                              synth::SolovayKitaev::Options skOptions = {4, 1});

/// Phase (in [0,1)) that ideal phase estimation would concentrate on, for
/// the configured eigenstate (test helper).
[[nodiscard]] double gseExpectedPhase(const GseOptions& options,
                                      const IsingHamiltonian& hamiltonian);

} // namespace qadd::algos
