/// \file common.hpp
/// Small standard circuits used across tests, examples and benchmarks.
#pragma once

#include "qc/circuit.hpp"

#include <cstdint>

namespace qadd::algos {

/// GHZ state preparation: H on qubit 0 followed by a CNOT ladder.
[[nodiscard]] qc::Circuit ghz(qc::Qubit nqubits);

/// Quantum Fourier transform on all qubits (standard H + controlled-phase
/// network, including the final bit-reversal swaps).
[[nodiscard]] qc::Circuit qft(qc::Qubit nqubits);

/// Inverse QFT.
[[nodiscard]] qc::Circuit inverseQft(qc::Qubit nqubits);

/// Quantum teleportation of qubit 0's state to qubit 2, with the two
/// measurements deferred (coherent version: CNOT/CZ corrections).
[[nodiscard]] qc::Circuit teleport();

/// X gates preparing the computational basis state `bits` (bit i of the
/// integer addresses qubit i counted from the top).
[[nodiscard]] qc::Circuit prepareBasisState(qc::Qubit nqubits, std::uint64_t bits);

} // namespace qadd::algos
