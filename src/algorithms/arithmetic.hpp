/// \file arithmetic.hpp
/// Reversible integer arithmetic: the Cuccaro-Draper-Kutin-Moulton (CDKM)
/// in-place ripple-carry adder, built from CNOT and Toffoli gates only —
/// exactly representable and a classic decision-diagram stress test
/// (arithmetic functions are where BDDs/BMDs historically diverge, cf. the
/// paper's conventional-domain references [11], [28]).
#pragma once

#include "qc/circuit.hpp"

#include <cstdint>

namespace qadd::algos {

/// Register layout of the adder circuit (width = 2n + 2):
///   qubit 0            : carry-in (usually |0>)
///   qubits 1 .. n      : a_0 (LSB) .. a_{n-1}
///   qubits n+1 .. 2n   : b_0 (LSB) .. b_{n-1}
///   qubit 2n+1         : carry-out (usually |0>)
/// After the circuit: b <- a + b + cin (mod 2^n), carry-out <- top carry,
/// a and cin restored.
struct AdderLayout {
  qc::Qubit n = 0;
  [[nodiscard]] qc::Qubit carryIn() const { return 0; }
  [[nodiscard]] qc::Qubit a(qc::Qubit bit) const { return 1 + bit; }
  [[nodiscard]] qc::Qubit b(qc::Qubit bit) const { return 1 + n + bit; }
  [[nodiscard]] qc::Qubit carryOut() const { return 2 * n + 1; }
  [[nodiscard]] qc::Qubit width() const { return 2 * n + 2; }
};

/// The n-bit CDKM ripple-carry adder.
[[nodiscard]] qc::Circuit rippleCarryAdder(qc::Qubit nbits);

/// X-gate preparation of the adder's input registers (test/demo helper).
[[nodiscard]] qc::Circuit prepareAdderInputs(qc::Qubit nbits, std::uint64_t a, std::uint64_t b,
                                             bool carryIn = false);

} // namespace qadd::algos
