/// \file counting.hpp
/// Quantum counting (Brassard-Hoyer-Tapp): phase estimation over the Grover
/// iterate G estimates the rotation angle theta with sin^2(theta/2) = M/N,
/// i.e. the *number* M of marked elements among N = 2^n.  Exercises the
/// controlled-subcircuit machinery: every gate of G gains an ancilla
/// control (controlled Clifford+T gates stay exactly representable).
#pragma once

#include "qc/circuit.hpp"

#include <cstdint>
#include <vector>

namespace qadd::algos {

struct CountingOptions {
  qc::Qubit searchQubits = 4;     ///< n: search space of N = 2^n elements
  qc::Qubit precisionQubits = 5;  ///< phase-estimation ancillas
  std::vector<std::uint64_t> marked{3, 5, 6, 12}; ///< the oracle's marked set
};

/// The counting circuit: [ancillas | search register]; ancillas in
/// superposition, controlled G^(2^k), inverse QFT.  The search register is
/// prepared in the uniform superposition (G's invariant subspace).
[[nodiscard]] qc::Circuit quantumCounting(const CountingOptions& options = {});

/// One Grover iteration (multi-marked oracle + diffusion) on `searchQubits`
/// qubits — the operator whose eigenphase counting estimates.
[[nodiscard]] qc::Circuit groverIterate(qc::Qubit searchQubits,
                                        const std::vector<std::uint64_t>& marked);

/// The exact eigenphase theta / (2 pi) that counting should concentrate on:
/// theta = 2 arcsin(sqrt(M / N)).
[[nodiscard]] double countingExpectedPhase(qc::Qubit searchQubits, std::size_t markedCount);

/// Translate a measured ancilla value back into an estimated marked count.
[[nodiscard]] double estimatedCount(qc::Qubit searchQubits, qc::Qubit precisionQubits,
                                    std::uint64_t ancillaValue);

} // namespace qadd::algos
