#include "algorithms/simon.hpp"

#include <bit>
#include <stdexcept>

namespace qadd::algos {

using qc::Circuit;
using qc::Qubit;

std::uint64_t simonOracle(std::uint64_t secret, std::uint64_t x) {
  const auto pivot = static_cast<unsigned>(std::countr_zero(secret));
  return ((x >> pivot) & 1ULL) != 0 ? (x ^ secret) : x;
}

Circuit simon(Qubit nqubits, std::uint64_t secret) {
  if (secret == 0 || (nqubits < 64 && (secret >> nqubits) != 0)) {
    throw std::invalid_argument("simon: secret must be non-zero and fit the register");
  }
  Circuit circuit(2 * nqubits, "simon");
  // Input qubit q carries bit q of x; output qubit nqubits + q carries bit q
  // of f(x).
  for (Qubit q = 0; q < nqubits; ++q) {
    circuit.h(q);
  }
  // Oracle: copy x, then XOR s conditioned on the pivot bit.
  for (Qubit q = 0; q < nqubits; ++q) {
    circuit.cx(q, nqubits + q);
  }
  const auto pivot = static_cast<Qubit>(std::countr_zero(secret));
  for (Qubit q = 0; q < nqubits; ++q) {
    if ((secret >> q) & 1ULL) {
      circuit.cx(pivot, nqubits + q);
    }
  }
  for (Qubit q = 0; q < nqubits; ++q) {
    circuit.h(q);
  }
  return circuit;
}

} // namespace qadd::algos
