/// \file dense.hpp
/// Dense complex vectors/matrices — the straightforward representation the
/// paper contrasts decision diagrams with ([8]-[10]).  Exponential in the
/// qubit count, so usable only for small systems; in this repository it
/// serves as the ground-truth oracle that every QMDD operation is tested
/// against, and as the reference implementation for the accuracy metric.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace qadd::la {

using Complex = std::complex<double>;

/// Dense state vector of dimension 2^n.
class Vector {
public:
  Vector() = default;
  explicit Vector(std::size_t dimension) : data_(dimension) {}
  explicit Vector(std::vector<Complex> data) : data_(std::move(data)) {}

  [[nodiscard]] static Vector basisState(std::size_t dimension, std::size_t index);

  [[nodiscard]] std::size_t dimension() const { return data_.size(); }
  [[nodiscard]] Complex& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const Complex& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] const std::vector<Complex>& data() const { return data_; }

  [[nodiscard]] double norm() const;
  /// Scales to unit norm. \pre norm() > 0
  void normalize();

  friend Vector operator+(const Vector& a, const Vector& b);
  friend Vector operator-(const Vector& a, const Vector& b);
  friend Vector operator*(Complex scalar, const Vector& v);

  [[nodiscard]] Complex innerProduct(const Vector& other) const; // <this|other>

  /// Kronecker product |this> (x) |other>.
  [[nodiscard]] Vector kron(const Vector& other) const;

private:
  std::vector<Complex> data_;
};

/// Dense square matrix (row-major) of dimension 2^n x 2^n.
class Matrix {
public:
  Matrix() = default;
  explicit Matrix(std::size_t dimension) : dimension_(dimension), data_(dimension * dimension) {}
  Matrix(std::size_t dimension, std::vector<Complex> rowMajor)
      : dimension_(dimension), data_(std::move(rowMajor)) {}

  [[nodiscard]] static Matrix identity(std::size_t dimension);

  [[nodiscard]] std::size_t dimension() const { return dimension_; }
  [[nodiscard]] Complex& at(std::size_t row, std::size_t col) {
    return data_[row * dimension_ + col];
  }
  [[nodiscard]] const Complex& at(std::size_t row, std::size_t col) const {
    return data_[row * dimension_ + col];
  }

  friend Matrix operator+(const Matrix& a, const Matrix& b);
  friend Matrix operator-(const Matrix& a, const Matrix& b);
  friend Matrix operator*(const Matrix& a, const Matrix& b);
  friend Vector operator*(const Matrix& m, const Vector& v);
  friend Matrix operator*(Complex scalar, const Matrix& m);

  [[nodiscard]] Matrix kron(const Matrix& other) const;
  [[nodiscard]] Matrix adjoint() const;

  /// max |a_ij - b_ij| over all entries.
  [[nodiscard]] static double maxAbsDifference(const Matrix& a, const Matrix& b);

  /// True iff M * M^dagger == I within `tolerance` (entry-wise).
  [[nodiscard]] bool isUnitary(double tolerance = 1e-9) const;

private:
  std::size_t dimension_ = 0;
  std::vector<Complex> data_;
};

/// ||a - b||_2.
[[nodiscard]] double distance(const Vector& a, const Vector& b);

} // namespace qadd::la
