#include "linalg/dense.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace qadd::la {

Vector Vector::basisState(std::size_t dimension, std::size_t index) {
  assert(index < dimension);
  Vector v(dimension);
  v[index] = 1.0;
  return v;
}

double Vector::norm() const {
  double sum = 0.0;
  for (const Complex& amplitude : data_) {
    sum += std::norm(amplitude);
  }
  return std::sqrt(sum);
}

void Vector::normalize() {
  const double n = norm();
  if (n <= 0.0) {
    throw std::domain_error("Vector: cannot normalize zero vector");
  }
  for (Complex& amplitude : data_) {
    amplitude /= n;
  }
}

Vector operator+(const Vector& a, const Vector& b) {
  assert(a.dimension() == b.dimension());
  Vector result(a.dimension());
  for (std::size_t i = 0; i < a.dimension(); ++i) {
    result[i] = a[i] + b[i];
  }
  return result;
}

Vector operator-(const Vector& a, const Vector& b) {
  assert(a.dimension() == b.dimension());
  Vector result(a.dimension());
  for (std::size_t i = 0; i < a.dimension(); ++i) {
    result[i] = a[i] - b[i];
  }
  return result;
}

Vector operator*(Complex scalar, const Vector& v) {
  Vector result(v.dimension());
  for (std::size_t i = 0; i < v.dimension(); ++i) {
    result[i] = scalar * v[i];
  }
  return result;
}

Complex Vector::innerProduct(const Vector& other) const {
  assert(dimension() == other.dimension());
  Complex sum = 0.0;
  for (std::size_t i = 0; i < dimension(); ++i) {
    sum += std::conj(data_[i]) * other[i];
  }
  return sum;
}

Vector Vector::kron(const Vector& other) const {
  Vector result(dimension() * other.dimension());
  for (std::size_t i = 0; i < dimension(); ++i) {
    for (std::size_t j = 0; j < other.dimension(); ++j) {
      result[i * other.dimension() + j] = data_[i] * other[j];
    }
  }
  return result;
}

Matrix Matrix::identity(std::size_t dimension) {
  Matrix m(dimension);
  for (std::size_t i = 0; i < dimension; ++i) {
    m.at(i, i) = 1.0;
  }
  return m;
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  assert(a.dimension() == b.dimension());
  Matrix result(a.dimension());
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    result.data_[i] = a.data_[i] + b.data_[i];
  }
  return result;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  assert(a.dimension() == b.dimension());
  Matrix result(a.dimension());
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    result.data_[i] = a.data_[i] - b.data_[i];
  }
  return result;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  assert(a.dimension() == b.dimension());
  const std::size_t n = a.dimension();
  Matrix result(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      const Complex aik = a.at(i, k);
      if (aik == Complex{}) {
        continue;
      }
      for (std::size_t j = 0; j < n; ++j) {
        result.at(i, j) += aik * b.at(k, j);
      }
    }
  }
  return result;
}

Vector operator*(const Matrix& m, const Vector& v) {
  assert(m.dimension() == v.dimension());
  const std::size_t n = m.dimension();
  Vector result(n);
  for (std::size_t i = 0; i < n; ++i) {
    Complex sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      sum += m.at(i, j) * v[j];
    }
    result[i] = sum;
  }
  return result;
}

Matrix operator*(Complex scalar, const Matrix& m) {
  Matrix result(m.dimension());
  for (std::size_t i = 0; i < m.data_.size(); ++i) {
    result.data_[i] = scalar * m.data_[i];
  }
  return result;
}

Matrix Matrix::kron(const Matrix& other) const {
  const std::size_t n1 = dimension_;
  const std::size_t n2 = other.dimension_;
  Matrix result(n1 * n2);
  for (std::size_t i1 = 0; i1 < n1; ++i1) {
    for (std::size_t j1 = 0; j1 < n1; ++j1) {
      const Complex factor = at(i1, j1);
      if (factor == Complex{}) {
        continue;
      }
      for (std::size_t i2 = 0; i2 < n2; ++i2) {
        for (std::size_t j2 = 0; j2 < n2; ++j2) {
          result.at(i1 * n2 + i2, j1 * n2 + j2) = factor * other.at(i2, j2);
        }
      }
    }
  }
  return result;
}

Matrix Matrix::adjoint() const {
  Matrix result(dimension_);
  for (std::size_t i = 0; i < dimension_; ++i) {
    for (std::size_t j = 0; j < dimension_; ++j) {
      result.at(j, i) = std::conj(at(i, j));
    }
  }
  return result;
}

double Matrix::maxAbsDifference(const Matrix& a, const Matrix& b) {
  assert(a.dimension() == b.dimension());
  double maxDiff = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    maxDiff = std::max(maxDiff, std::abs(a.data_[i] - b.data_[i]));
  }
  return maxDiff;
}

bool Matrix::isUnitary(double tolerance) const {
  const Matrix product = *this * adjoint();
  return maxAbsDifference(product, identity(dimension_)) <= tolerance;
}

double distance(const Vector& a, const Vector& b) {
  assert(a.dimension() == b.dimension());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.dimension(); ++i) {
    sum += std::norm(a[i] - b[i]);
  }
  return std::sqrt(sum);
}

} // namespace qadd::la
