/// \file accuracy.hpp
/// The paper's accuracy metric (Section V, footnote 8): the Euclidean norm of
/// v_num - v_alg after rescaling the numerically computed vector to unit
/// norm (a length error alone is trivially fixable, so it is not counted —
/// except for the all-zero vector, which is maximally wrong).
#pragma once

#include <complex>
#include <vector>

namespace qadd::eval {

/// ||v_num/||v_num|| - v_alg/||v_alg|| ||_2; a reference already within
/// round-off of unit norm is used verbatim.  If v_num is the zero vector the
/// error is reported as the normalized reference norm (= 1) instead.
[[nodiscard]] double accuracyError(const std::vector<std::complex<double>>& numeric,
                                   const std::vector<std::complex<double>>& algebraicReference);

/// ||v||_2.
[[nodiscard]] double vectorNorm(const std::vector<std::complex<double>>& v);

} // namespace qadd::eval
