#include "eval/sweep.hpp"

#include "obs/tracer.hpp"

#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

namespace qadd::eval {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Per-point trace options: each numeric point gets its own checkpoint
/// namespace so parallel points never write the same file.  The pool is also
/// handed down as the kernel fork target — exact-mode points split their DD
/// operations across the same workers that run the point fan-out (the
/// fork-join steal-back protocol makes that composition deadlock-free).
TraceOptions pointOptions(const SweepSpec& spec, std::size_t pointIndex, exec::ThreadPool* pool) {
  TraceOptions options = spec.options;
  if (options.checkpointEvery != 0) {
    options.checkpointPathPrefix += "p" + std::to_string(pointIndex) + "_";
  }
  options.kernelPool = pool;
  return options;
}

} // namespace

SweepResult runSweep(const SweepSpec& spec, exec::ThreadPool* pool) {
  SweepResult result;
  result.jobs = pool == nullptr ? 1 : pool->workers();
  const auto sweepSpan = obs::Tracer::global().span("runSweep", "eval");

  // Phase 1 — the exact algebraic reference, computed or loaded exactly
  // once: it is a single simulation (nothing to fan out) and the trajectory
  // must exist before any numeric point can measure accuracy.  It is no
  // longer fully serial, though: the pool is attached as the kernel fork
  // target, so the DD operations *inside* the one reference simulation
  // split across the workers — the Amdahl spine of the whole sweep.
  TraceOptions referenceOptions = spec.options;
  referenceOptions.kernelPool = pool;
  const ReferenceTrajectory* trajectory = nullptr;
  switch (spec.reference) {
  case ReferencePolicy::None:
    break;
  case ReferencePolicy::Inline: {
    const auto referenceSpan = obs::Tracer::global().span("reference", "eval");
    SimulationTrace algebraic =
        traceAlgebraic(spec.circuit, referenceOptions, {}, &result.trajectory);
    trajectory = &result.trajectory;
    if (spec.includeAlgebraicTrace) {
      result.traces.push_back(std::move(algebraic));
    }
    break;
  }
  case ReferencePolicy::Cached: {
    if (spec.referenceCachePath.empty()) {
      throw std::invalid_argument("runSweep: ReferencePolicy::Cached needs referenceCachePath");
    }
    const auto referenceSpan = obs::Tracer::global().span("reference", "eval");
    CachedAlgebraicReference cached = traceAlgebraicCached(
        spec.circuit, referenceOptions, spec.referenceCachePath, spec.refreshReference);
    result.referenceFromCache = cached.fromCache;
    result.referenceCacheSeconds = cached.cacheSeconds;
    result.trajectory = std::move(cached.trajectory);
    trajectory = &result.trajectory;
    if (spec.includeAlgebraicTrace) {
      result.traces.push_back(std::move(cached.trace));
    }
    break;
  }
  }

  // Phase 2 — the numeric ε fan-out.  Every point runs in its own package on
  // whichever worker picks it up; results land in spec order by index, so
  // the output is independent of scheduling.
  const std::size_t base = result.traces.size();
  result.traces.resize(base + spec.points.size());
  const auto numericStart = Clock::now();
  exec::parallelFor(pool, spec.points.size(), [&](std::size_t i) {
    const RunSpec& point = spec.points[i];
    const TraceOptions options = pointOptions(spec, i, pool);
    result.traces[base + i] = traceRun(spec.circuit, point, trajectory, options, spec.normalization);
  });
  result.numericSweepSeconds = secondsSince(numericStart);

  // Phase 3 — fold the per-package telemetry into the one aggregated
  // snapshot the emitters print.
  for (const SimulationTrace& trace : result.traces) {
    result.aggregated += trace.finalStats;
  }
  result.aggregated.threads = result.jobs;
  return result;
}

} // namespace qadd::eval
