#include "eval/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>

namespace qadd::eval {

namespace {

double component(const TracePoint& point, Series series) {
  switch (series) {
  case Series::Nodes:
    return static_cast<double>(point.nodes);
  case Series::Seconds:
    return point.seconds;
  case Series::Error:
    return point.error;
  case Series::MaxBits:
    return static_cast<double>(point.maxBits);
  }
  return 0.0;
}

} // namespace

void writeCsv(std::ostream& os, const std::vector<SimulationTrace>& traces) {
  os << "series,gate,nodes,seconds,error,maxbits\n";
  os << std::setprecision(12);
  for (const SimulationTrace& trace : traces) {
    for (const TracePoint& point : trace.points) {
      os << trace.label << "," << point.gateIndex << "," << point.nodes << "," << point.seconds
         << "," << point.error << "," << point.maxBits << "\n";
    }
  }
}

void printSummaryTable(std::ostream& os, const std::vector<SimulationTrace>& traces) {
  os << std::left << std::setw(28) << "series" << std::right << std::setw(12) << "final nodes"
     << std::setw(12) << "peak nodes" << std::setw(12) << "time [s]" << std::setw(14)
     << "final error" << std::setw(8) << "zero?" << "\n";
  for (const SimulationTrace& trace : traces) {
    os << std::left << std::setw(28) << trace.label << std::right << std::setw(12)
       << trace.finalNodes << std::setw(12) << trace.peakNodes << std::setw(12) << std::fixed
       << std::setprecision(3) << trace.totalSeconds << std::setw(14) << std::scientific
       << std::setprecision(2) << trace.finalError << std::setw(8)
       << (trace.collapsedToZero ? "YES" : "no") << "\n";
    os.unsetf(std::ios::floatfield);
  }
}

void printAsciiChart(std::ostream& os, const std::string& title,
                     const std::vector<SimulationTrace>& traces, Series series, bool logY) {
  constexpr int kWidth = 72;
  constexpr int kHeight = 16;
  static constexpr char kSymbols[] = "A#*+o.x%@$";

  // Gather value range.
  double minY = std::numeric_limits<double>::infinity();
  double maxY = -std::numeric_limits<double>::infinity();
  std::size_t maxGate = 1;
  for (const SimulationTrace& trace : traces) {
    for (const TracePoint& point : trace.points) {
      double y = component(point, series);
      if (!std::isfinite(y) || (logY && y <= 0.0)) {
        continue;
      }
      if (logY) {
        y = std::log10(y);
      }
      minY = std::min(minY, y);
      maxY = std::max(maxY, y);
      maxGate = std::max(maxGate, point.gateIndex);
    }
  }
  os << "\n== " << title << (logY ? "  [log10 y]" : "") << " ==\n";
  if (!std::isfinite(minY)) {
    os << "(no data)\n";
    return;
  }
  if (maxY - minY < 1e-12) {
    maxY = minY + 1.0;
  }

  std::vector<std::string> grid(kHeight, std::string(kWidth, ' '));
  for (std::size_t t = 0; t < traces.size(); ++t) {
    const char symbol = kSymbols[t % (sizeof(kSymbols) - 1)];
    for (const TracePoint& point : traces[t].points) {
      double y = component(point, series);
      if (!std::isfinite(y) || (logY && y <= 0.0)) {
        continue;
      }
      if (logY) {
        y = std::log10(y);
      }
      const int col = static_cast<int>(
          std::min<double>(kWidth - 1, std::floor(static_cast<double>(point.gateIndex) /
                                                  static_cast<double>(maxGate) * (kWidth - 1))));
      const int row = static_cast<int>(
          std::min<double>(kHeight - 1, std::floor((maxY - y) / (maxY - minY) * (kHeight - 1))));
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = symbol;
    }
  }
  os << std::setprecision(3);
  for (int row = 0; row < kHeight; ++row) {
    if (row == 0) {
      os << std::setw(10) << maxY << " |";
    } else if (row == kHeight - 1) {
      os << std::setw(10) << minY << " |";
    } else {
      os << std::string(10, ' ') << " |";
    }
    os << grid[static_cast<std::size_t>(row)] << "\n";
  }
  os << std::string(11, ' ') << '+' << std::string(kWidth, '-') << "\n";
  os << std::string(12, ' ') << "0" << std::string(kWidth - 8, ' ') << maxGate << " gates\n";
  for (std::size_t t = 0; t < traces.size(); ++t) {
    os << "  " << kSymbols[t % (sizeof(kSymbols) - 1)] << " = " << traces[t].label << "\n";
  }
}

} // namespace qadd::eval
