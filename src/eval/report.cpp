#include "eval/report.hpp"

#include "obs/deterministic.hpp"
#include "obs/profiler.hpp"
#include "obs/timeline.hpp"
#include "obs/tracer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <limits>
#include <ostream>

namespace qadd::eval {

namespace {

double component(const TracePoint& point, Series series) {
  switch (series) {
  case Series::Nodes:
    return static_cast<double>(point.nodes);
  case Series::Seconds:
    return point.seconds;
  case Series::Error:
    return point.error;
  case Series::MaxBits:
    return static_cast<double>(point.maxBits);
  }
  return 0.0;
}

} // namespace

void writeCsv(std::ostream& os, const std::vector<SimulationTrace>& traces) {
  // In deterministic-output mode the wall-clock column and the cache-hit-rate
  // column (sensitive to pointer-hash layout) are written as 0, so two runs
  // produce byte-identical CSVs.
  const bool deterministic = obs::deterministic();
  os << "series,gate,nodes,seconds,error,maxbits,peaknodes,cachehitrate,tablefill,fidelity,"
        "prunednodes\n";
  os << std::setprecision(12);
  for (const SimulationTrace& trace : traces) {
    for (const TracePoint& point : trace.points) {
      os << trace.label << "," << point.gateIndex << "," << point.nodes << ","
         << (deterministic ? 0.0 : point.seconds) << "," << point.error << "," << point.maxBits
         << "," << point.peakNodes << "," << (deterministic ? 0.0 : point.cacheHitRate) << ","
         << point.tableFill << "," << point.fidelity << "," << point.prunedNodes << "\n";
    }
  }
}

void printSummaryTable(std::ostream& os, const std::vector<SimulationTrace>& traces) {
  os << std::left << std::setw(28) << "series" << std::right << std::setw(12) << "final nodes"
     << std::setw(12) << "peak nodes" << std::setw(12) << "time [s]" << std::setw(14)
     << "final error" << std::setw(10) << "fidelity" << std::setw(8) << "zero?" << "\n";
  for (const SimulationTrace& trace : traces) {
    os << std::left << std::setw(28) << trace.label << std::right << std::setw(12)
       << trace.finalNodes << std::setw(12) << trace.peakNodes << std::setw(12) << std::fixed
       << std::setprecision(3) << trace.totalSeconds << std::setw(14) << std::scientific
       << std::setprecision(2) << trace.finalError << std::setw(10) << std::fixed
       << std::setprecision(4) << trace.finalFidelity << std::setw(8)
       << (trace.collapsedToZero ? "YES" : "no") << "\n";
    os.unsetf(std::ios::floatfield);
  }
}

void printAsciiChart(std::ostream& os, const std::string& title,
                     const std::vector<SimulationTrace>& traces, Series series, bool logY) {
  constexpr int kWidth = 72;
  constexpr int kHeight = 16;
  static constexpr char kSymbols[] = "A#*+o.x%@$";

  // Gather value range.
  double minY = std::numeric_limits<double>::infinity();
  double maxY = -std::numeric_limits<double>::infinity();
  std::size_t maxGate = 1;
  for (const SimulationTrace& trace : traces) {
    for (const TracePoint& point : trace.points) {
      double y = component(point, series);
      if (!std::isfinite(y) || (logY && y <= 0.0)) {
        continue;
      }
      if (logY) {
        y = std::log10(y);
      }
      minY = std::min(minY, y);
      maxY = std::max(maxY, y);
      maxGate = std::max(maxGate, point.gateIndex);
    }
  }
  os << "\n== " << title << (logY ? "  [log10 y]" : "") << " ==\n";
  if (!std::isfinite(minY)) {
    os << "(no data)\n";
    return;
  }
  if (maxY - minY < 1e-12) {
    maxY = minY + 1.0;
  }

  std::vector<std::string> grid(kHeight, std::string(kWidth, ' '));
  for (std::size_t t = 0; t < traces.size(); ++t) {
    const char symbol = kSymbols[t % (sizeof(kSymbols) - 1)];
    for (const TracePoint& point : traces[t].points) {
      double y = component(point, series);
      if (!std::isfinite(y) || (logY && y <= 0.0)) {
        continue;
      }
      if (logY) {
        y = std::log10(y);
      }
      const int col = static_cast<int>(
          std::min<double>(kWidth - 1, std::floor(static_cast<double>(point.gateIndex) /
                                                  static_cast<double>(maxGate) * (kWidth - 1))));
      const int row = static_cast<int>(
          std::min<double>(kHeight - 1, std::floor((maxY - y) / (maxY - minY) * (kHeight - 1))));
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = symbol;
    }
  }
  os << std::setprecision(3);
  for (int row = 0; row < kHeight; ++row) {
    if (row == 0) {
      os << std::setw(10) << maxY << " |";
    } else if (row == kHeight - 1) {
      os << std::setw(10) << minY << " |";
    } else {
      os << std::string(10, ' ') << " |";
    }
    os << grid[static_cast<std::size_t>(row)] << "\n";
  }
  os << std::string(11, ' ') << '+' << std::string(kWidth, '-') << "\n";
  os << std::string(12, ' ') << "0" << std::string(kWidth - 8, ' ') << maxGate << " gates\n";
  for (std::size_t t = 0; t < traces.size(); ++t) {
    os << "  " << kSymbols[t % (sizeof(kSymbols) - 1)] << " = " << traces[t].label << "\n";
  }
}

namespace {

void writeHistogramJson(std::ostream& os, const std::vector<std::uint64_t>& histogram) {
  os << "[";
  for (std::size_t i = 0; i < histogram.size(); ++i) {
    os << (i == 0 ? "" : ",") << histogram[i];
  }
  os << "]";
}

} // namespace

void printStatsTable(std::ostream& os, const obs::PackageStats& stats) {
  os << "-- package telemetry";
  if (!stats.weights.system.empty()) {
    os << " [" << stats.weights.system << "]";
  }
  os << (obs::kEnabled ? "" : " (QADD_OBS=0: counters compiled out)") << " --\n";
  os << std::left << std::setw(12) << "cache" << std::right << std::setw(14) << "hits"
     << std::setw(14) << "misses" << std::setw(12) << "evictions" << std::setw(10) << "hit%"
     << "\n";
  for (const auto& [name, cache] : stats.caches()) {
    os << std::left << std::setw(12) << name << std::right << std::setw(14) << cache->hits.value()
       << std::setw(14) << cache->misses.value() << std::setw(12) << cache->evictions.value()
       << std::setw(9) << std::fixed << std::setprecision(1) << cache->hitRate() * 100.0 << "%\n";
    os.unsetf(std::ios::floatfield);
  }
  const auto uniqueRow = [&](std::string_view name, const obs::UniqueTableStats& table) {
    os << std::left << std::setw(12) << name << std::right << std::setw(14)
       << table.lookups.value() << " lookups" << std::setw(14) << table.hits.value() << " hits"
       << std::setw(12) << table.collisions.value() << " collisions  " << table.entries << "/"
       << table.buckets << " fill\n";
  };
  uniqueRow("vUnique", stats.vUnique);
  uniqueRow("mUnique", stats.mUnique);
  os << "nodes       " << stats.nodeAllocations.value() << " allocated, "
     << stats.nodeReuses.value() << " reused, " << stats.liveNodes << " live, " << stats.peakNodes
     << " peak, " << stats.arenaBytes << " arena B\n";
  os << "gc          " << stats.gc.runs.value() << " runs, " << stats.gc.nodesSwept.value()
     << " nodes swept, " << std::setprecision(3)
     << (obs::deterministic() ? 0.0 : stats.gc.seconds) << " s\n";
  os << "threads     " << stats.threads << "\n";
  os << "weights     " << stats.weights.entries << " distinct";
  if (stats.weights.nearMissUnifications > 0) {
    os << ", " << stats.weights.nearMissUnifications << " near-miss unifications";
  }
  os << "\n";
  if (stats.weights.opCache.hits.value() + stats.weights.opCache.misses.value() > 0) {
    os << "weight ops  " << stats.weights.opCache.hits.value() << " hits, "
       << stats.weights.opCache.misses.value() << " misses, "
       << stats.weights.opCache.evictions.value() << " evictions (" << std::fixed
       << std::setprecision(1) << stats.weights.opCache.hitRate() * 100.0 << "% hit)\n";
    os.unsetf(std::ios::floatfield);
  }
  if (stats.weights.smallPathHits + stats.weights.smallPathSpills > 0) {
    const double total =
        static_cast<double>(stats.weights.smallPathHits + stats.weights.smallPathSpills);
    os << "alg small   " << stats.weights.smallPathHits << " kernel hits, "
       << stats.weights.smallPathSpills << " spills (" << std::fixed << std::setprecision(1)
       << static_cast<double>(stats.weights.smallPathHits) / total * 100.0 << "% small)\n";
    os.unsetf(std::ios::floatfield);
  }
  if (!stats.weights.bucketOccupancy.empty()) {
    os << "buckets     ";
    for (std::size_t k = 1; k < stats.weights.bucketOccupancy.size(); ++k) {
      if (stats.weights.bucketOccupancy[k] != 0) {
        os << "[" << k << (k + 1 == stats.weights.bucketOccupancy.size() ? "+" : "") << "]="
           << stats.weights.bucketOccupancy[k] << " ";
      }
    }
    os << "\n";
  }
  if (!stats.weights.bitWidthHistogram.empty()) {
    os << "bit widths  ";
    for (std::size_t b = 0; b < stats.weights.bitWidthHistogram.size(); ++b) {
      if (stats.weights.bitWidthHistogram[b] != 0) {
        os << b << "b:" << stats.weights.bitWidthHistogram[b] << " ";
      }
    }
    os << "\n";
  }
  if (stats.io.any()) {
    os << "snapshots   " << stats.io.snapshotsSaved.value() << " saved ("
       << stats.io.nodesWritten.value() << " nodes, " << stats.io.weightsWritten.value()
       << " weights, " << stats.io.bytesWritten.value() << " B), "
       << stats.io.snapshotsLoaded.value() << " loaded (" << stats.io.nodesRead.value()
       << " nodes, " << stats.io.loadDedupNodes.value() << " deduped, "
       << stats.io.bytesRead.value() << " B)\n";
  }
  if (stats.approx.any()) {
    os << "approx      " << stats.approx.pruneRuns.value() << " prune runs, "
       << stats.approx.edgesPruned.value() << " edges pruned, "
       << stats.approx.nodesRemoved.value() << " nodes removed\n";
  }
}

void writeStatsJson(std::ostream& os, const obs::PackageStats& stats) {
  os << std::setprecision(12);
  os << "{\"enabled\":" << (obs::kEnabled ? "true" : "false") << ",\"caches\":{";
  bool first = true;
  for (const auto& [name, cache] : stats.caches()) {
    os << (first ? "" : ",") << "\"" << name << "\":{\"hits\":" << cache->hits.value()
       << ",\"misses\":" << cache->misses.value()
       << ",\"evictions\":" << cache->evictions.value() << ",\"hitRate\":" << cache->hitRate()
       << "}";
    first = false;
  }
  os << "},\"uniqueTables\":{";
  const auto uniqueJson = [&os](const char* name, const obs::UniqueTableStats& table) {
    os << "\"" << name << "\":{\"lookups\":" << table.lookups.value()
       << ",\"hits\":" << table.hits.value() << ",\"collisions\":" << table.collisions.value()
       << ",\"entries\":" << table.entries << ",\"buckets\":" << table.buckets << "}";
  };
  uniqueJson("vector", stats.vUnique);
  os << ",";
  uniqueJson("matrix", stats.mUnique);
  os << "},\"nodes\":{\"allocations\":" << stats.nodeAllocations.value()
     << ",\"reuses\":" << stats.nodeReuses.value() << ",\"live\":" << stats.liveNodes
     << ",\"peak\":" << stats.peakNodes << ",\"arenaBytes\":" << stats.arenaBytes << "}";
  os << ",\"gc\":{\"runs\":" << stats.gc.runs.value()
     << ",\"nodesSwept\":" << stats.gc.nodesSwept.value()
     << ",\"seconds\":" << (obs::deterministic() ? 0.0 : stats.gc.seconds) << "}";
  os << ",\"threads\":" << stats.threads;
  os << ",\"weights\":{\"system\":\"" << stats.weights.system
     << "\",\"entries\":" << stats.weights.entries
     << ",\"nearMissUnifications\":" << stats.weights.nearMissUnifications
     << ",\"opCache\":{\"hits\":" << stats.weights.opCache.hits.value()
     << ",\"misses\":" << stats.weights.opCache.misses.value()
     << ",\"evictions\":" << stats.weights.opCache.evictions.value() << "}"
     << ",\"smallPathHits\":" << stats.weights.smallPathHits
     << ",\"smallPathSpills\":" << stats.weights.smallPathSpills
     << ",\"bucketOccupancy\":";
  writeHistogramJson(os, stats.weights.bucketOccupancy);
  os << ",\"bitWidthHistogram\":";
  writeHistogramJson(os, stats.weights.bitWidthHistogram);
  os << "}";
  os << ",\"io\":{\"snapshotsSaved\":" << stats.io.snapshotsSaved.value()
     << ",\"snapshotsLoaded\":" << stats.io.snapshotsLoaded.value()
     << ",\"nodesWritten\":" << stats.io.nodesWritten.value()
     << ",\"nodesRead\":" << stats.io.nodesRead.value()
     << ",\"weightsWritten\":" << stats.io.weightsWritten.value()
     << ",\"weightsRead\":" << stats.io.weightsRead.value()
     << ",\"bytesWritten\":" << stats.io.bytesWritten.value()
     << ",\"bytesRead\":" << stats.io.bytesRead.value()
     << ",\"loadDedupNodes\":" << stats.io.loadDedupNodes.value() << "}";
  os << ",\"approx\":{\"pruneRuns\":" << stats.approx.pruneRuns.value()
     << ",\"edgesPruned\":" << stats.approx.edgesPruned.value()
     << ",\"nodesRemoved\":" << stats.approx.nodesRemoved.value() << "}}";
}

void writeStatsCsv(std::ostream& os, const obs::PackageStats& stats) {
  os << "counter,value\n";
  for (const auto& [name, cache] : stats.caches()) {
    os << "cache." << name << ".hits," << cache->hits.value() << "\n";
    os << "cache." << name << ".misses," << cache->misses.value() << "\n";
    os << "cache." << name << ".evictions," << cache->evictions.value() << "\n";
  }
  const auto uniqueRows = [&os](const char* name, const obs::UniqueTableStats& table) {
    os << "unique." << name << ".lookups," << table.lookups.value() << "\n";
    os << "unique." << name << ".hits," << table.hits.value() << "\n";
    os << "unique." << name << ".collisions," << table.collisions.value() << "\n";
    os << "unique." << name << ".entries," << table.entries << "\n";
    os << "unique." << name << ".buckets," << table.buckets << "\n";
  };
  uniqueRows("vector", stats.vUnique);
  uniqueRows("matrix", stats.mUnique);
  os << "nodes.allocations," << stats.nodeAllocations.value() << "\n";
  os << "nodes.reuses," << stats.nodeReuses.value() << "\n";
  os << "nodes.live," << stats.liveNodes << "\n";
  os << "nodes.peak," << stats.peakNodes << "\n";
  os << "nodes.arenaBytes," << stats.arenaBytes << "\n";
  os << "gc.runs," << stats.gc.runs.value() << "\n";
  os << "gc.nodesSwept," << stats.gc.nodesSwept.value() << "\n";
  os << "gc.seconds," << std::setprecision(12)
     << (obs::deterministic() ? 0.0 : stats.gc.seconds) << "\n";
  os << "threads," << stats.threads << "\n";
  os << "weights.entries," << stats.weights.entries << "\n";
  os << "weights.nearMissUnifications," << stats.weights.nearMissUnifications << "\n";
  os << "weights.opCache.hits," << stats.weights.opCache.hits.value() << "\n";
  os << "weights.opCache.misses," << stats.weights.opCache.misses.value() << "\n";
  os << "weights.opCache.evictions," << stats.weights.opCache.evictions.value() << "\n";
  os << "alg.smallPathHits," << stats.weights.smallPathHits << "\n";
  os << "alg.smallPathSpills," << stats.weights.smallPathSpills << "\n";
  os << "io.snapshotsSaved," << stats.io.snapshotsSaved.value() << "\n";
  os << "io.snapshotsLoaded," << stats.io.snapshotsLoaded.value() << "\n";
  os << "io.nodesWritten," << stats.io.nodesWritten.value() << "\n";
  os << "io.nodesRead," << stats.io.nodesRead.value() << "\n";
  os << "io.weightsWritten," << stats.io.weightsWritten.value() << "\n";
  os << "io.weightsRead," << stats.io.weightsRead.value() << "\n";
  os << "io.bytesWritten," << stats.io.bytesWritten.value() << "\n";
  os << "io.bytesRead," << stats.io.bytesRead.value() << "\n";
  os << "io.loadDedupNodes," << stats.io.loadDedupNodes.value() << "\n";
  os << "approx.pruneRuns," << stats.approx.pruneRuns.value() << "\n";
  os << "approx.edgesPruned," << stats.approx.edgesPruned.value() << "\n";
  os << "approx.nodesRemoved," << stats.approx.nodesRemoved.value() << "\n";
}

ObsCliOptions parseObsCli(int& argc, char** argv) {
  ObsCliOptions options;
  const auto flagValue = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << argv[0] << ": " << flag << " requires an argument\n";
      std::exit(2);
    }
    return argv[++i];
  };
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) {
      options.stats = true;
    } else if (std::strcmp(argv[i], "--trace-json") == 0) {
      options.traceJsonPath = flagValue(i, "--trace-json");
    } else if (std::strcmp(argv[i], "--timeline") == 0) {
      options.timelinePath = flagValue(i, "--timeline");
    } else if (std::strcmp(argv[i], "--profile-final") == 0) {
      options.profileFinal = true;
    } else if (std::strcmp(argv[i], "--obs-deterministic") == 0) {
      obs::setDeterministic(true);
    } else if (std::strcmp(argv[i], "--checkpoint-every") == 0) {
      options.checkpointEvery =
          static_cast<std::size_t>(std::strtoull(flagValue(i, "--checkpoint-every"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--checkpoint-prefix") == 0) {
      options.checkpointPrefix = flagValue(i, "--checkpoint-prefix");
    } else if (std::strcmp(argv[i], "--refresh-reference") == 0) {
      options.refreshReference = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (!options.traceJsonPath.empty()) {
    obs::Tracer::global().setEnabled(true);
    // Flush periodically (and at exit), so a crashed run keeps a partial
    // trace instead of losing everything.
    obs::Tracer::global().setAutoFlush(options.traceJsonPath);
  }
  if (!options.timelinePath.empty()) {
    obs::Timeline::global().setEnabled(true);
  }
  return options;
}

void finishObsCli(const ObsCliOptions& options, std::ostream& os,
                  const std::vector<SimulationTrace>& traces,
                  const obs::PackageStats* aggregated) {
  if (options.stats) {
    for (const SimulationTrace& trace : traces) {
      os << "\n== telemetry: " << trace.label << " ==\n";
      printStatsTable(os, trace.finalStats);
      if (!trace.gcEvents.empty()) {
        os << "gc events   ";
        for (const TraceGcEvent& event : trace.gcEvents) {
          os << "@" << event.gateIndex << ":-" << event.swept << " ";
        }
        os << "\n";
      }
    }
    if (aggregated != nullptr && traces.size() > 1) {
      os << "\n== telemetry: aggregate (" << traces.size() << " series, " << aggregated->threads
         << (aggregated->threads == 1 ? " worker) ==\n" : " workers) ==\n");
      printStatsTable(os, *aggregated);
    }
  }
  if (options.profileFinal) {
    for (const SimulationTrace& trace : traces) {
      if (trace.finalStateSnapshot.empty()) {
        continue;
      }
      os << "\n== final-state profile: " << trace.label << " ==\n";
      obs::printProfileTable(os, obs::profileSnapshot(trace.finalStateSnapshot));
    }
  }
  if (!options.timelinePath.empty()) {
    const std::string jsonPath = options.timelinePath + ".json";
    const std::string csvPath = options.timelinePath + ".csv";
    const bool jsonOk = obs::Timeline::global().writeJson(jsonPath);
    const bool csvOk = obs::Timeline::global().writeCsv(csvPath);
    if (jsonOk && csvOk) {
      os << "\ntimeline written to " << jsonPath << " and " << csvPath << " ("
         << obs::Timeline::global().size() << " samples, " << obs::Timeline::global().dropped()
         << " dropped)\n";
    } else {
      os << "\nERROR: could not write timeline to " << options.timelinePath << ".{json,csv}\n";
    }
  }
  if (!options.traceJsonPath.empty()) {
    if (obs::Tracer::global().writeJson(options.traceJsonPath)) {
      os << "\nspan trace written to " << options.traceJsonPath
         << " (open in chrome://tracing or ui.perfetto.dev)\n";
    } else {
      os << "\nERROR: could not write trace JSON to " << options.traceJsonPath << "\n";
    }
  }
}

} // namespace qadd::eval
