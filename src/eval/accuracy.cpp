#include "eval/accuracy.hpp"

#include <cassert>
#include <cmath>

namespace qadd::eval {

double vectorNorm(const std::vector<std::complex<double>>& v) {
  double sum = 0.0;
  for (const auto& amplitude : v) {
    sum += std::norm(amplitude);
  }
  return std::sqrt(sum);
}

double accuracyError(const std::vector<std::complex<double>>& numeric,
                     const std::vector<std::complex<double>>& algebraicReference) {
  assert(numeric.size() == algebraicReference.size());
  const double numericNorm = vectorNorm(numeric);
  // The metric compares directions, so an off-unit reference (e.g. one that
  // was rescaled on serialization, or a deliberately scaled regression input)
  // must be brought back to unit length too.  A reference that is already
  // within round-off of unit norm is used as-is so historical unit-reference
  // results stay byte-identical.
  const double referenceNorm = vectorNorm(algebraicReference);
  const double referenceScale =
      (referenceNorm == 0.0 || std::abs(referenceNorm - 1.0) <= 1e-9) ? 1.0 : 1.0 / referenceNorm;
  if (numericNorm == 0.0) {
    return referenceNorm * referenceScale;
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < numeric.size(); ++i) {
    sum += std::norm(numeric[i] / numericNorm - algebraicReference[i] * referenceScale);
  }
  return std::sqrt(sum);
}

} // namespace qadd::eval
