#include "eval/accuracy.hpp"

#include <cassert>
#include <cmath>

namespace qadd::eval {

double vectorNorm(const std::vector<std::complex<double>>& v) {
  double sum = 0.0;
  for (const auto& amplitude : v) {
    sum += std::norm(amplitude);
  }
  return std::sqrt(sum);
}

double accuracyError(const std::vector<std::complex<double>>& numeric,
                     const std::vector<std::complex<double>>& algebraicReference) {
  assert(numeric.size() == algebraicReference.size());
  const double numericNorm = vectorNorm(numeric);
  if (numericNorm == 0.0) {
    return vectorNorm(algebraicReference);
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < numeric.size(); ++i) {
    sum += std::norm(numeric[i] / numericNorm - algebraicReference[i]);
  }
  return std::sqrt(sum);
}

} // namespace qadd::eval
