/// \file driver_cli.hpp
/// One command line for all figure drivers (eval::DriverCli).  The fig2–fig5
/// harnesses, precision_scaling and examples/epsilon_tradeoff used to carry
/// six hand-rolled argv loops; they now declare their positional arguments
/// in a DriverSpec and get, uniformly:
///   [positionals...]       integer arguments with per-driver defaults
///                          (old invocations keep working unchanged)
///   --jobs N               worker threads for the ε fan-out (default:
///                          QADD_JOBS env, else hardware concurrency;
///                          --jobs 1 is the strictly serial path)
///   --stats / --trace-json / --checkpoint-every / --checkpoint-prefix /
///   --refresh-reference    the ObsCliOptions telemetry + snapshot flags
///   --help                 per-driver usage text generated from the spec
#pragma once

#include "core/approximation.hpp"
#include "eval/report.hpp"
#include "eval/sweep.hpp"
#include "exec/thread_pool.hpp"

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace qadd::eval {

/// One positional integer argument of a driver.
struct DriverPositional {
  const char* name;
  long defaultValue;
  const char* description;
};

/// Static description of a driver's command line, used for parsing and for
/// the generated --help text.
struct DriverSpec {
  const char* binary;  ///< binary name shown in the usage line
  const char* summary; ///< one-line description of what the driver measures
  std::vector<DriverPositional> positionals;
  /// Document --refresh-reference in --help (drivers with a QREF cache).
  bool referenceFlags = false;
};

/// Parsed command line of a figure driver.
struct DriverCli {
  ObsCliOptions obs;
  /// Resolved worker count: --jobs, else QADD_JOBS, else hardware threads.
  std::size_t jobs = 1;
  /// One value per DriverSpec positional (defaults filled in).
  std::vector<long> positionals;
  /// Fidelity-bounded approximation from --approx-fidelity/--approx-policy
  /// (policy None when neither flag is given); drivers install it on their
  /// sweep via SweepSpec::applyApprox.
  dd::ApproxSpec approx{};

  /// Thread pool for runSweep(), or nullptr for the serial --jobs 1 path.
  [[nodiscard]] std::unique_ptr<exec::ThreadPool> makePool() const {
    return jobs <= 1 ? nullptr : std::make_unique<exec::ThreadPool>(jobs);
  }
};

/// Parse argv against `spec`.  Prints usage and exits 0 on --help; prints an
/// error plus usage and exits 2 on unknown flags, malformed integers, or
/// excess positionals.  Enables the global tracer when --trace-json is
/// given (like parseObsCli, which handles the telemetry flags).
[[nodiscard]] DriverCli parseDriverCli(int argc, char** argv, const DriverSpec& spec);

/// Honour the parsed flags after a sweep: per-series telemetry tables plus
/// the aggregated cross-worker snapshot under --stats, and the span-trace
/// JSON for --trace-json.
void finishDriverCli(const DriverCli& cli, std::ostream& os, const SweepResult& result);

} // namespace qadd::eval
